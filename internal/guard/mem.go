package guard

import (
	"runtime"
	"sync"
)

// Level is the memory watcher's verdict over the watermarks.
type Level int

const (
	// LevelOK: heap below the soft watermark; normal operation.
	LevelOK Level = iota
	// LevelSoft: heap at or above the soft watermark; the server
	// pauses queue drain and sheds new submissions (429 + Retry-After)
	// but lets running jobs finish.
	LevelSoft
	// LevelHard: heap at or above the hard watermark; on top of the
	// soft response the server cancels the newest running jobs (typed
	// shed state) until pressure clears.
	LevelHard
)

// String renders the level for health bodies and logs.
func (l Level) String() string {
	switch l {
	case LevelSoft:
		return "soft"
	case LevelHard:
		return "hard"
	default:
		return "ok"
	}
}

// MemWatcher classifies heap usage against soft/hard watermarks. The
// reader is injectable, so tests script exact pressure trajectories;
// production reads runtime.ReadMemStats. Zero watermarks disable the
// watcher (Sample always reports LevelOK).
type MemWatcher struct {
	soft, hard uint64
	readMem    func() uint64
	// onChange fires on level transitions, outside the watcher lock.
	onChange func(from, to Level, heapBytes uint64)

	mu    sync.Mutex
	level Level
	heap  uint64
}

// HeapInUse reads the live heap footprint. ReadMemStats stops the
// world briefly; the sampling cadence (seconds) makes that free.
func HeapInUse() uint64 {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.HeapInuse
}

// NewMemWatcher builds a watcher. soft == 0 takes hard's value, so a
// hard-only configuration still browns out before cancelling. readMem
// nil means HeapInUse.
func NewMemWatcher(soft, hard uint64, readMem func() uint64, onChange func(from, to Level, heapBytes uint64)) *MemWatcher {
	if soft == 0 {
		soft = hard
	}
	if readMem == nil {
		readMem = HeapInUse
	}
	return &MemWatcher{soft: soft, hard: hard, readMem: readMem, onChange: onChange}
}

// Sample reads the heap, reclassifies, fires onChange on a transition,
// and returns the current level.
func (m *MemWatcher) Sample() Level {
	if m == nil || m.soft == 0 && m.hard == 0 {
		return LevelOK
	}
	heap := m.readMem()
	level := LevelOK
	switch {
	case m.hard > 0 && heap >= m.hard:
		level = LevelHard
	case m.soft > 0 && heap >= m.soft:
		level = LevelSoft
	}
	m.mu.Lock()
	from := m.level
	m.level = level
	m.heap = heap
	m.mu.Unlock()
	if level != from && m.onChange != nil {
		m.onChange(from, level, heap)
	}
	return level
}

// Snapshot returns the last sampled level and heap size without
// resampling.
func (m *MemWatcher) Snapshot() (Level, uint64) {
	if m == nil {
		return LevelOK, 0
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.level, m.heap
}
