package sched

import "errors"

// transientError marks a failure worth retrying: the cell reported a
// condition that may clear (a busy simulated device, a throttled
// backend) rather than a deterministic defect in the work itself.
type transientError struct{ err error }

func (e *transientError) Error() string { return "transient: " + e.err.Error() }
func (e *transientError) Unwrap() error { return e.err }

// Transient wraps err so the scheduler retries the cell (up to
// Options.MaxRetries, with backoff). A nil err returns nil.
func Transient(err error) error {
	if err == nil {
		return nil
	}
	return &transientError{err: err}
}

// IsTransient reports whether err (or anything it wraps) was marked
// with Transient.
func IsTransient(err error) bool {
	var t *transientError
	return errors.As(err, &t)
}
