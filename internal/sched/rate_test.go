package sched

import (
	"context"
	"encoding/json"
	"math"
	"strings"
	"testing"
	"time"
)

// TestRateZeroElapsed: the shared rate helper reports zero throughput
// when no time has measurably passed, instead of dividing by a clamped
// epsilon and inventing a rate of n × 1e9.
func TestRateZeroElapsed(t *testing.T) {
	if r := Rate(5, 0); r != 0 {
		t.Fatalf("Rate(5, 0) = %v, want 0", r)
	}
	if r := Rate(5, -1); r != 0 {
		t.Fatalf("Rate(5, -1) = %v, want 0", r)
	}
	if r := Rate(10, 2); r != 5 {
		t.Fatalf("Rate(10, 2) = %v, want 5", r)
	}
}

// TestInstantJobSnapshotRates is the warm-cache regression: a campaign
// that completes within one clock granule — every cell replayed from a
// checkpoint or served from a warm cache — produces a snapshot whose
// elapsed time is exactly zero. Rates must come out zero, finite, and
// JSON-marshalable, not executed × 1e9.
func TestInstantJobSnapshotRates(t *testing.T) {
	var got []Progress
	tr := newProgressTracker(func(p Progress) { got = append(got, p) }, "instant", 4, 0)
	frozen := tr.start
	tr.now = func() time.Time { return frozen }

	// A warm run: cells resolve by replay and cache hits, plus one
	// executed cell — the case the epsilon clamp used to blow up on.
	tr.cellReplayed()
	tr.cellCacheHit()
	tr.cellCacheHit()
	tr.cellDone(Cell{Device: "AMD"}, 0, 7, true, 0)

	p := tr.snapshot()
	if p.ElapsedSeconds != 0 {
		t.Fatalf("elapsed = %v under a frozen clock", p.ElapsedSeconds)
	}
	if p.CellsPerSec != 0 || p.InstancesPerSec != 0 {
		t.Fatalf("instant-job rates = %v cells/s, %v instances/s; want 0",
			p.CellsPerSec, p.InstancesPerSec)
	}
	tr.finish(reportCounters{executed: 1, replayed: 1, cacheHits: 2})
	final := got[len(got)-1]
	if !final.Final {
		t.Fatal("no final snapshot")
	}
	for _, v := range []float64{final.CellsPerSec, final.InstancesPerSec} {
		if math.IsInf(v, 0) || math.IsNaN(v) || v != 0 {
			t.Fatalf("final rate = %v, want 0", v)
		}
	}
	if _, err := json.Marshal(final); err != nil {
		t.Fatalf("final snapshot does not marshal: %v", err)
	}
}

// TestReporterInstantLine: the text reporter's rate under a frozen
// clock is 0.0 cells/s, not a screenful of digits.
func TestReporterInstantLine(t *testing.T) {
	var lines []string
	r := NewReporter(func(s string) { lines = append(lines, s) }, 0)
	frozen := time.Now()
	r.now = func() time.Time { return frozen }
	r.begin(context.Background(), "instant", 2)
	r.cellDone(Cell{Device: "AMD"}, 0, 3, true, 0)
	r.finish(reportCounters{executed: 2})
	if len(lines) == 0 {
		t.Fatal("no lines emitted")
	}
	last := lines[len(lines)-1]
	if !strings.Contains(last, "0.0 cells/s") {
		t.Fatalf("instant-run summary line reports a phantom rate: %q", last)
	}
}
