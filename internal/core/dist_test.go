package core

import (
	"bytes"
	"context"
	"encoding/json"
	"sync"
	"testing"
	"time"

	"repro/internal/dist"
	"repro/internal/gpu"
	"repro/internal/sched"
)

// encodeArtifact renders an artifact canonically for byte comparison.
func encodeArtifact(t *testing.T, a *CampaignArtifact) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := a.Encode(&buf); err != nil {
		t.Fatalf("Encode: %v", err)
	}
	return buf.Bytes()
}

// runDistributed runs the campaign o describes (o.Dist must be set)
// while draining every hub campaign with the given number of worker
// processes (in-process, via the hub's local transport), and returns
// when the campaign call returns.
func runDistributed(t *testing.T, hub *dist.Hub, ws WorkSpec, workers, parallel int, campaign func() error) error {
	t.Helper()
	units, err := DistWork(ws, parallel, nil)
	if err != nil {
		t.Fatalf("DistWork: %v", err)
	}
	byManifest := map[string]WorkUnit{}
	for _, u := range units {
		byManifest[u.Spec.Manifest()] = u
	}

	done := make(chan error, 1)
	go func() { done <- campaign() }()

	// Workers poll the hub until the campaign call finishes: campaigns
	// register as the call plans them, and evaluate registers devices
	// sequentially, so a one-shot drain would miss later registrations.
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			drained := map[string]bool{}
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, info := range hub.List() {
					if drained[info.Name] || info.Done {
						continue
					}
					unit, ok := byManifest[info.Manifest]
					if !ok {
						t.Errorf("worker %d: no unit for campaign %s (manifest %.12s)", id, info.Name, info.Manifest)
						return
					}
					tr := hub.LocalTransport(info.Name)
					worker := dist.NewWorker(tr, unit.Spec, unit.Run, dist.WorkerOptions{
						ID:          "w" + info.Name,
						AcquireWait: 5 * time.Millisecond,
						RPCBackoff:  time.Millisecond,
					})
					if err := worker.Run(context.Background()); err != nil {
						// Unregistration races look like RPC failures; the
						// campaign result is what the test asserts on.
						continue
					}
					drained[info.Name] = true
				}
				time.Sleep(time.Millisecond)
			}
		}(w)
	}
	err = <-done
	close(stop)
	wg.Wait()
	return err
}

// TestDistributedConformanceArtifactParity: a fleet conformance
// campaign coordinated across worker processes publishes an artifact
// byte-identical to the single-process run's.
func TestDistributedConformanceArtifactParity(t *testing.T) {
	ws := WorkSpec{
		Kind:    "conformance",
		Devices: []string{"AMD", "Intel"},
		Envs:    []string{"pte"},
		Iters:   2,
		Seed:    11,
	}
	st, err := NewStudy()
	if err != nil {
		t.Fatal(err)
	}
	envs, err := ws.envParams()
	if err != nil {
		t.Fatal(err)
	}
	platforms := ws.platforms()

	local, err := st.CheckFleetConformance(platforms, envs[0], ws.Iters, ws.Seed, CampaignOptions{Workers: 3})
	if err != nil {
		t.Fatalf("local: %v", err)
	}
	want := encodeArtifact(t, &CampaignArtifact{Kind: "conformance", Conformance: local})

	desc, err := ws.Descriptor()
	if err != nil {
		t.Fatal(err)
	}
	hub := dist.NewHub()
	var remote []*ConformanceReport
	err = runDistributed(t, hub, ws, 2, 2, func() error {
		opts := CampaignOptions{Dist: &DistOptions{
			Hub: hub, Name: "conformance", Descriptor: desc,
			LeaseTTL: 30 * time.Second, RangeCells: 3,
		}}
		var cerr error
		remote, cerr = st.CheckFleetConformanceCtx(context.Background(), platforms, envs[0], ws.Iters, ws.Seed, opts)
		return cerr
	})
	if err != nil {
		t.Fatalf("distributed: %v", err)
	}
	got := encodeArtifact(t, &CampaignArtifact{Kind: "conformance", Conformance: remote})
	if !bytes.Equal(want, got) {
		t.Fatalf("artifacts differ:\nlocal:\n%s\ndistributed:\n%s", want, got)
	}
}

// zeroWall clears the one nondeterministic field of an evaluation
// score — per-mutant host wall time, which differs between ANY two
// runs, local or not — so the rest of the artifact can be compared
// byte for byte.
func zeroWall(score *EnvScore) {
	for _, r := range score.PerMutant {
		r.WallSeconds = 0
	}
}

// TestDistributedEvaluateArtifactParity: an evaluation campaign with
// fault injection and a device circuit breaker — retries, quarantine
// verdicts, failure records — still merges byte-identically (modulo
// host wall time), because workers run the submitting side's retry
// policy and the coordinator applies the same breaker post-pass a
// local run would.
func TestDistributedEvaluateArtifactParity(t *testing.T) {
	fm := gpu.UniformFaults(9, 0.05)
	ws := WorkSpec{
		Kind:     "evaluate",
		Devices:  []string{"AMD"},
		Envs:     []string{"pte", "site-baseline"},
		Iters:    2,
		Seed:     9,
		FenceBug: true,
		Faults:   &fm,
		Retries:  1,
	}
	st, err := NewStudy()
	if err != nil {
		t.Fatal(err)
	}
	envs, err := ws.envParams()
	if err != nil {
		t.Fatal(err)
	}
	p := ws.platforms()[0]
	breaker := &sched.BreakerOptions{}

	local, err := st.EvaluateEnvironments(p, envs, ws.Iters, ws.Seed, CampaignOptions{
		Workers: 3, Retries: ws.Retries, Collect: true, Breaker: breaker,
	})
	if err != nil {
		t.Fatalf("local: %v", err)
	}
	zeroWall(local)
	want := encodeArtifact(t, &CampaignArtifact{Kind: "evaluate", Evaluate: []EvaluateEntry{{Device: p.Device, Score: local}}})

	desc, err := ws.Descriptor()
	if err != nil {
		t.Fatal(err)
	}
	hub := dist.NewHub()
	var remote *EnvScore
	err = runDistributed(t, hub, ws, 3, 2, func() error {
		opts := CampaignOptions{
			Retries: ws.Retries, Collect: true, Breaker: breaker,
			Dist: &DistOptions{
				Hub: hub, Name: "evaluate." + p.Device, Descriptor: desc,
				LeaseTTL: 30 * time.Second, RangeCells: 4,
			},
		}
		var cerr error
		remote, cerr = st.EvaluateEnvironmentsCtx(context.Background(), p, envs, ws.Iters, ws.Seed, opts)
		return cerr
	})
	if err != nil {
		t.Fatalf("distributed: %v", err)
	}
	zeroWall(remote)
	got := encodeArtifact(t, &CampaignArtifact{Kind: "evaluate", Evaluate: []EvaluateEntry{{Device: p.Device, Score: remote}}})
	if !bytes.Equal(want, got) {
		t.Fatalf("artifacts differ:\nlocal:\n%s\ndistributed:\n%s", want, got)
	}
}

// TestDistributedResumeSeedsCheckpoint: a distributed campaign with a
// checkpoint persists delivered segments; a resumed distributed run
// replays them (no re-execution) and completes to the same artifact.
func TestDistributedResumeSeedsCheckpoint(t *testing.T) {
	ws := WorkSpec{
		Kind:    "conformance",
		Devices: []string{"AMD"},
		Envs:    []string{"pte"},
		Iters:   2,
		Seed:    3,
	}
	st, err := NewStudy()
	if err != nil {
		t.Fatal(err)
	}
	envs, _ := ws.envParams()
	platforms := ws.platforms()
	local, err := st.CheckFleetConformance(platforms, envs[0], ws.Iters, ws.Seed, CampaignOptions{Workers: 2})
	if err != nil {
		t.Fatalf("local: %v", err)
	}
	want := encodeArtifact(t, &CampaignArtifact{Kind: "conformance", Conformance: local})

	ckpt := t.TempDir() + "/dist.ckpt"
	desc, _ := ws.Descriptor()

	// First distributed run completes fully, writing the checkpoint.
	hub := dist.NewHub()
	err = runDistributed(t, hub, ws, 1, 2, func() error {
		_, cerr := st.CheckFleetConformanceCtx(context.Background(), platforms, envs[0], ws.Iters, ws.Seed, CampaignOptions{
			CheckpointPath: ckpt,
			Dist:           &DistOptions{Hub: hub, Name: "conformance", Descriptor: desc, LeaseTTL: 30 * time.Second},
		})
		return cerr
	})
	if err != nil {
		t.Fatalf("first distributed run: %v", err)
	}

	// The resumed run must find every cell in the checkpoint: the
	// coordinator starts complete and no worker executes anything —
	// prove it by registering no workers at all.
	hub2 := dist.NewHub()
	reports, err := st.CheckFleetConformanceCtx(context.Background(), platforms, envs[0], ws.Iters, ws.Seed, CampaignOptions{
		CheckpointPath: ckpt, Resume: true,
		Dist: &DistOptions{Hub: hub2, Name: "conformance", Descriptor: desc, LeaseTTL: 30 * time.Second},
	})
	if err != nil {
		t.Fatalf("resumed distributed run: %v", err)
	}
	got := encodeArtifact(t, &CampaignArtifact{Kind: "conformance", Conformance: reports})
	if !bytes.Equal(want, got) {
		t.Fatalf("resumed artifact differs:\nlocal:\n%s\nresumed:\n%s", want, got)
	}
}

// TestWorkSpecDescriptorRoundTrip: the wire descriptor reproduces the
// work spec, including the fault model, so worker-rebuilt campaigns
// share the submitting side's manifest.
func TestWorkSpecDescriptorRoundTrip(t *testing.T) {
	fm := gpu.UniformFaults(4, 0.1)
	fm.LossAfter = 3
	ws := WorkSpec{
		Kind: "evaluate", Devices: []string{"AMD", "M1"}, Envs: []string{"pte", "site"},
		Iters: 5, Seed: 42, FenceBug: true, Faults: &fm,
		Retries: 2, BackoffMS: 50, CellTimeoutMS: 1000,
	}
	raw, err := ws.Descriptor()
	if err != nil {
		t.Fatal(err)
	}
	var back WorkSpec
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	a, err := DistWork(ws, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := DistWork(back, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) || len(a) != 2 {
		t.Fatalf("unit counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Spec.Manifest() != b[i].Spec.Manifest() {
			t.Fatalf("unit %d manifest drift after round-trip", i)
		}
		if a[i].Campaign != b[i].Campaign {
			t.Fatalf("unit %d campaign name drift: %q vs %q", i, a[i].Campaign, b[i].Campaign)
		}
	}
}
