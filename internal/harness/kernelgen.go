package harness

import (
	"fmt"

	"repro/internal/gpu"
	"repro/internal/litmus"
	"repro/internal/xrand"
)

// regRef locates one litmus register in the kernel's result space.
type regRef struct {
	tid int
	reg uint16
}

// iterationPlan is one iteration's kernel plus the bookkeeping needed
// to recover per-instance outcomes from the device result.
//
// A plan is reusable scratch: buildInto repopulates it in place, so a
// Runner can carry one plan across every iteration of a campaign cell
// and the per-iteration cost touches only memory that already exists.
// All row slices (regOf, locAddr) are windows into the flat backing
// arrays below and are overwritten by the next buildInto.
type iterationPlan struct {
	spec      gpu.LaunchSpec
	instances int
	// regOf[i][r] locates litmus register r of instance i.
	regOf [][]regRef
	// locAddr[i][l] is the memory address of instance i's location l.
	locAddr [][]uint32

	// Reusable backing storage. regOfFlat/locAddrFlat back the regOf/
	// locAddr rows; progBufs holds one instruction buffer per thread
	// (programs[tid] is progBufs[tid] re-sliced); permBuf backs the
	// stress-line permutation; the rest cache their eponymous slices.
	regOfFlat   []regRef
	locAddrFlat []uint32
	locPerms    []affinePerm
	lineStarts  []uint32
	permBuf     []int
	shuffle     []int
	progBufs    [][]gpu.Instr
	programs    []gpu.Program
}

// affinePerm is the PTE pairing function of Sec. 4.1: v -> (v*p + q)
// mod n with p co-prime to n. It is a bijection on [0, n), has no
// divergent control flow on a real device (a multiply, add and modulo),
// and avoids the simple v -> v+1 patterns prior work found ineffective.
type affinePerm struct {
	n, p, q uint64
}

func newAffinePerm(n int, rng *xrand.Rand) affinePerm {
	if n <= 1 {
		return affinePerm{n: uint64(max(n, 1)), p: 1, q: 0}
	}
	return affinePerm{
		n: uint64(n),
		p: rng.Coprime(uint64(n)),
		q: rng.Uint64n(uint64(n)),
	}
}

func (a affinePerm) apply(v int) int {
	return int((uint64(v)*a.p + a.q) % a.n)
}

// applyN composes the permutation k times.
func (a affinePerm) applyN(v, k int) int {
	for i := 0; i < k; i++ {
		v = a.apply(v)
	}
	return v
}

// planBuilder carries one buildInto call's context so the emit helpers
// are plain methods instead of closures — closures capturing the plan
// would escape to the heap on every iteration.
type planBuilder struct {
	plan *iterationPlan
	test *litmus.Test
	p    *Params
	rng  *xrand.Rand
}

// stressAddr picks a random address within the k-th chosen stress line.
func (b *planBuilder) stressAddr(k int) uint32 {
	line := b.plan.lineStarts[k%len(b.plan.lineStarts)]
	return line + uint32(b.rng.Intn(b.p.StressLineSize))
}

// emitStress appends a stress access pattern to prog.
func (b *planBuilder) emitStress(prog gpu.Program, pattern StressPattern, iters int, base int) gpu.Program {
	for k := 0; k < iters; k++ {
		a1 := b.stressAddr(base + 2*k)
		a2 := b.stressAddr(base + 2*k + 1)
		switch pattern {
		case StoreStore:
			prog = append(prog,
				gpu.Instr{Op: gpu.OpStressStore, Addr: a1, Imm: 1},
				gpu.Instr{Op: gpu.OpStressStore, Addr: a2, Imm: 1})
		case StoreLoad:
			prog = append(prog,
				gpu.Instr{Op: gpu.OpStressStore, Addr: a1, Imm: 1},
				gpu.Instr{Op: gpu.OpStressLoad, Addr: a2})
		case LoadStore:
			prog = append(prog,
				gpu.Instr{Op: gpu.OpStressLoad, Addr: a1},
				gpu.Instr{Op: gpu.OpStressStore, Addr: a2, Imm: 1})
		case LoadLoad:
			prog = append(prog,
				gpu.Instr{Op: gpu.OpStressLoad, Addr: a1},
				gpu.Instr{Op: gpu.OpStressLoad, Addr: a2})
		}
	}
	return prog
}

// emitRole appends one litmus thread's instructions, bound to an
// instance's addresses, and records register locations.
func (b *planBuilder) emitRole(prog gpu.Program, tid, instance, role int, nextReg *uint16) gpu.Program {
	plan := b.plan
	for _, in := range b.test.Threads[role].Instrs {
		switch in.Op {
		case litmus.OpLoad:
			prog = append(prog, gpu.Instr{
				Op: gpu.OpLoad, Addr: plan.locAddr[instance][in.Loc], Reg: *nextReg,
			})
			plan.regOf[instance][in.Reg] = regRef{tid: tid, reg: *nextReg}
			*nextReg++
		case litmus.OpStore:
			prog = append(prog, gpu.Instr{
				Op: gpu.OpStore, Addr: plan.locAddr[instance][in.Loc], Imm: uint32(in.Val),
			})
		case litmus.OpExchange:
			prog = append(prog, gpu.Instr{
				Op: gpu.OpExchange, Addr: plan.locAddr[instance][in.Loc],
				Imm: uint32(in.Val), Reg: *nextReg,
			})
			plan.regOf[instance][in.Reg] = regRef{tid: tid, reg: *nextReg}
			*nextReg++
		case litmus.OpFence:
			prog = append(prog, gpu.Instr{Op: gpu.OpFence})
		}
	}
	return prog
}

// progBuf returns tid's reusable instruction buffer, emptied.
func (plan *iterationPlan) progBuf(tid int) gpu.Program {
	return plan.progBufs[tid][:0]
}

// setProgram records tid's finished program, keeping the (possibly
// grown) buffer for the next iteration.
func (plan *iterationPlan) setProgram(tid int, prog gpu.Program) {
	plan.progBufs[tid] = prog
	plan.programs[tid] = prog
}

// buildIteration allocates a fresh plan for one iteration's kernel; see
// buildInto for the reusing form the Runner hot path uses.
func buildIteration(test *litmus.Test, p *Params, rng *xrand.Rand) (*iterationPlan, error) {
	plan := &iterationPlan{}
	if err := plan.buildInto(test, p, rng); err != nil {
		return nil, err
	}
	return plan, nil
}

// buildInto constructs one iteration's kernel for the test under the
// environment, reusing the plan's backing storage. Each iteration
// redraws permutations, stress-line placement and per-thread stress
// participation; the random draw sequence is identical to what a fresh
// plan would consume, so reuse never perturbs downstream randomness.
func (plan *iterationPlan) buildInto(test *litmus.Test, p *Params, rng *xrand.Rand) error {
	roles := len(test.Threads)
	if p.Scope == IntraWorkgroup && p.WorkgroupSize < roles {
		return fmt.Errorf("harness: intra-workgroup scope needs workgroup size >= %d roles, have %d",
			roles, p.WorkgroupSize)
	}
	testingWGs := p.TestingWorkgroups
	totalWGs := p.MaxWorkgroups
	if !p.Parallel {
		// SITE: one test thread per workgroup, one workgroup per role.
		if testingWGs < roles {
			testingWGs = roles
		}
		if totalWGs < testingWGs {
			totalWGs = testingWGs
		}
	}
	instances := 1
	if p.Parallel {
		instances = testingWGs * p.WorkgroupSize
	}
	if instances < 1 {
		return fmt.Errorf("harness: zero test instances")
	}

	// Memory layout: one region per test location, then scratch.
	regionWords := instances * p.MemStride
	scratchBase := test.NumLocs * regionWords
	memWords := scratchBase + p.ScratchMemWords
	if cap(plan.locPerms) < test.NumLocs {
		plan.locPerms = make([]affinePerm, test.NumLocs)
	}
	locPerms := plan.locPerms[:test.NumLocs]
	for l := range locPerms {
		if l == 0 || !p.Parallel {
			locPerms[l] = affinePerm{n: uint64(instances), p: 1, q: 0}
		} else {
			locPerms[l] = newAffinePerm(instances, rng)
		}
	}
	plan.growOutcomeMaps(instances, test.NumRegs, test.NumLocs)
	for i := 0; i < instances; i++ {
		for l := 0; l < test.NumLocs; l++ {
			slot := locPerms[l].apply(i)
			off := 0
			if l > 0 {
				off = p.MemLocOffset
			}
			plan.locAddr[i][l] = uint32(l*regionWords + slot*p.MemStride + off)
		}
	}

	// Stress lines within scratch.
	linesAvail := p.ScratchMemWords / p.StressLineSize
	nLines := p.StressTargetLines
	if nLines > linesAvail {
		nLines = linesAvail
	}
	plan.permBuf = rng.PermInto(plan.permBuf, linesAvail)
	plan.lineStarts = plan.lineStarts[:0]
	for _, li := range plan.permBuf[:nLines] {
		plan.lineStarts = append(plan.lineStarts, uint32(scratchBase+li*p.StressLineSize))
	}
	b := planBuilder{plan: plan, test: test, p: p, rng: rng}

	// Role pairing permutation (PTE). Under the intra-workgroup scope
	// the permutation acts within each workgroup's lane space so all of
	// an instance's roles stay in one workgroup.
	pairSpace := instances
	if p.Scope == IntraWorkgroup && p.Parallel {
		pairSpace = p.WorkgroupSize
	}
	var pairing affinePerm
	if p.NaivePairing {
		// The simple successor mapping prior work found ineffective;
		// kept for the ablation study.
		pairing = affinePerm{n: uint64(pairSpace), p: 1, q: 1 % uint64(pairSpace)}
	} else {
		pairing = newAffinePerm(pairSpace, rng)
	}

	// Per-iteration draws.
	barrier := rng.Intn(100) < p.BarrierPct
	if cap(plan.shuffle) < instances {
		plan.shuffle = make([]int, instances)
	}
	shuffle := plan.shuffle[:instances]
	for i := range shuffle {
		shuffle[i] = i
	}
	if p.Parallel && rng.Intn(100) < p.ShufflePct {
		// Fisher-Yates inlined (draw-identical to rng.Shuffle) so no
		// swap closure escapes to the heap.
		for i := len(shuffle) - 1; i > 0; i-- {
			j := rng.Intn(i + 1)
			shuffle[i], shuffle[j] = shuffle[j], shuffle[i]
		}
	}

	nThreads := totalWGs * p.WorkgroupSize
	plan.growPrograms(nThreads)

	if p.Parallel {
		// Every thread of every testing workgroup runs all roles, each
		// for a different instance, paired by the permutation: thread v
		// runs role 0 of instance v, role 1 of instance perm(v), role 2
		// of instance perm(perm(v)), ... Under the intra-workgroup
		// scope the permutation acts on lanes, keeping each instance's
		// roles inside one workgroup.
		for wg := 0; wg < testingWGs; wg++ {
			for lane := 0; lane < p.WorkgroupSize; lane++ {
				tid := wg*p.WorkgroupSize + lane
				prog := plan.progBuf(tid)
				if barrier {
					prog = append(prog, gpu.Instr{Op: gpu.OpBarrier})
				}
				if p.PreStressIters > 0 && rng.Intn(100) < p.PreStressPct {
					prog = b.emitStress(prog, p.PreStressPattern, p.PreStressIters, tid)
				}
				var nextReg uint16
				for r := 0; r < roles; r++ {
					var inst int
					if p.Scope == IntraWorkgroup {
						inst = wg*p.WorkgroupSize + pairing.applyN(lane, r)
					} else {
						inst = pairing.applyN(shuffle[tid], r)
					}
					prog = b.emitRole(prog, tid, inst, r, &nextReg)
				}
				plan.setProgram(tid, prog)
			}
		}
	} else if p.Scope == IntraWorkgroup {
		// SITE, intra-workgroup: role r runs on lane r of workgroup 0.
		for r := 0; r < roles; r++ {
			tid := r
			prog := plan.progBuf(tid)
			if barrier {
				prog = append(prog, gpu.Instr{Op: gpu.OpBarrier})
			}
			if p.PreStressIters > 0 && rng.Intn(100) < p.PreStressPct {
				prog = b.emitStress(prog, p.PreStressPattern, p.PreStressIters, tid)
			}
			var nextReg uint16
			prog = b.emitRole(prog, tid, 0, r, &nextReg)
			plan.setProgram(tid, prog)
		}
	} else {
		// SITE: role r runs on thread 0 of workgroup r.
		for r := 0; r < roles; r++ {
			tid := r * p.WorkgroupSize
			prog := plan.progBuf(tid)
			if barrier {
				prog = append(prog, gpu.Instr{Op: gpu.OpBarrier})
			}
			if p.PreStressIters > 0 && rng.Intn(100) < p.PreStressPct {
				prog = b.emitStress(prog, p.PreStressPattern, p.PreStressIters, tid)
			}
			var nextReg uint16
			prog = b.emitRole(prog, tid, 0, r, &nextReg)
			plan.setProgram(tid, prog)
		}
	}

	// Stress workgroups.
	for wg := testingWGs; wg < totalWGs; wg++ {
		if p.MemStressIters == 0 || rng.Intn(100) >= p.MemStressPct {
			continue
		}
		for lane := 0; lane < p.WorkgroupSize; lane++ {
			tid := wg*p.WorkgroupSize + lane
			if p.StressStrategy == Chunked {
				// Pin the thread to a single line for all its accesses.
				line := plan.lineStarts[tid%len(plan.lineStarts)]
				prog := plan.progBuf(tid)
				for k := 0; k < p.MemStressIters; k++ {
					a1 := line + uint32(rng.Intn(p.StressLineSize))
					a2 := line + uint32(rng.Intn(p.StressLineSize))
					prog = appendPattern(prog, p.MemStressPattern, a1, a2)
				}
				plan.setProgram(tid, prog)
				continue
			}
			plan.setProgram(tid, b.emitStress(plan.progBuf(tid), p.MemStressPattern, p.MemStressIters, tid))
		}
	}

	plan.spec = gpu.LaunchSpec{
		WorkgroupSize: p.WorkgroupSize,
		Workgroups:    totalWGs,
		MemWords:      memWords,
		Programs:      plan.programs,
	}
	plan.instances = instances
	return nil
}

// growOutcomeMaps sizes the regOf and locAddr row slices and their flat
// backing arrays for the iteration's instance count, reusing capacity.
// The flat arrays are cleared so stale references from a previous,
// larger iteration can never leak into this one's bookkeeping.
func (plan *iterationPlan) growOutcomeMaps(instances, numRegs, numLocs int) {
	if cap(plan.regOf) < instances {
		plan.regOf = make([][]regRef, instances)
	}
	plan.regOf = plan.regOf[:instances]
	if n := instances * numRegs; cap(plan.regOfFlat) < n {
		plan.regOfFlat = make([]regRef, n)
	} else {
		plan.regOfFlat = plan.regOfFlat[:n]
		clear(plan.regOfFlat)
	}
	for i := range plan.regOf {
		plan.regOf[i] = plan.regOfFlat[i*numRegs : (i+1)*numRegs : (i+1)*numRegs]
	}

	if cap(plan.locAddr) < instances {
		plan.locAddr = make([][]uint32, instances)
	}
	plan.locAddr = plan.locAddr[:instances]
	if n := instances * numLocs; cap(plan.locAddrFlat) < n {
		plan.locAddrFlat = make([]uint32, n)
	} else {
		plan.locAddrFlat = plan.locAddrFlat[:n]
	}
	for i := range plan.locAddr {
		plan.locAddr[i] = plan.locAddrFlat[i*numLocs : (i+1)*numLocs : (i+1)*numLocs]
	}
}

// growPrograms sizes the per-thread program table. programs entries are
// reset to nil (threads not assigned a program this iteration must stay
// empty); progBufs keeps every buffer ever grown for reuse.
func (plan *iterationPlan) growPrograms(nThreads int) {
	if cap(plan.programs) < nThreads {
		plan.programs = make([]gpu.Program, nThreads)
	}
	plan.programs = plan.programs[:nThreads]
	clear(plan.programs)
	if cap(plan.progBufs) < nThreads {
		grown := make([][]gpu.Instr, nThreads)
		copy(grown, plan.progBufs[:cap(plan.progBufs)])
		plan.progBufs = grown
	} else {
		plan.progBufs = plan.progBufs[:nThreads]
	}
}

func appendPattern(prog gpu.Program, pattern StressPattern, a1, a2 uint32) gpu.Program {
	switch pattern {
	case StoreStore:
		return append(prog,
			gpu.Instr{Op: gpu.OpStressStore, Addr: a1, Imm: 1},
			gpu.Instr{Op: gpu.OpStressStore, Addr: a2, Imm: 1})
	case StoreLoad:
		return append(prog,
			gpu.Instr{Op: gpu.OpStressStore, Addr: a1, Imm: 1},
			gpu.Instr{Op: gpu.OpStressLoad, Addr: a2})
	case LoadStore:
		return append(prog,
			gpu.Instr{Op: gpu.OpStressLoad, Addr: a1},
			gpu.Instr{Op: gpu.OpStressStore, Addr: a2, Imm: 1})
	default:
		return append(prog,
			gpu.Instr{Op: gpu.OpStressLoad, Addr: a1},
			gpu.Instr{Op: gpu.OpStressLoad, Addr: a2})
	}
}

// BuildKernel exposes one iteration's kernel construction for external
// tooling (e.g. tracing a single instance): it validates the
// environment, builds the iteration plan, and returns the launch spec.
func BuildKernel(test *litmus.Test, p *Params, rng *xrand.Rand) (*gpu.LaunchSpec, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	plan, err := buildIteration(test, p, rng)
	if err != nil {
		return nil, err
	}
	return &plan.spec, nil
}
