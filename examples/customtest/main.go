// Customtest shows the downstream-user workflow: define your own
// litmus test in the textual format, explore its outcome space under
// four memory models (with the operational oracles cross-checking the
// axiomatic checker), and run it on the simulated device fleet.
//
//	go run ./examples/customtest
package main

import (
	"fmt"
	"log"
	"sort"

	"repro/internal/gpu"
	"repro/internal/harness"
	"repro/internal/litmus"
	"repro/internal/mm"
	"repro/internal/xrand"
)

// A release/acquire message-passing variant where the flag is an
// exchange: the reader RMWs the flag, so even without the reader-side
// fence the writer-side fence plus RMW ordering pins the data.
const source = `# custom test: MP with an RMW flag probe
test MP-rmw-probe
model rel-acq-SC-per-location
thread
  store x 1
  fence
  store y 2
thread
  r0 = exchange y 3
  fence
  r1 = load x
target r0=2 r1=0
`

func main() {
	test, err := litmus.ParseString(source)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(test)

	// 1. The outcome universe under four models. The SC and TSO sets
	// also come from operational machines — interleaving and
	// store-buffer semantics — which agree with the axiomatic checker.
	models := []mm.MCS{mm.SC, mm.TSO, mm.SCPerLocation, mm.RelAcqSCPerLocation}
	fmt.Println("allowed outcomes per model:")
	for _, model := range models {
		allowed := test.AllowedOutcomes(model)
		keys := make([]string, 0, len(allowed))
		for k := range allowed {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		fmt.Printf("  %-24s %d allowed\n", model.String()+":", len(keys))
		for _, k := range keys {
			fmt.Printf("      %s\n", k)
		}
	}
	opSC := test.SCOutcomes()
	fmt.Printf("operational SC machine reaches %d outcomes (must match the axiomatic count)\n\n", len(opSC))

	// 2. Is the target behavior ever allowed? Explain its status.
	o := test.TargetOutcome()
	verdict, err := test.Classify(o)
	if err != nil {
		log.Fatal(err)
	}
	if verdict.Allowed {
		fmt.Printf("target %s is ALLOWED under %v\n\n", test.Target, test.Model)
	} else {
		x, _ := test.Execution(o)
		fmt.Printf("target %s is FORBIDDEN under %v\n", test.Target, test.Model)
		fmt.Printf("forbidding cycle: %s\n\n", x.ExplainCycle(verdict.Cycle))
	}

	// 3. Run it across the fleet under a stressed PTE; a conformant
	// device must never exhibit a forbidden target.
	env := harness.PTEBaseline(8, 16)
	env.MaxWorkgroups = env.TestingWorkgroups + 4
	env.MemStressPct = 100
	env.MemStressIters = 8
	env.PreStressPct = 80
	env.PreStressIters = 2
	env.MemStride = 2
	env.MemLocOffset = 1
	for _, prof := range gpu.Profiles() {
		dev, err := gpu.NewDevice(prof, gpu.Bugs{})
		if err != nil {
			log.Fatal(err)
		}
		r, err := harness.NewRunner(dev, env)
		if err != nil {
			log.Fatal(err)
		}
		res, err := r.Run(test, 10, xrand.New(7))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-7s instances=%d target=%d violations=%d\n",
			prof.ShortName, res.Instances, res.TargetCount, res.Violations)
	}
}
