package main

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestExitCodeMapping: partial failures exit 2, even wrapped; plain
// errors exit 1.
func TestExitCodeMapping(t *testing.T) {
	if got := exitCode(&partialFailure{msg: "degraded"}); got != 2 {
		t.Fatalf("partialFailure exit code = %d, want 2", got)
	}
	wrapped := fmt.Errorf("campaign: %w", &partialFailure{msg: "degraded"})
	if got := exitCode(wrapped); got != 2 {
		t.Fatalf("wrapped partialFailure exit code = %d, want 2", got)
	}
	if got := exitCode(errors.New("boom")); got != 1 {
		t.Fatalf("plain error exit code = %d, want 1", got)
	}
}

// TestCampaignFaultInjection: a conformance campaign on a faulty fleet
// completes on the surviving devices, reports every cell that produced
// no data, surfaces breaker health, and signals degraded completion —
// identically at every worker count.
func TestCampaignFaultInjection(t *testing.T) {
	campaign := func(parallel string) (string, error) {
		return capture(t, func() error {
			return run([]string{"campaign", "-kind", "conformance", "-devices", "AMD,Intel",
				"-iters", "4", "-parallel", parallel, "-quiet",
				"-faults", "-fault-rate", "0.4"})
		})
	}
	out, err := campaign("4")
	if err == nil {
		t.Fatal("40% fault rate completed without degradation")
	}
	var pf *partialFailure
	if !errors.As(err, &pf) {
		t.Fatalf("degraded campaign returned %T (%v), want partialFailure", err, err)
	}
	if exitCode(err) != 2 {
		t.Fatalf("degraded campaign exit code = %d, want 2", exitCode(err))
	}
	if !strings.Contains(err.Error(), "produced no data") {
		t.Fatalf("unhelpful degradation message: %v", err)
	}
	for _, want := range []string{"NO DATA", "quarantined"} {
		if !strings.Contains(out, want) {
			t.Errorf("faulty campaign output missing %q:\n%s", want, out)
		}
	}
	// The same chaotic campaign is byte-identical at any worker count.
	for _, parallel := range []string{"1", "8"} {
		other, err2 := campaign(parallel)
		if err2 == nil || err2.Error() != err.Error() {
			t.Fatalf("parallel=%s: error %v, want %v", parallel, err2, err)
		}
		if other != out {
			t.Fatalf("parallel=%s output differs:\n%s\nvs\n%s", parallel, other, out)
		}
	}
}

// TestCampaignFaultFreeUnchanged: without -faults, the same campaign
// still succeeds cleanly — the fault path is strictly opt-in.
func TestCampaignFaultFreeUnchanged(t *testing.T) {
	out, err := capture(t, func() error {
		return run([]string{"campaign", "-kind", "conformance", "-devices", "AMD,Intel",
			"-iters", "4", "-parallel", "4", "-quiet"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "fleet conforms") {
		t.Fatalf("fault-free campaign output:\n%s", out)
	}
	if strings.Contains(out, "NO DATA") || strings.Contains(out, "quarantined") {
		t.Fatalf("fault-free campaign shows degradation:\n%s", out)
	}
}

// TestTuneFaultInjection: a tuning sweep under fault injection writes a
// dataset whose dropped cells are recorded (not silently skipped),
// reports the degradation, and keeps the byte-identity guarantee
// across worker counts.
func TestTuneFaultInjection(t *testing.T) {
	dir := t.TempDir()
	tune := func(path, parallel string) (string, error) {
		return capture(t, func() error {
			return run([]string{"tune", "-out", path, "-envs", "2",
				"-site-iters", "4", "-pte-iters", "2", "-devices", "AMD,Intel",
				"-parallel", parallel, "-quiet", "-faults", "-fault-rate", "0.3"})
		})
	}
	serialPath := filepath.Join(dir, "serial.json")
	out, err := tune(serialPath, "1")
	if err == nil {
		t.Fatal("30% fault rate dropped nothing")
	}
	var pf *partialFailure
	if !errors.As(err, &pf) {
		t.Fatalf("degraded tune returned %T (%v), want partialFailure", err, err)
	}
	if !strings.Contains(out, "dropped") {
		t.Fatalf("tune output missing dropped summary:\n%s", out)
	}
	data, err2 := os.ReadFile(serialPath)
	if err2 != nil {
		t.Fatalf("degraded tune did not write its dataset: %v", err2)
	}
	if !strings.Contains(string(data), `"dropped"`) || !strings.Contains(string(data), `"faults"`) {
		t.Fatal("dataset missing dropped records or fault config")
	}
	parallelPath := filepath.Join(dir, "parallel.json")
	if _, err := tune(parallelPath, "8"); err == nil {
		t.Fatal("parallel chaotic tune dropped nothing")
	}
	parallelData, err2 := os.ReadFile(parallelPath)
	if err2 != nil {
		t.Fatal(err2)
	}
	if string(data) != string(parallelData) {
		t.Fatal("chaotic tune -parallel 8 dataset is not byte-identical to -parallel 1")
	}
}

// TestWatchdogFlagWithoutFaults: -watchdog alone keeps the run
// fault-free (no injection, no breaker) while still bounding kernels.
func TestWatchdogFlagWithoutFaults(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "watchdog.json")
	_, err := capture(t, func() error {
		return run([]string{"tune", "-out", path, "-envs", "1",
			"-site-iters", "2", "-pte-iters", "1", "-devices", "AMD",
			"-quiet", "-watchdog", "1000000000"})
	})
	if err != nil {
		t.Fatalf("generous watchdog degraded a healthy run: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(data), `"dropped"`) {
		t.Fatal("watchdog-only run dropped cells")
	}
}
