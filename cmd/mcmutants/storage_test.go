package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// noTmpResidue asserts atomic publication cleaned up after itself: no
// .tmp files anywhere in dir.
func noTmpResidue(t *testing.T, dir string) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".tmp") {
			t.Fatalf("publication left temp residue: %s", e.Name())
		}
	}
}

// TestCampaignOutArtifact: campaign -out publishes a machine-readable
// JSON report for both kinds, atomically (no .tmp residue).
func TestCampaignOutArtifact(t *testing.T) {
	dir := t.TempDir()
	conf := filepath.Join(dir, "conf.json")
	out, err := capture(t, func() error {
		return run([]string{"campaign", "-kind", "conformance", "-devices", "AMD",
			"-iters", "2", "-quiet", "-out", conf})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "wrote report to") {
		t.Errorf("campaign output does not mention the report:\n%s", out)
	}
	raw, err := os.ReadFile(conf)
	if err != nil {
		t.Fatal(err)
	}
	var art struct {
		Kind        string            `json:"kind"`
		Conformance []json.RawMessage `json:"conformance"`
		Evaluate    []json.RawMessage `json:"evaluate"`
	}
	if err := json.Unmarshal(raw, &art); err != nil {
		t.Fatalf("artifact is not valid JSON: %v", err)
	}
	if art.Kind != "conformance" || len(art.Conformance) != 1 {
		t.Fatalf("artifact kind=%q conformance=%d", art.Kind, len(art.Conformance))
	}

	eval := filepath.Join(dir, "eval.json")
	if _, err := capture(t, func() error {
		return run([]string{"campaign", "-kind", "evaluate", "-devices", "AMD",
			"-envs", "pte", "-iters", "2", "-quiet", "-out", eval})
	}); err != nil {
		t.Fatal(err)
	}
	raw, err = os.ReadFile(eval)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(raw, &art); err != nil {
		t.Fatalf("evaluate artifact is not valid JSON: %v", err)
	}
	if art.Kind != "evaluate" || len(art.Evaluate) != 1 {
		t.Fatalf("artifact kind=%q evaluate=%d", art.Kind, len(art.Evaluate))
	}
	noTmpResidue(t, dir)
}

// TestTuneFsyncEveryFlag: every fsync policy — eager, default, and
// drain-only — produces the same dataset, and a checkpointed run under
// the eager policy resumes byte-identically.
func TestTuneFsyncEveryFlag(t *testing.T) {
	dir := t.TempDir()
	base := []string{"tune", "-envs", "1", "-site-iters", "2", "-pte-iters", "1",
		"-devices", "AMD", "-quiet"}

	cleanPath := filepath.Join(dir, "clean.json")
	if _, err := capture(t, func() error {
		return run(append(base, "-out", cleanPath))
	}); err != nil {
		t.Fatal(err)
	}
	clean, err := os.ReadFile(cleanPath)
	if err != nil {
		t.Fatal(err)
	}

	for _, every := range []string{"1", "-1"} {
		path := filepath.Join(dir, "tuned"+every+".json")
		if _, err := capture(t, func() error {
			return run(append(base, "-out", path, "-resume", "-fsync-every", every))
		}); err != nil {
			t.Fatal(err)
		}
		got, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != string(clean) {
			t.Fatalf("-fsync-every %s dataset differs from the default policy's", every)
		}
	}
	noTmpResidue(t, dir)
}

// TestProfilesPublishedAtomically: -cpuprofile and -memprofile land as
// complete files with no temp residue.
func TestProfilesPublishedAtomically(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	if _, err := capture(t, func() error {
		return run([]string{"tune", "-envs", "1", "-site-iters", "2", "-pte-iters", "1",
			"-devices", "AMD", "-quiet", "-out", filepath.Join(dir, "out.json"),
			"-cpuprofile", cpu, "-memprofile", mem})
	}); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{cpu, mem} {
		fi, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile not published: %v", err)
		}
		if fi.Size() == 0 {
			t.Fatalf("profile %s is empty", p)
		}
	}
	noTmpResidue(t, dir)
}
