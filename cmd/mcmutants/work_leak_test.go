package main

import (
	"context"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"
)

// settledWorkGoroutines polls until the live goroutine count drops to
// want, failing after a deadline. Transient spikes (a poll dialing a
// dead coordinator, an idle HTTP connection unwinding after its server
// closed) only delay the check; a real leak never settles.
func settledWorkGoroutines(t *testing.T, want int) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for {
		n := runtime.NumGoroutine()
		if n <= want {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutines settled at %d, want <= %d\n%s", n, want, buf[:runtime.Stack(buf, true)])
		}
		runtime.Gosched()
		time.Sleep(20 * time.Millisecond)
	}
}

// TestWorkPollLoopLeaksNoGoroutines runs one long-lived worker (no
// -once) across the full lifecycle a fleet worker actually sees: poll
// an address nobody is serving, drain a campaign under a lease TTL
// short enough that renewal is constantly live, outlive that
// coordinator's death, drain a second coordinator generation on the
// same address, and finally get interrupted. The goroutine count must
// not grow across coordinator generations, and cancellation must
// return the process to its pre-worker baseline — a worker that leaks
// a goroutine per poll cycle, per campaign, or per coordinator restart
// fails here under -race.
func TestWorkPollLoopLeaksNoGoroutines(t *testing.T) {
	dir := t.TempDir()
	addr := freeAddr(t)
	// The first campaign run installs the process-wide signal-notify
	// goroutine, which never unwinds; install it before the baseline so
	// the final settlement check measures only the worker's goroutines.
	if err := run([]string{
		"campaign", "-kind", "conformance", "-devices", "AMD", "-envs", "pte",
		"-iters", "1", "-seed", "1", "-quiet", "-out", filepath.Join(dir, "warmup.json"),
	}); err != nil {
		t.Fatalf("warmup campaign: %v", err)
	}
	baseline := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	workDone := make(chan error, 1)
	go func() {
		workDone <- dispatch(ctx, []string{
			"work", "-coordinator", "http://" + addr,
			"-id", "wleak", "-parallel", "2", "-poll", "10ms", "-quiet",
		})
	}()

	// Phase 1: nobody is listening. Let several poll cycles fail.
	time.Sleep(60 * time.Millisecond)

	runCoordinator := func(seed, out string) {
		t.Helper()
		coordDone := make(chan error, 1)
		go func() {
			coordDone <- run([]string{
				"campaign", "-kind", "conformance", "-devices", "AMD",
				"-envs", "pte", "-iters", "4", "-seed", seed, "-quiet",
				"-out", filepath.Join(dir, out),
				"-workers-addr", addr, "-lease-ttl", "150ms", "-range-cells", "2"})
		}()
		select {
		case err := <-coordDone:
			if err != nil {
				t.Fatalf("coordinator (seed %s): %v", seed, err)
			}
		case <-time.After(2 * time.Minute):
			t.Fatalf("coordinator (seed %s) never drained", seed)
		}
	}

	// Phase 2: first coordinator generation. The worker drains it; the
	// coordinator exits and closes its listener — from the worker's
	// side, the coordinator crashed.
	runCoordinator("3", "gen1.json")
	settledWorkGoroutines(t, baseline+2) // worker loop + at most one poll in flight
	afterGen1 := runtime.NumGoroutine()

	// Phase 3: a new coordinator generation binds the same address with
	// new work. The worker must reconnect and drain it without carrying
	// anything over from generation one.
	runCoordinator("5", "gen2.json")
	settledWorkGoroutines(t, afterGen1) // no growth across the restart

	// Phase 4: interrupt. Everything the worker ever spawned unwinds.
	cancel()
	select {
	case err := <-workDone:
		if err == nil || !strings.Contains(err.Error(), "interrupted") {
			t.Fatalf("worker exit = %v, want interrupted", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("worker did not exit on cancellation")
	}
	settledWorkGoroutines(t, baseline)
}
