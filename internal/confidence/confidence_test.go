package confidence

import (
	"math"
	"testing"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestScore(t *testing.T) {
	// Three observations -> ~95% (the paper's example).
	if s := Score(3); !almostEq(s, 0.9502, 1e-4) {
		t.Fatalf("Score(3) = %v", s)
	}
	if Score(0) != 0 || Score(-1) != 0 {
		t.Fatal("nonpositive observations must score 0")
	}
	if s := Score(1000); !almostEq(s, 1, 1e-12) {
		t.Fatalf("Score(1000) = %v", s)
	}
}

func TestRequiredObservations(t *testing.T) {
	// 95% needs 3 observations; 99.999% needs 12.
	if n, err := RequiredObservations(0.95); err != nil || n != 3 {
		t.Fatalf("RequiredObservations(0.95) = %v, %v", n, err)
	}
	if n, err := RequiredObservations(0.99999); err != nil || n != 12 {
		t.Fatalf("RequiredObservations(0.99999) = %v, %v", n, err)
	}
	for _, bad := range []float64{0, 1, -0.5, 1.5} {
		if _, err := RequiredObservations(bad); err == nil {
			t.Errorf("RequiredObservations(%v) accepted", bad)
		}
	}
}

func TestScoreInvertsRequiredObservations(t *testing.T) {
	for _, r := range []float64{0.5, 0.9, 0.95, 0.999, 0.99999} {
		n, err := RequiredObservations(r)
		if err != nil {
			t.Fatal(err)
		}
		if got := Score(n); got < r {
			t.Errorf("Score(%v) = %v < target %v", n, got, r)
		}
	}
}

func TestCeilingRate(t *testing.T) {
	// 95% over 3 seconds: 3 observations / 3 s = 1/s (the paper's
	// example of 20 tests in a minute).
	rate, err := CeilingRate(0.95, 3)
	if err != nil || rate != 1 {
		t.Fatalf("CeilingRate(0.95, 3) = %v, %v", rate, err)
	}
	// 99.999% over 64 seconds: 12/64.
	rate, err = CeilingRate(0.99999, 64)
	if err != nil || !almostEq(rate, 12.0/64, 1e-12) {
		t.Fatalf("CeilingRate(0.99999, 64) = %v", rate)
	}
	if _, err := CeilingRate(0.95, 0); err == nil {
		t.Fatal("zero budget accepted")
	}
}

func TestTotalScore(t *testing.T) {
	// Sec. 4.2's worked numbers: 0.95^20 = 35.8%, 0.99999^20 = 99.98%.
	if s := TotalScore(0.95, 20); !almostEq(s, 0.358, 1e-3) {
		t.Fatalf("TotalScore(0.95, 20) = %v", s)
	}
	if s := TotalScore(0.99999, 20); !almostEq(s, 0.9998, 1e-4) {
		t.Fatalf("TotalScore(0.99999, 20) = %v", s)
	}
	if TotalScore(0.5, 0) != 1 {
		t.Fatal("empty suite must have total score 1")
	}
}

var devices = []string{"NVIDIA", "AMD", "Intel", "M1"}

func table(envRates map[string][4]float64) RateTable {
	rt := RateTable{}
	for env, rs := range envRates {
		m := map[string]float64{}
		for i, d := range devices {
			m[d] = rs[i]
		}
		rt[env] = m
	}
	return rt
}

func TestMergePicksMostDevices(t *testing.T) {
	rt := table(map[string][4]float64{
		"envA": {10, 10, 0, 0},  // meets ceiling on 2 devices
		"envB": {5, 5, 5, 0.01}, // meets ceiling on 3 devices
	})
	m, err := MergeEnvironments(rt, devices, 0.95, 3) // ceiling 1/s
	if err != nil {
		t.Fatal(err)
	}
	if m.Env != "envB" || m.DevicesMeeting != 3 {
		t.Fatalf("chose %+v, want envB with 3 devices", m)
	}
	if m.ReproducibleEverywhere() {
		t.Fatal("3/4 devices must not count as everywhere")
	}
}

func TestMergeTieBreakByMinRate(t *testing.T) {
	rt := table(map[string][4]float64{
		"envA": {100, 100, 2, 2},  // min positive 2
		"envB": {5, 5, 5, 5},      // min positive 5 — wins the tie
		"envC": {1000, 3, 3, 0.5}, // only 3 meet ceiling
	})
	m, err := MergeEnvironments(rt, devices, 0.95, 3)
	if err != nil {
		t.Fatal(err)
	}
	if m.Env != "envB" {
		t.Fatalf("tie-break chose %q, want envB", m.Env)
	}
	if !m.ReproducibleEverywhere() {
		t.Fatal("envB meets the ceiling everywhere")
	}
	if m.MinPositiveRate != 5 {
		t.Fatalf("MinPositiveRate = %v", m.MinPositiveRate)
	}
}

// TestMergeStability checks the paper's stability property: if the
// chosen environment meets the target everywhere, relaxing the target
// or extending the budget keeps the same choice.
func TestMergeStability(t *testing.T) {
	rt := table(map[string][4]float64{
		"envA": {100, 100, 2, 2},
		"envB": {5, 5, 5, 5},
		"envC": {1000, 3, 3, 0.5},
	})
	base, err := MergeEnvironments(rt, devices, 0.95, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !base.ReproducibleEverywhere() {
		t.Fatal("setup: base choice must meet the target everywhere")
	}
	for _, c := range []struct{ r, budget float64 }{
		{0.9, 3}, {0.95, 10}, {0.9, 100}, {0.5, 3},
	} {
		m, err := MergeEnvironments(rt, devices, c.r, c.budget)
		if err != nil {
			t.Fatal(err)
		}
		if m.Env != base.Env {
			t.Errorf("r=%v budget=%v chose %q, want stable %q", c.r, c.budget, m.Env, base.Env)
		}
	}
}

func TestMergeAllZeroRates(t *testing.T) {
	rt := table(map[string][4]float64{
		"envA": {0, 0, 0, 0},
		"envB": {0, 0, 0, 0},
	})
	m, err := MergeEnvironments(rt, devices, 0.95, 3)
	if err != nil {
		t.Fatal(err)
	}
	if m.DevicesMeeting != 0 || m.ReproducibleEverywhere() {
		t.Fatalf("zero rates produced %+v", m)
	}
	if !math.IsInf(m.MinPositiveRate, 1) {
		t.Fatalf("MinPositiveRate = %v, want +Inf", m.MinPositiveRate)
	}
}

func TestMergeEmptyTable(t *testing.T) {
	m, err := MergeEnvironments(RateTable{}, devices, 0.95, 3)
	if err != nil {
		t.Fatal(err)
	}
	if m.Env != "" || m.ReproducibleEverywhere() {
		t.Fatalf("empty table produced %+v", m)
	}
}

func TestMergeDeterministic(t *testing.T) {
	rt := table(map[string][4]float64{
		"envB": {5, 5, 5, 5},
		"envA": {5, 5, 5, 5}, // identical rates: sorted order wins
	})
	for i := 0; i < 10; i++ {
		m, err := MergeEnvironments(rt, devices, 0.95, 3)
		if err != nil {
			t.Fatal(err)
		}
		if m.Env != "envA" {
			t.Fatalf("nondeterministic or unsorted choice: %q", m.Env)
		}
	}
}

func TestMergeRejectsBadParams(t *testing.T) {
	rt := table(map[string][4]float64{"envA": {1, 1, 1, 1}})
	if _, err := MergeEnvironments(rt, devices, 1.5, 3); err == nil {
		t.Fatal("bad target accepted")
	}
	if _, err := MergeEnvironments(rt, devices, 0.95, -1); err == nil {
		t.Fatal("bad budget accepted")
	}
}

func TestBudgetSweepMonotone(t *testing.T) {
	// Rates chosen so that more budget -> lower ceiling -> more
	// reproducible mutants.
	tests := []TestRates{
		{Test: "fast", Rates: table(map[string][4]float64{"e": {100, 100, 100, 100}})},
		{Test: "medium", Rates: table(map[string][4]float64{"e": {3, 3, 3, 3}})},
		{Test: "slow", Rates: table(map[string][4]float64{"e": {0.1, 0.1, 0.1, 0.1}})},
		{Test: "dead", Rates: table(map[string][4]float64{"e": {0, 0, 0, 0}})},
	}
	budgets := PowersOfTwoBudgets(-4, 8)
	points, err := BudgetSweep(tests, devices, []float64{0.95}, budgets)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != len(budgets) {
		t.Fatalf("%d points for %d budgets", len(points), len(budgets))
	}
	prev := -1
	for _, pt := range points {
		if pt.Reproducible < prev {
			t.Fatalf("score decreased with larger budget at %v", pt.Budget)
		}
		prev = pt.Reproducible
		if pt.Total != 4 {
			t.Fatalf("Total = %d", pt.Total)
		}
	}
	last := points[len(points)-1]
	if last.Reproducible != 3 {
		t.Fatalf("at 256s budget, %d reproducible, want 3 (dead never reproduces)", last.Reproducible)
	}
	if !almostEq(last.Score(), 0.75, 1e-12) {
		t.Fatalf("Score() = %v", last.Score())
	}
}

// TestBudgetSweepTargetsOrdering: a stricter target can never
// reproduce more mutants at the same budget.
func TestBudgetSweepTargetsOrdering(t *testing.T) {
	tests := []TestRates{
		{Test: "a", Rates: table(map[string][4]float64{"e": {1, 1, 1, 1}})},
		{Test: "b", Rates: table(map[string][4]float64{"e": {5, 5, 5, 5}})},
	}
	budgets := PowersOfTwoBudgets(-2, 6)
	loose, err := BudgetSweep(tests, devices, []float64{0.95}, budgets)
	if err != nil {
		t.Fatal(err)
	}
	strict, err := BudgetSweep(tests, devices, []float64{0.99999}, budgets)
	if err != nil {
		t.Fatal(err)
	}
	for i := range budgets {
		if strict[i].Reproducible > loose[i].Reproducible {
			t.Fatalf("stricter target reproduced more at budget %v", budgets[i])
		}
	}
}

func TestPowersOfTwoBudgets(t *testing.T) {
	b := PowersOfTwoBudgets(-2, 2)
	want := []float64{0.25, 0.5, 1, 2, 4}
	if len(b) != len(want) {
		t.Fatalf("got %v", b)
	}
	for i := range want {
		if b[i] != want[i] {
			t.Fatalf("got %v, want %v", b, want)
		}
	}
	if PowersOfTwoBudgets(3, 2) != nil {
		t.Fatal("inverted range should be nil")
	}
}

func TestSweepPointScoreEmpty(t *testing.T) {
	if (SweepPoint{}).Score() != 0 {
		t.Fatal("empty sweep point score must be 0")
	}
}
