// Package mutation implements MC Mutants (Section 3 of the paper): the
// systematic generation of MCS conformance litmus tests and their
// mutants from abstract happens-before cycles.
//
// Three mutators are provided, matching Fig. 3:
//
//   - Reversing po-loc (3 events): thread 0 has two same-location
//     accesses in program order, thread 1 has one; the disruptor swaps
//     thread 0's accesses. 8 conformance tests, 8 mutants.
//   - Weakening po-loc (4 events): two threads with two same-location
//     accesses each; the disruptor moves the inner pair to a second
//     location, turning coherence tests into the classic weak-memory
//     shapes (MP, LB, SB, S, R, 2+2W). 6 conformance tests, 6 mutants.
//   - Weakening sw (4 events + fences): message-passing-style shapes
//     synchronized by release/acquire fences; the disruptor removes one
//     or both fences. 6 conformance tests, 18 mutants.
//
// Every generated test carries a target behavior derived from the
// instantiated candidate execution. Generation is self-checking: each
// conformance target is verified disallowed under the test's model and
// each mutant target verified allowed, using package mm's axiomatic
// checker. The totals reproduce Table 2 of the paper: 20 conformance
// tests and 32 mutants.
package mutation

import (
	"fmt"
	"sort"

	"repro/internal/litmus"
	"repro/internal/mm"
)

// Mutator identifies one of the three mutator families.
type Mutator int

const (
	// ReversingPoLoc is Mutator 1 (Sec. 3.1).
	ReversingPoLoc Mutator = iota
	// WeakeningPoLoc is Mutator 2 (Sec. 3.2).
	WeakeningPoLoc
	// WeakeningSW is Mutator 3 (Sec. 3.3).
	WeakeningSW
)

// String names the mutator as in the paper.
func (m Mutator) String() string {
	switch m {
	case ReversingPoLoc:
		return "reversing po-loc"
	case WeakeningPoLoc:
		return "weakening po-loc"
	case WeakeningSW:
		return "weakening sw"
	default:
		return fmt.Sprintf("Mutator(%d)", int(m))
	}
}

// Mutators lists all mutator families in paper order.
func Mutators() []Mutator { return []Mutator{ReversingPoLoc, WeakeningPoLoc, WeakeningSW} }

// MutatorByName resolves a mutator family from its paper name.
func MutatorByName(name string) (Mutator, bool) {
	for _, m := range Mutators() {
		if m.String() == name {
			return m, true
		}
	}
	return 0, false
}

// Suite is the full generated test suite.
type Suite struct {
	// Conformance holds the 20 conformance tests in generation order.
	Conformance []*litmus.Test
	// Mutants holds the 32 mutants in generation order.
	Mutants []*litmus.Test

	byName map[string]*litmus.Test
}

// Generate builds the suite and verifies every target classification.
// An error indicates a bug in the generator itself.
func Generate() (*Suite, error) {
	s := &Suite{byName: map[string]*litmus.Test{}}
	var specs []tspec
	specs = append(specs, reversingPoLocSpecs()...)
	specs = append(specs, weakeningPoLocSpecs()...)
	specs = append(specs, weakeningSWSpecs()...)
	for _, sp := range specs {
		t, err := sp.build()
		if err != nil {
			return nil, err
		}
		if err := verifyTarget(t); err != nil {
			return nil, err
		}
		if _, dup := s.byName[t.Name]; dup {
			return nil, fmt.Errorf("mutation: duplicate test name %q", t.Name)
		}
		s.byName[t.Name] = t
		if t.IsMutant {
			s.Mutants = append(s.Mutants, t)
		} else {
			s.Conformance = append(s.Conformance, t)
		}
	}
	for _, mt := range s.Mutants {
		if _, ok := s.byName[mt.Base]; !ok {
			return nil, fmt.Errorf("mutation: mutant %q has unknown base %q", mt.Name, mt.Base)
		}
	}
	return s, nil
}

// MustGenerate is Generate panicking on error; generation failures are
// programming bugs, not runtime conditions.
func MustGenerate() *Suite {
	s, err := Generate()
	if err != nil {
		panic(err)
	}
	return s
}

// verifyTarget checks the generated test's target against its model:
// conformance targets must be disallowed, mutant targets allowed.
func verifyTarget(t *litmus.Test) error {
	x, err := t.TargetExecution()
	if err != nil {
		return fmt.Errorf("mutation %s: %w", t.Name, err)
	}
	if err := x.Validate(); err != nil {
		return fmt.Errorf("mutation %s: %w", t.Name, err)
	}
	v := x.Check(t.Model)
	if t.IsMutant && !v.Allowed {
		return fmt.Errorf("mutation %s: mutant target %s is disallowed under %v",
			t.Name, t.Target, t.Model)
	}
	if !t.IsMutant && v.Allowed {
		return fmt.Errorf("mutation %s: conformance target %s is allowed under %v",
			t.Name, t.Target, t.Model)
	}
	return nil
}

// ByName returns the test with the given name.
func (s *Suite) ByName(name string) (*litmus.Test, bool) {
	t, ok := s.byName[name]
	return t, ok
}

// MutantsOf returns the mutants derived from the named conformance test,
// in generation order.
func (s *Suite) MutantsOf(base string) []*litmus.Test {
	var out []*litmus.Test
	for _, m := range s.Mutants {
		if m.Base == base {
			out = append(out, m)
		}
	}
	return out
}

// OfMutator returns the conformance tests and mutants belonging to one
// mutator family.
func (s *Suite) OfMutator(m Mutator) (conformance, mutants []*litmus.Test) {
	name := m.String()
	for _, t := range s.Conformance {
		if t.Mutator == name {
			conformance = append(conformance, t)
		}
	}
	for _, t := range s.Mutants {
		if t.Mutator == name {
			mutants = append(mutants, t)
		}
	}
	return conformance, mutants
}

// Counts reproduces Table 2: conformance and mutant totals per mutator.
func (s *Suite) Counts() map[Mutator][2]int {
	out := map[Mutator][2]int{}
	for _, m := range Mutators() {
		c, mu := s.OfMutator(m)
		out[m] = [2]int{len(c), len(mu)}
	}
	return out
}

// Names returns all test names sorted, mutants included.
func (s *Suite) Names() []string {
	names := make([]string, 0, len(s.byName))
	for n := range s.byName {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// All returns conformance tests followed by mutants.
func (s *Suite) All() []*litmus.Test {
	out := make([]*litmus.Test, 0, len(s.Conformance)+len(s.Mutants))
	out = append(out, s.Conformance...)
	out = append(out, s.Mutants...)
	return out
}

// ---- internal test-spec layer ----
//
// Register indices in litmus tests are assigned in load-appearance
// order, which changes when the disruptor reorders events. The spec
// layer names events and resolves target read values to register
// indices after layout, so conformance tests and their mutants can
// share event descriptions.

// espec describes one event of a spec thread.
type espec struct {
	kind    mm.Kind
	loc     int
	wval    mm.Val // value stored (Write, RMW)
	rval    mm.Val // target read value (Read, RMW) ...
	hasRval bool   // ... when constrained
	label   string
}

func eread(loc int, label string) espec {
	return espec{kind: mm.Read, loc: loc, label: label}
}

func ereadV(loc int, v mm.Val, label string) espec {
	return espec{kind: mm.Read, loc: loc, rval: v, hasRval: true, label: label}
}

func ewrite(loc int, v mm.Val, label string) espec {
	return espec{kind: mm.Write, loc: loc, wval: v, label: label}
}

func ermw(loc int, wv mm.Val, label string) espec {
	return espec{kind: mm.RMW, loc: loc, wval: wv, label: label}
}

func ermwV(loc int, wv, rv mm.Val, label string) espec {
	return espec{kind: mm.RMW, loc: loc, wval: wv, rval: rv, hasRval: true, label: label}
}

func efence(label string) espec { return espec{kind: mm.Fence, label: label} }

// tspec describes one full test.
type tspec struct {
	name          string
	mutator       Mutator
	isMutant      bool
	base          string
	model         mm.MCS
	threads       [][]espec
	observer      []mm.Val // observer thread: one read of obsLoc per target value
	obsLoc        int
	finals        map[int]mm.Val
	fencesRemoved int
}

// build lays the spec out as a litmus test and resolves the target.
func (ts tspec) build() (*litmus.Test, error) {
	b := litmus.NewBuilder(ts.name, ts.model)
	target := litmus.Condition{Regs: map[int]mm.Val{}, Final: map[int]mm.Val{}}
	reg := 0
	for _, th := range ts.threads {
		b.Thread()
		for _, e := range th {
			switch e.kind {
			case mm.Read:
				b.LoadL(e.loc, e.label)
				if e.hasRval {
					target.Regs[reg] = e.rval
				}
				reg++
			case mm.Write:
				b.StoreL(e.loc, e.wval, e.label)
			case mm.RMW:
				b.ExchangeL(e.loc, e.wval, e.label)
				if e.hasRval {
					target.Regs[reg] = e.rval
				}
				reg++
			case mm.Fence:
				b.FenceL(e.label)
			}
		}
	}
	if len(ts.observer) > 0 {
		b.Observer()
		for i, v := range ts.observer {
			b.LoadL(ts.obsLoc, fmt.Sprintf("o%d", i))
			target.Regs[reg] = v
			reg++
		}
	}
	for l, v := range ts.finals {
		target.Final[l] = v
	}
	b.Target(target)
	if ts.isMutant {
		b.Mutant(ts.mutator.String(), ts.base)
	} else {
		b.Conformance(ts.mutator.String())
	}
	var t *litmus.Test
	err := func() (err error) {
		defer func() {
			if r := recover(); r != nil {
				err = fmt.Errorf("mutation %s: %v", ts.name, r)
			}
		}()
		t = b.Build()
		return nil
	}()
	if err != nil {
		return nil, err
	}
	t.FencesRemoved = ts.fencesRemoved
	return t, nil
}
