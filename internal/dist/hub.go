package dist

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"sync"
)

// Hub exposes registered coordinators over HTTP. One hub serves any
// number of campaigns (the campaign server registers each submitted
// distributed job; the CLI registers its one or two campaigns), each
// under /dist/v1/campaigns/{name}.
type Hub struct {
	mu     sync.Mutex
	seq    int
	coords map[string]*hubEntry
	mux    *http.ServeMux
}

type hubEntry struct {
	seq   int
	coord *Coordinator
}

// NewHub returns an empty hub.
func NewHub() *Hub {
	h := &Hub{coords: map[string]*hubEntry{}}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /dist/v1/campaigns", h.handleList)
	mux.HandleFunc("GET /dist/v1/campaigns/{name}", h.handleInfo)
	mux.HandleFunc("POST /dist/v1/campaigns/{name}/acquire", h.handleAcquire)
	mux.HandleFunc("POST /dist/v1/campaigns/{name}/renew", h.handleRenew)
	mux.HandleFunc("POST /dist/v1/campaigns/{name}/deliver", h.handleDeliver)
	h.mux = mux
	return h
}

// Register publishes a coordinator under name. Names must be unique
// while registered.
func (h *Hub) Register(name string, c *Coordinator) error {
	if name == "" {
		return fmt.Errorf("dist: campaign registration needs a name")
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if _, dup := h.coords[name]; dup {
		return fmt.Errorf("dist: campaign %q already registered", name)
	}
	h.seq++
	h.coords[name] = &hubEntry{seq: h.seq, coord: c}
	return nil
}

// Unregister withdraws a campaign; subsequent RPCs for it fail.
func (h *Hub) Unregister(name string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	delete(h.coords, name)
}

// Get looks a registered coordinator up.
func (h *Hub) Get(name string) (*Coordinator, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	e, ok := h.coords[name]
	if !ok {
		return nil, false
	}
	return e.coord, true
}

// List returns the registered campaigns' WorkInfo in registration
// order — the order workers should drain them in (evaluate registers
// one campaign per device sequentially).
func (h *Hub) List() []WorkInfo {
	h.mu.Lock()
	entries := make([]*hubEntry, 0, len(h.coords))
	for _, e := range h.coords {
		entries = append(entries, e)
	}
	h.mu.Unlock()
	sort.Slice(entries, func(a, b int) bool { return entries[a].seq < entries[b].seq })
	out := make([]WorkInfo, 0, len(entries))
	for _, e := range entries {
		out = append(out, *e.coord.Info())
	}
	return out
}

// ServeHTTP implements http.Handler; mount the hub at the server
// root (it routes everything under /dist/v1/).
func (h *Hub) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	h.mux.ServeHTTP(w, r)
}

func (h *Hub) lookup(w http.ResponseWriter, r *http.Request) (*Coordinator, bool) {
	c, ok := h.Get(r.PathValue("name"))
	if !ok {
		http.Error(w, ErrUnknownCampaign.Error(), http.StatusNotFound)
		return nil, false
	}
	return c, true
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

func readJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		http.Error(w, fmt.Sprintf("dist: bad request body: %v", err), http.StatusBadRequest)
		return false
	}
	return true
}

func (h *Hub) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, h.List())
}

func (h *Hub) handleInfo(w http.ResponseWriter, r *http.Request) {
	c, ok := h.lookup(w, r)
	if !ok {
		return
	}
	writeJSON(w, c.Info())
}

func (h *Hub) handleAcquire(w http.ResponseWriter, r *http.Request) {
	c, ok := h.lookup(w, r)
	if !ok {
		return
	}
	var req AcquireRequest
	if !readJSON(w, r, &req) {
		return
	}
	writeJSON(w, c.Acquire(req))
}

func (h *Hub) handleRenew(w http.ResponseWriter, r *http.Request) {
	c, ok := h.lookup(w, r)
	if !ok {
		return
	}
	var req RenewRequest
	if !readJSON(w, r, &req) {
		return
	}
	writeJSON(w, c.Renew(req))
}

func (h *Hub) handleDeliver(w http.ResponseWriter, r *http.Request) {
	c, ok := h.lookup(w, r)
	if !ok {
		return
	}
	var req DeliverRequest
	if !readJSON(w, r, &req) {
		return
	}
	writeJSON(w, c.Deliver(req))
}
