// Package confidence implements MCS Test Confidence (Sec. 4.2 of the
// paper): statistical reproducibility scores for testing environments,
// and Algorithm 1 (MergeEnvironments), which curates one environment
// per test that works across devices — the machinery behind the
// WebGPU conformance test suite's time budget.
//
// The key identity, due to prior work: if a behavior was observed x
// times in a testing window, the probability that an identical
// subsequent window observes it at least once is 1 - e^-x, the
// reproducibility score.
package confidence

import (
	"fmt"
	"math"
	"sort"
)

// Score returns the reproducibility score for x observations per
// budget window: 1 - e^-x. Three observations give ~95%.
func Score(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return 1 - math.Exp(-x)
}

// RequiredObservations inverts Score: the (integer) number of
// observations per window needed for a reproducibility target r in
// (0, 1): ceil(-ln(1-r)).
func RequiredObservations(r float64) (float64, error) {
	if r <= 0 || r >= 1 {
		return 0, fmt.Errorf("confidence: target %v outside (0,1)", r)
	}
	return math.Ceil(-math.Log(1 - r)), nil
}

// CeilingRate is line 7 of Algorithm 1: the mutant death rate (per
// second) an environment must sustain so that a run of length budget
// seconds meets the reproducibility target r.
func CeilingRate(r, budget float64) (float64, error) {
	if budget <= 0 {
		return 0, fmt.Errorf("confidence: budget %v must be positive", budget)
	}
	obs, err := RequiredObservations(r)
	if err != nil {
		return 0, err
	}
	return obs / budget, nil
}

// TotalScore returns the probability that a suite of n tests, each
// individually reproducible with score r, all reproduce in one run:
// r^n. (Sec. 4.2: twenty 95% tests give only 35.8%; twenty 99.999%
// tests give 99.98%.)
func TotalScore(r float64, n int) float64 {
	if n <= 0 {
		return 1
	}
	return math.Pow(r, float64(n))
}

// RateTable holds a mutant's death rates: environment -> device ->
// rate (observations per second).
type RateTable map[string]map[string]float64

// Merged is the result of MergeEnvironments for one mutant.
type Merged struct {
	// Env is the chosen environment's key; empty when the table is
	// empty.
	Env string
	// DevicesMeeting is how many devices met the ceiling rate under
	// the chosen environment.
	DevicesMeeting int
	// TotalDevices is the device count evaluated.
	TotalDevices int
	// MinPositiveRate is the smallest nonzero rate of the chosen
	// environment across devices (+Inf if all rates are zero),
	// Algorithm 1's tie-breaker.
	MinPositiveRate float64
}

// ReproducibleEverywhere reports whether the chosen environment met
// the ceiling on every device.
func (m Merged) ReproducibleEverywhere() bool {
	return m.TotalDevices > 0 && m.DevicesMeeting == m.TotalDevices
}

// MergeEnvironments is Algorithm 1 of the paper: given a mutant's death
// rates across environments and devices, a reproducibility target r and
// a per-test time budget (seconds), choose the environment that meets
// the ceiling rate on the most devices, breaking ties by the largest
// minimum nonzero rate. Environments are visited in sorted key order,
// making the choice deterministic.
func MergeEnvironments(rates RateTable, devices []string, r, budget float64) (Merged, error) {
	ceiling, err := CeilingRate(r, budget)
	if err != nil {
		return Merged{}, err
	}
	envs := make([]string, 0, len(rates))
	for e := range rates {
		envs = append(envs, e)
	}
	sort.Strings(envs)
	best := Merged{MinPositiveRate: math.Inf(1), TotalDevices: len(devices)}
	bestN := -1
	for _, e := range envs {
		n := 0
		minRate := math.Inf(1)
		for _, d := range devices {
			rate := rates[e][d]
			if rate >= ceiling {
				n++
			}
			if rate > 0 && rate < minRate {
				minRate = rate
			}
		}
		if n > bestN || (n == bestN && minRate > best.MinPositiveRate) {
			best = Merged{
				Env:             e,
				DevicesMeeting:  n,
				TotalDevices:    len(devices),
				MinPositiveRate: minRate,
			}
			bestN = n
		}
	}
	if bestN < 0 {
		return Merged{TotalDevices: len(devices), MinPositiveRate: math.Inf(1)}, nil
	}
	return best, nil
}

// TestRates pairs a mutant with its rate table.
type TestRates struct {
	Test  string
	Rates RateTable
}

// SweepPoint is one point of the Fig. 6 budget sweep.
type SweepPoint struct {
	// Budget is the per-test time budget in seconds.
	Budget float64
	// Target is the reproducibility target.
	Target float64
	// Reproducible is the number of mutants whose merged environment
	// met the ceiling rate on every device.
	Reproducible int
	// Total is the number of mutants evaluated.
	Total int
}

// Score returns the mutation score at this point.
func (p SweepPoint) Score() float64 {
	if p.Total == 0 {
		return 0
	}
	return float64(p.Reproducible) / float64(p.Total)
}

// BudgetSweep evaluates every (budget, target) combination over all
// mutants, reproducing Fig. 6: how many mutants a merged-environment
// suite reproduces everywhere as the time budget varies.
func BudgetSweep(tests []TestRates, devices []string, targets, budgets []float64) ([]SweepPoint, error) {
	var out []SweepPoint
	for _, target := range targets {
		for _, budget := range budgets {
			pt := SweepPoint{Budget: budget, Target: target, Total: len(tests)}
			for _, tr := range tests {
				m, err := MergeEnvironments(tr.Rates, devices, target, budget)
				if err != nil {
					return nil, fmt.Errorf("confidence: %s: %w", tr.Test, err)
				}
				if m.ReproducibleEverywhere() {
					pt.Reproducible++
				}
			}
			out = append(out, pt)
		}
	}
	return out, nil
}

// PowersOfTwoBudgets returns budgets 2^lo .. 2^hi seconds inclusive,
// the x-axis of Fig. 6 (the paper sweeps 2^-10 .. 2^6).
func PowersOfTwoBudgets(lo, hi int) []float64 {
	if hi < lo {
		return nil
	}
	out := make([]float64, 0, hi-lo+1)
	for e := lo; e <= hi; e++ {
		out = append(out, math.Pow(2, float64(e)))
	}
	return out
}
