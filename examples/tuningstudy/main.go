// Tuningstudy runs a scaled-down Fig. 5: the 32-mutant suite across
// the four environment families (SITE Baseline, SITE, PTE Baseline,
// PTE) on the Table 3 device fleet, reporting mutation scores and
// average mutant death rates per mutator and device, plus the headline
// aggregate comparisons of Sec. 5.2.
//
//	go run ./examples/tuningstudy
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/mutation"
	"repro/internal/report"
	"repro/internal/tuning"
)

func main() {
	suite, err := mutation.Generate()
	if err != nil {
		log.Fatal(err)
	}
	cfg := tuning.SmallConfig()
	cfg.Environments = 5
	cfg.SITEIterations = 30
	cfg.PTEIterations = 4
	fmt.Fprintln(os.Stderr, "running the tuning study (4 families x 4 devices x 32 mutants)...")
	ds, err := tuning.Run(cfg, suite.Mutants, nil)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Print(report.Fig5(ds))

	// Headline aggregates (Sec. 5.2): PTE vs SITE in score and rate.
	pteKilled, total := ds.MutationScore("PTE", "", "")
	siteKilled, _ := ds.MutationScore("SITE", "", "")
	pteBaseKilled, _ := ds.MutationScore("PTE-Baseline", "", "")
	siteBaseKilled, _ := ds.MutationScore("SITE-Baseline", "", "")
	pteRate := ds.AvgDeathRate("PTE", "", "")
	siteRate := ds.AvgDeathRate("SITE", "", "")

	pct := func(k int) float64 { return 100 * float64(k) / float64(total) }
	fmt.Println("== headline comparison (paper Sec. 5.2) ==")
	fmt.Printf("mutation score: PTE %.1f%%  SITE %.1f%%  PTE-Baseline %.1f%%  SITE-Baseline %.1f%%\n",
		pct(pteKilled), pct(siteKilled), pct(pteBaseKilled), pct(siteBaseKilled))
	fmt.Printf("avg death rate: PTE %.4g/s  SITE %.4g/s", pteRate, siteRate)
	if siteRate > 0 {
		fmt.Printf("  (%.0fx)", pteRate/siteRate)
	}
	fmt.Println()
	fmt.Println()
	fmt.Println("paper's shape: PTE kills more mutants than SITE at a death rate")
	fmt.Println("orders of magnitude higher; stress helps SITE most; the reversing")
	fmt.Println("po-loc mutants die fastest and the weakening sw mutants slowest.")
}
