package sched

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/xrand"
)

// collectProgress runs the campaign with an OnProgress hook that
// appends every snapshot. The slice needs no locking: the tracker
// serializes callback invocations (ticker goroutine joined before the
// final emit), which is itself part of the contract under test — the
// race detector enforces it.
func collectProgress[R any](t *testing.T, ctx context.Context, spec Spec, exec Exec[R], opts Options[R]) ([]Progress, *Report[R], error) {
	t.Helper()
	var snaps []Progress
	opts.OnProgress = func(p Progress) { snaps = append(snaps, p) }
	if opts.ProgressEvery == 0 {
		opts.ProgressEvery = time.Millisecond
	}
	rep, err := RunContext(ctx, spec, exec, opts)
	return snaps, rep, err
}

// TestProgressSnapshotContract is the contract the serve SSE hub
// depends on: snapshots arrive while the campaign runs, Done never
// decreases, exactly one Final snapshot is delivered, it is the last
// one, and it happens before RunContext returns with the settled
// counters.
func TestProgressSnapshotContract(t *testing.T) {
	spec := testSpec(64)
	slow := func(ctx context.Context, c Cell, rng *xrand.Rand) (uint64, error) {
		time.Sleep(200 * time.Microsecond)
		return drawSum(ctx, c, rng)
	}
	snaps, rep, err := collectProgress(t, context.Background(), spec, slow, Options[uint64]{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) == 0 {
		t.Fatal("no snapshots delivered")
	}
	last := -1
	finals := 0
	for i, p := range snaps {
		if p.Campaign != "unit" || p.Total != 64 {
			t.Fatalf("snapshot %d: campaign %q total %d, want unit/64", i, p.Campaign, p.Total)
		}
		if p.Done < last {
			t.Fatalf("snapshot %d: Done %d < previous %d (not monotonic)", i, p.Done, last)
		}
		last = p.Done
		if p.Final {
			finals++
			if i != len(snaps)-1 {
				t.Fatalf("Final snapshot at index %d of %d: not last", i, len(snaps))
			}
		}
	}
	if finals != 1 {
		t.Fatalf("got %d Final snapshots, want exactly 1", finals)
	}
	fin := snaps[len(snaps)-1]
	if fin.Done != 64 || fin.Executed != rep.Executed || fin.Failed != rep.Failed {
		t.Fatalf("final snapshot %+v does not match report (executed %d, failed %d)",
			fin, rep.Executed, rep.Failed)
	}
	if fin.DeviceBusy["AMD"] <= 0 || fin.DeviceBusy["Intel"] <= 0 {
		t.Fatalf("final snapshot lost device busy time: %v", fin.DeviceBusy)
	}
	if fin.CellsPerSec <= 0 {
		t.Fatalf("final snapshot cells/s = %v, want > 0", fin.CellsPerSec)
	}
}

// TestProgressFinalWithoutTicks proves the final snapshot does not
// depend on the cadence: a campaign far shorter than ProgressEvery
// still delivers exactly one (Final) snapshot before returning.
func TestProgressFinalWithoutTicks(t *testing.T) {
	spec := testSpec(5)
	var got atomic.Int32
	var final atomic.Bool
	_, err := Run(spec, drawSum, Options[uint64]{
		Workers:       4,
		ProgressEvery: time.Hour,
		OnProgress: func(p Progress) {
			got.Add(1)
			final.Store(p.Final)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got.Load() != 1 || !final.Load() {
		t.Fatalf("got %d snapshots (final %v), want exactly 1 final one", got.Load(), final.Load())
	}
}

// TestProgressInterrupted: a cancelled campaign still settles and
// emits its final snapshot — with the interrupted count — before
// RunContext returns, so a streaming consumer always observes the
// drain verdict.
func TestProgressInterrupted(t *testing.T) {
	spec := testSpec(40)
	ctx, cancel := context.WithCancel(context.Background())
	var started atomic.Int32
	exec := func(ctx context.Context, c Cell, rng *xrand.Rand) (uint64, error) {
		if started.Add(1) == 8 {
			cancel()
		}
		return drawSum(ctx, c, rng)
	}
	snaps, rep, err := collectProgress(t, ctx, spec, exec, Options[uint64]{Workers: 2})
	if !errors.Is(err, ErrInterrupted) {
		t.Fatalf("err = %v, want ErrInterrupted", err)
	}
	if len(snaps) == 0 {
		t.Fatal("no snapshots delivered")
	}
	fin := snaps[len(snaps)-1]
	if !fin.Final {
		t.Fatalf("last snapshot not Final: %+v", fin)
	}
	if fin.Interrupted != rep.Interrupted || fin.Interrupted == 0 {
		t.Fatalf("final snapshot Interrupted = %d, report %d (want equal, nonzero)",
			fin.Interrupted, rep.Interrupted)
	}
	if fin.Done+fin.Interrupted != fin.Total {
		t.Fatalf("final snapshot inconsistent: done %d + interrupted %d != total %d",
			fin.Done, fin.Interrupted, fin.Total)
	}
}

// TestProgressReplayAndBreaker: replayed cells and breaker verdicts
// land in the final snapshot exactly as in the settled report.
func TestProgressReplayAndBreaker(t *testing.T) {
	spec := testSpec(24)
	dir := t.TempDir()
	ck, err := OpenCheckpoint(dir+"/ck", spec, false)
	if err != nil {
		t.Fatal(err)
	}
	// Complete the first 10 cells, then resume with progress enabled.
	n := 0
	_, err = Run(spec, func(ctx context.Context, c Cell, rng *xrand.Rand) (uint64, error) {
		return drawSum(ctx, c, rng)
	}, Options[uint64]{Checkpoint: ck, Workers: 1, OnCellStart: func(Cell) { n++ }})
	if err != nil {
		t.Fatal(err)
	}
	ck.Close()
	ck, err = OpenCheckpoint(dir+"/ck", spec, true)
	if err != nil {
		t.Fatal(err)
	}
	defer ck.Close()
	snaps, rep, err := collectProgress(t, context.Background(), spec, drawSum,
		Options[uint64]{Workers: 4, Checkpoint: ck})
	if err != nil {
		t.Fatal(err)
	}
	fin := snaps[len(snaps)-1]
	if fin.Replayed != rep.Replayed || fin.Replayed != len(spec.Cells) {
		t.Fatalf("final Replayed = %d, report %d, want %d", fin.Replayed, rep.Replayed, len(spec.Cells))
	}
	if fin.Done != fin.Total {
		t.Fatalf("final Done = %d, want %d", fin.Done, fin.Total)
	}
}
