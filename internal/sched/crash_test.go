package sched

import (
	"bufio"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"

	"repro/internal/diskio"
)

// countCheckpointOps runs the spec to completion through a fault-free
// FaultFS and returns how many mutating I/O operations the campaign's
// checkpoint performs end to end — the crash-boundary space for
// TestCampaignSurvivesCrashAtEveryIOBoundary. Workers is 1 so the
// operation sequence is deterministic.
func countCheckpointOps(t *testing.T, spec Spec) int {
	t.Helper()
	dir := t.TempDir()
	ffs := diskio.NewFaultFS(diskio.OS{}, 7)
	ck, err := OpenCheckpointOpts(filepath.Join(dir, "c.ckpt"), spec, false,
		CheckpointOptions{FS: ffs, FsyncEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(spec, drawValue, Options[cellValue]{Workers: 1, Checkpoint: ck}); err != nil {
		t.Fatal(err)
	}
	if err := ck.Close(); err != nil {
		t.Fatal(err)
	}
	return ffs.Ops()
}

// TestCampaignSurvivesCrashAtEveryIOBoundary is the storage layer's
// acceptance criterion: a campaign whose process dies at ANY single
// I/O operation — header creation, record append, fsync, rename,
// directory sync, the lot — resumes to results identical to an
// uninterrupted run, and the on-disk checkpoint is never left in a
// state the resume cannot handle.
func TestCampaignSurvivesCrashAtEveryIOBoundary(t *testing.T) {
	spec := testSpec(6)
	clean, err := Run(spec, drawValue, Options[cellValue]{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	want := clean.Values()
	total := countCheckpointOps(t, spec)
	if total < 10 {
		t.Fatalf("only %d checkpoint ops; the boundary space is implausibly small", total)
	}

	for n := 1; n <= total; n++ {
		dir := t.TempDir()
		path := filepath.Join(dir, "c.ckpt")
		ffs := diskio.NewFaultFS(diskio.OS{}, 7)
		ffs.CrashAfter(n)

		// Doomed run: freeze all I/O at the nth operation, simulating the
		// process dying there. The open or the run fails with ErrCrashed —
		// never a panic, never a silently-wrong success.
		ck, err := OpenCheckpointOpts(path, spec, false, CheckpointOptions{FS: ffs, FsyncEvery: 1})
		if err != nil {
			if !errors.Is(err, diskio.ErrCrashed) {
				t.Fatalf("n=%d: open failed with a non-crash error: %v", n, err)
			}
		} else {
			if _, err := Run(spec, drawValue, Options[cellValue]{Workers: 1, Checkpoint: ck}); err != nil && !errors.Is(err, diskio.ErrCrashed) {
				t.Fatalf("n=%d: run failed with a non-crash error: %v", n, err)
			}
			ck.Close() // frozen close still releases the descriptor
		}
		if !ffs.Crashed() {
			t.Fatalf("n=%d: crash point inside the profiled range never fired", n)
		}

		// Resume on the real filesystem, as a restarted process would.
		// Whatever the crash left behind — no file, a stray .tmp, a torn
		// tail — the resume salvages it and finishes the campaign.
		ck2, err := OpenCheckpointOpts(path, spec, true, CheckpointOptions{})
		if err != nil {
			t.Fatalf("n=%d: resume failed: %v", n, err)
		}
		rep, err := Run(spec, drawValue, Options[cellValue]{Workers: 1, Checkpoint: ck2})
		if err != nil {
			t.Fatalf("n=%d: resumed run failed: %v", n, err)
		}
		if err := ck2.Close(); err != nil {
			t.Fatalf("n=%d: close after resume: %v", n, err)
		}
		got := rep.Values()
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("n=%d: cell %d: resumed %+v != clean %+v", n, i, got[i], want[i])
			}
		}
		if rep.Replayed+rep.Executed != len(spec.Cells) {
			t.Fatalf("n=%d: replayed %d + executed %d != %d cells", n, rep.Replayed, rep.Executed, len(spec.Cells))
		}
		// The resumed checkpoint is itself clean: one more resume loads
		// every cell.
		ck3, err := OpenCheckpoint(path, spec, true)
		if err != nil {
			t.Fatalf("n=%d: post-resume checkpoint unreadable: %v", n, err)
		}
		if ck3.Completed() != len(spec.Cells) {
			t.Fatalf("n=%d: post-resume checkpoint holds %d cells, want %d", n, ck3.Completed(), len(spec.Cells))
		}
		ck3.Close()
	}
}

// TestCheckpointTornTailAtEveryByteOffset truncates the checkpoint at
// every byte offset inside its final record. Each truncation must
// either salvage cleanly — the torn tail is discarded and the campaign
// resumes to clean-run results — or be reported as ErrCheckpointCorrupt;
// never a panic, never a partial replay of a half-record.
func TestCheckpointTornTailAtEveryByteOffset(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "c.ckpt")
	spec := testSpec(5)
	clean, err := Run(spec, drawValue, Options[cellValue]{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	want := clean.Values()
	ck, err := OpenCheckpoint(path, spec, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(spec, drawValue, Options[cellValue]{Workers: 1, Checkpoint: ck}); err != nil {
		t.Fatal(err)
	}
	ck.Close()
	whole, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	body := strings.TrimRight(string(whole), "\n")
	lastStart := strings.LastIndexByte(body, '\n') + 1 // first byte of the final record

	for cut := lastStart; cut <= len(whole); cut++ {
		if err := os.WriteFile(path, whole[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		ck2, err := OpenCheckpoint(path, spec, true)
		if err != nil {
			// A truncation is allowed to read as corruption (e.g. the cut
			// leaves valid JSON whose value no longer matches its CRC), but
			// it must say so with the sentinel, not an opaque failure.
			if !errors.Is(err, ErrCheckpointCorrupt) {
				t.Fatalf("cut=%d: non-corruption error: %v", cut, err)
			}
			continue
		}
		n := ck2.Completed()
		if n != len(spec.Cells) && n != len(spec.Cells)-1 {
			t.Fatalf("cut=%d: salvaged %d cells, want %d or %d", cut, n, len(spec.Cells)-1, len(spec.Cells))
		}
		rep, err := Run(spec, drawValue, Options[cellValue]{Workers: 1, Checkpoint: ck2})
		if err != nil {
			t.Fatalf("cut=%d: resumed run failed: %v", cut, err)
		}
		ck2.Close()
		got := rep.Values()
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("cut=%d: cell %d: resumed %+v != clean %+v", cut, i, got[i], want[i])
			}
		}
	}
}

// TestCheckpointDegradesOnENOSPC: a checkpoint that hits disk-full
// mid-campaign switches to in-memory operation — the campaign finishes
// with results identical to a clean run and the report says so —
// instead of dying with a write error.
func TestCheckpointDegradesOnENOSPC(t *testing.T) {
	spec := testSpec(8)
	clean, err := Run(spec, drawValue, Options[cellValue]{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	ffs := diskio.NewFaultFS(diskio.OS{}, 7)
	ck, err := OpenCheckpointOpts(filepath.Join(dir, "c.ckpt"), spec, false,
		CheckpointOptions{FS: ffs, FsyncEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	ffs.FailFrom(ffs.Ops()+3, syscall.ENOSPC) // disk fills a couple of records in
	rep, err := Run(spec, drawValue, Options[cellValue]{Workers: 1, Checkpoint: ck})
	if err != nil {
		t.Fatalf("ENOSPC killed the campaign instead of degrading: %v", err)
	}
	if !rep.StorageDegraded || rep.StorageErr == "" {
		t.Fatalf("report not marked degraded: degraded=%v err=%q", rep.StorageDegraded, rep.StorageErr)
	}
	if derr := ck.Degraded(); derr == nil || !strings.Contains(derr.Error(), "in-memory") {
		t.Fatalf("Degraded() = %v", derr)
	}
	if err := ck.Close(); err != nil {
		t.Fatalf("close of degraded checkpoint: %v", err)
	}
	got, want := rep.Values(), clean.Values()
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("cell %d: degraded %+v != clean %+v", i, got[i], want[i])
		}
	}
}

// TestCheckpointDegradesOnEIO: a single I/O error on a sync degrades
// the checkpoint exactly like ENOSPC — degradation is sticky, so one
// flaky sector cannot flap the checkpoint in and out of durability.
func TestCheckpointDegradesOnEIO(t *testing.T) {
	spec := testSpec(6)
	dir := t.TempDir()
	ffs := diskio.NewFaultFS(diskio.OS{}, 7)
	ck, err := OpenCheckpointOpts(filepath.Join(dir, "c.ckpt"), spec, false,
		CheckpointOptions{FS: ffs, FsyncEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	ffs.FailOp(ffs.Ops()+2, syscall.EIO) // exactly one failing operation
	rep, err := Run(spec, drawValue, Options[cellValue]{Workers: 1, Checkpoint: ck})
	if err != nil {
		t.Fatalf("EIO killed the campaign instead of degrading: %v", err)
	}
	if !rep.StorageDegraded {
		t.Fatal("report not marked degraded after EIO")
	}
	if err := ck.Close(); err != nil {
		t.Fatalf("close of degraded checkpoint: %v", err)
	}
}

// TestCheckpointNonStorageErrorIsFatal: only exhausted or failing media
// degrades. Any other write failure — here a permission error — is a
// hard campaign failure, because continuing would paper over a bug.
func TestCheckpointNonStorageErrorIsFatal(t *testing.T) {
	spec := testSpec(4)
	dir := t.TempDir()
	ffs := diskio.NewFaultFS(diskio.OS{}, 7)
	ck, err := OpenCheckpointOpts(filepath.Join(dir, "c.ckpt"), spec, false,
		CheckpointOptions{FS: ffs, FsyncEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer ck.Close()
	ffs.FailFrom(ffs.Ops()+1, syscall.EACCES)
	_, err = Run(spec, drawValue, Options[cellValue]{Workers: 1, Checkpoint: ck})
	if err == nil {
		t.Fatal("non-storage write error did not fail the campaign")
	}
	if !errors.Is(err, syscall.EACCES) {
		t.Fatalf("error does not carry the cause: %v", err)
	}
}

// TestCheckpointRejectsEmptyFile: the header is published atomically,
// so our writer can never leave an empty checkpoint behind; an empty
// file at the path is damage and -resume refuses it loudly instead of
// silently starting over.
func TestCheckpointRejectsEmptyFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "c.ckpt")
	if err := os.WriteFile(path, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := OpenCheckpoint(path, testSpec(2), true)
	if err == nil {
		t.Fatal("empty checkpoint accepted")
	}
	if !errors.Is(err, ErrCheckpointCorrupt) {
		t.Fatalf("error is not ErrCheckpointCorrupt: %v", err)
	}
	if !strings.Contains(err.Error(), "no header") {
		t.Fatalf("unhelpful error: %v", err)
	}
}

// TestCheckpointOversizedRecordRejectedAtWrite: a record too large for
// a later resume to scan is refused at record() time — before touching
// the file — so the writer cannot produce a checkpoint its own reader
// chokes on.
func TestCheckpointOversizedRecordRejectedAtWrite(t *testing.T) {
	old := maxRecordBytes
	maxRecordBytes = 256
	defer func() { maxRecordBytes = old }()

	dir := t.TempDir()
	spec := testSpec(2)
	ck, err := OpenCheckpoint(filepath.Join(dir, "c.ckpt"), spec, false)
	if err != nil {
		t.Fatal(err)
	}
	defer ck.Close()
	err = ck.record("cell-000", strings.Repeat("x", 512))
	if err == nil {
		t.Fatal("oversized record accepted")
	}
	if !strings.Contains(err.Error(), "record limit") && !strings.Contains(err.Error(), "byte limit") {
		t.Fatalf("unhelpful error: %v", err)
	}
	// The file is untouched: a small record still appends and reloads.
	if err := ck.record("cell-001", "ok"); err != nil {
		t.Fatal(err)
	}
	ck.Close()
	ck2, err := OpenCheckpoint(filepath.Join(dir, "c.ckpt"), spec, true)
	if err != nil {
		t.Fatal(err)
	}
	defer ck2.Close()
	if ck2.Completed() != 1 {
		t.Fatalf("Completed = %d, want 1", ck2.Completed())
	}
}

// TestCheckpointOversizedLineReportedAsCorruption: a line beyond the
// record limit in an existing file surfaces as ErrCheckpointCorrupt
// naming the line, not as a bare bufio.ErrTooLong.
func TestCheckpointOversizedLineReportedAsCorruption(t *testing.T) {
	old := maxRecordBytes
	maxRecordBytes = 4096
	defer func() { maxRecordBytes = old }()

	dir := t.TempDir()
	path := filepath.Join(dir, "c.ckpt")
	spec := testSpec(2)
	ck, err := OpenCheckpoint(path, spec, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(spec, drawValue, Options[cellValue]{Workers: 1, Checkpoint: ck}); err != nil {
		t.Fatal(err)
	}
	ck.Close()
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	huge := fmt.Sprintf(`{"key":"cell-000","value":%q}`, strings.Repeat("x", 8192))
	if _, err := f.WriteString(huge + "\n"); err != nil {
		t.Fatal(err)
	}
	f.Close()

	_, err = OpenCheckpoint(path, spec, true)
	if err == nil {
		t.Fatal("oversized line accepted")
	}
	if !errors.Is(err, ErrCheckpointCorrupt) {
		t.Fatalf("error is not ErrCheckpointCorrupt: %v", err)
	}
	if !strings.Contains(err.Error(), "line 4") {
		t.Fatalf("error does not name the line: %v", err)
	}
	if errors.Is(err, bufio.ErrTooLong) {
		t.Fatalf("bare bufio.ErrTooLong leaked: %v", err)
	}
}

// TestCheckpointRotationCompacts: resuming rewrites the file as a fresh
// sealed segment — torn tails dropped, duplicate keys deduplicated to
// the last value, legacy un-checksummed records re-encoded with CRCs —
// so a repeatedly crashed-and-resumed campaign's checkpoint stays at
// its live size.
func TestCheckpointRotationCompacts(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "c.ckpt")
	spec := testSpec(4)
	ck, err := OpenCheckpoint(path, spec, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(spec, drawValue, Options[cellValue]{Workers: 1, Checkpoint: ck}); err != nil {
		t.Fatal(err)
	}
	ck.Close()

	// Rough the file up: strip the CRC from one record (legacy format),
	// append a duplicate of cell-000 with a different value, then a torn
	// tail.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(string(raw), "\n"), "\n")
	if i := strings.Index(lines[1], `,"crc":"`); i >= 0 {
		lines[1] = lines[1][:i] + "}"
	}
	dupVal := []byte(`{"key":"cell-000","draw":1}`)
	dup := fmt.Sprintf(`{"key":"cell-000","value":%s,"crc":"%s"}`, dupVal, crcHex(dupVal))
	lines = append(lines, dup, `{"key":"torn`)
	if err := os.WriteFile(path, []byte(strings.Join(lines, "\n")+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	ck2, err := OpenCheckpoint(path, spec, true)
	if err != nil {
		t.Fatal(err)
	}
	if ck2.Completed() != 4 {
		t.Fatalf("Completed = %d, want 4", ck2.Completed())
	}
	// The duplicate's later value won.
	if v, ok := ck2.Done("cell-000"); !ok || string(v) != string(dupVal) {
		t.Fatalf("cell-000 = %s, want %s", v, dupVal)
	}
	ck2.Close()

	// The rotated file is canonical: header plus exactly one checksummed
	// line per cell, no torn bytes, no legacy records.
	rotated, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	got := strings.Split(strings.TrimRight(string(rotated), "\n"), "\n")
	if len(got) != 1+4 {
		t.Fatalf("rotated file has %d lines, want 5:\n%s", len(got), rotated)
	}
	for _, line := range got[1:] {
		if !strings.Contains(line, `"crc":"`) {
			t.Fatalf("rotated record lacks a CRC: %s", line)
		}
	}
	// Rotating again is a no-op byte-wise: the segment is already
	// canonical.
	ck3, err := OpenCheckpoint(path, spec, true)
	if err != nil {
		t.Fatal(err)
	}
	ck3.Close()
	again, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(again) != string(rotated) {
		t.Fatalf("second rotation changed a canonical segment:\n%s\nvs\n%s", rotated, again)
	}
}
