package main

import (
	"bytes"
	"context"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// freeAddr reserves an ephemeral port and releases it for the campaign
// coordinator to bind; the tiny reuse race is acceptable in tests.
func freeAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// TestCampaignDistributedByteIdentical runs the same conformance
// campaign twice — locally, and coordinated over HTTP with two worker
// processes — and requires the published artifacts to be byte-identical.
func TestCampaignDistributedByteIdentical(t *testing.T) {
	dir := t.TempDir()
	localOut := filepath.Join(dir, "local.json")
	distOut := filepath.Join(dir, "dist.json")
	base := []string{
		"campaign", "-kind", "conformance", "-devices", "AMD,Intel",
		"-envs", "pte", "-iters", "2", "-seed", "7", "-quiet",
	}
	if err := run(append(base, "-out", localOut, "-parallel", "3")); err != nil {
		t.Fatalf("local campaign: %v", err)
	}

	addr := freeAddr(t)
	coordDone := make(chan error, 1)
	go func() {
		coordDone <- run(append(base, "-out", distOut,
			"-workers-addr", addr, "-lease-ttl", "30s", "-range-cells", "3"))
	}()
	var wg sync.WaitGroup
	workErrs := make([]error, 2)
	for i := range workErrs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			workErrs[i] = dispatch(context.Background(), []string{
				"work", "-coordinator", "http://" + addr,
				"-id", fmt.Sprintf("w%d", i), "-parallel", "2",
				"-poll", "25ms", "-once", "-quiet",
			})
		}(i)
	}
	select {
	case err := <-coordDone:
		if err != nil {
			t.Fatalf("distributed campaign: %v", err)
		}
	case <-time.After(3 * time.Minute):
		t.Fatal("distributed campaign timed out")
	}
	wg.Wait()
	for i, err := range workErrs {
		if err != nil {
			t.Errorf("worker %d: %v", i, err)
		}
	}

	want, err := os.ReadFile(localOut)
	if err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(distOut)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want, got) {
		t.Fatalf("artifacts differ:\nlocal:\n%s\ndistributed:\n%s", want, got)
	}
}

// TestWorkCachedWorkerByteIdentical: a worker mounting a result cache
// warmed by an earlier local run of the same campaign serves its leased
// cells from disk — nonzero hits on its summary line — and the
// coordinator's merged artifact is still byte-identical to the local
// one: deliveries tag hits, artifacts never encode them.
func TestWorkCachedWorkerByteIdentical(t *testing.T) {
	dir := t.TempDir()
	cacheDir := filepath.Join(dir, "cache")
	localOut := filepath.Join(dir, "local.json")
	distOut := filepath.Join(dir, "dist.json")
	base := []string{
		"campaign", "-kind", "conformance", "-devices", "AMD,Intel",
		"-envs", "pte", "-iters", "2", "-seed", "7", "-quiet",
	}
	if _, err := captureStderr(t, func() error {
		return run(append(base, "-out", localOut, "-cache-dir", cacheDir))
	}); err != nil {
		t.Fatalf("local campaign: %v", err)
	}

	// Redirect stderr around the whole orchestration: the coordinator
	// goroutine reads os.Stderr, so the swap must happen-before it
	// starts and the restore must happen-after it finishes. The
	// coordinator runs -quiet without a cache, so the captured stream
	// carries only the worker's cache summary line.
	addr := freeAddr(t)
	oldStderr := os.Stderr
	pr, pw, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stderr = pw
	coordDone := make(chan error, 1)
	go func() {
		coordDone <- run(append(base, "-out", distOut,
			"-workers-addr", addr, "-lease-ttl", "30s", "-range-cells", "3"))
	}()
	workErr := dispatch(context.Background(), []string{
		"work", "-coordinator", "http://" + addr, "-id", "wcache",
		"-parallel", "2", "-poll", "25ms", "-once", "-quiet",
		"-cache-dir", cacheDir})
	var coordErr error
	select {
	case coordErr = <-coordDone:
	case <-time.After(3 * time.Minute):
		os.Stderr = oldStderr
		t.Fatal("distributed campaign timed out")
	}
	pw.Close()
	os.Stderr = oldStderr
	workerStderr, err := readAll(pr)
	if err != nil {
		t.Fatal(err)
	}
	if coordErr != nil {
		t.Fatalf("distributed campaign: %v", coordErr)
	}
	if workErr != nil {
		t.Fatalf("worker: %v", workErr)
	}
	if !strings.Contains(workerStderr, "cache:") || strings.Contains(workerStderr, "cache: 0 hit(s)") {
		t.Fatalf("worker did not serve from the warmed cache:\n%s", workerStderr)
	}

	want, err := os.ReadFile(localOut)
	if err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(distOut)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want, got) {
		t.Fatal("cached-worker distributed artifact differs from the local artifact")
	}
}

// TestWorkProfilesWritten: a worker carrying -cpuprofile/-memprofile
// publishes both profiles when it exits — here via the -once drain
// path, the common way a distributed worker terminates.
func TestWorkProfilesWritten(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "dist.json")
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")

	addr := freeAddr(t)
	coordDone := make(chan error, 1)
	go func() {
		coordDone <- run([]string{
			"campaign", "-kind", "conformance", "-devices", "AMD",
			"-envs", "pte", "-iters", "1", "-seed", "3", "-quiet",
			"-out", out, "-workers-addr", addr, "-lease-ttl", "30s"})
	}()
	workErr := dispatch(context.Background(), []string{
		"work", "-coordinator", "http://" + addr, "-id", "wprof",
		"-poll", "25ms", "-once", "-quiet",
		"-cpuprofile", cpu, "-memprofile", mem})
	select {
	case err := <-coordDone:
		if err != nil {
			t.Fatalf("distributed campaign: %v", err)
		}
	case <-time.After(3 * time.Minute):
		t.Fatal("distributed campaign timed out")
	}
	if workErr != nil {
		t.Fatalf("worker: %v", workErr)
	}
	for _, p := range []string{cpu, mem} {
		fi, err := os.Stat(p)
		if err != nil {
			t.Errorf("profile not written: %v", err)
		} else if fi.Size() == 0 {
			t.Errorf("%s: empty profile", p)
		}
	}
	if _, err := os.Stat(cpu + ".tmp"); !os.IsNotExist(err) {
		t.Errorf("cpu profile temp file left behind")
	}
}

// TestWorkFlagErrors rejects unusable worker and coordinator flags up
// front, before any polling or campaign work.
func TestWorkFlagErrors(t *testing.T) {
	cases := [][]string{
		{"work"}, // missing -coordinator
		{"work", "-coordinator", "http://x", "-parallel", "0"},
		{"work", "-coordinator", "http://x", "-poll", "0s"},
		{"work", "-coordinator", "http://x", "-cpuprofile", filepath.Join("no", "such", "dir", "cpu.pprof")},
		{"campaign", "-kind", "conformance", "-workers-addr", "127.0.0.1:0", "-lease-ttl", "0s"},
		{"campaign", "-kind", "conformance", "-workers-addr", "127.0.0.1:0", "-range-cells", "0"},
		{"campaign", "-kind", "conformance", "-workers-addr", "127.0.0.1:0", "-stall-timeout", "-1s"},
	}
	for _, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("%v accepted", args)
		}
	}
}
