package sched

import (
	"sync"
	"time"
)

// Progress is one structured snapshot of a running campaign — the
// machine-readable sibling of the Reporter's text lines, built for
// consumers that stream campaign state elsewhere (the serve subsystem's
// SSE hub, metrics scrapers). Snapshots are cumulative: every counter
// covers the campaign from its start, so a consumer may drop
// intermediate snapshots and still hold a correct view.
//
// Done is monotonically non-decreasing across the snapshots of one
// campaign. The final snapshot (Final true) carries the settled
// post-campaign verdicts — under a circuit breaker these can differ
// from live counts, because a speculatively-executed cell may be
// quarantined after the fact — plus the per-device Health summary.
type Progress struct {
	// Campaign is the spec name; Total the cell count.
	Campaign string `json:"campaign"`
	Total    int    `json:"total"`
	// Done counts resolved cells: executed (ok or failed), replayed
	// from the checkpoint, or skipped by an open circuit breaker.
	// Interrupted and aborted cells are not done.
	Done int `json:"done"`
	// Executed, Replayed, Failed, Quarantined, Interrupted and Retried
	// mirror the Report counters of the same names.
	Executed    int `json:"executed"`
	Replayed    int `json:"replayed"`
	Failed      int `json:"failed"`
	Quarantined int `json:"quarantined"`
	Interrupted int `json:"interrupted"`
	Retried     int `json:"retried"`
	// Instances accumulates Options.Instances over succeeded cells.
	Instances int `json:"instances"`
	// ElapsedSeconds is host time since the campaign began;
	// CellsPerSec and InstancesPerSec are the throughput over it.
	ElapsedSeconds  float64 `json:"elapsed_seconds"`
	CellsPerSec     float64 `json:"cells_per_sec"`
	InstancesPerSec float64 `json:"instances_per_sec"`
	// DeviceBusy is each device's accumulated cell wall time in
	// seconds — the raw feed behind the Reporter's utilization line.
	DeviceBusy map[string]float64 `json:"device_busy,omitempty"`
	// CacheHits, CacheMisses and CacheCorrupt mirror the Report's
	// result-cache counters: cells served from the cache, consultations
	// that found nothing, and entries that failed verification. They
	// are observability only and never appear in campaign artifacts.
	CacheHits    int `json:"cache_hits,omitempty"`
	CacheMisses  int `json:"cache_misses,omitempty"`
	CacheCorrupt int `json:"cache_corrupt,omitempty"`
	// CacheDegraded is set on the final snapshot when the result cache
	// hit a persistent storage failure and switched to pass-through.
	// Unlike StorageDegraded it never affects exit status or readiness.
	CacheDegraded bool `json:"cache_degraded,omitempty"`
	// Final marks the last snapshot of the campaign, emitted after the
	// verdicts settle and before RunContext returns.
	Final bool `json:"final"`
	// Health is the per-device fleet summary; populated on the final
	// snapshot when the campaign ran with a circuit breaker.
	Health []DeviceHealth `json:"health,omitempty"`
	// StorageDegraded is set on the final snapshot when the checkpoint
	// degraded to in-memory operation (see Report.StorageDegraded).
	StorageDegraded bool `json:"storage_degraded,omitempty"`
}

// DefaultProgressEvery is the OnProgress snapshot cadence when
// Options.ProgressEvery is unset.
const DefaultProgressEvery = time.Second

// Rate is the shared throughput computation for progress surfaces: n
// events over elapsed seconds, and 0 when no time has measurably
// passed. A job finishing entirely from cache or checkpoint replay can
// complete within one clock granule; dividing by a clamped epsilon
// there reports an absurd finite rate (n × 1e9), so zero-elapsed
// yields the only honest answer — no measured throughput.
func Rate(n int, elapsedSeconds float64) float64 {
	if elapsedSeconds <= 0 {
		return 0
	}
	return float64(n) / elapsedSeconds
}

// progressTracker accumulates live counters and drives the OnProgress
// callback: a ticker goroutine emits periodic snapshots, and finish
// (called after the campaign settles, with the ticker already stopped)
// emits the final one. All callback invocations are serialized — the
// ticker goroutine is joined before the final emit — so OnProgress
// needs no locking of its own and the Final snapshot is always the
// last delivered.
type progressTracker struct {
	mu         sync.Mutex
	cb         func(Progress)
	campaign   string
	total      int
	start      time.Time
	now        func() time.Time
	executed   int
	replayed   int
	failed     int
	quarantine int
	interrupts int
	retried    int
	instances  int
	cacheHits  int
	cacheMiss  int
	cacheBad   int
	deviceBusy map[string]time.Duration

	stopTick func()        // cancels the ticker goroutine; nil when none
	tickDone chan struct{} // closed when the ticker goroutine exits
}

// newProgressTracker starts the tracker and, with a positive interval,
// its ticker goroutine. done is a channel the ticker selects on so the
// campaign context tears it down alongside everything else.
func newProgressTracker(cb func(Progress), campaign string, total int, every time.Duration) *progressTracker {
	t := &progressTracker{
		cb:         cb,
		campaign:   campaign,
		total:      total,
		now:        time.Now,
		deviceBusy: map[string]time.Duration{},
	}
	t.start = t.now()
	if every > 0 {
		stop := make(chan struct{})
		t.stopTick = sync.OnceFunc(func() { close(stop) })
		t.tickDone = make(chan struct{})
		go t.tick(every, stop)
	}
	return t
}

// tick emits a snapshot every interval until stopped.
func (t *progressTracker) tick(every time.Duration, stop chan struct{}) {
	defer close(t.tickDone)
	ticker := time.NewTicker(every)
	defer ticker.Stop()
	for {
		select {
		case <-stop:
			return
		case <-ticker.C:
			t.cb(t.snapshot())
		}
	}
}

// snapshot assembles a cumulative Progress from the live counters.
func (t *progressTracker) snapshot() Progress {
	t.mu.Lock()
	defer t.mu.Unlock()
	p := Progress{
		Campaign:     t.campaign,
		Total:        t.total,
		Done:         t.executed + t.replayed + t.quarantine + t.cacheHits,
		Executed:     t.executed,
		Replayed:     t.replayed,
		Failed:       t.failed,
		Quarantined:  t.quarantine,
		Interrupted:  t.interrupts,
		Retried:      t.retried,
		Instances:    t.instances,
		CacheHits:    t.cacheHits,
		CacheMisses:  t.cacheMiss,
		CacheCorrupt: t.cacheBad,
	}
	p.ElapsedSeconds = t.now().Sub(t.start).Seconds()
	p.CellsPerSec = Rate(t.executed, p.ElapsedSeconds)
	p.InstancesPerSec = Rate(t.instances, p.ElapsedSeconds)
	if len(t.deviceBusy) > 0 {
		p.DeviceBusy = make(map[string]float64, len(t.deviceBusy))
		for d, busy := range t.deviceBusy {
			p.DeviceBusy[d] = busy.Seconds()
		}
	}
	return p
}

func (t *progressTracker) cellReplayed() {
	t.mu.Lock()
	t.replayed++
	t.mu.Unlock()
}

func (t *progressTracker) cellQuarantined() {
	t.mu.Lock()
	t.quarantine++
	t.mu.Unlock()
}

func (t *progressTracker) cellInterrupted() {
	t.mu.Lock()
	t.interrupts++
	t.mu.Unlock()
}

// cellCacheHit records a cell served from the result cache: it counts
// toward Done without counting as executed.
func (t *progressTracker) cellCacheHit() {
	t.mu.Lock()
	t.cacheHits++
	t.mu.Unlock()
}

// cellCacheMiss records a consultation that found nothing servable;
// corrupt marks the subset where an entry existed but failed
// verification. The cell goes on to execute either way.
func (t *progressTracker) cellCacheMiss(corrupt bool) {
	t.mu.Lock()
	if corrupt {
		t.cacheBad++
	} else {
		t.cacheMiss++
	}
	t.mu.Unlock()
}

func (t *progressTracker) cellDone(c Cell, wall time.Duration, instances int, ok bool, retries int) {
	t.mu.Lock()
	t.executed++
	t.instances += instances
	t.retried += retries
	if !ok {
		t.failed++
	}
	if c.Device != "" {
		t.deviceBusy[c.Device] += wall
	}
	t.mu.Unlock()
}

// finish joins the ticker goroutine, overlays the settled report
// verdicts, and emits the final snapshot. It runs after applyBreaker,
// so under a circuit breaker the Final counters are the authoritative
// post-pass ones. Done stays monotonic: every cell is by now executed,
// replayed, quarantined, interrupted or aborted, and Done counts
// exactly the first three — the same population the live counter grew
// over.
func (t *progressTracker) finish(rep reportCounters) {
	if t.stopTick != nil {
		t.stopTick()
		<-t.tickDone
	}
	t.mu.Lock()
	t.executed = rep.executed
	t.replayed = rep.replayed
	t.failed = rep.failed
	t.quarantine = rep.quarantined
	t.interrupts = rep.interrupted
	t.retried = rep.retried
	t.cacheHits = rep.cacheHits
	t.cacheMiss = rep.cacheMisses
	t.cacheBad = rep.cacheCorrupt
	t.mu.Unlock()
	p := t.snapshot()
	p.Final = true
	p.Health = rep.health
	p.StorageDegraded = rep.storageDegraded
	p.CacheDegraded = rep.cacheDegraded
	t.cb(p)
}

// reportCounters carries the settled aggregates finish overlays onto
// the final snapshot and the Reporter's summary line.
type reportCounters struct {
	executed, replayed, failed, quarantined, interrupted, retried int
	cacheHits, cacheMisses, cacheCorrupt                          int
	health                                                        []DeviceHealth
	storageDegraded                                               bool
	cacheDegraded                                                 bool
}
