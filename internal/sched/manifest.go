package sched

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
)

// Manifest returns a stable hex digest of the campaign spec: its name,
// seed and ordered cell identities. Two specs share a manifest exactly
// when a checkpoint written by one is a valid resume point for the
// other — same cells, same order, same seed, so every cell's RNG
// stream and therefore its result is the same.
func (s *Spec) Manifest() string {
	h := sha256.New()
	var seed [8]byte
	binary.LittleEndian.PutUint64(seed[:], s.Seed)
	writeField(h, s.Name)
	h.Write(seed[:])
	var n [8]byte
	binary.LittleEndian.PutUint64(n[:], uint64(len(s.Cells)))
	h.Write(n[:])
	for _, c := range s.Cells {
		writeField(h, c.Key)
		writeField(h, c.Device)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// writeField writes a length-prefixed string so field boundaries cannot
// alias ("ab","c" vs "a","bc").
func writeField(h interface{ Write([]byte) (int, error) }, s string) {
	var n [8]byte
	binary.LittleEndian.PutUint64(n[:], uint64(len(s)))
	h.Write(n[:])
	h.Write([]byte(s))
}
