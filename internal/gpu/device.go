package gpu

import (
	"context"

	"repro/internal/xrand"
)

// Device is a simulated GPU: a profile plus a (possibly empty) set of
// injected defects and an optional fault model. The device owns a
// reusable executor scratch, so sequential runs on one device allocate
// (almost) nothing after the first; the flip side is that a Device must
// never be used from multiple goroutines at once, and the RunResult a
// run returns aliases that scratch — it is valid only until the next
// Run/RunTraced call on the same device (copy out anything that must
// outlive it). A device with a loss-escalating fault model also
// accumulates an injected-fault count across runs (the path to
// ErrDeviceLost).
type Device struct {
	prof   Profile
	bugs   Bugs
	faults FaultModel
	// faultCount tallies injected faults across this device's runs,
	// driving FaultModel.LossAfter escalation.
	faultCount int
	// scratch is the reusable executor, created on first Run and reset
	// in place for every subsequent launch.
	scratch *exec
}

// NewDevice builds a device from a profile and defect set.
func NewDevice(p Profile, bugs Bugs) (*Device, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &Device{prof: p, bugs: bugs}, nil
}

// MustDevice is NewDevice panicking on error, for the fixed profiles.
func MustDevice(p Profile, bugs Bugs) *Device {
	d, err := NewDevice(p, bugs)
	if err != nil {
		panic(err)
	}
	return d
}

// Profile returns the device's profile.
func (d *Device) Profile() Profile { return d.prof }

// Bugs returns the device's injected defects.
func (d *Device) Bugs() Bugs { return d.bugs }

// SetFaults installs a fault model (see FaultModel). The zero model
// restores fault-free operation and consumes no launch randomness.
func (d *Device) SetFaults(f FaultModel) error {
	if err := f.Validate(); err != nil {
		return err
	}
	d.faults = f
	d.faultCount = 0
	return nil
}

// Faults returns the device's fault model.
func (d *Device) Faults() FaultModel { return d.faults }

// maxSimTicks bounds one kernel's simulated duration; exceeding it
// indicates a scheduling bug, not a slow kernel.
const maxSimTicks = int64(1) << 34

// watchdogDeadline is the tick past which a still-running kernel is
// declared hung.
func (d *Device) watchdogDeadline() int64 {
	if d.faults.WatchdogTicks > 0 {
		return d.faults.WatchdogTicks
	}
	return maxSimTicks
}

// Run executes one kernel dispatch to completion. Identical (spec,
// rng-state) pairs produce identical results.
//
// The returned RunResult aliases the device's executor scratch and is
// valid only until the next Run/RunTraced on this device.
//
// When a fault model is installed, one extra draw of rng seeds the
// launch's private fault stream; the launch may then fail with a typed
// *DeviceError (ErrLaunchFailed, ErrDeviceHang, ErrDeviceLost) or —
// worse — succeed with silently corrupted results, which callers
// detect by validating outcomes against their expected value domain.
func (d *Device) Run(spec LaunchSpec, rng *xrand.Rand) (*RunResult, error) {
	return d.RunCtx(context.Background(), spec, rng)
}

// RunCtx is Run with cooperative cancellation: the executor polls
// ctx.Done() on a coarse step budget (every cancelCheckSteps scheduler
// steps, plus once on entry), so a pathological kernel stops well below
// the watchdog deadline while the allocation-free hot path pays only a
// decrement and branch per step. A cancelled launch fails with an error
// wrapping ctx.Err() and leaves the executor scratch reusable — the
// next run resets it as usual.
func (d *Device) RunCtx(ctx context.Context, spec LaunchSpec, rng *xrand.Rand) (*RunResult, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	var frng *xrand.Rand
	corrupt := false
	if d.faults.Enabled() {
		frng = xrand.NewFromPath(rng.Uint64()^d.faults.Seed, d.prof.ShortName)
		if d.faults.LossAfter > 0 && d.faultCount >= d.faults.LossAfter {
			return nil, &DeviceError{Kind: FaultLost, Device: d.prof.ShortName, Injected: true}
		}
		if frng.Bool(d.faults.LaunchFailProb) {
			d.faultCount++
			return nil, &DeviceError{Kind: FaultLaunch, Device: d.prof.ShortName, Injected: true}
		}
		if frng.Bool(d.faults.HangProb) {
			// The kernel would never finish; the watchdog reclaims the
			// device at its deadline without simulating the dead time.
			d.faultCount++
			return nil, &DeviceError{Kind: FaultHang, Device: d.prof.ShortName,
				Tick: d.watchdogDeadline(), Injected: true}
		}
		corrupt = frng.Bool(d.faults.CorruptProb)
	}
	e := d.getExec(spec, rng)
	e.ctx = ctx
	err := e.run()
	e.ctx = nil
	if err != nil {
		return nil, err
	}
	res := e.result()
	if corrupt {
		d.faultCount++
		corruptResult(res, frng)
	}
	return res, nil
}
