// Package tuning orchestrates the paper's evaluation (Sec. 5): random
// testing environments are generated per family (SITE Baseline, SITE,
// PTE Baseline, PTE), every mutant is executed in every environment on
// every device, and the resulting dataset yields the mutation scores
// and mutant death rates of Fig. 5, the rate tables Algorithm 1 merges
// for Fig. 6, and the correlation study of Table 4.
//
// Datasets serialize to JSON, mirroring the artifact's per-device
// result files.
package tuning

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sort"
	"time"

	"repro/internal/confidence"
	"repro/internal/diskio"
	"repro/internal/gpu"
	"repro/internal/harness"
	"repro/internal/litmus"
	"repro/internal/sched"
	"repro/internal/stats"
	"repro/internal/xrand"
)

// Family enumerates the four environment families of Sec. 5.1.
type Family int

const (
	// SITEBaseline is a single test instance with no stress.
	SITEBaseline Family = iota
	// SITE is single-instance with randomly tuned stress (prior work).
	SITE
	// PTEBaseline is parallel instances with no stress.
	PTEBaseline
	// PTE is parallel instances with randomly tuned stress.
	PTE
)

// String names the family as in the paper.
func (f Family) String() string {
	switch f {
	case SITEBaseline:
		return "SITE-Baseline"
	case SITE:
		return "SITE"
	case PTEBaseline:
		return "PTE-Baseline"
	case PTE:
		return "PTE"
	default:
		return fmt.Sprintf("Family(%d)", int(f))
	}
}

// Parallel reports whether the family runs parallel instances.
func (f Family) Parallel() bool { return f == PTEBaseline || f == PTE }

// Baseline reports whether the family is stress-free.
func (f Family) Baseline() bool { return f == SITEBaseline || f == PTEBaseline }

// Families returns all four families in paper order.
func Families() []Family { return []Family{SITEBaseline, SITE, PTEBaseline, PTE} }

// FamilyByName resolves a family name.
func FamilyByName(name string) (Family, bool) {
	for _, f := range Families() {
		if f.String() == name {
			return f, true
		}
	}
	return 0, false
}

// Config sizes a tuning run. The paper's run (PaperConfig) uses 150
// environments with 300 SITE / 100 PTE iterations; SmallConfig scales
// everything down for simulation-backed tests.
type Config struct {
	// Environments is the number of random environments per tuned
	// family (baselines always use exactly one, their preset).
	Environments int
	// SITEIterations and PTEIterations are kernel launches per (env,
	// test, device). The paper runs SITE longer to give it more
	// opportunities (Sec. 5.1).
	SITEIterations int
	PTEIterations  int
	// PTEWorkgroups and PTEWorkgroupSize size the PTE Baseline preset.
	PTEWorkgroups    int
	PTEWorkgroupSize int
	// Scale bounds random environment generation.
	Scale harness.Scale
	// Devices lists profile short names; empty means the four study
	// devices of Table 3.
	Devices []string
	// Seed drives all randomness.
	Seed uint64
	// Faults, when non-nil, injects deterministic device-stack faults
	// into every cell's device (see gpu.FaultModel). Nil runs the fleet
	// fault-free and serializes identically to configs predating the
	// field.
	Faults *gpu.FaultModel `json:"faults,omitempty"`
}

// PaperConfig mirrors Sec. 5.1's sizes. Running it under simulation
// takes hours; it exists for the CLI's full mode.
func PaperConfig() Config {
	return Config{
		Environments:   150,
		SITEIterations: 300,
		PTEIterations:  100,
		PTEWorkgroups:  1024, PTEWorkgroupSize: 256,
		Scale: harness.PaperScale(),
		Seed:  2023,
	}
}

// SmallConfig is a scaled-down run preserving the qualitative shape;
// tests and benchmarks use it.
func SmallConfig() Config {
	return Config{
		Environments:   6,
		SITEIterations: 20,
		PTEIterations:  4,
		PTEWorkgroups:  8, PTEWorkgroupSize: 16,
		Scale: harness.DefaultScale(),
		Seed:  2023,
	}
}

func (c *Config) devices() []string {
	if len(c.Devices) > 0 {
		return c.Devices
	}
	names := make([]string, 0, 4)
	for _, p := range gpu.Profiles() {
		names = append(names, p.ShortName)
	}
	return names
}

func (c *Config) iterations(f Family) int {
	if f.Parallel() {
		return c.PTEIterations
	}
	return c.SITEIterations
}

// Record is one (environment, device, test) measurement.
type Record struct {
	Family      string         `json:"family"`
	EnvID       string         `json:"env_id"`
	Env         harness.Params `json:"env"`
	Device      string         `json:"device"`
	Test        string         `json:"test"`
	Mutator     string         `json:"mutator"`
	IsMutant    bool           `json:"is_mutant"`
	Iterations  int            `json:"iterations"`
	Instances   int            `json:"instances"`
	TargetCount int            `json:"target_count"`
	Violations  int            `json:"violations"`
	SimSeconds  float64        `json:"sim_seconds"`
	TargetRate  float64        `json:"target_rate"`
	// Discarded counts iterations the harness threw away after detecting
	// result corruption; zero (and omitted) on a healthy fleet.
	Discarded int `json:"discarded,omitempty"`
}

// DroppedRecord documents one campaign cell that produced no record: a
// permanent device failure or a cell quarantined by the circuit
// breaker. Dropped cells are part of the dataset — a faulty fleet's
// gaps are reported, never silent.
type DroppedRecord struct {
	// Key is the campaign cell key (envID/device/test).
	Key string `json:"key"`
	// Device is the cell's device short name.
	Device string `json:"device"`
	// Error is the failure rendered as text.
	Error string `json:"error"`
	// Quarantined marks breaker-skipped cells.
	Quarantined bool `json:"quarantined,omitempty"`
	// Attempts counts executions, 0 when the cell never ran.
	Attempts int `json:"attempts,omitempty"`
}

// Dataset is a tuning run's full results.
type Dataset struct {
	Config  Config   `json:"config"`
	Records []Record `json:"records"`
	// Dropped lists cells that produced no record, in campaign order;
	// empty (and omitted) on a healthy fleet.
	Dropped []DroppedRecord `json:"dropped,omitempty"`
	// Interrupted marks a partial dataset from a campaign that was
	// cancelled (signal or deadline expiry) and drained. Cells absent
	// from Records and Dropped are pending, not failed; resuming from
	// the campaign's checkpoint completes the dataset byte-identically
	// to an uninterrupted run, at which point the field is false again.
	Interrupted bool `json:"interrupted,omitempty"`
	// StorageDegraded marks a dataset whose campaign checkpoint hit a
	// persistent storage failure (ENOSPC, EIO) and finished in-memory:
	// the records are complete and correct, but the checkpoint does not
	// durably cover them, so a crash before this dataset was written
	// would have re-run them. StorageErr carries the cause.
	StorageDegraded bool   `json:"storage_degraded,omitempty"`
	StorageErr      string `json:"storage_err,omitempty"`
}

// Save writes the dataset as JSON.
func (ds *Dataset) Save(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(ds)
}

// SaveAtomic publishes the dataset at path with all-or-nothing
// visibility (write temp → fsync → rename → fsync dir): a reader — or
// a crash at any instant — observes either the previous complete
// dataset or the new complete one, never a partial JSON document.
func (ds *Dataset) SaveAtomic(fsys diskio.FS, path string) error {
	if fsys == nil {
		fsys = diskio.OS{}
	}
	return diskio.WriteAtomic(fsys, path, ds.Save)
}

// Load reads a dataset written by Save.
func Load(r io.Reader) (*Dataset, error) {
	var ds Dataset
	if err := json.NewDecoder(r).Decode(&ds); err != nil {
		return nil, fmt.Errorf("tuning: decode dataset: %w", err)
	}
	return &ds, nil
}

// environments materializes a family's environment list. Tuned
// families draw from an RNG derived purely from (seed, family), so the
// environment grid is a function of the config alone — independent of
// scheduling, worker count, and any other family's draws.
func environments(f Family, cfg *Config) []harness.Params {
	switch f {
	case SITEBaseline:
		return []harness.Params{harness.SITEBaseline()}
	case PTEBaseline:
		return []harness.Params{harness.PTEBaseline(cfg.PTEWorkgroups, cfg.PTEWorkgroupSize)}
	default:
		rng := xrand.NewFromPath(cfg.Seed, "tuning-envs", f.String())
		envs := make([]harness.Params, cfg.Environments)
		for i := range envs {
			envs[i] = harness.Random(rng, f.Parallel(), cfg.Scale)
		}
		return envs
	}
}

// RunOptions configures campaign execution: parallelism, checkpointing
// and progress. The zero value is a serial, checkpoint-free run.
type RunOptions struct {
	// Workers bounds the scheduler's pool; < 1 means serial. Any
	// worker count produces bit-identical datasets.
	Workers int
	// CheckpointPath, when non-empty, records completed cells as JSONL
	// so an interrupted run can resume.
	CheckpointPath string
	// Resume replays cells already present in the checkpoint instead
	// of re-running them. Requires CheckpointPath.
	Resume bool
	// FsyncEvery tunes the checkpoint's bounded-loss durability policy:
	// the file is fsynced after every N recorded cells. 0 means
	// sched.DefaultFsyncEvery; negative syncs only at drain and close.
	FsyncEvery int
	// FS is the filesystem the checkpoint goes through; nil means the
	// real filesystem. Tests inject a fault model (diskio.FaultFS).
	FS diskio.FS
	// Progress, when non-nil, receives one line as each cell starts.
	Progress func(string)
	// OnProgress, when non-nil, receives cumulative structured campaign
	// snapshots — one every ProgressEvery plus a final settled one
	// before the run returns (see sched.Progress). The serve
	// subsystem's SSE hub and metrics feed from this hook.
	OnProgress func(sched.Progress)
	// ProgressEvery is the OnProgress cadence; zero means
	// sched.DefaultProgressEvery.
	ProgressEvery time.Duration
	// Report, when non-nil, receives throughput lines (cells/sec,
	// instances/sec, per-device utilization) at most every
	// ReportEvery (default 2s).
	Report      func(string)
	ReportEvery time.Duration
	// Retries and Backoff configure transient-failure handling per
	// cell.
	Retries int
	Backoff time.Duration
	// CellTimeout, when positive, bounds each cell's wall-clock time;
	// an overrun fails that one cell (it lands in Dataset.Dropped under
	// a collect policy) without interrupting the campaign.
	CellTimeout time.Duration
	// Breaker, when non-nil, enables the per-device circuit breaker:
	// a device failing Threshold cells in a row is quarantined for
	// Cooldown cells while the run continues on the surviving fleet.
	// Failed and quarantined cells land in Dataset.Dropped instead of
	// aborting the run.
	Breaker *sched.BreakerOptions
	// Cache, when non-nil, is the persistent result cache consulted
	// before each cell executes and published to after a cell succeeds.
	// The cache salt is derived from the full Config plus the retry
	// policy, so two runs share entries exactly when they would compute
	// identical records; a warm re-run of the same study skips the
	// simulation entirely and still emits a byte-identical dataset.
	Cache sched.ResultCache
}

// cacheSaltPayload is what a tuning run's cache salt serializes: every
// workload parameter outside the scheduler spec that can change a
// cell's record or its retry accounting.
type cacheSaltPayload struct {
	Config        Config `json:"config"`
	Retries       int    `json:"retries,omitempty"`
	BackoffMS     int64  `json:"backoff_ms,omitempty"`
	CellTimeoutMS int64  `json:"cell_timeout_ms,omitempty"`
}

// cacheSalt derives the result-cache salt of a tuning run, the
// counterpart of core.WorkSpec.CacheSalt for the tuning study.
func cacheSalt(cfg Config, opts RunOptions) (string, error) {
	raw, err := json.Marshal(cacheSaltPayload{
		Config:        cfg,
		Retries:       opts.Retries,
		BackoffMS:     opts.Backoff.Milliseconds(),
		CellTimeoutMS: opts.CellTimeout.Milliseconds(),
	})
	if err != nil {
		return "", fmt.Errorf("tuning: encode cache salt: %w", err)
	}
	return string(raw), nil
}

// tuningCell is one campaign cell's work order.
type tuningCell struct {
	family Family
	envID  string
	env    harness.Params
	device string
	test   *litmus.Test
	iters  int
}

// buildCampaign expands the config into the scheduler spec and the
// per-key work map. Cell order is the dataset's record order.
func buildCampaign(cfg *Config, tests []*litmus.Test) (sched.Spec, map[string]tuningCell, error) {
	spec := sched.Spec{Name: "tune", Seed: cfg.Seed}
	work := map[string]tuningCell{}
	for _, fam := range Families() {
		envs := environments(fam, cfg)
		iters := cfg.iterations(fam)
		for ei, env := range envs {
			envID := fmt.Sprintf("%s-%03d", fam, ei)
			for _, devName := range cfg.devices() {
				if _, ok := gpu.ProfileByName(devName); !ok {
					return sched.Spec{}, nil, fmt.Errorf("tuning: unknown device %q", devName)
				}
				for _, test := range tests {
					key := fmt.Sprintf("%s/%s/%s", envID, devName, test.Name)
					spec.Cells = append(spec.Cells, sched.Cell{Key: key, Device: devName})
					work[key] = tuningCell{
						family: fam, envID: envID, env: env,
						device: devName, test: test, iters: iters,
					}
				}
			}
		}
	}
	return spec, work, nil
}

// runCell executes one (environment, device, test) cell on a fresh
// device — configured with the run's fault model, when any — and
// returns its dataset record. It is the cold path; scheduled campaigns
// run cells through per-worker scratch (workerScratch) instead, which
// reuses warm devices and runners.
func runCell(ctx context.Context, w tuningCell, faults *gpu.FaultModel, rng *xrand.Rand) (Record, error) {
	prof, ok := gpu.ProfileByName(w.device)
	if !ok {
		return Record{}, fmt.Errorf("tuning: unknown device %q", w.device)
	}
	dev, err := gpu.NewDevice(prof, gpu.Bugs{})
	if err != nil {
		return Record{}, err
	}
	if faults != nil {
		if err := dev.SetFaults(*faults); err != nil {
			return Record{}, err
		}
	}
	runner, err := harness.NewRunner(dev, w.env)
	if err != nil {
		return Record{}, fmt.Errorf("tuning: %s: %w", w.envID, err)
	}
	var res harness.Result
	return recordOf(ctx, w, runner, &res, rng)
}

// recordOf runs the cell on the given (possibly warm) runner, writing
// into the caller's reusable Result, and assembles its dataset record.
func recordOf(ctx context.Context, w tuningCell, runner *harness.Runner, res *harness.Result, rng *xrand.Rand) (Record, error) {
	if err := runner.RunInto(ctx, res, w.test, w.iters, rng); err != nil {
		return Record{}, fmt.Errorf("tuning: %s/%s/%s: %w", w.envID, w.device, w.test.Name, err)
	}
	return Record{
		Family:      w.family.String(),
		EnvID:       w.envID,
		Env:         w.env,
		Device:      w.device,
		Test:        w.test.Name,
		Mutator:     w.test.Mutator,
		IsMutant:    w.test.IsMutant,
		Iterations:  res.Iterations,
		Instances:   res.Instances,
		TargetCount: res.TargetCount,
		Violations:  res.Violations,
		SimSeconds:  res.SimSeconds,
		TargetRate:  res.TargetRate(),
		Discarded:   res.Discarded,
	}, nil
}

// runnerKey identifies one warm runner in a worker's cache: runners are
// shared across tests but are specific to a device and environment.
type runnerKey struct {
	device string
	envID  string
}

// maxWorkerRunners bounds each worker's warm-runner cache. A runner's
// scratch retains the high-water memory of its environment (threads ×
// programs × registers), so an unbounded cache at paper scale would
// pin hundreds of megabytes per worker; 16 covers the common
// device×family working set while a worker walks the campaign.
const maxWorkerRunners = 16

// workerScratch is one scheduler worker's private warm state: a bounded
// cache of device+runner pairs keyed by (device, environment) and a
// reusable Result. Cells that hit the cache run allocation-free in the
// steady state. Correctness under reuse relies on two invariants: the
// executor scratch resets consume no randomness, and SetFaults resets
// the device's injected-fault escalation count, so a warm device is
// draw-for-draw and state-for-state identical to a fresh one.
type workerScratch struct {
	work    map[string]tuningCell
	faults  *gpu.FaultModel
	runners map[runnerKey]*harness.Runner
	order   []runnerKey // insertion order, for FIFO eviction
	res     harness.Result
}

// exec is the sched.Exec this worker runs cells through.
func (s *workerScratch) exec(ctx context.Context, c sched.Cell, rng *xrand.Rand) (Record, error) {
	w, ok := s.work[c.Key]
	if !ok {
		return Record{}, fmt.Errorf("tuning: unknown cell %q", c.Key)
	}
	runner, err := s.runner(w)
	if err != nil {
		return Record{}, err
	}
	return recordOf(ctx, w, runner, &s.res, rng)
}

// runner returns the worker's warm runner for the cell's device and
// environment, creating (and caching) it on first use. Reused devices
// get their fault model re-installed, which resets the fault-escalation
// counter exactly as a fresh device would start.
func (s *workerScratch) runner(w tuningCell) (*harness.Runner, error) {
	key := runnerKey{device: w.device, envID: w.envID}
	if r, ok := s.runners[key]; ok {
		if s.faults != nil {
			if err := r.Device.SetFaults(*s.faults); err != nil {
				return nil, err
			}
		}
		return r, nil
	}
	prof, ok := gpu.ProfileByName(w.device)
	if !ok {
		return nil, fmt.Errorf("tuning: unknown device %q", w.device)
	}
	dev, err := gpu.NewDevice(prof, gpu.Bugs{})
	if err != nil {
		return nil, err
	}
	if s.faults != nil {
		if err := dev.SetFaults(*s.faults); err != nil {
			return nil, err
		}
	}
	r, err := harness.NewRunner(dev, w.env)
	if err != nil {
		return nil, fmt.Errorf("tuning: %s: %w", w.envID, err)
	}
	if len(s.order) >= maxWorkerRunners {
		oldest := s.order[0]
		copy(s.order, s.order[1:])
		s.order = s.order[:len(s.order)-1]
		delete(s.runners, oldest)
	}
	s.runners[key] = r
	s.order = append(s.order, key)
	return r, nil
}

// CampaignSpec returns the scheduler spec RunCampaign executes for the
// config and tests, without running anything. Its Manifest() identifies
// the campaign's cell grid — the serve subsystem derives idempotent job
// IDs from it, and it is the manifest the run's checkpoint will carry.
func CampaignSpec(cfg Config, tests []*litmus.Test) (sched.Spec, error) {
	if len(tests) == 0 {
		return sched.Spec{}, fmt.Errorf("tuning: no tests")
	}
	spec, _, err := buildCampaign(&cfg, tests)
	return spec, err
}

// Run executes a tuning run over the given tests (typically the 32
// mutants) across all families and devices, serially. progress, when
// non-nil, receives one line per campaign cell. Use RunCampaign for
// parallel, checkpointed runs; Run is RunCampaign at one worker.
func Run(cfg Config, tests []*litmus.Test, progress func(string)) (*Dataset, error) {
	return RunCampaign(cfg, tests, RunOptions{Progress: progress})
}

// RunCampaign is RunCampaignCtx under context.Background().
func RunCampaign(cfg Config, tests []*litmus.Test, opts RunOptions) (*Dataset, error) {
	return RunCampaignCtx(context.Background(), cfg, tests, opts)
}

// RunCampaignCtx executes the tuning study as a scheduled campaign:
// every (environment, device, test) cell derives its RNG stream purely
// from the config seed and the cell's identity, so any worker count —
// and any interleaving of checkpoint resume — produces a bit-identical
// dataset.
//
// Cancelling ctx drains the campaign and returns the partial dataset
// with Interrupted set (and a nil error): completed cells are in
// Records, failures in Dropped, and the abandoned remainder is pending
// in the checkpoint, so a resumed run finishes the dataset
// byte-identical to an uninterrupted one.
func RunCampaignCtx(ctx context.Context, cfg Config, tests []*litmus.Test, opts RunOptions) (*Dataset, error) {
	if len(tests) == 0 {
		return nil, fmt.Errorf("tuning: no tests")
	}
	spec, work, err := buildCampaign(&cfg, tests)
	if err != nil {
		return nil, err
	}
	schedOpts := sched.Options[Record]{
		Workers:       opts.Workers,
		MaxRetries:    opts.Retries,
		Backoff:       opts.Backoff,
		CellTimeout:   opts.CellTimeout,
		Breaker:       opts.Breaker,
		OnProgress:    opts.OnProgress,
		ProgressEvery: opts.ProgressEvery,
		Instances:     func(r Record) int { return r.Instances },
		// Each worker gets private warm scratch — devices, runners and a
		// Result reused across that worker's cells — so the steady-state
		// campaign loop stops allocating. Cell randomness derives purely
		// from (seed, cell key), so which worker's scratch a cell lands
		// on cannot change its record.
		NewWorkerExec: func() sched.Exec[Record] {
			s := &workerScratch{
				work:    work,
				faults:  cfg.Faults,
				runners: map[runnerKey]*harness.Runner{},
			}
			return s.exec
		},
	}
	if opts.Cache != nil {
		salt, err := cacheSalt(cfg, opts)
		if err != nil {
			return nil, err
		}
		schedOpts.Cache = opts.Cache
		schedOpts.CacheSalt = salt
	}
	if opts.Progress != nil {
		progress := opts.Progress
		schedOpts.OnCellStart = func(c sched.Cell) {
			w := work[c.Key]
			progress(fmt.Sprintf("%s on %s: %s (%d iterations)", w.envID, w.device, w.test.Name, w.iters))
		}
	}
	if opts.Report != nil {
		every := opts.ReportEvery
		if every <= 0 {
			every = 2 * time.Second
		}
		schedOpts.Reporter = sched.NewReporter(opts.Report, every)
	}
	if opts.Resume && opts.CheckpointPath == "" {
		return nil, fmt.Errorf("tuning: Resume requires CheckpointPath")
	}
	if opts.CheckpointPath != "" {
		ck, err := sched.OpenCheckpointOpts(opts.CheckpointPath, spec, opts.Resume,
			sched.CheckpointOptions{FS: opts.FS, FsyncEvery: opts.FsyncEvery})
		if err != nil {
			return nil, err
		}
		defer ck.Close()
		schedOpts.Checkpoint = ck
	}
	rep, err := sched.RunContext(ctx, spec, func(ctx context.Context, c sched.Cell, rng *xrand.Rand) (Record, error) {
		return runCell(ctx, work[c.Key], cfg.Faults, rng)
	}, schedOpts)
	interrupted := errors.Is(err, sched.ErrInterrupted)
	if err != nil && !interrupted {
		return nil, err
	}
	ds := &Dataset{Config: cfg, Interrupted: interrupted,
		StorageDegraded: rep.StorageDegraded, StorageErr: rep.StorageErr,
		Records: make([]Record, 0, len(rep.Results))}
	for _, cr := range rep.Results {
		switch {
		case cr.Interrupted:
			// Abandoned by cancellation: pending, not failed. The cell is
			// absent from the checkpoint, so a resumed run re-executes it;
			// recording it as dropped would make the partial dataset claim
			// a failure that never happened.
		case cr.Err != nil:
			ds.Dropped = append(ds.Dropped, DroppedRecord{
				Key:         cr.Cell.Key,
				Device:      cr.Cell.Device,
				Error:       cr.Err.Error(),
				Quarantined: cr.Quarantined,
				Attempts:    cr.Attempts,
			})
		default:
			ds.Records = append(ds.Records, cr.Value)
		}
	}
	return ds, nil
}

// MutationScore computes the Fig. 5 mutation score: the fraction of
// mutants killed in at least one environment of the family on the
// device. Empty device ("") aggregates over all devices; empty mutator
// aggregates over all mutators.
func (ds *Dataset) MutationScore(family, device, mutator string) (killed, total int) {
	type key struct{ test, device string }
	kills := map[key]bool{}
	seen := map[key]bool{}
	for _, r := range ds.Records {
		if !r.IsMutant || r.Family != family {
			continue
		}
		if device != "" && r.Device != device {
			continue
		}
		if mutator != "" && r.Mutator != mutator {
			continue
		}
		k := key{r.Test, r.Device}
		seen[k] = true
		if r.TargetCount > 0 {
			kills[k] = true
		}
	}
	return len(kills), len(seen)
}

// AvgDeathRate computes the Fig. 5 average mutant death rate: the mean
// over (mutant, device) pairs of the maximum kill rate across the
// family's environments. Filters as in MutationScore.
func (ds *Dataset) AvgDeathRate(family, device, mutator string) float64 {
	type key struct{ test, device string }
	maxRate := map[key]float64{}
	for _, r := range ds.Records {
		if !r.IsMutant || r.Family != family {
			continue
		}
		if device != "" && r.Device != device {
			continue
		}
		if mutator != "" && r.Mutator != mutator {
			continue
		}
		k := key{r.Test, r.Device}
		if _, ok := maxRate[k]; !ok {
			maxRate[k] = 0
		}
		if r.TargetRate > maxRate[k] {
			maxRate[k] = r.TargetRate
		}
	}
	if len(maxRate) == 0 {
		return 0
	}
	rates := make([]float64, 0, len(maxRate))
	for _, v := range maxRate {
		rates = append(rates, v)
	}
	// Map iteration order is random; fix the summation order so the
	// mean is bit-identical across calls on equal datasets.
	sort.Float64s(rates)
	return stats.Mean(rates)
}

// RateTables builds per-mutant confidence rate tables for one family:
// environment key -> device -> death rate, the input to Algorithm 1
// and the Fig. 6 sweep.
func (ds *Dataset) RateTables(family string) []confidence.TestRates {
	byTest := map[string]confidence.RateTable{}
	var order []string
	for _, r := range ds.Records {
		if !r.IsMutant || r.Family != family {
			continue
		}
		rt, ok := byTest[r.Test]
		if !ok {
			rt = confidence.RateTable{}
			byTest[r.Test] = rt
			order = append(order, r.Test)
		}
		if rt[r.EnvID] == nil {
			rt[r.EnvID] = map[string]float64{}
		}
		rt[r.EnvID][r.Device] = r.TargetRate
	}
	out := make([]confidence.TestRates, 0, len(order))
	for _, name := range order {
		out = append(out, confidence.TestRates{Test: name, Rates: byTest[name]})
	}
	return out
}

// Devices returns the distinct device names in record order.
func (ds *Dataset) Devices() []string {
	seen := map[string]bool{}
	var out []string
	for _, r := range ds.Records {
		if !seen[r.Device] {
			seen[r.Device] = true
			out = append(out, r.Device)
		}
	}
	return out
}

// Mutators returns the distinct mutator names in record order.
func (ds *Dataset) Mutators() []string {
	seen := map[string]bool{}
	var out []string
	for _, r := range ds.Records {
		if r.Mutator != "" && !seen[r.Mutator] {
			seen[r.Mutator] = true
			out = append(out, r.Mutator)
		}
	}
	return out
}
