// Package harness implements MCS testing environments (Section 4 of
// the paper): the context around a litmus test — thread counts, memory
// layout, stress heuristics — that determines how often interesting
// behaviors are observed.
//
// Two environment families are provided:
//
//   - SITE (single-instance testing environment): one test instance per
//     kernel launch, with the stress heuristics of prior work
//     (Kirkham et al., OOPSLA 2020).
//   - PTE (parallel testing environment, the paper's Sec. 4.1): every
//     testing thread participates in multiple test instances, paired by
//     a co-prime modular permutation with no control-flow divergence.
//
// A Runner executes a litmus test for a number of iterations in an
// environment on a simulated device, classifies every observed outcome
// with the axiomatic checker, and reports target-behavior rates against
// simulated time — the mutant death rates MC Mutants scores
// environments by.
package harness

import (
	"fmt"

	"repro/internal/xrand"
)

// StressPattern selects the access pair stress threads repeat,
// following prior work's four patterns.
type StressPattern int

const (
	// StoreStore repeats two stores.
	StoreStore StressPattern = iota
	// StoreLoad repeats a store then a load.
	StoreLoad
	// LoadStore repeats a load then a store.
	LoadStore
	// LoadLoad repeats two loads.
	LoadLoad
)

// String names the pattern.
func (p StressPattern) String() string {
	switch p {
	case StoreStore:
		return "store-store"
	case StoreLoad:
		return "store-load"
	case LoadStore:
		return "load-store"
	case LoadLoad:
		return "load-load"
	default:
		return fmt.Sprintf("pattern(%d)", int(p))
	}
}

// StressStrategy selects how stress threads are assigned to lines.
type StressStrategy int

const (
	// RoundRobin spreads stress threads across target lines.
	RoundRobin StressStrategy = iota
	// Chunked gives each stress thread one line to hammer.
	Chunked
)

// String names the strategy.
func (s StressStrategy) String() string {
	if s == Chunked {
		return "chunked"
	}
	return "round-robin"
}

// Scope selects which level of the GPU execution hierarchy the test
// threads communicate across. The paper evaluates the inter-workgroup
// scope only (Sec. 1.2) and names the full hierarchy as future work;
// IntraWorkgroup implements that extension: all roles of a test
// instance run within one workgroup.
type Scope int

const (
	// InterWorkgroup places communicating test threads in different
	// workgroups (the paper's setting).
	InterWorkgroup Scope = iota
	// IntraWorkgroup places all of an instance's roles in one
	// workgroup.
	IntraWorkgroup
)

// String names the scope.
func (s Scope) String() string {
	if s == IntraWorkgroup {
		return "intra-workgroup"
	}
	return "inter-workgroup"
}

// Params is a testing environment: the tunable parameters of prior
// work (17 knobs, Sec. 4.1 "Additional parameters") plus the parallel
// switch of PTE. The zero value is not meaningful; start from a preset
// or Random.
type Params struct {
	// Parallel selects PTE; false is SITE (single instance).
	Parallel bool
	// Scope selects the communication scope under test.
	Scope Scope
	// NaivePairing replaces the co-prime permutation with the simple
	// successor mapping v -> v+1 that prior work found ineffective; it
	// exists for the ablation study only.
	NaivePairing bool

	// 1. TestingWorkgroups is the number of workgroups whose threads
	// run test instances. Under SITE each test thread occupies its own
	// workgroup, so this is fixed by the test's thread count.
	TestingWorkgroups int
	// 2. MaxWorkgroups is the total dispatched workgroups; workgroups
	// beyond the testing ones are stress workgroups.
	MaxWorkgroups int
	// 3. WorkgroupSize is threads per workgroup.
	WorkgroupSize int

	// 4. ShufflePct is the percent chance per iteration that testing
	// thread IDs are randomly permuted.
	ShufflePct int
	// 5. BarrierPct is the percent chance per iteration that testing
	// threads align on a workgroup barrier before running the test.
	BarrierPct int

	// 6. MemStressPct is the percent chance per iteration that each
	// stress workgroup actively stresses memory.
	MemStressPct int
	// 7. MemStressIters is the number of access pairs per stress thread.
	MemStressIters int
	// 8. MemStressPattern is the stress access pattern.
	MemStressPattern StressPattern

	// 9. PreStressPct is the percent of testing threads that run a
	// stress prelude before their test roles, pushing the test accesses
	// into the contention window.
	PreStressPct int
	// 10. PreStressIters is the number of access pairs in the prelude.
	PreStressIters int
	// 11. PreStressPattern is the prelude's access pattern.
	PreStressPattern StressPattern

	// 12. ScratchMemWords is the stress region size in words.
	ScratchMemWords int
	// 13. StressLineSize is the width of a stress line in words.
	StressLineSize int
	// 14. StressTargetLines is how many scratch lines are stressed.
	StressTargetLines int
	// 15. StressStrategy assigns stress threads to lines.
	StressStrategy StressStrategy

	// 16. MemStride is the spacing in words between consecutive test
	// instances' locations; small strides make instances share cache
	// lines.
	MemStride int
	// 17. MemLocOffset is the offset of a test's second location within
	// its slot (aliasing distance between x and y).
	MemLocOffset int
}

// Validate checks parameter invariants.
func (p *Params) Validate() error {
	switch {
	case p.TestingWorkgroups <= 0:
		return fmt.Errorf("harness: TestingWorkgroups=%d", p.TestingWorkgroups)
	case p.MaxWorkgroups < p.TestingWorkgroups:
		return fmt.Errorf("harness: MaxWorkgroups=%d < TestingWorkgroups=%d",
			p.MaxWorkgroups, p.TestingWorkgroups)
	case p.WorkgroupSize <= 0:
		return fmt.Errorf("harness: WorkgroupSize=%d", p.WorkgroupSize)
	case p.MemStride <= 0:
		return fmt.Errorf("harness: MemStride=%d", p.MemStride)
	case p.MemLocOffset < 0 || p.MemLocOffset >= p.MemStride:
		return fmt.Errorf("harness: MemLocOffset=%d must be in [0,%d)", p.MemLocOffset, p.MemStride)
	case p.ScratchMemWords <= 0:
		return fmt.Errorf("harness: ScratchMemWords=%d", p.ScratchMemWords)
	case p.StressLineSize <= 0 || p.StressLineSize > p.ScratchMemWords:
		return fmt.Errorf("harness: StressLineSize=%d", p.StressLineSize)
	case p.StressTargetLines <= 0 || p.StressTargetLines*p.StressLineSize > p.ScratchMemWords:
		return fmt.Errorf("harness: StressTargetLines=%d exceeds scratch", p.StressTargetLines)
	case pctBad(p.ShufflePct) || pctBad(p.BarrierPct) || pctBad(p.MemStressPct) || pctBad(p.PreStressPct):
		return fmt.Errorf("harness: percentage parameter out of [0,100]")
	case p.MemStressIters < 0 || p.PreStressIters < 0:
		return fmt.Errorf("harness: negative stress iterations")
	}
	return nil
}

func pctBad(v int) bool { return v < 0 || v > 100 }

// SITEBaseline reproduces the paper's SITE Baseline environment: a
// single test instance across 32 workgroups with no added stress
// (Sec. 5.1).
func SITEBaseline() Params {
	return Params{
		Parallel:          false,
		TestingWorkgroups: 2, // adjusted to the test's thread count at run time
		MaxWorkgroups:     32,
		WorkgroupSize:     1,
		ScratchMemWords:   1024,
		StressLineSize:    16,
		StressTargetLines: 2,
		MemStride:         16,
		MemLocOffset:      8,
	}
}

// PTEBaseline reproduces the paper's PTE Baseline: parallel instances
// with no added stress. The paper uses 1024 workgroups of 256 threads;
// the defaults here are scaled for simulation and can be overridden.
func PTEBaseline(workgroups, wgSize int) Params {
	return Params{
		Parallel:          true,
		TestingWorkgroups: workgroups,
		MaxWorkgroups:     workgroups,
		WorkgroupSize:     wgSize,
		ScratchMemWords:   2048,
		StressLineSize:    16,
		StressTargetLines: 2,
		MemStride:         4,
		MemLocOffset:      2,
	}
}

// Random draws a random environment of the given family, mirroring the
// random tuning runs of Sec. 5.1. Scale bounds the thread counts so
// simulated tuning stays affordable.
func Random(rng *xrand.Rand, parallel bool, scale Scale) Params {
	p := Params{
		Parallel:          parallel,
		ShufflePct:        rng.Intn(101),
		BarrierPct:        rng.Intn(101),
		MemStressPct:      rng.Intn(101),
		MemStressIters:    rng.IntBetween(2, scale.MaxStressIters),
		MemStressPattern:  StressPattern(rng.Intn(4)),
		PreStressPct:      rng.Intn(101),
		PreStressIters:    rng.IntBetween(1, scale.MaxPreStressIters),
		PreStressPattern:  StressPattern(rng.Intn(4)),
		ScratchMemWords:   1 << rng.IntBetween(8, 12),
		StressLineSize:    1 << rng.IntBetween(2, 5),
		StressTargetLines: rng.IntBetween(1, 8),
		StressStrategy:    StressStrategy(rng.Intn(2)),
		MemStride:         1 << rng.IntBetween(0, 6),
		MemLocOffset:      0,
	}
	if p.MemStride > 1 {
		p.MemLocOffset = rng.Intn(p.MemStride)
	}
	if p.StressTargetLines*p.StressLineSize > p.ScratchMemWords {
		p.StressTargetLines = p.ScratchMemWords / p.StressLineSize
		if p.StressTargetLines == 0 {
			p.StressTargetLines = 1
		}
	}
	if parallel {
		p.TestingWorkgroups = rng.IntBetween(scale.MinTestingWG, scale.MaxTestingWG)
		p.WorkgroupSize = 1 << rng.IntBetween(scale.MinWGSizeLog2, scale.MaxWGSizeLog2)
		p.MaxWorkgroups = p.TestingWorkgroups + rng.Intn(scale.MaxStressWG+1)
	} else {
		p.TestingWorkgroups = 2 // widened per test at run time
		p.WorkgroupSize = 1 << rng.IntBetween(0, scale.MaxWGSizeLog2)
		p.MaxWorkgroups = p.TestingWorkgroups + rng.Intn(scale.MaxStressWG+1)
	}
	return p
}

// Scale bounds random environment generation.
type Scale struct {
	MinTestingWG, MaxTestingWG   int
	MinWGSizeLog2, MaxWGSizeLog2 int
	MaxStressWG                  int
	MaxStressIters               int
	MaxPreStressIters            int
}

// DefaultScale is sized for simulated tuning runs: large enough for
// parallelism effects, small enough to run thousands of iterations.
func DefaultScale() Scale {
	return Scale{
		MinTestingWG: 2, MaxTestingWG: 16,
		MinWGSizeLog2: 3, MaxWGSizeLog2: 6,
		MaxStressWG:    8,
		MaxStressIters: 24, MaxPreStressIters: 8,
	}
}

// PaperScale mirrors the paper's environment sizes (up to 1024
// workgroups of 256 threads); full-scale runs are expensive under
// simulation and meant for the CLI, not the test suite.
func PaperScale() Scale {
	return Scale{
		MinTestingWG: 2, MaxTestingWG: 1024,
		MinWGSizeLog2: 5, MaxWGSizeLog2: 8,
		MaxStressWG:    64,
		MaxStressIters: 1024, MaxPreStressIters: 128,
	}
}
