package gpu

import "fmt"

// Backend identifies the platform shading stack a device sits behind,
// mirroring WebGPU's lowering targets (Sec. 2.3 of the paper).
type Backend int

const (
	// Metal is Apple's stack (Apple silicon and Intel GPUs on macOS).
	Metal Backend = iota
	// Vulkan is the Khronos stack (AMD and NVIDIA on the paper's rig).
	Vulkan
	// HLSL is the Direct3D stack.
	HLSL
)

// String names the backend.
func (b Backend) String() string {
	switch b {
	case Metal:
		return "Metal"
	case Vulkan:
		return "Vulkan"
	case HLSL:
		return "HLSL"
	default:
		return fmt.Sprintf("Backend(%d)", int(b))
	}
}

// Profile parameterizes one synthetic device. The timing fields encode
// where weak behaviors come from on that device:
//
//   - JitterBase is latency variance present even on an idle device;
//     devices with nonzero base jitter show fine-grained interleavings
//     and mild reorderings without any stress.
//   - The pressure fields inflate latency when the memory system is
//     busy. Global pressure counts all in-flight memory operations
//     (a shared memory controller); line pressure counts in-flight
//     operations on the same cache line (a partitioned memory system,
//     where only nearby traffic interferes). Devices dominated by line
//     pressure are largely immune to the classic stress heuristics —
//     stress threads hammer a scratch region, not the test lines — and
//     only reveal weak behavior under parallel testing, which is
//     exactly the PTE-vs-SITE split the paper observes on NVIDIA and
//     Apple hardware.
type Profile struct {
	// Vendor, Chip, ShortName and CUs reproduce Table 3.
	Vendor    string
	Chip      string
	ShortName string
	CUs       int
	// Integrated marks integrated (shared-memory) parts.
	Integrated bool
	// Backend is the platform stack WebGPU lowers to on this device.
	Backend Backend

	// WarpSize is the SIMT width; threads are scheduled warp-at-a-time.
	WarpSize int
	// MaxWGPerCU bounds resident workgroups per compute unit.
	MaxWGPerCU int
	// MaxOutstanding bounds in-flight memory ops per thread.
	MaxOutstanding int

	// ClockHz converts simulated ticks to seconds.
	ClockHz float64
	// LaunchOverheadTicks models dispatch + readback cost per kernel
	// launch; it is what makes single-instance testing slow per test.
	LaunchOverheadTicks int64

	// LatLoad, LatStore and LatRMW are base completion latencies.
	LatLoad, LatStore, LatRMW int
	// JitterBase is the idle-device latency variance (uniform ticks).
	JitterBase int

	// GlobalPressureThresh/Weight scale latency with total in-flight
	// memory operations beyond the threshold.
	GlobalPressureThresh int
	GlobalPressureWeight float64
	// LinePressureThresh/Weight scale latency with in-flight operations
	// on the same cache line beyond the threshold.
	LinePressureThresh int
	LinePressureWeight float64
	// MaxPressureLat caps the pressure-induced latency addition.
	MaxPressureLat int

	// LineWords is the cache line size in 32-bit words.
	LineWords int
	// CacheLines is the per-CU cache capacity in lines (used when a
	// cache-carrying bug is enabled).
	CacheLines int
	// StaleHitProb is the chance a cached line serves a (possibly
	// stale) hit under the stale-cache bug.
	StaleHitProb float64
}

// Validate checks profile invariants.
func (p *Profile) Validate() error {
	switch {
	case p.CUs <= 0:
		return fmt.Errorf("gpu: profile %s: CUs=%d", p.ShortName, p.CUs)
	case p.WarpSize <= 0 || p.WarpSize > 64:
		// The executor tracks runnable lanes in one 64-bit mask per
		// warp; no real part exceeds a 64-wide wavefront.
		return fmt.Errorf("gpu: profile %s: WarpSize=%d (must be 1..64)", p.ShortName, p.WarpSize)
	case p.MaxWGPerCU <= 0:
		return fmt.Errorf("gpu: profile %s: MaxWGPerCU=%d", p.ShortName, p.MaxWGPerCU)
	case p.MaxOutstanding <= 0:
		return fmt.Errorf("gpu: profile %s: MaxOutstanding=%d", p.ShortName, p.MaxOutstanding)
	case p.ClockHz <= 0:
		return fmt.Errorf("gpu: profile %s: ClockHz=%v", p.ShortName, p.ClockHz)
	case p.LatLoad <= 0 || p.LatStore <= 0 || p.LatRMW <= 0:
		return fmt.Errorf("gpu: profile %s: nonpositive base latency", p.ShortName)
	case p.LineWords <= 0:
		return fmt.Errorf("gpu: profile %s: LineWords=%d", p.ShortName, p.LineWords)
	case p.JitterBase < 0 || p.MaxPressureLat < 0:
		return fmt.Errorf("gpu: profile %s: negative latency bound", p.ShortName)
	}
	return nil
}

// Bugs selects injected implementation defects. All fields default to
// a conformant device; the correlation study (Sec. 5.4) enables one
// defect at a time.
type Bugs struct {
	// CoherenceRR lets two same-thread loads of one location complete
	// out of order when the location's line is under pressure — the
	// CoRR violation observed on WebGPU over Metal on an Intel GPU
	// (Fig. 1a).
	CoherenceRR bool
	// CoherenceRRProb is the reorder probability once pressure exceeds
	// CoherenceRRPressure.
	CoherenceRRProb     float64
	CoherenceRRPressure int

	// StaleCache disables cross-CU cache invalidation so loads may
	// observe stale lines — the NVIDIA Kepler coherence violation
	// recreated for the MP-CO test (Sec. 5.4).
	StaleCache bool

	// DropFences elides every fence — the AMD Vulkan compiler defect
	// behind the MP-relacq bug (Fig. 1b). It is normally set by the
	// buggy wgsl lowering pass rather than directly.
	DropFences bool
}

// Any reports whether any defect is enabled.
func (b Bugs) Any() bool { return b.CoherenceRR || b.StaleCache || b.DropFences }

// The synthetic device fleet. The first four reproduce Table 3; Kepler
// is the fifth device used by the correlation study.
func nvidiaProfile() Profile {
	return Profile{
		Vendor: "NVIDIA", Chip: "GeForce RTX 2080", ShortName: "NVIDIA",
		CUs: 64, Integrated: false, Backend: Vulkan,
		WarpSize: 32, MaxWGPerCU: 4, MaxOutstanding: 6,
		ClockHz: 1e9, LaunchOverheadTicks: 120_000,
		LatLoad: 12, LatStore: 14, LatRMW: 18,
		JitterBase: 0,
		// A partitioned memory system: only same-line traffic interferes,
		// so scratch-region stress barely helps; parallel test instances
		// sharing lines are what expose weak behavior.
		GlobalPressureThresh: 4096, GlobalPressureWeight: 0.01,
		LinePressureThresh: 2, LinePressureWeight: 3.0,
		MaxPressureLat: 160,
		LineWords:      16, CacheLines: 64, StaleHitProb: 0.8,
	}
}

func amdProfile() Profile {
	return Profile{
		Vendor: "AMD", Chip: "Radeon Pro 5500M", ShortName: "AMD",
		CUs: 24, Integrated: false, Backend: Vulkan,
		WarpSize: 64, MaxWGPerCU: 4, MaxOutstanding: 4,
		ClockHz: 1e9, LaunchOverheadTicks: 150_000,
		LatLoad: 14, LatStore: 16, LatRMW: 20,
		JitterBase: 1,
		// A shared memory controller: global stress traffic inflates
		// latency, so classic stress helps — and parallelism helps more.
		GlobalPressureThresh: 48, GlobalPressureWeight: 0.25,
		LinePressureThresh: 2, LinePressureWeight: 1.5,
		MaxPressureLat: 120,
		LineWords:      16, CacheLines: 64, StaleHitProb: 0.8,
	}
}

func intelProfile() Profile {
	return Profile{
		Vendor: "Intel", Chip: "Iris Plus Graphics", ShortName: "Intel",
		CUs: 48, Integrated: true, Backend: Metal,
		WarpSize: 8, MaxWGPerCU: 2, MaxOutstanding: 4,
		ClockHz: 1e9, LaunchOverheadTicks: 200_000,
		LatLoad: 20, LatStore: 22, LatRMW: 28,
		// Plenty of idle-device variance: fine-grained interleavings are
		// visible even without stress, and global pressure compounds it.
		JitterBase:           4,
		GlobalPressureThresh: 16, GlobalPressureWeight: 0.5,
		LinePressureThresh: 1, LinePressureWeight: 1.0,
		MaxPressureLat: 100,
		LineWords:      8, CacheLines: 32, StaleHitProb: 0.8,
	}
}

func m1Profile() Profile {
	return Profile{
		Vendor: "Apple", Chip: "M1", ShortName: "M1",
		CUs: 128, Integrated: true, Backend: Metal,
		WarpSize: 32, MaxWGPerCU: 3, MaxOutstanding: 6,
		ClockHz: 1e9, LaunchOverheadTicks: 100_000,
		LatLoad: 10, LatStore: 12, LatRMW: 14,
		JitterBase: 0,
		// Like NVIDIA, weak behavior needs same-line pressure; the wide
		// device digests scratch stress without flinching.
		GlobalPressureThresh: 6144, GlobalPressureWeight: 0.01,
		LinePressureThresh: 2, LinePressureWeight: 2.5,
		MaxPressureLat: 140,
		LineWords:      16, CacheLines: 96, StaleHitProb: 0.8,
	}
}

func keplerProfile() Profile {
	return Profile{
		Vendor: "NVIDIA", Chip: "GeForce GTX 780 (Kepler)", ShortName: "Kepler",
		CUs: 12, Integrated: false, Backend: Vulkan,
		WarpSize: 32, MaxWGPerCU: 4, MaxOutstanding: 6,
		ClockHz: 1e9, LaunchOverheadTicks: 140_000,
		LatLoad: 16, LatStore: 18, LatRMW: 24,
		JitterBase: 0,
		// Like its RTX descendant, a partitioned memory system: weak
		// behavior needs same-line traffic, the same precondition under
		// which the non-coherent L1 serves stale lines.
		GlobalPressureThresh: 4096, GlobalPressureWeight: 0.01,
		LinePressureThresh: 2, LinePressureWeight: 2.0,
		MaxPressureLat: 120,
		LineWords:      8, CacheLines: 32, StaleHitProb: 0.85,
	}
}

// Profiles returns the four study devices of Table 3 in paper order.
func Profiles() []Profile {
	return []Profile{nvidiaProfile(), amdProfile(), intelProfile(), m1Profile()}
}

// AllProfiles returns the study devices plus the Kepler device used to
// recreate the prior coherence bug.
func AllProfiles() []Profile { return append(Profiles(), keplerProfile()) }

// ProfileByName resolves a profile from its short name
// (case-sensitive: "NVIDIA", "AMD", "Intel", "M1", "Kepler").
func ProfileByName(name string) (Profile, bool) {
	for _, p := range AllProfiles() {
		if p.ShortName == name {
			return p, true
		}
	}
	return Profile{}, false
}
