package stats

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/xrand"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestSummaries(t *testing.T) {
	xs := []float64{3, 1, 4, 1, 5}
	if Mean(xs) != 2.8 {
		t.Fatalf("Mean = %v", Mean(xs))
	}
	if Min(xs) != 1 || Max(xs) != 5 {
		t.Fatal("Min/Max wrong")
	}
	if Mean(nil) != 0 || Min(nil) != 0 || Max(nil) != 0 {
		t.Fatal("empty-input summaries must be 0")
	}
	if v := Variance([]float64{2, 2, 2}); v != 0 {
		t.Fatalf("Variance of constant = %v", v)
	}
	if v := Variance([]float64{1, 3}); v != 1 {
		t.Fatalf("Variance = %v, want 1", v)
	}
	if Variance([]float64{7}) != 0 {
		t.Fatal("single-point variance must be 0")
	}
}

func TestMinPositive(t *testing.T) {
	if m, ok := MinPositive([]float64{0, -1, 3, 2}); !ok || m != 2 {
		t.Fatalf("MinPositive = %v, %v", m, ok)
	}
	if _, ok := MinPositive([]float64{0, -5}); ok {
		t.Fatal("MinPositive found a positive value where none exists")
	}
	if _, ok := MinPositive(nil); ok {
		t.Fatal("MinPositive on empty input")
	}
}

func TestPearsonPerfect(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{2, 4, 6, 8, 10}
	r, err := Pearson(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(r, 1, 1e-12) {
		t.Fatalf("perfect positive correlation = %v", r)
	}
	neg := []float64{10, 8, 6, 4, 2}
	r, err = Pearson(xs, neg)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(r, -1, 1e-12) {
		t.Fatalf("perfect negative correlation = %v", r)
	}
}

func TestPearsonKnownValue(t *testing.T) {
	// Anscombe's quartet set I: r ≈ 0.81642.
	xs := []float64{10, 8, 13, 9, 11, 14, 6, 4, 12, 7, 5}
	ys := []float64{8.04, 6.95, 7.58, 8.81, 8.33, 9.96, 7.24, 4.26, 10.84, 4.82, 5.68}
	r, err := Pearson(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(r, 0.81642, 1e-4) {
		t.Fatalf("Anscombe I r = %v, want ~0.81642", r)
	}
}

func TestPearsonErrors(t *testing.T) {
	if _, err := Pearson([]float64{1, 2}, []float64{1}); err == nil {
		t.Error("mismatched lengths accepted")
	}
	if _, err := Pearson([]float64{1, 2}, []float64{3, 4}); err == nil {
		t.Error("two points accepted")
	}
	if _, err := Pearson([]float64{1, 1, 1}, []float64{1, 2, 3}); err == nil {
		t.Error("zero-variance sample accepted")
	}
}

func TestPearsonBounded(t *testing.T) {
	rng := xrand.New(7)
	f := func(seed uint32) bool {
		n := 3 + int(seed%20)
		xs := make([]float64, n)
		ys := make([]float64, n)
		for i := range xs {
			xs[i] = rng.Float64() * 100
			ys[i] = rng.Float64() * 100
		}
		r, err := Pearson(xs, ys)
		if err != nil {
			return true // degenerate draw
		}
		return r >= -1 && r <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPearsonPValueKnown(t *testing.T) {
	// r = 0.9, n = 10 -> t = 5.840, df = 8 -> p ~ 0.000387.
	p, err := PearsonPValue(0.9, 10)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(p, 0.000387, 5e-5) {
		t.Fatalf("p-value = %v, want ~0.000387", p)
	}
	// r = 0, any n: p = 1.
	p, err = PearsonPValue(0, 30)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(p, 1, 1e-9) {
		t.Fatalf("p-value for r=0 is %v, want 1", p)
	}
	// Perfect correlation: p = 0.
	if p, _ := PearsonPValue(1, 10); p != 0 {
		t.Fatalf("p-value for r=1 is %v", p)
	}
}

// TestPaperScalePValue reproduces the paper's significance claim: a PCC
// of .89 over 150 environments occurs by chance with probability below
// 10^-6 percent (1e-8).
func TestPaperScalePValue(t *testing.T) {
	p, err := PearsonPValue(0.89, 150)
	if err != nil {
		t.Fatal(err)
	}
	if p >= 1e-8 {
		t.Fatalf("p-value %v not below 1e-8", p)
	}
}

func TestPValueMonotoneInR(t *testing.T) {
	prev := 1.1
	for _, r := range []float64{0, 0.2, 0.4, 0.6, 0.8, 0.9, 0.99} {
		p, err := PearsonPValue(r, 20)
		if err != nil {
			t.Fatal(err)
		}
		if p >= prev {
			t.Fatalf("p-value not decreasing at r=%v: %v >= %v", r, p, prev)
		}
		prev = p
	}
}

func TestPValueErrors(t *testing.T) {
	if _, err := PearsonPValue(0.5, 2); err == nil {
		t.Fatal("n=2 accepted")
	}
}

func TestRegIncBetaEdges(t *testing.T) {
	if regIncBeta(2, 3, 0) != 0 || regIncBeta(2, 3, 1) != 1 {
		t.Fatal("edge values wrong")
	}
	// I_x(1,1) = x (uniform distribution).
	for _, x := range []float64{0.1, 0.5, 0.9} {
		if !almostEq(regIncBeta(1, 1, x), x, 1e-10) {
			t.Fatalf("I_%v(1,1) = %v", x, regIncBeta(1, 1, x))
		}
	}
	// Symmetry: I_x(a,b) = 1 - I_{1-x}(b,a).
	for _, x := range []float64{0.2, 0.4, 0.7} {
		lhs := regIncBeta(3, 5, x)
		rhs := 1 - regIncBeta(5, 3, 1-x)
		if !almostEq(lhs, rhs, 1e-10) {
			t.Fatalf("symmetry broken at x=%v: %v vs %v", x, lhs, rhs)
		}
	}
}

func BenchmarkPearson(b *testing.B) {
	rng := xrand.New(1)
	xs := make([]float64, 150)
	ys := make([]float64, 150)
	for i := range xs {
		xs[i] = rng.Float64()
		ys[i] = xs[i]*0.9 + rng.Float64()*0.1
	}
	for i := 0; i < b.N; i++ {
		if _, err := Pearson(xs, ys); err != nil {
			b.Fatal(err)
		}
	}
}
