package sched

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/xrand"
)

// testSpec builds an n-cell campaign over two fake devices.
func testSpec(n int) Spec {
	s := Spec{Name: "unit", Seed: 42}
	for i := 0; i < n; i++ {
		dev := "AMD"
		if i%2 == 1 {
			dev = "Intel"
		}
		s.Cells = append(s.Cells, Cell{Key: fmt.Sprintf("cell-%03d", i), Device: dev})
	}
	return s
}

// drawSum is a deterministic per-cell "result": a few RNG draws summed,
// so any dependence on scheduling order shows up immediately.
func drawSum(_ context.Context, _ Cell, rng *xrand.Rand) (uint64, error) {
	var sum uint64
	for i := 0; i < 16; i++ {
		sum += rng.Uint64()
	}
	return sum, nil
}

func TestSpecValidate(t *testing.T) {
	if err := (&Spec{}).Validate(); err == nil {
		t.Error("nameless empty spec accepted")
	}
	s := Spec{Name: "x", Cells: []Cell{{Key: "a"}, {Key: "a"}}}
	if err := s.Validate(); err == nil {
		t.Error("duplicate keys accepted")
	}
	s = Spec{Name: "x", Cells: []Cell{{Key: ""}}}
	if err := s.Validate(); err == nil {
		t.Error("empty key accepted")
	}
	if _, err := Run(Spec{Name: "x"}, drawSum, Options[uint64]{}); err == nil {
		t.Error("Run accepted empty spec")
	}
}

func TestDeterminismAcrossWorkerCounts(t *testing.T) {
	spec := testSpec(37)
	var want []uint64
	for _, workers := range []int{1, 4, 8, 64} {
		rep, err := Run(spec, drawSum, Options[uint64]{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		got := rep.Values()
		if want == nil {
			want = got
			continue
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: cell %d = %d, want %d", workers, i, got[i], want[i])
			}
		}
	}
}

func TestResultsInSpecOrder(t *testing.T) {
	spec := testSpec(20)
	rep, err := Run(spec, func(_ context.Context, c Cell, _ *xrand.Rand) (string, error) {
		return c.Key, nil
	}, Options[string]{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range rep.Values() {
		if v != spec.Cells[i].Key {
			t.Fatalf("result %d = %q, want %q", i, v, spec.Cells[i].Key)
		}
	}
	if rep.Executed != 20 || rep.Replayed != 0 || rep.Failed != 0 {
		t.Fatalf("counters: %+v", rep)
	}
}

func TestPanicRecovery(t *testing.T) {
	spec := testSpec(5)
	_, err := Run(spec, func(_ context.Context, c Cell, _ *xrand.Rand) (int, error) {
		if c.Key == "cell-002" {
			panic("device exploded")
		}
		return 1, nil
	}, Options[int]{Workers: 2})
	if err == nil || !strings.Contains(err.Error(), "device exploded") {
		t.Fatalf("panic not surfaced as error: %v", err)
	}
	if err != nil && !strings.Contains(err.Error(), "cell-002") {
		t.Fatalf("error does not name the cell: %v", err)
	}
}

func TestTransientRetry(t *testing.T) {
	spec := testSpec(3)
	var calls atomic.Int32
	rep, err := Run(spec, func(_ context.Context, c Cell, _ *xrand.Rand) (int, error) {
		if c.Key == "cell-001" && calls.Add(1) < 3 {
			return 0, Transient(fmt.Errorf("busy"))
		}
		return 7, nil
	}, Options[int]{Workers: 2, MaxRetries: 5})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Results[1].Attempts != 3 {
		t.Fatalf("attempts = %d, want 3", rep.Results[1].Attempts)
	}
	if rep.Results[0].Attempts != 1 || rep.Results[2].Attempts != 1 {
		t.Fatal("healthy cells should run once")
	}
}

func TestTransientRetryExhaustion(t *testing.T) {
	spec := testSpec(1)
	rep, err := Run(spec, func(context.Context, Cell, *xrand.Rand) (int, error) {
		return 0, Transient(fmt.Errorf("always busy"))
	}, Options[int]{MaxRetries: 2})
	if err == nil {
		t.Fatal("exhausted retries did not fail")
	}
	if rep.Results[0].Attempts != 3 { // first try + 2 retries
		t.Fatalf("attempts = %d, want 3", rep.Results[0].Attempts)
	}
}

func TestPermanentErrorNotRetried(t *testing.T) {
	spec := testSpec(1)
	rep, err := Run(spec, func(context.Context, Cell, *xrand.Rand) (int, error) {
		return 0, fmt.Errorf("deterministic defect")
	}, Options[int]{MaxRetries: 5})
	if err == nil {
		t.Fatal("permanent error swallowed")
	}
	if rep.Results[0].Attempts != 1 {
		t.Fatalf("permanent error retried %d times", rep.Results[0].Attempts)
	}
}

func TestTransientMarker(t *testing.T) {
	if Transient(nil) != nil {
		t.Error("Transient(nil) != nil")
	}
	base := fmt.Errorf("x")
	wrapped := fmt.Errorf("outer: %w", Transient(base))
	if !IsTransient(wrapped) {
		t.Error("wrapped transient not detected")
	}
	if IsTransient(base) {
		t.Error("plain error detected as transient")
	}
}

func TestFailFastAborts(t *testing.T) {
	// Serial worker: cell 1 fails, later cells must not run.
	spec := testSpec(10)
	var ran atomic.Int32
	rep, err := Run(spec, func(_ context.Context, c Cell, _ *xrand.Rand) (int, error) {
		ran.Add(1)
		if c.Key == "cell-001" {
			return 0, fmt.Errorf("boom")
		}
		return 1, nil
	}, Options[int]{Workers: 1})
	if err == nil {
		t.Fatal("fail-fast returned nil error")
	}
	if got := ran.Load(); got != 2 {
		t.Fatalf("%d cells ran after failure, want 2", got)
	}
	if rep.Aborted != 8 {
		t.Fatalf("Aborted = %d, want 8", rep.Aborted)
	}
}

func TestCollectPolicyRunsEverything(t *testing.T) {
	spec := testSpec(10)
	var ran atomic.Int32
	rep, err := Run(spec, func(_ context.Context, c Cell, _ *xrand.Rand) (int, error) {
		ran.Add(1)
		if c.Key == "cell-001" || c.Key == "cell-007" {
			return 0, fmt.Errorf("boom")
		}
		return 1, nil
	}, Options[int]{Workers: 3, Collect: true})
	if err != nil {
		t.Fatalf("collect policy returned error: %v", err)
	}
	if got := ran.Load(); got != 10 {
		t.Fatalf("%d cells ran, want 10", got)
	}
	if rep.Failed != 2 {
		t.Fatalf("Failed = %d, want 2", rep.Failed)
	}
	if rep.FirstErr() == nil || !strings.Contains(rep.FirstErr().Error(), "cell-001") {
		t.Fatalf("FirstErr = %v", rep.FirstErr())
	}
}

func TestOnCellStartAndReporter(t *testing.T) {
	spec := testSpec(12)
	var mu sync.Mutex
	var started []string
	var lines []string
	rep := NewReporter(func(s string) {
		mu.Lock()
		lines = append(lines, s)
		mu.Unlock()
	}, 0)
	_, err := Run(spec, func(_ context.Context, _ Cell, rng *xrand.Rand) (int, error) {
		return 100, nil
	}, Options[int]{
		Workers:  4,
		Reporter: rep,
		OnCellStart: func(c Cell) {
			mu.Lock()
			started = append(started, c.Key)
			mu.Unlock()
		},
		Instances: func(v int) int { return v },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(started) != 12 {
		t.Fatalf("OnCellStart fired %d times, want 12", len(started))
	}
	if len(lines) == 0 {
		t.Fatal("reporter emitted nothing")
	}
	last := lines[len(lines)-1]
	for _, want := range []string{"unit: 12/12 cells", "cells/s", "instances/s", "util", "AMD", "Intel", "done"} {
		if !strings.Contains(last, want) {
			t.Errorf("final line missing %q: %s", want, last)
		}
	}
}

func TestCellRandIndependentOfOrder(t *testing.T) {
	spec := testSpec(2)
	a1 := spec.CellRand("cell-000", 0).Uint64()
	// Drawing for another cell in between must not perturb cell-000.
	_ = spec.CellRand("cell-001", 0).Uint64()
	a2 := spec.CellRand("cell-000", 0).Uint64()
	if a1 != a2 {
		t.Fatal("CellRand depends on call order")
	}
	if spec.CellRand("cell-000", 0).Uint64() == spec.CellRand("cell-000", 1).Uint64() {
		t.Fatal("attempts share a stream")
	}
}

// TestNewWorkerExecPerWorker verifies the per-worker executor factory:
// it is invoked exactly once per spawned worker (so worker-private
// scratch is never shared across goroutines), and campaigns built from
// it remain deterministic — identical to the shared-exec run — at
// every worker count.
func TestNewWorkerExecPerWorker(t *testing.T) {
	spec := testSpec(24)
	base, err := Run(spec, drawSum, Options[uint64]{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 3, 8, 64} {
		var made atomic.Int32
		opts := Options[uint64]{Workers: workers}
		opts.NewWorkerExec = func() Exec[uint64] {
			made.Add(1)
			// Worker-private scratch, reused across this worker's cells:
			// sharing it between goroutines would be a data race, which
			// is exactly what the factory exists to prevent.
			scratch := make([]uint64, 0, 16)
			return func(_ context.Context, c Cell, rng *xrand.Rand) (uint64, error) {
				scratch = scratch[:0]
				for i := 0; i < 16; i++ {
					scratch = append(scratch, rng.Uint64())
				}
				var sum uint64
				for _, v := range scratch {
					sum += v
				}
				return sum, nil
			}
		}
		rep, err := Run(spec, drawSum, opts)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		want := workers
		if want > len(spec.Cells) {
			want = len(spec.Cells)
		}
		if int(made.Load()) != want {
			t.Errorf("workers=%d: factory called %d times, want %d", workers, made.Load(), want)
		}
		got := rep.Values()
		for i, v := range base.Values() {
			if got[i] != v {
				t.Fatalf("workers=%d: cell %d = %d, want %d (per-worker exec changed results)",
					workers, i, got[i], v)
			}
		}
	}
}
