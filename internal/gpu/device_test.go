package gpu

import (
	"testing"

	"repro/internal/xrand"
)

func dev(t testing.TB, p Profile, bugs Bugs) *Device {
	t.Helper()
	d, err := NewDevice(p, bugs)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// twoThreadSpec builds a spec with two single-thread workgroups (the
// inter-workgroup scope the paper tests) plus arbitrary extra programs.
func twoThreadSpec(memWords int, progs ...Program) LaunchSpec {
	return LaunchSpec{
		WorkgroupSize: 1,
		Workgroups:    len(progs),
		MemWords:      memWords,
		Programs:      progs,
	}
}

func TestProfilesValidate(t *testing.T) {
	for _, p := range AllProfiles() {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.ShortName, err)
		}
	}
}

// TestTable3Devices checks the device inventory against Table 3.
func TestTable3Devices(t *testing.T) {
	want := []struct {
		short      string
		vendor     string
		cus        int
		integrated bool
	}{
		{"NVIDIA", "NVIDIA", 64, false},
		{"AMD", "AMD", 24, false},
		{"Intel", "Intel", 48, true},
		{"M1", "Apple", 128, true},
	}
	ps := Profiles()
	if len(ps) != 4 {
		t.Fatalf("Profiles() returned %d devices, want 4", len(ps))
	}
	for i, w := range want {
		p := ps[i]
		if p.ShortName != w.short || p.Vendor != w.vendor || p.CUs != w.cus || p.Integrated != w.integrated {
			t.Errorf("device %d = %s/%s CUs=%d integrated=%v, want %+v",
				i, p.Vendor, p.ShortName, p.CUs, p.Integrated, w)
		}
	}
	if _, ok := ProfileByName("Kepler"); !ok {
		t.Error("Kepler profile missing")
	}
	if _, ok := ProfileByName("bogus"); ok {
		t.Error("ProfileByName resolved a bogus name")
	}
}

func TestRunDeterministic(t *testing.T) {
	p := intelProfile()
	prog0 := Program{
		{Op: OpStore, Addr: 0, Imm: 1},
		{Op: OpStore, Addr: 1, Imm: 1},
	}
	prog1 := Program{
		{Op: OpLoad, Addr: 1, Reg: 0},
		{Op: OpLoad, Addr: 0, Reg: 1},
	}
	spec := twoThreadSpec(2, prog0, prog1)
	d := dev(t, p, Bugs{})
	run, err := d.Run(spec, xrand.New(7))
	if err != nil {
		t.Fatal(err)
	}
	// A RunResult aliases device scratch and is only valid until the
	// next Run, so snapshot before rerunning.
	a := snapshotRun(run)
	run, err = d.Run(spec, xrand.New(7))
	if err != nil {
		t.Fatal(err)
	}
	b := snapshotRun(run)
	if a.Stats.Ticks != b.Stats.Ticks {
		t.Fatalf("same seed, different ticks: %d vs %d", a.Stats.Ticks, b.Stats.Ticks)
	}
	for i := range a.Registers {
		for j := range a.Registers[i] {
			if a.Registers[i][j] != b.Registers[i][j] {
				t.Fatalf("same seed, different registers at t%d r%d", i, j)
			}
		}
	}
}

// snapshotRun deep-copies a RunResult out of the device's reusable
// scratch.
func snapshotRun(r *RunResult) RunResult {
	c := *r
	c.Registers = make([][]uint32, len(r.Registers))
	for i, regs := range r.Registers {
		c.Registers[i] = append([]uint32(nil), regs...)
	}
	c.Memory = append([]uint32(nil), r.Memory...)
	return c
}

func TestSingleThreadProgramOrder(t *testing.T) {
	// A thread must see its own stores (program order per location).
	prog := Program{
		{Op: OpStore, Addr: 0, Imm: 42},
		{Op: OpLoad, Addr: 0, Reg: 0},
		{Op: OpStore, Addr: 0, Imm: 43},
		{Op: OpLoad, Addr: 0, Reg: 1},
	}
	d := dev(t, intelProfile(), Bugs{})
	rng := xrand.New(1)
	for i := 0; i < 50; i++ {
		res, err := d.Run(twoThreadSpec(1, prog), rng)
		if err != nil {
			t.Fatal(err)
		}
		if res.Registers[0][0] != 42 || res.Registers[0][1] != 43 {
			t.Fatalf("iteration %d: own stores not observed: %v", i, res.Registers[0])
		}
		if res.Memory[0] != 43 {
			t.Fatalf("final memory %d, want 43", res.Memory[0])
		}
	}
}

// TestCoherenceHoldsWithoutBugs: on every conformant profile, two reads
// of one location in a thread never observe new-then-old (the CoRR
// violation), no matter the contention.
func TestCoherenceHoldsWithoutBugs(t *testing.T) {
	writer := Program{{Op: OpStore, Addr: 0, Imm: 1}}
	reader := Program{
		{Op: OpLoad, Addr: 0, Reg: 0},
		{Op: OpLoad, Addr: 0, Reg: 1},
	}
	// Stress threads hammering the same line maximize pressure.
	stress := Program{}
	for i := 0; i < 20; i++ {
		stress = append(stress, Instr{Op: OpStressLoad, Addr: 2})
		stress = append(stress, Instr{Op: OpStressStore, Addr: 3, Imm: 9})
	}
	for _, p := range AllProfiles() {
		d := dev(t, p, Bugs{})
		rng := xrand.New(11)
		for i := 0; i < 100; i++ {
			res, err := d.Run(twoThreadSpec(4, writer, reader, stress, stress), rng)
			if err != nil {
				t.Fatal(err)
			}
			r0, r1 := res.Registers[1][0], res.Registers[1][1]
			if r0 == 1 && r1 == 0 {
				t.Fatalf("%s: coherence violation without bugs (iteration %d)", p.ShortName, i)
			}
		}
	}
}

// TestCoherenceRRBugFires: with the injected load-load defect and line
// pressure, the CoRR violation appears.
func TestCoherenceRRBugFires(t *testing.T) {
	writer := Program{{Op: OpStore, Addr: 0, Imm: 1}}
	reader := Program{
		{Op: OpLoad, Addr: 0, Reg: 0},
		{Op: OpLoad, Addr: 0, Reg: 1},
	}
	// Extra readers of the same location create line pressure.
	noise := Program{
		{Op: OpStressLoad, Addr: 0}, {Op: OpStressLoad, Addr: 0},
		{Op: OpStressLoad, Addr: 0}, {Op: OpStressLoad, Addr: 0},
	}
	bugs := Bugs{CoherenceRR: true, CoherenceRRProb: 0.5, CoherenceRRPressure: 1}
	d := dev(t, intelProfile(), bugs)
	rng := xrand.New(3)
	violations := 0
	for i := 0; i < 400; i++ {
		res, err := d.Run(twoThreadSpec(2, writer, reader, noise, noise), rng)
		if err != nil {
			t.Fatal(err)
		}
		if res.Registers[1][0] == 1 && res.Registers[1][1] == 0 {
			violations++
		}
	}
	if violations == 0 {
		t.Fatal("CoherenceRR bug never produced a CoRR violation in 400 runs")
	}
}

// preStressed prepends a few throwaway accesses so the interesting
// instructions issue inside the contention window the noise threads
// create — the role the harness's pre-stress parameter plays.
func preStressed(n int, scratch uint32, body Program) Program {
	var p Program
	for i := 0; i < n; i++ {
		p = append(p, Instr{Op: OpStressLoad, Addr: scratch})
	}
	return append(p, body...)
}

// TestMPWeakBehaviorUnderPressure: message passing re-ordering must be
// observable on a conformant device given same-line contention (this is
// legal — the device is relaxed).
func TestMPWeakBehaviorUnderPressure(t *testing.T) {
	// x and y on the same line as the contended addresses.
	writer := preStressed(3, 2, Program{
		{Op: OpStore, Addr: 0, Imm: 1}, // data x
		{Op: OpStore, Addr: 1, Imm: 1}, // flag y
	})
	reader := preStressed(3, 3, Program{
		{Op: OpLoad, Addr: 1, Reg: 0},
		{Op: OpLoad, Addr: 0, Reg: 1},
	})
	var noise Program
	for i := 0; i < 12; i++ {
		noise = append(noise, Instr{Op: OpStressLoad, Addr: 2})
		noise = append(noise, Instr{Op: OpStressStore, Addr: 3, Imm: 9})
	}
	weak := 0
	d := dev(t, amdProfile(), Bugs{})
	rng := xrand.New(5)
	for i := 0; i < 600; i++ {
		res, err := d.Run(twoThreadSpec(4, writer, reader, noise, noise, noise), rng)
		if err != nil {
			t.Fatal(err)
		}
		if res.Registers[1][0] == 1 && res.Registers[1][1] == 0 {
			weak++
		}
	}
	if weak == 0 {
		t.Fatal("no MP weak behavior in 600 pressured runs on AMD profile")
	}
}

// TestFencesRestoreOrder: with fences between the accesses, the MP weak
// outcome must never appear on a conformant device.
func TestFencesRestoreOrder(t *testing.T) {
	writer := preStressed(3, 2, Program{
		{Op: OpStore, Addr: 0, Imm: 1},
		{Op: OpFence},
		{Op: OpStore, Addr: 1, Imm: 1},
	})
	reader := preStressed(3, 3, Program{
		{Op: OpLoad, Addr: 1, Reg: 0},
		{Op: OpFence},
		{Op: OpLoad, Addr: 0, Reg: 1},
	})
	var noise Program
	for i := 0; i < 12; i++ {
		noise = append(noise, Instr{Op: OpStressLoad, Addr: 2})
		noise = append(noise, Instr{Op: OpStressStore, Addr: 3, Imm: 9})
	}
	d := dev(t, amdProfile(), Bugs{})
	rng := xrand.New(9)
	for i := 0; i < 600; i++ {
		res, err := d.Run(twoThreadSpec(4, writer, reader, noise, noise, noise), rng)
		if err != nil {
			t.Fatal(err)
		}
		if res.Registers[1][0] == 1 && res.Registers[1][1] == 0 {
			t.Fatalf("fenced MP violated on conformant device (iteration %d)", i)
		}
	}
}

// TestDropFencesBugReintroducesWeakness: the fence-drop defect makes
// the fenced test behave like the unfenced one.
func TestDropFencesBugReintroducesWeakness(t *testing.T) {
	writer := preStressed(3, 2, Program{
		{Op: OpStore, Addr: 0, Imm: 1},
		{Op: OpFence},
		{Op: OpStore, Addr: 1, Imm: 1},
	})
	reader := preStressed(3, 3, Program{
		{Op: OpLoad, Addr: 1, Reg: 0},
		{Op: OpFence},
		{Op: OpLoad, Addr: 0, Reg: 1},
	})
	var noise Program
	for i := 0; i < 12; i++ {
		noise = append(noise, Instr{Op: OpStressLoad, Addr: 2})
		noise = append(noise, Instr{Op: OpStressStore, Addr: 3, Imm: 9})
	}
	d := dev(t, amdProfile(), Bugs{DropFences: true})
	rng := xrand.New(13)
	weak := 0
	var dropped int64
	for i := 0; i < 600; i++ {
		res, err := d.Run(twoThreadSpec(4, writer, reader, noise, noise, noise), rng)
		if err != nil {
			t.Fatal(err)
		}
		dropped += res.Stats.DroppedFences
		if res.Registers[1][0] == 1 && res.Registers[1][1] == 0 {
			weak++
		}
	}
	if dropped == 0 {
		t.Fatal("DroppedFences stat never incremented")
	}
	if weak == 0 {
		t.Fatal("fence-drop bug never produced the MP violation")
	}
}

// TestStaleCacheBug: a stale line on the reader's CU yields the MP-CO
// violation: the second read observes an older value than the first.
func TestStaleCacheBug(t *testing.T) {
	p := keplerProfile()
	// The writer's slight delay lets the reader's CU cache the line
	// while x is still 0; the stores then land in memory without
	// invalidating that stale copy (the bug).
	writer := preStressed(4, 2, Program{
		{Op: OpStore, Addr: 0, Imm: 1},
		{Op: OpStore, Addr: 0, Imm: 2},
	})
	// The reader's first neighbor-word access fills its CU's line with
	// the initial snapshot; the trailing x loads then race the stores,
	// sometimes reading fresh memory (a bypass) before hitting the
	// stale line.
	reader := preStressed(8, 1, Program{
		{Op: OpLoad, Addr: 0, Reg: 0},
		{Op: OpLoad, Addr: 0, Reg: 1},
	})
	spec := LaunchSpec{
		WorkgroupSize: 1,
		Workgroups:    2,
		MemWords:      4,
		Programs:      []Program{writer, reader},
	}
	d := dev(t, p, Bugs{StaleCache: true})
	rng := xrand.New(17)
	violations, stale := 0, int64(0)
	for i := 0; i < 800; i++ {
		res, err := d.Run(spec, rng)
		if err != nil {
			t.Fatal(err)
		}
		stale += res.Stats.StaleReads
		r0, r1 := res.Registers[1][0], res.Registers[1][1]
		if r0 > r1 { // saw a newer value, then an older one
			violations++
		}
	}
	if stale == 0 {
		t.Fatal("StaleReads stat never incremented")
	}
	if violations == 0 {
		t.Fatal("stale-cache bug never produced a coherence violation in 800 runs")
	}
	// Without the bug the same layout must never violate.
	d2 := dev(t, p, Bugs{})
	for i := 0; i < 200; i++ {
		res, err := d2.Run(spec, rng)
		if err != nil {
			t.Fatal(err)
		}
		if res.Registers[1][0] > res.Registers[1][1] {
			t.Fatal("conformant Kepler profile violated coherence")
		}
	}
}

// TestExchangeAtomicity: concurrent exchanges form a chain — all
// observed old values are distinct and one thread sees the initial 0.
func TestExchangeAtomicity(t *testing.T) {
	const n = 16
	progs := make([]Program, n)
	for i := range progs {
		progs[i] = Program{{Op: OpExchange, Addr: 0, Imm: uint32(i + 1), Reg: 0}}
	}
	d := dev(t, nvidiaProfile(), Bugs{})
	rng := xrand.New(19)
	for iter := 0; iter < 50; iter++ {
		res, err := d.Run(LaunchSpec{
			WorkgroupSize: 1, Workgroups: n, MemWords: 1, Programs: progs,
		}, rng)
		if err != nil {
			t.Fatal(err)
		}
		seen := map[uint32]bool{}
		zeros := 0
		for i := 0; i < n; i++ {
			v := res.Registers[i][0]
			if seen[v] {
				t.Fatalf("duplicate exchanged value %d: atomicity broken", v)
			}
			seen[v] = true
			if v == 0 {
				zeros++
			}
		}
		if zeros != 1 {
			t.Fatalf("%d threads read the initial value, want exactly 1", zeros)
		}
	}
}

// TestBarrierSynchronizes: threads separated by a barrier must observe
// all pre-barrier stores of their workgroup.
func TestBarrierSynchronizes(t *testing.T) {
	const wgSize = 8
	progs := make([]Program, wgSize)
	for i := 0; i < wgSize; i++ {
		progs[i] = Program{
			{Op: OpStore, Addr: uint32(i), Imm: uint32(i + 1)},
			{Op: OpBarrier},
			{Op: OpLoad, Addr: uint32((i + 1) % wgSize), Reg: 0},
		}
	}
	d := dev(t, m1Profile(), Bugs{})
	rng := xrand.New(23)
	for iter := 0; iter < 100; iter++ {
		res, err := d.Run(LaunchSpec{
			WorkgroupSize: wgSize, Workgroups: 1, MemWords: wgSize, Programs: progs,
		}, rng)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < wgSize; i++ {
			want := uint32((i+1)%wgSize) + 1
			if got := res.Registers[i][0]; got != want {
				t.Fatalf("thread %d read %d after barrier, want %d", i, got, want)
			}
		}
	}
}

func TestWorkgroupWavesAdmission(t *testing.T) {
	// More workgroups than CU slots: all must still complete.
	p := keplerProfile() // 12 CUs * 4 slots = 48 resident workgroups
	const wgs = 200
	progs := make([]Program, wgs)
	for i := range progs {
		progs[i] = Program{
			{Op: OpStore, Addr: uint32(i), Imm: uint32(i + 1)},
			{Op: OpLoad, Addr: uint32(i), Reg: 0},
		}
	}
	d := dev(t, p, Bugs{})
	res, err := d.Run(LaunchSpec{
		WorkgroupSize: 1, Workgroups: wgs, MemWords: wgs, Programs: progs,
	}, xrand.New(29))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < wgs; i++ {
		if res.Registers[i][0] != uint32(i+1) {
			t.Fatalf("workgroup %d did not complete correctly", i)
		}
		if res.Memory[i] != uint32(i+1) {
			t.Fatalf("memory[%d] = %d", i, res.Memory[i])
		}
	}
}

func TestSimSecondsIncludesOverhead(t *testing.T) {
	p := intelProfile()
	d := dev(t, p, Bugs{})
	res, err := d.Run(twoThreadSpec(1, Program{{Op: OpStore, Addr: 0, Imm: 1}}), xrand.New(31))
	if err != nil {
		t.Fatal(err)
	}
	minSeconds := float64(p.LaunchOverheadTicks) / p.ClockHz
	if res.SimSeconds < minSeconds {
		t.Fatalf("SimSeconds %v below launch overhead %v", res.SimSeconds, minSeconds)
	}
	if res.Stats.Ticks <= 0 {
		t.Fatal("no simulated ticks recorded")
	}
}

func TestValidateErrors(t *testing.T) {
	good := twoThreadSpec(1, Program{{Op: OpStore, Addr: 0, Imm: 1}})
	cases := []struct {
		name   string
		mutate func(*LaunchSpec)
	}{
		{"zero wg size", func(s *LaunchSpec) { s.WorkgroupSize = 0 }},
		{"zero wgs", func(s *LaunchSpec) { s.Workgroups = 0 }},
		{"zero mem", func(s *LaunchSpec) { s.MemWords = 0 }},
		{"program count", func(s *LaunchSpec) { s.Programs = s.Programs[:0] }},
		{"addr out of range", func(s *LaunchSpec) {
			s.Programs = []Program{{{Op: OpLoad, Addr: 99, Reg: 0}}}
		}},
	}
	for _, c := range cases {
		s := good
		s.Programs = append([]Program(nil), good.Programs...)
		c.mutate(&s)
		if err := s.Validate(); err == nil {
			t.Errorf("%s: Validate accepted invalid spec", c.name)
		}
	}
	d := dev(t, intelProfile(), Bugs{})
	bad := good
	bad.MemWords = 0
	if _, err := d.Run(bad, xrand.New(1)); err == nil {
		t.Error("Run accepted invalid spec")
	}
}

func TestNewDeviceRejectsBadProfile(t *testing.T) {
	p := intelProfile()
	p.CUs = 0
	if _, err := NewDevice(p, Bugs{}); err == nil {
		t.Fatal("NewDevice accepted CUs=0")
	}
}

func TestEmptyProgramsRetireImmediately(t *testing.T) {
	d := dev(t, intelProfile(), Bugs{})
	res, err := d.Run(LaunchSpec{
		WorkgroupSize: 4, Workgroups: 1, MemWords: 1,
		Programs: []Program{{}, {}, {}, {{Op: OpStore, Addr: 0, Imm: 5}}},
	}, xrand.New(37))
	if err != nil {
		t.Fatal(err)
	}
	if res.Memory[0] != 5 {
		t.Fatal("active thread did not run")
	}
}

func TestBarrierWithRetiredThreads(t *testing.T) {
	// One thread retires before the barrier; the rest must not deadlock.
	d := dev(t, intelProfile(), Bugs{})
	progs := []Program{
		{{Op: OpStore, Addr: 0, Imm: 1}}, // no barrier, retires early
		{{Op: OpBarrier}, {Op: OpLoad, Addr: 0, Reg: 0}},
		{{Op: OpBarrier}, {Op: OpLoad, Addr: 0, Reg: 0}},
	}
	res, err := d.Run(LaunchSpec{
		WorkgroupSize: 3, Workgroups: 1, MemWords: 1, Programs: progs,
	}, xrand.New(41))
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Instructions == 0 {
		t.Fatal("nothing executed")
	}
}

func TestStatsPopulated(t *testing.T) {
	var noise Program
	for i := 0; i < 30; i++ {
		noise = append(noise, Instr{Op: OpStressLoad, Addr: 0})
	}
	d := dev(t, amdProfile(), Bugs{})
	res, err := d.Run(twoThreadSpec(1, noise, noise, noise, noise), xrand.New(43))
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Instructions < 120 || res.Stats.MemOps < 120 {
		t.Fatalf("stats undercount: %+v", res.Stats)
	}
	if res.Stats.MaxGlobalInFlight <= 0 {
		t.Fatal("MaxGlobalInFlight not tracked")
	}
}

func TestOpStrings(t *testing.T) {
	for op, want := range map[Op]string{
		OpLoad: "ld", OpStore: "st", OpExchange: "xchg", OpFence: "fence",
		OpBarrier: "barrier", OpStressLoad: "stress.ld", OpStressStore: "stress.st",
	} {
		if op.String() != want {
			t.Errorf("Op(%d).String() = %q, want %q", op, op.String(), want)
		}
	}
	for b, want := range map[Backend]string{Metal: "Metal", Vulkan: "Vulkan", HLSL: "HLSL"} {
		if b.String() != want {
			t.Errorf("Backend.String() = %q, want %q", b.String(), want)
		}
	}
}

func BenchmarkRunSmallKernel(b *testing.B) {
	writer := Program{
		{Op: OpStore, Addr: 0, Imm: 1},
		{Op: OpStore, Addr: 1, Imm: 1},
	}
	reader := Program{
		{Op: OpLoad, Addr: 1, Reg: 0},
		{Op: OpLoad, Addr: 0, Reg: 1},
	}
	d := MustDevice(amdProfile(), Bugs{})
	spec := twoThreadSpec(2, writer, reader)
	rng := xrand.New(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := d.Run(spec, rng); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRunParallelKernel(b *testing.B) {
	// 64 workgroups x 32 threads, each thread a 4-instruction test role.
	const wgs, wgSize = 64, 32
	progs := make([]Program, wgs*wgSize)
	for i := range progs {
		base := uint32((i * 2) % 1024)
		progs[i] = Program{
			{Op: OpStore, Addr: base, Imm: 1},
			{Op: OpStore, Addr: base + 1, Imm: 1},
			{Op: OpLoad, Addr: base + 1, Reg: 0},
			{Op: OpLoad, Addr: base, Reg: 1},
		}
	}
	d := MustDevice(nvidiaProfile(), Bugs{})
	spec := LaunchSpec{WorkgroupSize: wgSize, Workgroups: wgs, MemWords: 1025, Programs: progs}
	rng := xrand.New(2)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := d.Run(spec, rng); err != nil {
			b.Fatal(err)
		}
	}
}
