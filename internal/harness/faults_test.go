package harness

import (
	"errors"
	"testing"

	"repro/internal/gpu"
	"repro/internal/litmus"
	"repro/internal/sched"
	"repro/internal/xrand"
)

// faultyRunner builds a runner over an AMD device with the given fault
// model installed.
func faultyRunner(t *testing.T, fm gpu.FaultModel, env Params) *Runner {
	t.Helper()
	d := device(t, "AMD", gpu.Bugs{})
	if err := d.SetFaults(fm); err != nil {
		t.Fatal(err)
	}
	r, err := NewRunner(d, env)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// TestRunDiscardsCorruptedIterations: with certain result corruption,
// every iteration is detected as out-of-domain, discarded, and the run
// fails with a transient corruption error rather than classifying
// poisoned outcomes as memory-model violations.
func TestRunDiscardsCorruptedIterations(t *testing.T) {
	r := faultyRunner(t, gpu.FaultModel{Seed: 3, CorruptProb: 1}, smallPTE())
	_, err := r.Run(litmus.MP(), 5, xrand.New(1))
	if !errors.Is(err, gpu.ErrResultCorrupt) {
		t.Fatalf("err = %v, want ErrResultCorrupt", err)
	}
	if !sched.IsTransient(err) {
		t.Fatal("all-poisoned run must classify as transient so the cell is retried")
	}
}

// TestRunCountsDiscardedIterations: at a partial corruption rate,
// poisoned iterations are discarded (counted in Discarded) while clean
// iterations are classified normally, and no out-of-domain value ever
// reaches the histogram.
func TestRunCountsDiscardedIterations(t *testing.T) {
	r := faultyRunner(t, gpu.FaultModel{Seed: 3, CorruptProb: 0.4}, smallPTE())
	test := litmus.MP()
	res, err := r.Run(test, 40, xrand.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if res.Discarded == 0 {
		t.Fatal("40% corruption discarded nothing in 40 iterations")
	}
	if res.Iterations == 0 {
		t.Fatal("every iteration discarded at 40% corruption")
	}
	if res.Iterations+res.Discarded != 40 {
		t.Fatalf("Iterations=%d + Discarded=%d != 40", res.Iterations, res.Discarded)
	}
	// The defensive property: corruption never reaches classification,
	// so a conformant device shows zero violations even at a 40% fault
	// rate. (Unvalidated, the garbage values would classify as
	// inconsistent outcomes — false MCS violations.)
	if res.Violations != 0 {
		t.Fatalf("%d violations on a conformant device: corruption leaked into classification", res.Violations)
	}
}

// TestRunSurfacesDeviceErrors: injected launch failures surface as
// typed transient errors; a lost device surfaces as permanent.
func TestRunSurfacesDeviceErrors(t *testing.T) {
	r := faultyRunner(t, gpu.FaultModel{Seed: 3, LaunchFailProb: 1}, smallPTE())
	_, err := r.Run(litmus.MP(), 3, xrand.New(1))
	if !errors.Is(err, gpu.ErrLaunchFailed) {
		t.Fatalf("err = %v, want ErrLaunchFailed", err)
	}
	if !sched.IsTransient(err) {
		t.Fatal("launch failure must be transient")
	}

	lost := faultyRunner(t, gpu.FaultModel{Seed: 3, LaunchFailProb: 1, LossAfter: 1}, smallPTE())
	if _, err := lost.Run(litmus.MP(), 3, xrand.New(1)); !errors.Is(err, gpu.ErrLaunchFailed) {
		t.Fatalf("first run: %v, want ErrLaunchFailed", err)
	}
	_, err = lost.Run(litmus.MP(), 3, xrand.New(2))
	if !errors.Is(err, gpu.ErrDeviceLost) {
		t.Fatalf("err = %v, want ErrDeviceLost", err)
	}
	if sched.IsTransient(err) {
		t.Fatal("device loss must be permanent")
	}
}

// TestFaultFreeResultsUnchanged: installing the zero fault model leaves
// a run's result identical to a plain device's, including the absence
// of discards — the guard for pre-existing datasets.
func TestFaultFreeResultsUnchanged(t *testing.T) {
	env := stressedPTE()
	plain, err := NewRunner(device(t, "AMD", gpu.Bugs{}), env)
	if err != nil {
		t.Fatal(err)
	}
	faulted := faultyRunner(t, gpu.FaultModel{}, env)
	a, err := plain.Run(litmus.MP(), 10, xrand.New(9))
	if err != nil {
		t.Fatal(err)
	}
	b, err := faulted.Run(litmus.MP(), 10, xrand.New(9))
	if err != nil {
		t.Fatal(err)
	}
	if a.Discarded != 0 || b.Discarded != 0 {
		t.Fatalf("fault-free runs discarded iterations: %d, %d", a.Discarded, b.Discarded)
	}
	if a.Instances != b.Instances || a.TargetCount != b.TargetCount ||
		a.Violations != b.Violations || a.SimSeconds != b.SimSeconds {
		t.Fatalf("fault-free results diverged: %+v vs %+v", a, b)
	}
}

// TestMergeSumsDiscarded: Merge accumulates the Discarded counter.
func TestMergeSumsDiscarded(t *testing.T) {
	a := &Result{TestName: "MP", Discarded: 2}
	b := &Result{TestName: "MP", Discarded: 3}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.Discarded != 5 {
		t.Fatalf("Discarded = %d, want 5", a.Discarded)
	}
}
