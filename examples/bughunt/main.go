// Bughunt reproduces the paper's bug discoveries (Sec. 1.1, 5.4): the
// conformance suite is run against three defective platforms —
//
//   - WebGPU over Metal on an Intel GPU, whose memory pipeline can
//     complete two same-location loads out of order (the CoRR bug of
//     Fig. 1a),
//   - an AMD device whose Vulkan compiler loses release/acquire
//     semantics in an intermediate representation (the MP-relacq bug
//     of Fig. 1b, which led to a WebGPU specification change),
//   - an NVIDIA Kepler device whose L1 caches are not coherent (the
//     MP-CO violation recreated from prior work) —
//
// and each violation is explained as a happens-before cycle.
//
//	go run ./examples/bughunt
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/gpu"
	"repro/internal/harness"
	"repro/internal/wgsl"
)

func main() {
	study, err := core.NewStudy()
	if err != nil {
		log.Fatal(err)
	}

	env := harness.PTEBaseline(16, 32)
	env.MaxWorkgroups = env.TestingWorkgroups + 4
	env.MemStressPct = 100
	env.MemStressIters = 12
	env.PreStressPct = 80
	env.PreStressIters = 3
	env.MemStride = 2
	env.MemLocOffset = 1

	platforms := []struct {
		label string
		p     core.Platform
	}{
		{
			label: "Intel Iris Plus via Metal (coherence defect)",
			p: core.Platform{
				Device: "Intel",
				Bugs: gpu.Bugs{
					CoherenceRR:         true,
					CoherenceRRProb:     0.4,
					CoherenceRRPressure: 2,
				},
			},
		},
		{
			label: "AMD Radeon Pro via Vulkan (fence-dropping compiler)",
			p: core.Platform{
				Device: "AMD",
				Driver: wgsl.DriverFenceDropping,
			},
		},
		{
			label: "NVIDIA Kepler via Vulkan (non-coherent L1)",
			p: core.Platform{
				Device: "Kepler",
				Bugs:   gpu.Bugs{StaleCache: true},
			},
		},
	}

	for _, plat := range platforms {
		fmt.Printf("=== %s ===\n", plat.label)
		rep, err := study.CheckConformance(plat.p, env, 20, 7)
		if err != nil {
			log.Fatal(err)
		}
		buggy := rep.Buggy()
		if len(buggy) == 0 {
			fmt.Println("no violations observed (try more iterations)")
			continue
		}
		for _, f := range buggy {
			fmt.Printf("  %s (%s) FAILED: %d/%d instances, %.4g violations/s\n",
				f.Test, f.Mutator, f.Violations, f.Instances, f.ViolationRate)
			fmt.Printf("    witnessed outcome: %s\n", f.Outcome)
			fmt.Printf("    forbidden hb cycle: %s\n", f.Explanation)
		}
		fmt.Println()
	}

	// A conformant platform, for contrast, must pass everything.
	fmt.Println("=== conformant M1 (control) ===")
	rep, err := study.CheckConformance(core.Platform{Device: "M1"}, env, 10, 7)
	if err != nil {
		log.Fatal(err)
	}
	if len(rep.Buggy()) == 0 {
		fmt.Println("all 20 conformance tests passed")
	} else {
		fmt.Println("unexpected violations — the simulator is misconfigured")
	}
}
