package gpu

import (
	"errors"
	"testing"

	"repro/internal/xrand"
)

// faultSpec is a small two-thread message-passing kernel used across
// the fault tests.
func faultSpec() LaunchSpec {
	writer := Program{
		{Op: OpStore, Addr: 0, Imm: 1},
		{Op: OpStore, Addr: 1, Imm: 1},
	}
	reader := Program{
		{Op: OpLoad, Addr: 1, Reg: 0},
		{Op: OpLoad, Addr: 0, Reg: 1},
	}
	return twoThreadSpec(2, writer, reader)
}

// TestZeroFaultModelIdentity: installing the zero model changes nothing
// — results are bit-identical to a fault-free device and no extra
// randomness is consumed, the property that keeps every pre-existing
// dataset byte-identical.
func TestZeroFaultModelIdentity(t *testing.T) {
	spec := faultSpec()
	plain := dev(t, amdProfile(), Bugs{})
	faulted := dev(t, amdProfile(), Bugs{})
	if err := faulted.SetFaults(FaultModel{}); err != nil {
		t.Fatal(err)
	}
	rngA, rngB := xrand.New(7), xrand.New(7)
	for i := 0; i < 20; i++ {
		a, err := plain.Run(spec, rngA)
		if err != nil {
			t.Fatal(err)
		}
		b, err := faulted.Run(spec, rngB)
		if err != nil {
			t.Fatal(err)
		}
		if a.Stats.Ticks != b.Stats.Ticks {
			t.Fatalf("run %d: ticks diverged: %d vs %d", i, a.Stats.Ticks, b.Stats.Ticks)
		}
		for ti := range a.Registers {
			for ri := range a.Registers[ti] {
				if a.Registers[ti][ri] != b.Registers[ti][ri] {
					t.Fatalf("run %d: registers diverged at t%d r%d", i, ti, ri)
				}
			}
		}
	}
	// The rng streams must be in the same state: the zero model drew
	// nothing extra.
	if rngA.Uint64() != rngB.Uint64() {
		t.Fatal("zero fault model consumed workload randomness")
	}
}

// TestLaunchFailInjection: a certain launch failure yields a typed,
// transient, injected ErrLaunchFailed.
func TestLaunchFailInjection(t *testing.T) {
	d := dev(t, amdProfile(), Bugs{})
	if err := d.SetFaults(FaultModel{Seed: 1, LaunchFailProb: 1}); err != nil {
		t.Fatal(err)
	}
	_, err := d.Run(faultSpec(), xrand.New(1))
	if !errors.Is(err, ErrLaunchFailed) {
		t.Fatalf("err = %v, want ErrLaunchFailed", err)
	}
	var de *DeviceError
	if !errors.As(err, &de) {
		t.Fatalf("err %T is not a *DeviceError", err)
	}
	if de.Kind != FaultLaunch || !de.Injected || !de.Transient() {
		t.Fatalf("unexpected DeviceError: %+v", de)
	}
	if de.Device != "AMD" {
		t.Fatalf("Device = %q, want AMD", de.Device)
	}
}

// TestHangInjection: a certain hang reports the watchdog deadline as
// its tick without simulating the dead time.
func TestHangInjection(t *testing.T) {
	d := dev(t, amdProfile(), Bugs{})
	if err := d.SetFaults(FaultModel{Seed: 1, HangProb: 1, WatchdogTicks: 1234}); err != nil {
		t.Fatal(err)
	}
	_, err := d.Run(faultSpec(), xrand.New(1))
	if !errors.Is(err, ErrDeviceHang) {
		t.Fatalf("err = %v, want ErrDeviceHang", err)
	}
	var de *DeviceError
	if !errors.As(err, &de) || de.Tick != 1234 || !de.Injected || !de.Transient() {
		t.Fatalf("unexpected DeviceError: %+v", de)
	}
}

// TestCorruptionInjection: a certain corruption succeeds but poisons
// results with values at or above the garbage floor, so a domain-
// validating harness always detects them.
func TestCorruptionInjection(t *testing.T) {
	d := dev(t, amdProfile(), Bugs{})
	if err := d.SetFaults(FaultModel{Seed: 1, CorruptProb: 1}); err != nil {
		t.Fatal(err)
	}
	res, err := d.Run(faultSpec(), xrand.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.CorruptedValues == 0 {
		t.Fatal("CorruptProb=1 run reported no corrupted values")
	}
	found := 0
	for _, regs := range res.Registers {
		for _, v := range regs {
			if IsGarbage(v) {
				found++
			}
		}
	}
	for _, v := range res.Memory {
		if IsGarbage(v) {
			found++
		}
	}
	if int64(found) != res.Stats.CorruptedValues {
		t.Fatalf("found %d garbage values, stats say %d", found, res.Stats.CorruptedValues)
	}
}

// TestDeviceLossEscalation: after LossAfter injected faults the device
// permanently fails with the non-transient ErrDeviceLost; SetFaults
// resurrects it.
func TestDeviceLossEscalation(t *testing.T) {
	d := dev(t, amdProfile(), Bugs{})
	model := FaultModel{Seed: 1, LaunchFailProb: 1, LossAfter: 3}
	if err := d.SetFaults(model); err != nil {
		t.Fatal(err)
	}
	rng := xrand.New(1)
	for i := 0; i < 3; i++ {
		if _, err := d.Run(faultSpec(), rng); !errors.Is(err, ErrLaunchFailed) {
			t.Fatalf("run %d: err = %v, want ErrLaunchFailed", i, err)
		}
	}
	_, err := d.Run(faultSpec(), rng)
	if !errors.Is(err, ErrDeviceLost) {
		t.Fatalf("err = %v, want ErrDeviceLost after %d faults", err, model.LossAfter)
	}
	var de *DeviceError
	if !errors.As(err, &de) || de.Transient() {
		t.Fatalf("device loss must be permanent: %+v", de)
	}
	// Reinstalling the model resets the escalation counter.
	if err := d.SetFaults(model); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Run(faultSpec(), rng); !errors.Is(err, ErrLaunchFailed) {
		t.Fatalf("after reset: err = %v, want ErrLaunchFailed", err)
	}
}

// TestWatchdogKillsLongKernel: a kernel genuinely exceeding the
// watchdog deadline dies with an organic (non-injected) hang instead of
// spinning toward the internal simulation bound.
func TestWatchdogKillsLongKernel(t *testing.T) {
	var long Program
	for i := 0; i < 200; i++ {
		long = append(long, Instr{Op: OpStressLoad, Addr: 0})
	}
	d := dev(t, amdProfile(), Bugs{})
	// Watchdog only: the model is not Enabled() and draws no randomness.
	if err := d.SetFaults(FaultModel{WatchdogTicks: 10}); err != nil {
		t.Fatal(err)
	}
	_, err := d.Run(twoThreadSpec(1, long, long), xrand.New(1))
	if !errors.Is(err, ErrDeviceHang) {
		t.Fatalf("err = %v, want ErrDeviceHang from the watchdog", err)
	}
	var de *DeviceError
	if !errors.As(err, &de) {
		t.Fatalf("err %T is not a *DeviceError", err)
	}
	if de.Injected {
		t.Fatal("organic watchdog kill marked as injected")
	}
	if de.Tick <= 10 {
		t.Fatalf("hang tick %d not past the deadline", de.Tick)
	}
	// A generous deadline lets the same kernel finish.
	if err := d.SetFaults(FaultModel{WatchdogTicks: 1 << 30}); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Run(twoThreadSpec(1, long, long), xrand.New(1)); err != nil {
		t.Fatalf("kernel under generous watchdog failed: %v", err)
	}
}

// TestFaultDeterminism: two devices with the same model and the same
// workload rng produce the same fault sequence — faults are a pure
// function of (model, device, launch randomness).
func TestFaultDeterminism(t *testing.T) {
	model := UniformFaults(42, 0.3)
	kinds := func() []string {
		d := dev(t, amdProfile(), Bugs{})
		if err := d.SetFaults(model); err != nil {
			t.Fatal(err)
		}
		rng := xrand.New(99)
		var out []string
		for i := 0; i < 40; i++ {
			_, err := d.Run(faultSpec(), rng)
			switch {
			case err == nil:
				out = append(out, "ok")
			default:
				var de *DeviceError
				if !errors.As(err, &de) {
					t.Fatalf("run %d: unexpected error type %T", i, err)
				}
				out = append(out, de.Kind.String())
			}
		}
		return out
	}
	a, b := kinds(), kinds()
	injected := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("fault sequences diverged at run %d: %s vs %s", i, a[i], b[i])
		}
		if a[i] != "ok" {
			injected++
		}
	}
	if injected == 0 {
		t.Fatal("30% fault rate injected nothing in 40 runs")
	}
}

// TestFaultModelValidate: out-of-range parameters are rejected at
// installation time.
func TestFaultModelValidate(t *testing.T) {
	d := dev(t, amdProfile(), Bugs{})
	bad := []FaultModel{
		{LaunchFailProb: -0.1},
		{HangProb: 1.5},
		{CorruptProb: 2},
		{LossAfter: -1},
		{WatchdogTicks: -5},
	}
	for i, m := range bad {
		if err := d.SetFaults(m); err == nil {
			t.Errorf("case %d: SetFaults accepted %+v", i, m)
		}
	}
	if got := d.Faults(); got != (FaultModel{}) {
		t.Fatalf("rejected models must not stick: %+v", got)
	}
}

// TestGarbageFloor: every generated garbage value stays at or above the
// detectability floor, and small litmus values never trip IsGarbage.
func TestGarbageFloor(t *testing.T) {
	frng := xrand.New(5)
	for i := 0; i < 1000; i++ {
		if v := garbage(frng); !IsGarbage(v) {
			t.Fatalf("garbage() produced in-domain value %#x", v)
		}
	}
	for _, v := range []uint32{0, 1, 2, 255, 65535, garbageBase - 1} {
		if IsGarbage(v) {
			t.Fatalf("IsGarbage(%#x) = true for a legitimate value", v)
		}
	}
}

// TestFaultKindStrings covers the taxonomy's names.
func TestFaultKindStrings(t *testing.T) {
	want := map[FaultKind]string{
		FaultLaunch:  "launch-failed",
		FaultHang:    "hang",
		FaultCorrupt: "result-corrupt",
		FaultLost:    "device-lost",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("FaultKind(%d).String() = %q, want %q", int(k), k.String(), s)
		}
	}
}
