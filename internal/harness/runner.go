package harness

import (
	"context"
	"fmt"
	"time"

	"repro/internal/gpu"
	"repro/internal/litmus"
	"repro/internal/mm"
	"repro/internal/xrand"
)

// Runner executes litmus tests in one environment on one device.
//
// A Runner owns reusable per-iteration scratch (the iteration plan,
// outcome buffers and classifier key buffer), so running many
// iterations — or many cells — through one warm Runner is
// allocation-free in the steady state. The scratch makes a Runner,
// like its Device, single-goroutine: parallel campaigns use one Runner
// per worker.
type Runner struct {
	Device *gpu.Device
	Params Params
	// Lower, when set, post-processes every generated thread program —
	// the hook through which the wgsl toolchain's backend lowering
	// (including defective driver builds) is applied.
	Lower func(gpu.Program) gpu.Program
	// Classifier memoizes outcome classification; nil means the
	// process-wide shared classifier, so classifications are reused
	// across iterations, runners and campaign cells.
	Classifier *Classifier

	// scratch is reused across Run/RunInto calls; see runnerScratch.
	scratch runnerScratch
}

// runnerScratch is the Runner's reusable per-iteration state. Every
// slice is overwritten before use each iteration; nothing in it is
// visible to callers except through deep copies (FirstViolation) or
// value types (histogram counts).
type runnerScratch struct {
	plan iterationPlan
	// outcomes[i] views instance i's registers/final values inside the
	// flat regVals/finalVals arenas.
	outcomes  []litmus.Outcome
	regVals   []mm.Val
	finalVals []mm.Val
	// keyBuf renders outcome keys for the classifier and histogram.
	keyBuf []byte
	// domTest/dom cache the value domain of the last test run, skipping
	// a per-call map build when a runner stays on one test (keyed by
	// pointer identity, like the classifier's memo).
	domTest *litmus.Test
	dom     map[mm.Val]bool
	// validated remembers the last test that passed Validate.
	validated *litmus.Test
}

// NewRunner validates the environment against the device and returns a
// runner.
func NewRunner(d *gpu.Device, p Params) (*Runner, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &Runner{Device: d, Params: p}, nil
}

// Result summarizes running one test for some iterations in one
// environment on one device.
type Result struct {
	// TestName identifies the litmus test.
	TestName string
	// IsMutant mirrors the test's role.
	IsMutant bool
	// Mutator is the generating mutator family, if any.
	Mutator string
	// Iterations is the number of kernel launches that produced valid
	// results and were counted.
	Iterations int
	// Discarded counts iterations thrown away because an outcome carried
	// a value outside the test's write-value domain — the signature of
	// device-level result corruption. Discarded iterations contribute
	// nothing to Instances, SimSeconds or the histogram: poisoned data
	// must never be classified as a memory-model violation.
	Discarded int
	// Instances is the total number of test instances executed.
	Instances int
	// TargetCount is how many instances exhibited the target behavior;
	// for a mutant this is the number of kills, for a conformance test
	// the number of observed bugs.
	TargetCount int
	// Violations counts instances whose outcome the model disallows
	// (conformance failures, however they manifest).
	Violations int
	// SimSeconds is total simulated device time, the paper's time base
	// for rates and budgets.
	SimSeconds float64
	// WallSeconds is host time spent, for reporting only.
	WallSeconds float64
	// Hist is the outcome histogram.
	Hist *litmus.Histogram
	// FirstViolation is the first outcome classified disallowed, when
	// any; bug reports explain it via the axiomatic checker.
	FirstViolation *litmus.Outcome
}

// TargetRate returns target behaviors per simulated second (the mutant
// death rate when the test is a mutant).
func (r *Result) TargetRate() float64 {
	if r.SimSeconds <= 0 {
		return 0
	}
	return float64(r.TargetCount) / r.SimSeconds
}

// ViolationRate returns model violations per simulated second.
func (r *Result) ViolationRate() float64 {
	if r.SimSeconds <= 0 {
		return 0
	}
	return float64(r.Violations) / r.SimSeconds
}

// Merge folds another result for the same test into r: counts,
// histograms and sim/wall seconds are summed, and FirstViolation keeps
// the earliest in merge order (r's own if set, else other's). Merging
// results from different tests is an error, catching misassembled
// campaign aggregations.
func (r *Result) Merge(other *Result) error {
	if other == nil {
		return nil
	}
	if other.TestName != r.TestName {
		return fmt.Errorf("harness: merging result of %q into %q", other.TestName, r.TestName)
	}
	r.Iterations += other.Iterations
	r.Discarded += other.Discarded
	r.Instances += other.Instances
	r.SimSeconds += other.SimSeconds
	r.WallSeconds += other.WallSeconds
	if other.Hist != nil {
		if r.Hist == nil {
			// Size the merged map for the incoming outcome set up front:
			// campaign aggregation merges many per-cell histograms into
			// one, and the distinct-outcome set is usually identical
			// across cells, so this hint avoids nearly all map growth.
			r.Hist = litmus.NewHistogramSize(other.Hist.Distinct())
		}
		r.Hist.Merge(other.Hist)
	}
	if r.FirstViolation == nil && other.FirstViolation != nil {
		r.FirstViolation = other.FirstViolation.Clone()
	}
	// Recompute the derived counts from the histogram rather than
	// summing fields independently, so the invariants TargetCount ==
	// Hist.TargetCount() and Violations == Hist.Violations() survive
	// any merge order.
	if r.Hist != nil {
		r.TargetCount = r.Hist.TargetCount()
		r.Violations = r.Hist.Violations()
	} else {
		r.TargetCount += other.TargetCount
		r.Violations += other.Violations
	}
	return nil
}

// outcomeClass caches the classification of one outcome key.
type outcomeClass struct {
	target    bool
	violation bool
}

// Run executes the test for the given number of iterations, classifying
// every instance outcome. The rng drives all nondeterminism; equal
// seeds reproduce results exactly. Run is RunCtx under
// context.Background().
func (r *Runner) Run(test *litmus.Test, iterations int, rng *xrand.Rand) (*Result, error) {
	return r.RunCtx(context.Background(), test, iterations, rng)
}

// RunCtx is Run under a context: cancellation is checked between
// iterations and, on a coarse step budget, inside the device executor,
// so a draining campaign abandons the cell promptly. A cancelled run
// returns an error wrapping ctx.Err() and no result.
func (r *Runner) RunCtx(ctx context.Context, test *litmus.Test, iterations int, rng *xrand.Rand) (*Result, error) {
	res := &Result{}
	if err := r.RunInto(ctx, res, test, iterations, rng); err != nil {
		return nil, err
	}
	return res, nil
}

// RunInto is RunCtx writing into a caller-owned Result, whose histogram
// (when already allocated) is reset and reused — together with the
// runner's own iteration scratch this makes the steady-state loop
// allocation-free (the per-iteration cancellation check is a
// non-blocking select on a captured channel and allocates nothing).
// res must not be shared with a Result still in use; everything in it
// is overwritten.
func (r *Runner) RunInto(ctx context.Context, res *Result, test *litmus.Test, iterations int, rng *xrand.Rand) error {
	if iterations <= 0 {
		return fmt.Errorf("harness: iterations=%d", iterations)
	}
	if r.scratch.validated != test {
		if err := test.Validate(); err != nil {
			return err
		}
		r.scratch.validated = test
	}
	start := time.Now()
	hist := res.Hist
	if hist == nil {
		hist = litmus.NewHistogram()
	} else {
		hist.Reset()
	}
	*res = Result{
		TestName: test.Name,
		IsMutant: test.IsMutant,
		Mutator:  test.Mutator,
		Hist:     hist,
	}
	classifier := r.Classifier
	if classifier == nil {
		classifier = sharedClassifier
	}
	if r.scratch.domTest != test {
		r.scratch.dom = test.ValueDomain()
		r.scratch.domTest = test
	}
	dom := r.scratch.dom
	plan := &r.scratch.plan
	cancelled := ctx.Done() // nil for context.Background(); the check is then branch-only
	for iter := 0; iter < iterations; iter++ {
		if cancelled != nil {
			select {
			case <-cancelled:
				return fmt.Errorf("harness: %s interrupted after %d of %d iterations: %w",
					test.Name, iter, iterations, ctx.Err())
			default:
			}
		}
		if err := plan.buildInto(test, &r.Params, rng); err != nil {
			return err
		}
		if r.Lower != nil {
			for i, prog := range plan.spec.Programs {
				plan.spec.Programs[i] = r.Lower(prog)
			}
		}
		run, err := r.Device.RunCtx(ctx, plan.spec, rng)
		if err != nil {
			// Typed device failures (gpu.DeviceError) carry their own
			// transience verdict, which the scheduler reads through
			// sched.IsTransient — no wrapping needed here.
			return err
		}
		// Validate every instance outcome against the test's write-value
		// domain before anything is counted. A single out-of-domain value
		// means the run's results cannot be trusted, so the whole
		// iteration is discarded rather than classified.
		outcomes := r.extractOutcomes(test, plan, run)
		valid := true
		for i := range outcomes {
			if !test.InDomain(outcomes[i], dom) {
				valid = false
				break
			}
		}
		if !valid {
			res.Discarded++
			continue
		}
		res.Iterations++
		res.Instances += plan.instances
		res.SimSeconds += run.SimSeconds
		for _, o := range outcomes {
			r.scratch.keyBuf = o.AppendKey(r.scratch.keyBuf[:0])
			target, violation, err := classifier.ClassifyKeyed(test, o, r.scratch.keyBuf)
			if err != nil {
				return err
			}
			if violation && res.FirstViolation == nil {
				// Deep-copy: o's Regs/Final are windows into the
				// runner's reusable arenas and are overwritten by the
				// next iteration.
				res.FirstViolation = o.Clone()
			}
			res.Hist.AddKeyed(r.scratch.keyBuf, target, violation)
		}
	}
	if res.Iterations == 0 {
		// Every iteration was poisoned: the cell produced no usable data.
		// Fail with a transient corruption error so the scheduler retries
		// the cell under a fresh attempt seed (which re-rolls the faults).
		return &gpu.DeviceError{Kind: gpu.FaultCorrupt, Device: r.Device.Profile().ShortName}
	}
	res.TargetCount = res.Hist.TargetCount()
	res.Violations = res.Hist.Violations()
	res.WallSeconds = time.Since(start).Seconds()
	return nil
}

// extractOutcomes reads every instance's registers and final memory out
// of a device run, into the runner's reusable outcome arenas. The
// returned outcomes alias those arenas and are valid until the next
// iteration.
func (r *Runner) extractOutcomes(test *litmus.Test, plan *iterationPlan, run *gpu.RunResult) []litmus.Outcome {
	s := &r.scratch
	n := plan.instances
	if cap(s.outcomes) < n {
		s.outcomes = make([]litmus.Outcome, n)
	}
	s.outcomes = s.outcomes[:n]
	if need := n * test.NumRegs; cap(s.regVals) < need {
		s.regVals = make([]mm.Val, need)
	} else {
		s.regVals = s.regVals[:need]
	}
	if need := n * test.NumLocs; cap(s.finalVals) < need {
		s.finalVals = make([]mm.Val, need)
	} else {
		s.finalVals = s.finalVals[:need]
	}
	for i := 0; i < n; i++ {
		regs := s.regVals[i*test.NumRegs : (i+1)*test.NumRegs : (i+1)*test.NumRegs]
		final := s.finalVals[i*test.NumLocs : (i+1)*test.NumLocs : (i+1)*test.NumLocs]
		for ri := 0; ri < test.NumRegs; ri++ {
			ref := plan.regOf[i][ri]
			regs[ri] = mm.Val(run.Registers[ref.tid][ref.reg])
		}
		for l := 0; l < test.NumLocs; l++ {
			final[l] = mm.Val(run.Memory[plan.locAddr[i][l]])
		}
		s.outcomes[i] = litmus.Outcome{Regs: regs, Final: final}
	}
	return s.outcomes
}
