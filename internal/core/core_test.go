package core

import (
	"strings"
	"testing"

	"repro/internal/gpu"
	"repro/internal/harness"
	"repro/internal/litmus"
	"repro/internal/mm"
	"repro/internal/tuning"
	"repro/internal/wgsl"
)

func study(t testing.TB) *Study {
	t.Helper()
	s, err := NewStudy()
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func testEnv() harness.Params {
	p := harness.PTEBaseline(8, 16)
	p.MaxWorkgroups = p.TestingWorkgroups + 4
	p.MemStressPct = 100
	p.MemStressIters = 8
	p.PreStressPct = 80
	p.PreStressIters = 2
	p.MemStride = 2
	p.MemLocOffset = 1
	return p
}

func TestNewStudy(t *testing.T) {
	s := study(t)
	if len(s.Suite.Conformance) != 20 || len(s.Suite.Mutants) != 32 {
		t.Fatalf("suite sizes %d/%d", len(s.Suite.Conformance), len(s.Suite.Mutants))
	}
}

func TestEvaluateEnvironment(t *testing.T) {
	s := study(t)
	score, err := s.EvaluateEnvironment(Platform{Device: "AMD"}, testEnv(), 3, 42)
	if err != nil {
		t.Fatal(err)
	}
	if score.Total != 32 {
		t.Fatalf("Total = %d, want 32", score.Total)
	}
	if score.Killed == 0 {
		t.Fatal("stressed PTE killed nothing on AMD")
	}
	if score.AvgDeathRate <= 0 {
		t.Fatal("zero average death rate")
	}
	if s := score.Score(); s <= 0 || s > 1 {
		t.Fatalf("Score() = %v", s)
	}
	if len(score.PerMutant) != 32 {
		t.Fatalf("PerMutant has %d entries", len(score.PerMutant))
	}
}

func TestEvaluateEnvironmentUnknownDevice(t *testing.T) {
	s := study(t)
	if _, err := s.EvaluateEnvironment(Platform{Device: "hal9000"}, testEnv(), 1, 1); err == nil {
		t.Fatal("unknown device accepted")
	}
}

func TestCheckConformanceCleanPlatform(t *testing.T) {
	s := study(t)
	rep, err := s.CheckConformance(Platform{Device: "AMD"}, testEnv(), 2, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Findings) != 20 {
		t.Fatalf("%d findings, want 20", len(rep.Findings))
	}
	if buggy := rep.Buggy(); len(buggy) != 0 {
		t.Fatalf("clean platform reported bugs: %+v", buggy)
	}
}

// TestCheckConformanceFindsInjectedBugs reproduces the paper's
// discoveries: each injected defect is caught by its conformance test
// and explained with an hb cycle.
func TestCheckConformanceFindsInjectedBugs(t *testing.T) {
	s := study(t)
	cases := []struct {
		name     string
		platform Platform
		wantTest string
	}{
		{
			name: "AMD fence-dropping driver",
			platform: Platform{
				Device: "AMD",
				Driver: wgsl.DriverFenceDropping,
			},
			wantTest: "MP-relacq",
		},
		{
			name: "Intel coherence",
			platform: Platform{
				Device: "Intel",
				Bugs: gpu.Bugs{
					CoherenceRR: true, CoherenceRRProb: 0.4, CoherenceRRPressure: 2,
				},
			},
			wantTest: "CoRR",
		},
	}
	for _, c := range cases {
		rep, err := s.CheckConformance(c.platform, testEnv(), 10, 11)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		buggy := rep.Buggy()
		if len(buggy) == 0 {
			t.Errorf("%s: no violations found", c.name)
			continue
		}
		found := false
		for _, f := range buggy {
			if f.Test == c.wantTest {
				found = true
				if f.Explanation == "" {
					t.Errorf("%s: %s finding lacks an explanation", c.name, f.Test)
				}
				if f.Outcome == "" {
					t.Errorf("%s: %s finding lacks an outcome", c.name, f.Test)
				}
				if f.ViolationRate <= 0 {
					t.Errorf("%s: zero violation rate", c.name)
				}
			}
		}
		if !found {
			names := make([]string, 0, len(buggy))
			for _, f := range buggy {
				names = append(names, f.Test)
			}
			t.Errorf("%s: %s not among failing tests %v", c.name, c.wantTest, names)
		}
	}
}

func TestExplainViolationForms(t *testing.T) {
	corr := litmus.CoRR()
	// A genuine hb cycle.
	msg := explainViolation(corr, litmus.Outcome{Regs: []mm.Val{1, 0}, Final: []mm.Val{1}})
	if !strings.Contains(msg, "->") {
		t.Fatalf("cycle explanation missing edges: %q", msg)
	}
	// Memory corruption: final value 0 on a written location.
	coww := litmus.CoWW()
	msg = explainViolation(coww, litmus.Outcome{Final: []mm.Val{0}})
	if !strings.Contains(msg, "inconsistency") {
		t.Fatalf("corruption not reported: %q", msg)
	}
	// An allowed outcome (defensive path) explains nothing.
	msg = explainViolation(corr, litmus.Outcome{Regs: []mm.Val{0, 1}, Final: []mm.Val{1}})
	if msg != "" {
		t.Fatalf("allowed outcome explained: %q", msg)
	}
	// Arity mismatch reports unclassifiable.
	msg = explainViolation(corr, litmus.Outcome{})
	if !strings.Contains(msg, "unclassifiable") {
		t.Fatalf("bad outcome not flagged: %q", msg)
	}
}

func TestCurateCTS(t *testing.T) {
	s := study(t)
	var tests []*litmus.Test
	for _, n := range []string{"MP", "CoRR-mutant", "SB"} {
		tt, _ := s.Suite.ByName(n)
		tests = append(tests, tt)
	}
	cfg := tuning.SmallConfig()
	cfg.Environments = 3
	cfg.SITEIterations = 4
	cfg.PTEIterations = 2
	cfg.Devices = []string{"AMD", "Intel"}
	ds, err := tuning.Run(cfg, tests, nil)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := CurateCTS(ds, "PTE", 0.95, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Entries) != 3 {
		t.Fatalf("%d entries, want 3", len(plan.Entries))
	}
	for _, e := range plan.Entries {
		if e.TotalDevices != 2 {
			t.Fatalf("entry %s: %d devices", e.Test, e.TotalDevices)
		}
		if e.Reproducible && e.Env == "" {
			t.Fatalf("entry %s reproducible without an environment", e.Test)
		}
	}
	if plan.MutationScore < 0 || plan.MutationScore > 1 {
		t.Fatalf("MutationScore = %v", plan.MutationScore)
	}
	if plan.TotalBudgetSeconds != 3 {
		t.Fatalf("TotalBudgetSeconds = %v", plan.TotalBudgetSeconds)
	}
	if plan.TotalReproducibility <= 0 || plan.TotalReproducibility > 1 {
		t.Fatalf("TotalReproducibility = %v", plan.TotalReproducibility)
	}
	// Entries are sorted by test name.
	for i := 1; i < len(plan.Entries); i++ {
		if plan.Entries[i-1].Test > plan.Entries[i].Test {
			t.Fatal("entries not sorted")
		}
	}
}

func TestCurateCTSErrors(t *testing.T) {
	ds := &tuning.Dataset{}
	if _, err := CurateCTS(ds, "PTE", 0.95, 1); err == nil {
		t.Fatal("empty dataset accepted")
	}
}

func TestPlatformRunnerUsesToolchain(t *testing.T) {
	s := study(t)
	// The fence-dropping platform must kill MP-relacq's nofence mutant
	// and its base at comparable rates since fences are gone either way.
	p := Platform{Device: "AMD", Driver: wgsl.DriverFenceDropping}
	score, err := s.EvaluateEnvironment(p, testEnv(), 3, 17)
	if err != nil {
		t.Fatal(err)
	}
	if score.Killed == 0 {
		t.Fatal("nothing killed through defective toolchain")
	}
}

func TestFindingString(t *testing.T) {
	f := Finding{Test: "CoRR", Outcome: "r0=1 r1=0 | x=1"}
	if !strings.Contains(f.Outcome, "r0=1") {
		t.Fatal("outcome mangled")
	}
}
