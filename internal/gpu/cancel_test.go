package gpu

import (
	"context"
	"errors"
	"testing"

	"repro/internal/xrand"
)

// TestRunCtxPreCancelled: a context dead on arrival aborts the kernel
// on its first scheduler step, surfacing the context error.
func TestRunCtxPreCancelled(t *testing.T) {
	d := dev(t, intelProfile(), Bugs{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	spec := twoThreadSpec(1, Program{{Op: OpStore, Addr: 0, Imm: 1}})
	_, err := d.RunCtx(ctx, spec, xrand.New(7))
	if err == nil {
		t.Fatal("cancelled run returned a result")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error does not wrap context.Canceled: %v", err)
	}
}

// TestDeviceReusableAfterCancel: a cancelled kernel must not poison the
// device — the next Run under a live context is bit-identical to a run
// on a device that was never cancelled.
func TestDeviceReusableAfterCancel(t *testing.T) {
	spec := twoThreadSpec(2,
		Program{{Op: OpStore, Addr: 0, Imm: 1}, {Op: OpLoad, Addr: 1, Reg: 0}},
		Program{{Op: OpStore, Addr: 1, Imm: 1}, {Op: OpLoad, Addr: 0, Reg: 0}},
	)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	d := dev(t, intelProfile(), Bugs{})
	if _, err := d.RunCtx(ctx, spec, xrand.New(3)); err == nil {
		t.Fatal("cancelled run returned a result")
	}
	got, err := d.Run(spec, xrand.New(7))
	if err != nil {
		t.Fatal(err)
	}
	fresh := dev(t, intelProfile(), Bugs{})
	want, err := fresh.Run(spec, xrand.New(7))
	if err != nil {
		t.Fatal(err)
	}
	if got.SimSeconds != want.SimSeconds || got.Stats.Ticks != want.Stats.Ticks {
		t.Fatalf("cancelled device diverged: %+v vs %+v", got.Stats, want.Stats)
	}
	for i := range want.Memory {
		if got.Memory[i] != want.Memory[i] {
			t.Fatalf("memory[%d] = %d, want %d", i, got.Memory[i], want.Memory[i])
		}
	}
}

// TestRunIsRunCtxBackground: the legacy entry point is unbounded —
// never cancelled — and stays bit-identical to an explicit Background
// call.
func TestRunIsRunCtxBackground(t *testing.T) {
	spec := twoThreadSpec(1, Program{{Op: OpStore, Addr: 0, Imm: 1}})
	a, err := dev(t, intelProfile(), Bugs{}).Run(spec, xrand.New(11))
	if err != nil {
		t.Fatal(err)
	}
	b, err := dev(t, intelProfile(), Bugs{}).RunCtx(context.Background(), spec, xrand.New(11))
	if err != nil {
		t.Fatal(err)
	}
	if a.SimSeconds != b.SimSeconds || a.Stats.Ticks != b.Stats.Ticks {
		t.Fatalf("Run and RunCtx(Background) diverge: %+v vs %+v", a.Stats, b.Stats)
	}
}
