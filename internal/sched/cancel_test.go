package sched

// Cancellation and drain tests: campaign-context cancellation between
// and during cells, deadline budgets, per-cell timeouts, interruptible
// retry waits, resume byte-identity after an interrupt, and the
// reporter heartbeat's goroutine hygiene.

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/xrand"
)

// TestCancelBetweenCells: cancelling the campaign context after some
// cells completed abandons the rest without running them. Completed
// cells keep their values; abandoned ones are marked Interrupted and
// the error wraps ErrInterrupted.
func TestCancelBetweenCells(t *testing.T) {
	spec := testSpec(10)
	ctx, cancel := context.WithCancel(context.Background())
	ran := 0
	rep, err := RunContext(ctx, spec, func(_ context.Context, c Cell, rng *xrand.Rand) (uint64, error) {
		ran++
		if ran == 4 {
			cancel()
		}
		return rng.Uint64(), nil
	}, Options[uint64]{Workers: 1})
	if !errors.Is(err, ErrInterrupted) {
		t.Fatalf("error does not wrap ErrInterrupted: %v", err)
	}
	if ran != 4 {
		t.Fatalf("%d cells ran after cancellation, want 4", ran)
	}
	if rep.Interrupted != 6 || rep.Executed != 4 || rep.Failed != 0 {
		t.Fatalf("counters: interrupted=%d executed=%d failed=%d", rep.Interrupted, rep.Executed, rep.Failed)
	}
	for i, r := range rep.Results {
		if i < 4 {
			if r.Interrupted || r.Err != nil {
				t.Fatalf("completed cell %d marked interrupted: %+v", i, r)
			}
			continue
		}
		if !r.Interrupted || !errors.Is(r.Err, ErrInterrupted) {
			t.Fatalf("abandoned cell %d not marked interrupted: %+v", i, r)
		}
	}
}

// TestCancelMidCell: a cell in flight when the campaign context dies is
// abandoned — its exec's context error surfaces as an interruption, not
// a permanent cell failure.
func TestCancelMidCell(t *testing.T) {
	spec := testSpec(3)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	rep, err := RunContext(ctx, spec, func(ctx context.Context, c Cell, _ *xrand.Rand) (int, error) {
		if c.Key == "cell-001" {
			cancel()
			<-ctx.Done()
			return 0, fmt.Errorf("exec observed shutdown: %w", ctx.Err())
		}
		return 1, nil
	}, Options[int]{Workers: 1})
	if !errors.Is(err, ErrInterrupted) {
		t.Fatalf("error does not wrap ErrInterrupted: %v", err)
	}
	r := rep.Results[1]
	if !r.Interrupted || r.Attempts != 1 {
		t.Fatalf("mid-flight cell: %+v", r)
	}
	// The cancellation drained the rest too.
	if !rep.Results[2].Interrupted {
		t.Fatalf("queued cell not abandoned: %+v", rep.Results[2])
	}
	if rep.Failed != 0 {
		t.Fatalf("interrupted cells counted as failures: %d", rep.Failed)
	}
}

// TestDeadlineDrains: a context deadline expiring mid-campaign follows
// the same drain path as an explicit cancel.
func TestDeadlineDrains(t *testing.T) {
	spec := testSpec(8)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	rep, err := RunContext(ctx, spec, func(ctx context.Context, c Cell, _ *xrand.Rand) (int, error) {
		if c.Key == "cell-002" {
			<-ctx.Done() // simulate a long cell outliving the budget
		}
		return 1, nil
	}, Options[int]{Workers: 1})
	if !errors.Is(err, ErrInterrupted) {
		t.Fatalf("deadline expiry did not interrupt: %v", err)
	}
	if rep.Interrupted == 0 {
		t.Fatal("no cells recorded interrupted")
	}
	if rep.Results[0].Err != nil || rep.Results[1].Err != nil {
		t.Fatal("cells completed before the deadline were not kept")
	}
}

// TestPreCancelledContext: a context dead on arrival abandons every
// cell without executing any.
func TestPreCancelledContext(t *testing.T) {
	spec := testSpec(5)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Int32
	rep, err := RunContext(ctx, spec, func(context.Context, Cell, *xrand.Rand) (int, error) {
		ran.Add(1)
		return 1, nil
	}, Options[int]{Workers: 2})
	if !errors.Is(err, ErrInterrupted) {
		t.Fatalf("error does not wrap ErrInterrupted: %v", err)
	}
	if ran.Load() != 0 {
		t.Fatalf("%d cells ran under a dead context", ran.Load())
	}
	if rep.Interrupted != 5 {
		t.Fatalf("Interrupted = %d, want 5", rep.Interrupted)
	}
}

// TestCellTimeoutIsOrdinaryFailure: a cell overrunning CellTimeout
// fails that cell only — the campaign context stays alive, later cells
// run, and nothing is marked interrupted.
func TestCellTimeoutIsOrdinaryFailure(t *testing.T) {
	spec := testSpec(4)
	rep, err := RunContext(context.Background(), spec, func(ctx context.Context, c Cell, _ *xrand.Rand) (int, error) {
		if c.Key == "cell-001" {
			<-ctx.Done() // hang until the cell deadline fires
			return 0, fmt.Errorf("cell overran its budget: %w", ctx.Err())
		}
		return 1, nil
	}, Options[int]{Workers: 1, CellTimeout: 20 * time.Millisecond, Collect: true})
	if err != nil {
		t.Fatalf("cell timeout escalated to campaign error: %v", err)
	}
	if rep.Interrupted != 0 {
		t.Fatalf("cell timeout marked cells interrupted: %d", rep.Interrupted)
	}
	if rep.Failed != 1 {
		t.Fatalf("Failed = %d, want 1", rep.Failed)
	}
	if r := rep.Results[1]; r.Err == nil || !errors.Is(r.Err, context.DeadlineExceeded) {
		t.Fatalf("timed-out cell error: %v", r.Err)
	}
	for _, i := range []int{0, 2, 3} {
		if rep.Results[i].Err != nil {
			t.Fatalf("cell %d did not survive a sibling's timeout: %v", i, rep.Results[i].Err)
		}
	}
}

// TestBackoffWaitInterruptible: a cancellation arriving during a retry
// backoff wait abandons the cell immediately instead of finishing the
// wait and re-attempting.
func TestBackoffWaitInterruptible(t *testing.T) {
	spec := testSpec(1)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	attempts := 0
	start := time.Now()
	rep, err := RunContext(ctx, spec, func(context.Context, Cell, *xrand.Rand) (int, error) {
		attempts++
		return 0, Transient(fmt.Errorf("busy"))
	}, Options[int]{
		MaxRetries: 5,
		Backoff:    time.Hour, // the test would hang if the wait were not interruptible
		Sleep: func(time.Duration) {
			cancel() // cancellation lands mid-wait
		},
	})
	if !errors.Is(err, ErrInterrupted) {
		t.Fatalf("error does not wrap ErrInterrupted: %v", err)
	}
	if attempts != 1 {
		t.Fatalf("cell re-attempted after cancellation: %d attempts", attempts)
	}
	if rep.Results[0].Attempts != 1 || !rep.Results[0].Interrupted {
		t.Fatalf("cell record: %+v", rep.Results[0])
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("backoff wall-clocked %v", elapsed)
	}
}

// TestInterruptResumeByteIdentical is the determinism contract of the
// drain: cancel a checkpointed campaign mid-way, resume it, and the
// final values are byte-identical to a never-interrupted run — the
// abandoned cells re-ran from their per-cell streams.
func TestInterruptResumeByteIdentical(t *testing.T) {
	spec := testSpec(16)
	clean, err := Run(spec, drawValue, Options[cellValue]{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "interrupt.ckpt")
	ck, err := OpenCheckpoint(path, spec, false)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ran := 0
	rep, err := RunContext(ctx, spec, func(ctx context.Context, c Cell, rng *xrand.Rand) (cellValue, error) {
		ran++
		if ran == 7 {
			cancel()
		}
		return drawValue(ctx, c, rng)
	}, Options[cellValue]{Workers: 1, Checkpoint: ck})
	if !errors.Is(err, ErrInterrupted) {
		t.Fatalf("interrupted run error: %v", err)
	}
	ck.Close()
	if rep.Interrupted == 0 {
		t.Fatal("test vacuous: nothing was interrupted")
	}

	// Only fully-completed cells may be in the checkpoint.
	ck2, err := OpenCheckpoint(path, spec, true)
	if err != nil {
		t.Fatal(err)
	}
	defer ck2.Close()
	if got := ck2.Completed(); got != rep.Executed {
		t.Fatalf("checkpoint holds %d cells, executed %d", got, rep.Executed)
	}
	for _, r := range rep.Results {
		if _, done := ck2.Done(r.Cell.Key); done && r.Interrupted {
			t.Fatalf("interrupted cell %s leaked into the checkpoint", r.Cell.Key)
		}
	}

	resumed, err := Run(spec, drawValue, Options[cellValue]{Workers: 4, Checkpoint: ck2})
	if err != nil {
		t.Fatal(err)
	}
	if resumed.Replayed != rep.Executed {
		t.Fatalf("resume replayed %d cells, want %d", resumed.Replayed, rep.Executed)
	}
	got, want := resumed.Values(), clean.Values()
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("cell %d: resumed %+v != clean %+v", i, got[i], want[i])
		}
	}
}

// TestReporterHeartbeatStopsOnInterrupt: the heartbeat ticker goroutine
// is torn down by the campaign context on a drain — RunContext must not
// leak it, interrupted or not.
func TestReporterHeartbeatStopsOnInterrupt(t *testing.T) {
	spec := testSpec(6)
	before := runtime.NumGoroutine()
	for round := 0; round < 3; round++ {
		ctx, cancel := context.WithCancel(context.Background())
		rep := NewReporter(func(string) {}, time.Millisecond)
		ran := 0
		_, err := RunContext(ctx, spec, func(_ context.Context, c Cell, _ *xrand.Rand) (int, error) {
			ran++
			if ran == 2 {
				cancel()
			}
			time.Sleep(2 * time.Millisecond) // let the heartbeat actually tick
			return 1, nil
		}, Options[int]{Workers: 1, Reporter: rep})
		cancel()
		if !errors.Is(err, ErrInterrupted) {
			t.Fatalf("round %d: %v", round, err)
		}
	}
	// The heartbeat goroutine is joined before finish() returns, so any
	// residue here is a real leak; allow scheduler noise to settle.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if runtime.NumGoroutine() <= before {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines: %d before, %d after interrupted campaigns", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestInterruptedReporterLine: the final reporter summary names the
// interrupted count and ends with "interrupted", not "done".
func TestInterruptedReporterLine(t *testing.T) {
	spec := testSpec(6)
	var lines []string
	rep := NewReporter(func(s string) { lines = append(lines, s) }, 0)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ran := 0
	_, err := RunContext(ctx, spec, func(_ context.Context, c Cell, _ *xrand.Rand) (int, error) {
		ran++
		if ran == 2 {
			cancel()
		}
		return 1, nil
	}, Options[int]{Workers: 1, Reporter: rep})
	if !errors.Is(err, ErrInterrupted) {
		t.Fatal(err)
	}
	if len(lines) == 0 {
		t.Fatal("reporter emitted nothing")
	}
	last := lines[len(lines)-1]
	for _, want := range []string{"4 interrupted", "interrupted"} {
		if !strings.Contains(last, want) {
			t.Errorf("final line missing %q: %s", want, last)
		}
	}
	if strings.HasSuffix(last, " done") {
		t.Errorf("interrupted campaign reported done: %s", last)
	}
}

// TestInterruptedSkipsBreakerWalk: interrupted cells neither feed a
// device's failure streak nor consume cooldown slots, so the breaker
// state a resumed run derives matches what this run recorded.
func TestInterruptedSkipsBreakerWalk(t *testing.T) {
	spec := testSpec(12)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ran := 0
	rep, err := RunContext(ctx, spec, func(_ context.Context, c Cell, _ *xrand.Rand) (int, error) {
		ran++
		if ran == 5 {
			cancel()
		}
		if c.Device == "AMD" {
			return 0, fmt.Errorf("amd is down")
		}
		return 1, nil
	}, Options[int]{Workers: 1, Breaker: &BreakerOptions{Threshold: 3, Cooldown: 2}})
	if !errors.Is(err, ErrInterrupted) {
		t.Fatalf("error does not wrap ErrInterrupted: %v", err)
	}
	for _, r := range rep.Results {
		if r.Interrupted && r.Quarantined {
			t.Fatalf("cell %s both interrupted and quarantined", r.Cell.Key)
		}
	}
	for _, h := range rep.Health {
		if h.Device != "AMD" {
			continue
		}
		// Ran cells: AMD at spec positions 0,2,4 → up to 3 failures; the
		// interrupted tail must not extend the walk.
		if h.Failed > 3 {
			t.Fatalf("interrupted cells fed the failure streak: %+v", h)
		}
	}
}
