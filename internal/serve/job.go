// Package serve turns the campaign workbench into a long-running
// multi-tenant service: an HTTP API accepts campaign and tuning specs
// as JSON, validates them against the device fleet and suite, and
// executes them on a bounded job queue drained by a runner pool built
// on the deterministic scheduler.
//
// Jobs are idempotent by construction. A job's identity is derived
// from the scheduler spec manifest of the campaign it would run plus
// the execution parameters that do not appear in the cell grid
// (iterations, environment presets, driver defects), so resubmitting
// the same spec returns the existing job instead of queueing a
// duplicate. Job records, checkpoints and reports live under a state
// directory and are written atomically; a server restarted over the
// same directory requeues interrupted jobs and resumes them from
// their checkpoints, producing artifacts byte-identical to an
// uninterrupted run — and byte-identical to the same spec run through
// the local `mcmutants campaign`/`tune` verbs.
package serve

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"time"

	"repro/internal/guard"
	"repro/internal/sched"
)

// JobState is a job's position in its lifecycle. Queued and running
// are live; done, degraded, failed and cancelled are terminal.
type JobState string

const (
	// StateQueued: accepted and waiting for a runner. A job returns to
	// queued when a server shutdown drains it mid-run — it resumes from
	// its checkpoint on the next boot.
	StateQueued JobState = "queued"
	// StateRunning: a runner is executing the job's campaign.
	StateRunning JobState = "running"
	// StateDone: completed with every cell producing data and the
	// checkpoint durable. The report artifact is available.
	StateDone JobState = "done"
	// StateDegraded: completed with usable results, but some cells
	// produced no data (device failures, quarantine) or the checkpoint
	// degraded to in-memory on a persistent storage failure. The report
	// artifact is available; this is the serve analogue of exit code 2.
	StateDegraded JobState = "degraded"
	// StateFailed: the campaign aborted with a fatal error; no report.
	StateFailed JobState = "failed"
	// StateCancelled: cancelled via DELETE and drained gracefully.
	// Completed cells remain checkpointed; resubmitting the same spec
	// requeues the job and resumes where it stopped.
	StateCancelled JobState = "cancelled"
	// StateDeadlineExceeded: the job's wall-clock budget ran out and it
	// drained gracefully at a cell boundary. Terminal like failed;
	// resubmission re-queues and resumes from the checkpoint.
	StateDeadlineExceeded JobState = "deadline_exceeded"
	// StateStalled: the watchdog saw no counter movement for the job's
	// stall budget and drained it. Terminal like failed; resubmission
	// re-queues and resumes from the checkpoint.
	StateStalled JobState = "stalled"
	// StatePoisoned: the job was found running at boot recovery more
	// times than the server's poison cap — each boot means the previous
	// process died while this job ran, so past the cap it is presumed to
	// be crashing the server and is quarantined in this dead-letter
	// state instead of re-queued. It stays listed and inspectable;
	// resubmitting the same spec gives it a fresh set of boots.
	StatePoisoned JobState = "poisoned"
	// StateShed: cancelled by the memory-watermark brownout to relieve
	// pressure. Not terminal — the job is parked, holding its checkpoint
	// and its place in the per-client count, and re-queues automatically
	// when pressure clears (or at the next boot).
	StateShed JobState = "shed"
)

// Terminal reports whether the state is an end state.
func (s JobState) Terminal() bool {
	switch s {
	case StateDone, StateDegraded, StateFailed, StateCancelled,
		StateDeadlineExceeded, StateStalled, StatePoisoned:
		return true
	}
	return false
}

// JobSpec is the client-facing description of one campaign or tuning
// run — the JSON body of POST /api/v1/jobs. Zero-valued fields take
// the same defaults as the corresponding CLI flags, so a spec and the
// equivalent `mcmutants campaign`/`tune` invocation produce
// byte-identical artifacts.
type JobSpec struct {
	// Kind selects the workload: "conformance", "evaluate" or "tune".
	Kind string `json:"kind"`
	// Devices is the fleet subset; empty means every Table 3 device.
	Devices []string `json:"devices,omitempty"`
	// Seed is the campaign seed; 0 means the kind's CLI default
	// (1 for campaigns, 2023 for tuning).
	Seed uint64 `json:"seed,omitempty"`

	// Envs lists environment presets for campaign kinds; empty means
	// ["pte", "site"]. Conformance uses the first, evaluate all.
	Envs []string `json:"envs,omitempty"`
	// Iters is kernel launches per cell for campaign kinds; 0 means 10.
	Iters int `json:"iters,omitempty"`
	// FenceBug injects the fence-dropping driver on every platform.
	FenceBug bool `json:"fence_bug,omitempty"`

	// TuneEnvs, SiteIters and PTEIters size a tuning run; 0 means the
	// CLI defaults (12 environments, 50 SITE / 8 PTE iterations).
	TuneEnvs  int `json:"tune_envs,omitempty"`
	SiteIters int `json:"site_iters,omitempty"`
	PTEIters  int `json:"pte_iters,omitempty"`

	// Distributed runs the job as a campaign coordinator: cells are
	// leased to `mcmutants work` processes over the server's /dist/v1/
	// API instead of executing on the runner. Requires the server's
	// distributed mode (Config.EnableDist); not supported for tune.
	// The artifact is byte-identical to a local run of the same spec.
	Distributed bool `json:"distributed,omitempty"`

	// WallDeadline, CellTimeout and StallTimeout are the job's requested
	// execution budgets (duration strings, e.g. "30m"): end-to-end wall
	// clock, per-cell-attempt bound, and the longest the cumulative
	// progress counters may sit still. Zero means the server's
	// configured default; requests are validated against the server's
	// caps at admission. Budgets are enforcement-only — a run that stays
	// inside them is byte-identical to an unbudgeted run — and they are
	// deliberately left out of normalize, so a budget-free spec keeps
	// the job identity it had before budgets existed.
	WallDeadline Duration `json:"wall_deadline,omitempty"`
	CellTimeout  Duration `json:"cell_timeout,omitempty"`
	StallTimeout Duration `json:"stall_timeout,omitempty"`
}

// Duration is a time.Duration that travels as a JSON duration string
// ("90s", "1h30m"); it also accepts a bare number of nanoseconds, the
// encoding a naive client produces for time.Duration.
type Duration time.Duration

// MarshalJSON renders the canonical duration string.
func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

// UnmarshalJSON accepts a duration string or a number of nanoseconds.
func (d *Duration) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err == nil {
		v, err := time.ParseDuration(s)
		if err != nil {
			return fmt.Errorf("invalid duration %q: %w", s, err)
		}
		*d = Duration(v)
		return nil
	}
	var ns int64
	if err := json.Unmarshal(b, &ns); err != nil {
		return fmt.Errorf("invalid duration %s", b)
	}
	*d = Duration(ns)
	return nil
}

// budget folds the spec's requested budgets into the guard shape.
func (js *JobSpec) budget() guard.Budget {
	return guard.Budget{
		WallDeadline: time.Duration(js.WallDeadline),
		CellTimeout:  time.Duration(js.CellTimeout),
		StallTimeout: time.Duration(js.StallTimeout),
	}
}

// normalize fills CLI-equivalent defaults in place. It runs before
// validation and before the job ID is derived, so an explicit spec and
// its defaulted shorthand are the same job.
func (js *JobSpec) normalize(fleet []string) {
	if len(js.Devices) == 0 {
		js.Devices = append([]string(nil), fleet...)
	}
	for i, d := range js.Devices {
		js.Devices[i] = strings.TrimSpace(d)
	}
	switch js.Kind {
	case "tune":
		if js.Seed == 0 {
			js.Seed = 2023
		}
		if js.TuneEnvs == 0 {
			js.TuneEnvs = 12
		}
		if js.SiteIters == 0 {
			js.SiteIters = 50
		}
		if js.PTEIters == 0 {
			js.PTEIters = 8
		}
	default:
		if js.Seed == 0 {
			js.Seed = 1
		}
		if len(js.Envs) == 0 {
			js.Envs = []string{"pte", "site"}
		}
		for i, e := range js.Envs {
			js.Envs[i] = strings.TrimSpace(e)
		}
		if js.Iters == 0 {
			js.Iters = 10
		}
	}
}

// jobID derives the idempotency key: the scheduler spec manifest
// (which pins campaign name, seed and the ordered cell grid) combined
// with the canonical JSON of the normalized spec, covering execution
// parameters the grid cannot see — iterations, environment presets,
// injected driver defects. Two submissions collide exactly when they
// would run the same cells the same way.
func jobID(manifest string, js JobSpec) string {
	h := sha256.New()
	io.WriteString(h, manifest)
	h.Write([]byte{0})
	b, err := json.Marshal(js)
	if err != nil {
		// A JobSpec is plain data; Marshal cannot fail on it.
		panic(fmt.Sprintf("serve: marshal job spec: %v", err))
	}
	h.Write(b)
	return hex.EncodeToString(h.Sum(nil))
}

// Summary condenses a job's campaign outcome: the settled counters of
// the final progress snapshot plus fleet health and storage verdicts.
type Summary struct {
	Cells       int `json:"cells"`
	Done        int `json:"done"`
	Executed    int `json:"executed"`
	Replayed    int `json:"replayed"`
	Failed      int `json:"failed"`
	Quarantined int `json:"quarantined"`
	Interrupted int `json:"interrupted,omitempty"`
	Retried     int `json:"retried,omitempty"`

	// CacheHits, CacheMisses and CacheCorrupt are the job's result-cache
	// traffic; CacheDegraded reports the cache fell back to pass-through.
	// Cache state is observability only: it never changes the job's
	// terminal state or its artifact.
	CacheHits     int  `json:"cache_hits,omitempty"`
	CacheMisses   int  `json:"cache_misses,omitempty"`
	CacheCorrupt  int  `json:"cache_corrupt,omitempty"`
	CacheDegraded bool `json:"cache_degraded,omitempty"`

	ElapsedSeconds float64 `json:"elapsed_seconds"`
	CellsPerSec    float64 `json:"cells_per_sec"`

	Health          []sched.DeviceHealth `json:"health,omitempty"`
	StorageDegraded bool                 `json:"storage_degraded,omitempty"`
	StorageErr      string               `json:"storage_err,omitempty"`
}

// summaryOf folds a job-level progress snapshot into a Summary.
func summaryOf(p sched.Progress) *Summary {
	return &Summary{
		Cells:           p.Total,
		Done:            p.Done,
		Executed:        p.Executed,
		Replayed:        p.Replayed,
		Failed:          p.Failed,
		Quarantined:     p.Quarantined,
		Interrupted:     p.Interrupted,
		Retried:         p.Retried,
		CacheHits:       p.CacheHits,
		CacheMisses:     p.CacheMisses,
		CacheCorrupt:    p.CacheCorrupt,
		CacheDegraded:   p.CacheDegraded,
		ElapsedSeconds:  p.ElapsedSeconds,
		CellsPerSec:     p.CellsPerSec,
		Health:          p.Health,
		StorageDegraded: p.StorageDegraded,
	}
}

// Job is one tracked submission: the API's job resource and the
// record persisted under <state>/jobs/<id>.json.
type Job struct {
	ID     string   `json:"id"`
	Spec   JobSpec  `json:"spec"`
	Client string   `json:"client,omitempty"`
	State  JobState `json:"state"`
	// Error carries the fatal cause when State is failed.
	Error string `json:"error,omitempty"`
	// Cells is the planned cell count; Manifest the combined scheduler
	// spec manifest the job ID derives from.
	Cells    int    `json:"cells"`
	Manifest string `json:"manifest"`
	// Resumes counts re-entries into the queue: restart recovery after
	// a shutdown or crash, and resubmission after failure/cancellation.
	Resumes int `json:"resumes,omitempty"`
	// BootIncarnations counts boots that found this job running — each
	// one means the previous process died mid-run with this job active.
	// Past the server's poison cap the job is quarantined (StatePoisoned)
	// instead of re-queued; resubmission resets the count.
	BootIncarnations int `json:"boot_incarnations,omitempty"`

	SubmittedAt time.Time  `json:"submitted_at"`
	StartedAt   *time.Time `json:"started_at,omitempty"`
	FinishedAt  *time.Time `json:"finished_at,omitempty"`

	// Summary is the campaign outcome, set on terminal states (and
	// on a drained-back-to-queued job, covering the partial run).
	Summary *Summary `json:"summary,omitempty"`
}

// clone returns an independent copy safe to hand across goroutines.
// Slices in Spec and Summary are replaced wholesale on update, never
// mutated in place, so a shallow copy of those is sound.
func (j *Job) clone() *Job {
	c := *j
	if j.StartedAt != nil {
		t := *j.StartedAt
		c.StartedAt = &t
	}
	if j.FinishedAt != nil {
		t := *j.FinishedAt
		c.FinishedAt = &t
	}
	return &c
}
