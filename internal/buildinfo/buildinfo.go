// Package buildinfo resolves the binary's version identity once, for
// every surface that reports it: the `mcmutants version` verb, the
// campaign server's /healthz body, and the mcmutants_build_info
// metric. The dist layer already refuses version-skewed workers; this
// package makes the skew visible before it bites — a fleet operator
// can scrape or curl every node and diff the answers.
package buildinfo

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
)

// Version is the release string, overridable at link time:
//
//	go build -ldflags "-X repro/internal/buildinfo.Version=v1.2.3"
//
// Without an override it falls back to the module version stamped by
// `go install`, or "dev".
var Version = ""

// Info is the resolved build identity.
type Info struct {
	// Version is the release string ("dev" when unstamped).
	Version string `json:"version"`
	// Revision is the VCS commit the binary was built from, with a
	// "+dirty" suffix when the tree had local modifications; empty when
	// the build carried no VCS stamp.
	Revision string `json:"revision,omitempty"`
	// GoVersion is the toolchain that built the binary.
	GoVersion string `json:"go_version"`
}

var resolve = sync.OnceValue(func() Info {
	info := Info{Version: Version, GoVersion: runtime.Version()}
	bi, ok := debug.ReadBuildInfo()
	if ok {
		if info.Version == "" && bi.Main.Version != "" && bi.Main.Version != "(devel)" {
			info.Version = bi.Main.Version
		}
		var rev string
		var dirty bool
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				rev = s.Value
			case "vcs.modified":
				dirty = s.Value == "true"
			}
		}
		if len(rev) > 12 {
			rev = rev[:12]
		}
		if rev != "" {
			info.Revision = rev
			if dirty {
				info.Revision += "+dirty"
			}
		}
	}
	if info.Version == "" {
		info.Version = "dev"
	}
	return info
})

// Get returns the build identity (resolved once, then cached).
func Get() Info { return resolve() }

// String renders the identity the way `mcmutants version` prints it.
func (i Info) String() string {
	if i.Revision != "" {
		return fmt.Sprintf("mcmutants %s (%s) %s", i.Version, i.Revision, i.GoVersion)
	}
	return fmt.Sprintf("mcmutants %s %s", i.Version, i.GoVersion)
}
