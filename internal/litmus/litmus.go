// Package litmus represents litmus tests: small concurrent programs that
// probe whether a platform implementation conforms to its memory
// consistency specification (Section 2.2 of the MC Mutants paper).
//
// A test is a set of threads of atomic instructions over a handful of
// locations, plus a target behavior: the particular outcome the test
// exists to look for. For a conformance test the target behavior is
// disallowed by the model — observing it is a bug. For a mutant the
// target behavior is allowed — observing it kills the mutant and scores
// the testing environment.
//
// Every store in a test writes a unique nonzero value, so the outcome of
// one run (the values loaded into registers plus the final memory state)
// determines the reads-from relation, and package mm can decide whether
// the outcome was legal.
package litmus

import (
	"encoding/json"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/mm"
)

// OpCode enumerates the atomic instruction set. It mirrors the WGSL
// subset used by the paper: atomic loads, atomic stores, atomic
// exchanges (the RMW used for value-tracking), and release/acquire
// fences (the inter-workgroup semantics WGSL's barrier used to carry).
type OpCode int

const (
	// OpLoad is reg = atomicLoad(&mem[loc]).
	OpLoad OpCode = iota
	// OpStore is atomicStore(&mem[loc], val).
	OpStore
	// OpExchange is reg = atomicExchange(&mem[loc], val): an RMW.
	OpExchange
	// OpFence is a release/acquire fence.
	OpFence
)

// String returns WGSL-flavored mnemonics.
func (o OpCode) String() string {
	switch o {
	case OpLoad:
		return "atomicLoad"
	case OpStore:
		return "atomicStore"
	case OpExchange:
		return "atomicExchange"
	case OpFence:
		return "fence"
	default:
		return fmt.Sprintf("OpCode(%d)", int(o))
	}
}

// Instr is one instruction in a litmus-test thread.
type Instr struct {
	Op OpCode
	// Loc is the logical location index within the test (0 = x, 1 = y).
	// Unused for fences.
	Loc int
	// Val is the value stored (OpStore, OpExchange).
	Val mm.Val
	// Reg is the destination register for loaded values (OpLoad,
	// OpExchange); -1 when no value is produced.
	Reg int
	// Label optionally names the event ("a", "b", ...) for rendering and
	// cycle explanations.
	Label string
}

// Reads reports whether the instruction observes a memory value.
func (in Instr) Reads() bool { return in.Op == OpLoad || in.Op == OpExchange }

// Writes reports whether the instruction stores a memory value.
func (in Instr) Writes() bool { return in.Op == OpStore || in.Op == OpExchange }

// EventKind maps the opcode to its mm event class.
func (in Instr) EventKind() mm.Kind {
	switch in.Op {
	case OpLoad:
		return mm.Read
	case OpStore:
		return mm.Write
	case OpExchange:
		return mm.RMW
	default:
		return mm.Fence
	}
}

// Thread is a sequence of instructions executed by one test thread.
type Thread struct {
	Instrs []Instr
	// Observer marks threads that only observe (read) the coherence
	// order; they take part in outcome classification like any other
	// thread but are not "worker" threads of the template.
	Observer bool
}

// Test is a litmus test.
type Test struct {
	// Name identifies the test (e.g. "CoRR", "MP-relacq").
	Name string
	// Mutator names the generating mutator family, if any.
	Mutator string
	// IsMutant distinguishes mutants from conformance tests.
	IsMutant bool
	// Base is the conformance test a mutant was derived from.
	Base string
	// Threads holds the program. Thread i of the test instance runs
	// Threads[i].
	Threads []Thread
	// NumLocs is the number of distinct locations the test uses.
	NumLocs int
	// NumRegs is the number of outcome registers.
	NumRegs int
	// Model is the MCS under which Target was classified at generation
	// time.
	Model mm.MCS
	// Target is the behavior of interest: disallowed for conformance
	// tests, allowed (weak or fine-grained) for mutants.
	Target Condition
	// FencesRemoved counts fences deleted by Mutator 3's disruptor
	// (0 for everything else).
	FencesRemoved int
}

// Outcome is the result of one execution of a test instance: the value
// loaded into each register and the final value of each location.
type Outcome struct {
	Regs  []mm.Val
	Final []mm.Val
}

// Key returns a canonical string form usable as a histogram key, e.g.
// "r0=1 r1=0 | x=1 y=1".
func (o Outcome) Key() string {
	return string(o.AppendKey(nil))
}

// AppendKey appends the outcome's canonical key bytes (exactly the bytes
// of Key) to buf and returns the extended buffer. Hot paths reuse one
// buffer across calls and pair the result with Histogram.AddKeyed and
// the classifier's keyed lookup, so classifying an already-seen outcome
// allocates nothing.
func (o Outcome) AppendKey(buf []byte) []byte {
	for i, v := range o.Regs {
		if i > 0 {
			buf = append(buf, ' ')
		}
		buf = append(buf, 'r')
		buf = strconv.AppendInt(buf, int64(i), 10)
		buf = append(buf, '=')
		buf = strconv.AppendUint(buf, uint64(v), 10)
	}
	if len(o.Final) > 0 {
		buf = append(buf, " |"...)
		for l, v := range o.Final {
			buf = append(buf, ' ')
			buf = append(buf, mm.LocName(mm.Loc(l))...)
			buf = append(buf, '=')
			buf = strconv.AppendUint(buf, uint64(v), 10)
		}
	}
	return buf
}

// Clone returns a deep copy of the outcome, detached from any reusable
// backing storage the original's slices may alias.
func (o *Outcome) Clone() *Outcome {
	return &Outcome{
		Regs:  append([]mm.Val(nil), o.Regs...),
		Final: append([]mm.Val(nil), o.Final...),
	}
}

// Condition is a declarative predicate over outcomes: required register
// values and required final memory values. An empty condition matches
// everything.
type Condition struct {
	Regs  map[int]mm.Val
	Final map[int]mm.Val
}

// Matches reports whether the outcome satisfies the condition. Registers
// or locations out of range never match.
func (c Condition) Matches(o Outcome) bool {
	for r, v := range c.Regs {
		if r < 0 || r >= len(o.Regs) || o.Regs[r] != v {
			return false
		}
	}
	for l, v := range c.Final {
		if l < 0 || l >= len(o.Final) || o.Final[l] != v {
			return false
		}
	}
	return true
}

// Empty reports whether the condition constrains nothing.
func (c Condition) Empty() bool { return len(c.Regs) == 0 && len(c.Final) == 0 }

// String renders the condition like the paper's postconditions, e.g.
// "r0==1 && r1==0".
func (c Condition) String() string {
	var parts []string
	regs := make([]int, 0, len(c.Regs))
	for r := range c.Regs {
		regs = append(regs, r)
	}
	sort.Ints(regs)
	for _, r := range regs {
		parts = append(parts, fmt.Sprintf("r%d==%d", r, c.Regs[r]))
	}
	locs := make([]int, 0, len(c.Final))
	for l := range c.Final {
		locs = append(locs, l)
	}
	sort.Ints(locs)
	for _, l := range locs {
		parts = append(parts, fmt.Sprintf("%s==%d", mm.LocName(mm.Loc(l)), c.Final[l]))
	}
	if len(parts) == 0 {
		return "true"
	}
	return strings.Join(parts, " && ")
}

// Validate checks structural invariants: register indices dense and in
// range, location indices in range, write values unique and nonzero, and
// a non-empty target for generated tests.
func (t *Test) Validate() error {
	if t.Name == "" {
		return fmt.Errorf("litmus: test has no name")
	}
	if len(t.Threads) == 0 {
		return fmt.Errorf("litmus %s: no threads", t.Name)
	}
	seenReg := map[int]bool{}
	seenVal := map[int]map[mm.Val]bool{}
	for ti, th := range t.Threads {
		if len(th.Instrs) == 0 {
			return fmt.Errorf("litmus %s: thread %d empty", t.Name, ti)
		}
		for ii, in := range th.Instrs {
			if in.Op != OpFence {
				if in.Loc < 0 || in.Loc >= t.NumLocs {
					return fmt.Errorf("litmus %s: t%d i%d: location %d out of range [0,%d)",
						t.Name, ti, ii, in.Loc, t.NumLocs)
				}
			}
			if in.Reads() {
				if in.Reg < 0 || in.Reg >= t.NumRegs {
					return fmt.Errorf("litmus %s: t%d i%d: register %d out of range [0,%d)",
						t.Name, ti, ii, in.Reg, t.NumRegs)
				}
				if seenReg[in.Reg] {
					return fmt.Errorf("litmus %s: register r%d written twice", t.Name, in.Reg)
				}
				seenReg[in.Reg] = true
			}
			if in.Writes() {
				if in.Val == 0 {
					return fmt.Errorf("litmus %s: t%d i%d stores reserved value 0", t.Name, ti, ii)
				}
				if seenVal[in.Loc] == nil {
					seenVal[in.Loc] = map[mm.Val]bool{}
				}
				if seenVal[in.Loc][in.Val] {
					return fmt.Errorf("litmus %s: duplicate store of %d to %s",
						t.Name, in.Val, mm.LocName(mm.Loc(in.Loc)))
				}
				seenVal[in.Loc][in.Val] = true
			}
		}
	}
	for r := 0; r < t.NumRegs; r++ {
		if !seenReg[r] {
			return fmt.Errorf("litmus %s: register r%d never assigned", t.Name, r)
		}
	}
	for r := range t.Target.Regs {
		if r < 0 || r >= t.NumRegs {
			return fmt.Errorf("litmus %s: target references register r%d", t.Name, r)
		}
	}
	for l := range t.Target.Final {
		if l < 0 || l >= t.NumLocs {
			return fmt.Errorf("litmus %s: target references location %d", t.Name, l)
		}
	}
	return nil
}

// WorkerThreads returns the number of non-observer threads.
func (t *Test) WorkerThreads() int {
	n := 0
	for _, th := range t.Threads {
		if !th.Observer {
			n++
		}
	}
	return n
}

// Instructions returns the total instruction count across all threads.
func (t *Test) Instructions() int {
	n := 0
	for _, th := range t.Threads {
		n += len(th.Instrs)
	}
	return n
}

// HasFences reports whether any thread contains a fence.
func (t *Test) HasFences() bool {
	for _, th := range t.Threads {
		for _, in := range th.Instrs {
			if in.Op == OpFence {
				return true
			}
		}
	}
	return false
}

// ValueDomain returns the set of values any execution of the test can
// legitimately produce in an outcome: zero (the initial value of every
// location) plus every value the test stores. A register or final
// value outside this set cannot trace to any write — it is evidence of
// device-level result corruption, which the harness uses to detect and
// discard poisoned iterations before they reach classification.
func (t *Test) ValueDomain() map[mm.Val]bool {
	dom := map[mm.Val]bool{0: true}
	for _, th := range t.Threads {
		for _, in := range th.Instrs {
			if in.Writes() {
				dom[in.Val] = true
			}
		}
	}
	return dom
}

// InDomain reports whether every register and final value of the
// outcome lies in the test's value domain.
func (t *Test) InDomain(o Outcome, dom map[mm.Val]bool) bool {
	for _, v := range o.Regs {
		if !dom[v] {
			return false
		}
	}
	for _, v := range o.Final {
		if !dom[v] {
			return false
		}
	}
	return true
}

// AnyFinal is a sentinel final value meaning "unconstrained": the
// corresponding location's coherence-final write is not pinned when
// reconstructing an execution.
const AnyFinal mm.Val = ^mm.Val(0)

// Execution reconstructs the candidate execution corresponding to an
// observed outcome. Loads take their register's value; stores take their
// program value. Final memory values pin the coherence-maximal write of
// each location (mm's CoLast constraint); a Final entry of AnyFinal, or
// an entirely absent Final vector, leaves the location unconstrained.
//
// A final value that matches no write to a written location (including
// 0, the initial value) indicates memory corruption; Execution still
// returns the execution, and Classify reports it inconsistent.
func (t *Test) Execution(o Outcome) (*mm.Execution, error) {
	if len(o.Regs) != t.NumRegs {
		return nil, fmt.Errorf("litmus %s: outcome has %d registers, want %d",
			t.Name, len(o.Regs), t.NumRegs)
	}
	if len(o.Final) != 0 && len(o.Final) != t.NumLocs {
		return nil, fmt.Errorf("litmus %s: outcome has %d final values, want %d",
			t.Name, len(o.Final), t.NumLocs)
	}
	var x mm.Execution
	writerOf := map[int]map[mm.Val]int{} // loc -> value -> event ID
	for ti, th := range t.Threads {
		for ii, in := range th.Instrs {
			e := mm.Event{
				ID:     len(x.Events),
				Thread: ti,
				Index:  ii,
				Kind:   in.EventKind(),
				Loc:    mm.Loc(in.Loc),
				Label:  in.Label,
			}
			if in.Reads() {
				e.ReadVal = o.Regs[in.Reg]
			}
			if in.Writes() {
				e.WriteVal = in.Val
				if writerOf[in.Loc] == nil {
					writerOf[in.Loc] = map[mm.Val]int{}
				}
				writerOf[in.Loc][in.Val] = e.ID
			}
			x.Events = append(x.Events, e)
		}
	}
	for l := 0; l < len(o.Final); l++ {
		v := o.Final[l]
		if v == AnyFinal {
			continue
		}
		if id, ok := writerOf[l][v]; ok {
			if x.CoLast == nil {
				x.CoLast = map[mm.Loc]int{}
			}
			x.CoLast[mm.Loc(l)] = id
		}
	}
	return &x, nil
}

// FinalConsistent reports whether the outcome's final memory values are
// explicable: a written location must end with some write's value, and
// an unwritten location must still hold 0.
func (t *Test) FinalConsistent(o Outcome) bool {
	if len(o.Final) == 0 {
		return true
	}
	writes := make([]map[mm.Val]bool, t.NumLocs)
	for _, th := range t.Threads {
		for _, in := range th.Instrs {
			if in.Writes() {
				if writes[in.Loc] == nil {
					writes[in.Loc] = map[mm.Val]bool{}
				}
				writes[in.Loc][in.Val] = true
			}
		}
	}
	for l, v := range o.Final {
		if v == AnyFinal {
			continue
		}
		if len(writes[l]) == 0 {
			if v != 0 {
				return false
			}
			continue
		}
		if !writes[l][v] {
			return false
		}
	}
	return true
}

// Classify decides whether the outcome was allowed under the test's
// model. Outcomes whose read or final values cannot be traced to writes
// are reported as inconsistent (memory corruption) and disallowed.
func (t *Test) Classify(o Outcome) (mm.Verdict, error) {
	x, err := t.Execution(o)
	if err != nil {
		return mm.Verdict{}, err
	}
	if !t.FinalConsistent(o) {
		return mm.Verdict{Allowed: false, Consistent: false}, nil
	}
	return x.Check(t.Model), nil
}

// TargetExecution builds the candidate execution of the target behavior
// itself (used for Fig. 2-style rendering and for sanity checks at
// generation time). Registers not constrained by the target default to
// 0; final values not constrained by the target are left unconstrained.
func (t *Test) TargetExecution() (*mm.Execution, error) {
	o := t.TargetOutcome()
	return t.Execution(o)
}

// TargetOutcome materializes the target condition as a concrete outcome:
// constrained registers and finals take their required values,
// unconstrained registers default to 0, and unconstrained finals are
// AnyFinal.
func (t *Test) TargetOutcome() Outcome {
	o := Outcome{Regs: make([]mm.Val, t.NumRegs), Final: make([]mm.Val, t.NumLocs)}
	for r, v := range t.Target.Regs {
		o.Regs[r] = v
	}
	for l := range o.Final {
		o.Final[l] = AnyFinal
	}
	for l, v := range t.Target.Final {
		o.Final[l] = v
	}
	return o
}

// String renders the test as a two-column program in the style of
// Fig. 1 of the paper, followed by the target condition.
func (t *Test) String() string {
	var b strings.Builder
	kind := "conformance"
	if t.IsMutant {
		kind = "mutant"
	}
	fmt.Fprintf(&b, "%s (%s", t.Name, kind)
	if t.Mutator != "" {
		fmt.Fprintf(&b, ", %s", t.Mutator)
	}
	b.WriteString(")\n")
	for ti, th := range t.Threads {
		role := "Thread"
		if th.Observer {
			role = "Observer"
		}
		fmt.Fprintf(&b, "%s %d:\n", role, ti)
		for _, in := range th.Instrs {
			b.WriteString("  ")
			if in.Label != "" {
				fmt.Fprintf(&b, "%s: ", in.Label)
			}
			switch in.Op {
			case OpLoad:
				fmt.Fprintf(&b, "r%d = atomicLoad(&%s)", in.Reg, mm.LocName(mm.Loc(in.Loc)))
			case OpStore:
				fmt.Fprintf(&b, "atomicStore(&%s, %d)", mm.LocName(mm.Loc(in.Loc)), in.Val)
			case OpExchange:
				fmt.Fprintf(&b, "r%d = atomicExchange(&%s, %d)", in.Reg, mm.LocName(mm.Loc(in.Loc)), in.Val)
			case OpFence:
				b.WriteString("fence(release/acquire)")
			}
			b.WriteByte('\n')
		}
	}
	fmt.Fprintf(&b, "Target: %s\n", t.Target)
	return b.String()
}

// Histogram accumulates outcome counts across runs of one test.
//
// Counts are stored behind pointers so the hot path — re-observing an
// outcome whose key already exists — is a pure map lookup plus an
// in-place increment: the compiler elides the []byte-to-string
// conversion for lookups, so AddKeyed allocates only the first time a
// key is seen. Reset zeroes counters in place while keeping key strings
// and map buckets, letting one histogram be reused across runs without
// re-paying those allocations; zero-count entries are invisible to every
// accessor and to serialization, so a reset histogram is
// indistinguishable from a fresh one.
type Histogram struct {
	counts map[string]*int
	total  int
	target int
	// violations counts outcomes classified disallowed (conformance
	// tests only; harness updates it).
	violations int
	// keyBuf is the reused key-rendering scratch for Add/AddN.
	keyBuf []byte
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	return &Histogram{counts: map[string]*int{}}
}

// NewHistogramSize returns an empty histogram whose key map is
// preallocated for about n distinct outcomes, so merge-heavy callers
// avoid incremental map growth.
func NewHistogramSize(n int) *Histogram {
	if n < 0 {
		n = 0
	}
	return &Histogram{counts: make(map[string]*int, n)}
}

// Reset clears the histogram for reuse: all counters drop to zero, but
// key strings and map capacity are retained so re-observing a previously
// seen outcome allocates nothing.
func (h *Histogram) Reset() {
	for _, p := range h.counts {
		*p = 0
	}
	h.total = 0
	h.target = 0
	h.violations = 0
}

// Add records one outcome, noting whether it matched the target and
// whether it was a violation.
func (h *Histogram) Add(o Outcome, target, violation bool) {
	h.keyBuf = o.AppendKey(h.keyBuf[:0])
	h.addKey(h.keyBuf, target, violation, 1)
}

// AddKeyed records one outcome by its precomputed key bytes, which must
// equal the outcome's AppendKey rendering. For keys already present it
// allocates nothing.
func (h *Histogram) AddKeyed(key []byte, target, violation bool) {
	h.addKey(key, target, violation, 1)
}

// AddN records n identical outcomes at once.
func (h *Histogram) AddN(o Outcome, target, violation bool, n int) {
	if n <= 0 {
		return
	}
	h.keyBuf = o.AppendKey(h.keyBuf[:0])
	h.addKey(h.keyBuf, target, violation, n)
}

func (h *Histogram) addKey(key []byte, target, violation bool, n int) {
	if p, ok := h.counts[string(key)]; ok {
		*p += n
	} else {
		c := n
		h.counts[string(key)] = &c
	}
	h.total += n
	if target {
		h.target += n
	}
	if violation {
		h.violations += n
	}
}

// Total returns the number of recorded outcomes.
func (h *Histogram) Total() int { return h.total }

// TargetCount returns how many outcomes matched the target behavior.
func (h *Histogram) TargetCount() int { return h.target }

// Violations returns how many outcomes were disallowed by the model.
func (h *Histogram) Violations() int { return h.violations }

// Distinct returns the number of distinct outcomes seen.
func (h *Histogram) Distinct() int {
	n := 0
	for _, p := range h.counts {
		if *p != 0 {
			n++
		}
	}
	return n
}

// Count returns the number of occurrences of an outcome key.
func (h *Histogram) Count(key string) int {
	if p, ok := h.counts[key]; ok {
		return *p
	}
	return 0
}

// Merge adds the contents of other into h.
func (h *Histogram) Merge(other *Histogram) {
	for k, v := range other.counts {
		if *v == 0 {
			continue
		}
		if p, ok := h.counts[k]; ok {
			*p += *v
		} else {
			c := *v
			h.counts[k] = &c
		}
	}
	h.total += other.total
	h.target += other.target
	h.violations += other.violations
}

// histogramJSON is the serialized form of a Histogram; keys are the
// outcome keys. encoding/json sorts map keys, so equal histograms
// marshal to identical bytes — a property campaign checkpointing and
// the byte-identical-output guarantee rely on.
type histogramJSON struct {
	Counts     map[string]int `json:"counts"`
	Total      int            `json:"total"`
	Target     int            `json:"target"`
	Violations int            `json:"violations"`
}

// MarshalJSON serializes the histogram for result checkpointing.
// Zero-count entries (left behind by Reset) are omitted, so a reused
// histogram marshals byte-identically to a fresh one.
func (h *Histogram) MarshalJSON() ([]byte, error) {
	counts := make(map[string]int, len(h.counts))
	for k, p := range h.counts {
		if *p != 0 {
			counts[k] = *p
		}
	}
	return json.Marshal(histogramJSON{
		Counts:     counts,
		Total:      h.total,
		Target:     h.target,
		Violations: h.violations,
	})
}

// UnmarshalJSON restores a histogram written by MarshalJSON.
func (h *Histogram) UnmarshalJSON(b []byte) error {
	var hj histogramJSON
	if err := json.Unmarshal(b, &hj); err != nil {
		return err
	}
	h.counts = make(map[string]*int, len(hj.Counts))
	for k, v := range hj.Counts {
		c := v
		h.counts[k] = &c
	}
	h.total = hj.Total
	h.target = hj.Target
	h.violations = hj.Violations
	return nil
}

// String renders the histogram sorted by frequency (descending), then
// key, capped at 16 rows.
func (h *Histogram) String() string {
	type row struct {
		key string
		n   int
	}
	rows := make([]row, 0, len(h.counts))
	for k, p := range h.counts {
		if *p != 0 {
			rows = append(rows, row{k, *p})
		}
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].n != rows[j].n {
			return rows[i].n > rows[j].n
		}
		return rows[i].key < rows[j].key
	})
	var b strings.Builder
	for i, r := range rows {
		if i == 16 {
			fmt.Fprintf(&b, "  ... %d more outcomes\n", len(rows)-16)
			break
		}
		fmt.Fprintf(&b, "  %8d  %s\n", r.n, r.key)
	}
	fmt.Fprintf(&b, "  total=%d target=%d violations=%d", h.total, h.target, h.violations)
	return b.String()
}
