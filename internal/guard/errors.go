package guard

import "errors"

// The sentinel cancellation causes a supervised job can end with.
// serve maps each onto a typed terminal (or, for ErrShed, parked)
// job state, so clients see why a job stopped, not just that it did.
var (
	// ErrDeadlineExceeded: the job's wall-clock budget ran out. The
	// campaign drains gracefully at the next cell boundary with its
	// checkpoint intact.
	ErrDeadlineExceeded = errors.New("guard: job wall deadline exceeded")
	// ErrStalled: the job's cumulative progress counters stopped
	// advancing for its stall budget — a wedged device, a livelocked
	// retry loop, or a distributed coordinator whose workers vanished.
	ErrStalled = errors.New("guard: job progress stalled")
	// ErrShed: the memory watcher's hard watermark cancelled the job to
	// relieve pressure. Shed jobs are not failures; they re-queue when
	// pressure clears or at the next boot.
	ErrShed = errors.New("guard: job shed under memory pressure")
)
