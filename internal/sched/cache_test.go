package sched

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"syscall"
	"testing"

	"repro/internal/diskio"
	"repro/internal/resultcache"
	"repro/internal/xrand"
)

const testSalt = "exec-params/v1"

func openCache(t *testing.T, dir string, opts resultcache.Options) *resultcache.Cache {
	t.Helper()
	c, err := resultcache.Open(dir, opts)
	if err != nil {
		t.Fatalf("resultcache.Open(%s): %v", dir, err)
	}
	return c
}

func assertValues(t *testing.T, label string, got, want []cellValue) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d values, want %d", label, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: cell %d: %+v != %+v", label, i, got[i], want[i])
		}
	}
}

// TestCacheWarmRunByteIdentical is the cache's core contract at the
// scheduler level: a cold run (all misses, results published), a warm
// run (all hits, nothing executed) and a cache-off run produce
// identical result values — the cache changes wall-clock, never data.
func TestCacheWarmRunByteIdentical(t *testing.T) {
	spec := testSpec(12)
	clean, err := Run(spec, drawValue, Options[cellValue]{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	want := clean.Values()

	dir := t.TempDir()
	cold, err := Run(spec, drawValue, Options[cellValue]{
		Workers: 4, Cache: openCache(t, dir, resultcache.Options{}), CacheSalt: testSalt,
	})
	if err != nil {
		t.Fatal(err)
	}
	assertValues(t, "cold", cold.Values(), want)
	if cold.CacheHits != 0 || cold.CacheMisses != len(spec.Cells) || cold.Executed != len(spec.Cells) {
		t.Fatalf("cold counters: hits=%d misses=%d executed=%d", cold.CacheHits, cold.CacheMisses, cold.Executed)
	}

	warm, err := Run(spec, drawValue, Options[cellValue]{
		Workers: 4, Cache: openCache(t, dir, resultcache.Options{}), CacheSalt: testSalt,
	})
	if err != nil {
		t.Fatal(err)
	}
	assertValues(t, "warm", warm.Values(), want)
	if warm.CacheHits != len(spec.Cells) || warm.Executed != 0 {
		t.Fatalf("warm counters: hits=%d executed=%d", warm.CacheHits, warm.Executed)
	}
	for i, r := range warm.Results {
		if !r.CacheHit || r.Attempts != 0 {
			t.Fatalf("warm cell %d: CacheHit=%v Attempts=%d", i, r.CacheHit, r.Attempts)
		}
	}

	// A different salt is a different workload: nothing may be shared.
	salted, err := Run(spec, drawValue, Options[cellValue]{
		Workers: 4, Cache: openCache(t, dir, resultcache.Options{}), CacheSalt: "exec-params/v2",
	})
	if err != nil {
		t.Fatal(err)
	}
	assertValues(t, "other salt", salted.Values(), want)
	if salted.CacheHits != 0 {
		t.Fatalf("salt did not separate workloads: %d hits", salted.CacheHits)
	}
}

// TestCacheHitsAreCheckpointed pins the resume contract: a cell served
// from the cache is still recorded in the checkpoint, so a later resume
// replays it even if the cache entry has since been evicted.
func TestCacheHitsAreCheckpointed(t *testing.T) {
	spec := testSpec(8)
	cdir := t.TempDir()
	cold, err := Run(spec, drawValue, Options[cellValue]{
		Workers: 2, Cache: openCache(t, cdir, resultcache.Options{}), CacheSalt: testSalt,
	})
	if err != nil {
		t.Fatal(err)
	}

	ckpt := filepath.Join(t.TempDir(), "c.ckpt")
	ck, err := OpenCheckpoint(ckpt, spec, false)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := Run(spec, drawValue, Options[cellValue]{
		Workers: 2, Checkpoint: ck,
		Cache: openCache(t, cdir, resultcache.Options{}), CacheSalt: testSalt,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := ck.Close(); err != nil {
		t.Fatal(err)
	}
	if warm.CacheHits != len(spec.Cells) {
		t.Fatalf("warm hits = %d, want %d", warm.CacheHits, len(spec.Cells))
	}

	// The cache is gone; the checkpoint alone must carry the resume.
	if err := os.RemoveAll(cdir); err != nil {
		t.Fatal(err)
	}
	ck2, err := OpenCheckpoint(ckpt, spec, true)
	if err != nil {
		t.Fatal(err)
	}
	defer ck2.Close()
	resumed, err := Run(spec, drawValue, Options[cellValue]{Workers: 2, Checkpoint: ck2})
	if err != nil {
		t.Fatal(err)
	}
	if resumed.Replayed != len(spec.Cells) {
		t.Fatalf("resume replayed %d of %d cells", resumed.Replayed, len(spec.Cells))
	}
	assertValues(t, "resume", resumed.Values(), cold.Values())
}

// TestCacheCorruptEntrySweep flips one byte in one published entry and
// re-runs: the damaged cell is detected, recomputed and counted; every
// other cell still hits; the values never change.
func TestCacheCorruptEntrySweep(t *testing.T) {
	spec := testSpec(6)
	dir := t.TempDir()
	cold, err := Run(spec, drawValue, Options[cellValue]{
		Workers: 1, Cache: openCache(t, dir, resultcache.Options{}), CacheSalt: testSalt,
	})
	if err != nil {
		t.Fatal(err)
	}
	want := cold.Values()

	objects, err := os.ReadDir(filepath.Join(dir, "objects"))
	if err != nil {
		t.Fatal(err)
	}
	if len(objects) != len(spec.Cells) {
		t.Fatalf("%d entries published, want %d", len(objects), len(spec.Cells))
	}
	for _, de := range objects {
		path := filepath.Join(dir, "objects", de.Name())
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		data[len(data)/2] ^= 0x40
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}

		warm, err := Run(spec, drawValue, Options[cellValue]{
			Workers: 1, Cache: openCache(t, dir, resultcache.Options{}), CacheSalt: testSalt,
		})
		if err != nil {
			t.Fatal(err)
		}
		assertValues(t, "after corrupting "+de.Name(), warm.Values(), want)
		if warm.CacheCorrupt != 1 || warm.CacheHits != len(spec.Cells)-1 || warm.Executed != 1 {
			t.Fatalf("corrupt %s: corrupt=%d hits=%d executed=%d",
				de.Name(), warm.CacheCorrupt, warm.CacheHits, warm.Executed)
		}
		// The recomputed cell was republished, so the entry is whole again.
	}
}

// TestCacheBreakerTrajectoryIdentical runs a campaign where one device
// permanently fails under the circuit breaker, cold and then warm: the
// warm run's hits feed the breaker the same success signal the cold
// run's executions did, so the quarantine trajectory — which cells
// fail, which are skipped, which survive — is identical.
func TestCacheBreakerTrajectoryIdentical(t *testing.T) {
	spec := testSpec(16)
	exec := func(_ context.Context, c Cell, rng *xrand.Rand) (cellValue, error) {
		if c.Device == "Intel" {
			return cellValue{}, fmt.Errorf("device fault on %s", c.Key)
		}
		return cellValue{Key: c.Key, Draw: rng.Uint64()}, nil
	}
	run := func(cache ResultCache) *Report[cellValue] {
		rep, err := Run(spec, exec, Options[cellValue]{
			Workers: 1, Breaker: &BreakerOptions{Threshold: 2, Cooldown: 2},
			Cache: cache, CacheSalt: testSalt,
		})
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	dir := t.TempDir()
	cold := run(openCache(t, dir, resultcache.Options{}))
	warm := run(openCache(t, dir, resultcache.Options{}))
	if warm.CacheHits == 0 {
		t.Fatal("warm breaker run reused nothing")
	}
	for i := range cold.Results {
		cr, wr := cold.Results[i], warm.Results[i]
		if cr.Value != wr.Value || cr.Quarantined != wr.Quarantined || (cr.Err == nil) != (wr.Err == nil) {
			t.Fatalf("cell %d trajectory diverged: cold %+v / warm %+v", i, cr, wr)
		}
	}
	// Only successful cells were published: failed and quarantined cells
	// must never enter the cache.
	objects, err := os.ReadDir(filepath.Join(dir, "objects"))
	if err != nil {
		t.Fatal(err)
	}
	var ok int
	for _, r := range cold.Results {
		if r.Err == nil {
			ok++
		}
	}
	if len(objects) != ok {
		t.Fatalf("%d entries published, want %d (successful cells only)", len(objects), ok)
	}
}

// countCacheOps runs a cold campaign through a fault-free FaultFS-backed
// cache and returns how many mutating I/O operations the cache performs
// end to end — the fault-boundary space for the chaos test below.
// Workers is 1 so the operation sequence is deterministic.
func countCacheOps(t *testing.T, spec Spec) int {
	t.Helper()
	ffs := diskio.NewFaultFS(diskio.OS{}, 7)
	cache := openCache(t, t.TempDir(), resultcache.Options{FS: ffs})
	if _, err := Run(spec, drawValue, Options[cellValue]{Workers: 1, Cache: cache, CacheSalt: testSalt}); err != nil {
		t.Fatal(err)
	}
	return ffs.Ops()
}

// TestCampaignUnharmedByCacheFaultAtEveryBoundary is the tentpole
// robustness property: a crash or a persistent ENOSPC landing on ANY
// single cache I/O operation — directory creation, entry write, fsync,
// rename, recency touch, the lot — never changes campaign results and
// never fails the run. Afterwards, a fresh process over whatever the
// fault left on disk still runs to identical results: torn entries are
// quarantined by verify-on-read, stray temp files are swept at Open.
func TestCampaignUnharmedByCacheFaultAtEveryBoundary(t *testing.T) {
	spec := testSpec(6)
	clean, err := Run(spec, drawValue, Options[cellValue]{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	want := clean.Values()
	total := countCacheOps(t, spec)
	if total < 10 {
		t.Fatalf("only %d cache ops; the boundary space is implausibly small", total)
	}

	for n := 1; n <= total; n++ {
		for _, mode := range []string{"crash", "enospc"} {
			dir := t.TempDir()
			ffs := diskio.NewFaultFS(diskio.OS{}, 7)
			if mode == "crash" {
				ffs.CrashAfter(n)
			} else {
				ffs.FailFrom(n, syscall.ENOSPC)
			}
			cache, err := resultcache.Open(dir, resultcache.Options{FS: ffs})
			if err != nil {
				// Only a simulated process death during Open may surface as
				// an error; a full disk must yield a degraded cache instead.
				if mode != "crash" || !errors.Is(err, diskio.ErrCrashed) {
					t.Fatalf("n=%d %s: Open: %v", n, mode, err)
				}
				cache = nil
			}
			if cache != nil {
				rep, err := Run(spec, drawValue, Options[cellValue]{Workers: 1, Cache: cache, CacheSalt: testSalt})
				if err != nil {
					t.Fatalf("n=%d %s: a cache fault failed the campaign: %v", n, mode, err)
				}
				assertValues(t, fmt.Sprintf("n=%d %s", n, mode), rep.Values(), want)
				if rep.Executed+rep.CacheHits != len(spec.Cells) {
					t.Fatalf("n=%d %s: executed %d + hits %d != %d", n, mode, rep.Executed, rep.CacheHits, len(spec.Cells))
				}
				switch mode {
				case "crash":
					// A frozen filesystem is a dead process, not a sick disk:
					// the sticky degradation must not fire.
					if rep.CacheDegraded {
						t.Fatalf("n=%d crash: crash reported as degradation (%s)", n, rep.CacheErr)
					}
				case "enospc":
					// The fault point is inside the profiled range, so the
					// full-disk error must have been observed and reported.
					if !rep.CacheDegraded {
						t.Fatalf("n=%d enospc: persistent ENOSPC not reported", n)
					}
				}
			}
			if mode == "crash" && !ffs.Crashed() {
				t.Fatalf("n=%d: crash point inside the profiled range never fired", n)
			}

			// Restart over the survivors with a healthy filesystem, as a new
			// process would: whatever the fault left behind — a torn entry, a
			// stray temp file, a half-created layout — the next run verifies,
			// quarantines and recomputes its way to identical results.
			after, err := Run(spec, drawValue, Options[cellValue]{
				Workers: 1, Cache: openCache(t, dir, resultcache.Options{}), CacheSalt: testSalt,
			})
			if err != nil {
				t.Fatalf("n=%d %s: restarted run: %v", n, mode, err)
			}
			assertValues(t, fmt.Sprintf("n=%d %s restart", n, mode), after.Values(), want)
			if after.CacheDegraded {
				t.Fatalf("n=%d %s: degradation leaked into the restarted process", n, mode)
			}
		}
	}
}
