package mutation

import (
	"fmt"

	"repro/internal/mm"
)

// Mutator 3: weakening sw on four events (Sec. 3.3, Fig. 3c).
//
// The template adds release/acquire fences: thread 0 runs a; fence; b
// and thread 1 runs c; fence; d. Synchronizes-with requires a write
// (b) after the release fence and a read (c) before the acquire fence
// with c reading from b, so with plain loads and stores only three
// shapes instantiate: MP, LB and S. Substituting RMWs for c (whose
// write half does not disturb the synchronization pattern) yields the
// SB, R and 2+2W shapes, "mimicking" sequentially consistent fences —
// six conformance tests, all disallowed under
// rel-acq-SC-per-location.
//
// The edge disruptor weakens sw by removing the release fence, the
// acquire fence, or both — three mutants per conformance test,
// eighteen in all. Removing fences models the MP-relacq bug of
// Sec. 1.1, where an AMD Vulkan compiler weakened atomics in an
// intermediate representation; killing these mutants requires
// observing weak behavior under partial synchronization.
func weakeningSWSpecs() []tspec {
	const x, y = 0, 1
	type shape struct {
		name string
		// Events around the fences: thread 0 is {pre0, fence, post0},
		// thread 1 is {pre1, fence, post1}.
		pre0, post0 espec
		pre1, post1 espec
		finals      map[int]mm.Val
	}
	shapes := []shape{
		{
			// MP-relacq (Fig. 1b): the flag is seen, the data is not.
			name: "MP-relacq",
			pre0: ewrite(x, 1, "a"), post0: ewrite(y, 2, "b"),
			pre1: ereadV(y, 2, "c"), post1: ereadV(x, 0, "d"),
		},
		{
			// LB-relacq: both loads see the other thread's later store.
			name: "LB-relacq",
			pre0: ereadV(x, 2, "a"), post0: ewrite(y, 1, "b"),
			pre1: ereadV(y, 1, "c"), post1: ewrite(x, 2, "d"),
		},
		{
			// S-relacq: the synchronized-away data write still wins the
			// coherence race.
			name: "S-relacq",
			pre0: ewrite(x, 1, "a"), post0: ewrite(y, 2, "b"),
			pre1: ereadV(y, 2, "c"), post1: ewrite(x, 3, "d"),
			finals: map[int]mm.Val{x: 1},
		},
		{
			// SB-relacq-rmw: b and c become RMWs on y to satisfy the
			// write-after-release / read-before-acquire pattern; d
			// still misses a.
			name: "SB-relacq-rmw",
			pre0: ewrite(x, 1, "a"), post0: ermwV(y, 2, 0, "b"),
			pre1: ermwV(y, 3, 2, "c"), post1: ereadV(x, 0, "d"),
		},
		{
			// R-relacq-rmw: c becomes an RMW reading b, witnessing the
			// y coherence order while d misses a.
			name: "R-relacq-rmw",
			pre0: ewrite(x, 1, "a"), post0: ewrite(y, 2, "b"),
			pre1: ermwV(y, 3, 2, "c"), post1: ereadV(x, 0, "d"),
		},
		{
			// 2+2W-relacq-rmw: c becomes an RMW reading b; the final
			// value of x pins d coherence-before a.
			name: "2+2W-relacq-rmw",
			pre0: ewrite(x, 1, "a"), post0: ewrite(y, 2, "b"),
			pre1: ermwV(y, 3, 2, "c"), post1: ewrite(x, 4, "d"),
			finals: map[int]mm.Val{x: 1},
		},
	}
	var specs []tspec
	for _, sh := range shapes {
		full0 := []espec{sh.pre0, efence("f0"), sh.post0}
		full1 := []espec{sh.pre1, efence("f1"), sh.post1}
		bare0 := []espec{sh.pre0, sh.post0}
		bare1 := []espec{sh.pre1, sh.post1}
		conf := tspec{
			name:    sh.name,
			mutator: WeakeningSW,
			model:   mm.RelAcqSCPerLocation,
			threads: [][]espec{full0, full1},
			finals:  sh.finals,
		}
		specs = append(specs, conf)
		// Three disruptions: remove the release-side fence, the
		// acquire-side fence, or both.
		disruptions := []struct {
			suffix  string
			t0, t1  []espec
			removed int
		}{
			{"-norel", bare0, full1, 1},
			{"-noacq", full0, bare1, 1},
			{"-nofence", bare0, bare1, 2},
		}
		for _, d := range disruptions {
			specs = append(specs, tspec{
				name:          fmt.Sprintf("%s%s", sh.name, d.suffix),
				mutator:       WeakeningSW,
				isMutant:      true,
				base:          sh.name,
				model:         mm.RelAcqSCPerLocation,
				threads:       [][]espec{d.t0, d.t1},
				finals:        sh.finals,
				fencesRemoved: d.removed,
			})
		}
	}
	return specs
}
