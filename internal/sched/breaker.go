package sched

import (
	"sort"
	"sync"
)

// BreakerOptions configures the fleet's per-device circuit breaker.
// After Threshold consecutive cell failures on one device, the device
// is quarantined: its next Cooldown cells are skipped (recorded as
// ErrQuarantined, never executed when the skip can be decided in time),
// then one probation cell runs — success closes the breaker, failure
// re-opens it for another cooldown. The campaign keeps running on the
// surviving fleet either way.
//
// Breaker decisions are evaluated in spec order per device, as a pure
// function of per-cell outcomes — which are themselves deterministic
// under the scheduler's seed-splitting — so the final report is
// byte-identical at any worker count. Under high parallelism a cell may
// execute speculatively before its quarantine verdict is known; its
// result is then discarded and replaced by ErrQuarantined, keeping the
// report identical to a serial run that skipped it outright.
type BreakerOptions struct {
	// Threshold is the consecutive-failure count that opens a device's
	// breaker. Values < 1 mean 3.
	Threshold int
	// Cooldown is how many subsequent cells on the device are
	// quarantined before a probation cell is let through. Values < 1
	// mean 2.
	Cooldown int
}

func (b BreakerOptions) threshold() int {
	if b.Threshold < 1 {
		return 3
	}
	return b.Threshold
}

func (b BreakerOptions) cooldown() int {
	if b.Cooldown < 1 {
		return 2
	}
	return b.Cooldown
}

// DeviceHealth summarizes one device's campaign health; Report.Health
// carries one entry per device when the breaker is enabled. All counts
// are derived from the deterministic post-pass, so they are identical
// at any worker count.
type DeviceHealth struct {
	// Device is the device's short name.
	Device string
	// Cells is the number of campaign cells on the device.
	Cells int
	// Failed counts cells whose own outcome was a permanent failure
	// (quarantined cells are not double-counted here).
	Failed int
	// Quarantined counts cells skipped by the breaker.
	Quarantined int
	// Retries counts extra attempts across the device's surviving cells.
	Retries int
	// Open reports whether the breaker was still open when the campaign
	// ended — the device finished in quarantine.
	Open bool
}

// cellOutcome is one cell's resolution from the breaker's viewpoint.
type cellOutcome int8

const (
	cellPending cellOutcome = iota
	cellOK
	cellFailed
	cellSkipped
)

// breakerWalk is the breaker state machine. It consumes one device's
// cells in spec order; quarantine() reports the verdict for the next
// position, and the walk advances via skip() (position quarantined) or
// outcome() (position executed, with its success bit).
type breakerWalk struct {
	opts     BreakerOptions
	streak   int
	coolLeft int
}

// quarantine reports whether the next position must be skipped.
func (w *breakerWalk) quarantine() bool { return w.coolLeft > 0 }

// skip consumes one quarantined position.
func (w *breakerWalk) skip() {
	w.coolLeft--
	if w.coolLeft == 0 {
		// Cooldown served: the next cell is probation. One failure
		// re-opens the breaker, one success closes it.
		w.streak = w.opts.threshold() - 1
	}
}

// outcome consumes one executed position.
func (w *breakerWalk) outcome(ok bool) {
	if ok {
		w.streak = 0
		return
	}
	w.streak++
	if w.streak >= w.opts.threshold() {
		w.coolLeft = w.opts.cooldown()
	}
}

// Breaker is the breaker state machine as a standalone, concurrency-
// safe component, for callers that quarantine something other than a
// device cell stream — the distributed coordinator applies one per
// worker, so a worker whose leases repeatedly expire or fail is
// starved of new ranges the same way a failing device is starved of
// cells. Allow consumes one cooldown slot when the breaker is open
// (mirroring how a quarantined device skips cells), so after Cooldown
// refusals the next Allow is probation: its Observe verdict closes or
// re-opens the breaker.
type Breaker struct {
	mu   sync.Mutex
	walk breakerWalk
}

// NewBreaker returns a closed breaker with the options' thresholds.
func NewBreaker(opts BreakerOptions) *Breaker {
	return &Breaker{walk: breakerWalk{opts: opts}}
}

// Allow reports whether the next unit of work may proceed; a refusal
// consumes one cooldown slot.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.walk.quarantine() {
		b.walk.skip()
		return false
	}
	return true
}

// Observe records the outcome of a unit of work that was allowed.
func (b *Breaker) Observe(ok bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.walk.outcome(ok)
}

// Open reports whether the breaker is currently refusing work.
func (b *Breaker) Open() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.walk.quarantine()
}

// fleetBreaker tracks live per-device resolutions so workers can skip
// quarantined cells without executing them when the verdict is already
// decidable (all earlier cells on the device resolved). When it is not,
// the cell runs speculatively and the post-pass settles the record.
type fleetBreaker struct {
	mu   sync.Mutex
	opts BreakerOptions
	dev  map[string]*deviceCells
}

// deviceCells is one device's spec-ordered cell list and resolutions.
type deviceCells struct {
	cells []int       // spec indices in spec order
	pos   map[int]int // spec index -> position in cells
	res   []cellOutcome
}

// newFleetBreaker indexes the spec's cells by device. Cells without a
// device label are outside the breaker's jurisdiction.
func newFleetBreaker(spec *Spec, opts BreakerOptions) *fleetBreaker {
	b := &fleetBreaker{opts: opts, dev: map[string]*deviceCells{}}
	for i, c := range spec.Cells {
		if c.Device == "" {
			continue
		}
		dc := b.dev[c.Device]
		if dc == nil {
			dc = &deviceCells{pos: map[int]int{}}
			b.dev[c.Device] = dc
		}
		dc.pos[i] = len(dc.cells)
		dc.cells = append(dc.cells, i)
		dc.res = append(dc.res, cellPending)
	}
	return b
}

// walkTo replays the state machine over positions [0, p) of dc. At
// positions the machine quarantines, any recorded outcome is ignored —
// a speculative execution's result does not feed the streak.
func (b *fleetBreaker) walkTo(dc *deviceCells, p int) breakerWalk {
	w := breakerWalk{opts: b.opts}
	for q := 0; q < p; q++ {
		if w.quarantine() {
			w.skip()
			continue
		}
		w.outcome(dc.res[q] == cellOK)
	}
	return w
}

// shouldSkip decides, if possible, whether spec cell i must be
// quarantined before executing it. It returns true only when every
// earlier cell on the device has resolved and the state machine says
// skip; the cell is then resolved as skipped. Any undecidable case
// returns false and the cell executes speculatively.
func (b *fleetBreaker) shouldSkip(device string, i int) bool {
	if b == nil || device == "" {
		return false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	dc := b.dev[device]
	p := dc.pos[i]
	for q := 0; q < p; q++ {
		if dc.res[q] == cellPending {
			return false
		}
	}
	w := b.walkTo(dc, p)
	if w.quarantine() {
		dc.res[p] = cellSkipped
		return true
	}
	return false
}

// resolve records cell i's executed outcome.
func (b *fleetBreaker) resolve(device string, i int, ok bool) {
	if b == nil || device == "" {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	dc := b.dev[device]
	if ok {
		dc.res[dc.pos[i]] = cellOK
	} else {
		dc.res[dc.pos[i]] = cellFailed
	}
}

// applyBreaker settles the report: every device's cells are walked in
// spec order, cells the machine quarantines have their (possibly
// speculative) results replaced by ErrQuarantined, and the report's
// failure/quarantine counters and per-device health are recomputed.
// The pass is a pure function of per-cell outcomes, so its verdicts —
// and therefore the whole report — are worker-count-independent.
func applyBreaker[R any](rep *Report[R], opts BreakerOptions) {
	byDev := map[string][]int{}
	for i, r := range rep.Results {
		if r.Cell.Device != "" {
			byDev[r.Cell.Device] = append(byDev[r.Cell.Device], i)
		}
	}
	devices := make([]string, 0, len(byDev))
	for d := range byDev {
		devices = append(devices, d)
	}
	sort.Strings(devices)

	rep.Health = rep.Health[:0]
	for _, dev := range devices {
		h := DeviceHealth{Device: dev, Cells: len(byDev[dev])}
		w := breakerWalk{opts: opts}
		for _, i := range byDev[dev] {
			r := &rep.Results[i]
			if r.Interrupted {
				// Abandoned by cancellation: the cell never resolved, so it
				// neither feeds the failure streak nor consumes a cooldown
				// slot — exactly how a resumed run, which re-executes it,
				// will walk this position.
				continue
			}
			if w.quarantine() {
				var zero R
				r.Value = zero
				r.Err = ErrQuarantined
				r.Quarantined = true
				// A speculative execution's attempt count would differ
				// from a live skip's; zero it so quarantined records are
				// identical either way. A speculative cache hit is
				// likewise discarded.
				r.Attempts = 0
				r.CacheHit = false
				h.Quarantined++
				w.skip()
				continue
			}
			r.Quarantined = false
			ok := r.Err == nil
			w.outcome(ok)
			if !ok {
				h.Failed++
			}
			if r.Attempts > 1 {
				h.Retries += r.Attempts - 1
			}
		}
		h.Open = w.quarantine()
		rep.Health = append(rep.Health, h)
	}

	// Recount the aggregates from the settled per-cell records.
	rep.Failed, rep.Quarantined, rep.Retried, rep.CacheHits = 0, 0, 0, 0
	for _, r := range rep.Results {
		if r.CacheHit {
			rep.CacheHits++
		}
		switch {
		case r.Interrupted:
			// Pending, not failed; counted in rep.Interrupted already.
		case r.Quarantined:
			rep.Quarantined++
		case r.Err != nil:
			rep.Failed++
		}
		if !r.Quarantined && !r.Interrupted && r.Attempts > 1 {
			rep.Retried += r.Attempts - 1
		}
	}
}
