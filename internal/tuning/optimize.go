package tuning

import (
	"fmt"

	"repro/internal/gpu"
	"repro/internal/harness"
	"repro/internal/litmus"
	"repro/internal/xrand"
)

// OptimizeConfig sizes the per-test environment search of Sec. 4.2
// ("Ideally, a test environment can be hyper-tuned per test and per
// device"): a random exploration phase followed by single-knob
// hill-climbing around the best candidate.
type OptimizeConfig struct {
	// ExploreRounds is the number of random environments sampled.
	ExploreRounds int
	// RefineRounds is the number of single-parameter mutations tried
	// around the incumbent.
	RefineRounds int
	// Iterations is kernel launches per candidate evaluation.
	Iterations int
	// Parallel selects the environment family.
	Parallel bool
	// Scale bounds the candidates.
	Scale harness.Scale
	// Seed drives the search.
	Seed uint64
}

// DefaultOptimizeConfig is sized for simulation-backed use.
func DefaultOptimizeConfig() OptimizeConfig {
	return OptimizeConfig{
		ExploreRounds: 16,
		RefineRounds:  16,
		Iterations:    4,
		Parallel:      true,
		Scale:         harness.DefaultScale(),
		Seed:          1,
	}
}

// OptimizedEnv is the search result.
type OptimizedEnv struct {
	// Env is the best environment found.
	Env harness.Params
	// Rate is its target-behavior rate (per simulated second).
	Rate float64
	// Kills is its target count during evaluation.
	Kills int
	// Evaluated counts candidate evaluations performed.
	Evaluated int
}

// Optimize searches for an environment maximizing the test's
// target-behavior rate on the device. For a mutant this is the death
// rate MC Mutants scores environments by; for a conformance test on a
// buggy platform it would be the bug reproduction rate.
func Optimize(test *litmus.Test, deviceName string, cfg OptimizeConfig) (*OptimizedEnv, error) {
	if cfg.ExploreRounds < 1 {
		return nil, fmt.Errorf("tuning: ExploreRounds=%d", cfg.ExploreRounds)
	}
	if cfg.Iterations < 1 {
		return nil, fmt.Errorf("tuning: Iterations=%d", cfg.Iterations)
	}
	prof, ok := gpu.ProfileByName(deviceName)
	if !ok {
		return nil, fmt.Errorf("tuning: unknown device %q", deviceName)
	}
	dev, err := gpu.NewDevice(prof, gpu.Bugs{})
	if err != nil {
		return nil, err
	}
	root := xrand.New(cfg.Seed)
	envRng := root.Split()
	evaluate := func(env harness.Params) (float64, int, error) {
		r, err := harness.NewRunner(dev, env)
		if err != nil {
			return 0, 0, err
		}
		res, err := r.Run(test, cfg.Iterations, root.Split())
		if err != nil {
			return 0, 0, err
		}
		return res.TargetRate(), res.TargetCount, nil
	}

	best := &OptimizedEnv{Rate: -1}
	for i := 0; i < cfg.ExploreRounds; i++ {
		env := harness.Random(envRng, cfg.Parallel, cfg.Scale)
		rate, kills, err := evaluate(env)
		if err != nil {
			return nil, err
		}
		best.Evaluated++
		if rate > best.Rate {
			best.Env, best.Rate, best.Kills = env, rate, kills
		}
	}
	for i := 0; i < cfg.RefineRounds; i++ {
		cand := neighbor(best.Env, envRng, cfg.Scale)
		rate, kills, err := evaluate(cand)
		if err != nil {
			return nil, err
		}
		best.Evaluated++
		if rate > best.Rate {
			best.Env, best.Rate, best.Kills = cand, rate, kills
		}
	}
	if best.Rate < 0 {
		best.Rate = 0
	}
	return best, nil
}

// neighbor re-draws one knob of the environment, keeping the result
// valid.
func neighbor(p harness.Params, rng *xrand.Rand, scale harness.Scale) harness.Params {
	fresh := harness.Random(rng, p.Parallel, scale)
	out := p
	switch rng.Intn(12) {
	case 0:
		out.TestingWorkgroups = fresh.TestingWorkgroups
		if out.MaxWorkgroups < out.TestingWorkgroups {
			out.MaxWorkgroups = out.TestingWorkgroups
		}
	case 1:
		out.MaxWorkgroups = out.TestingWorkgroups + rng.Intn(scale.MaxStressWG+1)
	case 2:
		out.WorkgroupSize = fresh.WorkgroupSize
	case 3:
		out.ShufflePct = fresh.ShufflePct
	case 4:
		out.BarrierPct = fresh.BarrierPct
	case 5:
		out.MemStressPct = fresh.MemStressPct
	case 6:
		out.MemStressIters = fresh.MemStressIters
		out.MemStressPattern = fresh.MemStressPattern
	case 7:
		out.PreStressPct = fresh.PreStressPct
		out.PreStressIters = fresh.PreStressIters
		out.PreStressPattern = fresh.PreStressPattern
	case 8:
		out.ScratchMemWords = fresh.ScratchMemWords
		out.StressLineSize = fresh.StressLineSize
		out.StressTargetLines = fresh.StressTargetLines
	case 9:
		out.StressStrategy = fresh.StressStrategy
	case 10:
		out.MemStride = fresh.MemStride
		out.MemLocOffset = fresh.MemLocOffset
	case 11:
		out.MemLocOffset = 0
		if out.MemStride > 1 {
			out.MemLocOffset = rng.Intn(out.MemStride)
		}
	}
	if err := out.Validate(); err != nil {
		return fresh // a safe, valid fallback
	}
	return out
}
