// Package stats provides the statistical tools the evaluation uses:
// summary statistics, the Pearson correlation coefficient between
// mutant death rates and real-bug observation rates (Table 4), and the
// Student's t-test significance of a correlation (the paper reports
// the probability of the observed PCCs arising by chance as below
// 10^-6 percent).
package stats

import (
	"fmt"
	"math"
)

// Mean returns the arithmetic mean; it returns 0 for empty input.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Min returns the minimum; it returns 0 for empty input.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum; it returns 0 for empty input.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// MinPositive returns the smallest strictly positive value and whether
// one exists.
func MinPositive(xs []float64) (float64, bool) {
	m, ok := 0.0, false
	for _, x := range xs {
		if x > 0 && (!ok || x < m) {
			m, ok = x, true
		}
	}
	return m, ok
}

// Variance returns the population variance; 0 for fewer than 2 points.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	mu := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - mu
		s += d * d
	}
	return s / float64(len(xs))
}

// Pearson computes the Pearson correlation coefficient between two
// equal-length samples. It errors on mismatched lengths, fewer than 3
// points, or zero variance in either sample (the PCC is undefined).
func Pearson(xs, ys []float64) (float64, error) {
	if len(xs) != len(ys) {
		return 0, fmt.Errorf("stats: mismatched lengths %d and %d", len(xs), len(ys))
	}
	n := len(xs)
	if n < 3 {
		return 0, fmt.Errorf("stats: need at least 3 points, have %d", n)
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := 0; i < n; i++ {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0, fmt.Errorf("stats: zero variance sample")
	}
	r := sxy / math.Sqrt(sxx*syy)
	// Clamp tiny floating excursions outside [-1, 1].
	if r > 1 {
		r = 1
	}
	if r < -1 {
		r = -1
	}
	return r, nil
}

// PearsonPValue returns the two-sided p-value for the null hypothesis
// of zero correlation, using the exact t-distribution with n-2 degrees
// of freedom: t = r*sqrt((n-2)/(1-r^2)).
func PearsonPValue(r float64, n int) (float64, error) {
	if n < 3 {
		return 0, fmt.Errorf("stats: need at least 3 points, have %d", n)
	}
	if r <= -1 || r >= 1 {
		return 0, nil // perfectly correlated: p vanishes
	}
	df := float64(n - 2)
	t := r * math.Sqrt(df/(1-r*r))
	return studentTTwoSided(t, df), nil
}

// studentTTwoSided returns P(|T| >= |t|) for T ~ t(df), via the
// regularized incomplete beta function:
// P = I_{df/(df+t^2)}(df/2, 1/2).
func studentTTwoSided(t, df float64) float64 {
	x := df / (df + t*t)
	return regIncBeta(df/2, 0.5, x)
}

// regIncBeta computes the regularized incomplete beta function
// I_x(a, b) using the continued-fraction expansion (Numerical Recipes
// style), accurate to ~1e-12 for the parameter ranges used here.
func regIncBeta(a, b, x float64) float64 {
	switch {
	case x <= 0:
		return 0
	case x >= 1:
		return 1
	}
	lbeta := lgamma(a+b) - lgamma(a) - lgamma(b)
	front := math.Exp(lbeta + a*math.Log(x) + b*math.Log(1-x))
	if x < (a+1)/(a+b+2) {
		return front * betaCF(a, b, x) / a
	}
	return 1 - front*betaCF(b, a, 1-x)/b
}

func lgamma(x float64) float64 {
	v, _ := math.Lgamma(x)
	return v
}

// betaCF evaluates the continued fraction for the incomplete beta
// function by the modified Lentz method.
func betaCF(a, b, x float64) float64 {
	const (
		maxIter = 300
		eps     = 1e-14
		tiny    = 1e-300
	)
	qab, qap, qam := a+b, a+1, a-1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < tiny {
		d = tiny
	}
	d = 1 / d
	h := d
	for m := 1; m <= maxIter; m++ {
		fm := float64(m)
		m2 := 2 * fm
		aa := fm * (b - fm) * x / ((qam + m2) * (a + m2))
		d = 1 + aa*d
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = 1 + aa/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		h *= d * c
		aa = -(a + fm) * (qab + fm) * x / ((a + m2) * (qap + m2))
		d = 1 + aa*d
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = 1 + aa/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return h
}
