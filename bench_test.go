package repro

// The benchmarks below regenerate every table and figure of the paper
// at simulation scale, one benchmark per experiment. Quantities of
// interest (mutation scores, death rates, correlation coefficients)
// are attached to the benchmark output as custom metrics, so
// `go test -bench=. -benchmem` doubles as the experiment driver; see
// EXPERIMENTS.md for the paper-vs-measured discussion.

import (
	"runtime"
	"testing"
	"time"

	"repro/internal/confidence"
	"repro/internal/gpu"
	"repro/internal/harness"
	"repro/internal/litmus"
	"repro/internal/mutation"
	"repro/internal/report"
	"repro/internal/tuning"
	"repro/internal/wgsl"
	"repro/internal/xrand"
)

// BenchmarkFig1LitmusPrograms renders the two motivating litmus tests.
func BenchmarkFig1LitmusPrograms(b *testing.B) {
	s := mutation.MustGenerate()
	for i := 0; i < b.N; i++ {
		if out := report.Fig1(s); len(out) == 0 {
			b.Fatal("empty rendering")
		}
	}
}

// BenchmarkFig2Executions reconstructs and checks the disallowed
// candidate executions of every conformance test, including the
// happens-before cycles of Fig. 2.
func BenchmarkFig2Executions(b *testing.B) {
	s := mutation.MustGenerate()
	for i := 0; i < b.N; i++ {
		for _, t := range s.Conformance {
			x, err := t.TargetExecution()
			if err != nil {
				b.Fatal(err)
			}
			if v := x.Check(t.Model); v.Allowed {
				b.Fatalf("%s: conformance target allowed", t.Name)
			}
		}
	}
}

// BenchmarkFig3MutatorTemplates renders the mutator templates.
func BenchmarkFig3MutatorTemplates(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if out := report.Fig3(); len(out) == 0 {
			b.Fatal("empty rendering")
		}
	}
}

// BenchmarkTable2SuiteGeneration generates the full suite and checks
// Table 2's totals (20 conformance tests, 32 mutants).
func BenchmarkTable2SuiteGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s, err := mutation.Generate()
		if err != nil {
			b.Fatal(err)
		}
		if len(s.Conformance) != 20 || len(s.Mutants) != 32 {
			b.Fatalf("suite %d/%d", len(s.Conformance), len(s.Mutants))
		}
	}
}

// BenchmarkTable3Devices instantiates the fleet and runs a trivial
// kernel on each device.
func BenchmarkTable3Devices(b *testing.B) {
	spec := gpu.LaunchSpec{
		WorkgroupSize: 1, Workgroups: 2, MemWords: 1,
		Programs: []gpu.Program{
			{{Op: gpu.OpStore, Addr: 0, Imm: 1}},
			{{Op: gpu.OpLoad, Addr: 0, Reg: 0}},
		},
	}
	rng := xrand.New(1)
	for i := 0; i < b.N; i++ {
		for _, p := range gpu.Profiles() {
			d, err := gpu.NewDevice(p, gpu.Bugs{})
			if err != nil {
				b.Fatal(err)
			}
			if _, err := d.Run(spec, rng); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// pteEnv is the stressed parallel environment used by the experiment
// benchmarks.
func pteEnv() harness.Params {
	p := harness.PTEBaseline(8, 16)
	p.MaxWorkgroups = p.TestingWorkgroups + 4
	p.MemStressPct = 100
	p.MemStressIters = 8
	p.PreStressPct = 80
	p.PreStressIters = 2
	p.MemStride = 2
	p.MemLocOffset = 1
	return p
}

// BenchmarkFig4PTEAssignment runs one PTE iteration of the MP mutant,
// exercising the co-prime permutation thread/instance assignment.
func BenchmarkFig4PTEAssignment(b *testing.B) {
	s := mutation.MustGenerate()
	test, _ := s.ByName("MP")
	prof, _ := gpu.ProfileByName("AMD")
	dev, err := gpu.NewDevice(prof, gpu.Bugs{})
	if err != nil {
		b.Fatal(err)
	}
	r, err := harness.NewRunner(dev, pteEnv())
	if err != nil {
		b.Fatal(err)
	}
	rng := xrand.New(1)
	b.ReportAllocs()
	instances := 0
	for i := 0; i < b.N; i++ {
		res, err := r.Run(test, 1, rng)
		if err != nil {
			b.Fatal(err)
		}
		instances = res.Instances
	}
	b.ReportMetric(float64(instances), "instances/launch")
}

// fig5Dataset builds the scaled tuning dataset shared by the Fig. 5
// and Fig. 6 benchmarks.
var fig5DS *tuning.Dataset

func fig5Dataset(b *testing.B) *tuning.Dataset {
	b.Helper()
	if fig5DS != nil {
		return fig5DS
	}
	suite := mutation.MustGenerate()
	cfg := tuning.SmallConfig()
	cfg.Environments = 3
	cfg.SITEIterations = 12
	cfg.PTEIterations = 2
	ds, err := tuning.Run(cfg, suite.Mutants, nil)
	if err != nil {
		b.Fatal(err)
	}
	fig5DS = ds
	return ds
}

// BenchmarkFig5MutationScores runs the scaled tuning study and reports
// the aggregate mutation scores and death rates per family.
func BenchmarkFig5MutationScores(b *testing.B) {
	var ds *tuning.Dataset
	for i := 0; i < b.N; i++ {
		fig5DS = nil
		ds = fig5Dataset(b)
	}
	for _, fam := range []string{"SITE-Baseline", "SITE", "PTE-Baseline", "PTE"} {
		killed, total := ds.MutationScore(fam, "", "")
		rate := ds.AvgDeathRate(fam, "", "")
		b.ReportMetric(100*float64(killed)/float64(total), fam+"-score%")
		b.ReportMetric(rate, fam+"-kills/s")
	}
	if out := report.Fig5(ds); len(out) == 0 {
		b.Fatal("empty Fig5 rendering")
	}
}

// BenchmarkFig6BudgetSweep merges environments per test (Algorithm 1)
// across the budget axis at both reproducibility targets and reports
// the PTE mutation score at the largest budget.
func BenchmarkFig6BudgetSweep(b *testing.B) {
	ds := fig5Dataset(b)
	tables := ds.RateTables("PTE")
	budgets := confidence.PowersOfTwoBudgets(-10, 6)
	targets := []float64{0.95, 0.99999}
	var points []confidence.SweepPoint
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		points, err = confidence.BudgetSweep(tables, ds.Devices(), targets, budgets)
		if err != nil {
			b.Fatal(err)
		}
	}
	best := points[len(points)-1]
	b.ReportMetric(100*best.Score(), "PTE-score%@max-budget")
	if out := report.Fig6(points); len(out) == 0 {
		b.Fatal("empty Fig6 rendering")
	}
}

// BenchmarkTable4Correlation runs the three bug-correlation cases and
// reports each Pearson coefficient.
func BenchmarkTable4Correlation(b *testing.B) {
	suite := mutation.MustGenerate()
	for _, c := range tuning.PaperBugCases() {
		b.Run(c.Name, func(b *testing.B) {
			cfg := tuning.SmallCorrelationConfig()
			cfg.Environments = 12
			cfg.Iterations = 3
			var res *tuning.CorrelationResult
			for i := 0; i < b.N; i++ {
				var err error
				res, err = tuning.Correlate(c, suite, cfg)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(res.PCC, "PCC")
			b.ReportMetric(float64(res.BugObservedIn), "bug-envs")
		})
	}
}

// BenchmarkSection52HeadlineRatio measures the PTE/SITE death-rate
// ratio on the MP mutant (the paper's headline 2731x average).
func BenchmarkSection52HeadlineRatio(b *testing.B) {
	suite := mutation.MustGenerate()
	test, _ := suite.ByName("MP")
	prof, _ := gpu.ProfileByName("AMD")
	dev, err := gpu.NewDevice(prof, gpu.Bugs{})
	if err != nil {
		b.Fatal(err)
	}
	site := harness.SITEBaseline()
	site.MaxWorkgroups = 12
	site.MemStressPct = 100
	site.MemStressIters = 12
	site.PreStressPct = 100
	site.PreStressIters = 3
	site.MemStride = 2
	site.MemLocOffset = 1
	var pteRate, siteRate float64
	for i := 0; i < b.N; i++ {
		rng := xrand.New(9)
		pr, err := harness.NewRunner(dev, pteEnv())
		if err != nil {
			b.Fatal(err)
		}
		pres, err := pr.Run(test, 4, rng)
		if err != nil {
			b.Fatal(err)
		}
		sr, err := harness.NewRunner(dev, site)
		if err != nil {
			b.Fatal(err)
		}
		sres, err := sr.Run(test, 40, rng)
		if err != nil {
			b.Fatal(err)
		}
		pteRate, siteRate = pres.TargetRate(), sres.TargetRate()
	}
	b.ReportMetric(pteRate, "PTE-kills/s")
	b.ReportMetric(siteRate, "SITE-kills/s")
	if siteRate > 0 {
		b.ReportMetric(pteRate/siteRate, "ratio")
	}
}

// BenchmarkBugDiscovery runs the MP-relacq conformance test through
// the defective toolchain (the Sec. 1.1 discovery) and reports the
// violation rate, the analog of the paper's 10.4 violations/s.
func BenchmarkBugDiscovery(b *testing.B) {
	suite := mutation.MustGenerate()
	test, _ := suite.ByName("MP-relacq")
	prof, _ := gpu.ProfileByName("AMD")
	dev, err := gpu.NewDevice(prof, gpu.Bugs{})
	if err != nil {
		b.Fatal(err)
	}
	r, err := harness.NewRunner(dev, pteEnv())
	if err != nil {
		b.Fatal(err)
	}
	r.Lower = wgsl.NewToolchain(prof, wgsl.DriverFenceDropping).LowerFunc()
	rng := xrand.New(3)
	var rate float64
	for i := 0; i < b.N; i++ {
		res, err := r.Run(test, 4, rng)
		if err != nil {
			b.Fatal(err)
		}
		rate = res.ViolationRate()
	}
	b.ReportMetric(rate, "violations/s")
}

// BenchmarkCampaign measures the campaign scheduler: the same tuning
// sweep runs serially and on an 8-worker pool, and the observed
// speedup is attached as a metric. The datasets are verified identical
// before any time is reported — parallelism that changed the science
// would be a bug, not a speedup. The achievable speedup tracks
// GOMAXPROCS (reported alongside); on a single-core host the two runs
// tie and the metric documents that honestly.
func BenchmarkCampaign(b *testing.B) {
	suite := mutation.MustGenerate()
	var tests []*litmus.Test
	for _, name := range []string{"CoRR-mutant", "MP", "SB", "LB", "MP-relacq"} {
		t, ok := suite.ByName(name)
		if !ok {
			b.Fatalf("unknown test %q", name)
		}
		tests = append(tests, t)
	}
	cfg := tuning.SmallConfig()
	cfg.Environments = 2
	cfg.SITEIterations = 10
	cfg.PTEIterations = 3
	cfg.Devices = []string{"AMD", "Intel", "NVIDIA", "M1"}
	run := func(workers int) (*tuning.Dataset, time.Duration) {
		start := time.Now()
		ds, err := tuning.RunCampaign(cfg, tests, tuning.RunOptions{Workers: workers})
		if err != nil {
			b.Fatal(err)
		}
		return ds, time.Since(start)
	}
	var serial, parallel time.Duration
	for i := 0; i < b.N; i++ {
		dsSerial, ts := run(1)
		dsParallel, tp := run(8)
		if len(dsSerial.Records) != len(dsParallel.Records) {
			b.Fatal("worker count changed the record count")
		}
		for j := range dsSerial.Records {
			if dsSerial.Records[j] != dsParallel.Records[j] {
				b.Fatalf("record %d differs between worker counts", j)
			}
		}
		serial += ts
		parallel += tp
	}
	b.ReportMetric(serial.Seconds()/float64(b.N), "serial-s")
	b.ReportMetric(parallel.Seconds()/float64(b.N), "parallel8-s")
	b.ReportMetric(serial.Seconds()/parallel.Seconds(), "speedup")
	b.ReportMetric(float64(runtime.GOMAXPROCS(0)), "gomaxprocs")
}

// BenchmarkAxiomaticChecker measures outcome classification over the
// whole suite — the analysis cost per distinct outcome.
func BenchmarkAxiomaticChecker(b *testing.B) {
	suite := mutation.MustGenerate()
	outcomes := make([]litmus.Outcome, 0, len(suite.Conformance))
	tests := suite.All()
	for _, t := range tests {
		outcomes = append(outcomes, t.TargetOutcome())
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for j, t := range tests {
			if _, err := t.Classify(outcomes[j]); err != nil {
				b.Fatal(err)
			}
		}
	}
}
