package mm

import (
	"strings"
	"testing"
)

// b is a small execution builder for tests.
type b struct {
	x     Execution
	index map[int]int
}

func build() *b { return &b{index: map[int]int{}} }

func (bb *b) ev(thread int, kind Kind, loc Loc, rv, wv Val, label string) *b {
	id := len(bb.x.Events)
	bb.x.Events = append(bb.x.Events, Event{
		ID: id, Thread: thread, Index: bb.index[thread], Kind: kind,
		Loc: loc, ReadVal: rv, WriteVal: wv, Label: label,
	})
	bb.index[thread]++
	return bb
}

func (bb *b) read(t int, l Loc, v Val, label string) *b  { return bb.ev(t, Read, l, v, 0, label) }
func (bb *b) write(t int, l Loc, v Val, label string) *b { return bb.ev(t, Write, l, 0, v, label) }
func (bb *b) rmw(t int, l Loc, rv, wv Val, label string) *b {
	return bb.ev(t, RMW, l, rv, wv, label)
}
func (bb *b) fence(t int, label string) *b { return bb.ev(t, Fence, 0, 0, 0, label) }
func (bb *b) done() *Execution             { return &bb.x }

const x, y = Loc(0), Loc(1)

// corr builds the CoRR execution of Fig. 2a: thread 0 reads x=1 then x=0,
// thread 1 writes x=1.
func corr(r0, r1 Val) *Execution {
	return build().
		read(0, x, r0, "a").
		read(0, x, r1, "b").
		write(1, x, 1, "c").
		done()
}

func TestCoRRDisallowedUnderSCPerLocation(t *testing.T) {
	exec := corr(1, 0)
	if err := exec.Validate(); err != nil {
		t.Fatal(err)
	}
	v := exec.Check(SCPerLocation)
	if v.Allowed {
		t.Fatal("CoRR weak outcome allowed under SC-per-location")
	}
	if !v.Consistent {
		t.Fatal("CoRR execution should be value-consistent")
	}
	explain := exec.ExplainCycle(v.Cycle)
	if explain == "" {
		t.Fatal("no cycle explanation for disallowed execution")
	}
	// The canonical cycle is b -fr-> c -rf-> a -po-loc-> b; any rotation
	// or equivalent cycle must mention fr and rf.
	if !strings.Contains(explain, "fr") || !strings.Contains(explain, "rf") {
		t.Fatalf("cycle explanation %q missing fr/rf", explain)
	}
}

func TestCoRRSequentialOutcomesAllowed(t *testing.T) {
	for _, c := range []struct{ r0, r1 Val }{{0, 0}, {0, 1}, {1, 1}} {
		v := corr(c.r0, c.r1).Check(SCPerLocation)
		if !v.Allowed {
			t.Errorf("CoRR r0=%d r1=%d should be allowed", c.r0, c.r1)
		}
	}
}

func TestCoRRMutantAllowed(t *testing.T) {
	// Mutator 1 swaps a and b in program order; the once-forbidden values
	// are then explainable by interleaving b, c, a.
	exec := build().
		read(0, x, 0, "b").
		read(0, x, 1, "a").
		write(1, x, 1, "c").
		done()
	v := exec.Check(SCPerLocation)
	if !v.Allowed {
		t.Fatal("mutated CoRR outcome should be allowed under SC-per-location")
	}
	if v2 := exec.Check(SC); !v2.Allowed {
		t.Fatal("mutated CoRR outcome is even SC (order b,c,a)")
	}
}

// mp builds the two-location message passing execution: thread 0 writes
// x=1 then y=1; thread 1 reads y then x.
func mp(ry, rx Val) *Execution {
	return build().
		write(0, x, 1, "a").
		write(0, y, 1, "b").
		read(1, y, ry, "c").
		read(1, x, rx, "d").
		done()
}

func TestMPWeakBehaviorAllowedUnderCoherence(t *testing.T) {
	exec := mp(1, 0) // saw the flag, missed the data
	if v := exec.Check(SCPerLocation); !v.Allowed {
		t.Fatal("MP weak outcome must be allowed under SC-per-location")
	}
	if v := exec.Check(RelAcqSCPerLocation); !v.Allowed {
		t.Fatal("MP weak outcome must be allowed without fences even under rel-acq model")
	}
	if v := exec.Check(SC); v.Allowed {
		t.Fatal("MP weak outcome must be forbidden under SC")
	}
}

// mpRelAcq builds Fig. 2b: MP with release/acquire fences on both sides.
func mpRelAcq(ry, rx Val) *Execution {
	return build().
		write(0, x, 1, "a").
		fence(0, "b").
		write(0, y, 1, "c").
		read(1, y, ry, "d").
		fence(1, "e").
		read(1, x, rx, "f").
		done()
}

func TestMPRelAcqDisallowed(t *testing.T) {
	exec := mpRelAcq(1, 0)
	v := exec.Check(RelAcqSCPerLocation)
	if v.Allowed {
		t.Fatal("MP-relacq weak outcome allowed under rel-acq-SC-per-location")
	}
	explain := exec.ExplainCycle(v.Cycle)
	if !strings.Contains(explain, "po;sw;po") {
		t.Fatalf("cycle %q should use the po;sw;po edge", explain)
	}
	// Under plain coherence the same outcome is fine.
	if v := exec.Check(SCPerLocation); !v.Allowed {
		t.Fatal("MP-relacq outcome must be allowed under plain SC-per-location")
	}
}

func TestMPRelAcqStrongOutcomesAllowed(t *testing.T) {
	for _, c := range []struct{ ry, rx Val }{{0, 0}, {0, 1}, {1, 1}} {
		if v := mpRelAcq(c.ry, c.rx).Check(RelAcqSCPerLocation); !v.Allowed {
			t.Errorf("MP-relacq ry=%d rx=%d should be allowed", c.ry, c.rx)
		}
	}
}

func TestMPRelAcqFenceRemovalAllowsWeakOutcome(t *testing.T) {
	// Removing either fence (Mutator 3's disruption) removes sw and the
	// weak outcome becomes legal.
	noRel := build().
		write(0, x, 1, "a").
		write(0, y, 1, "c").
		read(1, y, 1, "d").
		fence(1, "e").
		read(1, x, 0, "f").
		done()
	if v := noRel.Check(RelAcqSCPerLocation); !v.Allowed {
		t.Fatal("removing the release fence must allow the weak outcome")
	}
	noAcq := build().
		write(0, x, 1, "a").
		fence(0, "b").
		write(0, y, 1, "c").
		read(1, y, 1, "d").
		read(1, x, 0, "f").
		done()
	if v := noAcq.Check(RelAcqSCPerLocation); !v.Allowed {
		t.Fatal("removing the acquire fence must allow the weak outcome")
	}
}

func TestSWRequiresReadsFromAcrossFences(t *testing.T) {
	// If thread 1 misses the flag (reads y=0), the fences do not
	// synchronize and reading x=0 is legal.
	exec := mpRelAcq(0, 0)
	if v := exec.Check(RelAcqSCPerLocation); !v.Allowed {
		t.Fatal("fences without an rf link must not synchronize")
	}
}

func TestStoreBufferingAllowedUnderCoherence(t *testing.T) {
	// SB: both threads store then load the other location; both loads
	// seeing 0 is the classic TSO relaxation, allowed by coherence.
	exec := build().
		write(0, x, 1, "a").
		read(0, y, 0, "b").
		write(1, y, 2, "c").
		read(1, x, 0, "d").
		done()
	if v := exec.Check(SCPerLocation); !v.Allowed {
		t.Fatal("SB weak outcome must be allowed under SC-per-location")
	}
	if v := exec.Check(SC); v.Allowed {
		t.Fatal("SB weak outcome must be forbidden under SC")
	}
}

func TestCoWWObservedOrderMustRespectPO(t *testing.T) {
	// Thread 0 writes x=1 then x=2; a fixed coherence order 2,1 (i.e.
	// final value 1) contradicts po-loc.
	exec := build().
		write(0, x, 1, "a").
		write(0, x, 2, "b").
		done()
	exec.CoOrder = map[Loc][]int{x: {1, 0}}
	if v := exec.Check(SCPerLocation); v.Allowed {
		t.Fatal("co contradicting po-loc must be disallowed")
	}
	exec.CoOrder = map[Loc][]int{x: {0, 1}}
	if v := exec.Check(SCPerLocation); !v.Allowed {
		t.Fatal("co agreeing with po-loc must be allowed")
	}
}

func TestExistentialCoSearch(t *testing.T) {
	// Three writes to x from three threads, no observer: every outcome is
	// justifiable by some co, so Check must find a witness.
	exec := build().
		write(0, x, 1, "a").
		write(1, x, 2, "b").
		write(2, x, 3, "c").
		done()
	v := exec.Check(SCPerLocation)
	if !v.Allowed {
		t.Fatal("independent writes must be allowed")
	}
	if len(v.Co[x]) != 3 {
		t.Fatalf("witness co should order 3 writes, got %v", v.Co)
	}
}

func TestRMWAtomicity(t *testing.T) {
	// Two RMWs on x both reading 0 would mean both incremented from the
	// initial state: under coherence one must from-read the other while
	// also preceding it in co — a cycle.
	exec := build().
		rmw(0, x, 0, 1, "a").
		rmw(1, x, 0, 2, "b").
		done()
	if v := exec.Check(SCPerLocation); v.Allowed {
		t.Fatal("two RMWs reading the initial value must be disallowed")
	}
	// One reading the other's result is fine.
	exec2 := build().
		rmw(0, x, 0, 1, "a").
		rmw(1, x, 1, 2, "b").
		done()
	if v := exec2.Check(SCPerLocation); !v.Allowed {
		t.Fatal("chained RMWs must be allowed")
	}
}

func TestInconsistentReadDetected(t *testing.T) {
	exec := build().
		read(0, x, 7, "a"). // value 7 never written
		write(1, x, 1, "b").
		done()
	if err := exec.Validate(); err == nil {
		t.Fatal("Validate should reject a read of a never-written value")
	}
	v := exec.Check(SCPerLocation)
	if v.Consistent {
		t.Fatal("Check should flag value inconsistency")
	}
}

func TestValidateRejectsDuplicateWriteValues(t *testing.T) {
	exec := build().
		write(0, x, 1, "a").
		write(1, x, 1, "b").
		done()
	if err := exec.Validate(); err == nil {
		t.Fatal("duplicate write values must be rejected")
	}
}

func TestValidateRejectsZeroWrite(t *testing.T) {
	exec := &Execution{Events: []Event{{ID: 0, Kind: Write, Loc: x, WriteVal: 0}}}
	if err := exec.Validate(); err == nil {
		t.Fatal("writing the reserved value 0 must be rejected")
	}
}

func TestValidateRejectsBadIDs(t *testing.T) {
	exec := &Execution{Events: []Event{{ID: 5, Kind: Write, Loc: x, WriteVal: 1}}}
	if err := exec.Validate(); err == nil {
		t.Fatal("mismatched IDs must be rejected")
	}
}

func TestValidateRejectsBadCoOrder(t *testing.T) {
	exec := build().
		write(0, x, 1, "a").
		write(1, x, 2, "b").
		done()
	exec.CoOrder = map[Loc][]int{x: {0}}
	if err := exec.Validate(); err == nil {
		t.Fatal("short co order must be rejected")
	}
	exec.CoOrder = map[Loc][]int{x: {0, 0}}
	if err := exec.Validate(); err == nil {
		t.Fatal("duplicate co entries must be rejected")
	}
}

func TestThreadsAndLocations(t *testing.T) {
	exec := mp(1, 0)
	if got := exec.Threads(); got != 2 {
		t.Fatalf("Threads() = %d, want 2", got)
	}
	locs := exec.Locations()
	if len(locs) != 2 || locs[0] != x || locs[1] != y {
		t.Fatalf("Locations() = %v", locs)
	}
}

func TestRenderAndString(t *testing.T) {
	exec := mpRelAcq(1, 0)
	out := exec.Render()
	for _, want := range []string{"Thread 0:", "Thread 1:", "a: W x=1", "b: F", "f: R x=0"} {
		if !strings.Contains(out, want) {
			t.Errorf("Render() missing %q in:\n%s", want, out)
		}
	}
	e := Event{ID: 3, Kind: RMW, Loc: y, ReadVal: 1, WriteVal: 2}
	if got := e.String(); got != "e3: RMW y=1->2" {
		t.Fatalf("Event.String() = %q", got)
	}
}

func TestKindPredicates(t *testing.T) {
	cases := []struct {
		k      Kind
		reads  bool
		writes bool
	}{
		{Read, true, false}, {Write, false, true}, {RMW, true, true}, {Fence, false, false},
	}
	for _, c := range cases {
		if c.k.ReadsMemory() != c.reads || c.k.WritesMemory() != c.writes {
			t.Errorf("%v predicates wrong", c.k)
		}
	}
}

func TestMCSAndEdgeStrings(t *testing.T) {
	if SC.String() != "SC" || SCPerLocation.String() != "SC-per-location" ||
		RelAcqSCPerLocation.String() != "rel-acq-SC-per-location" {
		t.Fatal("MCS names diverge from paper")
	}
	for k, want := range map[EdgeKind]string{
		EdgePO: "po", EdgePOLoc: "po-loc", EdgeRF: "rf", EdgeCO: "co",
		EdgeFR: "fr", EdgeSW: "sw", EdgePOSWPO: "po;sw;po",
	} {
		if k.String() != want {
			t.Errorf("EdgeKind %d = %q, want %q", int(k), k.String(), want)
		}
	}
}

func TestCloneIsDeep(t *testing.T) {
	exec := corr(1, 0)
	exec.CoOrder = map[Loc][]int{x: {2}}
	c := exec.Clone()
	c.Events[0].ReadVal = 99
	c.CoOrder[x][0] = 7
	if exec.Events[0].ReadVal == 99 || exec.CoOrder[x][0] == 7 {
		t.Fatal("Clone shares state with original")
	}
}

func TestSCStrongerThanCoherence(t *testing.T) {
	// Every SC-allowed execution in our catalog must also be
	// coherence-allowed (SC refines SC-per-location).
	execs := []*Execution{corr(0, 0), corr(0, 1), corr(1, 1), mp(0, 0), mp(1, 1), mp(0, 1)}
	for i, exec := range execs {
		sc := exec.Check(SC)
		coh := exec.Check(SCPerLocation)
		if sc.Allowed && !coh.Allowed {
			t.Errorf("execution %d: SC-allowed but coherence-forbidden", i)
		}
	}
}

func BenchmarkCheckCoRR(bch *testing.B) {
	exec := corr(1, 0)
	for i := 0; i < bch.N; i++ {
		exec.Check(SCPerLocation)
	}
}

func BenchmarkCheckMPRelAcq(bch *testing.B) {
	exec := mpRelAcq(1, 0)
	for i := 0; i < bch.N; i++ {
		exec.Check(RelAcqSCPerLocation)
	}
}

func TestCoLastPinsFinalWrite(t *testing.T) {
	// CoWW with the final value pinned to the first write: disallowed.
	exec := build().
		write(0, x, 1, "a").
		write(0, x, 2, "b").
		done()
	exec.CoLast = map[Loc]int{x: 0} // final value is a's
	if v := exec.Check(SCPerLocation); v.Allowed {
		t.Fatal("co-last contradicting po-loc must be disallowed")
	}
	exec.CoLast = map[Loc]int{x: 1} // final value is b's
	if v := exec.Check(SCPerLocation); !v.Allowed {
		t.Fatal("co-last agreeing with po-loc must be allowed")
	}
}

func TestCoLastContradictsFixedCoOrder(t *testing.T) {
	exec := build().
		write(0, x, 1, "a").
		write(1, x, 2, "b").
		done()
	exec.CoOrder = map[Loc][]int{x: {0, 1}}
	exec.CoLast = map[Loc]int{x: 0}
	if v := exec.Check(SCPerLocation); v.Allowed {
		t.Fatal("fixed co ending elsewhere than CoLast must have no witness")
	}
}

func TestCoLastSingleWriteMismatch(t *testing.T) {
	// CoLast pointing at a non-existent final writer for a single-write
	// location leaves no candidate co.
	exec := build().
		write(0, x, 1, "a").
		write(0, y, 2, "b").
		done()
	exec.CoLast = map[Loc]int{x: 1} // event 1 writes y, not x
	if err := exec.Validate(); err == nil {
		t.Fatal("Validate must reject CoLast naming a write to another location")
	}
}

func TestCoLastValidate(t *testing.T) {
	exec := build().
		write(0, x, 1, "a").
		done()
	exec.CoLast = map[Loc]int{x: 0}
	if err := exec.Validate(); err != nil {
		t.Fatal(err)
	}
	exec.CoLast = map[Loc]int{x: 99}
	if err := exec.Validate(); err == nil {
		t.Fatal("Validate must reject out-of-range CoLast")
	}
}

// ---- TSO model tests ----

func TestTSOAllowsStoreBuffering(t *testing.T) {
	exec := build().
		write(0, x, 1, "a").
		read(0, y, 0, "b").
		write(1, y, 2, "c").
		read(1, x, 0, "d").
		done()
	if v := exec.Check(TSO); !v.Allowed {
		t.Fatal("SB weak outcome must be allowed under TSO")
	}
}

func TestTSOForbidsMessagePassing(t *testing.T) {
	if v := mp(1, 0).Check(TSO); v.Allowed {
		t.Fatal("MP weak outcome must be forbidden under TSO")
	}
}

func TestTSOForbidsLoadBuffering(t *testing.T) {
	exec := build().
		read(0, x, 2, "a").
		write(0, y, 1, "b").
		read(1, y, 1, "c").
		write(1, x, 2, "d").
		done()
	if v := exec.Check(TSO); v.Allowed {
		t.Fatal("LB weak outcome must be forbidden under TSO")
	}
}

func TestTSOForbidsCoherenceViolations(t *testing.T) {
	if v := corr(1, 0).Check(TSO); v.Allowed {
		t.Fatal("CoRR violation must be forbidden under TSO")
	}
}

func TestTSOFenceRestoresStoreLoadOrder(t *testing.T) {
	// SB with fences between each thread's store and load: forbidden.
	exec := build().
		write(0, x, 1, "a").
		fence(0, "f0").
		read(0, y, 0, "b").
		write(1, y, 2, "c").
		fence(1, "f1").
		read(1, x, 0, "d").
		done()
	if v := exec.Check(TSO); v.Allowed {
		t.Fatal("fenced SB must be forbidden under TSO")
	}
}

func TestTSORMWOrdersLikeFence(t *testing.T) {
	// SB where each "load" is an RMW: atomics drain the store buffer,
	// so both reading the initial value is forbidden.
	exec := build().
		write(0, x, 1, "a").
		rmw(0, y, 0, 3, "b").
		write(1, y, 2, "c").
		rmw(1, x, 0, 4, "d").
		done()
	if v := exec.Check(TSO); v.Allowed {
		t.Fatal("SB over RMWs must be forbidden under TSO")
	}
}

func TestTSOStrongerThanCoherenceWeakerThanSC(t *testing.T) {
	// Every TSO-allowed execution here must be coherence-allowed, and
	// every SC-allowed one must be TSO-allowed.
	execs := []*Execution{
		corr(0, 0), corr(0, 1), corr(1, 1), corr(1, 0),
		mp(0, 0), mp(1, 1), mp(0, 1), mp(1, 0),
	}
	for i, exec := range execs {
		sc := exec.Check(SC).Allowed
		tso := exec.Check(TSO).Allowed
		coh := exec.Check(SCPerLocation).Allowed
		if sc && !tso {
			t.Errorf("execution %d: SC-allowed but TSO-forbidden", i)
		}
		if tso && !coh {
			t.Errorf("execution %d: TSO-allowed but coherence-forbidden", i)
		}
	}
}

func TestTSOString(t *testing.T) {
	if TSO.String() != "TSO" {
		t.Fatal("TSO name wrong")
	}
}

func TestToDOT(t *testing.T) {
	exec := mpRelAcq(1, 0)
	dot := exec.ToDOT(RelAcqSCPerLocation, "MP-relacq")
	for _, want := range []string{
		"digraph \"MP-relacq\"", "cluster_t0", "cluster_t1",
		"a: W x=1", "po;sw;po", "->",
	} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT missing %q:\n%s", want, dot)
		}
	}
}
