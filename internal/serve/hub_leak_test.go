package serve

import (
	"bufio"
	"context"
	"fmt"
	"net/http"
	"runtime"
	"strings"
	"testing"
	"time"
)

// A subscriber that never reads must not block publish or fan-out to
// healthy subscribers: publish drops into a full buffer instead of
// waiting, and finish still closes the stuck channel.
func TestHubStuckSubscriberDoesNotBlockFanout(t *testing.T) {
	h := newHub()
	stuck, cancelStuck := h.subscribe("job")
	defer cancelStuck()
	healthy, cancelHealthy := h.subscribe("job")
	defer cancelHealthy()

	// Far more events than the 16-slot buffer. A blocking publish
	// would deadlock the test; the watchdog turns that into a failure.
	published := make(chan struct{})
	go func() {
		for i := 0; i < 200; i++ {
			h.publish("job", event{name: "progress", data: []byte(fmt.Sprintf(`{"i":%d}`, i))})
			// Keep the healthy subscriber drained so it sees news.
			select {
			case <-healthy:
			default:
			}
		}
		h.finish("job", event{name: "done", data: []byte(`{}`)})
		close(published)
	}()
	select {
	case <-published:
	case <-time.After(10 * time.Second):
		t.Fatal("publish blocked on a stuck subscriber")
	}

	// Both channels must be closed after finish — the stuck one after
	// its buffered backlog drains.
	deadline := time.After(5 * time.Second)
	drainUntilClosed := func(ch <-chan event) {
		for {
			select {
			case _, ok := <-ch:
				if !ok {
					return
				}
			case <-deadline:
				t.Fatal("subscriber channel never closed after finish")
			}
		}
	}
	drainUntilClosed(stuck)
	drainUntilClosed(healthy)
	if h.subs["job"] != nil {
		t.Fatal("finish left subscribers registered")
	}
}

// Cancelling after finish (or twice) must be a no-op, not a double
// close.
func TestHubCancelAfterFinishIsIdempotent(t *testing.T) {
	h := newHub()
	_, cancel := h.subscribe("job")
	h.finish("job", event{name: "done", data: []byte(`{}`)})
	cancel()
	cancel()

	// A late subscriber replays the terminal event and closes.
	ch, cancel2 := h.subscribe("job")
	defer cancel2()
	if ev, ok := <-ch; !ok || ev.name != "done" {
		t.Fatalf("late subscriber got %v %v, want done replay", ev, ok)
	}
	if _, ok := <-ch; ok {
		t.Fatal("late subscriber channel not closed after done replay")
	}
}

// settledGoroutines polls until the goroutine count stops exceeding
// want, failing after a deadline. SSE handler goroutines unwind
// asynchronously after a client disconnect.
func settledGoroutines(t *testing.T, want int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		n := runtime.NumGoroutine()
		if n <= want {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutines settled at %d, want <= %d\n%s", n, want, buf[:runtime.Stack(buf, true)])
		}
		runtime.Gosched()
		time.Sleep(20 * time.Millisecond)
	}
}

// An SSE client that connects and walks away — mid-replay or without
// ever reading — must not leak its handler goroutine.
func TestSSEDisconnectLeaksNoGoroutines(t *testing.T) {
	s, c, _ := queuedServer(t, Config{})
	ctx := context.Background()
	sub, err := c.Submit(ctx, smallConformance())
	if err != nil {
		t.Fatal(err)
	}
	id := sub.Job.ID
	// Give subscribers a replay event so disconnecting mid-replay is a
	// real code path, not an idle wait.
	s.hub.publish(id, event{name: "progress", data: []byte(`{"done":1}`)})

	baseline := runtime.NumGoroutine()
	const clients = 8
	for i := 0; i < clients; i++ {
		cctx, cancel := context.WithCancel(ctx)
		req, err := http.NewRequestWithContext(cctx, http.MethodGet, c.BaseURL+"/api/v1/jobs/"+id+"/events", nil)
		if err != nil {
			cancel()
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			cancel()
			t.Fatal(err)
		}
		if i%2 == 0 {
			// Half the clients read through the replay before leaving;
			// the rest never read a byte.
			br := bufio.NewReader(resp.Body)
			line, err := br.ReadString('\n')
			if err != nil || !strings.HasPrefix(line, "event: ") {
				t.Fatalf("first SSE line: %q %v", line, err)
			}
		}
		cancel()
		resp.Body.Close()
	}

	// Handlers unwind asynchronously after the client side closes:
	// poll until every dead subscriber is unregistered.
	deadline := time.Now().Add(10 * time.Second)
	for {
		s.hub.mu.Lock()
		live := len(s.hub.subs[id])
		s.hub.mu.Unlock()
		if live == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("hub retains %d subscribers after disconnect storm", live)
		}
		time.Sleep(10 * time.Millisecond)
	}
	settledGoroutines(t, baseline)

	// Fan-out still works: a fresh subscriber sees the replayed
	// snapshot.
	ch, cancel := s.hub.subscribe(id)
	defer cancel()
	select {
	case ev := <-ch:
		if ev.name != "progress" {
			t.Fatalf("replay event = %q, want progress", ev.name)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("fresh subscriber saw no replay after disconnect storm")
	}
}
