package harness

import (
	"encoding/json"
	"sync"
	"testing"

	"repro/internal/gpu"
	"repro/internal/litmus"
	"repro/internal/mm"
	"repro/internal/xrand"
)

func TestClassifierMemoizes(t *testing.T) {
	c := &Classifier{}
	test := litmus.CoRR()
	o := litmus.Outcome{Regs: []mm.Val{0, 0}, Final: []mm.Val{1}}
	tgt1, vio1, err := c.Classify(test, o)
	if err != nil {
		t.Fatal(err)
	}
	hits0, misses0 := c.Stats()
	if hits0 != 0 || misses0 != 1 {
		t.Fatalf("after first classify: hits=%d misses=%d", hits0, misses0)
	}
	tgt2, vio2, err := c.Classify(test, o)
	if err != nil {
		t.Fatal(err)
	}
	if tgt1 != tgt2 || vio1 != vio2 {
		t.Fatal("memoized classification differs")
	}
	hits, misses := c.Stats()
	if hits != 1 || misses != 1 {
		t.Fatalf("after second classify: hits=%d misses=%d", hits, misses)
	}
	// The memoized verdict matches a direct classification.
	verdict, err := test.Classify(o)
	if err != nil {
		t.Fatal(err)
	}
	if vio1 != !verdict.Allowed || tgt1 != test.Target.Matches(o) {
		t.Fatal("cached classification wrong")
	}
}

func TestClassifierKeyedByTest(t *testing.T) {
	c := &Classifier{}
	corr, coww := litmus.CoRR(), litmus.CoWW()
	// Same histogram key can classify differently under different
	// tests; the cache must not cross-contaminate.
	if _, _, err := c.Classify(corr, litmus.Outcome{Regs: []mm.Val{1, 0}, Final: []mm.Val{1}}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Classify(coww, litmus.Outcome{Final: []mm.Val{2}}); err != nil {
		t.Fatal(err)
	}
	_, misses := c.Stats()
	if misses != 2 {
		t.Fatalf("misses = %d, want 2 (separate per-test caches)", misses)
	}
}

func TestClassifierConcurrent(t *testing.T) {
	c := &Classifier{}
	test := litmus.CoRR()
	outcomes := []litmus.Outcome{
		{Regs: []mm.Val{0, 0}, Final: []mm.Val{1}},
		{Regs: []mm.Val{1, 1}, Final: []mm.Val{1}},
		{Regs: []mm.Val{1, 0}, Final: []mm.Val{1}},
		{Regs: []mm.Val{0, 1}, Final: []mm.Val{1}},
	}
	want := make([][2]bool, len(outcomes))
	for i, o := range outcomes {
		tgt, vio, err := c.Classify(test, o)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = [2]bool{tgt, vio}
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				o := outcomes[i%len(outcomes)]
				tgt, vio, err := c.Classify(test, o)
				if err != nil {
					t.Error(err)
					return
				}
				if w := want[i%len(outcomes)]; tgt != w[0] || vio != w[1] {
					t.Errorf("concurrent classification diverged for %s", o.Key())
					return
				}
			}
		}()
	}
	wg.Wait()
}

// TestRunnerSharesClassifier checks two runners reuse classifications
// through the shared classifier.
func TestRunnerSharesClassifier(t *testing.T) {
	c := &Classifier{}
	test := litmus.CoRR()
	prof, _ := gpu.ProfileByName("AMD")
	for i := 0; i < 2; i++ {
		dev, err := gpu.NewDevice(prof, gpu.Bugs{})
		if err != nil {
			t.Fatal(err)
		}
		r, err := NewRunner(dev, SITEBaseline())
		if err != nil {
			t.Fatal(err)
		}
		r.Classifier = c
		if _, err := r.Run(test, 5, xrand.New(7)); err != nil {
			t.Fatal(err)
		}
	}
	hits, misses := c.Stats()
	if misses == 0 || hits == 0 {
		t.Fatalf("classifier unused: hits=%d misses=%d", hits, misses)
	}
	// The second runner saw only outcomes the first had classified
	// (identical seed), so misses cannot exceed the distinct outcomes
	// of one run, and hits must cover everything else.
	if hits < misses {
		t.Fatalf("expected hit-dominated workload: hits=%d misses=%d", hits, misses)
	}
}

func TestResultMerge(t *testing.T) {
	mkHist := func(o litmus.Outcome, target, violation bool, n int) *litmus.Histogram {
		h := litmus.NewHistogram()
		h.AddN(o, target, violation, n)
		return h
	}
	oViol := litmus.Outcome{Regs: []mm.Val{1, 0}, Final: []mm.Val{1}}
	oOK := litmus.Outcome{Regs: []mm.Val{0, 0}, Final: []mm.Val{1}}
	a := &Result{
		TestName: "CoRR", Iterations: 2, Instances: 10,
		SimSeconds: 1.5, WallSeconds: 0.1,
		Hist: mkHist(oOK, false, false, 10),
	}
	b := &Result{
		TestName: "CoRR", Iterations: 3, Instances: 20,
		SimSeconds: 2.5, WallSeconds: 0.2,
		Hist:           mkHist(oViol, true, true, 4),
		FirstViolation: &oViol,
	}
	b.TargetCount, b.Violations = 4, 4
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.Iterations != 5 || a.Instances != 30 {
		t.Fatalf("counts: %+v", a)
	}
	if a.SimSeconds != 4.0 || a.WallSeconds != 0.30000000000000004 && a.WallSeconds != 0.3 {
		t.Fatalf("seconds: sim=%v wall=%v", a.SimSeconds, a.WallSeconds)
	}
	if a.TargetCount != 4 || a.Violations != 4 {
		t.Fatalf("derived counts: target=%d violations=%d", a.TargetCount, a.Violations)
	}
	if a.Hist.Total() != 14 || a.Hist.Count(oViol.Key()) != 4 {
		t.Fatalf("histogram: total=%d", a.Hist.Total())
	}
	if a.FirstViolation == nil || a.FirstViolation.Key() != oViol.Key() {
		t.Fatal("FirstViolation not taken from other")
	}
	// Earliest-in-merge-order wins: merging another violating result
	// must not replace it.
	oOther := litmus.Outcome{Regs: []mm.Val{1, 1}, Final: []mm.Val{1}}
	c := &Result{TestName: "CoRR", Hist: mkHist(oOther, false, true, 1), FirstViolation: &oOther}
	if err := a.Merge(c); err != nil {
		t.Fatal(err)
	}
	if a.FirstViolation.Key() != oViol.Key() {
		t.Fatal("FirstViolation overwritten by later merge")
	}
	// Cross-test merges are rejected.
	if err := a.Merge(&Result{TestName: "MP"}); err == nil {
		t.Fatal("cross-test merge accepted")
	}
	// Merging nil is a no-op.
	if err := a.Merge(nil); err != nil {
		t.Fatal(err)
	}
}

func TestResultJSONRoundTrip(t *testing.T) {
	o := litmus.Outcome{Regs: []mm.Val{1, 0}, Final: []mm.Val{1}}
	h := litmus.NewHistogram()
	h.AddN(o, true, true, 3)
	h.AddN(litmus.Outcome{Regs: []mm.Val{0, 0}, Final: []mm.Val{1}}, false, false, 7)
	r := &Result{
		TestName: "CoRR", IsMutant: true, Mutator: "reversing po-loc",
		Iterations: 2, Instances: 10, TargetCount: 3, Violations: 3,
		SimSeconds: 0.125, WallSeconds: 1.5,
		Hist: h, FirstViolation: &o,
	}
	raw, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	var back Result
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.TestName != r.TestName || back.TargetCount != 3 || back.SimSeconds != 0.125 {
		t.Fatalf("scalar fields lost: %+v", back)
	}
	if back.Hist == nil || back.Hist.Total() != 10 || back.Hist.TargetCount() != 3 ||
		back.Hist.Violations() != 3 || back.Hist.Count(o.Key()) != 3 {
		t.Fatalf("histogram lost: %+v", back.Hist)
	}
	if back.FirstViolation == nil || back.FirstViolation.Key() != o.Key() {
		t.Fatal("FirstViolation lost")
	}
	// Marshaling the restored result reproduces the original bytes —
	// the byte-identical checkpoint-replay property.
	raw2, err := json.Marshal(&back)
	if err != nil {
		t.Fatal(err)
	}
	if string(raw) != string(raw2) {
		t.Fatalf("round trip not byte-identical:\n%s\n%s", raw, raw2)
	}
}
