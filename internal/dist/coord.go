package dist

import (
	"context"
	"encoding/json"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/sched"
)

// CoordinatorOptions tunes one campaign's coordination. The zero
// value is usable: 10s leases, ranges of 8 cells, 5 re-issues per
// cell, default worker-breaker thresholds, no stall bound.
type CoordinatorOptions struct {
	// LeaseTTL is the deadline workers must renew within. A lease not
	// renewed for this long is expired and its unresolved cells are
	// re-issued. It must comfortably exceed the longest single cell:
	// workers renew at cell boundaries. <= 0 means 10s.
	LeaseTTL time.Duration
	// RangeCells is how many cells one lease carries. < 1 means 8.
	RangeCells int
	// MaxReissues bounds how many times one cell is re-issued after
	// lease expiries before it is marked lost (completed by a
	// synthetic failure, degrading the campaign instead of hanging
	// it). < 1 means 5.
	MaxReissues int
	// Breaker sets the per-worker quarantine thresholds; nil means
	// sched's defaults (3 consecutive failures, cooldown 2).
	Breaker sched.BreakerOptions
	// StallTimeout, when positive, bounds how long the coordinator
	// waits with work outstanding and no worker RPC at all before it
	// marks every unresolved cell lost and completes degraded.
	StallTimeout time.Duration
	// Now is the clock; nil means time.Now. Deterministic tests
	// inject a fake.
	Now func() time.Time
	// OnSegment, when non-nil, observes each segment the first time
	// it is accepted (never duplicates, never replayed seeds at
	// construction). The distributed campaign runner checkpoints
	// successful segments from it.
	OnSegment func(sched.Segment)
	// OnStatus, when non-nil, observes a status snapshot after every
	// state-changing RPC or sweep.
	OnStatus func(Status)
	// Logf, when non-nil, receives coordination events (expiries,
	// quarantines, losses) as log lines.
	Logf func(format string, args ...any)
}

func (o CoordinatorOptions) leaseTTL() time.Duration {
	if o.LeaseTTL <= 0 {
		return 10 * time.Second
	}
	return o.LeaseTTL
}

func (o CoordinatorOptions) rangeCells() int {
	if o.RangeCells < 1 {
		return 8
	}
	return o.RangeCells
}

func (o CoordinatorOptions) maxReissues() int {
	if o.MaxReissues < 1 {
		return 5
	}
	return o.MaxReissues
}

func (o CoordinatorOptions) now() time.Time {
	if o.Now != nil {
		return o.Now()
	}
	return time.Now()
}

// lease is one outstanding range.
type lease struct {
	id       string
	worker   string
	cells    []int
	deadline time.Time
}

// workerState is everything the coordinator remembers about one
// worker identity.
type workerState struct {
	breaker   *sched.Breaker
	granted   int
	expired   int
	completed int
}

// Coordinator owns one campaign's distribution state: which cells
// are resolved (segments), which are leased, and which are waiting.
// All methods are safe for concurrent use; the HTTP hub and the
// in-process transport call straight into them.
type Coordinator struct {
	name string
	spec sched.Spec
	desc json.RawMessage
	opts CoordinatorOptions

	mu      sync.Mutex
	cond    *sync.Cond
	byKey   map[string]int // cell key -> spec index
	segs    map[string]sched.Segment
	pending []int // spec indexes waiting for a lease, ascending
	leases  map[string]*lease
	workers map[string]*workerState

	nextLease    int
	reissueCount map[int]int // spec index -> times re-issued
	reissues     int
	duplicates   int
	lost         int
	stalled      bool
	lastActivity time.Time
}

// NewCoordinator builds a coordinator for spec. desc is the opaque
// worker descriptor advertised via WorkInfo; seed holds segments
// already resolved (a resumed checkpoint's cells, marked Replayed).
func NewCoordinator(name string, spec sched.Spec, desc json.RawMessage, seed map[string]sched.Segment, opts CoordinatorOptions) (*Coordinator, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	c := &Coordinator{
		name:         name,
		spec:         spec,
		desc:         desc,
		opts:         opts,
		byKey:        make(map[string]int, len(spec.Cells)),
		segs:         make(map[string]sched.Segment, len(spec.Cells)),
		leases:       map[string]*lease{},
		workers:      map[string]*workerState{},
		reissueCount: map[int]int{},
		lastActivity: opts.now(),
	}
	c.cond = sync.NewCond(&c.mu)
	for i, cell := range spec.Cells {
		c.byKey[cell.Key] = i
	}
	for key, seg := range seed {
		i, ok := c.byKey[key]
		if !ok {
			return nil, fmt.Errorf("dist: seed segment %q is not a cell of campaign %q", key, spec.Name)
		}
		seg.Key = spec.Cells[i].Key
		c.segs[key] = seg
	}
	for i, cell := range spec.Cells {
		if _, done := c.segs[cell.Key]; !done {
			c.pending = append(c.pending, i)
		}
	}
	return c, nil
}

// Info describes the campaign to workers.
func (c *Coordinator) Info() *WorkInfo {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.lastActivity = c.opts.now()
	return &WorkInfo{
		Name:       c.name,
		Campaign:   c.spec.Name,
		Seed:       c.spec.Seed,
		Manifest:   c.spec.Manifest(),
		Cells:      len(c.spec.Cells),
		LeaseTTLMS: c.opts.leaseTTL().Milliseconds(),
		Descriptor: c.desc,
		Done:       c.completeLocked(),
	}
}

// Acquire hands the worker a leased range, a wait hint, or done.
func (c *Coordinator) Acquire(req AcquireRequest) *AcquireResponse {
	c.mu.Lock()
	now := c.opts.now()
	c.lastActivity = now
	c.sweepLocked(now)
	resp := c.acquireLocked(req, now)
	c.finishLocked()
	st := c.statusLocked()
	c.mu.Unlock()
	c.emit(st)
	return resp
}

func (c *Coordinator) acquireLocked(req AcquireRequest, now time.Time) *AcquireResponse {
	if c.completeLocked() {
		return &AcquireResponse{State: StateDone}
	}
	ttl := c.opts.leaseTTL()
	ws := c.workerLocked(req.Worker)
	if !ws.breaker.Allow() {
		// Quarantined: starved of ranges for the breaker's cooldown,
		// then one probation lease decides. Waiting a full TTL keeps a
		// flapping worker from consuming its cooldown instantly.
		return &AcquireResponse{State: StateWait, RetryAfterMS: ttl.Milliseconds()}
	}
	if len(c.pending) == 0 {
		// Everything is leased out; check back as leases expire.
		return &AcquireResponse{State: StateWait, RetryAfterMS: (ttl / 4).Milliseconds()}
	}
	n := c.opts.rangeCells()
	if n > len(c.pending) {
		n = len(c.pending)
	}
	cells := append([]int(nil), c.pending[:n]...)
	c.pending = c.pending[n:]
	c.nextLease++
	l := &lease{
		id:       fmt.Sprintf("lease-%d", c.nextLease),
		worker:   req.Worker,
		cells:    cells,
		deadline: now.Add(ttl),
	}
	c.leases[l.id] = l
	ws.granted++
	return &AcquireResponse{
		State: StateLease,
		Lease: &Lease{ID: l.id, Cells: cells, TTLMS: ttl.Milliseconds()},
	}
}

// Renew extends a lease's deadline; OK false means the lease is no
// longer the worker's and it must stop executing the range.
func (c *Coordinator) Renew(req RenewRequest) *RenewResponse {
	c.mu.Lock()
	now := c.opts.now()
	c.lastActivity = now
	c.sweepLocked(now)
	l := c.leases[req.Lease]
	ok := l != nil && l.worker == req.Worker
	if ok {
		l.deadline = now.Add(c.opts.leaseTTL())
	}
	c.finishLocked()
	st := c.statusLocked()
	c.mu.Unlock()
	c.emit(st)
	return &RenewResponse{OK: ok}
}

// Deliver merges a range's resolved segments. Novel segments are
// accepted whether or not the lease is still live — a zombie's work
// is identical to a re-execution's, so accepting it is free —
// and duplicates are discarded by cell identity, first-wins.
func (c *Coordinator) Deliver(req DeliverRequest) *DeliverResponse {
	c.mu.Lock()
	now := c.opts.now()
	c.lastActivity = now
	c.sweepLocked(now)
	resp := &DeliverResponse{State: DeliverOK}
	for _, seg := range req.Segments {
		if c.acceptLocked(seg) {
			resp.Accepted++
		} else {
			resp.Duplicates++
			c.duplicates++
		}
	}
	l := c.leases[req.Lease]
	if l == nil || l.worker != req.Worker {
		resp.State = DeliverLost
	} else {
		delete(c.leases, req.Lease)
		ws := c.workerLocked(req.Worker)
		complete := true
		for _, i := range l.cells {
			if _, done := c.segs[c.spec.Cells[i].Key]; !done {
				// The worker gave the range up (drain): back to pending.
				c.pending = append(c.pending, i)
				complete = false
			}
		}
		if !complete {
			sort.Ints(c.pending)
		} else {
			ws.completed++
		}
		ws.breaker.Observe(complete)
	}
	c.finishLocked()
	st := c.statusLocked()
	c.mu.Unlock()
	c.emit(st)
	return resp
}

// acceptLocked merges one segment, reporting whether it was novel.
// Segments for unknown cells or replayed-marked wire segments are
// rejected as duplicates-equivalent (nothing is owed for them).
func (c *Coordinator) acceptLocked(seg sched.Segment) bool {
	i, ok := c.byKey[seg.Key]
	if !ok {
		return false
	}
	if _, done := c.segs[seg.Key]; done {
		return false
	}
	seg.Replayed = false
	seg.Key = c.spec.Cells[i].Key
	c.segs[seg.Key] = seg
	if c.opts.OnSegment != nil {
		c.opts.OnSegment(seg)
	}
	return true
}

// Sweep expires overdue leases and applies the stall bound; the wait
// loop calls it on a timer so expiry does not depend on RPC traffic.
func (c *Coordinator) Sweep() {
	c.mu.Lock()
	c.sweepLocked(c.opts.now())
	c.finishLocked()
	st := c.statusLocked()
	c.mu.Unlock()
	c.emit(st)
}

func (c *Coordinator) sweepLocked(now time.Time) {
	for id, l := range c.leases {
		if now.Before(l.deadline) {
			continue
		}
		delete(c.leases, id)
		ws := c.workerLocked(l.worker)
		ws.expired++
		ws.breaker.Observe(false)
		expired := 0
		for _, i := range l.cells {
			key := c.spec.Cells[i].Key
			if _, done := c.segs[key]; done {
				continue
			}
			expired++
			c.reissueCount[i]++
			c.reissues++
			if c.reissueCount[i] > c.opts.maxReissues() {
				c.loseLocked(i, fmt.Sprintf("dist: cell lost: %d leases expired without a result (last worker %s)",
					c.reissueCount[i], l.worker))
				continue
			}
			c.pending = append(c.pending, i)
		}
		sort.Ints(c.pending)
		c.logf("dist: lease %s (worker %s) expired; re-issuing %d cells", id, l.worker, expired)
		if ws.breaker.Open() {
			c.logf("dist: worker %s quarantined after repeated lease failures", l.worker)
		}
	}
	if st := c.opts.StallTimeout; st > 0 && !c.completeLocked() && now.Sub(c.lastActivity) >= st {
		c.stalled = true
		c.logf("dist: campaign %s stalled: no worker activity for %s; marking unresolved cells lost", c.name, st)
		c.leases = map[string]*lease{}
		c.pending = nil
		for i, cell := range c.spec.Cells {
			if _, done := c.segs[cell.Key]; !done {
				c.loseLocked(i, fmt.Sprintf("dist: cell lost: campaign stalled with no worker activity for %s", st))
			}
		}
	}
}

// loseLocked completes cell i with a synthetic failure segment.
func (c *Coordinator) loseLocked(i int, msg string) {
	c.lost++
	c.acceptLocked(sched.Segment{Key: c.spec.Cells[i].Key, Err: msg})
}

func (c *Coordinator) workerLocked(id string) *workerState {
	ws := c.workers[id]
	if ws == nil {
		ws = &workerState{breaker: sched.NewBreaker(c.opts.Breaker)}
		c.workers[id] = ws
	}
	return ws
}

func (c *Coordinator) completeLocked() bool {
	return len(c.segs) == len(c.spec.Cells)
}

// finishLocked wakes waiters after any state change.
func (c *Coordinator) finishLocked() {
	c.cond.Broadcast()
}

func (c *Coordinator) emit(st Status) {
	if c.opts.OnStatus != nil {
		c.opts.OnStatus(st)
	}
}

func (c *Coordinator) logf(format string, args ...any) {
	if c.opts.Logf != nil {
		c.opts.Logf(format, args...)
	}
}

func (c *Coordinator) statusLocked() Status {
	st := Status{
		Name:         c.name,
		Total:        len(c.spec.Cells),
		Done:         len(c.segs),
		Duplicates:   c.duplicates,
		Reissues:     c.reissues,
		Lost:         c.lost,
		ActiveLeases: len(c.leases),
		Workers:      len(c.workers),
		Stalled:      c.stalled,
		Complete:     c.completeLocked(),
	}
	for _, seg := range c.segs {
		if seg.Replayed {
			st.Replayed++
		}
		if seg.CacheHit {
			st.CacheHits++
		}
	}
	for _, ws := range c.workers {
		if ws.breaker.Open() {
			st.Quarantined++
		}
	}
	return st
}

// Status returns a progress snapshot.
func (c *Coordinator) Status() Status {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.statusLocked()
}

// Segments returns a copy of the resolved-segment map; once Wait has
// returned nil the copy is complete and ready for
// sched.AssembleReport.
func (c *Coordinator) Segments() map[string]sched.Segment {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]sched.Segment, len(c.segs))
	for k, v := range c.segs {
		out[k] = v
	}
	return out
}

// Wait blocks until every cell is resolved (delivered, replayed, or
// marked lost) or ctx is cancelled. A periodic sweep runs while
// waiting so lease expiry and the stall bound do not depend on RPC
// traffic arriving.
func (c *Coordinator) Wait(ctx context.Context) error {
	stop := context.AfterFunc(ctx, func() {
		c.mu.Lock()
		c.cond.Broadcast()
		c.mu.Unlock()
	})
	defer stop()
	tick := c.opts.leaseTTL() / 4
	if tick > time.Second {
		tick = time.Second
	}
	if tick <= 0 {
		tick = 100 * time.Millisecond
	}
	sweepDone := make(chan struct{})
	defer close(sweepDone)
	go func() {
		t := time.NewTicker(tick)
		defer t.Stop()
		for {
			select {
			case <-sweepDone:
				return
			case <-t.C:
				c.Sweep()
			}
		}
	}()
	c.mu.Lock()
	defer c.mu.Unlock()
	for !c.completeLocked() {
		if err := ctx.Err(); err != nil {
			return err
		}
		c.cond.Wait()
	}
	return nil
}
