package harness

import (
	"fmt"
	"time"

	"repro/internal/gpu"
	"repro/internal/litmus"
	"repro/internal/mm"
	"repro/internal/xrand"
)

// Runner executes litmus tests in one environment on one device.
type Runner struct {
	Device *gpu.Device
	Params Params
	// Lower, when set, post-processes every generated thread program —
	// the hook through which the wgsl toolchain's backend lowering
	// (including defective driver builds) is applied.
	Lower func(gpu.Program) gpu.Program
	// Classifier memoizes outcome classification; nil means the
	// process-wide shared classifier, so classifications are reused
	// across iterations, runners and campaign cells.
	Classifier *Classifier
}

// NewRunner validates the environment against the device and returns a
// runner.
func NewRunner(d *gpu.Device, p Params) (*Runner, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &Runner{Device: d, Params: p}, nil
}

// Result summarizes running one test for some iterations in one
// environment on one device.
type Result struct {
	// TestName identifies the litmus test.
	TestName string
	// IsMutant mirrors the test's role.
	IsMutant bool
	// Mutator is the generating mutator family, if any.
	Mutator string
	// Iterations is the number of kernel launches that produced valid
	// results and were counted.
	Iterations int
	// Discarded counts iterations thrown away because an outcome carried
	// a value outside the test's write-value domain — the signature of
	// device-level result corruption. Discarded iterations contribute
	// nothing to Instances, SimSeconds or the histogram: poisoned data
	// must never be classified as a memory-model violation.
	Discarded int
	// Instances is the total number of test instances executed.
	Instances int
	// TargetCount is how many instances exhibited the target behavior;
	// for a mutant this is the number of kills, for a conformance test
	// the number of observed bugs.
	TargetCount int
	// Violations counts instances whose outcome the model disallows
	// (conformance failures, however they manifest).
	Violations int
	// SimSeconds is total simulated device time, the paper's time base
	// for rates and budgets.
	SimSeconds float64
	// WallSeconds is host time spent, for reporting only.
	WallSeconds float64
	// Hist is the outcome histogram.
	Hist *litmus.Histogram
	// FirstViolation is the first outcome classified disallowed, when
	// any; bug reports explain it via the axiomatic checker.
	FirstViolation *litmus.Outcome
}

// TargetRate returns target behaviors per simulated second (the mutant
// death rate when the test is a mutant).
func (r *Result) TargetRate() float64 {
	if r.SimSeconds <= 0 {
		return 0
	}
	return float64(r.TargetCount) / r.SimSeconds
}

// ViolationRate returns model violations per simulated second.
func (r *Result) ViolationRate() float64 {
	if r.SimSeconds <= 0 {
		return 0
	}
	return float64(r.Violations) / r.SimSeconds
}

// Merge folds another result for the same test into r: counts,
// histograms and sim/wall seconds are summed, and FirstViolation keeps
// the earliest in merge order (r's own if set, else other's). Merging
// results from different tests is an error, catching misassembled
// campaign aggregations.
func (r *Result) Merge(other *Result) error {
	if other == nil {
		return nil
	}
	if other.TestName != r.TestName {
		return fmt.Errorf("harness: merging result of %q into %q", other.TestName, r.TestName)
	}
	r.Iterations += other.Iterations
	r.Discarded += other.Discarded
	r.Instances += other.Instances
	r.SimSeconds += other.SimSeconds
	r.WallSeconds += other.WallSeconds
	if other.Hist != nil {
		if r.Hist == nil {
			r.Hist = litmus.NewHistogram()
		}
		r.Hist.Merge(other.Hist)
	}
	if r.FirstViolation == nil && other.FirstViolation != nil {
		saved := *other.FirstViolation
		r.FirstViolation = &saved
	}
	// Recompute the derived counts from the histogram rather than
	// summing fields independently, so the invariants TargetCount ==
	// Hist.TargetCount() and Violations == Hist.Violations() survive
	// any merge order.
	if r.Hist != nil {
		r.TargetCount = r.Hist.TargetCount()
		r.Violations = r.Hist.Violations()
	} else {
		r.TargetCount += other.TargetCount
		r.Violations += other.Violations
	}
	return nil
}

// outcomeClass caches the classification of one outcome key.
type outcomeClass struct {
	target    bool
	violation bool
}

// Run executes the test for the given number of iterations, classifying
// every instance outcome. The rng drives all nondeterminism; equal
// seeds reproduce results exactly.
func (r *Runner) Run(test *litmus.Test, iterations int, rng *xrand.Rand) (*Result, error) {
	if iterations <= 0 {
		return nil, fmt.Errorf("harness: iterations=%d", iterations)
	}
	if err := test.Validate(); err != nil {
		return nil, err
	}
	start := time.Now()
	res := &Result{
		TestName: test.Name,
		IsMutant: test.IsMutant,
		Mutator:  test.Mutator,
		Hist:     litmus.NewHistogram(),
	}
	classifier := r.Classifier
	if classifier == nil {
		classifier = sharedClassifier
	}
	dom := test.ValueDomain()
	for iter := 0; iter < iterations; iter++ {
		plan, err := buildIteration(test, &r.Params, rng)
		if err != nil {
			return nil, err
		}
		if r.Lower != nil {
			for i, prog := range plan.spec.Programs {
				plan.spec.Programs[i] = r.Lower(prog)
			}
		}
		run, err := r.Device.Run(plan.spec, rng)
		if err != nil {
			// Typed device failures (gpu.DeviceError) carry their own
			// transience verdict, which the scheduler reads through
			// sched.IsTransient — no wrapping needed here.
			return nil, err
		}
		// Validate every instance outcome against the test's write-value
		// domain before anything is counted. A single out-of-domain value
		// means the run's results cannot be trusted, so the whole
		// iteration is discarded rather than classified.
		outcomes := make([]litmus.Outcome, plan.instances)
		valid := true
		for i := range outcomes {
			outcomes[i] = extractOutcome(test, plan, run, i)
			if !test.InDomain(outcomes[i], dom) {
				valid = false
			}
		}
		if !valid {
			res.Discarded++
			continue
		}
		res.Iterations++
		res.Instances += plan.instances
		res.SimSeconds += run.SimSeconds
		for _, o := range outcomes {
			target, violation, err := classifier.Classify(test, o)
			if err != nil {
				return nil, err
			}
			if violation && res.FirstViolation == nil {
				saved := o
				res.FirstViolation = &saved
			}
			res.Hist.Add(o, target, violation)
		}
	}
	if res.Iterations == 0 {
		// Every iteration was poisoned: the cell produced no usable data.
		// Fail with a transient corruption error so the scheduler retries
		// the cell under a fresh attempt seed (which re-rolls the faults).
		return nil, &gpu.DeviceError{Kind: gpu.FaultCorrupt, Device: r.Device.Profile().ShortName}
	}
	res.TargetCount = res.Hist.TargetCount()
	res.Violations = res.Hist.Violations()
	res.WallSeconds = time.Since(start).Seconds()
	return res, nil
}

// extractOutcome reads instance i's registers and final memory out of a
// device run.
func extractOutcome(test *litmus.Test, plan *iterationPlan, run *gpu.RunResult, i int) litmus.Outcome {
	o := litmus.Outcome{
		Regs:  make([]mm.Val, test.NumRegs),
		Final: make([]mm.Val, test.NumLocs),
	}
	for r := 0; r < test.NumRegs; r++ {
		ref := plan.regOf[i][r]
		o.Regs[r] = mm.Val(run.Registers[ref.tid][ref.reg])
	}
	for l := 0; l < test.NumLocs; l++ {
		o.Final[l] = mm.Val(run.Memory[plan.locAddr[i][l]])
	}
	return o
}
