// Package resultcache is the persistent, content-addressed store for
// campaign cell results. A cell's result is a pure function of its
// inputs — test, mutation, environment, device profile, derived seed,
// and the workload parameters the exec closure bakes in — so once a
// cell has been executed anywhere, any later campaign asking the same
// question can reuse the answer. Keys are the hex SHA-256 cell digests
// produced by sched.Spec.CellDigest; the store never interprets them.
//
// The cache is built as a robustness subsystem first and an
// optimization second. Its contract:
//
//   - Verify on read. Every entry embeds a format version and a
//     SHA-256 digest of its payload, re-checked on every Get. A torn
//     write, bit rot, version skew, or a hand-edited entry is detected,
//     quarantined into a corrupt/ sidecar directory, and reported as a
//     miss — never as an error and never as data.
//   - Crash-safe publication. Entries are published with
//     diskio.WriteFileAtomic (temp → fsync → rename → dir fsync), so a
//     reader or a crash observes a complete entry or none. Concurrent
//     writers of the same key race safely: the first published entry
//     wins, later writers see it and stand down, and a cross-process
//     tear that slips through the race is caught by verify-on-read.
//   - Degrade to recompute. ENOSPC/EIO on any cache I/O flips a sticky
//     pass-through degradation: every later Get is a miss and every Put
//     a no-op, the campaign recomputes what it would have reused, and
//     the degradation is reported — but never fails the run. The cache
//     is an optimization, not a dependency.
//   - Bounded size. A deterministic oldest-first (last-use mtime, path
//     tiebreak) compaction pass runs at Open when a byte budget is
//     configured; Get refreshes an entry's mtime so reuse counts as
//     recency.
package resultcache

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"repro/internal/diskio"
)

// FormatVersion is the entry format generation. An entry recorded
// under any other version fails verification and is quarantined, so a
// format change can never serve stale-layout payloads.
const FormatVersion = 1

// maxEntryBytes bounds how large an entry Get will read — symmetric
// with the checkpoint's record limit, and a backstop against a
// corrupted length landing the reader in gigabytes of garbage.
const maxEntryBytes = 1 << 26

// objectsDir and corruptDir are the two populations under the cache
// root: verified-publishable entries and quarantined evidence.
const (
	objectsDir = "objects"
	corruptDir = "corrupt"
)

// entry is the on-disk JSON envelope around one cached payload.
type entry struct {
	Format  int             `json:"format"`
	Key     string          `json:"key"`
	Payload json.RawMessage `json:"payload"`
	// Sum is the hex SHA-256 of the exact Payload bytes. It is what
	// turns the envelope into evidence: a payload that does not hash to
	// Sum was not the payload this entry was published with.
	Sum string `json:"payload_sha256"`
}

// Options configures a cache.
type Options struct {
	// FS is the filesystem seam; nil means the real filesystem.
	FS diskio.FS
	// MaxBytes, when positive, is the byte budget the compaction pass
	// at Open enforces over objects/ (oldest entries evicted first).
	MaxBytes int64
	// Now is the recency clock for LRU mtimes; nil means time.Now.
	// Deterministic tests inject a fake.
	Now func() time.Time
}

// Stats is a point-in-time counter snapshot.
type Stats struct {
	Hits    int64 // verified entries served
	Misses  int64 // lookups with no entry (or a degraded cache)
	Corrupt int64 // entries that failed verification and were quarantined
	Puts    int64 // entries published
	Evicted int64 // entries removed by the compaction pass at Open
	// Degraded reports the sticky pass-through state; Err is the
	// storage error that caused it.
	Degraded bool
	Err      string
}

// Cache is a content-addressed result store rooted at one directory.
// All methods are safe for concurrent use and none of them ever
// returns an error: every failure mode resolves to "recompute".
type Cache struct {
	fsys diskio.FS
	dir  string
	now  func() time.Time

	// locks serializes in-process same-key publication (64 stripes by
	// the key's first hex byte). Cross-process races are resolved by
	// first-wins rename plus verify-on-read.
	locks [64]sync.Mutex

	mu       sync.Mutex
	degraded error
	hits     int64
	misses   int64
	corrupt  int64
	puts     int64
	evicted  int64
}

// Open roots a cache at dir, creating its layout and running the
// size-budget compaction pass. A storage error (ENOSPC/EIO) during
// setup yields a usable cache already in its degraded pass-through
// state — a full disk must not fail the campaign — while any other
// error (permissions, a file where the directory should be) is
// returned, so misconfiguration fails fast instead of silently running
// uncached.
func Open(dir string, opts Options) (*Cache, error) {
	fsys := opts.FS
	if fsys == nil {
		fsys = diskio.OS{}
	}
	now := opts.Now
	if now == nil {
		now = time.Now
	}
	c := &Cache{fsys: fsys, dir: dir, now: now}
	for _, sub := range []string{objectsDir, corruptDir} {
		if err := fsys.MkdirAll(filepath.Join(dir, sub), 0o755); err != nil {
			if diskio.IsStorageErr(err) {
				c.degrade(err)
				return c, nil
			}
			return nil, fmt.Errorf("resultcache: open %s: %w", dir, err)
		}
	}
	if err := c.compact(opts.MaxBytes); err != nil {
		if diskio.IsStorageErr(err) {
			c.degrade(err)
			return c, nil
		}
		return nil, fmt.Errorf("resultcache: compact %s: %w", dir, err)
	}
	return c, nil
}

// objectPath is where key's entry lives.
func (c *Cache) objectPath(key string) string {
	return filepath.Join(c.dir, objectsDir, key)
}

// Get returns the verified payload cached under key. hit reports a
// verified entry; corrupt reports that an entry existed but failed
// verification and was quarantined (the caller should count it and
// recompute). Get never returns an error: unreadable entries are
// misses, and a storage error flips the sticky degradation.
func (c *Cache) Get(key string) (payload []byte, hit bool, corrupt bool) {
	if c.Degraded() != nil {
		c.count(&c.misses)
		return nil, false, false
	}
	path := c.objectPath(key)
	f, err := diskio.Open(c.fsys, path)
	if err != nil {
		if diskio.IsStorageErr(err) {
			c.degrade(err)
		}
		c.count(&c.misses)
		return nil, false, false
	}
	data, err := io.ReadAll(io.LimitReader(f, maxEntryBytes+1))
	f.Close()
	if err != nil {
		if diskio.IsStorageErr(err) {
			c.degrade(err)
			c.count(&c.misses)
			return nil, false, false
		}
		// A short or failed read of an existing entry is treated as
		// corruption: quarantine it so the next run is not haunted too.
		c.quarantine(path)
		c.count(&c.corrupt)
		return nil, false, true
	}
	e, ok := verify(key, data)
	if !ok {
		c.quarantine(path)
		c.count(&c.corrupt)
		return nil, false, true
	}
	// Refresh recency so the compaction pass sees reuse, not just
	// publication age. Best-effort: a failed touch costs eviction
	// fidelity, never correctness.
	t := c.now()
	if err := c.fsys.Chtimes(path, t, t); err != nil && diskio.IsStorageErr(err) {
		c.degrade(err)
	}
	c.count(&c.hits)
	return e.Payload, true, false
}

// verify decodes data as an entry for key and checks every integrity
// claim the publisher embedded: format version, key match, and the
// payload digest.
func verify(key string, data []byte) (*entry, bool) {
	if len(data) > maxEntryBytes {
		return nil, false
	}
	var e entry
	if err := json.Unmarshal(data, &e); err != nil {
		return nil, false
	}
	if e.Format != FormatVersion || e.Key != key {
		return nil, false
	}
	sum := sha256.Sum256(e.Payload)
	if hex.EncodeToString(sum[:]) != e.Sum {
		return nil, false
	}
	return &e, true
}

// quarantine moves a failed entry into corrupt/ so it stops poisoning
// lookups but stays available as evidence. Best-effort on a cache that
// may itself be dying: a failed rename falls back to removal, and a
// storage error degrades; an entry that survives both is simply
// re-quarantined by the next reader.
func (c *Cache) quarantine(path string) {
	dst := filepath.Join(c.dir, corruptDir, filepath.Base(path))
	if err := c.fsys.MkdirAll(filepath.Join(c.dir, corruptDir), 0o755); err == nil {
		if err := c.fsys.Rename(path, dst); err == nil {
			return
		} else if diskio.IsStorageErr(err) {
			c.degrade(err)
			return
		}
	} else if diskio.IsStorageErr(err) {
		c.degrade(err)
		return
	}
	if err := c.fsys.Remove(path); err != nil && diskio.IsStorageErr(err) {
		c.degrade(err)
	}
}

// Put publishes payload (a JSON document) under key. It never returns
// an error: a storage failure flips the sticky degradation, any other
// failure drops this one entry, and in both cases the campaign's
// correctness is untouched — the entry is simply recomputed next time.
// The first writer of a key wins; later writers (same content by
// construction, since the key is a content address of the inputs)
// stand down.
func (c *Cache) Put(key string, payload []byte) {
	if c.Degraded() != nil {
		return
	}
	// Compact to the canonical encoding so the digest is over the exact
	// bytes stored, independent of upstream whitespace; this also
	// refuses non-JSON payloads outright.
	var buf bytes.Buffer
	if err := json.Compact(&buf, payload); err != nil {
		return
	}
	if buf.Len() > maxEntryBytes/2 {
		return
	}
	sum := sha256.Sum256(buf.Bytes())
	data, err := json.Marshal(entry{
		Format:  FormatVersion,
		Key:     key,
		Payload: json.RawMessage(buf.Bytes()),
		Sum:     hex.EncodeToString(sum[:]),
	})
	if err != nil {
		return
	}
	lock := &c.locks[stripe(key)]
	lock.Lock()
	defer lock.Unlock()
	path := c.objectPath(key)
	if _, err := c.fsys.Stat(path); err == nil {
		return // first writer already won
	}
	if err := diskio.WriteFileAtomic(c.fsys, path, data); err != nil {
		if diskio.IsStorageErr(err) {
			c.degrade(err)
		}
		return
	}
	t := c.now()
	if err := c.fsys.Chtimes(path, t, t); err != nil && diskio.IsStorageErr(err) {
		c.degrade(err)
	}
	c.count(&c.puts)
}

// stripe maps a key to its publication lock.
func stripe(key string) int {
	if key == "" {
		return 0
	}
	return int(key[0]) % 64
}

// Degraded returns the sticky storage error that switched the cache to
// pass-through, or nil while it is healthy.
func (c *Cache) Degraded() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.degraded
}

// Stats returns a counter snapshot.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := Stats{
		Hits:    c.hits,
		Misses:  c.misses,
		Corrupt: c.corrupt,
		Puts:    c.puts,
		Evicted: c.evicted,
	}
	if c.degraded != nil {
		s.Degraded = true
		s.Err = c.degraded.Error()
	}
	return s
}

func (c *Cache) degrade(err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.degraded == nil {
		c.degraded = err
	}
}

func (c *Cache) count(field *int64) {
	c.mu.Lock()
	*field++
	c.mu.Unlock()
}

// compact removes crashed writers' leftover temp files and, when a
// budget is set, evicts entries oldest-first (mtime, then path, so the
// pass is deterministic for a given directory state) until objects/
// fits. It runs only at Open: campaigns in flight never lose entries
// under them.
func (c *Cache) compact(maxBytes int64) error {
	dir := filepath.Join(c.dir, objectsDir)
	ents, err := c.fsys.ReadDir(dir)
	if err != nil {
		return err
	}
	type obj struct {
		name  string
		size  int64
		mtime time.Time
	}
	var objs []obj
	var total int64
	for _, de := range ents {
		if de.IsDir() {
			continue
		}
		name := de.Name()
		if filepath.Ext(name) == ".tmp" {
			// A writer died mid-publication; its temp file is garbage.
			if err := c.fsys.Remove(filepath.Join(dir, name)); err != nil && !errorsIsNotExist(err) {
				return err
			}
			continue
		}
		info, err := c.fsys.Stat(filepath.Join(dir, name))
		if err != nil {
			if errorsIsNotExist(err) {
				continue
			}
			return err
		}
		objs = append(objs, obj{name: name, size: info.Size(), mtime: info.ModTime()})
		total += info.Size()
	}
	if maxBytes <= 0 || total <= maxBytes {
		return nil
	}
	sort.Slice(objs, func(i, j int) bool {
		if !objs[i].mtime.Equal(objs[j].mtime) {
			return objs[i].mtime.Before(objs[j].mtime)
		}
		return objs[i].name < objs[j].name
	})
	for _, o := range objs {
		if total <= maxBytes {
			break
		}
		if err := c.fsys.Remove(filepath.Join(dir, o.name)); err != nil {
			if errorsIsNotExist(err) {
				continue
			}
			return err
		}
		total -= o.size
		c.count(&c.evicted)
	}
	return nil
}

// errorsIsNotExist reports a does-not-exist error wherever it sits in
// the chain.
func errorsIsNotExist(err error) bool {
	return errors.Is(err, fs.ErrNotExist)
}
