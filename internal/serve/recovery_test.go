package serve

import (
	"bytes"
	"context"
	"net"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/diskio"
)

// TestCrashRecoveryByteIdentity is the serve half of the storage
// story: a server whose filesystem crashes mid-campaign — torn
// checkpoint write, frozen disk — is "rebooted" over the surviving
// bytes and must finish the job with a report byte-identical to an
// uninterrupted run of the same spec.
func TestCrashRecoveryByteIdentity(t *testing.T) {
	dir := t.TempDir()
	ffs := diskio.NewFaultFS(diskio.OS{}, 42)
	cfg := Config{
		StateDir:      dir,
		FS:            ffs,
		Runners:       1,
		JobWorkers:    2,
		ProgressEvery: time.Millisecond,
		FsyncEvery:    1, // every completed cell is durable before the crash
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- s.Run(ctx, ln) }()
	c := &Client{BaseURL: "http://" + ln.Addr().String()}

	js := smallConformance()
	js.Iters = 30
	sub, err := c.Submit(context.Background(), js)
	if err != nil {
		t.Fatal(err)
	}

	// Let a few cells land in the checkpoint, then freeze the disk:
	// the next write tears at a derived offset and everything after
	// fails with ErrCrashed — the simulated machine is dead.
	deadline := time.Now().Add(60 * time.Second)
	for {
		s.mu.Lock()
		var cellsDone int
		if rj := s.running[sub.Job.ID]; rj != nil {
			cellsDone = rj.last.Done
		}
		s.mu.Unlock()
		if cellsDone >= 3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job never completed 3 cells")
		}
		time.Sleep(time.Millisecond)
	}
	ffs.CrashAfter(ffs.Ops() + 1)

	// The campaign aborts on the dead disk; the in-memory job record
	// goes failed (its persistence fails too — the disk is gone).
	for {
		j, err := c.Job(context.Background(), sub.Job.ID)
		if err != nil {
			t.Fatal(err)
		}
		if j.State.Terminal() {
			if j.State != StateFailed {
				t.Fatalf("post-crash state = %s, want failed", j.State)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job never failed after crash")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("crashed server did not stop")
	}

	// On disk the record still says "running" — the terminal write
	// never survived. Reboot over the surviving bytes with a healthy
	// filesystem: the job is re-queued, resumes from the checkpoint
	// prefix, and completes.
	_, c2 := startServer(t, Config{StateDir: dir, Runners: 1, JobWorkers: 4})
	j, err := c2.Wait(context.Background(), sub.Job.ID, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if j.State != StateDone {
		t.Fatalf("recovered job state = %s (error %q)", j.State, j.Error)
	}
	if j.Resumes == 0 {
		t.Fatalf("recovered job should count a resume: %+v", j)
	}
	if j.Summary == nil || j.Summary.Replayed == 0 {
		t.Fatalf("recovered job replayed nothing: %+v", j.Summary)
	}
	got, err := c2.Report(context.Background(), j.ID)
	if err != nil {
		t.Fatal(err)
	}
	want := localConformanceArtifact(t, j.Spec)
	if !bytes.Equal(got, want) {
		t.Fatal("post-crash report differs from uninterrupted local artifact")
	}
}

// TestStoreBootSkipsCorruptRecord: a record that somehow decodes to
// garbage must not prevent the healthy majority from loading.
func TestStoreBootSkipsCorruptRecord(t *testing.T) {
	dir := t.TempDir()
	if err := os.MkdirAll(filepath.Join(dir, jobsDir), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, jobsDir, "bad.json"), []byte("{torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	good := &Job{ID: "goodjob", State: StateDone, SubmittedAt: time.Now().UTC()}
	st, err := openStore(diskio.OS{}, dir, func(string, ...any) {})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.put(good); err != nil {
		t.Fatal(err)
	}
	var warned bool
	st2, err := openStore(diskio.OS{}, dir, func(string, ...any) { warned = true })
	if err != nil {
		t.Fatal(err)
	}
	if !warned {
		t.Error("corrupt record produced no warning")
	}
	if _, ok := st2.get("goodjob"); !ok {
		t.Error("healthy record lost alongside the corrupt one")
	}
	if len(st2.list()) != 1 {
		t.Errorf("store loaded %d records, want 1", len(st2.list()))
	}
}
