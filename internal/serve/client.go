package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"
)

// Client is a minimal Go client for the campaign server API — what
// the loadgen example and the integration tests drive the server
// with.
type Client struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// APIKey, when set, identifies the client for admission control
	// (the X-API-Key header); otherwise the remote address is used.
	APIKey string
	// HTTPClient defaults to http.DefaultClient.
	HTTPClient *http.Client
}

// APIError is a non-2xx response decoded from the server's JSON error
// body.
type APIError struct {
	StatusCode int
	Message    string
}

func (e *APIError) Error() string {
	return fmt.Sprintf("serve: HTTP %d: %s", e.StatusCode, e.Message)
}

func (c *Client) http() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

// do issues a request and decodes a JSON response into out (when
// non-nil), translating error bodies into *APIError.
func (c *Client) do(ctx context.Context, method, path string, body io.Reader, out any) error {
	req, err := http.NewRequestWithContext(ctx, method, c.BaseURL+path, body)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if c.APIKey != "" {
		req.Header.Set("X-API-Key", c.APIKey)
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		var eb struct {
			Error string `json:"error"`
		}
		msg := strings.TrimSpace(string(data))
		if json.Unmarshal(data, &eb) == nil && eb.Error != "" {
			msg = eb.Error
		}
		return &APIError{StatusCode: resp.StatusCode, Message: msg}
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(data, out)
}

// Submit posts a job spec. The response says whether the spec mapped
// to an existing job (idempotent resubmission).
func (c *Client) Submit(ctx context.Context, spec JobSpec) (*SubmitResponse, error) {
	body, err := json.Marshal(spec)
	if err != nil {
		return nil, err
	}
	var out SubmitResponse
	if err := c.do(ctx, http.MethodPost, "/api/v1/jobs", bytes.NewReader(body), &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Job fetches one job record.
func (c *Client) Job(ctx context.Context, id string) (*Job, error) {
	var out Job
	if err := c.do(ctx, http.MethodGet, "/api/v1/jobs/"+id, nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Jobs lists every tracked job, oldest first.
func (c *Client) Jobs(ctx context.Context) ([]*Job, error) {
	var out struct {
		Jobs []*Job `json:"jobs"`
	}
	if err := c.do(ctx, http.MethodGet, "/api/v1/jobs", nil, &out); err != nil {
		return nil, err
	}
	return out.Jobs, nil
}

// Report fetches a completed job's artifact bytes — byte-identical to
// the CLI's -out file for the same spec.
func (c *Client) Report(ctx context.Context, id string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/api/v1/jobs/"+id+"/report", nil)
	if err != nil {
		return nil, err
	}
	if c.APIKey != "" {
		req.Header.Set("X-API-Key", c.APIKey)
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		var eb struct {
			Error string `json:"error"`
		}
		msg := strings.TrimSpace(string(data))
		if json.Unmarshal(data, &eb) == nil && eb.Error != "" {
			msg = eb.Error
		}
		return nil, &APIError{StatusCode: resp.StatusCode, Message: msg}
	}
	return data, nil
}

// Cancel requests cancellation; the job drains gracefully.
func (c *Client) Cancel(ctx context.Context, id string) (*Job, error) {
	var out Job
	if err := c.do(ctx, http.MethodDelete, "/api/v1/jobs/"+id, nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Wait polls until the job reaches a terminal state or ctx ends.
func (c *Client) Wait(ctx context.Context, id string, poll time.Duration) (*Job, error) {
	if poll <= 0 {
		poll = 100 * time.Millisecond
	}
	t := time.NewTicker(poll)
	defer t.Stop()
	for {
		j, err := c.Job(ctx, id)
		if err != nil {
			return nil, err
		}
		if j.State.Terminal() {
			return j, nil
		}
		select {
		case <-ctx.Done():
			return j, ctx.Err()
		case <-t.C:
		}
	}
}

// Events streams the job's SSE feed, invoking fn per event until the
// stream ends (the server closes it after the terminal event), fn
// returns a non-nil error, or ctx is cancelled. A nil return means
// the stream ended normally.
func (c *Client) Events(ctx context.Context, id string, fn func(name string, data json.RawMessage) error) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/api/v1/jobs/"+id+"/events", nil)
	if err != nil {
		return err
	}
	if c.APIKey != "" {
		req.Header.Set("X-API-Key", c.APIKey)
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		data, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		var eb struct {
			Error string `json:"error"`
		}
		msg := strings.TrimSpace(string(data))
		if json.Unmarshal(data, &eb) == nil && eb.Error != "" {
			msg = eb.Error
		}
		return &APIError{StatusCode: resp.StatusCode, Message: msg}
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 4<<20)
	name, data := "", ""
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			if name != "" || data != "" {
				if err := fn(name, json.RawMessage(data)); err != nil {
					return err
				}
			}
			name, data = "", ""
		case strings.HasPrefix(line, "event: "):
			name = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data = strings.TrimPrefix(line, "data: ")
		}
	}
	if err := sc.Err(); err != nil && ctx.Err() == nil {
		return err
	}
	return nil
}
