package gpu

import (
	"errors"
	"fmt"

	"repro/internal/xrand"
)

// FaultKind classifies a device failure, whether injected by a
// FaultModel or detected organically (a kernel tripping the watchdog).
type FaultKind int

const (
	// FaultLaunch is a kernel launch that never reached the device —
	// the driver queue hiccuped. Retrying usually succeeds.
	FaultLaunch FaultKind = iota
	// FaultHang is a kernel that exceeded the watchdog deadline.
	FaultHang
	// FaultCorrupt is a run whose results were poisoned with
	// out-of-domain values.
	FaultCorrupt
	// FaultLost is a device that dropped off the bus; every subsequent
	// launch fails the same way, so retrying is pointless.
	FaultLost
)

// String names the fault kind.
func (k FaultKind) String() string {
	switch k {
	case FaultLaunch:
		return "launch-failed"
	case FaultHang:
		return "hang"
	case FaultCorrupt:
		return "result-corrupt"
	case FaultLost:
		return "device-lost"
	default:
		return fmt.Sprintf("fault(%d)", int(k))
	}
}

// Sentinel errors for the device failure taxonomy; match with
// errors.Is. DeviceError values unwrap to the sentinel of their kind.
var (
	// ErrLaunchFailed marks a kernel launch that never executed.
	ErrLaunchFailed = errors.New("gpu: kernel launch failed")
	// ErrDeviceHang marks a kernel killed by the watchdog deadline.
	ErrDeviceHang = errors.New("gpu: kernel hang: watchdog deadline exceeded")
	// ErrResultCorrupt marks results poisoned with out-of-domain values.
	ErrResultCorrupt = errors.New("gpu: result corruption")
	// ErrDeviceLost marks a device that permanently dropped off the bus.
	ErrDeviceLost = errors.New("gpu: device lost")
)

// DeviceError is a typed device failure. It unwraps to the sentinel of
// its kind and reports whether the failure is worth retrying.
type DeviceError struct {
	// Kind classifies the failure.
	Kind FaultKind
	// Device is the failing device's short name.
	Device string
	// Tick is the simulated tick at failure, when meaningful (hangs).
	Tick int64
	// Injected distinguishes FaultModel-injected failures from ones the
	// executor detected organically.
	Injected bool
}

// Error renders the failure.
func (e *DeviceError) Error() string {
	s := fmt.Sprintf("%v on %s", e.Unwrap(), e.Device)
	if e.Kind == FaultHang {
		s += fmt.Sprintf(" (tick %d)", e.Tick)
	}
	if e.Injected {
		s += " [injected]"
	}
	return s
}

// Unwrap maps the failure to its kind's sentinel.
func (e *DeviceError) Unwrap() error {
	switch e.Kind {
	case FaultLaunch:
		return ErrLaunchFailed
	case FaultHang:
		return ErrDeviceHang
	case FaultCorrupt:
		return ErrResultCorrupt
	case FaultLost:
		return ErrDeviceLost
	default:
		return fmt.Errorf("gpu: unknown fault %d", int(e.Kind))
	}
}

// Transient reports whether the failure may clear on retry: launch
// failures, hangs and corruption are flaky-stack noise; a lost device
// stays lost. The campaign scheduler consults this through
// sched.IsTransient, so typed device errors are retried without any
// explicit wrapping.
func (e *DeviceError) Transient() bool { return e.Kind != FaultLost }

// FaultModel injects deterministic faults into a device's launches,
// reproducing the flaky real-hardware stacks GPU litmus campaigns run
// on: lost launches, hung kernels, silently corrupted results, and a
// device that eventually falls off the bus. The zero value injects
// nothing and leaves every launch bit-identical to a fault-free device.
//
// All fault decisions derive from the model's Seed mixed with one draw
// of the launch's own RNG stream, so they are a pure function of
// (model, device, launch randomness): a campaign on a faulty fleet
// produces identical faults at any worker count, and a retried cell —
// whose attempt RNG differs — re-rolls its faults.
type FaultModel struct {
	// Seed decorrelates the fault stream from the workload stream.
	Seed uint64
	// LaunchFailProb is the chance a launch fails before executing.
	LaunchFailProb float64
	// HangProb is the chance a kernel hangs until the watchdog kills it.
	HangProb float64
	// CorruptProb is the chance a completed run's results are poisoned
	// with out-of-domain register and memory values.
	CorruptProb float64
	// LossAfter, when positive, permanently kills the device once it
	// has injected that many faults — the escalation from "flaky" to
	// "gone" that real unstable stacks exhibit. Zero disables loss.
	LossAfter int
	// WatchdogTicks is the executor's deadline: a kernel still running
	// past it fails with ErrDeviceHang instead of spinning toward the
	// internal simulation bound. Zero keeps the default bound.
	WatchdogTicks int64
}

// Enabled reports whether the model can inject any fault. A model that
// only sets WatchdogTicks is not "enabled": the watchdog is a defense,
// not a fault source, and consumes no randomness.
func (f FaultModel) Enabled() bool {
	return f.LaunchFailProb > 0 || f.HangProb > 0 || f.CorruptProb > 0
}

// Validate checks the model's parameters.
func (f FaultModel) Validate() error {
	for _, p := range []struct {
		name string
		v    float64
	}{
		{"LaunchFailProb", f.LaunchFailProb},
		{"HangProb", f.HangProb},
		{"CorruptProb", f.CorruptProb},
	} {
		if p.v < 0 || p.v > 1 {
			return fmt.Errorf("gpu: fault model %s=%v outside [0, 1]", p.name, p.v)
		}
	}
	if f.LossAfter < 0 {
		return fmt.Errorf("gpu: fault model LossAfter=%d", f.LossAfter)
	}
	if f.WatchdogTicks < 0 {
		return fmt.Errorf("gpu: fault model WatchdogTicks=%d", f.WatchdogTicks)
	}
	return nil
}

// UniformFaults builds a model injecting every transient fault kind at
// the same rate, with device loss disabled and the default watchdog.
func UniformFaults(seed uint64, rate float64) FaultModel {
	return FaultModel{
		Seed:           seed,
		LaunchFailProb: rate,
		HangProb:       rate,
		CorruptProb:    rate,
	}
}

// garbageBase is the low bound of injected garbage values. Litmus tests
// write small distinct values per location, so anything at or above
// this is out of every test's value domain and therefore detectable by
// harness-level outcome validation.
const garbageBase = 0xDEAD0000

// IsGarbage reports whether v is a fault-model-injected garbage value.
func IsGarbage(v uint32) bool { return v >= garbageBase }

// garbage draws one out-of-domain value.
func garbage(frng *xrand.Rand) uint32 {
	return garbageBase | (frng.Uint32() & 0xFFFF)
}

// corruptResult poisons a sample of the run's registers and memory
// words with out-of-domain values, guaranteeing at least one observable
// is poisoned so a validating harness always detects the corruption.
func corruptResult(res *RunResult, frng *xrand.Rand) {
	var n int64
	for _, regs := range res.Registers {
		for i := range regs {
			if frng.Bool(0.5) {
				regs[i] = garbage(frng)
				n++
			}
		}
	}
	for i := range res.Memory {
		if frng.Bool(0.05) {
			res.Memory[i] = garbage(frng)
			n++
		}
	}
	if n == 0 && len(res.Memory) > 0 {
		res.Memory[frng.Intn(len(res.Memory))] = garbage(frng)
		n++
	}
	res.Stats.CorruptedValues = n
}
