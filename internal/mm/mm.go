// Package mm implements the memory consistency specification (MCS)
// formalism of Section 2 of the MC Mutants paper: executions as sets of
// events and relations (Table 1), the three MCS models used in the paper
// (sequential consistency, SC-per-location, and
// release/acquire-SC-per-location), and the machinery to decide whether a
// candidate execution is allowed — acyclicity of the happens-before
// relation, with an existential search over coherence orders when the
// coherence order was not fully observed.
//
// Events carry the values they read and wrote. Because every write in a
// litmus test stores a unique nonzero value, the reads-from relation is
// recovered directly from values; the coherence order is recovered from
// observer threads and final memory state where available, and
// existentially quantified otherwise.
package mm

import (
	"fmt"
	"sort"
	"strings"
)

// Loc identifies an atomic memory location within a test instance.
type Loc int

// Val is a value stored in an atomic location. The initial value of every
// location is 0; writes use unique nonzero values.
type Val uint32

// Kind classifies an event, following Table 1 of the paper.
type Kind int

const (
	// Read is an atomic load from an atomic location.
	Read Kind = iota
	// Write is an atomic store to an atomic location.
	Write
	// RMW is an atomic read-modify-write: one indivisible read and write.
	RMW
	// Fence is a release/acquire fence.
	Fence
)

// String returns the conventional one-letter name of the event kind.
func (k Kind) String() string {
	switch k {
	case Read:
		return "R"
	case Write:
		return "W"
	case RMW:
		return "RMW"
	case Fence:
		return "F"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// ReadsMemory reports whether events of this kind observe a value.
func (k Kind) ReadsMemory() bool { return k == Read || k == RMW }

// WritesMemory reports whether events of this kind store a value.
func (k Kind) WritesMemory() bool { return k == Write || k == RMW }

// Event is a single memory or fence event in a candidate execution.
type Event struct {
	// ID is the event's index in Execution.Events.
	ID int
	// Thread is the issuing thread.
	Thread int
	// Index is the event's program-order position within its thread.
	Index int
	// Kind is the event class.
	Kind Kind
	// Loc is the target location; meaningless for fences.
	Loc Loc
	// ReadVal is the value observed (Read and RMW events).
	ReadVal Val
	// WriteVal is the value stored (Write and RMW events).
	WriteVal Val
	// Label is an optional human-readable tag such as "a" used when
	// rendering executions (Fig. 2 of the paper).
	Label string
}

// String renders the event in the herd-style notation used by the paper,
// e.g. "a: W x=1" or "c: R y=0".
func (e Event) String() string {
	name := e.Label
	if name == "" {
		name = fmt.Sprintf("e%d", e.ID)
	}
	switch e.Kind {
	case Fence:
		return fmt.Sprintf("%s: F", name)
	case Read:
		return fmt.Sprintf("%s: R %s=%d", name, locName(e.Loc), e.ReadVal)
	case Write:
		return fmt.Sprintf("%s: W %s=%d", name, locName(e.Loc), e.WriteVal)
	case RMW:
		return fmt.Sprintf("%s: RMW %s=%d->%d", name, locName(e.Loc), e.ReadVal, e.WriteVal)
	default:
		return fmt.Sprintf("%s: ?", name)
	}
}

// locNames is indexed rather than sliced from a byte string so the
// returned names are interned constants: locName sits on the
// outcome-key hot path and must not allocate.
var locNames = [...]string{"x", "y", "z", "w", "v", "u"}

func locName(l Loc) string {
	if int(l) < len(locNames) {
		return locNames[l]
	}
	return fmt.Sprintf("m%d", int(l))
}

// LocName returns the conventional single-letter name for a location
// (x, y, z, ...), matching the litmus-test literature.
func LocName(l Loc) string { return locName(l) }

// EdgeKind labels happens-before edges for cycle explanations.
type EdgeKind int

const (
	// EdgePO is program order.
	EdgePO EdgeKind = iota
	// EdgePOLoc is program order restricted to one location.
	EdgePOLoc
	// EdgeRF is reads-from.
	EdgeRF
	// EdgeCO is coherence order.
	EdgeCO
	// EdgeFR is from-reads.
	EdgeFR
	// EdgeSW is synchronizes-with (between fences).
	EdgeSW
	// EdgePOSWPO is the composed po;sw;po release/acquire ordering.
	EdgePOSWPO
)

// String returns the relation name as written in the paper.
func (k EdgeKind) String() string {
	switch k {
	case EdgePO:
		return "po"
	case EdgePOLoc:
		return "po-loc"
	case EdgeRF:
		return "rf"
	case EdgeCO:
		return "co"
	case EdgeFR:
		return "fr"
	case EdgeSW:
		return "sw"
	case EdgePOSWPO:
		return "po;sw;po"
	default:
		return fmt.Sprintf("edge(%d)", int(k))
	}
}

// Edge is a labeled happens-before edge between two events.
type Edge struct {
	From, To int
	Kind     EdgeKind
}

// MCS selects one of the three memory consistency specifications from
// Section 2.1 of the paper.
type MCS int

const (
	// SC is sequential consistency: hb = po ∪ com and hb must be acyclic.
	SC MCS = iota
	// SCPerLocation is coherence: hb = po-loc ∪ com.
	SCPerLocation
	// RelAcqSCPerLocation extends SCPerLocation with the release/acquire
	// fence ordering po;sw;po. This is the WebGPU model tested by the
	// paper's Mutator 3.
	RelAcqSCPerLocation
	// TSO is the x86-style total-store-order model, axiomatized with
	// the standard two conditions: uniproc (po-loc with communication
	// must be acyclic) and the global order (program order minus
	// write-to-read pairs, with external reads-from, coherence and
	// from-reads, must be acyclic). Fences and RMWs drain the store
	// buffer and restore full order. Section 3.4 of the paper uses such
	// a model to prune mutants whose behavior a TSO implementation can
	// never exhibit; the litmus package's store-buffer machine oracle
	// is proven equivalent to this axiomatization over the whole
	// generated suite by test.
	TSO
)

// String names the model as in the paper.
func (m MCS) String() string {
	switch m {
	case SC:
		return "SC"
	case SCPerLocation:
		return "SC-per-location"
	case RelAcqSCPerLocation:
		return "rel-acq-SC-per-location"
	case TSO:
		return "TSO"
	default:
		return fmt.Sprintf("MCS(%d)", int(m))
	}
}

// Execution is a candidate execution: a set of events plus a coherence
// order per location. The rf and fr relations are derived from values.
type Execution struct {
	Events []Event
	// CoOrder maps each location to the IDs of its writes (and RMWs) in
	// coherence order. When nil for a location that has multiple writes,
	// consistency checks existentially quantify over all total orders.
	CoOrder map[Loc][]int
	// CoLast optionally pins the coherence-final write of a location
	// (by event ID). This encodes observed final memory state: the final
	// value of a location is the value of its co-maximal write.
	CoLast map[Loc]int
}

// Clone returns a deep copy of the execution.
func (x *Execution) Clone() *Execution {
	c := &Execution{Events: append([]Event(nil), x.Events...)}
	if x.CoOrder != nil {
		c.CoOrder = make(map[Loc][]int, len(x.CoOrder))
		for l, order := range x.CoOrder {
			c.CoOrder[l] = append([]int(nil), order...)
		}
	}
	if x.CoLast != nil {
		c.CoLast = make(map[Loc]int, len(x.CoLast))
		for l, id := range x.CoLast {
			c.CoLast[l] = id
		}
	}
	return c
}

// Threads returns the number of threads referenced by the execution.
func (x *Execution) Threads() int {
	n := 0
	for _, e := range x.Events {
		if e.Thread+1 > n {
			n = e.Thread + 1
		}
	}
	return n
}

// WritesTo returns the IDs of write/RMW events targeting loc, in event-ID
// order (not coherence order).
func (x *Execution) WritesTo(loc Loc) []int {
	var ids []int
	for _, e := range x.Events {
		if e.Kind.WritesMemory() && e.Loc == loc {
			ids = append(ids, e.ID)
		}
	}
	return ids
}

// Locations returns the sorted set of locations used by memory events.
func (x *Execution) Locations() []Loc {
	seen := map[Loc]bool{}
	for _, e := range x.Events {
		if e.Kind != Fence {
			seen[e.Loc] = true
		}
	}
	locs := make([]Loc, 0, len(seen))
	for l := range seen {
		locs = append(locs, l)
	}
	sort.Slice(locs, func(i, j int) bool { return locs[i] < locs[j] })
	return locs
}

// Validate checks structural well-formedness: IDs match positions, thread
// indices are sequential in program order, write values are unique and
// nonzero per test, and every read value is either 0 (initial) or the
// value of some write to the same location.
func (x *Execution) Validate() error {
	writeVals := map[Loc]map[Val]int{}
	for i, e := range x.Events {
		if e.ID != i {
			return fmt.Errorf("mm: event at position %d has ID %d", i, e.ID)
		}
		if e.Kind.WritesMemory() {
			if e.WriteVal == 0 {
				return fmt.Errorf("mm: %v writes the reserved initial value 0", e)
			}
			if writeVals[e.Loc] == nil {
				writeVals[e.Loc] = map[Val]int{}
			}
			if prev, dup := writeVals[e.Loc][e.WriteVal]; dup {
				return fmt.Errorf("mm: events %d and %d both write %d to %s",
					prev, e.ID, e.WriteVal, locName(e.Loc))
			}
			writeVals[e.Loc][e.WriteVal] = e.ID
		}
	}
	for _, e := range x.Events {
		if e.Kind.ReadsMemory() && e.ReadVal != 0 {
			if _, ok := writeVals[e.Loc][e.ReadVal]; !ok {
				return fmt.Errorf("mm: %v reads value %d never written to %s",
					e, e.ReadVal, locName(e.Loc))
			}
		}
	}
	// Per-thread indices must be strictly increasing in event order.
	last := map[int]int{}
	for _, e := range x.Events {
		if prev, ok := last[e.Thread]; ok && e.Index <= prev {
			return fmt.Errorf("mm: thread %d indices not increasing at %v", e.Thread, e)
		}
		last[e.Thread] = e.Index
	}
	if x.CoOrder != nil {
		for l, order := range x.CoOrder {
			want := x.WritesTo(l)
			if len(order) != len(want) {
				return fmt.Errorf("mm: co order for %s lists %d writes, have %d",
					locName(l), len(order), len(want))
			}
			seen := map[int]bool{}
			for _, id := range order {
				if id < 0 || id >= len(x.Events) || !x.Events[id].Kind.WritesMemory() ||
					x.Events[id].Loc != l || seen[id] {
					return fmt.Errorf("mm: invalid co order for %s: %v", locName(l), order)
				}
				seen[id] = true
			}
		}
	}
	for l, id := range x.CoLast {
		if id < 0 || id >= len(x.Events) || !x.Events[id].Kind.WritesMemory() ||
			x.Events[id].Loc != l {
			return fmt.Errorf("mm: CoLast for %s names event %d which is not a write to it",
				locName(l), id)
		}
	}
	return nil
}

// rf computes the reads-from relation from values. A read of 0 reads from
// the initial state and contributes no rf edge. The bool result reports
// whether all nonzero reads found their writer.
func (x *Execution) rf() ([]Edge, bool) {
	writer := map[Loc]map[Val]int{}
	for _, e := range x.Events {
		if e.Kind.WritesMemory() {
			if writer[e.Loc] == nil {
				writer[e.Loc] = map[Val]int{}
			}
			writer[e.Loc][e.WriteVal] = e.ID
		}
	}
	var edges []Edge
	ok := true
	for _, e := range x.Events {
		if !e.Kind.ReadsMemory() || e.ReadVal == 0 {
			continue
		}
		w, found := writer[e.Loc][e.ReadVal]
		if !found {
			ok = false
			continue
		}
		edges = append(edges, Edge{From: w, To: e.ID, Kind: EdgeRF})
	}
	return edges, ok
}

// po computes program order edges (transitively reduced: adjacent pairs).
// Acyclicity is preserved under transitive reduction, and cycle reports
// stay readable.
func (x *Execution) po() []Edge {
	byThread := map[int][]int{}
	for _, e := range x.Events {
		byThread[e.Thread] = append(byThread[e.Thread], e.ID)
	}
	var edges []Edge
	for _, ids := range byThread {
		sort.Slice(ids, func(i, j int) bool {
			return x.Events[ids[i]].Index < x.Events[ids[j]].Index
		})
		for i := 0; i+1 < len(ids); i++ {
			edges = append(edges, Edge{From: ids[i], To: ids[i+1], Kind: EdgePO})
		}
	}
	return edges
}

// poLoc computes full (non-reduced) program order restricted to pairs of
// memory events on the same location.
func (x *Execution) poLoc() []Edge {
	var edges []Edge
	for _, a := range x.Events {
		if a.Kind == Fence {
			continue
		}
		for _, b := range x.Events {
			if b.Kind == Fence || a.Thread != b.Thread || a.Index >= b.Index || a.Loc != b.Loc {
				continue
			}
			edges = append(edges, Edge{From: a.ID, To: b.ID, Kind: EdgePOLoc})
		}
	}
	return edges
}

// coFr derives coherence and from-reads edges for a given per-location
// coherence order. A read of the initial value from-reads every write to
// its location; a read of write w from-reads every write after w in co.
func (x *Execution) coFr(co map[Loc][]int) []Edge {
	var edges []Edge
	pos := map[int]int{} // event ID -> position in its location's co
	for _, order := range co {
		for i, id := range order {
			pos[id] = i
			if i+1 < len(order) {
				edges = append(edges, Edge{From: id, To: order[i+1], Kind: EdgeCO})
			}
		}
	}
	writerOf := map[Loc]map[Val]int{}
	for _, e := range x.Events {
		if e.Kind.WritesMemory() {
			if writerOf[e.Loc] == nil {
				writerOf[e.Loc] = map[Val]int{}
			}
			writerOf[e.Loc][e.WriteVal] = e.ID
		}
	}
	for _, e := range x.Events {
		if !e.Kind.ReadsMemory() {
			continue
		}
		order := co[e.Loc]
		if e.ReadVal == 0 {
			// Read from initial state: fr to every write to the location.
			for _, w := range order {
				if w != e.ID { // an RMW does not from-read itself
					edges = append(edges, Edge{From: e.ID, To: w, Kind: EdgeFR})
				}
			}
			continue
		}
		w, ok := writerOf[e.Loc][e.ReadVal]
		if !ok {
			continue
		}
		for i := pos[w] + 1; i < len(order); i++ {
			if order[i] != e.ID {
				edges = append(edges, Edge{From: e.ID, To: order[i], Kind: EdgeFR})
			}
		}
	}
	return edges
}

// sw computes synchronizes-with edges between fences: a fence f_r in one
// thread synchronizes with a fence f_a in another thread if some write or
// RMW w is po-after f_r, some read or RMW r is po-before f_a, and r
// reads-from w (Table 1 of the paper).
func (x *Execution) sw(rfEdges []Edge) []Edge {
	readsFrom := map[int]int{} // reader -> writer
	for _, e := range rfEdges {
		readsFrom[e.To] = e.From
	}
	var edges []Edge
	for _, fr := range x.Events {
		if fr.Kind != Fence {
			continue
		}
		for _, fa := range x.Events {
			if fa.Kind != Fence || fa.Thread == fr.Thread {
				continue
			}
			if x.fencesSync(fr, fa, readsFrom) {
				edges = append(edges, Edge{From: fr.ID, To: fa.ID, Kind: EdgeSW})
			}
		}
	}
	return edges
}

func (x *Execution) fencesSync(fr, fa Event, readsFrom map[int]int) bool {
	for _, w := range x.Events {
		if !w.Kind.WritesMemory() || w.Thread != fr.Thread || w.Index <= fr.Index {
			continue
		}
		for _, r := range x.Events {
			if !r.Kind.ReadsMemory() || r.Thread != fa.Thread || r.Index >= fa.Index {
				continue
			}
			if wID, ok := readsFrom[r.ID]; ok && wID == w.ID {
				return true
			}
		}
	}
	return false
}

// poSwPo composes po;sw;po: for each sw pair (f_r, f_a), every event
// po-before f_r happens before every event po-after f_a.
func (x *Execution) poSwPo(swEdges []Edge) []Edge {
	var edges []Edge
	for _, s := range swEdges {
		frE, faE := x.Events[s.From], x.Events[s.To]
		for _, e := range x.Events {
			if e.Thread != frE.Thread || e.Index >= frE.Index {
				continue
			}
			for _, e2 := range x.Events {
				if e2.Thread != faE.Thread || e2.Index <= faE.Index {
					continue
				}
				edges = append(edges, Edge{From: e.ID, To: e2.ID, Kind: EdgePOSWPO})
			}
		}
	}
	return edges
}

// ppoTSO computes TSO's preserved program order: every program-order
// pair except a pure write followed by a pure read — regardless of
// location, since a thread may read its own buffered store before it
// reaches memory. Pairs separated by a fence, and pairs involving an
// RMW, stay ordered (fences and atomic operations drain the store
// buffer). Same-location value correctness is not ppo's job; the
// separate uniproc condition (po-loc with com) covers it, following
// the two-condition structure of the x86-TSO axiomatic model.
func (x *Execution) ppoTSO() []Edge {
	byThread := map[int][]Event{}
	for _, e := range x.Events {
		byThread[e.Thread] = append(byThread[e.Thread], e)
	}
	var edges []Edge
	for _, events := range byThread {
		sort.Slice(events, func(i, j int) bool { return events[i].Index < events[j].Index })
		for i := 0; i < len(events); i++ {
			fenceBetween := false
			for j := i + 1; j < len(events); j++ {
				a, b := events[i], events[j]
				if b.Kind == Fence {
					fenceBetween = true
					continue
				}
				if a.Kind == Fence {
					break // edges from fences are implied transitively
				}
				relaxed := a.Kind == Write && b.Kind == Read
				if relaxed && !fenceBetween {
					continue
				}
				edges = append(edges, Edge{From: a.ID, To: b.ID, Kind: EdgePO})
			}
		}
	}
	return edges
}

// rfExternal filters reads-from to cross-thread edges (rfe); a
// thread's early read of its own buffered store does not globally
// order the store.
func rfExternal(x *Execution, rfEdges []Edge) []Edge {
	var out []Edge
	for _, e := range rfEdges {
		if x.Events[e.From].Thread != x.Events[e.To].Thread {
			out = append(out, e)
		}
	}
	return out
}

// HB constructs the happens-before edge set of the execution under model
// m, using the supplied coherence order. Labels are preserved so cycles
// can be explained in the paper's notation.
func (x *Execution) HB(m MCS, co map[Loc][]int) []Edge {
	var hb []Edge
	switch m {
	case SC:
		hb = append(hb, x.po()...)
	case SCPerLocation, RelAcqSCPerLocation, TSO:
		// TSO's uniproc condition; its global condition is a separate
		// graph, see conditions().
		hb = append(hb, x.poLoc()...)
	}
	rfEdges, _ := x.rf()
	hb = append(hb, rfEdges...)
	hb = append(hb, x.coFr(co)...)
	if m == RelAcqSCPerLocation {
		swEdges := x.sw(rfEdges)
		hb = append(hb, x.poSwPo(swEdges)...)
	}
	return hb
}

// Verdict is the result of checking an execution against a model.
type Verdict struct {
	// Allowed reports whether some coherence order makes hb acyclic.
	Allowed bool
	// Consistent reports whether all read values traced back to writes;
	// an inconsistent execution indicates memory corruption rather than
	// a consistency relaxation.
	Consistent bool
	// Cycle, for disallowed executions, is one hb cycle as labeled
	// edges; empty when Allowed.
	Cycle []Edge
	// Co is a coherence order witnessing legality when Allowed and the
	// execution's co was existentially quantified.
	Co map[Loc][]int
}

// conditions returns the model's acyclicity conditions for one
// coherence order. Single-condition models use HB; TSO follows the
// x86-TSO axiomatic structure with two conditions: uniproc
// (po-loc with communication) and the global order (preserved program
// order with external reads-from, coherence and from-reads).
func (x *Execution) conditions(m MCS, co map[Loc][]int) [][]Edge {
	if m != TSO {
		return [][]Edge{x.HB(m, co)}
	}
	uniproc := x.HB(TSO, co)
	rfEdges, _ := x.rf()
	global := x.ppoTSO()
	global = append(global, rfExternal(x, rfEdges)...)
	global = append(global, x.coFr(co)...)
	return [][]Edge{uniproc, global}
}

// Check decides whether the execution is allowed under model m. When the
// execution's CoOrder is missing entries for multi-write locations, all
// total coherence orders are enumerated; the execution is allowed if any
// of them makes every one of the model's conditions acyclic. For
// disallowed executions the returned cycle is from the enumeration's
// first coherence order, which by construction lists writes in
// event-ID order.
func (x *Execution) Check(m MCS) Verdict {
	_, consistent := x.rf()
	var verdict Verdict
	verdict.Consistent = consistent
	var firstCycle []Edge
	forEachCo(x, func(co map[Loc][]int) bool {
		var cycle []Edge
		for _, cond := range x.conditions(m, co) {
			if cycle = findCycle(len(x.Events), cond); cycle != nil {
				break
			}
		}
		if cycle == nil {
			verdict.Allowed = true
			verdict.Co = cloneCo(co)
			return false // stop: found a witness
		}
		if firstCycle == nil {
			firstCycle = cycle
		}
		return true
	})
	if !verdict.Allowed {
		verdict.Cycle = firstCycle
	}
	return verdict
}

func cloneCo(co map[Loc][]int) map[Loc][]int {
	out := make(map[Loc][]int, len(co))
	for l, order := range co {
		out[l] = append([]int(nil), order...)
	}
	return out
}

// forEachCo invokes fn for every combination of total coherence orders
// consistent with the execution's fixed CoOrder entries and CoLast
// constraints. fn returns false to stop early. Locations with zero or
// one write have a single trivial order. If a fixed CoOrder contradicts
// CoLast there are no candidate orders and fn is never called.
func forEachCo(x *Execution, fn func(map[Loc][]int) bool) {
	locs := x.Locations()
	var free []Loc
	co := map[Loc][]int{}
	for _, l := range locs {
		writes := x.WritesTo(l)
		if fixed, ok := x.CoOrder[l]; ok {
			if last, pinned := x.CoLast[l]; pinned &&
				(len(fixed) == 0 || fixed[len(fixed)-1] != last) {
				return // contradiction: no consistent co exists
			}
			co[l] = fixed
			continue
		}
		co[l] = writes
		if len(writes) > 1 {
			free = append(free, l)
		} else if last, pinned := x.CoLast[l]; pinned &&
			(len(writes) == 0 || writes[0] != last) {
			return // single write that is not the pinned final write
		}
	}
	var rec func(i int) bool
	rec = func(i int) bool {
		if i == len(free) {
			return fn(co)
		}
		l := free[i]
		base := x.WritesTo(l)
		last, pinned := x.CoLast[l]
		cont := true
		permute(base, func(order []int) bool {
			if pinned && order[len(order)-1] != last {
				return true // skip orders violating the final-value pin
			}
			co[l] = order
			cont = rec(i + 1)
			return cont
		})
		co[l] = base
		return cont
	}
	rec(0)
}

// permute enumerates permutations of ids via Heap's algorithm, invoking
// fn with a shared buffer. fn returns false to stop.
func permute(ids []int, fn func([]int) bool) {
	buf := append([]int(nil), ids...)
	var rec func(k int) bool
	rec = func(k int) bool {
		if k == 1 {
			return fn(buf)
		}
		for i := 0; i < k; i++ {
			if !rec(k - 1) {
				return false
			}
			if k%2 == 0 {
				buf[i], buf[k-1] = buf[k-1], buf[i]
			} else {
				buf[0], buf[k-1] = buf[k-1], buf[0]
			}
		}
		return true
	}
	if len(buf) == 0 {
		fn(buf)
		return
	}
	rec(len(buf))
}

// findCycle returns one cycle in the edge set as labeled edges, or nil if
// the graph is acyclic. The search is a standard iterative-deepening-free
// DFS with three-color marking.
func findCycle(n int, edges []Edge) []Edge {
	adj := make([][]Edge, n)
	for _, e := range edges {
		adj[e.From] = append(adj[e.From], e)
	}
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make([]int, n)
	parent := make([]Edge, n)
	hasParent := make([]bool, n)
	var cycle []Edge
	var dfs func(u int) bool
	dfs = func(u int) bool {
		color[u] = gray
		for _, e := range adj[u] {
			v := e.To
			switch color[v] {
			case white:
				parent[v] = e
				hasParent[v] = true
				if dfs(v) {
					return true
				}
			case gray:
				// Found a back edge e: v ... u -> v. Reconstruct.
				cycle = []Edge{e}
				for w := u; w != v; {
					pe := parent[w]
					if !hasParent[w] {
						break
					}
					cycle = append([]Edge{pe}, cycle...)
					w = pe.From
				}
				return true
			}
		}
		color[u] = black
		return false
	}
	for u := 0; u < n; u++ {
		if color[u] == white && dfs(u) {
			return cycle
		}
	}
	return nil
}

// ExplainCycle renders a cycle in the paper's notation, e.g.
// "b -fr-> c -rf-> a -po-loc-> b".
func (x *Execution) ExplainCycle(cycle []Edge) string {
	if len(cycle) == 0 {
		return ""
	}
	var b strings.Builder
	name := func(id int) string {
		if l := x.Events[id].Label; l != "" {
			return l
		}
		return fmt.Sprintf("e%d", id)
	}
	for i, e := range cycle {
		if i == 0 {
			b.WriteString(name(e.From))
		}
		fmt.Fprintf(&b, " -%s-> %s", e.Kind, name(e.To))
	}
	return b.String()
}

// Render prints the execution as one line per event grouped by thread,
// in the style of Fig. 2 of the paper.
func (x *Execution) Render() string {
	var b strings.Builder
	for t := 0; t < x.Threads(); t++ {
		fmt.Fprintf(&b, "Thread %d:\n", t)
		for _, e := range x.Events {
			if e.Thread == t {
				fmt.Fprintf(&b, "  %s\n", e)
			}
		}
	}
	return b.String()
}

// ToDOT renders the execution and its happens-before edges under the
// given model (for the execution's pinned or first coherence order) in
// Graphviz DOT form, for visual inspection of Fig. 2-style diagrams.
func (x *Execution) ToDOT(m MCS, name string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n  rankdir=TB;\n  node [shape=box, fontname=\"monospace\"];\n", name)
	byThread := map[int][]Event{}
	for _, e := range x.Events {
		byThread[e.Thread] = append(byThread[e.Thread], e)
	}
	for t := 0; t < x.Threads(); t++ {
		fmt.Fprintf(&b, "  subgraph cluster_t%d {\n    label=\"Thread %d\";\n", t, t)
		for _, e := range byThread[t] {
			fmt.Fprintf(&b, "    e%d [label=%q];\n", e.ID, e.String())
		}
		b.WriteString("  }\n")
	}
	// Use the first coherence order the existential search would try.
	var edges []Edge
	forEachCo(x, func(co map[Loc][]int) bool {
		for _, cond := range x.conditions(m, co) {
			edges = append(edges, cond...)
		}
		return false
	})
	seen := map[string]bool{}
	for _, e := range edges {
		key := fmt.Sprintf("%d-%d-%s", e.From, e.To, e.Kind)
		if seen[key] {
			continue
		}
		seen[key] = true
		fmt.Fprintf(&b, "  e%d -> e%d [label=%q];\n", e.From, e.To, e.Kind)
	}
	b.WriteString("}\n")
	return b.String()
}
