package tuning

import (
	"bytes"
	"testing"

	"repro/internal/confidence"
	"repro/internal/harness"
	"repro/internal/litmus"
	"repro/internal/mutation"
	"repro/internal/xrand"
)

// miniDataset runs a very small tuning study over a handful of mutants
// and is shared across tests (building it is the expensive part).
var miniDS *Dataset

func dataset(t testing.TB) *Dataset {
	t.Helper()
	if miniDS != nil {
		return miniDS
	}
	suite := mutation.MustGenerate()
	var tests []*litmus.Test
	for _, name := range []string{"CoRR-mutant", "MP", "SB", "MP-relacq-nofence"} {
		test, ok := suite.ByName(name)
		if !ok {
			t.Fatalf("missing %s", name)
		}
		tests = append(tests, test)
	}
	cfg := SmallConfig()
	cfg.Environments = 3
	cfg.SITEIterations = 10
	cfg.PTEIterations = 2
	cfg.Devices = []string{"AMD", "Intel"}
	ds, err := Run(cfg, tests, nil)
	if err != nil {
		t.Fatal(err)
	}
	miniDS = ds
	return ds
}

func TestFamilies(t *testing.T) {
	fams := Families()
	if len(fams) != 4 {
		t.Fatal("want 4 families")
	}
	names := map[Family]string{
		SITEBaseline: "SITE-Baseline", SITE: "SITE",
		PTEBaseline: "PTE-Baseline", PTE: "PTE",
	}
	for f, want := range names {
		if f.String() != want {
			t.Errorf("%d: %q", f, f.String())
		}
		got, ok := FamilyByName(want)
		if !ok || got != f {
			t.Errorf("FamilyByName(%q) failed", want)
		}
	}
	if _, ok := FamilyByName("nope"); ok {
		t.Error("bogus family resolved")
	}
	if !PTE.Parallel() || SITE.Parallel() {
		t.Error("Parallel() wrong")
	}
	if !SITEBaseline.Baseline() || PTE.Baseline() {
		t.Error("Baseline() wrong")
	}
}

func TestRunProducesCompleteGrid(t *testing.T) {
	ds := dataset(t)
	// Families: baselines have 1 env, tuned have 3. Devices: 2.
	// Tests: 4. Expected records: (1+3+1+3) * 2 * 4 = 64.
	if len(ds.Records) != 64 {
		t.Fatalf("got %d records, want 64", len(ds.Records))
	}
	seen := map[string]int{}
	for _, r := range ds.Records {
		seen[r.Family]++
		if r.Iterations <= 0 || r.Instances <= 0 || r.SimSeconds <= 0 {
			t.Fatalf("degenerate record: %+v", r)
		}
		if !r.IsMutant {
			t.Fatalf("non-mutant record for %s", r.Test)
		}
	}
	if seen["SITE-Baseline"] != 8 || seen["PTE-Baseline"] != 8 ||
		seen["SITE"] != 24 || seen["PTE"] != 24 {
		t.Fatalf("family record counts: %v", seen)
	}
}

func TestRunRejectsEmptyTests(t *testing.T) {
	if _, err := Run(SmallConfig(), nil, nil); err == nil {
		t.Fatal("empty test list accepted")
	}
}

func TestRunUnknownDevice(t *testing.T) {
	suite := mutation.MustGenerate()
	test, _ := suite.ByName("MP")
	cfg := SmallConfig()
	cfg.Environments = 1
	cfg.Devices = []string{"Voodoo2"}
	if _, err := Run(cfg, []*litmus.Test{test}, nil); err == nil {
		t.Fatal("unknown device accepted")
	}
}

func TestMutationScoreAndRates(t *testing.T) {
	ds := dataset(t)
	for _, fam := range []string{"PTE", "PTE-Baseline"} {
		killed, total := ds.MutationScore(fam, "", "")
		if total != 8 { // 4 mutants x 2 devices
			t.Fatalf("%s: total = %d, want 8", fam, total)
		}
		if killed <= 0 {
			t.Fatalf("%s killed nothing", fam)
		}
	}
	pteKilled, _ := ds.MutationScore("PTE", "", "")
	siteBaseKilled, _ := ds.MutationScore("SITE-Baseline", "", "")
	if pteKilled < siteBaseKilled {
		t.Fatalf("PTE (%d) under SITE-Baseline (%d)", pteKilled, siteBaseKilled)
	}
	if rate := ds.AvgDeathRate("PTE", "", ""); rate <= 0 {
		t.Fatal("PTE average death rate is 0")
	}
	if rate := ds.AvgDeathRate("PTE", "AMD", "weakening po-loc"); rate < 0 {
		t.Fatal("filtered death rate negative")
	}
	if rate := ds.AvgDeathRate("nonexistent", "", ""); rate != 0 {
		t.Fatal("unknown family should rate 0")
	}
}

func TestPTEOutpacesSITEOnRates(t *testing.T) {
	ds := dataset(t)
	pte := ds.AvgDeathRate("PTE", "", "")
	site := ds.AvgDeathRate("SITE", "", "")
	if pte <= site {
		t.Fatalf("PTE rate %v not above SITE rate %v", pte, site)
	}
	// The paper reports ~3 orders of magnitude; under the scaled-down
	// simulation demand at least one order.
	if site > 0 && pte/site < 10 {
		t.Errorf("PTE/SITE rate ratio only %.1fx", pte/site)
	}
}

func TestRateTables(t *testing.T) {
	ds := dataset(t)
	tables := ds.RateTables("PTE")
	if len(tables) != 4 {
		t.Fatalf("%d rate tables, want 4", len(tables))
	}
	for _, tr := range tables {
		if len(tr.Rates) != 3 { // 3 PTE environments
			t.Fatalf("%s: %d environments, want 3", tr.Test, len(tr.Rates))
		}
		for env, per := range tr.Rates {
			if len(per) != 2 { // 2 devices
				t.Fatalf("%s/%s: %d devices", tr.Test, env, len(per))
			}
		}
	}
	// The tables feed Algorithm 1 without error.
	for _, tr := range tables {
		if _, err := confidence.MergeEnvironments(tr.Rates, ds.Devices(), 0.95, 1); err != nil {
			t.Fatal(err)
		}
	}
}

func TestDatasetSaveLoadRoundTrip(t *testing.T) {
	ds := dataset(t)
	var buf bytes.Buffer
	if err := ds.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Records) != len(ds.Records) {
		t.Fatalf("round trip lost records: %d vs %d", len(back.Records), len(ds.Records))
	}
	if back.Records[0] != ds.Records[0] {
		t.Fatalf("first record changed:\n%+v\n%+v", back.Records[0], ds.Records[0])
	}
	if _, err := Load(bytes.NewBufferString("{broken")); err == nil {
		t.Fatal("corrupt JSON accepted")
	}
}

func TestDevicesAndMutators(t *testing.T) {
	ds := dataset(t)
	devs := ds.Devices()
	if len(devs) != 2 || devs[0] != "AMD" || devs[1] != "Intel" {
		t.Fatalf("Devices() = %v", devs)
	}
	muts := ds.Mutators()
	if len(muts) != 3 {
		t.Fatalf("Mutators() = %v", muts)
	}
}

func TestDeterministicRuns(t *testing.T) {
	suite := mutation.MustGenerate()
	test, _ := suite.ByName("MP")
	cfg := SmallConfig()
	cfg.Environments = 2
	cfg.SITEIterations = 5
	cfg.PTEIterations = 2
	cfg.Devices = []string{"AMD"}
	a, err := Run(cfg, []*litmus.Test{test}, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg, []*litmus.Test{test}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Records {
		if a.Records[i] != b.Records[i] {
			t.Fatalf("record %d differs between identical runs", i)
		}
	}
}

func TestProgressCallback(t *testing.T) {
	suite := mutation.MustGenerate()
	test, _ := suite.ByName("MP")
	cfg := SmallConfig()
	cfg.Environments = 1
	cfg.SITEIterations = 2
	cfg.PTEIterations = 1
	cfg.Devices = []string{"AMD"}
	var lines int
	if _, err := Run(cfg, []*litmus.Test{test}, func(string) { lines++ }); err != nil {
		t.Fatal(err)
	}
	if lines != 4 { // 4 families x 1 env x 1 device
		t.Fatalf("progress lines = %d, want 4", lines)
	}
}

// TestCorrelationStudy runs a scaled-down Table 4: each injected bug's
// observation rate must correlate positively and strongly with its
// mutant's death rate across random environments.
func TestCorrelationStudy(t *testing.T) {
	if testing.Short() {
		t.Skip("correlation study is slow")
	}
	suite := mutation.MustGenerate()
	cfg := SmallCorrelationConfig()
	for _, c := range PaperBugCases() {
		res, err := Correlate(c, suite, cfg)
		if err != nil {
			t.Fatalf("%s: %v", c.Name, err)
		}
		t.Logf("%-16s PCC=%.3f p=%.2g bug-envs=%d/%d mutant-envs=%d/%d",
			c.Name, res.PCC, res.PValue,
			res.BugObservedIn, res.Environments,
			res.MutantKilledIn, res.Environments)
		if res.BugObservedIn == 0 {
			t.Errorf("%s: injected bug never observed", c.Name)
		}
		if res.MutantKilledIn == 0 {
			t.Errorf("%s: mutant never killed", c.Name)
		}
		if res.PCC < 0.5 {
			t.Errorf("%s: PCC %.3f too weak (paper: >= .89)", c.Name, res.PCC)
		}
	}
}

func TestCorrelateUnknownNames(t *testing.T) {
	suite := mutation.MustGenerate()
	cfg := SmallCorrelationConfig()
	cfg.Environments = 3
	cfg.Iterations = 1
	bad := PaperBugCases()[0]
	bad.Conformance = "nope"
	if _, err := Correlate(bad, suite, cfg); err == nil {
		t.Error("unknown conformance test accepted")
	}
	bad = PaperBugCases()[0]
	bad.Mutant = "nope"
	if _, err := Correlate(bad, suite, cfg); err == nil {
		t.Error("unknown mutant accepted")
	}
	bad = PaperBugCases()[0]
	bad.Device = "nope"
	if _, err := Correlate(bad, suite, cfg); err == nil {
		t.Error("unknown device accepted")
	}
}

func TestOptimizeFindsKillingEnvironment(t *testing.T) {
	suite := mutation.MustGenerate()
	test, _ := suite.ByName("MP")
	cfg := DefaultOptimizeConfig()
	cfg.ExploreRounds = 8
	cfg.RefineRounds = 8
	cfg.Iterations = 3
	best, err := Optimize(test, "AMD", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if best.Evaluated != 16 {
		t.Fatalf("Evaluated = %d, want 16", best.Evaluated)
	}
	if best.Kills == 0 || best.Rate <= 0 {
		t.Fatalf("optimizer found no killing environment: %+v", best)
	}
	if err := best.Env.Validate(); err != nil {
		t.Fatalf("optimizer returned invalid env: %v", err)
	}
}

func TestOptimizeDeterministic(t *testing.T) {
	suite := mutation.MustGenerate()
	test, _ := suite.ByName("SB")
	cfg := DefaultOptimizeConfig()
	cfg.ExploreRounds = 4
	cfg.RefineRounds = 2
	cfg.Iterations = 2
	a, err := Optimize(test, "Intel", cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Optimize(test, "Intel", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Rate != b.Rate || a.Kills != b.Kills {
		t.Fatalf("nondeterministic optimizer: %+v vs %+v", a, b)
	}
}

func TestOptimizeErrors(t *testing.T) {
	suite := mutation.MustGenerate()
	test, _ := suite.ByName("MP")
	cfg := DefaultOptimizeConfig()
	cfg.ExploreRounds = 0
	if _, err := Optimize(test, "AMD", cfg); err == nil {
		t.Error("zero rounds accepted")
	}
	cfg = DefaultOptimizeConfig()
	cfg.Iterations = 0
	if _, err := Optimize(test, "AMD", cfg); err == nil {
		t.Error("zero iterations accepted")
	}
	cfg = DefaultOptimizeConfig()
	if _, err := Optimize(test, "nope", cfg); err == nil {
		t.Error("unknown device accepted")
	}
}

func TestNeighborAlwaysValid(t *testing.T) {
	rng := xrand.New(11)
	scale := harness.DefaultScale()
	p := harness.Random(rng, true, scale)
	for i := 0; i < 500; i++ {
		p = neighbor(p, rng, scale)
		if err := p.Validate(); err != nil {
			t.Fatalf("step %d: %v\n%+v", i, err, p)
		}
	}
}
