// Quickstart: run one litmus test in a parallel testing environment on
// a simulated device and inspect the outcome histogram.
//
// The message-passing (MP) test is the mutant of MP-CO from the
// paper's weakening po-loc mutator: its target behavior — seeing the
// flag but not the data — is legal on a relaxed device, and observing
// it "kills the mutant", showing the environment can expose weak
// memory behavior.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/gpu"
	"repro/internal/harness"
	"repro/internal/mutation"
	"repro/internal/xrand"
)

func main() {
	// 1. Generate the paper's suite: 20 conformance tests, 32 mutants.
	suite, err := mutation.Generate()
	if err != nil {
		log.Fatal(err)
	}
	test, _ := suite.ByName("MP")
	fmt.Println(test)

	// 2. Pick a device from the Table 3 fleet.
	profile, _ := gpu.ProfileByName("AMD")
	device, err := gpu.NewDevice(profile, gpu.Bugs{})
	if err != nil {
		log.Fatal(err)
	}

	// 3. Build a parallel testing environment: 16 workgroups x 32
	// threads = 512 test instances per kernel launch, plus stress.
	env := harness.PTEBaseline(16, 32)
	env.MaxWorkgroups = env.TestingWorkgroups + 4
	env.MemStressPct = 100
	env.MemStressIters = 12
	env.PreStressPct = 80
	env.PreStressIters = 3
	env.MemStride = 2
	env.MemLocOffset = 1

	runner, err := harness.NewRunner(device, env)
	if err != nil {
		log.Fatal(err)
	}

	// 4. Run and report. Every outcome is classified by the axiomatic
	// checker; the target condition marks the weak behavior of
	// interest.
	res, err := runner.Run(test, 20, xrand.New(42))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ran %d instances over %d kernel launches (%.4f simulated seconds)\n",
		res.Instances, res.Iterations, res.SimSeconds)
	fmt.Printf("weak behavior %q observed %d times (%.4g per simulated second)\n",
		test.Target.String(), res.TargetCount, res.TargetRate())
	fmt.Printf("MCS violations: %d (a conformant device must report 0)\n\n", res.Violations)
	fmt.Println("outcome histogram:")
	fmt.Println(res.Hist)
}
