package mm

import (
	"testing"
	"testing/quick"

	"repro/internal/xrand"
)

// randomExecution builds a structurally valid random execution: up to
// three threads of up to three memory events over two locations, with
// occasional fences, unique write values, and read values drawn from
// {initial} ∪ {written values}.
func randomExecution(rng *xrand.Rand) *Execution {
	x := &Execution{}
	nextVal := Val(1)
	var writes [2][]Val
	type pending struct {
		id  int
		loc Loc
	}
	var reads []pending
	threads := rng.IntBetween(1, 3)
	for t := 0; t < threads; t++ {
		n := rng.IntBetween(1, 3)
		for i := 0; i < n; i++ {
			kind := Kind(rng.Intn(4))
			loc := Loc(rng.Intn(2))
			e := Event{ID: len(x.Events), Thread: t, Index: i, Kind: kind, Loc: loc}
			switch kind {
			case Write:
				e.WriteVal = nextVal
				writes[loc] = append(writes[loc], nextVal)
				nextVal++
			case RMW:
				e.WriteVal = nextVal
				writes[loc] = append(writes[loc], nextVal)
				nextVal++
				reads = append(reads, pending{id: e.ID, loc: loc})
			case Read:
				reads = append(reads, pending{id: e.ID, loc: loc})
			}
			x.Events = append(x.Events, e)
		}
	}
	// Assign read values after all writes are known.
	for _, r := range reads {
		candidates := append([]Val{0}, writes[r.loc]...)
		x.Events[r.id].ReadVal = candidates[rng.Intn(len(candidates))]
	}
	return x
}

// TestQuickRandomExecutionsValidate: the generator only produces
// structurally valid executions, and Check never panics on them.
func TestQuickRandomExecutionsValidate(t *testing.T) {
	rng := xrand.New(61)
	f := func(seed uint16) bool {
		_ = seed
		x := randomExecution(rng)
		if err := x.Validate(); err != nil {
			t.Logf("invalid: %v\n%s", err, x.Render())
			return false
		}
		for _, m := range []MCS{SC, TSO, SCPerLocation, RelAcqSCPerLocation} {
			x.Check(m)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickModelInclusionsOnRandomExecutions: the strength hierarchy
// SC ⊆ TSO ⊆ SC-per-location and rel-acq ⊆ SC-per-location holds on
// arbitrary executions, not just the curated catalogs.
func TestQuickModelInclusionsOnRandomExecutions(t *testing.T) {
	rng := xrand.New(67)
	f := func(seed uint16) bool {
		_ = seed
		x := randomExecution(rng)
		sc := x.Check(SC).Allowed
		tso := x.Check(TSO).Allowed
		coh := x.Check(SCPerLocation).Allowed
		ra := x.Check(RelAcqSCPerLocation).Allowed
		if sc && !tso {
			t.Logf("SC-allowed, TSO-forbidden:\n%s", x.Render())
			return false
		}
		if tso && !coh {
			t.Logf("TSO-allowed, coherence-forbidden:\n%s", x.Render())
			return false
		}
		if ra && !coh {
			t.Logf("rel-acq-allowed, coherence-forbidden:\n%s", x.Render())
			return false
		}
		if coh && !x.Check(SCPerLocation).Consistent {
			// Allowed executions must also be value-consistent here,
			// since the generator never fabricates values.
			t.Logf("allowed but inconsistent:\n%s", x.Render())
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickCheckDeterministic: the verdict is a pure function of the
// execution.
func TestQuickCheckDeterministic(t *testing.T) {
	rng := xrand.New(71)
	f := func(seed uint16) bool {
		_ = seed
		x := randomExecution(rng)
		for _, m := range []MCS{SC, TSO, SCPerLocation, RelAcqSCPerLocation} {
			a := x.Check(m)
			b := x.Check(m)
			if a.Allowed != b.Allowed || a.Consistent != b.Consistent {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickDisallowedHaveCycles: every disallowed consistent execution
// carries an explanation (a nonempty cycle) unless its constraints
// contradict co pinning outright.
func TestQuickDisallowedHaveCycles(t *testing.T) {
	rng := xrand.New(73)
	f := func(seed uint16) bool {
		_ = seed
		x := randomExecution(rng)
		v := x.Check(SCPerLocation)
		if v.Allowed || !v.Consistent {
			return true
		}
		return len(v.Cycle) > 0 && x.ExplainCycle(v.Cycle) != ""
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}
