package core

import (
	"context"
	"encoding/json"
	"fmt"
	"sync"
	"time"

	"repro/internal/dist"
	"repro/internal/gpu"
	"repro/internal/harness"
	"repro/internal/sched"
	"repro/internal/wgsl"
)

// WorkSpec is the self-contained work descriptor a distributed
// campaign advertises to workers (dist.WorkInfo.Descriptor). A worker
// holding only this JSON rebuilds the exact cell grid and executor the
// submitting side planned — same suite, platforms, environments, seed
// and retry policy — which dist verifies by manifest before any lease
// is granted. Everything in it feeds the split-seed determinism
// contract, so a leased cell's result is byte-identical to a local
// run's.
type WorkSpec struct {
	// Kind is the campaign kind: "conformance" or "evaluate".
	Kind string `json:"kind"`
	// Devices are the platform device short names. Conformance runs one
	// fleet campaign over all of them; evaluate plans one campaign per
	// device.
	Devices []string `json:"devices"`
	// Envs are environment preset names (see EnvByName); conformance
	// uses the first, evaluate crosses all of them with the mutants.
	Envs []string `json:"envs"`
	// Iters is kernel launches per cell; Seed the campaign seed.
	Iters int    `json:"iters"`
	Seed  uint64 `json:"seed"`
	// FenceBug injects the fence-dropping driver on every platform.
	FenceBug bool `json:"fence_bug,omitempty"`
	// Faults, when non-nil, is the device-stack fault model every
	// platform runs under (fault streams are seeded, so workers inject
	// identical faults).
	Faults *gpu.FaultModel `json:"faults,omitempty"`
	// Retries, BackoffMS and CellTimeoutMS are the per-cell retry
	// policy. They are part of the byte-identity contract — attempt
	// counts and timeout failures appear in reports — so workers must
	// run the submitting side's values, not their own defaults.
	Retries       int   `json:"retries,omitempty"`
	BackoffMS     int64 `json:"backoff_ms,omitempty"`
	CellTimeoutMS int64 `json:"cell_timeout_ms,omitempty"`
}

// Descriptor returns the spec serialized for dist.WorkInfo.
func (ws WorkSpec) Descriptor() (json.RawMessage, error) {
	raw, err := json.Marshal(ws)
	if err != nil {
		return nil, fmt.Errorf("core: encode work spec: %w", err)
	}
	return raw, nil
}

// CacheSalt returns the result-cache salt for the campaign this work
// spec describes: the canonical descriptor JSON. Every workload
// parameter outside the scheduler spec — iterations, environments,
// fault model, driver bug, retry policy — is in it, so two campaigns
// share cache entries exactly when they would compute identical
// results. The submitting CLI, serve jobs and every distributed
// worker derive their salt from the same descriptor, which is what
// makes cache keys agree fleet-wide.
func (ws WorkSpec) CacheSalt() (string, error) {
	raw, err := ws.Descriptor()
	if err != nil {
		return "", err
	}
	return string(raw), nil
}

// platforms expands the device list into Platforms with the spec's
// driver and fault model applied — the same expansion cmdCampaign does
// for local runs.
func (ws WorkSpec) platforms() []Platform {
	out := make([]Platform, 0, len(ws.Devices))
	for _, d := range ws.Devices {
		p := Platform{Device: d}
		if ws.Faults != nil {
			p.Faults = *ws.Faults
		}
		if ws.FenceBug {
			p.Driver = wgsl.DriverFenceDropping
		}
		out = append(out, p)
	}
	return out
}

// envParams resolves the environment presets.
func (ws WorkSpec) envParams() ([]harness.Params, error) {
	if len(ws.Envs) == 0 {
		return nil, fmt.Errorf("core: work spec has no environments")
	}
	out := make([]harness.Params, 0, len(ws.Envs))
	for _, name := range ws.Envs {
		env, err := EnvByName(name, 16, 32)
		if err != nil {
			return nil, err
		}
		out = append(out, env)
	}
	return out, nil
}

// WorkUnit is one campaign a worker can execute ranges of: the locally
// rebuilt spec (whose Manifest must match the coordinator's) and the
// range runner that executes leased cells.
type WorkUnit struct {
	// Campaign is the unit's suggested coordinator registration name
	// ("conformance", "evaluate.<device>").
	Campaign string
	Spec     sched.Spec
	Run      dist.RunRange
}

// DistWorkOptions tunes the worker side of DistWorkOpts beyond what
// the descriptor dictates: pool size, fake clocks, and the worker's
// local result cache. None of it affects results — any combination
// yields segments byte-identical to a local run.
type DistWorkOptions struct {
	// Parallel bounds the worker-side scheduler pool; < 1 means serial.
	Parallel int
	// Sleep overrides retry waiting (tests inject fake clocks).
	Sleep func(time.Duration)
	// Cache, when non-nil, is this worker's local result cache. The
	// salt is derived from the canonical descriptor (WorkSpec.CacheSalt),
	// so every worker and the submitting side address the same entries;
	// hits are tagged on delivered segments and aggregated fleet-wide by
	// the coordinator.
	Cache sched.ResultCache
}

// DistWork plans the work units a WorkSpec describes: one fleet unit
// for conformance, one unit per device for evaluate. parallel bounds
// the worker-side scheduler pool (any value yields identical results);
// sleep overrides retry waiting (tests inject fake clocks, nil means
// real time). The mcmutants work verb matches each advertised campaign
// to a unit by spec manifest.
func DistWork(ws WorkSpec, parallel int, sleep func(time.Duration)) ([]WorkUnit, error) {
	return DistWorkOpts(ws, DistWorkOptions{Parallel: parallel, Sleep: sleep})
}

// DistWorkOpts is DistWork with the full option set.
func DistWorkOpts(ws WorkSpec, wo DistWorkOptions) ([]WorkUnit, error) {
	st, err := NewStudy()
	if err != nil {
		return nil, err
	}
	envs, err := ws.envParams()
	if err != nil {
		return nil, err
	}
	if ws.Iters <= 0 {
		return nil, fmt.Errorf("core: work spec needs positive iters")
	}
	salt := ""
	if wo.Cache != nil {
		if salt, err = ws.CacheSalt(); err != nil {
			return nil, err
		}
	}
	platforms := ws.platforms()
	ropts := dist.SchedRunnerOptions{
		Parallel:    wo.Parallel,
		Retries:     ws.Retries,
		Backoff:     time.Duration(ws.BackoffMS) * time.Millisecond,
		CellTimeout: time.Duration(ws.CellTimeoutMS) * time.Millisecond,
		Sleep:       wo.Sleep,
		Cache:       wo.Cache,
		CacheSalt:   salt,
	}
	switch ws.Kind {
	case "conformance":
		spec, work, err := st.fleetConformanceCampaign(platforms, ws.Seed)
		if err != nil {
			return nil, err
		}
		exec := st.conformanceExec(envs[0], work, ws.Iters)
		return []WorkUnit{{Campaign: "conformance", Spec: spec, Run: dist.SchedRunner(spec, exec, ropts)}}, nil
	case "evaluate":
		units := make([]WorkUnit, 0, len(platforms))
		for _, p := range platforms {
			spec, work, err := st.evaluateCampaign(p, envs, ws.Seed)
			if err != nil {
				return nil, err
			}
			exec := st.evaluateExec(p, work, ws.Iters)
			units = append(units, WorkUnit{
				Campaign: "evaluate." + p.Device,
				Spec:     spec,
				Run:      dist.SchedRunner(spec, exec, ropts),
			})
		}
		return units, nil
	default:
		return nil, fmt.Errorf("core: unknown work spec kind %q (conformance, evaluate)", ws.Kind)
	}
}

// DistOptions configures a campaign's distributed execution (see
// CampaignOptions.Dist).
type DistOptions struct {
	// Hub is where the coordinator registers; workers reach it through
	// the hub's HTTP routes or an in-process transport. Required.
	Hub *dist.Hub
	// Name is the coordinator registration name; empty means the spec
	// name. Must be unique on the hub while the campaign runs.
	Name string
	// Descriptor is the advertised worker descriptor, typically a
	// serialized WorkSpec (see WorkSpec.Descriptor).
	Descriptor json.RawMessage
	// LeaseTTL, RangeCells, MaxReissues and StallTimeout tune the
	// coordinator; zero values use dist's defaults (10s leases, ranges
	// of 8, 5 re-issues, no stall bound).
	LeaseTTL     time.Duration
	RangeCells   int
	MaxReissues  int
	StallTimeout time.Duration
	// WorkerBreaker sets per-worker quarantine thresholds; the zero
	// value uses sched's defaults.
	WorkerBreaker sched.BreakerOptions
	// Now overrides the coordinator clock (tests inject fakes).
	Now func() time.Time
	// Logf, when non-nil, receives coordination events.
	Logf func(format string, args ...any)
}

// runCampaign executes one campaign spec: locally through the
// scheduler, or — when o.Dist is set — through a registered
// coordinator whose cells worker processes execute. Both paths return
// the same sched.Report shape, so assembly downstream is shared, and
// an interruption wraps sched.ErrInterrupted either way.
func runCampaign[R any](ctx context.Context, spec sched.Spec, exec sched.Exec[R], o CampaignOptions, schedOpts sched.Options[R]) (*sched.Report[R], error) {
	if o.Dist != nil {
		return runDistCampaign[R](ctx, spec, o, schedOpts.Instances)
	}
	closer, err := applyCampaignOptions(o, spec, &schedOpts)
	if err != nil {
		return nil, err
	}
	defer closer()
	return sched.RunContext(ctx, spec, exec, schedOpts)
}

// runDistCampaign coordinates one campaign across worker processes:
// it opens the checkpoint (seeding already-completed cells as replayed
// segments on resume), registers a coordinator on the hub, persists
// incoming segments, waits for every cell to resolve, and assembles
// the final report — applying the same breaker post-pass a local run
// would, so the result is byte-identical at any shard count.
func runDistCampaign[R any](ctx context.Context, spec sched.Spec, o CampaignOptions, instances func(R) int) (*sched.Report[R], error) {
	d := o.Dist
	if d.Hub == nil {
		return nil, fmt.Errorf("core: distributed campaign needs a hub")
	}
	name := d.Name
	if name == "" {
		name = spec.Name
	}
	start := time.Now()
	if o.Resume && o.CheckpointPath == "" {
		return nil, fmt.Errorf("core: Resume requires CheckpointPath")
	}
	var ck *sched.Checkpoint
	if o.CheckpointPath != "" {
		var err error
		ck, err = sched.OpenCheckpointOpts(o.CheckpointPath, spec, o.Resume,
			sched.CheckpointOptions{FS: o.FS, FsyncEvery: o.FsyncEvery})
		if err != nil {
			return nil, err
		}
		defer ck.Close()
	}
	seed := map[string]sched.Segment{}
	deviceOf := make(map[string]string, len(spec.Cells))
	for _, c := range spec.Cells {
		deviceOf[c.Key] = c.Device
		if ck == nil {
			continue
		}
		if raw, ok := ck.Done(c.Key); ok {
			seed[c.Key] = sched.Segment{Key: c.Key, Value: raw, Replayed: true}
		}
	}
	// Throttled live snapshots from coordinator status; the settled
	// Final one is emitted exactly once after assembly, mirroring the
	// local scheduler's progress contract (cumulative, Done monotonic).
	every := o.ProgressEvery
	if every <= 0 {
		every = sched.DefaultProgressEvery
	}
	// progMu serializes OnProgress: status callbacks arrive on RPC
	// handler goroutines (one per delivering worker), but progress
	// consumers — like the serve aggregator — are written against the
	// local scheduler's single-goroutine delivery. The callback runs
	// under the lock, and progDone fences out any late zombie delivery
	// after the Final snapshot.
	var progMu sync.Mutex
	var progDone bool
	var lastEmit time.Time
	onStatus := func(st dist.Status) {
		if o.OnProgress == nil {
			return
		}
		progMu.Lock()
		defer progMu.Unlock()
		now := time.Now()
		if progDone || (!lastEmit.IsZero() && now.Sub(lastEmit) < every) {
			return
		}
		lastEmit = now
		p := sched.Progress{
			Campaign:       spec.Name,
			Total:          st.Total,
			Done:           st.Done,
			Executed:       st.Done - st.Replayed - st.CacheHits,
			Replayed:       st.Replayed,
			CacheHits:      st.CacheHits,
			ElapsedSeconds: time.Since(start).Seconds(),
		}
		if p.ElapsedSeconds > 0 {
			p.CellsPerSec = float64(p.Executed) / p.ElapsedSeconds
		}
		o.OnProgress(p)
	}
	coord, err := dist.NewCoordinator(name, spec, d.Descriptor, seed, dist.CoordinatorOptions{
		LeaseTTL:     d.LeaseTTL,
		RangeCells:   d.RangeCells,
		MaxReissues:  d.MaxReissues,
		StallTimeout: d.StallTimeout,
		Breaker:      d.WorkerBreaker,
		Now:          d.Now,
		Logf:         d.Logf,
		OnStatus:     onStatus,
		OnSegment: func(seg sched.Segment) {
			if o.Progress != nil {
				o.Progress(fmt.Sprintf("%s on %s (delivered)", seg.Key, deviceOf[seg.Key]))
			}
			if ck != nil && seg.Err == "" {
				// Failed cells are never checkpointed locally either; a
				// storage failure degrades, it does not fail the campaign.
				ck.RecordRaw(seg.Key, seg.Value)
			}
		},
	})
	if err != nil {
		return nil, err
	}
	if err := d.Hub.Register(name, coord); err != nil {
		return nil, err
	}
	defer d.Hub.Unregister(name)
	waitErr := coord.Wait(ctx)
	rep, err := sched.AssembleReport[R](spec, coord.Segments(), o.Breaker)
	if err != nil {
		return nil, err
	}
	rep.WallSeconds = time.Since(start).Seconds()
	var syncErr error
	if ck != nil {
		syncErr = ck.Sync()
		if derr := ck.Degraded(); derr != nil {
			rep.StorageDegraded = true
			rep.StorageErr = derr.Error()
		}
	}
	if o.OnProgress != nil {
		inst := 0
		if instances != nil {
			for _, r := range rep.Results {
				if r.Err == nil && !r.Replayed && !r.CacheHit {
					inst += instances(r.Value)
				}
			}
		}
		p := sched.Progress{
			Campaign:        spec.Name,
			Total:           len(spec.Cells),
			Done:            rep.Executed + rep.Replayed + rep.Quarantined + rep.CacheHits,
			Executed:        rep.Executed,
			Replayed:        rep.Replayed,
			Failed:          rep.Failed,
			Quarantined:     rep.Quarantined,
			Interrupted:     rep.Interrupted,
			Retried:         rep.Retried,
			Instances:       inst,
			CacheHits:       rep.CacheHits,
			ElapsedSeconds:  rep.WallSeconds,
			Final:           true,
			Health:          rep.Health,
			StorageDegraded: rep.StorageDegraded,
		}
		if p.ElapsedSeconds > 0 {
			p.CellsPerSec = float64(p.Executed) / p.ElapsedSeconds
			p.InstancesPerSec = float64(p.Instances) / p.ElapsedSeconds
		}
		progMu.Lock()
		progDone = true
		o.OnProgress(p)
		progMu.Unlock()
	}
	if rep.Interrupted > 0 {
		return rep, fmt.Errorf("core: distributed campaign %q interrupted: %d of %d cells pending: %w (%v)",
			spec.Name, rep.Interrupted, len(spec.Cells), sched.ErrInterrupted, waitErr)
	}
	if syncErr != nil {
		return rep, syncErr
	}
	return rep, nil
}
