package serve

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/gpu"
	"repro/internal/guard"
	"repro/internal/harness"
	"repro/internal/sched"
	"repro/internal/tuning"
	"repro/internal/wgsl"
)

// jobPlan is what validation learns about a spec before anything
// runs: the combined scheduler manifest the job ID derives from, the
// total planned cell count, and how many sequential campaigns the job
// expands to (evaluate runs one per device, like the CLI).
type jobPlan struct {
	manifest  string
	cells     int
	campaigns int
}

// plan validates a normalized spec against the suite and fleet and
// computes its identity — every rejection here happens at admission
// time, before the job touches the queue.
func (s *Server) plan(js *JobSpec) (*jobPlan, error) {
	if len(js.Devices) == 0 {
		return nil, fmt.Errorf("no devices")
	}
	if err := s.cfg.Budgets.Validate(js.budget()); err != nil {
		return nil, err
	}
	for _, d := range js.Devices {
		if _, ok := gpu.ProfileByName(d); !ok {
			return nil, fmt.Errorf("unknown device %q", d)
		}
	}
	if js.Distributed {
		if s.dist == nil {
			return nil, fmt.Errorf("distributed execution is not enabled on this server")
		}
		if js.Kind == "tune" {
			return nil, fmt.Errorf("tune jobs cannot run distributed")
		}
	}
	switch js.Kind {
	case "conformance":
		if err := checkEnvs(js.Envs); err != nil {
			return nil, err
		}
		spec, err := s.study.FleetConformanceSpec(platformsOf(js), js.Seed)
		if err != nil {
			return nil, err
		}
		return &jobPlan{manifest: spec.Manifest(), cells: len(spec.Cells), campaigns: 1}, nil
	case "evaluate":
		if err := checkEnvs(js.Envs); err != nil {
			return nil, err
		}
		var manifests bytes.Buffer
		cells := 0
		for _, p := range platformsOf(js) {
			spec, err := s.study.EvaluateSpec(p, len(js.Envs), js.Seed)
			if err != nil {
				return nil, err
			}
			fmt.Fprintf(&manifests, "%s/%s\n", p.Device, spec.Manifest())
			cells += len(spec.Cells)
		}
		return &jobPlan{manifest: manifests.String(), cells: cells, campaigns: len(js.Devices)}, nil
	case "tune":
		if js.TuneEnvs <= 0 || js.SiteIters <= 0 || js.PTEIters <= 0 {
			return nil, fmt.Errorf("tune sizes must be positive")
		}
		spec, err := tuning.CampaignSpec(tuneConfigOf(js), s.study.Suite.Mutants)
		if err != nil {
			return nil, err
		}
		return &jobPlan{manifest: spec.Manifest(), cells: len(spec.Cells), campaigns: 1}, nil
	case "":
		return nil, fmt.Errorf("missing kind (conformance, evaluate, tune)")
	default:
		return nil, fmt.Errorf("unknown kind %q (conformance, evaluate, tune)", js.Kind)
	}
}

// checkEnvs resolves every environment preset, rejecting unknowns.
func checkEnvs(names []string) error {
	if len(names) == 0 {
		return fmt.Errorf("no environments")
	}
	for _, n := range names {
		if _, err := core.EnvByName(n, 16, 32); err != nil {
			return err
		}
	}
	return nil
}

// platformsOf expands the spec's devices into campaign platforms,
// mirroring the CLI's -devices/-fence-bug handling.
func platformsOf(js *JobSpec) []core.Platform {
	platforms := make([]core.Platform, 0, len(js.Devices))
	for _, d := range js.Devices {
		p := core.Platform{Device: d}
		if js.FenceBug {
			p.Driver = wgsl.DriverFenceDropping
		}
		platforms = append(platforms, p)
	}
	return platforms
}

// workSpecOf is the shared WorkSpec shape behind distributed
// descriptors and cache salts. The effective cell timeout rides along
// because it is an execution parameter that can change reported
// attempt counts — exactly why the CLI folds -cell-timeout into its
// WorkSpec — so workers must enforce the submitting side's value and
// cache entries must not mix timeout regimes. A job with no cell
// timeout (none requested, no server default) produces the WorkSpec
// this code always produced.
func workSpecOf(js *JobSpec, devices []string, cellTimeout time.Duration) core.WorkSpec {
	return core.WorkSpec{
		Kind:          js.Kind,
		Devices:       devices,
		Envs:          append([]string(nil), js.Envs...),
		Iters:         js.Iters,
		Seed:          js.Seed,
		FenceBug:      js.FenceBug,
		CellTimeoutMS: cellTimeout.Milliseconds(),
	}
}

// distOptions builds a distributed job's per-campaign coordinator
// options: the hub registration name and the wire descriptor workers
// rebuild the campaign from.
func (s *Server) distOptions(js *JobSpec, name string, devices []string, cellTimeout time.Duration) (*core.DistOptions, error) {
	desc, err := workSpecOf(js, devices, cellTimeout).Descriptor()
	if err != nil {
		return nil, err
	}
	return &core.DistOptions{
		Hub:        s.dist,
		Name:       name,
		Descriptor: desc,
		LeaseTTL:   s.cfg.DistLeaseTTL,
		Logf:       s.cfg.Logf,
	}, nil
}

// cacheSaltFor derives a campaign job's result-cache salt from the
// same WorkSpec shape the CLI and distributed descriptors use, so a
// serve job, the equivalent `mcmutants campaign` invocation and any
// distributed worker address identical cache entries.
func cacheSaltFor(js *JobSpec, devices []string, cellTimeout time.Duration) (string, error) {
	return workSpecOf(js, devices, cellTimeout).CacheSalt()
}

// tuneConfigOf builds the tuning config the CLI's tune verb would:
// SmallConfig with the spec's sizes, seed and fleet subset.
func tuneConfigOf(js *JobSpec) tuning.Config {
	cfg := tuning.SmallConfig()
	cfg.Environments = js.TuneEnvs
	cfg.SITEIterations = js.SiteIters
	cfg.PTEIterations = js.PTEIters
	cfg.Seed = js.Seed
	cfg.Devices = append([]string(nil), js.Devices...)
	return cfg
}

// execResult is a finished (or drained) execution attempt.
type execResult struct {
	// artifact is the canonical report rendering — byte-identical to
	// what the CLI's -out flag writes for the same spec. Nil when the
	// run was interrupted.
	artifact []byte
	// degraded mirrors the CLI's exit-2 verdict: cells produced no
	// data or the checkpoint storage degraded.
	degraded   bool
	storageErr string
	// interrupted marks a graceful drain (shutdown or cancellation);
	// completed cells are checkpointed and the job can resume.
	interrupted bool
}

// progressAggregator folds the per-campaign snapshot streams of a
// multi-campaign job (evaluate runs one campaign per device) into one
// job-level cumulative stream. Campaigns run sequentially on a single
// runner goroutine, so no locking is needed; the output hook carries
// job totals with Final set only on the last campaign's settlement.
type progressAggregator struct {
	out       func(sched.Progress)
	jobID     string
	total     int
	campaigns int

	finished int
	base     sched.Progress
}

// hook returns the OnProgress callback to hand the next campaign.
func (a *progressAggregator) hook() func(sched.Progress) {
	return func(p sched.Progress) {
		q := p
		q.Campaign = a.jobID
		q.Total = a.total
		q.Done += a.base.Done
		q.Executed += a.base.Executed
		q.Replayed += a.base.Replayed
		q.Failed += a.base.Failed
		q.Quarantined += a.base.Quarantined
		q.Interrupted += a.base.Interrupted
		q.Retried += a.base.Retried
		q.Instances += a.base.Instances
		q.CacheHits += a.base.CacheHits
		q.CacheMisses += a.base.CacheMisses
		q.CacheCorrupt += a.base.CacheCorrupt
		q.CacheDegraded = p.CacheDegraded || a.base.CacheDegraded
		q.ElapsedSeconds += a.base.ElapsedSeconds
		// Rates must describe the aggregated scope, not the current
		// campaign's: recompute them from the job totals the same way
		// the tracker does (cumulative count over elapsed time).
		q.CellsPerSec = sched.Rate(q.Executed, q.ElapsedSeconds)
		q.InstancesPerSec = sched.Rate(q.Instances, q.ElapsedSeconds)
		if len(a.base.DeviceBusy) > 0 {
			merged := make(map[string]float64, len(a.base.DeviceBusy)+len(p.DeviceBusy))
			for d, v := range a.base.DeviceBusy {
				merged[d] = v
			}
			for d, v := range p.DeviceBusy {
				merged[d] += v
			}
			q.DeviceBusy = merged
		}
		if len(a.base.Health) > 0 {
			q.Health = append(append([]sched.DeviceHealth(nil), a.base.Health...), p.Health...)
		}
		q.StorageDegraded = p.StorageDegraded || a.base.StorageDegraded
		if p.Final {
			a.finished++
			base := q
			base.Final = false
			base.Health = append([]sched.DeviceHealth(nil), q.Health...)
			a.base = base
		}
		q.Final = p.Final && a.finished == a.campaigns
		a.out(q)
	}
}

// execute runs one job to completion or drain. onProgress receives
// job-level cumulative snapshots (see progressAggregator); the
// checkpoint lives under the server's state directory keyed by job
// ID, and Resume is always on — a fresh checkpoint file falls through
// to a fresh start, so the same call serves first runs and restart
// recovery alike.
func (s *Server) execute(ctx context.Context, job *Job, eff guard.Budget, onProgress func(sched.Progress)) (*execResult, error) {
	js := job.Spec
	agg := &progressAggregator{
		out:       onProgress,
		jobID:     job.ID,
		total:     job.Cells,
		campaigns: 1,
	}
	opts := core.CampaignOptions{
		Workers:        s.cfg.JobWorkers,
		CellTimeout:    eff.CellTimeout,
		CheckpointPath: s.store.checkpointPath(job.ID),
		Resume:         true,
		FsyncEvery:     s.cfg.FsyncEvery,
		FS:             s.fs,
		ProgressEvery:  s.cfg.ProgressEvery,
	}
	switch js.Kind {
	case "conformance":
		opts.OnProgress = agg.hook()
		if js.Distributed {
			d, err := s.distOptions(&js, job.ID, js.Devices, eff.CellTimeout)
			if err != nil {
				return nil, err
			}
			opts.Dist = d
		}
		if s.cache != nil {
			salt, err := cacheSaltFor(&js, js.Devices, eff.CellTimeout)
			if err != nil {
				return nil, err
			}
			opts.Cache = s.cache
			opts.CacheSalt = salt
		}
		env, err := core.EnvByName(js.Envs[0], 16, 32)
		if err != nil {
			return nil, err
		}
		reports, err := s.study.CheckFleetConformanceCtx(ctx, platformsOf(&js), env, js.Iters, js.Seed, opts)
		interrupted := errors.Is(err, sched.ErrInterrupted)
		if err != nil && !interrupted {
			return nil, err
		}
		if interrupted {
			return &execResult{interrupted: true}, nil
		}
		res := &execResult{}
		failed := 0
		for _, rep := range reports {
			if rep.StorageDegraded {
				res.degraded, res.storageErr = true, rep.StorageErr
			}
			failed += len(rep.Failed())
		}
		if failed > 0 {
			res.degraded = true
		}
		storageDegraded := res.storageErr != ""
		art := &core.CampaignArtifact{Kind: "conformance", Conformance: reports, StorageDegraded: storageDegraded}
		var buf bytes.Buffer
		if err := art.Encode(&buf); err != nil {
			return nil, err
		}
		res.artifact = buf.Bytes()
		return res, nil
	case "evaluate":
		agg.campaigns = len(js.Devices)
		envList := make([]harness.Params, 0, len(js.Envs))
		for _, n := range js.Envs {
			env, err := core.EnvByName(n, 16, 32)
			if err != nil {
				return nil, err
			}
			envList = append(envList, env)
		}
		res := &execResult{}
		failed := 0
		var entries []core.EvaluateEntry
		for _, p := range platformsOf(&js) {
			devOpts := opts
			devOpts.OnProgress = agg.hook()
			// One campaign per device; keep their checkpoints apart
			// (the same suffix scheme the CLI uses).
			devOpts.CheckpointPath = fmt.Sprintf("%s.%s", opts.CheckpointPath, p.Device)
			if js.Distributed {
				// One coordinator per device with a single-device
				// descriptor, so a worker's locally-planned unit
				// manifest matches the advertised campaign.
				d, err := s.distOptions(&js, job.ID+"."+p.Device, []string{p.Device}, eff.CellTimeout)
				if err != nil {
					return nil, err
				}
				devOpts.Dist = d
			}
			if s.cache != nil {
				// Per-device salt, matching the single-device descriptor a
				// distributed worker would salt with.
				salt, err := cacheSaltFor(&js, []string{p.Device}, eff.CellTimeout)
				if err != nil {
					return nil, err
				}
				devOpts.Cache = s.cache
				devOpts.CacheSalt = salt
			}
			score, err := s.study.EvaluateEnvironmentsCtx(ctx, p, envList, js.Iters, js.Seed, devOpts)
			interrupted := errors.Is(err, sched.ErrInterrupted)
			if err != nil && !interrupted {
				return nil, err
			}
			if interrupted {
				return &execResult{interrupted: true}, nil
			}
			if score.StorageDegraded {
				res.degraded, res.storageErr = true, score.StorageErr
			}
			failed += len(score.Failures)
			entries = append(entries, core.EvaluateEntry{Device: p.Device, Score: score})
		}
		if failed > 0 {
			res.degraded = true
		}
		storageDegraded := res.storageErr != ""
		art := &core.CampaignArtifact{Kind: "evaluate", Evaluate: entries, StorageDegraded: storageDegraded}
		var buf bytes.Buffer
		if err := art.Encode(&buf); err != nil {
			return nil, err
		}
		res.artifact = buf.Bytes()
		return res, nil
	case "tune":
		ropts := tuning.RunOptions{
			Workers:        s.cfg.JobWorkers,
			CellTimeout:    eff.CellTimeout,
			CheckpointPath: opts.CheckpointPath,
			Resume:         true,
			FsyncEvery:     s.cfg.FsyncEvery,
			FS:             s.fs,
			OnProgress:     agg.hook(),
			ProgressEvery:  s.cfg.ProgressEvery,
		}
		if s.cache != nil {
			ropts.Cache = s.cache
		}
		ds, err := tuning.RunCampaignCtx(ctx, tuneConfigOf(&js), s.study.Suite.Mutants, ropts)
		if err != nil {
			return nil, err
		}
		if ds.Interrupted {
			return &execResult{interrupted: true}, nil
		}
		res := &execResult{
			degraded:   len(ds.Dropped) > 0 || ds.StorageDegraded,
			storageErr: ds.StorageErr,
		}
		var buf bytes.Buffer
		if err := ds.Save(&buf); err != nil {
			return nil, err
		}
		res.artifact = buf.Bytes()
		return res, nil
	default:
		return nil, fmt.Errorf("unknown kind %q", js.Kind)
	}
}
