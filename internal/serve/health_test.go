package serve

import (
	"encoding/json"
	"net/http"
	"testing"

	"repro/internal/sched"
)

// probe GETs a health endpoint and returns the status code and body.
func probe(t *testing.T, base, path string) (int, map[string]any) {
	t.Helper()
	resp, err := http.Get(base + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatalf("%s body: %v", path, err)
	}
	return resp.StatusCode, body
}

// Liveness and readiness split: a draining server is still alive (the
// orchestrator must not restart it) but no longer ready (the balancer
// must stop routing new work to it).
func TestHealthzLivenessVsReadyz(t *testing.T) {
	s, c, _ := queuedServer(t, Config{})

	code, body := probe(t, c.BaseURL, "/healthz")
	if code != http.StatusOK || body["status"] != "ok" {
		t.Fatalf("healthz = %d %v, want 200 ok", code, body)
	}
	code, body = probe(t, c.BaseURL, "/readyz")
	if code != http.StatusOK || body["ready"] != true {
		t.Fatalf("readyz = %d %v, want 200 ready", code, body)
	}

	s.draining.Store(true)

	code, body = probe(t, c.BaseURL, "/healthz")
	if code != http.StatusOK {
		t.Fatalf("healthz while draining = %d, want 200 (liveness)", code)
	}
	if body["status"] != "draining" || body["draining"] != true {
		t.Fatalf("healthz body while draining: %v", body)
	}
	code, body = probe(t, c.BaseURL, "/readyz")
	if code != http.StatusServiceUnavailable || body["ready"] != false {
		t.Fatalf("readyz while draining = %d %v, want 503 not-ready", code, body)
	}
}

// A running job whose checkpoint degraded to in-memory makes the
// server not-ready: new jobs routed here would lose durability. Jobs
// that finished degraded long ago must NOT wedge readiness.
func TestReadyzStorageDegraded(t *testing.T) {
	s, c, _ := queuedServer(t, Config{})

	s.mu.Lock()
	s.running["live"] = &runningJob{last: sched.Progress{StorageDegraded: true}}
	s.mu.Unlock()

	code, body := probe(t, c.BaseURL, "/readyz")
	if code != http.StatusServiceUnavailable || body["status"] != "storage-degraded" {
		t.Fatalf("readyz = %d %v, want 503 storage-degraded", code, body)
	}
	if body["storage_degraded"] != float64(1) {
		t.Fatalf("storage_degraded = %v, want 1", body["storage_degraded"])
	}
	// Liveness is unaffected.
	if code, _ := probe(t, c.BaseURL, "/healthz"); code != http.StatusOK {
		t.Fatalf("healthz = %d, want 200", code)
	}

	// The degraded job completes: readiness recovers even though its
	// terminal record still says storage degraded.
	s.mu.Lock()
	delete(s.running, "live")
	s.mu.Unlock()
	j := &Job{ID: "old", State: StateDegraded, Summary: &Summary{StorageDegraded: true}}
	if err := s.store.put(j); err != nil {
		t.Fatal(err)
	}
	code, body = probe(t, c.BaseURL, "/readyz")
	if code != http.StatusOK || body["ready"] != true {
		t.Fatalf("readyz after recovery = %d %v, want 200 ready", code, body)
	}
}
