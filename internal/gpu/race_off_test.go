//go:build !race

package gpu

// raceEnabled reports whether the race detector instrumented this
// build; allocation-count tests skip under it.
const raceEnabled = false
