//go:build !race

package repro

// raceEnabled reports whether the race detector instrumented this
// build; allocation-count tests skip under it.
const raceEnabled = false
