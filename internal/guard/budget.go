package guard

import (
	"fmt"
	"time"
)

// Budget is one job's execution allowance. Zero fields mean "no
// explicit request" — the server's configured defaults apply at
// execution time, never at admission, so a budget-free spec keeps the
// identity it had before budgets existed.
type Budget struct {
	// WallDeadline bounds the job end to end: queue exit to artifact.
	WallDeadline time.Duration
	// CellTimeout bounds each cell attempt (the serve analogue of the
	// CLI -cell-timeout flag); expiry is an ordinary cell failure.
	CellTimeout time.Duration
	// StallTimeout bounds how long the job's cumulative progress
	// counters may sit still before the watchdog fails it.
	StallTimeout time.Duration
}

// Limits is the server's budget policy: per-field defaults applied
// when a spec requests nothing, and caps a request may not exceed.
// A zero default means "no budget unless requested"; a zero cap means
// uncapped.
type Limits struct {
	DefaultWallDeadline time.Duration
	MaxWallDeadline     time.Duration
	DefaultCellTimeout  time.Duration
	MaxCellTimeout      time.Duration
	DefaultStallTimeout time.Duration
	MaxStallTimeout     time.Duration
}

// Validate rejects a requested budget that is negative or exceeds the
// caps. It runs at admission, so a bad budget is a 400, not a queued
// job that can never finish.
func (l Limits) Validate(b Budget) error {
	check := func(name string, v, max time.Duration) error {
		if v < 0 {
			return fmt.Errorf("%s must not be negative (got %s)", name, v)
		}
		if max > 0 && v > max {
			return fmt.Errorf("%s %s exceeds the server cap %s", name, v, max)
		}
		return nil
	}
	if err := check("wall_deadline", b.WallDeadline, l.MaxWallDeadline); err != nil {
		return err
	}
	if err := check("cell_timeout", b.CellTimeout, l.MaxCellTimeout); err != nil {
		return err
	}
	return check("stall_timeout", b.StallTimeout, l.MaxStallTimeout)
}

// Resolve fills the effective budget: a requested value wins, a zero
// request takes the server default. Callers Validate first; Resolve
// never clamps.
func (l Limits) Resolve(b Budget) Budget {
	if b.WallDeadline == 0 {
		b.WallDeadline = l.DefaultWallDeadline
	}
	if b.CellTimeout == 0 {
		b.CellTimeout = l.DefaultCellTimeout
	}
	if b.StallTimeout == 0 {
		b.StallTimeout = l.DefaultStallTimeout
	}
	return b
}
