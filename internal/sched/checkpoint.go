package sched

import (
	"bufio"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"sync"
)

// Checkpoint persists completed cells as JSONL so an interrupted
// campaign resumes by replaying them. The file layout is:
//
//	{"campaign":"<name>","manifest":"<hex>"}                  // header, line 1
//	{"key":"<cell key>","value":<result JSON>,"crc":"<hex>"}  // one line per cell
//
// The manifest is Spec.Manifest(); resuming against a checkpoint whose
// manifest differs (different cells, order or seed) is an error, since
// its recorded results would not match what a clean run produces.
//
// Each record carries a Castagnoli CRC-32 of its value bytes, verified
// on resume. Only the final line of the file may be malformed — the
// torn tail of a run killed mid-write — and is then discarded and
// truncated away. A malformed line with data after it, or any record
// failing its checksum, is mid-file corruption and resuming fails with
// ErrCheckpointCorrupt instead of silently resuming over bad data.
// Records written before checksumming (no "crc" field) still load.
type Checkpoint struct {
	mu       sync.Mutex
	f        *os.File
	path     string
	manifest string
	done     map[string]json.RawMessage
}

// checkpointHeader is line 1 of the file.
type checkpointHeader struct {
	Campaign string `json:"campaign"`
	Manifest string `json:"manifest"`
}

// crcTable is the Castagnoli polynomial table used for record checksums.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// crcHex renders the checksum of a record's value bytes.
func crcHex(value []byte) string {
	return fmt.Sprintf("%08x", crc32.Checksum(value, crcTable))
}

// checkpointRecord is one completed cell.
type checkpointRecord struct {
	Key   string          `json:"key"`
	Value json.RawMessage `json:"value"`
	// CRC is the Castagnoli CRC-32 of Value, hex-encoded. Optional on
	// load for backward compatibility with pre-checksum files; always
	// written, and verified when present.
	CRC string `json:"crc,omitempty"`
}

// OpenCheckpoint opens (or creates) a checkpoint for the spec. With
// resume false any existing file is truncated and a fresh header
// written; with resume true an existing file is validated against the
// spec's manifest and its completed cells become replayable via Done.
func OpenCheckpoint(path string, spec Spec, resume bool) (*Checkpoint, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	c := &Checkpoint{
		path:     path,
		manifest: spec.Manifest(),
		done:     map[string]json.RawMessage{},
	}
	if resume {
		if err := c.load(spec.Name); err != nil {
			return nil, err
		}
		if c.f != nil {
			return c, nil
		}
		// No existing file: fall through and start fresh.
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("sched: create checkpoint: %w", err)
	}
	hdr, _ := json.Marshal(checkpointHeader{Campaign: spec.Name, Manifest: c.manifest})
	if _, err := f.Write(append(hdr, '\n')); err != nil {
		f.Close()
		return nil, fmt.Errorf("sched: write checkpoint header: %w", err)
	}
	c.f = f
	return c, nil
}

// load reads an existing checkpoint file, validates it, collects the
// done map, truncates any torn trailing line, and opens the file for
// appending. A missing file leaves c.f nil.
func (c *Checkpoint) load(campaign string) error {
	f, err := os.OpenFile(c.path, os.O_RDWR, 0)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("sched: open checkpoint: %w", err)
	}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<26)
	if !sc.Scan() {
		// Empty or unreadable: treat as fresh.
		f.Close()
		return nil
	}
	var hdr checkpointHeader
	if err := json.Unmarshal(sc.Bytes(), &hdr); err != nil {
		f.Close()
		return fmt.Errorf("sched: checkpoint %s: malformed header: %w", c.path, err)
	}
	if hdr.Manifest != c.manifest {
		f.Close()
		return fmt.Errorf("sched: checkpoint %s was written by a different campaign spec (manifest %.12s, want %.12s); rerun without -resume or delete it",
			c.path, hdr.Manifest, c.manifest)
	}
	good := int64(len(sc.Bytes()) + 1) // header plus newline
	lineNo := 1
	torn := 0 // line number of a malformed line; only the final line may be torn
	for sc.Scan() {
		lineNo++
		line := sc.Bytes()
		if torn > 0 {
			// A malformed line with data after it cannot be a torn tail:
			// the file is corrupt in the middle.
			f.Close()
			return fmt.Errorf("sched: checkpoint %s: malformed record at line %d with records after it: %w; delete the file or rerun without -resume",
				c.path, torn, ErrCheckpointCorrupt)
		}
		var rec checkpointRecord
		if err := json.Unmarshal(line, &rec); err != nil || rec.Key == "" {
			torn = lineNo // torn tail if the scan ends here, corruption otherwise
			continue
		}
		if rec.CRC != "" && crcHex(rec.Value) != rec.CRC {
			f.Close()
			return fmt.Errorf("sched: checkpoint %s: record %q (line %d) fails its checksum: %w; delete the file or rerun without -resume",
				c.path, rec.Key, lineNo, ErrCheckpointCorrupt)
		}
		c.done[rec.Key] = append(json.RawMessage(nil), rec.Value...)
		good += int64(len(line) + 1)
	}
	if err := sc.Err(); err != nil {
		f.Close()
		return fmt.Errorf("sched: read checkpoint: %w", err)
	}
	if err := f.Truncate(good); err != nil {
		f.Close()
		return fmt.Errorf("sched: truncate checkpoint: %w", err)
	}
	if _, err := f.Seek(good, 0); err != nil {
		f.Close()
		return fmt.Errorf("sched: seek checkpoint: %w", err)
	}
	c.f = f
	return nil
}

// Done returns the recorded result for a cell key, if present.
func (c *Checkpoint) Done(key string) (json.RawMessage, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	raw, ok := c.done[key]
	return raw, ok
}

// Completed returns how many cells the checkpoint holds.
func (c *Checkpoint) Completed() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.done)
}

// record appends one completed cell — with its value checksum — so a
// kill at any point loses at most the in-flight record.
func (c *Checkpoint) record(key string, value any) error {
	raw, err := json.Marshal(value)
	if err != nil {
		return fmt.Errorf("sched: checkpoint %s: %w", key, err)
	}
	line, err := json.Marshal(checkpointRecord{Key: key, Value: raw, CRC: crcHex(raw)})
	if err != nil {
		return fmt.Errorf("sched: checkpoint %s: %w", key, err)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.f == nil {
		return fmt.Errorf("sched: checkpoint closed")
	}
	if _, err := c.f.Write(append(line, '\n')); err != nil {
		return fmt.Errorf("sched: append checkpoint: %w", err)
	}
	c.done[key] = raw
	return nil
}

// Sync flushes the checkpoint to stable storage (fsync). The scheduler
// calls it when a campaign finishes or drains, so a process exit right
// after an interrupt cannot lose recorded cells to the page cache.
func (c *Checkpoint) Sync() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.f == nil {
		return nil
	}
	if err := c.f.Sync(); err != nil {
		return fmt.Errorf("sched: sync checkpoint: %w", err)
	}
	return nil
}

// Close syncs and closes the file.
func (c *Checkpoint) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.f == nil {
		return nil
	}
	err := c.f.Sync()
	if cerr := c.f.Close(); err == nil {
		err = cerr
	}
	c.f = nil
	return err
}
