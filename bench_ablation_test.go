package repro

// Ablation benchmarks for the design choices DESIGN.md calls out: the
// PTE pairing permutation, the memory stride (cache-line sharing), the
// communication scope, the stress access patterns, and the alignment
// barrier. Each reports mutant kill rates as metrics so the effect of
// the choice is visible directly in benchmark output.

import (
	"fmt"
	"testing"

	"repro/internal/gpu"
	"repro/internal/harness"
	"repro/internal/litmus"
	"repro/internal/mm"
	"repro/internal/mutation"
	"repro/internal/xrand"
)

func ablationEnv() harness.Params {
	p := harness.PTEBaseline(8, 16)
	p.MaxWorkgroups = p.TestingWorkgroups + 4
	p.MemStressPct = 100
	p.MemStressIters = 8
	p.MemStressPattern = harness.StoreLoad
	p.PreStressPct = 80
	p.PreStressIters = 2
	p.MemStride = 2
	p.MemLocOffset = 1
	return p
}

func killRate(b *testing.B, devName string, env harness.Params, test *litmus.Test, iters int) float64 {
	b.Helper()
	prof, ok := gpu.ProfileByName(devName)
	if !ok {
		b.Fatalf("no device %q", devName)
	}
	dev, err := gpu.NewDevice(prof, gpu.Bugs{})
	if err != nil {
		b.Fatal(err)
	}
	r, err := harness.NewRunner(dev, env)
	if err != nil {
		b.Fatal(err)
	}
	res, err := r.Run(test, iters, xrand.New(33))
	if err != nil {
		b.Fatal(err)
	}
	return res.TargetRate()
}

// BenchmarkAblationPairing compares the co-prime permutation against
// the naive successor pairing prior work found ineffective. On
// partitioned-memory devices (NVIDIA-like), spreading pairs across the
// device is what generates cache-line interactions; the naive mapping
// keeps pairs adjacent and underperforms.
func BenchmarkAblationPairing(b *testing.B) {
	suite := mutation.MustGenerate()
	test, _ := suite.ByName("MP")
	for _, naive := range []bool{false, true} {
		name := "coprime"
		if naive {
			name = "naive-v+1"
		}
		b.Run(name, func(b *testing.B) {
			env := ablationEnv()
			env.NaivePairing = naive
			var rate float64
			for i := 0; i < b.N; i++ {
				rate = killRate(b, "NVIDIA", env, test, 8)
			}
			b.ReportMetric(rate, "kills/s")
		})
	}
}

// BenchmarkAblationStride sweeps the inter-instance memory stride. On
// line-pressure devices small strides put many instances on one cache
// line, whose contention is the only source of weak behavior — the
// mechanism behind the paper's memStride tuning parameter.
func BenchmarkAblationStride(b *testing.B) {
	suite := mutation.MustGenerate()
	test, _ := suite.ByName("MP")
	for _, stride := range []int{1, 2, 4, 16} {
		b.Run(fmt.Sprintf("stride-%d", stride), func(b *testing.B) {
			env := ablationEnv()
			env.MemStride = stride
			env.MemLocOffset = 0
			if stride > 1 {
				env.MemLocOffset = stride / 2
			}
			var rate float64
			for i := 0; i < b.N; i++ {
				rate = killRate(b, "NVIDIA", env, test, 8)
			}
			b.ReportMetric(rate, "kills/s")
		})
	}
}

// BenchmarkAblationScope compares the paper's inter-workgroup scope
// with the intra-workgroup extension.
func BenchmarkAblationScope(b *testing.B) {
	suite := mutation.MustGenerate()
	test, _ := suite.ByName("MP")
	for _, scope := range []harness.Scope{harness.InterWorkgroup, harness.IntraWorkgroup} {
		b.Run(scope.String(), func(b *testing.B) {
			env := ablationEnv()
			env.Scope = scope
			var rate float64
			for i := 0; i < b.N; i++ {
				rate = killRate(b, "AMD", env, test, 8)
			}
			b.ReportMetric(rate, "kills/s")
		})
	}
}

// BenchmarkAblationStressPattern compares the four stress access
// patterns of prior work on a global-pressure device.
func BenchmarkAblationStressPattern(b *testing.B) {
	suite := mutation.MustGenerate()
	test, _ := suite.ByName("MP")
	for _, pat := range []harness.StressPattern{
		harness.StoreStore, harness.StoreLoad, harness.LoadStore, harness.LoadLoad,
	} {
		b.Run(pat.String(), func(b *testing.B) {
			env := ablationEnv()
			env.MemStressPattern = pat
			var rate float64
			for i := 0; i < b.N; i++ {
				rate = killRate(b, "AMD", env, test, 8)
			}
			b.ReportMetric(rate, "kills/s")
		})
	}
}

// BenchmarkAblationBarrier measures the effect of the pre-test
// alignment barrier on the fine-grained-interleaving mutant.
func BenchmarkAblationBarrier(b *testing.B) {
	suite := mutation.MustGenerate()
	test, _ := suite.ByName("CoRR-mutant")
	for _, pct := range []int{0, 100} {
		b.Run(fmt.Sprintf("barrier-%d%%", pct), func(b *testing.B) {
			env := ablationEnv()
			env.BarrierPct = pct
			var rate float64
			for i := 0; i < b.N; i++ {
				rate = killRate(b, "Intel", env, test, 8)
			}
			b.ReportMetric(rate, "kills/s")
		})
	}
}

// BenchmarkAblationPruning compares evaluating a TSO-strength platform
// with the full mutant suite against the pruned suite of Sec. 3.4: the
// pruned suite concentrates effort on observable mutants.
func BenchmarkAblationPruning(b *testing.B) {
	suite := mutation.MustGenerate()
	for i := 0; i < b.N; i++ {
		pruned, removed, err := mutation.Prune(suite, mm.TSO)
		_ = removed
		if err != nil {
			b.Fatal(err)
		}
		if len(pruned.Mutants) >= len(suite.Mutants) {
			b.Fatal("pruning removed nothing")
		}
	}
}
