// Package report renders the paper's tables and figures as text: the
// litmus programs of Fig. 1, the candidate executions of Fig. 2, the
// mutator inventory of Tables 2, the device fleet of Table 3, the PTE
// assignment of Fig. 4, the mutation-score/death-rate grids of Fig. 5,
// the budget sweep of Fig. 6, and the correlation rows of Table 4.
package report

import (
	"fmt"
	"sort"
	"strings"
	"text/tabwriter"

	"repro/internal/confidence"
	"repro/internal/gpu"
	"repro/internal/litmus"
	"repro/internal/mutation"
	"repro/internal/tuning"
	"repro/internal/xrand"
)

// Table2 renders the mutator inventory: conformance tests and mutants
// per mutator family.
func Table2(s *mutation.Suite) string {
	var b strings.Builder
	w := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "Mutator\tConformance Tests\tMutants")
	counts := s.Counts()
	totalC, totalM := 0, 0
	for _, m := range mutation.Mutators() {
		c := counts[m]
		fmt.Fprintf(w, "%s\t%d\t%d\n", m, c[0], c[1])
		totalC += c[0]
		totalM += c[1]
	}
	fmt.Fprintf(w, "Combined\t%d\t%d\n", totalC, totalM)
	w.Flush()
	return b.String()
}

// Table3 renders the device fleet.
func Table3() string {
	var b strings.Builder
	w := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "Vendor\tChip\tCUs\tType\tShort Name\tBackend")
	for _, p := range gpu.Profiles() {
		typ := "Discrete"
		if p.Integrated {
			typ = "Integrated"
		}
		fmt.Fprintf(w, "%s\t%s\t%d\t%s\t%s\t%s\n",
			p.Vendor, p.Chip, p.CUs, typ, p.ShortName, p.Backend)
	}
	w.Flush()
	return b.String()
}

// Fig1 renders the two motivating litmus tests.
func Fig1(s *mutation.Suite) string {
	var b strings.Builder
	for _, name := range []string{"CoRR", "MP-relacq"} {
		t, ok := s.ByName(name)
		if !ok {
			continue
		}
		b.WriteString(t.String())
		b.WriteString("\n")
	}
	return b.String()
}

// Fig2 renders the disallowed candidate executions of the motivating
// tests, with their happens-before cycles.
func Fig2(s *mutation.Suite) (string, error) {
	var b strings.Builder
	for _, name := range []string{"CoRR", "MP-relacq"} {
		t, ok := s.ByName(name)
		if !ok {
			continue
		}
		x, err := t.TargetExecution()
		if err != nil {
			return "", err
		}
		v := x.Check(t.Model)
		fmt.Fprintf(&b, "Disallowed execution of the %s litmus test (%v):\n", t.Name, t.Model)
		b.WriteString(x.Render())
		if !v.Allowed && len(v.Cycle) > 0 {
			fmt.Fprintf(&b, "hb cycle: %s\n", x.ExplainCycle(v.Cycle))
		}
		b.WriteString("\n")
	}
	return b.String(), nil
}

// Fig3 summarizes the three mutator templates and their disruptors.
func Fig3() string {
	return strings.TrimLeft(`
Mutator 1 — reversing po-loc (3 events):
  T0: a: m[x]; b: m[x]   (po-loc)        disruptor: swap a and b
  T1: c: m[x]
  cycle: a -po-loc-> b -com-> c -com-> a

Mutator 2 — weakening po-loc (4 events):
  T0: a: m[x]; b: m[x]   (po-loc)        disruptor: move b and c to y
  T1: c: m[x]; d: m[x]   (po-loc)
  cycle: a -po-loc-> b -com-> c -po-loc-> d -com-> a

Mutator 3 — weakening sw (4 events, fenced):
  T0: a: m[x]; F; b: W y                 disruptor: remove one or both fences
  T1: c: R y;  F; d: m[x]
  cycle: a -po;sw;po-> d -com-> a
`, "\n")
}

// Fig4 visualizes one PTE iteration's thread/instance/location
// assignment for a two-role test at a small instance count.
func Fig4(instances int, seed uint64) string {
	if instances < 2 {
		instances = 8
	}
	rng := xrand.New(seed)
	p := rng.Coprime(uint64(instances))
	q := rng.Uint64n(uint64(instances))
	perm := func(v int) int { return int((uint64(v)*p + q) % uint64(instances)) }
	var b strings.Builder
	fmt.Fprintf(&b, "PTE assignment for %d instances, permutation v -> (v*%d + %d) mod %d\n",
		instances, p, q, instances)
	w := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "thread\trole 0 of\trole 1 of\tlocations touched")
	for v := 0; v < instances; v++ {
		fmt.Fprintf(w, "t%d\tinstance %d\tinstance %d\tx%d y%d, x%d y%d\n",
			v, v, perm(v), v, perm(v), perm(v), perm(perm(v)))
	}
	w.Flush()
	return b.String()
}

// Fig5 renders mutation scores and average death rates per mutator and
// device across environment families, from a tuning dataset.
func Fig5(ds *tuning.Dataset) string {
	var b strings.Builder
	families := []string{"SITE-Baseline", "SITE", "PTE-Baseline", "PTE"}
	devices := ds.Devices()
	mutators := append([]string{""}, ds.Mutators()...)
	for _, mutator := range mutators {
		label := mutator
		if label == "" {
			label = "all mutators"
		}
		fmt.Fprintf(&b, "== %s ==\n", label)
		w := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
		fmt.Fprint(w, "device")
		for _, f := range families {
			fmt.Fprintf(w, "\t%s", f)
		}
		fmt.Fprintln(w)
		for _, dev := range append(devices, "") {
			name := dev
			if name == "" {
				name = "ALL"
			}
			fmt.Fprintf(w, "%s", name)
			for _, f := range families {
				killed, total := ds.MutationScore(f, dev, mutator)
				rate := ds.AvgDeathRate(f, dev, mutator)
				if total == 0 {
					fmt.Fprint(w, "\t-")
					continue
				}
				fmt.Fprintf(w, "\t%d/%d (%.0f%%) %.3g/s",
					killed, total, 100*float64(killed)/float64(total), rate)
			}
			fmt.Fprintln(w)
		}
		w.Flush()
		b.WriteString("\n")
	}
	return b.String()
}

// Fig6 renders a budget sweep: mutation score against per-test time
// budget for each reproducibility target.
func Fig6(points []confidence.SweepPoint) string {
	byTarget := map[float64][]confidence.SweepPoint{}
	var targets []float64
	for _, pt := range points {
		if _, ok := byTarget[pt.Target]; !ok {
			targets = append(targets, pt.Target)
		}
		byTarget[pt.Target] = append(byTarget[pt.Target], pt)
	}
	sort.Float64s(targets)
	var b strings.Builder
	w := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "target\tbudget (s)\treproducible\tmutation score")
	for _, target := range targets {
		pts := byTarget[target]
		sort.Slice(pts, func(i, j int) bool { return pts[i].Budget < pts[j].Budget })
		for _, pt := range pts {
			fmt.Fprintf(w, "%.5g%%\t%.6g\t%d/%d\t%.1f%%\n",
				100*target, pt.Budget, pt.Reproducible, pt.Total, 100*pt.Score())
		}
	}
	w.Flush()
	return b.String()
}

// Table4 renders the correlation study rows.
func Table4(results []*tuning.CorrelationResult) string {
	var b strings.Builder
	w := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "Vendor/Case\tFailed Test\tMutant Type\tPCC\tp-value\tbug envs\tmutant envs")
	for _, r := range results {
		fmt.Fprintf(w, "%s\t%s\t%s\t%.3f\t%.2g\t%d/%d\t%d/%d\n",
			r.Case.Name, r.Case.Conformance, r.Case.MutatorName,
			r.PCC, r.PValue,
			r.BugObservedIn, r.Environments,
			r.MutantKilledIn, r.Environments)
	}
	w.Flush()
	return b.String()
}

// SuiteListing renders the full test suite, one line per test.
func SuiteListing(s *mutation.Suite) string {
	var b strings.Builder
	w := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "name\tkind\tmutator\tbase\tthreads\ttarget")
	row := func(t *litmus.Test) {
		kind := "conformance"
		if t.IsMutant {
			kind = "mutant"
		}
		base := t.Base
		if base == "" {
			base = "-"
		}
		fmt.Fprintf(w, "%s\t%s\t%s\t%s\t%d\t%s\n",
			t.Name, kind, t.Mutator, base, len(t.Threads), t.Target)
	}
	for _, t := range s.Conformance {
		row(t)
	}
	for _, t := range s.Mutants {
		row(t)
	}
	w.Flush()
	return b.String()
}
