package litmus

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"repro/internal/mm"
)

// This file implements a textual litmus format in the spirit of the
// herdtools `.litmus` files, adapted to the WGSL-flavored instruction
// set. A test renders as:
//
//	test MP-relacq
//	model rel-acq-SC-per-location
//	mutator weakening sw
//	thread
//	  store x 1
//	  fence
//	  store y 2
//	thread
//	  r0 = load y
//	  fence
//	  r1 = load x
//	target r0=2 r1=0
//
// Mutants additionally carry "mutant-of NAME" and "fences-removed N"
// lines. '#' starts a comment; blank lines are ignored. All memory is
// implicitly zero-initialized, as everywhere in this repository.

// Format renders the test in the textual litmus format. Parsing the
// result reproduces the test (round-trip property, tested).
func Format(t *Test) string {
	var b strings.Builder
	fmt.Fprintf(&b, "test %s\n", t.Name)
	fmt.Fprintf(&b, "model %s\n", t.Model)
	if t.Mutator != "" {
		fmt.Fprintf(&b, "mutator %s\n", t.Mutator)
	}
	if t.IsMutant {
		fmt.Fprintf(&b, "mutant-of %s\n", t.Base)
	}
	if t.FencesRemoved > 0 {
		fmt.Fprintf(&b, "fences-removed %d\n", t.FencesRemoved)
	}
	for _, th := range t.Threads {
		if th.Observer {
			b.WriteString("observer\n")
		} else {
			b.WriteString("thread\n")
		}
		for _, in := range th.Instrs {
			switch in.Op {
			case OpLoad:
				fmt.Fprintf(&b, "  r%d = load %s\n", in.Reg, mm.LocName(mm.Loc(in.Loc)))
			case OpStore:
				fmt.Fprintf(&b, "  store %s %d\n", mm.LocName(mm.Loc(in.Loc)), in.Val)
			case OpExchange:
				fmt.Fprintf(&b, "  r%d = exchange %s %d\n", in.Reg, mm.LocName(mm.Loc(in.Loc)), in.Val)
			case OpFence:
				b.WriteString("  fence\n")
			}
		}
	}
	b.WriteString("target")
	regs := make([]int, 0, len(t.Target.Regs))
	for r := range t.Target.Regs {
		regs = append(regs, r)
	}
	sort.Ints(regs)
	for _, r := range regs {
		fmt.Fprintf(&b, " r%d=%d", r, t.Target.Regs[r])
	}
	locs := make([]int, 0, len(t.Target.Final))
	for l := range t.Target.Final {
		locs = append(locs, l)
	}
	sort.Ints(locs)
	for _, l := range locs {
		fmt.Fprintf(&b, " %s=%d", mm.LocName(mm.Loc(l)), t.Target.Final[l])
	}
	b.WriteString("\n")
	return b.String()
}

// locIndex resolves a single-letter location name back to its index.
func locIndex(name string) (int, bool) {
	const names = "xyzwvu"
	if len(name) == 1 {
		if i := strings.IndexByte(names, name[0]); i >= 0 {
			return i, true
		}
	}
	var idx int
	if n, err := fmt.Sscanf(name, "m%d", &idx); err == nil && n == 1 {
		return idx, true
	}
	return 0, false
}

// modelByName resolves an MCS name as printed by mm.MCS.String.
func modelByName(name string) (mm.MCS, bool) {
	for _, m := range []mm.MCS{mm.SC, mm.SCPerLocation, mm.RelAcqSCPerLocation, mm.TSO} {
		if m.String() == name {
			return m, true
		}
	}
	return 0, false
}

// Parse reads one test in the textual litmus format. The parsed test is
// validated before it is returned.
func Parse(r io.Reader) (*Test, error) {
	sc := bufio.NewScanner(r)
	t := &Test{Model: mm.SCPerLocation}
	var cur *Thread
	lineNo := 0
	sawTarget := false
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		fail := func(format string, args ...any) (*Test, error) {
			return nil, fmt.Errorf("litmus: line %d: %s", lineNo, fmt.Sprintf(format, args...))
		}
		switch fields[0] {
		case "test":
			if len(fields) != 2 {
				return fail("test wants one name")
			}
			t.Name = fields[1]
		case "model":
			m, ok := modelByName(strings.Join(fields[1:], " "))
			if !ok {
				return fail("unknown model %q", strings.Join(fields[1:], " "))
			}
			t.Model = m
		case "mutator":
			t.Mutator = strings.Join(fields[1:], " ")
		case "mutant-of":
			if len(fields) != 2 {
				return fail("mutant-of wants one name")
			}
			t.IsMutant = true
			t.Base = fields[1]
		case "fences-removed":
			if len(fields) != 2 {
				return fail("fences-removed wants one count")
			}
			n, err := strconv.Atoi(fields[1])
			if err != nil || n < 0 {
				return fail("bad fence count %q", fields[1])
			}
			t.FencesRemoved = n
		case "thread", "observer":
			t.Threads = append(t.Threads, Thread{Observer: fields[0] == "observer"})
			cur = &t.Threads[len(t.Threads)-1]
		case "target":
			sawTarget = true
			t.Target = Condition{Regs: map[int]mm.Val{}, Final: map[int]mm.Val{}}
			for _, assign := range fields[1:] {
				k, v, ok := strings.Cut(assign, "=")
				if !ok {
					return fail("bad target assignment %q", assign)
				}
				val, err := strconv.ParseUint(v, 10, 32)
				if err != nil {
					return fail("bad target value %q", v)
				}
				if strings.HasPrefix(k, "r") {
					reg, err := strconv.Atoi(k[1:])
					if err == nil {
						t.Target.Regs[reg] = mm.Val(val)
						continue
					}
				}
				l, ok := locIndex(k)
				if !ok {
					return fail("bad target key %q", k)
				}
				t.Target.Final[l] = mm.Val(val)
			}
		case "fence":
			if cur == nil {
				return fail("instruction before any thread")
			}
			cur.Instrs = append(cur.Instrs, Instr{Op: OpFence, Reg: -1})
		case "store":
			if cur == nil {
				return fail("instruction before any thread")
			}
			if len(fields) != 3 {
				return fail("store wants a location and a value")
			}
			l, ok := locIndex(fields[1])
			if !ok {
				return fail("bad location %q", fields[1])
			}
			val, err := strconv.ParseUint(fields[2], 10, 32)
			if err != nil {
				return fail("bad store value %q", fields[2])
			}
			cur.Instrs = append(cur.Instrs, Instr{Op: OpStore, Loc: l, Val: mm.Val(val), Reg: -1})
			if l+1 > t.NumLocs {
				t.NumLocs = l + 1
			}
		default:
			// "rN = load LOC" or "rN = exchange LOC VAL".
			if cur == nil {
				return fail("instruction before any thread")
			}
			if len(fields) < 4 || fields[1] != "=" || !strings.HasPrefix(fields[0], "r") {
				return fail("unrecognized line %q", strings.TrimSpace(line))
			}
			reg, err := strconv.Atoi(fields[0][1:])
			if err != nil || reg < 0 {
				return fail("bad register %q", fields[0])
			}
			l, ok := locIndex(fields[3])
			if !ok {
				return fail("bad location %q", fields[3])
			}
			switch fields[2] {
			case "load":
				if len(fields) != 4 {
					return fail("load wants one location")
				}
				cur.Instrs = append(cur.Instrs, Instr{Op: OpLoad, Loc: l, Reg: reg})
			case "exchange":
				if len(fields) != 5 {
					return fail("exchange wants a location and a value")
				}
				val, err := strconv.ParseUint(fields[4], 10, 32)
				if err != nil {
					return fail("bad exchange value %q", fields[4])
				}
				cur.Instrs = append(cur.Instrs, Instr{Op: OpExchange, Loc: l, Val: mm.Val(val), Reg: reg})
			default:
				return fail("unknown operation %q", fields[2])
			}
			if reg+1 > t.NumRegs {
				t.NumRegs = reg + 1
			}
			if l+1 > t.NumLocs {
				t.NumLocs = l + 1
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("litmus: %w", err)
	}
	if !sawTarget {
		return nil, fmt.Errorf("litmus: missing target line")
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

// ParseString is Parse over a string.
func ParseString(src string) (*Test, error) {
	return Parse(strings.NewReader(src))
}
