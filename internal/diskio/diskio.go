// Package diskio is the storage layer's filesystem abstraction. Every
// writer whose output must survive an ungraceful death — the campaign
// checkpoint, the tuning dataset, report artifacts, pprof profiles —
// goes through a diskio.FS instead of the os package directly, so the
// same code paths run against the real filesystem in production and
// against a deterministic fault-injecting filesystem (FaultFS) in
// tests.
//
// The injecting filesystem can tear a write at any byte offset, fail
// Sync or Rename with EIO/ENOSPC, and "crash" — freeze all subsequent
// I/O — at the Nth operation. That enables the crash-at-every-boundary
// property: run a campaign, crash it at each successive I/O boundary,
// resume on a healthy filesystem, and assert the final dataset is
// byte-identical to an uninterrupted run.
//
// The package also defines the error taxonomy the storage layer's
// graceful degradation relies on: IsStorageErr recognizes the
// exhausted-or-failing-media conditions (ENOSPC, EIO) that a campaign
// survives by going in-memory, as opposed to a simulated crash
// (ErrCrashed) or a logic error, which do not degrade.
package diskio

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"syscall"
	"time"
)

// File is the subset of *os.File the storage layer needs. Every method
// of a FaultFS file is gated by the fault stream, so a torn write or a
// failed fsync surfaces exactly where the real syscall would fail.
type File interface {
	io.Reader
	io.Writer
	io.Seeker
	io.Closer
	// Name returns the path the file was opened with.
	Name() string
	// Sync flushes the file to stable storage (fsync).
	Sync() error
	// Truncate changes the file's size.
	Truncate(size int64) error
}

// FS abstracts the filesystem operations of the storage layer. Real
// code uses OS{}; tests substitute a FaultFS wrapping it.
type FS interface {
	// OpenFile is the generalized open call (os.OpenFile semantics).
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	// Rename atomically replaces newpath with oldpath.
	Rename(oldpath, newpath string) error
	// Remove deletes a file.
	Remove(name string) error
	// SyncDir fsyncs a directory, making prior renames and creates in
	// it durable. Required after the rename of an atomic publication.
	SyncDir(dir string) error
	// MkdirAll creates a directory and any missing parents
	// (os.MkdirAll semantics).
	MkdirAll(path string, perm os.FileMode) error
	// ReadDir lists a directory, sorted by filename.
	ReadDir(name string) ([]os.DirEntry, error)
	// Stat describes a file.
	Stat(name string) (os.FileInfo, error)
	// Chtimes sets a file's access and modification times. The result
	// cache uses it to mark recency for its LRU compaction pass.
	Chtimes(name string, atime, mtime time.Time) error
}

// Create opens name for writing, truncating it if it exists.
func Create(fsys FS, name string) (File, error) {
	return fsys.OpenFile(name, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
}

// Open opens name read-only.
func Open(fsys FS, name string) (File, error) {
	return fsys.OpenFile(name, os.O_RDONLY, 0)
}

// OS is the real filesystem.
type OS struct{}

// OpenFile opens a file through the os package.
func (OS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}

// Rename renames through the os package.
func (OS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

// Remove removes through the os package.
func (OS) Remove(name string) error { return os.Remove(name) }

// MkdirAll creates directories through the os package.
func (OS) MkdirAll(path string, perm os.FileMode) error { return os.MkdirAll(path, perm) }

// ReadDir lists through the os package.
func (OS) ReadDir(name string) ([]os.DirEntry, error) { return os.ReadDir(name) }

// Stat stats through the os package.
func (OS) Stat(name string) (os.FileInfo, error) { return os.Stat(name) }

// Chtimes sets timestamps through the os package.
func (OS) Chtimes(name string, atime, mtime time.Time) error {
	return os.Chtimes(name, atime, mtime)
}

// SyncDir fsyncs the directory so entries created or renamed into it
// are durable.
func (OS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// IsStorageErr reports whether err is an exhausted-or-failing-media
// condition — ENOSPC or EIO anywhere in the chain — that the storage
// layer degrades gracefully on (finish in-memory, flag the report)
// rather than aborting the campaign. A simulated crash (ErrCrashed) is
// deliberately not a storage error: a crashed process cannot degrade,
// it is dead.
func IsStorageErr(err error) bool {
	return errors.Is(err, syscall.ENOSPC) || errors.Is(err, syscall.EIO)
}

// WriteAtomic publishes a file at path with all-or-nothing visibility:
// the content is written to a sibling temp file, fsynced, renamed over
// path, and the containing directory fsynced. A reader — or a process
// that crashes at any instant — observes either the complete previous
// content or the complete new content, never a partial artifact.
//
// write receives the temp file; any error it returns aborts the
// publication and removes the temp file, leaving path untouched.
func WriteAtomic(fsys FS, path string, write func(w io.Writer) error) error {
	tmp := path + ".tmp"
	f, err := Create(fsys, tmp)
	if err != nil {
		return fmt.Errorf("diskio: create %s: %w", tmp, err)
	}
	fail := func(stage string, err error) error {
		f.Close()
		fsys.Remove(tmp)
		return fmt.Errorf("diskio: %s %s: %w", stage, tmp, err)
	}
	if err := write(f); err != nil {
		return fail("write", err)
	}
	if err := f.Sync(); err != nil {
		return fail("sync", err)
	}
	if err := f.Close(); err != nil {
		fsys.Remove(tmp)
		return fmt.Errorf("diskio: close %s: %w", tmp, err)
	}
	if err := fsys.Rename(tmp, path); err != nil {
		fsys.Remove(tmp)
		return fmt.Errorf("diskio: publish %s: %w", path, err)
	}
	return fsys.SyncDir(filepath.Dir(path))
}

// WriteFileAtomic is WriteAtomic for a byte slice.
func WriteFileAtomic(fsys FS, path string, data []byte) error {
	return WriteAtomic(fsys, path, func(w io.Writer) error {
		_, err := w.Write(data)
		return err
	})
}
