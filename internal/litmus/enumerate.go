package litmus

import (
	"sort"

	"repro/internal/mm"
)

// OutcomeClass pairs a candidate outcome with its classification under
// a model.
type OutcomeClass struct {
	Outcome Outcome
	// Allowed reports the axiomatic verdict.
	Allowed bool
}

// EnumerateOutcomes generates every value-consistent candidate outcome
// of the test — each read takes the initial value or any value written
// to its location, each written location's final value is one of its
// writes — and classifies each under the given model. This is the
// litmus-tool style "outcomes table": the universe against which
// observed histograms can be audited.
//
// The enumeration is exponential in the number of reads, which is at
// most six across the generated suite (four observer reads plus two
// RMW reads), so tables stay small.
func (t *Test) EnumerateOutcomes(model mm.MCS) []OutcomeClass {
	// Candidate values per location: 0 plus every written value.
	valsByLoc := make([][]mm.Val, t.NumLocs)
	finalsByLoc := make([][]mm.Val, t.NumLocs)
	for l := 0; l < t.NumLocs; l++ {
		valsByLoc[l] = []mm.Val{0}
	}
	regLoc := make([]int, t.NumRegs)
	for _, th := range t.Threads {
		for _, in := range th.Instrs {
			if in.Writes() {
				valsByLoc[in.Loc] = append(valsByLoc[in.Loc], in.Val)
				finalsByLoc[in.Loc] = append(finalsByLoc[in.Loc], in.Val)
			}
			if in.Reads() {
				regLoc[in.Reg] = in.Loc
			}
		}
	}
	for l := 0; l < t.NumLocs; l++ {
		if len(finalsByLoc[l]) == 0 {
			finalsByLoc[l] = []mm.Val{0} // never written: stays initial
		}
	}

	var out []OutcomeClass
	o := Outcome{Regs: make([]mm.Val, t.NumRegs), Final: make([]mm.Val, t.NumLocs)}
	var recFinal func(l int)
	recFinal = func(l int) {
		if l == t.NumLocs {
			cand := Outcome{
				Regs:  append([]mm.Val(nil), o.Regs...),
				Final: append([]mm.Val(nil), o.Final...),
			}
			x, err := t.Execution(cand)
			if err != nil {
				return // structurally impossible; skip defensively
			}
			v := x.Check(model)
			out = append(out, OutcomeClass{Outcome: cand, Allowed: v.Allowed})
			return
		}
		for _, v := range finalsByLoc[l] {
			o.Final[l] = v
			recFinal(l + 1)
		}
	}
	var recReg func(r int)
	recReg = func(r int) {
		if r == t.NumRegs {
			recFinal(0)
			return
		}
		for _, v := range valsByLoc[regLoc[r]] {
			o.Regs[r] = v
			recReg(r + 1)
		}
	}
	recReg(0)
	sort.Slice(out, func(i, j int) bool {
		return out[i].Outcome.Key() < out[j].Outcome.Key()
	})
	return out
}

// AllowedOutcomes filters EnumerateOutcomes to the allowed set, keyed
// by Outcome.Key.
func (t *Test) AllowedOutcomes(model mm.MCS) map[string]bool {
	allowed := map[string]bool{}
	for _, oc := range t.EnumerateOutcomes(model) {
		if oc.Allowed {
			allowed[oc.Outcome.Key()] = true
		}
	}
	return allowed
}
