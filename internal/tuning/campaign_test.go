package tuning

import (
	"bytes"
	"context"
	"fmt"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/litmus"
	"repro/internal/mutation"
	"repro/internal/sched"
	"repro/internal/xrand"
)

// campaignConfig is a small-but-nontrivial sweep shared by the
// campaign tests.
func campaignConfig() (Config, []*litmus.Test) {
	suite := mutation.MustGenerate()
	var tests []*litmus.Test
	for _, name := range []string{"CoRR-mutant", "MP", "SB"} {
		t, _ := suite.ByName(name)
		tests = append(tests, t)
	}
	cfg := SmallConfig()
	cfg.Environments = 2
	cfg.SITEIterations = 6
	cfg.PTEIterations = 2
	cfg.Devices = []string{"AMD", "Intel"}
	return cfg, tests
}

// datasetsIdentical asserts two datasets match record-for-record and
// byte-for-byte.
func datasetsIdentical(t *testing.T, a, b *Dataset, label string) {
	t.Helper()
	if len(a.Records) != len(b.Records) {
		t.Fatalf("%s: %d vs %d records", label, len(a.Records), len(b.Records))
	}
	for i := range a.Records {
		if a.Records[i] != b.Records[i] {
			t.Fatalf("%s: record %d differs:\n%+v\n%+v", label, i, a.Records[i], b.Records[i])
		}
	}
	var bufA, bufB bytes.Buffer
	if err := a.Save(&bufA); err != nil {
		t.Fatal(err)
	}
	if err := b.Save(&bufB); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bufA.Bytes(), bufB.Bytes()) {
		t.Fatalf("%s: serialized datasets differ", label)
	}
}

// TestCampaignDeterministicAcrossWorkers is the scheduler's core
// guarantee at the tuning level: the same campaign at workers=1 and
// workers=8 produces identical mutation scores, death rates, and
// per-record counts — in fact a byte-identical dataset.
func TestCampaignDeterministicAcrossWorkers(t *testing.T) {
	cfg, tests := campaignConfig()
	serial, err := RunCampaign(cfg, tests, RunOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := RunCampaign(cfg, tests, RunOptions{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	datasetsIdentical(t, serial, parallel, "workers=1 vs workers=8")
	for _, fam := range []string{"SITE-Baseline", "SITE", "PTE-Baseline", "PTE"} {
		k1, t1 := serial.MutationScore(fam, "", "")
		k8, t8 := parallel.MutationScore(fam, "", "")
		if k1 != k8 || t1 != t8 {
			t.Fatalf("%s: mutation score %d/%d vs %d/%d", fam, k1, t1, k8, t8)
		}
		if serial.AvgDeathRate(fam, "", "") != parallel.AvgDeathRate(fam, "", "") {
			t.Fatalf("%s: death rates differ", fam)
		}
	}
}

// TestCampaignResumeMatchesCleanRun kills a campaign mid-way (a cell
// fails permanently under fail-fast), then resumes from the checkpoint
// and verifies the final dataset is identical to an uninterrupted run —
// with the already-done cells replayed, not re-executed.
func TestCampaignResumeMatchesCleanRun(t *testing.T) {
	cfg, tests := campaignConfig()
	clean, err := RunCampaign(cfg, tests, RunOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}

	ckpt := filepath.Join(t.TempDir(), "tune.ckpt")
	// Interrupted run: fail after some progress. We inject the failure
	// through the scheduler directly, reusing tuning's own campaign
	// builder so the spec (and manifest) matches RunCampaign's.
	spec, work, err := buildCampaign(&cfg, tests)
	if err != nil {
		t.Fatal(err)
	}
	ck, err := sched.OpenCheckpoint(ckpt, spec, false)
	if err != nil {
		t.Fatal(err)
	}
	killAfter := len(spec.Cells) / 3
	ran := 0
	_, err = sched.Run(spec, func(ctx context.Context, c sched.Cell, rng *xrand.Rand) (Record, error) {
		if ran++; ran > killAfter {
			return Record{}, fmt.Errorf("simulated kill")
		}
		return runCell(ctx, work[c.Key], cfg.Faults, rng)
	}, sched.Options[Record]{Workers: 1, Checkpoint: ck})
	if err == nil {
		t.Fatal("interrupted run succeeded")
	}
	ck.Close()

	// Resume through the public API; done cells must be skipped.
	executed := 0
	resumed, err := RunCampaign(cfg, tests, RunOptions{
		Workers:        4,
		CheckpointPath: ckpt,
		Resume:         true,
		Progress:       func(string) { executed++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	if executed != len(spec.Cells)-killAfter {
		t.Fatalf("resume executed %d cells, want %d", executed, len(spec.Cells)-killAfter)
	}
	datasetsIdentical(t, clean, resumed, "clean vs resumed")
}

// TestCampaignResumeRejectsChangedConfig guards against silently mixing
// incompatible runs: a checkpoint written under one seed cannot seed a
// resume under another.
func TestCampaignResumeRejectsChangedConfig(t *testing.T) {
	cfg, tests := campaignConfig()
	cfg.Environments = 1
	cfg.SITEIterations = 2
	cfg.PTEIterations = 1
	cfg.Devices = []string{"AMD"}
	ckpt := filepath.Join(t.TempDir(), "tune.ckpt")
	if _, err := RunCampaign(cfg, tests, RunOptions{CheckpointPath: ckpt}); err != nil {
		t.Fatal(err)
	}
	cfg.Seed++
	_, err := RunCampaign(cfg, tests, RunOptions{CheckpointPath: ckpt, Resume: true})
	if err == nil || !strings.Contains(err.Error(), "different campaign spec") {
		t.Fatalf("changed seed resumed against stale checkpoint: %v", err)
	}
	if _, err := RunCampaign(cfg, tests, RunOptions{Resume: true}); err == nil {
		t.Fatal("Resume without CheckpointPath accepted")
	}
}

// TestCampaignReporterStreams checks the throughput stream surfaces
// cells, instance rates and device utilization.
func TestCampaignReporterStreams(t *testing.T) {
	cfg, tests := campaignConfig()
	var lines []string
	_, err := RunCampaign(cfg, tests, RunOptions{
		Workers: 2,
		Report:  func(s string) { lines = append(lines, s) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(lines) == 0 {
		t.Fatal("no report lines")
	}
	last := lines[len(lines)-1]
	for _, want := range []string{"tune:", "cells", "cells/s", "instances/s", "util", "AMD", "Intel", "done"} {
		if !strings.Contains(last, want) {
			t.Errorf("final report line missing %q: %s", want, last)
		}
	}
}

// TestCampaignRepeatByteIdentical runs the identical campaign twice in
// one process at a worker count that forces heavy runner-cache reuse
// (each worker funnels many cells through few cached Runners and
// Devices). Any state leaking between cells through that reused
// scratch — plan arrays, outcome arenas, fault counters — would break
// the byte-for-byte dataset equality asserted here.
func TestCampaignRepeatByteIdentical(t *testing.T) {
	cfg, tests := campaignConfig()
	first, err := RunCampaign(cfg, tests, RunOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	second, err := RunCampaign(cfg, tests, RunOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	datasetsIdentical(t, first, second, "repeat run")
}
