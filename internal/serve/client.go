package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"time"
)

// Client is a minimal Go client for the campaign server API — what
// the loadgen example and the integration tests drive the server
// with.
//
// Requests are retried transparently. Every API call is idempotent —
// submission is content-addressed (the same spec maps to the same job),
// reads are reads, and cancellation converges — so a 429 (admission
// pushback), a 503 (draining peer behind a balancer) or a transient
// transport error is retried with capped jittered exponential backoff,
// honoring the server's Retry-After header when present. Callers see
// only the final outcome.
type Client struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// APIKey, when set, identifies the client for admission control
	// (the X-API-Key header); otherwise the remote address is used.
	APIKey string
	// HTTPClient defaults to http.DefaultClient.
	HTTPClient *http.Client

	// MaxRetries bounds retry attempts after the first try; 0 means 4,
	// negative disables retrying.
	MaxRetries int
	// RetryBase and RetryCap shape the backoff: full jitter over an
	// exponentially growing delay, never below RetryBase/2 nor above
	// RetryCap. Defaults 100ms and 2s. A Retry-After header overrides
	// the computed delay, still capped at RetryCap.
	RetryBase time.Duration
	RetryCap  time.Duration
	// Sleep overrides backoff waiting (tests capture delays); nil means
	// a context-aware real sleep.
	Sleep func(time.Duration)
	// Rand is the jitter source in [0, 1); nil means math/rand.
	Rand func() float64
}

// APIError is a non-2xx response decoded from the server's JSON error
// body.
type APIError struct {
	StatusCode int
	Message    string
}

func (e *APIError) Error() string {
	return fmt.Sprintf("serve: HTTP %d: %s", e.StatusCode, e.Message)
}

func (c *Client) http() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

// maxRetries resolves the retry budget (attempts after the first).
func (c *Client) maxRetries() int {
	if c.MaxRetries < 0 {
		return 0
	}
	if c.MaxRetries == 0 {
		return 4
	}
	return c.MaxRetries
}

// backoff computes the delay before retry number attempt (0-based):
// Retry-After when the server named one, else full-jittered exponential
// growth; both capped at RetryCap.
func (c *Client) backoff(attempt int, retryAfter string) time.Duration {
	base, cap := c.RetryBase, c.RetryCap
	if base <= 0 {
		base = 100 * time.Millisecond
	}
	if cap <= 0 {
		cap = 2 * time.Second
	}
	if retryAfter != "" {
		if secs, err := strconv.Atoi(strings.TrimSpace(retryAfter)); err == nil && secs >= 0 {
			d := time.Duration(secs) * time.Second
			if d > cap {
				d = cap
			}
			return d
		}
	}
	d := base << uint(attempt)
	if d > cap || d <= 0 {
		d = cap
	}
	rnd := c.Rand
	if rnd == nil {
		rnd = rand.Float64
	}
	// Full jitter over [d/2, d]: desynchronizes a fleet of clients
	// hammering a recovering server without collapsing the wait to 0.
	return d/2 + time.Duration(rnd()*float64(d/2))
}

// sleep waits out a backoff delay, returning early on ctx cancellation.
func (c *Client) sleep(ctx context.Context, d time.Duration) error {
	if c.Sleep != nil {
		c.Sleep(d)
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// retryStatus reports response codes worth retrying: admission
// pushback (429) and unavailability (503), both of which mean the
// request was refused before any work happened.
func retryStatus(code int) bool {
	return code == http.StatusTooManyRequests || code == http.StatusServiceUnavailable
}

// roundTrip issues one request with retries, rebuilding the body each
// attempt. The caller owns the returned response body. Transport-level
// errors are treated as transient (safe because the API is idempotent);
// a live non-retryable response — success or a real error — is final.
func (c *Client) roundTrip(ctx context.Context, method, path string, body []byte) (*http.Response, error) {
	max := c.maxRetries()
	for attempt := 0; ; attempt++ {
		var rd io.Reader
		if body != nil {
			rd = bytes.NewReader(body)
		}
		req, err := http.NewRequestWithContext(ctx, method, c.BaseURL+path, rd)
		if err != nil {
			return nil, err
		}
		if body != nil {
			req.Header.Set("Content-Type", "application/json")
		}
		if c.APIKey != "" {
			req.Header.Set("X-API-Key", c.APIKey)
		}
		resp, err := c.http().Do(req)
		retryAfter := ""
		switch {
		case err != nil:
			if ctx.Err() != nil || attempt >= max {
				return nil, err
			}
		case retryStatus(resp.StatusCode) && attempt < max:
			retryAfter = resp.Header.Get("Retry-After")
			io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
			resp.Body.Close()
		default:
			return resp, nil
		}
		if err := c.sleep(ctx, c.backoff(attempt, retryAfter)); err != nil {
			return nil, err
		}
	}
}

// apiError translates a non-2xx body into *APIError.
func apiError(code int, data []byte) error {
	var eb struct {
		Error string `json:"error"`
	}
	msg := strings.TrimSpace(string(data))
	if json.Unmarshal(data, &eb) == nil && eb.Error != "" {
		msg = eb.Error
	}
	return &APIError{StatusCode: code, Message: msg}
}

// do issues a request and decodes a JSON response into out (when
// non-nil), translating error bodies into *APIError.
func (c *Client) do(ctx context.Context, method, path string, body []byte, out any) error {
	resp, err := c.roundTrip(ctx, method, path, body)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		return apiError(resp.StatusCode, data)
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(data, out)
}

// Submit posts a job spec. The response says whether the spec mapped
// to an existing job (idempotent resubmission).
func (c *Client) Submit(ctx context.Context, spec JobSpec) (*SubmitResponse, error) {
	body, err := json.Marshal(spec)
	if err != nil {
		return nil, err
	}
	var out SubmitResponse
	if err := c.do(ctx, http.MethodPost, "/api/v1/jobs", body, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Job fetches one job record.
func (c *Client) Job(ctx context.Context, id string) (*Job, error) {
	var out Job
	if err := c.do(ctx, http.MethodGet, "/api/v1/jobs/"+id, nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Jobs lists every tracked job, oldest first.
func (c *Client) Jobs(ctx context.Context) ([]*Job, error) {
	var out struct {
		Jobs []*Job `json:"jobs"`
	}
	if err := c.do(ctx, http.MethodGet, "/api/v1/jobs", nil, &out); err != nil {
		return nil, err
	}
	return out.Jobs, nil
}

// Report fetches a completed job's artifact bytes — byte-identical to
// the CLI's -out file for the same spec.
func (c *Client) Report(ctx context.Context, id string) ([]byte, error) {
	resp, err := c.roundTrip(ctx, http.MethodGet, "/api/v1/jobs/"+id+"/report", nil)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, apiError(resp.StatusCode, data)
	}
	return data, nil
}

// Cancel requests cancellation; the job drains gracefully.
func (c *Client) Cancel(ctx context.Context, id string) (*Job, error) {
	var out Job
	if err := c.do(ctx, http.MethodDelete, "/api/v1/jobs/"+id, nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Wait polls until the job reaches a terminal state or ctx ends.
func (c *Client) Wait(ctx context.Context, id string, poll time.Duration) (*Job, error) {
	if poll <= 0 {
		poll = 100 * time.Millisecond
	}
	t := time.NewTicker(poll)
	defer t.Stop()
	for {
		j, err := c.Job(ctx, id)
		if err != nil {
			return nil, err
		}
		if j.State.Terminal() {
			return j, nil
		}
		select {
		case <-ctx.Done():
			return j, ctx.Err()
		case <-t.C:
		}
	}
}

// Events streams the job's SSE feed, invoking fn per event until the
// stream ends (the server closes it after the terminal event), fn
// returns a non-nil error, or ctx is cancelled. A nil return means
// the stream ended normally.
func (c *Client) Events(ctx context.Context, id string, fn func(name string, data json.RawMessage) error) error {
	// Connection establishment retries like any other call; a stream
	// that dies mid-flight is not resumed (events are cumulative — the
	// caller reconnects and the replay catches it up).
	resp, err := c.roundTrip(ctx, http.MethodGet, "/api/v1/jobs/"+id+"/events", nil)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		data, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return apiError(resp.StatusCode, data)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 4<<20)
	name, data := "", ""
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			if name != "" || data != "" {
				if err := fn(name, json.RawMessage(data)); err != nil {
					return err
				}
			}
			name, data = "", ""
		case strings.HasPrefix(line, "event: "):
			name = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data = strings.TrimPrefix(line, "data: ")
		}
	}
	if err := sc.Err(); err != nil && ctx.Err() == nil {
		return err
	}
	return nil
}
