package serve

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// retryHarness is an httptest server that refuses the first `refuse`
// requests with the given status (and optional Retry-After) before
// answering an empty job list.
type retryHarness struct {
	refuse     int32
	status     int
	retryAfter string
	hits       atomic.Int32
}

func (h *retryHarness) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	n := h.hits.Add(1)
	if n <= h.refuse {
		if h.retryAfter != "" {
			w.Header().Set("Retry-After", h.retryAfter)
		}
		http.Error(w, `{"error":"busy"}`, h.status)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write([]byte(`{"jobs":[]}`))
}

// retryClient builds a Client against the harness that records every
// backoff delay instead of sleeping.
func retryClient(t *testing.T, h http.Handler, delays *[]time.Duration) *Client {
	t.Helper()
	hs := httptest.NewServer(h)
	t.Cleanup(hs.Close)
	return &Client{
		BaseURL: hs.URL,
		Sleep:   func(d time.Duration) { *delays = append(*delays, d) },
		Rand:    func() float64 { return 1 }, // deterministic: top of the jitter window
	}
}

func TestClientRetries429ThenSucceeds(t *testing.T) {
	h := &retryHarness{refuse: 2, status: http.StatusTooManyRequests}
	var delays []time.Duration
	c := retryClient(t, h, &delays)
	jobs, err := c.Jobs(context.Background())
	if err != nil {
		t.Fatalf("Jobs after retries: %v", err)
	}
	if len(jobs) != 0 {
		t.Fatalf("jobs = %v", jobs)
	}
	if got := h.hits.Load(); got != 3 {
		t.Fatalf("attempts = %d, want 3", got)
	}
	// Exponential with full jitter at Rand=1: exactly base<<attempt.
	want := []time.Duration{100 * time.Millisecond, 200 * time.Millisecond}
	if len(delays) != len(want) || delays[0] != want[0] || delays[1] != want[1] {
		t.Fatalf("delays = %v, want %v", delays, want)
	}
}

func TestClientHonorsRetryAfterCapped(t *testing.T) {
	h := &retryHarness{refuse: 1, status: http.StatusServiceUnavailable, retryAfter: "7"}
	var delays []time.Duration
	c := retryClient(t, h, &delays)
	c.RetryCap = 500 * time.Millisecond
	if _, err := c.Jobs(context.Background()); err != nil {
		t.Fatal(err)
	}
	// Retry-After asked for 7s; the cap wins so a hostile or confused
	// server cannot park the client.
	if len(delays) != 1 || delays[0] != 500*time.Millisecond {
		t.Fatalf("delays = %v, want [500ms]", delays)
	}
}

func TestClientRetryExhaustionSurfacesAPIError(t *testing.T) {
	h := &retryHarness{refuse: 1 << 30, status: http.StatusTooManyRequests}
	var delays []time.Duration
	c := retryClient(t, h, &delays)
	c.MaxRetries = 2
	_, err := c.Jobs(context.Background())
	var ae *APIError
	if !errors.As(err, &ae) || ae.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("err = %v, want APIError 429", err)
	}
	if got := h.hits.Load(); got != 3 { // 1 try + 2 retries
		t.Fatalf("attempts = %d, want 3", got)
	}
}

func TestClientNegativeMaxRetriesDisables(t *testing.T) {
	h := &retryHarness{refuse: 1, status: http.StatusServiceUnavailable}
	var delays []time.Duration
	c := retryClient(t, h, &delays)
	c.MaxRetries = -1
	_, err := c.Jobs(context.Background())
	var ae *APIError
	if !errors.As(err, &ae) || ae.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("err = %v, want APIError 503", err)
	}
	if got := h.hits.Load(); got != 1 {
		t.Fatalf("attempts = %d, want 1 (retries disabled)", got)
	}
	if len(delays) != 0 {
		t.Fatalf("slept %v with retries disabled", delays)
	}
}

// flakyTransport fails the first `fail` round trips at the transport
// layer (connection refused analogue), then delegates.
type flakyTransport struct {
	fail atomic.Int32
	next http.RoundTripper
}

func (f *flakyTransport) RoundTrip(r *http.Request) (*http.Response, error) {
	if f.fail.Add(-1) >= 0 {
		return nil, errors.New("simulated connection reset")
	}
	return f.next.RoundTrip(r)
}

func TestClientRetriesTransportErrors(t *testing.T) {
	h := &retryHarness{}
	hs := httptest.NewServer(h)
	t.Cleanup(hs.Close)
	ft := &flakyTransport{next: http.DefaultTransport}
	ft.fail.Store(2)
	var delays []time.Duration
	c := &Client{
		BaseURL:    hs.URL,
		HTTPClient: &http.Client{Transport: ft},
		Sleep:      func(d time.Duration) { delays = append(delays, d) },
		Rand:       func() float64 { return 0 },
	}
	if _, err := c.Jobs(context.Background()); err != nil {
		t.Fatalf("Jobs through flaky transport: %v", err)
	}
	if got := h.hits.Load(); got != 1 {
		t.Fatalf("server hits = %d, want 1", got)
	}
	if len(delays) != 2 {
		t.Fatalf("delays = %v, want 2 backoffs", delays)
	}
}

func TestClientRetryRespectsContext(t *testing.T) {
	h := &retryHarness{refuse: 1 << 30, status: http.StatusTooManyRequests}
	hs := httptest.NewServer(h)
	t.Cleanup(hs.Close)
	ctx, cancel := context.WithCancel(context.Background())
	c := &Client{
		BaseURL: hs.URL,
		Sleep:   func(time.Duration) { cancel() }, // cancel during the first backoff
	}
	if _, err := c.Jobs(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if got := h.hits.Load(); got != 1 {
		t.Fatalf("attempts = %d, want 1", got)
	}
}

func TestClientBackoffBounds(t *testing.T) {
	c := &Client{}
	// Rand=0 → lower edge d/2; Rand≈1 → upper edge d.
	c.Rand = func() float64 { return 0 }
	if d := c.backoff(0, ""); d != 50*time.Millisecond {
		t.Fatalf("attempt 0 low edge = %v, want 50ms", d)
	}
	c.Rand = func() float64 { return 0.999999 }
	if d := c.backoff(3, ""); d < 400*time.Millisecond || d > 800*time.Millisecond {
		t.Fatalf("attempt 3 = %v, want within [400ms, 800ms]", d)
	}
	// Huge attempt numbers saturate at the cap instead of overflowing.
	if d := c.backoff(62, ""); d > 2*time.Second {
		t.Fatalf("attempt 62 = %v, want <= 2s", d)
	}
	// Malformed Retry-After falls back to the computed schedule.
	if d := c.backoff(0, "soon"); d > 100*time.Millisecond {
		t.Fatalf("malformed Retry-After = %v, want <= 100ms", d)
	}
}
