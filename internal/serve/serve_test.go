package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/sched"
)

// startServer boots a full server (runner pool + HTTP listener) on an
// ephemeral port and tears it down through the graceful-drain path.
func startServer(t *testing.T, cfg Config) (*Server, *Client) {
	t.Helper()
	if cfg.StateDir == "" {
		cfg.StateDir = t.TempDir()
	}
	if cfg.ProgressEvery == 0 {
		cfg.ProgressEvery = 2 * time.Millisecond
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- s.Run(ctx, ln) }()
	t.Cleanup(func() {
		cancel()
		select {
		case err := <-done:
			if err != nil {
				t.Errorf("server Run: %v", err)
			}
		case <-time.After(30 * time.Second):
			t.Error("server did not drain within 30s")
		}
	})
	return s, &Client{BaseURL: "http://" + ln.Addr().String()}
}

// queuedServer builds a server whose runner pool never starts, so
// submitted jobs stay queued — deterministic ground for admission and
// queued-cancellation tests.
func queuedServer(t *testing.T, cfg Config) (*Server, *Client, *httptest.Server) {
	t.Helper()
	if cfg.StateDir == "" {
		cfg.StateDir = t.TempDir()
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(hs.Close)
	return s, &Client{BaseURL: hs.URL}, hs
}

// smallConformance is the standard quick job: one device, one env.
func smallConformance() JobSpec {
	return JobSpec{Kind: "conformance", Devices: []string{"AMD"}, Envs: []string{"pte"}, Iters: 2, Seed: 7}
}

// localConformanceArtifact renders the artifact the CLI/library would
// produce for the spec — the byte-identity oracle.
func localConformanceArtifact(t *testing.T, js JobSpec) []byte {
	t.Helper()
	study, err := core.NewStudy()
	if err != nil {
		t.Fatal(err)
	}
	env, err := core.EnvByName(js.Envs[0], 16, 32)
	if err != nil {
		t.Fatal(err)
	}
	reports, err := study.CheckFleetConformanceCtx(context.Background(), platformsOf(&js), env,
		js.Iters, js.Seed, core.CampaignOptions{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	art := &core.CampaignArtifact{Kind: "conformance", Conformance: reports}
	var buf bytes.Buffer
	if err := art.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestJobLifecycleAndByteIdentity(t *testing.T) {
	_, c := startServer(t, Config{Runners: 2, JobWorkers: 4})
	ctx := context.Background()
	sub, err := c.Submit(ctx, smallConformance())
	if err != nil {
		t.Fatal(err)
	}
	if sub.Existing {
		t.Fatal("fresh submission reported existing")
	}
	if sub.Job.State != StateQueued && sub.Job.State != StateRunning {
		t.Fatalf("fresh job state = %s", sub.Job.State)
	}
	if sub.Job.Cells == 0 || sub.Job.Manifest == "" {
		t.Fatalf("job missing plan: %+v", sub.Job)
	}
	j, err := c.Wait(ctx, sub.Job.ID, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if j.State != StateDone {
		t.Fatalf("job state = %s (error %q), want done", j.State, j.Error)
	}
	if j.Summary == nil || j.Summary.Done != j.Cells || j.Summary.Executed == 0 {
		t.Fatalf("bad summary: %+v", j.Summary)
	}
	got, err := c.Report(ctx, j.ID)
	if err != nil {
		t.Fatal(err)
	}
	want := localConformanceArtifact(t, j.Spec)
	if !bytes.Equal(got, want) {
		t.Fatalf("server report differs from local artifact:\nserver: %d bytes\nlocal:  %d bytes", len(got), len(want))
	}

	// Idempotent resubmission of the completed job returns it as-is —
	// including a spec spelled via defaults instead of explicitly.
	again, err := c.Submit(ctx, JobSpec{Kind: "conformance", Devices: []string{" AMD "}, Envs: []string{"pte"}, Iters: 2, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if !again.Existing || again.Job.ID != j.ID || again.Job.State != StateDone {
		t.Fatalf("resubmission not idempotent: existing=%v id=%s state=%s", again.Existing, again.Job.ID, again.Job.State)
	}
}

func TestMetricsAndHealthz(t *testing.T) {
	_, c := startServer(t, Config{Runners: 1, JobWorkers: 4})
	ctx := context.Background()
	sub, err := c.Submit(ctx, smallConformance())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Wait(ctx, sub.Job.ID, 10*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(c.BaseURL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	body := buf.String()
	for _, want := range []string{
		`mcmutants_jobs{state="done"} 1`,
		`mcmutants_jobs_completed_total{state="done"} 1`,
		"mcmutants_queue_depth 0",
		"mcmutants_running_jobs 0",
		"# TYPE mcmutants_cells_executed_total counter",
		"mcmutants_draining 0",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q\n%s", want, body)
		}
	}
	// The executed counter covers the whole campaign.
	if !strings.Contains(body, "mcmutants_cells_executed_total 20") {
		t.Errorf("cells_executed_total != 20:\n%s", body)
	}
	hresp, err := http.Get(c.BaseURL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d", hresp.StatusCode)
	}
	var health struct {
		Status string `json:"status"`
	}
	if err := json.NewDecoder(hresp.Body).Decode(&health); err != nil || health.Status != "ok" {
		t.Fatalf("healthz body: %v %+v", err, health)
	}
}

func TestSSEProgressStream(t *testing.T) {
	_, c := startServer(t, Config{Runners: 1, JobWorkers: 2, ProgressEvery: time.Millisecond})
	ctx := context.Background()
	js := smallConformance()
	js.Iters = 5 // enough work for mid-run snapshots at a 1ms cadence
	sub, err := c.Submit(ctx, js)
	if err != nil {
		t.Fatal(err)
	}
	var progress []sched.Progress
	var doneEvents int
	err = c.Events(ctx, sub.Job.ID, func(name string, data json.RawMessage) error {
		switch name {
		case "progress":
			var p sched.Progress
			if err := json.Unmarshal(data, &p); err != nil {
				return err
			}
			progress = append(progress, p)
		case "done":
			doneEvents++
			var j Job
			if err := json.Unmarshal(data, &j); err != nil {
				return err
			}
			if !j.State.Terminal() {
				t.Errorf("done event with non-terminal state %s", j.State)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if doneEvents != 1 {
		t.Fatalf("got %d done events, want 1", doneEvents)
	}
	if len(progress) == 0 {
		t.Fatal("no progress events before terminal")
	}
	last := -1
	finals := 0
	for i, p := range progress {
		if p.Done < last {
			t.Fatalf("progress %d: done %d < %d (not monotonic)", i, p.Done, last)
		}
		last = p.Done
		if p.Final {
			finals++
		}
	}
	if finals != 1 || !progress[len(progress)-1].Final {
		t.Fatalf("final snapshots: %d (last final: %v)", finals, progress[len(progress)-1].Final)
	}
	if progress[len(progress)-1].Done != sub.Job.Cells {
		t.Fatalf("final done = %d, want %d", progress[len(progress)-1].Done, sub.Job.Cells)
	}

	// A late subscriber replays the terminal event immediately.
	doneEvents = 0
	if err := c.Events(ctx, sub.Job.ID, func(name string, data json.RawMessage) error {
		if name == "done" {
			doneEvents++
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if doneEvents != 1 {
		t.Fatalf("late subscriber saw %d done events, want 1", doneEvents)
	}
}

func TestAdmissionControl(t *testing.T) {
	_, c, _ := queuedServer(t, Config{QueueDepth: 2, PerClient: 2})
	ctx := context.Background()
	mk := func(seed uint64) JobSpec {
		js := smallConformance()
		js.Seed = seed
		return js
	}
	// Two distinct clients fill the queue without tripping their
	// per-client caps.
	c1 := &Client{BaseURL: c.BaseURL, APIKey: "alice"}
	c2 := &Client{BaseURL: c.BaseURL, APIKey: "bob"}
	if _, err := c1.Submit(ctx, mk(1)); err != nil {
		t.Fatal(err)
	}
	if _, err := c2.Submit(ctx, mk(2)); err != nil {
		t.Fatal(err)
	}
	// Queue (depth 2) is now full for any client.
	_, err := c2.Submit(ctx, mk(3))
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("queue-full submit: %v, want 429", err)
	}
	if !strings.Contains(apiErr.Message, "queue full") {
		t.Fatalf("queue-full message: %q", apiErr.Message)
	}
	// Resubmitting an already-queued spec is not an admission event.
	again, err := c1.Submit(ctx, mk(1))
	if err != nil || !again.Existing {
		t.Fatalf("idempotent resubmit under full queue: %v existing=%v", err, again)
	}
}

func TestPerClientCap(t *testing.T) {
	_, c, _ := queuedServer(t, Config{QueueDepth: 16, PerClient: 2})
	ctx := context.Background()
	alice := &Client{BaseURL: c.BaseURL, APIKey: "alice"}
	for seed := uint64(1); seed <= 2; seed++ {
		js := smallConformance()
		js.Seed = seed
		if _, err := alice.Submit(ctx, js); err != nil {
			t.Fatal(err)
		}
	}
	js := smallConformance()
	js.Seed = 3
	_, err := alice.Submit(ctx, js)
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("per-client submit: %v, want 429", err)
	}
	if !strings.Contains(apiErr.Message, "in flight") {
		t.Fatalf("per-client message: %q", apiErr.Message)
	}
	// Another client is unaffected.
	bob := &Client{BaseURL: c.BaseURL, APIKey: "bob"}
	if _, err := bob.Submit(ctx, js); err != nil {
		t.Fatalf("bob blocked by alice's cap: %v", err)
	}
}

// TestConcurrentDuplicateSubmit: identical submissions racing through
// handleSubmit must register and enqueue the job exactly once — the
// idempotency contract would otherwise let two runners execute the
// same job against the same checkpoint path.
func TestConcurrentDuplicateSubmit(t *testing.T) {
	s, c, _ := queuedServer(t, Config{QueueDepth: 64, PerClient: 64})
	ctx := context.Background()
	const n = 16
	results := make([]*SubmitResponse, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = c.Submit(ctx, smallConformance())
		}(i)
	}
	wg.Wait()
	fresh := 0
	var id string
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("submit %d: %v", i, errs[i])
		}
		if !results[i].Existing {
			fresh++
		}
		id = results[i].Job.ID
	}
	if fresh != 1 {
		t.Fatalf("%d submissions created the job, want exactly 1", fresh)
	}
	// The queue must hold the job exactly once: one dequeue succeeds,
	// a second finds nothing.
	if !s.dequeue(id) {
		t.Fatal("job not on the queue")
	}
	if s.dequeue(id) {
		t.Fatal("job enqueued more than once")
	}
}

// TestPerClientCapConcurrent: distinct submissions from one client
// racing each other must never exceed the in-flight cap.
func TestPerClientCapConcurrent(t *testing.T) {
	s, c, _ := queuedServer(t, Config{QueueDepth: 64, PerClient: 3})
	ctx := context.Background()
	alice := &Client{BaseURL: c.BaseURL, APIKey: "alice"}
	const n = 12
	var wg sync.WaitGroup
	var accepted, rejected atomic.Int32
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			js := smallConformance()
			js.Seed = uint64(i + 1)
			_, err := alice.Submit(ctx, js)
			switch {
			case err == nil:
				accepted.Add(1)
			default:
				var apiErr *APIError
				if errors.As(err, &apiErr) && apiErr.StatusCode == http.StatusTooManyRequests {
					rejected.Add(1)
				} else {
					t.Errorf("submit %d: %v", i, err)
				}
			}
		}(i)
	}
	wg.Wait()
	// No runner drains the queue, so exactly PerClient submissions can
	// land; everything else must bounce with 429.
	if got := accepted.Load(); got != 3 {
		t.Fatalf("accepted %d submissions, want exactly 3 (the cap)", got)
	}
	if got := rejected.Load(); got != n-3 {
		t.Fatalf("rejected %d submissions, want %d", got, n-3)
	}
	if got := s.store.inFlight("alice"); got != 3 {
		t.Fatalf("in-flight count = %d, want 3", got)
	}
}

func TestValidationRejects(t *testing.T) {
	_, c, _ := queuedServer(t, Config{})
	ctx := context.Background()
	cases := []JobSpec{
		{},              // no kind
		{Kind: "bogus"}, // unknown kind
		{Kind: "conformance", Devices: []string{"NoSuchGPU"}},
		{Kind: "evaluate", Envs: []string{"warp-drive"}},
		{Kind: "tune", TuneEnvs: -1},
	}
	for _, js := range cases {
		_, err := c.Submit(ctx, js)
		var apiErr *APIError
		if !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusBadRequest {
			t.Errorf("spec %+v: err %v, want 400", js, err)
		}
	}
	// Unknown fields are rejected too — a misspelled parameter must
	// not silently select defaults.
	resp, err := http.Post(c.BaseURL+"/api/v1/jobs", "application/json",
		strings.NewReader(`{"kind":"conformance","itres":5}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown field accepted: %d", resp.StatusCode)
	}
}

func TestCancelQueuedJob(t *testing.T) {
	_, c, _ := queuedServer(t, Config{})
	ctx := context.Background()
	sub, err := c.Submit(ctx, smallConformance())
	if err != nil {
		t.Fatal(err)
	}
	j, err := c.Cancel(ctx, sub.Job.ID)
	if err != nil {
		t.Fatal(err)
	}
	if j.State != StateCancelled {
		t.Fatalf("cancelled queued job state = %s", j.State)
	}
	// Cancelling a terminal job conflicts.
	_, err = c.Cancel(ctx, sub.Job.ID)
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusConflict {
		t.Fatalf("double cancel: %v, want 409", err)
	}
	// Resubmission requeues it.
	again, err := c.Submit(ctx, smallConformance())
	if err != nil {
		t.Fatal(err)
	}
	if !again.Existing || !again.Requeued || again.Job.State != StateQueued || again.Job.Resumes != 1 {
		t.Fatalf("resubmit after cancel: %+v", again.Job)
	}
}

func TestCancelRunningJob(t *testing.T) {
	s, c := startServer(t, Config{Runners: 1, JobWorkers: 1, ProgressEvery: time.Millisecond})
	ctx := context.Background()
	js := smallConformance()
	js.Iters = 3000 // long enough that cancellation always lands mid-run
	sub, err := c.Submit(ctx, js)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(20 * time.Second)
	for {
		s.mu.Lock()
		running := len(s.running) > 0
		s.mu.Unlock()
		if running {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job never started running")
		}
		time.Sleep(time.Millisecond)
	}
	if _, err := c.Cancel(ctx, sub.Job.ID); err != nil {
		t.Fatal(err)
	}
	j, err := c.Wait(ctx, sub.Job.ID, 5*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if j.State != StateCancelled {
		t.Fatalf("state after cancel = %s (error %q)", j.State, j.Error)
	}
	if j.Summary == nil || j.Summary.Done >= j.Cells {
		t.Fatalf("cancelled job summary should be partial: %+v", j.Summary)
	}
	// No report for a cancelled job.
	_, err = c.Report(ctx, j.ID)
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusConflict {
		t.Fatalf("report of cancelled job: %v, want 409", err)
	}
}

func TestDrainRequeuesRunningJob(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{StateDir: dir, Runners: 1, JobWorkers: 1, ProgressEvery: time.Millisecond}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- s.Run(ctx, ln) }()
	c := &Client{BaseURL: "http://" + ln.Addr().String()}

	// Cells slow enough that the drain lands mid-run, fast enough
	// that the resumed server finishes the remainder quickly.
	js := smallConformance()
	js.Iters = 50
	sub, err := c.Submit(context.Background(), js)
	if err != nil {
		t.Fatal(err)
	}
	// Wait until at least one cell completed (and is checkpointed), so
	// the resumed run has something to replay.
	deadline := time.Now().Add(60 * time.Second)
	for {
		s.mu.Lock()
		var done int
		if rj := s.running[sub.Job.ID]; rj != nil {
			done = rj.last.Done
		}
		s.mu.Unlock()
		if done >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job never completed a cell")
		}
		time.Sleep(time.Millisecond)
	}
	cancel() // graceful drain
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("drain timed out")
	}

	// The drained job is queued on disk; a new server over the same
	// state dir resumes and completes it with a byte-identical report.
	s2, c2 := startServer(t, Config{StateDir: dir, Runners: 1, JobWorkers: 4})
	_ = s2
	j, err := c2.Wait(context.Background(), sub.Job.ID, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if j.State != StateDone {
		t.Fatalf("resumed job state = %s (error %q)", j.State, j.Error)
	}
	if j.Resumes == 0 {
		t.Fatalf("resumed job should count a resume: %+v", j)
	}
	if j.Summary.Replayed == 0 {
		t.Fatalf("resumed job replayed no cells: %+v", j.Summary)
	}
	got, err := c2.Report(context.Background(), j.ID)
	if err != nil {
		t.Fatal(err)
	}
	want := localConformanceArtifact(t, j.Spec)
	if !bytes.Equal(got, want) {
		t.Fatal("resumed report differs from uninterrupted local artifact")
	}
}
