package report

import (
	"strings"
	"testing"

	"repro/internal/confidence"
	"repro/internal/litmus"
	"repro/internal/mutation"
	"repro/internal/tuning"
)

func TestTable2(t *testing.T) {
	s := mutation.MustGenerate()
	out := Table2(s)
	for _, want := range []string{
		"reversing po-loc", "weakening po-loc", "weakening sw", "Combined",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Table2 missing %q:\n%s", want, out)
		}
	}
	// The totals row must show 20 and 32.
	if !strings.Contains(out, "20") || !strings.Contains(out, "32") {
		t.Errorf("Table2 totals wrong:\n%s", out)
	}
}

func TestTable3(t *testing.T) {
	out := Table3()
	for _, want := range []string{
		"GeForce RTX 2080", "Radeon Pro 5500M", "Iris Plus Graphics", "M1",
		"64", "24", "48", "128", "Discrete", "Integrated",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Table3 missing %q:\n%s", want, out)
		}
	}
}

func TestFig1(t *testing.T) {
	out := Fig1(mutation.MustGenerate())
	if !strings.Contains(out, "CoRR") || !strings.Contains(out, "MP-relacq") {
		t.Errorf("Fig1 missing tests:\n%s", out)
	}
	if !strings.Contains(out, "fence(release/acquire)") {
		t.Errorf("Fig1 missing fences:\n%s", out)
	}
}

func TestFig2(t *testing.T) {
	out, err := Fig2(mutation.MustGenerate())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "hb cycle:") {
		t.Errorf("Fig2 missing cycles:\n%s", out)
	}
	if !strings.Contains(out, "po;sw;po") {
		t.Errorf("Fig2 MP-relacq cycle should use po;sw;po:\n%s", out)
	}
}

func TestFig3(t *testing.T) {
	out := Fig3()
	for _, want := range []string{"Mutator 1", "Mutator 2", "Mutator 3", "disruptor"} {
		if !strings.Contains(out, want) {
			t.Errorf("Fig3 missing %q", want)
		}
	}
}

func TestFig4(t *testing.T) {
	out := Fig4(8, 7)
	if !strings.Contains(out, "t0") || !strings.Contains(out, "instance") {
		t.Errorf("Fig4 malformed:\n%s", out)
	}
	// Defaulting for tiny instance counts.
	if !strings.Contains(Fig4(0, 7), "8 instances") {
		t.Error("Fig4 default not applied")
	}
}

func TestFig5AndFig6(t *testing.T) {
	suite := mutation.MustGenerate()
	var tests []*litmus.Test
	for _, n := range []string{"MP", "CoRR-mutant"} {
		tt, _ := suite.ByName(n)
		tests = append(tests, tt)
	}
	cfg := tuning.SmallConfig()
	cfg.Environments = 2
	cfg.SITEIterations = 4
	cfg.PTEIterations = 2
	cfg.Devices = []string{"AMD"}
	ds, err := tuning.Run(cfg, tests, nil)
	if err != nil {
		t.Fatal(err)
	}
	out := Fig5(ds)
	for _, want := range []string{"all mutators", "SITE-Baseline", "PTE", "AMD", "ALL"} {
		if !strings.Contains(out, want) {
			t.Errorf("Fig5 missing %q:\n%s", want, out)
		}
	}
	points, err := confidence.BudgetSweep(ds.RateTables("PTE"), ds.Devices(),
		[]float64{0.95, 0.99999}, confidence.PowersOfTwoBudgets(-2, 2))
	if err != nil {
		t.Fatal(err)
	}
	f6 := Fig6(points)
	for _, want := range []string{"budget (s)", "95%", "99.999%", "mutation score"} {
		if !strings.Contains(f6, want) {
			t.Errorf("Fig6 missing %q:\n%s", want, f6)
		}
	}
}

func TestTable4(t *testing.T) {
	rows := []*tuning.CorrelationResult{
		{
			Case:         tuning.PaperBugCases()[0],
			Environments: 24, PCC: 0.91, PValue: 1e-9,
			BugObservedIn: 20, MutantKilledIn: 24,
		},
	}
	out := Table4(rows)
	for _, want := range []string{"Intel/CoRR", "reversing po-loc", "0.910", "20/24"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table4 missing %q:\n%s", want, out)
		}
	}
}

func TestSuiteListing(t *testing.T) {
	out := SuiteListing(mutation.MustGenerate())
	lines := strings.Count(out, "\n")
	if lines != 53 { // header + 52 tests
		t.Fatalf("listing has %d lines, want 53:\n%s", lines, out)
	}
	if !strings.Contains(out, "MP-relacq-nofence") {
		t.Error("listing missing mutants")
	}
}
