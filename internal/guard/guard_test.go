package guard

import (
	"errors"
	"testing"
	"time"
)

func fakeClock() *FakeClock {
	return NewFakeClock(time.Date(2023, 1, 1, 0, 0, 0, 0, time.UTC))
}

// TestWatchdogStall: a frozen progress mark expires after the stall
// budget; a moving mark resets the stall clock. All transitions are
// driven by the fake clock and manual sweeps.
func TestWatchdogStall(t *testing.T) {
	clk := fakeClock()
	var fired []string
	var causes []error
	w := NewWatchdog(clk, func(id string, cause error) {
		fired = append(fired, id)
		causes = append(causes, cause)
	})
	w.Watch("j1", 0, 10*time.Second)

	clk.Advance(9 * time.Second)
	if n := w.Sweep(); n != 0 {
		t.Fatalf("swept %d inside the budget", n)
	}
	// Progress arrives: the stall clock resets.
	w.Observe("j1", 1)
	clk.Advance(9 * time.Second)
	if n := w.Sweep(); n != 0 {
		t.Fatalf("swept %d after progress reset", n)
	}
	// A snapshot with an unchanged mark is not progress.
	w.Observe("j1", 1)
	clk.Advance(2 * time.Second)
	if n := w.Sweep(); n != 1 {
		t.Fatalf("stall did not fire: swept %d", n)
	}
	if len(fired) != 1 || fired[0] != "j1" {
		t.Fatalf("fired %v", fired)
	}
	if !errors.Is(causes[0], ErrStalled) {
		t.Fatalf("cause = %v, want ErrStalled", causes[0])
	}
	// Expired jobs are forgotten: no double fire.
	clk.Advance(time.Hour)
	if n := w.Sweep(); n != 0 {
		t.Fatalf("expired job fired again: %d", n)
	}
	if w.Watched() != 0 {
		t.Fatalf("watched = %d after expiry", w.Watched())
	}
}

// TestWatchdogDeadline: the wall budget expires regardless of
// progress, and wins over a simultaneous stall violation.
func TestWatchdogDeadline(t *testing.T) {
	clk := fakeClock()
	var cause error
	w := NewWatchdog(clk, func(id string, c error) { cause = c })
	w.Watch("j1", time.Minute, 10*time.Second)

	// Keep progress flowing so only the deadline can fire.
	for i := 0; i < 13; i++ {
		clk.Advance(5 * time.Second)
		w.Observe("j1", uint64(i+1))
		w.Sweep()
	}
	if cause == nil {
		t.Fatal("deadline did not fire")
	}
	if !errors.Is(cause, ErrDeadlineExceeded) {
		t.Fatalf("cause = %v, want ErrDeadlineExceeded", cause)
	}

	// Both violated at once: deadline wins.
	cause = nil
	w.Watch("j2", time.Minute, 10*time.Second)
	clk.Advance(2 * time.Hour)
	w.Sweep()
	if !errors.Is(cause, ErrDeadlineExceeded) {
		t.Fatalf("cause = %v, want ErrDeadlineExceeded", cause)
	}
}

// TestWatchdogForgetAndZeroBudgets: forgotten jobs never fire, and a
// watch with no budgets is a no-op.
func TestWatchdogForgetAndZeroBudgets(t *testing.T) {
	clk := fakeClock()
	fired := 0
	w := NewWatchdog(clk, func(string, error) { fired++ })
	w.Watch("gone", time.Second, time.Second)
	w.Forget("gone")
	w.Watch("unbudgeted", 0, 0)
	if w.Watched() != 0 {
		t.Fatalf("watched = %d, want 0", w.Watched())
	}
	clk.Advance(time.Hour)
	if w.Sweep() != 0 || fired != 0 {
		t.Fatalf("fired %d times for forgotten/unbudgeted jobs", fired)
	}
}

// TestMemWatcherTransitions scripts a pressure trajectory through
// every level and checks the transition callbacks.
func TestMemWatcherTransitions(t *testing.T) {
	heap := uint64(10)
	type change struct {
		from, to Level
	}
	var changes []change
	m := NewMemWatcher(100, 200, func() uint64 { return heap },
		func(from, to Level, _ uint64) { changes = append(changes, change{from, to}) })

	if lv := m.Sample(); lv != LevelOK {
		t.Fatalf("level = %v at heap 10", lv)
	}
	heap = 150
	if lv := m.Sample(); lv != LevelSoft {
		t.Fatalf("level = %v at heap 150", lv)
	}
	heap = 250
	if lv := m.Sample(); lv != LevelHard {
		t.Fatalf("level = %v at heap 250", lv)
	}
	heap = 250 // steady state: no new transition
	m.Sample()
	heap = 50
	if lv := m.Sample(); lv != LevelOK {
		t.Fatalf("level = %v at heap 50", lv)
	}
	want := []change{{LevelOK, LevelSoft}, {LevelSoft, LevelHard}, {LevelHard, LevelOK}}
	if len(changes) != len(want) {
		t.Fatalf("changes = %v, want %v", changes, want)
	}
	for i := range want {
		if changes[i] != want[i] {
			t.Fatalf("change %d = %v, want %v", i, changes[i], want[i])
		}
	}
	if lv, h := m.Snapshot(); lv != LevelOK || h != 50 {
		t.Fatalf("snapshot = %v/%d", lv, h)
	}
}

// TestMemWatcherDefaults: soft inherits hard when unset; disabled
// watchers always report OK.
func TestMemWatcherDefaults(t *testing.T) {
	m := NewMemWatcher(0, 100, func() uint64 { return 100 }, nil)
	if lv := m.Sample(); lv != LevelHard {
		t.Fatalf("hard-only watcher at the hard mark: %v", lv)
	}
	var disabled *MemWatcher
	if lv := disabled.Sample(); lv != LevelOK {
		t.Fatalf("nil watcher level = %v", lv)
	}
	off := NewMemWatcher(0, 0, func() uint64 { panic("read") }, nil)
	if lv := off.Sample(); lv != LevelOK {
		t.Fatalf("disabled watcher level = %v", lv)
	}
}

// TestLimits covers admission validation and default resolution.
func TestLimits(t *testing.T) {
	l := Limits{
		DefaultWallDeadline: time.Hour,
		MaxWallDeadline:     2 * time.Hour,
		DefaultStallTimeout: time.Minute,
		MaxCellTimeout:      time.Minute,
	}
	if err := l.Validate(Budget{WallDeadline: 90 * time.Minute}); err != nil {
		t.Fatalf("in-cap budget rejected: %v", err)
	}
	if err := l.Validate(Budget{WallDeadline: 3 * time.Hour}); err == nil {
		t.Fatal("over-cap wall deadline accepted")
	}
	if err := l.Validate(Budget{CellTimeout: -time.Second}); err == nil {
		t.Fatal("negative cell timeout accepted")
	}
	if err := l.Validate(Budget{StallTimeout: 24 * time.Hour}); err != nil {
		t.Fatalf("uncapped field rejected: %v", err)
	}
	eff := l.Resolve(Budget{CellTimeout: time.Second})
	if eff.WallDeadline != time.Hour || eff.StallTimeout != time.Minute || eff.CellTimeout != time.Second {
		t.Fatalf("resolved = %+v", eff)
	}
}
