package gpu

import (
	"strings"
	"testing"

	"repro/internal/xrand"
)

// tracedSpec builds a busy fenced kernel exercising all op kinds.
func tracedSpec() LaunchSpec {
	writer := Program{
		{Op: OpStressLoad, Addr: 3},
		{Op: OpStore, Addr: 0, Imm: 1},
		{Op: OpFence},
		{Op: OpStore, Addr: 1, Imm: 2},
	}
	reader := Program{
		{Op: OpLoad, Addr: 1, Reg: 0},
		{Op: OpFence},
		{Op: OpLoad, Addr: 0, Reg: 1},
		{Op: OpExchange, Addr: 2, Imm: 7, Reg: 2},
	}
	var noise Program
	for i := 0; i < 10; i++ {
		noise = append(noise, Instr{Op: OpStressLoad, Addr: 2})
		noise = append(noise, Instr{Op: OpStressStore, Addr: 3, Imm: 9})
	}
	return LaunchSpec{
		WorkgroupSize: 1, Workgroups: 4, MemWords: 4,
		Programs: []Program{writer, reader, noise, noise},
	}
}

func TestRunTracedMatchesRun(t *testing.T) {
	d := dev(t, amdProfile(), Bugs{})
	spec := tracedSpec()
	plain, err := d.Run(spec, xrand.New(5))
	if err != nil {
		t.Fatal(err)
	}
	traced, trace, err := d.RunTraced(spec, xrand.New(5))
	if err != nil {
		t.Fatal(err)
	}
	if len(trace) == 0 {
		t.Fatal("empty trace")
	}
	if plain.Stats.Ticks != traced.Stats.Ticks {
		t.Fatalf("tracing changed execution: %d vs %d ticks", plain.Stats.Ticks, traced.Stats.Ticks)
	}
	for i := range plain.Registers {
		for j := range plain.Registers[i] {
			if plain.Registers[i][j] != traced.Registers[i][j] {
				t.Fatal("tracing changed register results")
			}
		}
	}
}

// TestVerifyTraceOnConformantDevices: traces from every bug-free
// profile satisfy the simulator's guarantees.
func TestVerifyTraceOnConformantDevices(t *testing.T) {
	spec := tracedSpec()
	for _, p := range AllProfiles() {
		d := dev(t, p, Bugs{})
		rng := xrand.New(7)
		for i := 0; i < 30; i++ {
			_, trace, err := d.RunTraced(spec, rng)
			if err != nil {
				t.Fatal(err)
			}
			if err := VerifyTrace(spec, trace); err != nil {
				t.Fatalf("%s run %d: %v", p.ShortName, i, err)
			}
		}
	}
}

// TestTraceCatchesInjectedBugs: the defects violate exactly the
// properties VerifyTrace checks, seen from the trace side.
func TestTraceCatchesInjectedBugs(t *testing.T) {
	// Stale cache: load values diverge from the memory order.
	writer := preStressed(4, 2, Program{
		{Op: OpStore, Addr: 0, Imm: 1},
		{Op: OpStore, Addr: 0, Imm: 2},
	})
	reader := preStressed(8, 1, Program{
		{Op: OpLoad, Addr: 0, Reg: 0},
		{Op: OpLoad, Addr: 0, Reg: 1},
	})
	spec := LaunchSpec{
		WorkgroupSize: 1, Workgroups: 2, MemWords: 4,
		Programs: []Program{writer, reader},
	}
	d := dev(t, keplerProfile(), Bugs{StaleCache: true})
	rng := xrand.New(17)
	caught := false
	for i := 0; i < 400 && !caught; i++ {
		_, trace, err := d.RunTraced(spec, rng)
		if err != nil {
			t.Fatal(err)
		}
		if err := VerifyTrace(spec, trace); err != nil {
			caught = true
			if !strings.Contains(err.Error(), "memory order") {
				t.Fatalf("unexpected verification failure: %v", err)
			}
		}
	}
	if !caught {
		t.Fatal("stale-cache bug invisible to trace verification")
	}

	// Fence dropping: completions cross retired fences.
	fencedWriter := preStressed(3, 2, Program{
		{Op: OpStore, Addr: 0, Imm: 1},
		{Op: OpFence},
		{Op: OpStore, Addr: 1, Imm: 1},
	})
	var noise Program
	for i := 0; i < 12; i++ {
		noise = append(noise, Instr{Op: OpStressLoad, Addr: 0})
		noise = append(noise, Instr{Op: OpStressStore, Addr: 3, Imm: 9})
	}
	spec2 := LaunchSpec{
		WorkgroupSize: 1, Workgroups: 3, MemWords: 4,
		Programs: []Program{fencedWriter, noise, noise},
	}
	d2 := dev(t, amdProfile(), Bugs{DropFences: true})
	// With the fence dropped there is no fence-issue event at all, so
	// property 4 cannot flag it directly; instead observe that the
	// fence never appears in the trace.
	_, trace, err := d2.RunTraced(spec2, xrand.New(19))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range trace {
		if e.Op == OpFence {
			t.Fatal("dropped fence still traced")
		}
	}
}

func TestTraceEventString(t *testing.T) {
	e := TraceEvent{Tick: 5, Thread: 2, Kind: TraceComplete, Op: OpLoad, Addr: 3, Value: 9}
	s := e.String()
	for _, want := range []string{"t2", "@5", "complete", "ld[3]=9"} {
		if !strings.Contains(s, want) {
			t.Errorf("event string %q missing %q", s, want)
		}
	}
	if TraceIssue.String() != "issue" || TraceComplete.String() != "complete" {
		t.Error("kind names wrong")
	}
}

func TestVerifyTraceDetectsTampering(t *testing.T) {
	d := dev(t, amdProfile(), Bugs{})
	spec := tracedSpec()
	_, trace, err := d.RunTraced(spec, xrand.New(23))
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt a load value: verification must notice.
	tampered := append([]TraceEvent(nil), trace...)
	found := false
	for i := range tampered {
		if tampered[i].Kind == TraceComplete && tampered[i].Op == OpLoad {
			tampered[i].Value += 100
			found = true
			break
		}
	}
	if !found {
		t.Fatal("no load completion in trace")
	}
	if err := VerifyTrace(spec, tampered); err == nil {
		t.Fatal("tampered trace verified")
	}
}

func BenchmarkRunTraced(b *testing.B) {
	d := MustDevice(amdProfile(), Bugs{})
	spec := tracedSpec()
	rng := xrand.New(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := d.RunTraced(spec, rng); err != nil {
			b.Fatal(err)
		}
	}
}
