// Ctscurate demonstrates the MCS Test Confidence workflow (Sec. 4.2,
// 5.3): tune testing environments against the mutant suite, merge them
// per test with Algorithm 1, and emit a conformance-test-suite plan
// with a per-test time budget and a total reproducibility score — the
// process that put these tests into the official WebGPU CTS.
//
//	go run ./examples/ctscurate
package main

import (
	"fmt"
	"log"

	"repro/internal/confidence"
	"repro/internal/core"
	"repro/internal/mutation"
	"repro/internal/report"
	"repro/internal/tuning"
)

func main() {
	suite, err := mutation.Generate()
	if err != nil {
		log.Fatal(err)
	}

	// A small tuning study: a few random environments per family on two
	// devices. (The paper uses 150 environments on four devices; see
	// `mcmutants tune -paper-scale`.)
	cfg := tuning.SmallConfig()
	cfg.Environments = 4
	cfg.SITEIterations = 16
	cfg.PTEIterations = 3
	cfg.Devices = []string{"AMD", "Intel"}
	fmt.Println("tuning environments over the 32-mutant suite...")
	ds, err := tuning.Run(cfg, suite.Mutants, nil)
	if err != nil {
		log.Fatal(err)
	}

	// How does the achievable mutation score trade off against the
	// per-test time budget? (Fig. 6.)
	points, err := confidence.BudgetSweep(
		ds.RateTables("PTE"), ds.Devices(),
		[]float64{0.95, 0.99999},
		confidence.PowersOfTwoBudgets(-10, 0),
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nbudget sweep (PTE environments):")
	fmt.Print(report.Fig6(points))

	// Curate the suite at a 99.999% per-test reproducibility target
	// with a 1/16 s simulated budget per test.
	plan, err := core.CurateCTS(ds, "PTE", 0.99999, 1.0/16)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nCTS plan (target %.5g%%, %.4gs per test):\n", 100*plan.Target, plan.Budget)
	reproducible := 0
	for _, e := range plan.Entries {
		mark := " "
		if e.Reproducible {
			mark = "*"
			reproducible++
		}
		fmt.Printf(" %s %-22s env=%-10s devices=%d/%d\n",
			mark, e.Test, e.Env, e.DevicesMeeting, e.TotalDevices)
	}
	fmt.Printf("\n%d/%d mutants reproducible everywhere (mutation score %.1f%%)\n",
		reproducible, len(plan.Entries), 100*plan.MutationScore)
	fmt.Printf("total suite budget: %.4g simulated seconds\n", plan.TotalBudgetSeconds)
	fmt.Printf("total reproducibility of one CTS run: %.4f%%\n", 100*plan.TotalReproducibility)
}
