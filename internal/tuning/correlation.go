package tuning

import (
	"fmt"

	"repro/internal/gpu"
	"repro/internal/harness"
	"repro/internal/mutation"
	"repro/internal/stats"
	"repro/internal/wgsl"
	"repro/internal/xrand"
)

// BugCase is one row of the Table 4 correlation study: a real MCS bug
// (injected into a device or its driver) together with the conformance
// test that reveals it and a mutant whose kill rate should track the
// bug's observation rate.
type BugCase struct {
	// Name labels the case, e.g. "Intel/CoRR".
	Name string
	// Device is the profile short name.
	Device string
	// Bugs is the device-level defect to inject (CoRR, MP-CO cases).
	Bugs gpu.Bugs
	// Driver selects the toolchain build; DriverFenceDropping models
	// the AMD compiler bug (MP-relacq case).
	Driver wgsl.DriverVersion
	// Conformance is the conformance test that fails under the bug.
	Conformance string
	// Mutant is the corresponding mutant.
	Mutant string
	// MutatorName records the generating mutator, for the table.
	MutatorName string
}

// PaperBugCases returns the three cases of Table 4: the Intel CoRR
// bug (reversing po-loc), the AMD MP-relacq compiler bug (weakening
// sw), and the NVIDIA Kepler MP-CO coherence bug (weakening po-loc).
func PaperBugCases() []BugCase {
	return []BugCase{
		{
			Name:   "Intel/CoRR",
			Device: "Intel",
			Bugs: gpu.Bugs{
				CoherenceRR: true, CoherenceRRProb: 1.0, CoherenceRRPressure: 2,
			},
			Conformance: "CoRR",
			Mutant:      "CoRR-mutant",
			MutatorName: "reversing po-loc",
		},
		{
			Name:        "AMD/MP-relacq",
			Device:      "AMD",
			Driver:      wgsl.DriverFenceDropping,
			Conformance: "MP-relacq",
			Mutant:      "MP-relacq-nofence",
			MutatorName: "weakening sw",
		},
		{
			Name:        "NVIDIA/MP-CO",
			Device:      "Kepler",
			Bugs:        gpu.Bugs{StaleCache: true},
			Conformance: "MP-CO",
			Mutant:      "MP",
			MutatorName: "weakening po-loc",
		},
	}
}

// CorrelationResult is one computed Table 4 row.
type CorrelationResult struct {
	Case BugCase
	// Environments is how many random environments were sampled.
	Environments int
	// PCC is the Pearson correlation between the mutant death rate and
	// the conformance test's bug observation rate across environments.
	PCC float64
	// PValue is the two-sided significance of the PCC.
	PValue float64
	// BugObservedIn counts environments where the bug appeared.
	BugObservedIn int
	// MutantKilledIn counts environments where the mutant died.
	MutantKilledIn int
}

// CorrelationConfig sizes the study.
type CorrelationConfig struct {
	// Environments is the number of random parallel environments
	// (the paper uses 150).
	Environments int
	// Iterations is kernel launches per environment (the paper uses
	// 100).
	Iterations int
	// Scale bounds environment generation.
	Scale harness.Scale
	// Seed drives all randomness.
	Seed uint64
}

// PaperCorrelationConfig mirrors Sec. 5.4: 150 random parallel
// environments at 100 iterations each.
func PaperCorrelationConfig() CorrelationConfig {
	return CorrelationConfig{
		Environments: 150,
		Iterations:   100,
		Scale:        harness.PaperScale(),
		Seed:         2023,
	}
}

// SmallCorrelationConfig is scaled for simulation-backed tests.
func SmallCorrelationConfig() CorrelationConfig {
	return CorrelationConfig{
		Environments: 24,
		Iterations:   4,
		Scale:        harness.DefaultScale(),
		Seed:         2023,
	}
}

// Correlate runs one bug case: the conformance test executes on the
// buggy device and the mutant on the corresponding conformant device,
// in the same sequence of random parallel environments, and the two
// per-environment rates are correlated.
func Correlate(c BugCase, suite *mutation.Suite, cfg CorrelationConfig) (*CorrelationResult, error) {
	confTest, ok := suite.ByName(c.Conformance)
	if !ok {
		return nil, fmt.Errorf("tuning: unknown conformance test %q", c.Conformance)
	}
	mutant, ok := suite.ByName(c.Mutant)
	if !ok {
		return nil, fmt.Errorf("tuning: unknown mutant %q", c.Mutant)
	}
	prof, ok := gpu.ProfileByName(c.Device)
	if !ok {
		return nil, fmt.Errorf("tuning: unknown device %q", c.Device)
	}
	// Both the conformance test and the mutant run on the same buggy
	// device through the same driver, as in the paper: the physical
	// device under study has the bug, and the correlation being tested
	// is precisely that the mutant's death rate tracks the bug's
	// observation rate on that hardware.
	buggy, err := gpu.NewDevice(prof, c.Bugs)
	if err != nil {
		return nil, err
	}
	root := xrand.New(cfg.Seed)
	envRng := root.Split()
	res := &CorrelationResult{Case: c, Environments: cfg.Environments}
	bugRates := make([]float64, 0, cfg.Environments)
	mutantRates := make([]float64, 0, cfg.Environments)
	for e := 0; e < cfg.Environments; e++ {
		env := harness.Random(envRng, true, cfg.Scale)
		// The conformance test runs through the (possibly defective)
		// toolchain on the buggy device.
		confRunner, err := harness.NewRunner(buggy, env)
		if err != nil {
			return nil, err
		}
		confRunner.Lower = wgsl.NewToolchain(prof, c.Driver).LowerFunc()
		confRes, err := confRunner.Run(confTest, cfg.Iterations, root.Split())
		if err != nil {
			return nil, err
		}
		mutRunner, err := harness.NewRunner(buggy, env)
		if err != nil {
			return nil, err
		}
		mutRunner.Lower = wgsl.NewToolchain(prof, c.Driver).LowerFunc()
		mutRes, err := mutRunner.Run(mutant, cfg.Iterations, root.Split())
		if err != nil {
			return nil, err
		}
		bugRates = append(bugRates, confRes.ViolationRate())
		mutantRates = append(mutantRates, mutRes.TargetRate())
		if confRes.Violations > 0 {
			res.BugObservedIn++
		}
		if mutRes.TargetCount > 0 {
			res.MutantKilledIn++
		}
	}
	pcc, err := stats.Pearson(mutantRates, bugRates)
	if err != nil {
		return nil, fmt.Errorf("tuning: %s: %w", c.Name, err)
	}
	res.PCC = pcc
	if p, err := stats.PearsonPValue(pcc, len(bugRates)); err == nil {
		res.PValue = p
	}
	return res, nil
}
