package litmus

import (
	"sort"
	"testing"

	"repro/internal/mm"
)

// axiomaticSet is the allowed subset of the candidate-outcome universe.
func axiomaticSet(t *Test, model mm.MCS) map[string]bool {
	return t.AllowedOutcomes(model)
}

// diffSets renders the symmetric difference for failure messages.
func diffSets(a, b map[string]bool) (onlyA, onlyB []string) {
	for k := range a {
		if !b[k] {
			onlyA = append(onlyA, k)
		}
	}
	for k := range b {
		if !a[k] {
			onlyB = append(onlyB, k)
		}
	}
	sort.Strings(onlyA)
	sort.Strings(onlyB)
	return
}

// TestSCOracleMatchesAxiomaticChecker is the central cross-validation:
// for every catalog and extended test, the operationally reachable SC
// outcomes equal the axiomatically SC-allowed candidate outcomes.
func TestSCOracleMatchesAxiomaticChecker(t *testing.T) {
	tests := append(Catalog(), ExtendedCatalog()...)
	for _, tc := range tests {
		op := tc.SCOutcomes()
		ax := axiomaticSet(tc, mm.SC)
		onlyOp, onlyAx := diffSets(op, ax)
		if len(onlyOp) > 0 {
			t.Errorf("%s: operationally reachable but axiomatically forbidden under SC: %v",
				tc.Name, onlyOp)
		}
		if len(onlyAx) > 0 {
			t.Errorf("%s: axiomatically allowed but operationally unreachable under SC: %v",
				tc.Name, onlyAx)
		}
	}
}

// TestTSOOracleMatchesAxiomaticChecker: same equivalence for the
// x86-TSO model against the store-buffer machine.
func TestTSOOracleMatchesAxiomaticChecker(t *testing.T) {
	tests := append(Catalog(), ExtendedCatalog()...)
	for _, tc := range tests {
		op := tc.TSOOutcomes()
		ax := axiomaticSet(tc, mm.TSO)
		onlyOp, onlyAx := diffSets(op, ax)
		if len(onlyOp) > 0 {
			t.Errorf("%s: reachable on the TSO machine but axiomatically forbidden: %v",
				tc.Name, onlyOp)
		}
		if len(onlyAx) > 0 {
			t.Errorf("%s: axiomatically TSO-allowed but unreachable on the machine: %v",
				tc.Name, onlyAx)
		}
	}
}

func TestSCOracleKnownSets(t *testing.T) {
	// SB under SC: the both-zero outcome is unreachable; the other three
	// register combinations are.
	sb := SB()
	op := sb.SCOutcomes()
	weak := Outcome{Regs: []mm.Val{0, 0}, Final: []mm.Val{1, 2}}
	if op[weak.Key()] {
		t.Fatal("SC oracle reached the SB weak outcome")
	}
	if len(op) != 3 {
		t.Fatalf("SB has %d SC outcomes, want 3", len(op))
	}
	// TSO reaches exactly one more: the weak one.
	tso := sb.TSOOutcomes()
	if !tso[weak.Key()] {
		t.Fatal("TSO machine missed store buffering")
	}
	if len(tso) != 4 {
		t.Fatalf("SB has %d TSO outcomes, want 4", len(tso))
	}
}

func TestTSOOracleForwarding(t *testing.T) {
	// A thread must see its own buffered store before it drains.
	tc := NewBuilder("fwd", mm.TSO).
		Thread().Store(0, 1).Load(0).
		Target(Condition{}).
		Build()
	op := tc.TSOOutcomes()
	want := Outcome{Regs: []mm.Val{1}, Final: []mm.Val{1}}
	if len(op) != 1 || !op[want.Key()] {
		t.Fatalf("forwarding outcomes = %v", op)
	}
}

func TestTSOOracleFenceDrains(t *testing.T) {
	// SB with full fences: the weak outcome disappears on the machine.
	tc := NewBuilder("sb-fenced", mm.TSO).
		Thread().Store(0, 1).Fence().Load(1).
		Thread().Store(1, 2).Fence().Load(0).
		Target(Condition{}).
		Build()
	weakPrefix := Outcome{Regs: []mm.Val{0, 0}, Final: []mm.Val{1, 2}}
	if tc.TSOOutcomes()[weakPrefix.Key()] {
		t.Fatal("fenced SB weak outcome reachable on the TSO machine")
	}
}

func TestOraclesOnGeneratedSuite(t *testing.T) {
	if testing.Short() {
		t.Skip("suite-wide oracle equivalence is slow")
	}
	// The generated suite comes from package mutation, which depends on
	// this package; to avoid an import cycle the suite-wide equivalence
	// lives in mutation's tests. Here, spot-check the densest shapes.
	for _, tc := range []*Test{TwoPlusTwoW(), MPRelAcq(), LBRelAcq(), SRelAcq()} {
		op := tc.SCOutcomes()
		ax := axiomaticSet(tc, mm.SC)
		onlyOp, onlyAx := diffSets(op, ax)
		if len(onlyOp)+len(onlyAx) > 0 {
			t.Errorf("%s: SC mismatch op-only=%v ax-only=%v", tc.Name, onlyOp, onlyAx)
		}
	}
}

func BenchmarkSCOracleIRIW(b *testing.B) {
	tc := IRIW()
	for i := 0; i < b.N; i++ {
		tc.SCOutcomes()
	}
}

func BenchmarkTSOOracleSB(b *testing.B) {
	tc := SB()
	for i := 0; i < b.N; i++ {
		tc.TSOOutcomes()
	}
}
