package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewDeterministic(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if av, bv := a.Uint64(), b.Uint64(); av != bv {
			t.Fatalf("step %d: same seed diverged: %d != %d", i, av, bv)
		}
	}
}

func TestDifferentSeedsDiverge(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("seeds 1 and 2 produced %d/100 identical outputs", same)
	}
}

func TestZeroSeedNotDegenerate(t *testing.T) {
	r := New(0)
	zero := 0
	for i := 0; i < 100; i++ {
		if r.Uint64() == 0 {
			zero++
		}
	}
	if zero > 1 {
		t.Fatalf("seed 0 produced %d zeros in 100 draws", zero)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	child := parent.Split()
	// The child's stream must differ from the parent's subsequent stream.
	same := 0
	for i := 0; i < 100; i++ {
		if parent.Uint64() == child.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("split stream tracks parent: %d/100 matches", same)
	}
}

func TestSplitDeterministic(t *testing.T) {
	a := New(9).Split()
	b := New(9).Split()
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("Split is not deterministic")
		}
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(3)
	for n := 1; n <= 64; n++ {
		for i := 0; i < 200; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestUint64nPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Uint64n(0) did not panic")
		}
	}()
	New(1).Uint64n(0)
}

func TestIntnUniformish(t *testing.T) {
	r := New(11)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Intn(n)]++
	}
	want := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > want*0.1 {
			t.Errorf("bucket %d: %d draws, want ~%.0f", i, c, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(5)
	sum := 0.0
	const draws = 100000
	for i := 0; i < draws; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", f)
		}
		sum += f
	}
	if mean := sum / draws; math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("mean of Float64 = %v, want ~0.5", mean)
	}
}

func TestBoolEdges(t *testing.T) {
	r := New(8)
	for i := 0; i < 100; i++ {
		if r.Bool(0) {
			t.Fatal("Bool(0) returned true")
		}
		if !r.Bool(1) {
			t.Fatal("Bool(1) returned false")
		}
		if r.Bool(-0.5) {
			t.Fatal("Bool(-0.5) returned true")
		}
		if !r.Bool(1.5) {
			t.Fatal("Bool(1.5) returned false")
		}
	}
}

func TestBoolProbability(t *testing.T) {
	r := New(13)
	const draws = 100000
	hits := 0
	for i := 0; i < draws; i++ {
		if r.Bool(0.25) {
			hits++
		}
	}
	if p := float64(hits) / draws; math.Abs(p-0.25) > 0.01 {
		t.Fatalf("Bool(0.25) empirical rate %v", p)
	}
}

func TestIntBetween(t *testing.T) {
	r := New(17)
	for i := 0; i < 1000; i++ {
		v := r.IntBetween(5, 9)
		if v < 5 || v > 9 {
			t.Fatalf("IntBetween(5,9) = %d", v)
		}
	}
	if v := r.IntBetween(4, 4); v != 4 {
		t.Fatalf("IntBetween(4,4) = %d", v)
	}
}

func TestIntBetweenPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("IntBetween(2,1) did not panic")
		}
	}()
	New(1).IntBetween(2, 1)
}

func TestPermIsPermutation(t *testing.T) {
	r := New(19)
	for _, n := range []int{0, 1, 2, 10, 257} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has len %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) invalid: %v", n, p)
			}
			seen[v] = true
		}
	}
}

func TestGeometric(t *testing.T) {
	r := New(23)
	if g := r.Geometric(1, 100); g != 0 {
		t.Fatalf("Geometric(1) = %d, want 0", g)
	}
	if g := r.Geometric(0, 42); g != 42 {
		t.Fatalf("Geometric(0, 42) = %d, want cap 42", g)
	}
	// Mean of geometric(p) failures-before-success is (1-p)/p = 1 for p=.5.
	sum := 0
	const draws = 50000
	for i := 0; i < draws; i++ {
		sum += r.Geometric(0.5, 1000)
	}
	if mean := float64(sum) / draws; math.Abs(mean-1.0) > 0.05 {
		t.Fatalf("Geometric(0.5) mean %v, want ~1", mean)
	}
}

func TestGCD(t *testing.T) {
	cases := []struct{ a, b, want uint64 }{
		{12, 18, 6}, {7, 13, 1}, {0, 5, 5}, {5, 0, 5}, {1, 1, 1},
		{48, 36, 12}, {100, 75, 25},
	}
	for _, c := range cases {
		if got := GCD(c.a, c.b); got != c.want {
			t.Errorf("GCD(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestCoprimeProperty(t *testing.T) {
	r := New(29)
	f := func(n uint16) bool {
		nn := uint64(n)
		p := r.Coprime(nn)
		if nn <= 2 {
			return p == 1
		}
		return p >= 2 && p < nn && GCD(p, nn) == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestCoprimePermutes(t *testing.T) {
	// (v*p) mod n must be a bijection on [0, n) when gcd(p, n) == 1.
	r := New(31)
	for _, n := range []uint64{4, 16, 100, 256, 510} {
		p := r.Coprime(n)
		seen := make([]bool, n)
		for v := uint64(0); v < n; v++ {
			t2 := (v * p) % n
			if seen[t2] {
				t.Fatalf("n=%d p=%d not a permutation", n, p)
			}
			seen[t2] = true
		}
	}
}

func TestUint64nRejectionBoundary(t *testing.T) {
	// Exercise values of n just below powers of two, where the Lemire
	// rejection threshold is largest.
	r := New(37)
	for _, n := range []uint64{1, 2, 3, (1 << 62) + 1, 1<<63 - 1} {
		for i := 0; i < 100; i++ {
			if v := r.Uint64n(n); v >= n {
				t.Fatalf("Uint64n(%d) = %d", n, v)
			}
		}
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink = r.Uint64()
	}
	_ = sink
}

func BenchmarkIntn(b *testing.B) {
	r := New(1)
	var sink int
	for i := 0; i < b.N; i++ {
		sink = r.Intn(1000)
	}
	_ = sink
}

func TestDeriveSeedDeterministic(t *testing.T) {
	a := DeriveSeed(2023, "tune", "PTE-003", "AMD", "MP")
	b := DeriveSeed(2023, "tune", "PTE-003", "AMD", "MP")
	if a != b {
		t.Fatalf("DeriveSeed not deterministic: %x vs %x", a, b)
	}
	ra, rb := NewFromPath(2023, "x"), NewFromPath(2023, "x")
	for i := 0; i < 100; i++ {
		if ra.Uint64() != rb.Uint64() {
			t.Fatalf("NewFromPath streams diverge at draw %d", i)
		}
	}
}

func TestDeriveSeedSeparatesComponents(t *testing.T) {
	pairs := [][2][]string{
		{{"ab", "c"}, {"a", "bc"}},
		{{"abc"}, {"ab", "c"}},
		{{"a", "", "b"}, {"a", "b"}},
		{{"a"}, {"a", ""}},
	}
	for _, p := range pairs {
		if DeriveSeed(1, p[0]...) == DeriveSeed(1, p[1]...) {
			t.Errorf("DeriveSeed(%q) == DeriveSeed(%q)", p[0], p[1])
		}
	}
}

func TestDeriveSeedSpreads(t *testing.T) {
	// Nearby seeds and nearby paths must land far apart; check all
	// derived values are distinct across a small grid.
	seen := map[uint64]string{}
	for seed := uint64(0); seed < 8; seed++ {
		for i := 0; i < 64; i++ {
			key := "cell-" + string(rune('a'+i%26)) + string(rune('0'+i/26))
			v := DeriveSeed(seed, "campaign", key)
			if prev, dup := seen[v]; dup {
				t.Fatalf("collision: seed=%d key=%q equals %s", seed, key, prev)
			}
			seen[v] = key
		}
	}
}

// TestPermIntoMatchesPerm pins PermInto to Perm: identical draws from
// identical states, with the caller's buffer reused in place whenever
// its capacity suffices.
func TestPermIntoMatchesPerm(t *testing.T) {
	for _, n := range []int{0, 1, 2, 7, 64} {
		a := New(uint64(1000 + n))
		b := New(uint64(1000 + n))
		want := a.Perm(n)
		buf := make([]int, 0, 64)
		got := b.PermInto(buf, n)
		if len(got) != n {
			t.Fatalf("n=%d: PermInto returned %d elements", n, len(got))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("n=%d: PermInto[%d] = %d, Perm[%d] = %d", n, i, got[i], i, want[i])
			}
		}
		if n > 0 && &got[0] != &buf[:1][0] {
			t.Errorf("n=%d: PermInto reallocated despite sufficient capacity", n)
		}
		// The generators must be in identical states afterwards: the two
		// paths consumed exactly the same draws.
		if a.Uint64() != b.Uint64() {
			t.Fatalf("n=%d: Perm and PermInto consumed different draws", n)
		}
	}
}

// TestPermIntoGrows checks the grow path: a too-small buffer is
// replaced, not written out of bounds, and the permutation is valid.
func TestPermIntoGrows(t *testing.T) {
	r := New(3)
	p := r.PermInto(make([]int, 0, 2), 10)
	if len(p) != 10 {
		t.Fatalf("got %d elements, want 10", len(p))
	}
	seen := make(map[int]bool)
	for _, v := range p {
		if v < 0 || v >= 10 || seen[v] {
			t.Fatalf("invalid permutation %v", p)
		}
		seen[v] = true
	}
}
