package gpu

import (
	"testing"

	"repro/internal/xrand"
)

// Per-path microbenchmarks for the executor. Each one saturates a
// single interpreter path so a regression in any future change is
// attributable: issue-bound streaming, fence/barrier synchronization,
// single-line contention (pressure + line-in-flight accounting), and a
// MaxOutstanding-bound deep pipeline. All run warm on one device, so
// after the first iteration they exercise the zero-alloc reset path
// too.

// benchSpec builds a launch of wgs workgroups × wgSize threads where
// every thread runs the program produced by gen(tid).
func benchSpec(wgs, wgSize, memWords int, gen func(tid int) Program) LaunchSpec {
	progs := make([]Program, wgs*wgSize)
	for i := range progs {
		progs[i] = gen(i)
	}
	return LaunchSpec{Workgroups: wgs, WorkgroupSize: wgSize, MemWords: memWords, Programs: progs}
}

func benchRun(b *testing.B, spec LaunchSpec) {
	b.Helper()
	d := MustDevice(amdProfile(), Bugs{})
	rng := xrand.New(7)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := d.Run(spec, rng); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPathIssueLoadStore streams loads and stores over disjoint
// addresses: no line contention, no synchronization — pure issue and
// completion throughput.
func BenchmarkPathIssueLoadStore(b *testing.B) {
	const wgs, wgSize = 16, 16
	spec := benchSpec(wgs, wgSize, wgs*wgSize*2, func(tid int) Program {
		base := uint32(tid * 2)
		return Program{
			{Op: OpStore, Addr: base, Imm: 1},
			{Op: OpLoad, Addr: base, Reg: 0},
			{Op: OpStore, Addr: base + 1, Imm: 2},
			{Op: OpLoad, Addr: base + 1, Reg: 1},
		}
	})
	benchRun(b, spec)
}

// BenchmarkPathFenceBarrier alternates memory ops with fences and
// workgroup barriers: the synchronization path (outstanding-drain
// stalls, barrier arrival/release, runnable-counter churn).
func BenchmarkPathFenceBarrier(b *testing.B) {
	const wgs, wgSize = 8, 16
	spec := benchSpec(wgs, wgSize, wgs*wgSize, func(tid int) Program {
		a := uint32(tid)
		return Program{
			{Op: OpStore, Addr: a, Imm: 1},
			{Op: OpFence},
			{Op: OpBarrier},
			{Op: OpLoad, Addr: a, Reg: 0},
			{Op: OpFence},
			{Op: OpBarrier},
			{Op: OpStore, Addr: a, Imm: 2},
		}
	})
	benchRun(b, spec)
}

// BenchmarkPathContention hammers one cache line from every thread:
// line-in-flight accounting, pressure-latency draws, and po-loc
// completion-time chaining all on the hottest possible line.
func BenchmarkPathContention(b *testing.B) {
	const wgs, wgSize = 8, 16
	spec := benchSpec(wgs, wgSize, 64, func(tid int) Program {
		a := uint32(tid % 4) // one line on every profile (LineWords >= 4)
		return Program{
			{Op: OpStressStore, Addr: a, Imm: uint32(tid)},
			{Op: OpStressLoad, Addr: a},
			{Op: OpStressStore, Addr: a, Imm: uint32(tid + 1)},
			{Op: OpStressLoad, Addr: a},
			{Op: OpExchange, Addr: a, Imm: uint32(tid), Reg: 0},
		}
	})
	benchRun(b, spec)
}

// BenchmarkPathDeepPipeline issues long independent store streams so
// every thread saturates MaxOutstanding: the steady state is issue
// stalls against a full pipeline plus batched completion drains.
func BenchmarkPathDeepPipeline(b *testing.B) {
	const wgs, wgSize, depth = 4, 16, 32
	spec := benchSpec(wgs, wgSize, wgs*wgSize*depth, func(tid int) Program {
		p := make(Program, depth)
		for i := range p {
			p[i] = Instr{Op: OpStore, Addr: uint32(tid*depth + i), Imm: uint32(i)}
		}
		return p
	})
	benchRun(b, spec)
}

// BenchmarkPathTracingOff and BenchmarkPathTracingOn run the same
// kernel through Run and RunTraced. The off variant must match the
// plain issue-path benchmarks' cost profile: with tracing disabled the
// executor pays exactly one predictable branch per would-be event, so
// any gap between TracingOff and the other Path benchmarks' trends is
// a regression in the gating, not in tracing itself.
func tracingSpec() LaunchSpec {
	const wgs, wgSize = 8, 16
	return benchSpec(wgs, wgSize, wgs*wgSize*2, func(tid int) Program {
		base := uint32(tid * 2)
		return Program{
			{Op: OpStore, Addr: base, Imm: 1},
			{Op: OpFence},
			{Op: OpLoad, Addr: base, Reg: 0},
			{Op: OpStore, Addr: base + 1, Imm: 2},
			{Op: OpLoad, Addr: base + 1, Reg: 1},
		}
	})
}

func BenchmarkPathTracingOff(b *testing.B) {
	benchRun(b, tracingSpec())
}

func BenchmarkPathTracingOn(b *testing.B) {
	spec := tracingSpec()
	d := MustDevice(amdProfile(), Bugs{})
	rng := xrand.New(7)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := d.RunTraced(spec, rng); err != nil {
			b.Fatal(err)
		}
	}
}
