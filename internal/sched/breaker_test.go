package sched

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/xrand"
)

// failingDeviceExec fails every AMD cell and succeeds every other.
func failingDeviceExec(_ context.Context, c Cell, _ *xrand.Rand) (int, error) {
	if c.Device == "AMD" {
		return 0, fmt.Errorf("amd is down")
	}
	return 1, nil
}

// TestBreakerQuarantinesAfterThreshold: a device failing every cell
// trips the breaker after Threshold consecutive failures; cooldown
// cells are quarantined, each probation cell fails and re-opens the
// breaker, and the other device is untouched.
func TestBreakerQuarantinesAfterThreshold(t *testing.T) {
	spec := testSpec(20) // 10 AMD cells, 10 Intel cells, interleaved
	rep, err := Run(spec, failingDeviceExec, Options[int]{
		Workers: 1,
		Breaker: &BreakerOptions{Threshold: 3, Cooldown: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	// AMD positions (spec order): F F F | Q Q | F | Q Q | F | Q
	if rep.Failed != 5 || rep.Quarantined != 5 {
		t.Fatalf("Failed=%d Quarantined=%d, want 5 and 5", rep.Failed, rep.Quarantined)
	}
	if len(rep.Results) != len(spec.Cells) {
		t.Fatalf("results dropped: %d of %d", len(rep.Results), len(spec.Cells))
	}
	for _, r := range rep.Results {
		switch {
		case r.Cell.Device == "Intel":
			if r.Err != nil {
				t.Fatalf("%s: healthy device failed: %v", r.Cell.Key, r.Err)
			}
		case r.Quarantined:
			if !errors.Is(r.Err, ErrQuarantined) {
				t.Fatalf("%s: quarantined cell has err %v", r.Cell.Key, r.Err)
			}
		default:
			if r.Err == nil {
				t.Fatalf("%s: AMD cell unexpectedly succeeded", r.Cell.Key)
			}
		}
	}
	if len(rep.Health) != 2 {
		t.Fatalf("Health has %d devices, want 2", len(rep.Health))
	}
	amd, intel := rep.Health[0], rep.Health[1]
	if amd.Device != "AMD" || intel.Device != "Intel" {
		t.Fatalf("health order: %+v", rep.Health)
	}
	if amd.Cells != 10 || amd.Failed != 5 || amd.Quarantined != 5 || !amd.Open {
		t.Fatalf("AMD health: %+v", amd)
	}
	if intel.Failed != 0 || intel.Quarantined != 0 || intel.Open {
		t.Fatalf("Intel health: %+v", intel)
	}
}

// TestBreakerProbationRecovery: a device that recovers after its first
// Threshold failures serves one cooldown, passes probation, and runs
// the rest of its cells normally with the breaker closed.
func TestBreakerProbationRecovery(t *testing.T) {
	spec := testSpec(20)
	amdSeen := 0
	rep, err := Run(spec, func(_ context.Context, c Cell, _ *xrand.Rand) (int, error) {
		if c.Device == "AMD" {
			amdSeen++
			if amdSeen <= 3 {
				return 0, fmt.Errorf("flaky start")
			}
		}
		return 1, nil
	}, Options[int]{
		Workers: 1,
		Breaker: &BreakerOptions{Threshold: 3, Cooldown: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	// AMD positions: F F F | Q Q | ok ok ok ok ok
	if rep.Failed != 3 || rep.Quarantined != 2 {
		t.Fatalf("Failed=%d Quarantined=%d, want 3 and 2", rep.Failed, rep.Quarantined)
	}
	amd := rep.Health[0]
	if amd.Device != "AMD" || amd.Open {
		t.Fatalf("breaker should have closed after probation: %+v", amd)
	}
}

// chaoticExec fails deterministically from the cell's own rng stream,
// so the failure pattern is a pure function of the spec.
func chaoticExec(_ context.Context, _ Cell, rng *xrand.Rand) (uint64, error) {
	draw := rng.Uint64()
	if draw%4 == 0 {
		return 0, fmt.Errorf("deterministic fault %d", draw%97)
	}
	return draw, nil
}

// TestBreakerDeterministicAcrossWorkers: on a chaotic fleet with the
// breaker enabled, every worker count yields the identical report —
// values, errors, quarantine verdicts, counters and health.
func TestBreakerDeterministicAcrossWorkers(t *testing.T) {
	spec := testSpec(60)
	type cellView struct {
		Value       uint64
		Err         string
		Quarantined bool
	}
	var want []cellView
	var wantHealth []DeviceHealth
	wantFailed, wantQuarantined := 0, 0
	for _, workers := range []int{1, 4, 8} {
		rep, err := Run(spec, chaoticExec, Options[uint64]{
			Workers: workers,
			Breaker: &BreakerOptions{Threshold: 2, Cooldown: 3},
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		got := make([]cellView, len(rep.Results))
		for i, r := range rep.Results {
			got[i] = cellView{Value: r.Value, Quarantined: r.Quarantined}
			if r.Err != nil {
				got[i].Err = r.Err.Error()
			}
		}
		if want == nil {
			want = got
			wantHealth = rep.Health
			wantFailed, wantQuarantined = rep.Failed, rep.Quarantined
			if rep.Quarantined == 0 {
				t.Fatal("test vacuous: chaotic fleet quarantined nothing")
			}
			continue
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: cell %d = %+v, want %+v", workers, i, got[i], want[i])
			}
		}
		if rep.Failed != wantFailed || rep.Quarantined != wantQuarantined {
			t.Fatalf("workers=%d: Failed=%d Quarantined=%d, want %d and %d",
				workers, rep.Failed, rep.Quarantined, wantFailed, wantQuarantined)
		}
		if len(rep.Health) != len(wantHealth) {
			t.Fatalf("workers=%d: health size %d, want %d", workers, len(rep.Health), len(wantHealth))
		}
		for i := range rep.Health {
			if rep.Health[i] != wantHealth[i] {
				t.Fatalf("workers=%d: health[%d] = %+v, want %+v",
					workers, i, rep.Health[i], wantHealth[i])
			}
		}
	}
}

// TestBreakerDefaults: zero options mean threshold 3, cooldown 2.
func TestBreakerDefaults(t *testing.T) {
	var b BreakerOptions
	if b.threshold() != 3 || b.cooldown() != 2 {
		t.Fatalf("defaults: threshold=%d cooldown=%d", b.threshold(), b.cooldown())
	}
}

// TestBreakerImpliesCollect: with a breaker, permanent failures do not
// abort the campaign even though Collect was not set.
func TestBreakerImpliesCollect(t *testing.T) {
	spec := testSpec(10)
	ran := 0
	_, err := Run(spec, func(_ context.Context, c Cell, _ *xrand.Rand) (int, error) {
		ran++
		if c.Device == "Intel" {
			return 0, fmt.Errorf("boom")
		}
		return 1, nil
	}, Options[int]{Workers: 1, Breaker: &BreakerOptions{Threshold: 99}})
	if err != nil {
		t.Fatalf("breaker campaign aborted: %v", err)
	}
	if ran != 10 {
		t.Fatalf("%d cells ran, want 10", ran)
	}
}

// TestInjectedSleepBackoff: retry backoff goes through Options.Sleep
// with the jittered duration — base doubling per retry, scaled by the
// deterministic ±50% factor from the cell's split-seed RNG — so tests
// never wall-clock real sleeps.
func TestInjectedSleepBackoff(t *testing.T) {
	spec := testSpec(1)
	base := 100 * time.Millisecond
	var slept []time.Duration
	start := time.Now()
	rep, err := Run(spec, func(context.Context, Cell, *xrand.Rand) (int, error) {
		return 0, Transient(fmt.Errorf("busy"))
	}, Options[int]{
		MaxRetries: 3,
		Backoff:    base,
		Sleep:      func(d time.Duration) { slept = append(slept, d) },
	})
	if err == nil {
		t.Fatal("exhausted retries did not fail")
	}
	if rep.Results[0].Attempts != 4 {
		t.Fatalf("attempts = %d, want 4", rep.Results[0].Attempts)
	}
	if len(slept) != 3 {
		t.Fatalf("slept %d times, want 3: %v", len(slept), slept)
	}
	for i, got := range slept {
		// The wait is exactly what RetryBackoff computes for this attempt…
		if want := spec.RetryBackoff("cell-000", i, base); got != want {
			t.Fatalf("sleep %d = %v, want RetryBackoff's %v", i, got, want)
		}
		// …and stays within the jitter envelope around the doubled base.
		nominal := base << uint(i)
		if got < nominal/2 || got >= nominal*3/2 {
			t.Fatalf("sleep %d = %v outside [%v, %v)", i, got, nominal/2, nominal*3/2)
		}
	}
	// The nominal backoff must not have actually elapsed.
	if elapsed := time.Since(start); elapsed > 500*time.Millisecond {
		t.Fatalf("fake sleep still wall-clocked %v", elapsed)
	}
}

// TestRetryBackoffDeterministic: the jittered schedule is a pure
// function of (seed, name, key, attempt) — identical across calls and
// distinct across cells and attempts.
func TestRetryBackoffDeterministic(t *testing.T) {
	spec := testSpec(2)
	base := 50 * time.Millisecond
	for attempt := 0; attempt < 4; attempt++ {
		a := spec.RetryBackoff("cell-000", attempt, base)
		if b := spec.RetryBackoff("cell-000", attempt, base); a != b {
			t.Fatalf("attempt %d: %v then %v — not deterministic", attempt, a, b)
		}
	}
	if spec.RetryBackoff("cell-000", 0, base) == spec.RetryBackoff("cell-001", 0, base) {
		t.Fatal("two cells drew identical jitter — streams not split by key")
	}
	if spec.RetryBackoff("cell-000", 0, 0) != 0 {
		t.Fatal("zero base must mean no wait")
	}
}

// TestTransientSelfClassification: an error carrying its own
// Transient() verdict is retried without explicit wrapping.
func TestTransientSelfClassification(t *testing.T) {
	spec := testSpec(1)
	calls := 0
	rep, err := Run(spec, func(context.Context, Cell, *xrand.Rand) (int, error) {
		calls++
		if calls < 3 {
			return 0, &selfTransient{ok: true}
		}
		return 5, nil
	}, Options[int]{MaxRetries: 5})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Results[0].Attempts != 3 {
		t.Fatalf("attempts = %d, want 3", rep.Results[0].Attempts)
	}
	// A self-declared permanent error must not be retried.
	calls = 0
	_, err = Run(spec, func(context.Context, Cell, *xrand.Rand) (int, error) {
		calls++
		return 0, &selfTransient{ok: false}
	}, Options[int]{MaxRetries: 5})
	if err == nil {
		t.Fatal("permanent self-classified error swallowed")
	}
	if calls != 1 {
		t.Fatalf("permanent error ran %d times, want 1", calls)
	}
}

// selfTransient mimics gpu.DeviceError's self-classification hook.
type selfTransient struct{ ok bool }

func (e *selfTransient) Error() string   { return "self-classified" }
func (e *selfTransient) Transient() bool { return e.ok }

// TestReporterQuarantineCounters: the final reporter line carries the
// settled retried/quarantined/failed counts.
func TestReporterQuarantineCounters(t *testing.T) {
	spec := testSpec(20)
	var lines []string
	rep := NewReporter(func(s string) { lines = append(lines, s) }, 0)
	_, err := Run(spec, failingDeviceExec, Options[int]{
		Workers:  1,
		Breaker:  &BreakerOptions{Threshold: 3, Cooldown: 2},
		Reporter: rep,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(lines) == 0 {
		t.Fatal("reporter emitted nothing")
	}
	last := lines[len(lines)-1]
	for _, want := range []string{"5 quarantined", "5 FAILED", "done"} {
		if !strings.Contains(last, want) {
			t.Errorf("final line missing %q: %s", want, last)
		}
	}
}
