package litmus

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/mm"
	"repro/internal/xrand"
)

func TestCatalogValidates(t *testing.T) {
	for _, tc := range Catalog() {
		if err := tc.Validate(); err != nil {
			t.Errorf("%s: %v", tc.Name, err)
		}
	}
}

func TestCatalogNamesUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, tc := range Catalog() {
		if seen[tc.Name] {
			t.Errorf("duplicate catalog test name %q", tc.Name)
		}
		seen[tc.Name] = true
	}
}

// TestCoherenceTargetsDisallowed verifies that the targets of the
// coherence conformance tests are disallowed under SC-per-location —
// i.e. the tests test what they claim to test.
func TestCoherenceTargetsDisallowed(t *testing.T) {
	for _, tc := range []*Test{CoRR(), CoWW(), CoWR(), CoRW()} {
		x, err := tc.TargetExecution()
		if err != nil {
			t.Fatalf("%s: %v", tc.Name, err)
		}
		v := x.Check(mm.SCPerLocation)
		if v.Allowed {
			t.Errorf("%s: target %s should be disallowed under SC-per-location", tc.Name, tc.Target)
		}
	}
}

// TestWeakTargetsAllowedUnderCoherence verifies the classic weak-memory
// shapes are allowed by SC-per-location but forbidden under SC.
func TestWeakTargetsAllowedUnderCoherence(t *testing.T) {
	for _, tc := range []*Test{MP(), SB(), LB(), S(), R(), TwoPlusTwoW()} {
		x, err := tc.TargetExecution()
		if err != nil {
			t.Fatalf("%s: %v", tc.Name, err)
		}
		if v := x.Check(mm.SCPerLocation); !v.Allowed {
			t.Errorf("%s: weak target must be allowed under SC-per-location", tc.Name)
		}
		if v := x.Check(mm.SC); v.Allowed {
			t.Errorf("%s: weak target must be forbidden under SC", tc.Name)
		}
	}
}

// TestRelAcqTargetsDisallowed verifies the fenced shapes are forbidden
// under rel-acq-SC-per-location but allowed under plain coherence.
func TestRelAcqTargetsDisallowed(t *testing.T) {
	for _, tc := range []*Test{MPRelAcq(), LBRelAcq(), SRelAcq()} {
		x, err := tc.TargetExecution()
		if err != nil {
			t.Fatalf("%s: %v", tc.Name, err)
		}
		if v := x.Check(mm.RelAcqSCPerLocation); v.Allowed {
			t.Errorf("%s: target must be disallowed under rel-acq model", tc.Name)
		}
		if v := x.Check(mm.SCPerLocation); !v.Allowed {
			t.Errorf("%s: target must be allowed under plain coherence", tc.Name)
		}
	}
}

func TestClassifySequentialOutcomes(t *testing.T) {
	// An outcome in which every read sees the latest same-thread write
	// (or 0 if none) and every location ends with its po-last write must
	// be allowed by every catalog test: it corresponds to each thread
	// running to completion in turn.
	for _, tc := range Catalog() {
		o := Outcome{Regs: make([]mm.Val, tc.NumRegs), Final: make([]mm.Val, tc.NumLocs)}
		for l := range o.Final {
			o.Final[l] = AnyFinal
		}
		for _, th := range tc.Threads {
			lastWrite := map[int]mm.Val{}
			for _, in := range th.Instrs {
				if in.Reads() {
					o.Regs[in.Reg] = lastWrite[in.Loc]
				}
				if in.Writes() {
					lastWrite[in.Loc] = in.Val
					o.Final[in.Loc] = in.Val
				}
			}
		}
		v, err := tc.Classify(o)
		if err != nil {
			t.Fatalf("%s: %v", tc.Name, err)
		}
		if !v.Allowed {
			t.Errorf("%s: sequential outcome %s classified disallowed", tc.Name, o.Key())
		}
	}
}

func TestClassifyInconsistentFinals(t *testing.T) {
	tc := CoWW() // writes 1 then 2 to x
	// A final value of 0 on a written location is corruption.
	v, err := tc.Classify(Outcome{Final: []mm.Val{0}})
	if err != nil {
		t.Fatal(err)
	}
	if v.Allowed || v.Consistent {
		t.Fatalf("final 0 on written location: got %+v, want inconsistent+disallowed", v)
	}
	// A final value never written is also corruption.
	v, err = tc.Classify(Outcome{Final: []mm.Val{7}})
	if err != nil {
		t.Fatal(err)
	}
	if v.Allowed || v.Consistent {
		t.Fatalf("unwritten final value: got %+v", v)
	}
	// AnyFinal is always fine.
	v, err = tc.Classify(Outcome{Final: []mm.Val{AnyFinal}})
	if err != nil {
		t.Fatal(err)
	}
	if !v.Allowed {
		t.Fatal("AnyFinal outcome should be allowed")
	}
}

func TestClassifyCoRR(t *testing.T) {
	tc := CoRR()
	weak := Outcome{Regs: []mm.Val{1, 0}, Final: []mm.Val{1}}
	v, err := tc.Classify(weak)
	if err != nil {
		t.Fatal(err)
	}
	if v.Allowed {
		t.Fatal("CoRR target outcome classified allowed")
	}
	if !tc.Target.Matches(weak) {
		t.Fatal("CoRR target condition does not match its own outcome")
	}
	ok := Outcome{Regs: []mm.Val{0, 1}, Final: []mm.Val{1}}
	if v, _ := tc.Classify(ok); !v.Allowed {
		t.Fatal("CoRR strong outcome classified disallowed")
	}
	if tc.Target.Matches(ok) {
		t.Fatal("target matched a strong outcome")
	}
}

func TestConditionMatches(t *testing.T) {
	c := Condition{Regs: map[int]mm.Val{0: 1, 1: 0}, Final: map[int]mm.Val{0: 2}}
	if !c.Matches(Outcome{Regs: []mm.Val{1, 0}, Final: []mm.Val{2}}) {
		t.Fatal("exact match failed")
	}
	if c.Matches(Outcome{Regs: []mm.Val{1, 1}, Final: []mm.Val{2}}) {
		t.Fatal("wrong register matched")
	}
	if c.Matches(Outcome{Regs: []mm.Val{1, 0}, Final: []mm.Val{3}}) {
		t.Fatal("wrong final matched")
	}
	if c.Matches(Outcome{Regs: []mm.Val{1}, Final: []mm.Val{2}}) {
		t.Fatal("out-of-range register matched")
	}
	if !(Condition{}).Matches(Outcome{}) {
		t.Fatal("empty condition must match everything")
	}
	if !(Condition{}).Empty() || c.Empty() {
		t.Fatal("Empty() wrong")
	}
}

func TestConditionString(t *testing.T) {
	c := Condition{Regs: map[int]mm.Val{1: 0, 0: 1}, Final: map[int]mm.Val{0: 2}}
	if got := c.String(); got != "r0==1 && r1==0 && x==2" {
		t.Fatalf("Condition.String() = %q", got)
	}
	if got := (Condition{}).String(); got != "true" {
		t.Fatalf("empty Condition.String() = %q", got)
	}
}

func TestOutcomeKey(t *testing.T) {
	o := Outcome{Regs: []mm.Val{1, 0}, Final: []mm.Val{2, 3}}
	if got := o.Key(); got != "r0=1 r1=0 | x=2 y=3" {
		t.Fatalf("Outcome.Key() = %q", got)
	}
	if got := (Outcome{Regs: []mm.Val{5}}).Key(); got != "r0=5" {
		t.Fatalf("Key without finals = %q", got)
	}
}

func TestValidateCatchesErrors(t *testing.T) {
	base := CoRR()
	cases := []struct {
		name   string
		mutate func(*Test)
	}{
		{"no name", func(t *Test) { t.Name = "" }},
		{"no threads", func(t *Test) { t.Threads = nil }},
		{"empty thread", func(t *Test) { t.Threads[0].Instrs = nil }},
		{"loc out of range", func(t *Test) { t.Threads[1].Instrs[0].Loc = 9 }},
		{"reg out of range", func(t *Test) { t.Threads[0].Instrs[0].Reg = 9 }},
		{"dup reg", func(t *Test) { t.Threads[0].Instrs[1].Reg = 0 }},
		{"zero store", func(t *Test) { t.Threads[1].Instrs[0].Val = 0 }},
		{"target bad reg", func(t *Test) { t.Target.Regs[9] = 1 }},
		{"target bad loc", func(t *Test) { t.Target.Final = map[int]mm.Val{9: 1} }},
	}
	for _, c := range cases {
		tc := *base
		tc.Threads = append([]Thread(nil), base.Threads...)
		for i := range tc.Threads {
			tc.Threads[i].Instrs = append([]Instr(nil), base.Threads[i].Instrs...)
		}
		tc.Target = Condition{Regs: map[int]mm.Val{}, Final: map[int]mm.Val{}}
		for k, v := range base.Target.Regs {
			tc.Target.Regs[k] = v
		}
		c.mutate(&tc)
		if err := tc.Validate(); err == nil {
			t.Errorf("%s: Validate accepted invalid test", c.name)
		}
	}
}

func TestValidateRejectsDuplicateStoreValues(t *testing.T) {
	b := NewBuilder("dup", mm.SCPerLocation).
		Thread().Store(0, 1).
		Thread().Store(0, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("Build accepted duplicate store values")
		}
	}()
	b.Build()
}

func TestExecutionShapes(t *testing.T) {
	tc := MPRelAcq()
	o := Outcome{Regs: []mm.Val{1, 0}, Final: []mm.Val{1, 1}}
	x, err := tc.Execution(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(x.Events) != 6 {
		t.Fatalf("got %d events, want 6", len(x.Events))
	}
	// Final values pin the (single) writers of x and y as co-last.
	if len(x.CoLast) != 2 {
		t.Fatalf("CoLast = %v, want both locations pinned", x.CoLast)
	}
	if err := x.Validate(); err != nil {
		t.Fatal(err)
	}
	// Wrong-arity outcomes must error.
	if _, err := tc.Execution(Outcome{Regs: []mm.Val{1}}); err == nil {
		t.Fatal("short register vector accepted")
	}
	if _, err := tc.Execution(Outcome{Regs: []mm.Val{1, 0}, Final: []mm.Val{1}}); err == nil {
		t.Fatal("short final vector accepted")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram()
	a := Outcome{Regs: []mm.Val{0, 0}}
	b := Outcome{Regs: []mm.Val{1, 0}}
	h.Add(a, false, false)
	h.Add(a, false, false)
	h.Add(b, true, true)
	h.AddN(b, true, false, 3)
	h.AddN(a, false, false, 0) // no-op
	if h.Total() != 6 || h.TargetCount() != 4 || h.Violations() != 1 {
		t.Fatalf("totals wrong: %d %d %d", h.Total(), h.TargetCount(), h.Violations())
	}
	if h.Distinct() != 2 {
		t.Fatalf("Distinct() = %d", h.Distinct())
	}
	if h.Count(a.Key()) != 2 || h.Count(b.Key()) != 4 {
		t.Fatal("per-key counts wrong")
	}
	h2 := NewHistogram()
	h2.Add(a, false, true)
	h.Merge(h2)
	if h.Total() != 7 || h.Violations() != 2 {
		t.Fatal("Merge wrong")
	}
	s := h.String()
	if !strings.Contains(s, "total=7") {
		t.Fatalf("String() = %q", s)
	}
}

func TestStringRendering(t *testing.T) {
	s := CoRR().String()
	for _, want := range []string{"CoRR (conformance", "r0 = atomicLoad(&x)", "atomicStore(&x, 1)", "Target: r0==1 && r1==0"} {
		if !strings.Contains(s, want) {
			t.Errorf("CoRR.String() missing %q:\n%s", want, s)
		}
	}
	s = MPRelAcq().String()
	if !strings.Contains(s, "fence(release/acquire)") {
		t.Errorf("MP-relacq rendering missing fence:\n%s", s)
	}
}

func TestWorkerThreadsAndCounts(t *testing.T) {
	tc := NewBuilder("obs", mm.SCPerLocation).
		Thread().Store(0, 1).Store(0, 2).
		Observer().Load(0).Load(0).
		Target(Condition{}).
		Build()
	if got := tc.WorkerThreads(); got != 1 {
		t.Fatalf("WorkerThreads() = %d", got)
	}
	if got := tc.Instructions(); got != 4 {
		t.Fatalf("Instructions() = %d", got)
	}
	if tc.HasFences() {
		t.Fatal("HasFences() true for fence-free test")
	}
	if !MPRelAcq().HasFences() {
		t.Fatal("HasFences() false for MP-relacq")
	}
}

// TestClassifyNeverPanics is a property test: Classify must handle any
// outcome whose values come from the test's writes or zero.
func TestClassifyNeverPanics(t *testing.T) {
	r := xrand.New(99)
	for _, tc := range Catalog() {
		// Collect candidate values per location: 0 plus all writes.
		valsByLoc := make([][]mm.Val, tc.NumLocs)
		for l := range valsByLoc {
			valsByLoc[l] = []mm.Val{0}
		}
		regLoc := make([]int, tc.NumRegs)
		for _, th := range tc.Threads {
			for _, in := range th.Instrs {
				if in.Writes() {
					valsByLoc[in.Loc] = append(valsByLoc[in.Loc], in.Val)
				}
				if in.Reads() {
					regLoc[in.Reg] = in.Loc
				}
			}
		}
		for trial := 0; trial < 50; trial++ {
			o := Outcome{Regs: make([]mm.Val, tc.NumRegs), Final: make([]mm.Val, tc.NumLocs)}
			for i := range o.Regs {
				vals := valsByLoc[regLoc[i]]
				o.Regs[i] = vals[r.Intn(len(vals))]
			}
			for l := range o.Final {
				vals := valsByLoc[l]
				o.Final[l] = vals[r.Intn(len(vals))]
			}
			if _, err := tc.Classify(o); err != nil {
				t.Fatalf("%s: Classify(%s): %v", tc.Name, o.Key(), err)
			}
		}
	}
}

// TestTargetImpliesClassification: for conformance tests in the catalog
// whose model is the test's model, the target outcome must classify as
// disallowed, and for the weak classics it must classify as allowed.
func TestTargetImpliesClassification(t *testing.T) {
	disallowed := map[string]bool{
		"CoRR": true, "CoWW": true, "CoWR": true, "CoRW": true,
		"MP-relacq": true, "LB-relacq": true, "S-relacq": true,
	}
	for _, tc := range Catalog() {
		x, err := tc.TargetExecution()
		if err != nil {
			t.Fatalf("%s: %v", tc.Name, err)
		}
		v := x.Check(tc.Model)
		if disallowed[tc.Name] && v.Allowed {
			t.Errorf("%s: target should be disallowed under %v", tc.Name, tc.Model)
		}
		if !disallowed[tc.Name] && !v.Allowed {
			t.Errorf("%s: target should be allowed under %v", tc.Name, tc.Model)
		}
	}
}

func TestConditionMatchesIsDeterministic(t *testing.T) {
	// quick-check that Matches is a pure function of its inputs.
	c := Condition{Regs: map[int]mm.Val{0: 1}}
	f := func(v uint8) bool {
		o := Outcome{Regs: []mm.Val{mm.Val(v)}}
		return c.Matches(o) == c.Matches(o)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkClassifyMPRelAcq(b *testing.B) {
	tc := MPRelAcq()
	o := Outcome{Regs: []mm.Val{1, 0}, Final: []mm.Val{1, 1}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := tc.Classify(o); err != nil {
			b.Fatal(err)
		}
	}
}

// TestValueDomain: the domain is {0} plus stored values, and InDomain
// flags any outcome carrying a value outside it — the corruption
// detector the harness builds on.
func TestValueDomain(t *testing.T) {
	mp := MP()
	dom := mp.ValueDomain()
	if !dom[0] || !dom[1] {
		t.Fatalf("MP domain missing 0 or 1: %v", dom)
	}
	good := Outcome{Regs: []mm.Val{1, 0}, Final: []mm.Val{1, 1}}
	if !mp.InDomain(good, dom) {
		t.Fatal("legitimate outcome flagged out of domain")
	}
	for _, bad := range []Outcome{
		{Regs: []mm.Val{0xDEAD0001, 0}, Final: []mm.Val{1, 1}},
		{Regs: []mm.Val{1, 0}, Final: []mm.Val{0xDEADBEEF, 1}},
		{Regs: []mm.Val{2, 0}, Final: []mm.Val{1, 1}},
	} {
		if mp.InDomain(bad, dom) {
			t.Fatalf("corrupted outcome %v passed domain validation", bad)
		}
	}
	// Every value a catalog test stores is inside its own domain, so
	// domain validation can never flag a legitimate execution.
	for _, tc := range Catalog() {
		d := tc.ValueDomain()
		for _, th := range tc.Threads {
			for _, in := range th.Instrs {
				if in.Writes() && !d[in.Val] {
					t.Fatalf("%s: stored value %d missing from domain", tc.Name, in.Val)
				}
			}
		}
	}
}
