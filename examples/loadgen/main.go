// Loadgen: exercise the campaign service the way a fleet of tenants
// would — concurrent clients submitting jobs over HTTP, streaming
// progress over SSE, and collecting reports — then verify the service
// kept every promise it makes:
//
//   - idempotency: two clients submitting the same spec share one job
//   - live streaming: every job emits progress snapshots with
//     monotonically non-decreasing completion counts and exactly one
//     terminal event
//   - byte-identity: a job's report equals the artifact the same spec
//     produces when executed locally, bypassing the service entirely
//   - observability: /healthz answers and /metrics exposes the
//     Prometheus series the run must have incremented
//
// By default it starts an in-process server on a loopback port and
// tears it down afterwards; point -addr at a running `mcmutants
// serve` to drive a real deployment. Exits non-zero on any violation.
//
//	go run ./examples/loadgen
//	go run ./examples/loadgen -addr 127.0.0.1:8344 -clients 12
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/serve"
)

func main() {
	addr := flag.String("addr", "", "server address (default: start an in-process server)")
	clients := flag.Int("clients", 8, "concurrent clients (minimum 2: one pair shares a spec)")
	flag.Parse()
	if *clients < 2 {
		log.Fatal("need at least 2 clients for the shared-spec pair")
	}
	if err := run(*addr, *clients); err != nil {
		log.Fatal(err)
	}
}

func run(addr string, clients int) error {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)
	defer cancel()

	base := addr
	if base == "" {
		dir, err := os.MkdirTemp("", "mcmutants-loadgen-*")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
		srv, err := serve.New(serve.Config{
			StateDir:      dir,
			Runners:       2,
			JobWorkers:    2,
			ProgressEvery: 5 * time.Millisecond,
		})
		if err != nil {
			return err
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		srvCtx, stop := context.WithCancel(context.Background())
		done := make(chan error, 1)
		go func() { done <- srv.Run(srvCtx, ln) }()
		defer func() { stop(); <-done }()
		base = "http://" + ln.Addr().String()
		fmt.Printf("in-process server on %s (state %s)\n", base, dir)
	}
	if !strings.HasPrefix(base, "http") {
		base = "http://" + base
	}

	// Small distinct conformance specs, except clients 0 and 1, which
	// deliberately share one: the service must map them to one job.
	specs := make([]serve.JobSpec, clients)
	for i := range specs {
		specs[i] = serve.JobSpec{
			Kind:    "conformance",
			Devices: []string{"AMD"},
			Envs:    []string{"pte"},
			Iters:   2,
			Seed:    uint64(100 + i),
		}
	}
	specs[1] = specs[0]

	type result struct {
		client   int
		id       string
		existing bool
		progress int
		report   []byte
	}
	results := make([]result, clients)
	errs := make([]error, clients)
	firstSubmitted := make(chan struct{}) // client 1 resubmits after client 0
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// A per-client API key: admission control tracks each tenant
			// separately even though every connection shares loopback.
			c := &serve.Client{BaseURL: base, APIKey: fmt.Sprintf("loadgen-%d", i)}
			if i == 1 {
				<-firstSubmitted
			}
			sub, err := c.Submit(ctx, specs[i])
			if i == 0 {
				close(firstSubmitted)
			}
			if err != nil {
				errs[i] = fmt.Errorf("client %d: submit: %w", i, err)
				return
			}
			res := result{client: i, id: sub.Job.ID, existing: sub.Existing}

			// Stream the SSE feed to the end, checking monotonicity.
			lastDone, sawTerminal := -1, false
			err = c.Events(ctx, sub.Job.ID, func(name string, data json.RawMessage) error {
				switch name {
				case "progress":
					var p struct {
						Done int `json:"done"`
					}
					if err := json.Unmarshal(data, &p); err != nil {
						return err
					}
					if p.Done < lastDone {
						return fmt.Errorf("progress went backwards: %d after %d", p.Done, lastDone)
					}
					lastDone = p.Done
					res.progress++
				case "done":
					sawTerminal = true
				}
				return nil
			})
			if err != nil {
				errs[i] = fmt.Errorf("client %d: events: %w", i, err)
				return
			}
			if res.progress == 0 {
				errs[i] = fmt.Errorf("client %d: no progress events", i)
				return
			}
			if !sawTerminal {
				errs[i] = fmt.Errorf("client %d: stream ended without a terminal event", i)
				return
			}

			j, err := c.Job(ctx, sub.Job.ID)
			if err != nil {
				errs[i] = fmt.Errorf("client %d: job: %w", i, err)
				return
			}
			if j.State != serve.StateDone {
				errs[i] = fmt.Errorf("client %d: job %s ended %s (%s)", i, j.ID, j.State, j.Error)
				return
			}
			res.report, err = c.Report(ctx, sub.Job.ID)
			if err != nil {
				errs[i] = fmt.Errorf("client %d: report: %w", i, err)
				return
			}
			results[i] = res
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}

	// Idempotency: the shared spec collapsed to one job, and the second
	// submission was answered from the existing record.
	if results[0].id != results[1].id {
		return fmt.Errorf("shared spec produced two jobs: %s vs %s", results[0].id, results[1].id)
	}
	if !results[1].existing {
		return fmt.Errorf("resubmission of job %s was not deduplicated", results[1].id)
	}
	if !bytes.Equal(results[0].report, results[1].report) {
		return fmt.Errorf("clients of job %s read different reports", results[0].id)
	}

	// Byte-identity: the service's report for spec 0 must equal the
	// artifact produced by executing the same spec locally.
	local, err := localArtifact(ctx, specs[0])
	if err != nil {
		return fmt.Errorf("local oracle: %w", err)
	}
	if !bytes.Equal(results[0].report, local) {
		return fmt.Errorf("job %s report differs from the locally executed artifact", results[0].id)
	}

	if err := checkObservability(ctx, base); err != nil {
		return err
	}

	totalProgress := 0
	for _, r := range results {
		totalProgress += r.progress
	}
	fmt.Printf("%d clients, %d jobs done, %d progress events streamed\n",
		clients, clients-1, totalProgress)
	fmt.Println("idempotency, byte-identity and metrics checks passed")
	return nil
}

// localArtifact runs the spec's campaign directly — no server, no
// queue — and renders it through the same canonical encoding the
// service and the CLI's -out flag use.
func localArtifact(ctx context.Context, spec serve.JobSpec) ([]byte, error) {
	study, err := core.NewStudy()
	if err != nil {
		return nil, err
	}
	env, err := core.EnvByName(spec.Envs[0], 16, 32)
	if err != nil {
		return nil, err
	}
	platforms := make([]core.Platform, 0, len(spec.Devices))
	for _, d := range spec.Devices {
		platforms = append(platforms, core.Platform{Device: d})
	}
	// Any worker count yields identical bytes — that is the scheduler's
	// determinism contract, exercised here with a count the server does
	// not use.
	reports, err := study.CheckFleetConformanceCtx(ctx, platforms, env, spec.Iters, spec.Seed,
		core.CampaignOptions{Workers: 3})
	if err != nil {
		return nil, err
	}
	art := &core.CampaignArtifact{Kind: "conformance", Conformance: reports}
	var buf bytes.Buffer
	if err := art.Encode(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// checkObservability scrapes /healthz and /metrics and verifies the
// series this run must have moved.
func checkObservability(ctx context.Context, base string) error {
	body, err := get(ctx, base+"/healthz")
	if err != nil {
		return err
	}
	if !strings.Contains(body, `"status"`) {
		return fmt.Errorf("healthz body unexpected: %s", body)
	}
	body, err = get(ctx, base+"/metrics")
	if err != nil {
		return err
	}
	for _, series := range []string{
		"mcmutants_jobs{state=\"done\"}",
		"mcmutants_jobs_completed_total{state=\"done\"}",
		"mcmutants_cells_executed_total",
		"mcmutants_queue_depth",
	} {
		if !strings.Contains(body, series) {
			return fmt.Errorf("metrics missing series %s", series)
		}
	}
	return nil
}

func get(ctx context.Context, url string) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return "", err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("GET %s: HTTP %d", url, resp.StatusCode)
	}
	return string(data), nil
}
