package serve

import "sync"

// event is one server-sent event: a name and a JSON payload.
type event struct {
	name string
	data []byte
}

// hub fans job events out to SSE subscribers. Snapshots are
// cumulative, so slow consumers are handled by dropping intermediate
// events rather than blocking the publisher: each subscriber gets a
// buffered channel and a full buffer loses the oldest news, never the
// terminal event (the channel close carries that even when the buffer
// is full). A late subscriber replays the job's latest progress event
// and, if the job already ended, its terminal event.
type hub struct {
	mu   sync.Mutex
	subs map[string]map[chan event]struct{}
	last map[string]event // latest progress event per job
	done map[string]event // terminal event per job
}

func newHub() *hub {
	return &hub{
		subs: map[string]map[chan event]struct{}{},
		last: map[string]event{},
		done: map[string]event{},
	}
}

// publish delivers a non-terminal event to the job's subscribers and
// records it for replay.
func (h *hub) publish(id string, ev event) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.last[id] = ev
	for ch := range h.subs[id] {
		select {
		case ch <- ev:
		default: // slow consumer: drop — the next snapshot supersedes this one
		}
	}
}

// finish delivers the job's terminal event, closes every subscriber
// channel, and records the event so later subscribers see it too.
func (h *hub) finish(id string, ev event) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.done[id] = ev
	for ch := range h.subs[id] {
		select {
		case ch <- ev:
		default:
		}
		close(ch)
	}
	delete(h.subs, id)
}

// reset clears a job's replay state — a requeued job starts a fresh
// event stream.
func (h *hub) reset(id string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	delete(h.last, id)
	delete(h.done, id)
}

// subscribe attaches a listener to the job's event stream. The
// returned channel is closed after the terminal event; cancel detaches
// early and is safe to call after the close.
func (h *hub) subscribe(id string) (<-chan event, func()) {
	ch := make(chan event, 16)
	h.mu.Lock()
	defer h.mu.Unlock()
	if ev, ok := h.last[id]; ok {
		ch <- ev
	}
	if ev, ok := h.done[id]; ok {
		ch <- ev
		close(ch)
		return ch, func() {}
	}
	set := h.subs[id]
	if set == nil {
		set = map[chan event]struct{}{}
		h.subs[id] = set
	}
	set[ch] = struct{}{}
	cancel := func() {
		h.mu.Lock()
		defer h.mu.Unlock()
		if cur, ok := h.subs[id]; ok {
			if _, live := cur[ch]; live {
				delete(cur, ch)
				close(ch)
				if len(cur) == 0 {
					delete(h.subs, id)
				}
			}
		}
	}
	return ch, cancel
}
