package sched

import "errors"

// transientError marks a failure worth retrying: the cell reported a
// condition that may clear (a busy simulated device, a throttled
// backend) rather than a deterministic defect in the work itself.
type transientError struct{ err error }

func (e *transientError) Error() string { return "transient: " + e.err.Error() }
func (e *transientError) Unwrap() error { return e.err }

// Transient wraps err so the scheduler retries the cell (up to
// Options.MaxRetries, with backoff). A nil err returns nil.
func Transient(err error) error {
	if err == nil {
		return nil
	}
	return &transientError{err: err}
}

// IsTransient reports whether err (or anything it wraps) was marked
// with Transient, or carries its own transience verdict via a
// `Transient() bool` method — the hook through which typed device
// errors (gpu.DeviceError) classify themselves without the producing
// layer importing sched.
func IsTransient(err error) bool {
	var t *transientError
	if errors.As(err, &t) {
		return true
	}
	var self interface{ Transient() bool }
	return errors.As(err, &self) && self.Transient()
}

// ErrQuarantined marks cells skipped because their device's circuit
// breaker was open (see Options.Breaker). Quarantined cells appear in
// the report — never silently dropped — with this error and
// CellResult.Quarantined set.
var ErrQuarantined = errors.New("sched: cell quarantined: device circuit breaker open")

// ErrInterrupted marks cells abandoned because the campaign context was
// cancelled (user interrupt or deadline expiry) before they completed.
// Interrupted cells are pending, not failed: they were never
// checkpointed, so a resumed campaign re-runs them from their
// deterministic per-cell streams and produces results byte-identical
// to an uninterrupted run. RunContext's error wraps this sentinel when
// any cell was abandoned; test with errors.Is.
var ErrInterrupted = errors.New("sched: campaign interrupted")

// ErrCheckpointCorrupt marks a checkpoint whose body failed validation
// on resume: a malformed record that is not the torn tail, or a record
// whose per-line checksum does not match its payload — mid-file bit
// corruption that must be surfaced, never silently resumed over.
var ErrCheckpointCorrupt = errors.New("sched: checkpoint corrupt")
