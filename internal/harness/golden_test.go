package harness

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"repro/internal/gpu"
	"repro/internal/litmus"
	"repro/internal/mutation"
	"repro/internal/xrand"
)

// Harness-layer golden byte-identity fingerprints. The committed
// testdata/harness_golden.json was captured before the gpu executor
// rewrite (regenerate with UPDATE_GOLDEN=1): identical fingerprints
// prove the full RunInto pipeline — plan generation, device execution,
// outcome extraction, domain validation, classification, histogram —
// observes byte-identical device behavior. WallSeconds is host time
// and deliberately excluded.

// fingerprintResult hashes every deterministic field of a Result.
func fingerprintResult(t *testing.T, res *Result) string {
	t.Helper()
	hist, err := json.Marshal(res.Hist) // map keys sort: deterministic
	if err != nil {
		t.Fatal(err)
	}
	var first string
	if res.FirstViolation != nil {
		first = res.FirstViolation.Key()
	}
	doc := fmt.Sprintf("test=%s mutant=%v mutator=%s iters=%d discarded=%d instances=%d target=%d violations=%d sim=%x first=%q hist=%s",
		res.TestName, res.IsMutant, res.Mutator, res.Iterations, res.Discarded,
		res.Instances, res.TargetCount, res.Violations, res.SimSeconds, first, hist)
	sum := sha256.Sum256([]byte(doc))
	return hex.EncodeToString(sum[:])
}

// goldenPTEEnv mirrors the stressed parallel environment used by the
// repo-root experiment benchmarks.
func goldenPTEEnv() Params {
	p := PTEBaseline(8, 16)
	p.MaxWorkgroups = p.TestingWorkgroups + 4
	p.MemStressPct = 100
	p.MemStressIters = 8
	p.PreStressPct = 80
	p.PreStressIters = 2
	p.MemStride = 2
	p.MemLocOffset = 1
	return p
}

const harnessGoldenPath = "testdata/harness_golden.json"

func TestGoldenHarnessFingerprints(t *testing.T) {
	suite := mutation.MustGenerate()
	tests := []*litmus.Test{}
	for _, name := range []string{"MP", "SB", "MP-relacq", "CoRR"} {
		if tt, ok := suite.ByName(name); ok {
			tests = append(tests, tt)
		}
	}
	// Always include at least one conformance and one mutant even if a
	// name above drifts.
	tests = append(tests, suite.Conformance[0], suite.Mutants[0])

	type cell struct {
		name string
		dev  string
		bugs gpu.Bugs
		env  Params
		test *litmus.Test
	}
	var cells []cell
	for _, devName := range []string{"AMD", "Intel"} {
		for _, tt := range tests {
			cells = append(cells,
				cell{name: tt.Name + "/" + devName + "/pte", dev: devName, env: goldenPTEEnv(), test: tt},
				cell{name: tt.Name + "/" + devName + "/site", dev: devName, env: SITEBaseline(), test: tt},
			)
		}
	}
	// Buggy-device cells: the bug paths draw extra randomness, so the
	// fingerprint pins those draws too.
	if tt, ok := suite.ByName("MP-relacq"); ok {
		cells = append(cells, cell{name: "MP-relacq/AMD-dropfences/pte", dev: "AMD",
			bugs: gpu.Bugs{DropFences: true}, env: goldenPTEEnv(), test: tt})
	}
	if tt, ok := suite.ByName("CoRR"); ok {
		cells = append(cells, cell{name: "CoRR/Intel-corr/pte", dev: "Intel",
			bugs: gpu.Bugs{CoherenceRR: true, CoherenceRRProb: 0.3}, env: goldenPTEEnv(), test: tt})
	}

	got := make(map[string]string, len(cells))
	for _, c := range cells {
		c := c
		t.Run(c.name, func(t *testing.T) {
			prof, ok := gpu.ProfileByName(c.dev)
			if !ok {
				t.Fatalf("profile %q missing", c.dev)
			}
			dev, err := gpu.NewDevice(prof, c.bugs)
			if err != nil {
				t.Fatal(err)
			}
			r, err := NewRunner(dev, c.env)
			if err != nil {
				t.Fatal(err)
			}
			// Two RunInto batches on one reused Result: the second is
			// the warm path, and the merged totals pin both.
			res := &Result{}
			rng := xrand.New(77)
			for batch := 0; batch < 2; batch++ {
				if err := r.RunInto(context.Background(), res, c.test, 3, rng); err != nil {
					t.Fatal(err)
				}
			}
			fp := fingerprintResult(t, res)
			// The tail of the RNG stream pins the exact draw count.
			sum := sha256.Sum256([]byte(fp + fmt.Sprintf("|rng=%x", rng.Uint64())))
			got[c.name] = hex.EncodeToString(sum[:])
		})
	}

	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll(filepath.Dir(harnessGoldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		names := make([]string, 0, len(got))
		for n := range got {
			names = append(names, n)
		}
		sort.Strings(names)
		var buf []byte
		buf = append(buf, "{\n"...)
		for i, n := range names {
			comma := ","
			if i == len(names)-1 {
				comma = ""
			}
			buf = append(buf, fmt.Sprintf("  %q: %q%s\n", n, got[n], comma)...)
		}
		buf = append(buf, "}\n"...)
		if err := os.WriteFile(harnessGoldenPath, buf, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %d golden entries to %s", len(got), harnessGoldenPath)
		return
	}

	raw, err := os.ReadFile(harnessGoldenPath)
	if err != nil {
		t.Fatalf("golden file missing (run with UPDATE_GOLDEN=1 to capture): %v", err)
	}
	want := map[string]string{}
	if err := json.Unmarshal(raw, &want); err != nil {
		t.Fatal(err)
	}
	for name, fp := range got {
		if want[name] == "" {
			t.Errorf("%s: no golden entry (run with UPDATE_GOLDEN=1 to capture)", name)
		} else if fp != want[name] {
			t.Errorf("%s: fingerprint diverged from pre-rewrite baseline", name)
		}
	}
}
