package gpu

import (
	"fmt"
	"sort"

	"repro/internal/xrand"
)

// TraceKind classifies trace events.
type TraceKind uint8

const (
	// TraceIssue marks an instruction entering the memory system (or a
	// fence/barrier retiring).
	TraceIssue TraceKind = iota
	// TraceComplete marks a memory operation reaching global
	// visibility.
	TraceComplete
)

// String names the kind.
func (k TraceKind) String() string {
	if k == TraceComplete {
		return "complete"
	}
	return "issue"
}

// TraceEvent is one step of a traced execution.
type TraceEvent struct {
	Tick   int64
	Thread int32
	Index  int32 // instruction index within the thread's program
	Kind   TraceKind
	Op     Op
	Addr   uint32
	// Value is the value read (loads, exchanges) or written (stores)
	// at completion; zero for issues and fences.
	Value uint32
}

// String renders one event compactly.
func (e TraceEvent) String() string {
	return fmt.Sprintf("t%-4d @%-6d %-8s %s[%d]=%d",
		e.Thread, e.Tick, e.Kind, e.Op, e.Addr, e.Value)
}

// RunTraced is Run with event recording: every instruction issue and
// memory-operation completion is captured in tick order. Tracing is
// for debugging and for the simulator's self-verification tests; it
// roughly doubles the cost of a run.
func (d *Device) RunTraced(spec LaunchSpec, rng *xrand.Rand) (*RunResult, []TraceEvent, error) {
	if err := spec.Validate(); err != nil {
		return nil, nil, err
	}
	e := d.getExec(spec, rng)
	// The trace is freshly allocated per traced run and ownership
	// transfers to the caller; only the executor itself is reused. This
	// is a debug path, so it is exempt from the zero-alloc contract.
	e.tracing = true
	e.trace = make([]TraceEvent, 0, 1024)
	err := e.run()
	trace := e.trace
	e.tracing = false
	e.trace = nil
	if err != nil {
		return nil, nil, err
	}
	return e.result(), trace, nil
}

// VerifyTrace checks a conformant execution's trace against the
// simulator's guarantees:
//
//  1. per-thread issues follow program order;
//  2. same-thread same-location completions follow issue order
//     (program order per location);
//  3. every load's value is the value of the latest completed store to
//     its address (reads are coherent with the global memory order);
//  4. no memory operation issued after a fence completes before an
//     operation issued before the fence by the same thread.
//
// It must only be applied to traces from bug-free devices — the
// injected defects violate exactly these properties, which is what
// TestTraceCatchesInjectedBugs asserts from the other side.
func VerifyTrace(spec LaunchSpec, trace []TraceEvent) error {
	events := append([]TraceEvent(nil), trace...)
	sort.SliceStable(events, func(i, j int) bool { return events[i].Tick < events[j].Tick })

	// 1. Program order of issues.
	lastIssue := map[int32]int32{}
	for _, e := range events {
		if e.Kind != TraceIssue {
			continue
		}
		if prev, ok := lastIssue[e.Thread]; ok && e.Index <= prev {
			return fmt.Errorf("gpu: thread %d issued instruction %d after %d", e.Thread, e.Index, prev)
		}
		lastIssue[e.Thread] = e.Index
	}

	// 2. Same-location completion order per thread.
	type threadLoc struct {
		thread int32
		addr   uint32
	}
	lastLocIdx := map[threadLoc]int32{}
	for _, e := range events {
		if e.Kind != TraceComplete || !e.Op.IsMemory() {
			continue
		}
		key := threadLoc{e.Thread, e.Addr}
		if prev, ok := lastLocIdx[key]; ok && e.Index < prev {
			return fmt.Errorf("gpu: thread %d completed %d before earlier op %d on addr %d",
				e.Thread, prev, e.Index, e.Addr)
		}
		lastLocIdx[key] = e.Index
	}

	// 3. Load values replay the memory order.
	mem := map[uint32]uint32{}
	for _, e := range events {
		if e.Kind != TraceComplete {
			continue
		}
		switch e.Op {
		case OpStore, OpStressStore:
			mem[e.Addr] = e.Value
		case OpExchange:
			if got := mem[e.Addr]; got != e.Value {
				return fmt.Errorf("gpu: exchange at tick %d read %d, memory order says %d",
					e.Tick, e.Value, got)
			}
			// The written value is not carried in the trace event for
			// exchanges (Value is the read); replay from the program.
			mem[e.Addr] = replayImm(spec, e)
		case OpLoad:
			if got := mem[e.Addr]; got != e.Value {
				return fmt.Errorf("gpu: load at tick %d (thread %d) read %d, memory order says %d",
					e.Tick, e.Thread, e.Value, got)
			}
		}
	}

	// 4. Fences separate completions.
	// For each thread, every completion of an op issued before a fence
	// must precede (in tick order) every completion of an op issued
	// after it. Since fences only retire when outstanding==0, it
	// suffices to check that a fence's issue tick is not preceded by
	// any later-index completion nor followed by any earlier-index
	// completion... which conditions 1 and 2 plus the retire rule
	// already imply for same-location pairs; check the cross-location
	// case directly.
	fenceIssue := map[int32][]TraceEvent{}
	for _, e := range events {
		if e.Kind == TraceIssue && (e.Op == OpFence || e.Op == OpBarrier) {
			fenceIssue[e.Thread] = append(fenceIssue[e.Thread], e)
		}
	}
	for _, e := range events {
		if e.Kind != TraceComplete {
			continue
		}
		for _, f := range fenceIssue[e.Thread] {
			if e.Index < f.Index && e.Tick > f.Tick {
				return fmt.Errorf("gpu: thread %d op %d completed at %d after fence %d retired at %d",
					e.Thread, e.Index, e.Tick, f.Index, f.Tick)
			}
			if e.Index > f.Index && e.Tick < f.Tick {
				return fmt.Errorf("gpu: thread %d op %d completed at %d before fence %d retired at %d",
					e.Thread, e.Index, e.Tick, f.Index, f.Tick)
			}
		}
	}
	return nil
}

// replayImm recovers the stored immediate of an exchange from the
// spec's program.
func replayImm(spec LaunchSpec, e TraceEvent) uint32 {
	prog := spec.Programs[e.Thread]
	if int(e.Index) < len(prog) {
		return prog[e.Index].Imm
	}
	return 0
}
