package dist

import (
	"context"
	"fmt"
	"sync"
)

// netError is a transient transport failure injected by
// FaultTransport — what a dropped request or a lost reply looks like
// to the worker.
type netError struct {
	op string
	n  int
}

func (e *netError) Error() string {
	return fmt.Sprintf("dist: simulated network fault: %s at rpc %d", e.op, e.n)
}

// FaultPlan schedules deterministic transport faults by 1-based RPC
// ordinal, mirroring diskio.FaultFS's crash-at-Nth-op model so chaos
// tests can enumerate every RPC boundary.
type FaultPlan struct {
	// DropAt: the request never reaches the coordinator; the worker
	// sees a network error.
	DropAt map[int]bool
	// LoseReplyAt: the coordinator processes the request but the
	// response is lost (the "torn" case — observable side effects with
	// an error at the caller).
	LoseReplyAt map[int]bool
	// DuplicateAt: the request is applied twice (a retransmit the
	// coordinator must absorb idempotently); the worker sees the
	// second response.
	DuplicateAt map[int]bool
	// DelayAt: the request is applied but the worker stalls in Delay
	// before seeing the response — long enough, typically, for its
	// lease to expire server-side.
	DelayAt map[int]bool
	// Delay implements DelayAt's stall (tests advance a fake clock).
	Delay func()
	// CrashAt, when positive, kills the worker at that RPC: it and
	// every later call return ErrWorkerCrashed without reaching the
	// coordinator.
	CrashAt int
	// PartitionFrom, when positive, persistently partitions the
	// worker from that RPC on: every call from then on is dropped.
	PartitionFrom int
}

// FaultTransport wraps a Transport and injects the plan's faults.
type FaultTransport struct {
	inner Transport
	plan  FaultPlan

	mu  sync.Mutex
	ops int
}

// NewFaultTransport wraps inner with the fault plan.
func NewFaultTransport(inner Transport, plan FaultPlan) *FaultTransport {
	return &FaultTransport{inner: inner, plan: plan}
}

// Ops returns how many RPCs the worker has attempted so far — chaos
// tests run once fault-free to learn the boundary count, then
// enumerate it.
func (t *FaultTransport) Ops() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.ops
}

// verdicts for one RPC attempt.
type faultVerdict int

const (
	faultPass faultVerdict = iota
	faultDrop
	faultLose
	faultDupe
	faultDelay
	faultCrash
)

func (t *FaultTransport) gate() (faultVerdict, int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.ops++
	n := t.ops
	p := t.plan
	switch {
	case p.CrashAt > 0 && n >= p.CrashAt:
		return faultCrash, n
	case p.PartitionFrom > 0 && n >= p.PartitionFrom:
		return faultDrop, n
	case p.DropAt[n]:
		return faultDrop, n
	case p.LoseReplyAt[n]:
		return faultLose, n
	case p.DuplicateAt[n]:
		return faultDupe, n
	case p.DelayAt[n]:
		return faultDelay, n
	}
	return faultPass, n
}

// faulted runs one RPC through the plan. apply invokes the inner
// transport; it is skipped for drops, invoked-then-discarded for
// lost replies, and invoked twice for duplicates.
func faulted[T any](t *FaultTransport, apply func() (T, error)) (T, error) {
	var zero T
	switch v, n := t.gate(); v {
	case faultCrash:
		return zero, ErrWorkerCrashed
	case faultDrop:
		return zero, &netError{op: "request dropped", n: n}
	case faultLose:
		if _, err := apply(); err != nil {
			return zero, err
		}
		return zero, &netError{op: "reply lost", n: n}
	case faultDupe:
		if _, err := apply(); err != nil {
			return zero, err
		}
		return apply()
	case faultDelay:
		out, err := apply()
		if t.plan.Delay != nil {
			t.plan.Delay()
		}
		return out, err
	default:
		return apply()
	}
}

func (t *FaultTransport) Info(ctx context.Context) (*WorkInfo, error) {
	return faulted(t, func() (*WorkInfo, error) { return t.inner.Info(ctx) })
}

func (t *FaultTransport) Acquire(ctx context.Context, req AcquireRequest) (*AcquireResponse, error) {
	return faulted(t, func() (*AcquireResponse, error) { return t.inner.Acquire(ctx, req) })
}

func (t *FaultTransport) Renew(ctx context.Context, req RenewRequest) (*RenewResponse, error) {
	return faulted(t, func() (*RenewResponse, error) { return t.inner.Renew(ctx, req) })
}

func (t *FaultTransport) Deliver(ctx context.Context, req DeliverRequest) (*DeliverResponse, error) {
	return faulted(t, func() (*DeliverResponse, error) { return t.inner.Deliver(ctx, req) })
}
