package harness

// Tests for the Runner's reusable scratch: merging results with
// preallocated histograms, and the guarantee that a warm Runner —
// arenas grown, buffers dirtied by other tests — produces results
// byte-identical to a fresh one.

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/gpu"
	"repro/internal/litmus"
	"repro/internal/mm"
	"repro/internal/mutation"
	"repro/internal/xrand"
)

// TestMergeDisjointOutcomes merges results whose histograms share no
// outcome keys: the merged histogram must carry every key at its
// original count, with totals, target counts and violation counts
// recomputed, starting from a nil histogram sized by the first
// incoming result.
func TestMergeDisjointOutcomes(t *testing.T) {
	oc := func(r0, r1 mm.Val) litmus.Outcome {
		return litmus.Outcome{Regs: []mm.Val{r0, r1}}
	}
	ha := litmus.NewHistogram()
	ha.AddN(oc(0, 0), false, false, 3)
	ha.AddN(oc(1, 0), true, false, 2)
	hb := litmus.NewHistogram()
	hb.AddN(oc(0, 1), false, false, 5)
	hb.AddN(oc(1, 1), false, true, 1)

	a := &Result{TestName: "MP", Iterations: 1, Instances: 5, SimSeconds: 0.5, Hist: ha}
	b := &Result{TestName: "MP", Iterations: 2, Instances: 6, SimSeconds: 0.25, Hist: hb}

	merged := &Result{TestName: "MP"}
	if err := merged.Merge(a); err != nil {
		t.Fatal(err)
	}
	if err := merged.Merge(b); err != nil {
		t.Fatal(err)
	}
	if merged.Hist.Distinct() != 4 {
		t.Errorf("merged Distinct = %d, want 4", merged.Hist.Distinct())
	}
	if merged.Hist.Total() != 11 {
		t.Errorf("merged Total = %d, want 11", merged.Hist.Total())
	}
	if merged.TargetCount != 2 || merged.Violations != 1 {
		t.Errorf("merged target/violations = %d/%d, want 2/1", merged.TargetCount, merged.Violations)
	}
	if merged.Iterations != 3 || merged.Instances != 11 || merged.SimSeconds != 0.75 {
		t.Errorf("merged counters: %+v", merged)
	}
	for _, w := range []struct {
		o litmus.Outcome
		n int
	}{{oc(0, 0), 3}, {oc(1, 0), 2}, {oc(0, 1), 5}, {oc(1, 1), 1}} {
		if got := merged.Hist.Count(w.o.Key()); got != w.n {
			t.Errorf("merged count[%s] = %d, want %d", w.o.Key(), got, w.n)
		}
	}
	if err := merged.Merge(&Result{TestName: "SB"}); err == nil {
		t.Error("merging a different test's result was accepted")
	}
}

// TestRunnerReuseMatchesFresh runs the same seeded workload on a fresh
// Runner and on a Runner warmed — and dirtied — by other tests and a
// differently-shaped plan, reusing one Result across all of it. Any
// stale-scratch leakage (plan arrays, outcome arenas, histogram keys,
// cached domains) would break the field-for-field and key-for-key
// equality asserted here.
func TestRunnerReuseMatchesFresh(t *testing.T) {
	suite := mutation.MustGenerate()
	mp, _ := suite.ByName("MP")
	sb, _ := suite.ByName("SB")

	fresh, err := NewRunner(device(t, "AMD", gpu.Bugs{}), stressedPTE())
	if err != nil {
		t.Fatal(err)
	}
	want, err := fresh.Run(mp, 3, xrand.New(99))
	if err != nil {
		t.Fatal(err)
	}

	warm, err := NewRunner(device(t, "AMD", gpu.Bugs{}), stressedPTE())
	if err != nil {
		t.Fatal(err)
	}
	var res Result
	if err := warm.RunInto(context.Background(), &res, sb, 2, xrand.New(5)); err != nil {
		t.Fatal(err)
	}
	if err := warm.RunInto(context.Background(), &res, mp, 1, xrand.New(17)); err != nil {
		t.Fatal(err)
	}
	if err := warm.RunInto(context.Background(), &res, mp, 3, xrand.New(99)); err != nil {
		t.Fatal(err)
	}

	if res.TestName != want.TestName || res.IsMutant != want.IsMutant ||
		res.Iterations != want.Iterations || res.Discarded != want.Discarded ||
		res.Instances != want.Instances || res.TargetCount != want.TargetCount ||
		res.Violations != want.Violations || res.SimSeconds != want.SimSeconds {
		t.Fatalf("warm runner diverged:\n got %+v\nwant %+v", res, *want)
	}
	gotJSON, err := res.Hist.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	wantJSON, err := want.Hist.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if string(gotJSON) != string(wantJSON) {
		t.Fatalf("warm runner histogram diverged:\n got %s\nwant %s", gotJSON, wantJSON)
	}
	if !reflect.DeepEqual(res.FirstViolation, want.FirstViolation) {
		t.Fatalf("FirstViolation diverged: %+v vs %+v", res.FirstViolation, want.FirstViolation)
	}
}
