package serve

import (
	"fmt"
	"io"
	"strconv"
	"sync"

	"repro/internal/buildinfo"
	"repro/internal/guard"
	"repro/internal/sched"
)

// metrics holds the server's counters and renders the Prometheus text
// exposition format without any client-library dependency. Counters
// are process-lifetime (they restart at zero with the server, as
// Prometheus counters do); gauges are computed at scrape time from
// live server state and passed in through gaugeSet.
type metrics struct {
	mu            sync.Mutex
	jobsCompleted map[JobState]int64
	cellsExec     int64
	cellsReplayed int64
	cellsRetried  int64
	cellsQuar     int64
	cacheHits     int64
	cacheMisses   int64
	cacheCorrupt  int64
	// submissionsShed, jobsShed and jobsPoisoned are the guard layer's
	// counters: submissions refused by brownout, running jobs cancelled
	// into the shed state, and jobs quarantined at boot recovery.
	submissionsShed int64
	jobsShed        int64
	jobsPoisoned    int64
	// perJob remembers each live job's last cumulative snapshot so a
	// new snapshot contributes only its delta to the counters.
	perJob map[string]cellCounts
}

type cellCounts struct {
	executed, replayed, retried, quarantined int
	cacheHits, cacheMisses, cacheCorrupt     int
}

func newMetrics() *metrics {
	return &metrics{
		jobsCompleted: map[JobState]int64{},
		perJob:        map[string]cellCounts{},
	}
}

// observe folds one job-level progress snapshot into the cell
// counters. Snapshots are cumulative per job, so the delta against
// the previous observation is what the totals gain.
func (m *metrics) observe(id string, p sched.Progress) {
	m.mu.Lock()
	defer m.mu.Unlock()
	prev := m.perJob[id]
	cur := cellCounts{
		executed:     p.Executed,
		replayed:     p.Replayed,
		retried:      p.Retried,
		quarantined:  p.Quarantined,
		cacheHits:    p.CacheHits,
		cacheMisses:  p.CacheMisses,
		cacheCorrupt: p.CacheCorrupt,
	}
	m.cellsExec += max64(0, cur.executed-prev.executed)
	m.cellsReplayed += max64(0, cur.replayed-prev.replayed)
	m.cellsRetried += max64(0, cur.retried-prev.retried)
	m.cellsQuar += max64(0, cur.quarantined-prev.quarantined)
	m.cacheHits += max64(0, cur.cacheHits-prev.cacheHits)
	m.cacheMisses += max64(0, cur.cacheMisses-prev.cacheMisses)
	m.cacheCorrupt += max64(0, cur.cacheCorrupt-prev.cacheCorrupt)
	m.perJob[id] = cur
}

func max64(a, b int) int64 {
	if b > a {
		return int64(b)
	}
	return int64(a)
}

// forget drops a job's delta baseline once it leaves the running
// state; a later re-run starts its cumulative counters from zero.
func (m *metrics) forget(id string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.perJob, id)
}

// jobFinished bumps the terminal-state counter.
func (m *metrics) jobFinished(state JobState) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.jobsCompleted[state]++
}

// guardSubmissionShed counts a submission refused by brownout.
func (m *metrics) guardSubmissionShed() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.submissionsShed++
}

// guardShed counts a running job cancelled into the shed state.
func (m *metrics) guardShed() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.jobsShed++
}

// guardPoisoned counts a job quarantined at boot recovery.
func (m *metrics) guardPoisoned() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.jobsPoisoned++
}

// gaugeSet carries the scrape-time gauges the server computes from
// its live state.
type gaugeSet struct {
	jobsByState     map[JobState]int
	queueDepth      int
	runningJobs     int
	cellsPerSec     float64
	storageDegraded int
	cacheDegraded   bool
	draining        bool
	brownoutLevel   guard.Level
	heapBytes       uint64
}

// jobStates is the fixed label universe, so every scrape exposes
// every series (absent states read 0, not missing).
var jobStates = []JobState{
	StateQueued, StateRunning, StateDone, StateDegraded, StateFailed, StateCancelled,
	StateDeadlineExceeded, StateStalled, StatePoisoned, StateShed,
}

// terminalStates is the label universe of jobs_completed_total.
var terminalStates = []JobState{
	StateDone, StateDegraded, StateFailed, StateCancelled,
	StateDeadlineExceeded, StateStalled, StatePoisoned,
}

// render writes the exposition. Families appear in a fixed order with
// HELP/TYPE headers; values use Go's shortest-roundtrip float format,
// which the Prometheus text parser accepts.
func (m *metrics) render(w io.Writer, g gaugeSet) {
	m.mu.Lock()
	completed := make(map[JobState]int64, len(m.jobsCompleted))
	for k, v := range m.jobsCompleted {
		completed[k] = v
	}
	cellsExec, cellsReplayed := m.cellsExec, m.cellsReplayed
	cellsRetried, cellsQuar := m.cellsRetried, m.cellsQuar
	cacheHits, cacheMisses, cacheCorrupt := m.cacheHits, m.cacheMisses, m.cacheCorrupt
	submissionsShed, jobsShed, jobsPoisoned := m.submissionsShed, m.jobsShed, m.jobsPoisoned
	m.mu.Unlock()

	head := func(name, help, typ string) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
	}
	num := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

	head("mcmutants_jobs", "Jobs currently tracked, by lifecycle state.", "gauge")
	for _, st := range jobStates {
		fmt.Fprintf(w, "mcmutants_jobs{state=%q} %d\n", st, g.jobsByState[st])
	}
	head("mcmutants_jobs_completed_total", "Jobs that reached a terminal state since the server started.", "counter")
	for _, st := range terminalStates {
		fmt.Fprintf(w, "mcmutants_jobs_completed_total{state=%q} %d\n", st, completed[st])
	}
	head("mcmutants_queue_depth", "Jobs waiting in the FIFO queue.", "gauge")
	fmt.Fprintf(w, "mcmutants_queue_depth %d\n", g.queueDepth)
	head("mcmutants_running_jobs", "Jobs currently executing on the runner pool.", "gauge")
	fmt.Fprintf(w, "mcmutants_running_jobs %d\n", g.runningJobs)
	head("mcmutants_cells_executed_total", "Campaign cells executed since the server started.", "counter")
	fmt.Fprintf(w, "mcmutants_cells_executed_total %d\n", cellsExec)
	head("mcmutants_cells_replayed_total", "Campaign cells replayed from checkpoints since the server started.", "counter")
	fmt.Fprintf(w, "mcmutants_cells_replayed_total %d\n", cellsReplayed)
	head("mcmutants_cells_retried_total", "Cell retry attempts since the server started.", "counter")
	fmt.Fprintf(w, "mcmutants_cells_retried_total %d\n", cellsRetried)
	head("mcmutants_cells_quarantined_total", "Cells skipped by the device circuit breaker since the server started.", "counter")
	fmt.Fprintf(w, "mcmutants_cells_quarantined_total %d\n", cellsQuar)
	head("mcmutants_cells_per_second", "Aggregate execution throughput across running jobs.", "gauge")
	fmt.Fprintf(w, "mcmutants_cells_per_second %s\n", num(g.cellsPerSec))
	head("mcmutants_cache_hits_total", "Cells served from the result cache since the server started.", "counter")
	fmt.Fprintf(w, "mcmutants_cache_hits_total %d\n", cacheHits)
	head("mcmutants_cache_misses_total", "Result-cache consultations that found no entry since the server started.", "counter")
	fmt.Fprintf(w, "mcmutants_cache_misses_total %d\n", cacheMisses)
	head("mcmutants_cache_corrupt_total", "Result-cache entries that failed verification and were quarantined since the server started.", "counter")
	fmt.Fprintf(w, "mcmutants_cache_corrupt_total %d\n", cacheCorrupt)
	head("mcmutants_cache_degraded", "1 while the shared result cache is degraded to pass-through on a storage failure.", "gauge")
	cd := 0
	if g.cacheDegraded {
		cd = 1
	}
	fmt.Fprintf(w, "mcmutants_cache_degraded %d\n", cd)
	head("mcmutants_storage_degraded_jobs", "Jobs whose checkpoint degraded to in-memory on a storage failure.", "gauge")
	fmt.Fprintf(w, "mcmutants_storage_degraded_jobs %d\n", g.storageDegraded)
	head("mcmutants_draining", "1 while the server is draining for shutdown.", "gauge")
	b := 0
	if g.draining {
		b = 1
	}
	fmt.Fprintf(w, "mcmutants_draining %d\n", b)
	head("mcmutants_guard_brownout_level", "Memory brownout level: 0 ok, 1 soft (drain paused, submissions shed), 2 hard (running jobs shed).", "gauge")
	fmt.Fprintf(w, "mcmutants_guard_brownout_level %d\n", int(g.brownoutLevel))
	head("mcmutants_guard_heap_bytes", "Live heap footprint at the last guard sample.", "gauge")
	fmt.Fprintf(w, "mcmutants_guard_heap_bytes %d\n", g.heapBytes)
	head("mcmutants_guard_submissions_shed_total", "Submissions refused with 429 by the memory brownout since the server started.", "counter")
	fmt.Fprintf(w, "mcmutants_guard_submissions_shed_total %d\n", submissionsShed)
	head("mcmutants_guard_jobs_shed_total", "Running jobs cancelled into the shed state by the hard watermark since the server started.", "counter")
	fmt.Fprintf(w, "mcmutants_guard_jobs_shed_total %d\n", jobsShed)
	head("mcmutants_guard_jobs_poisoned_total", "Jobs quarantined as poisoned at boot recovery since the server started.", "counter")
	fmt.Fprintf(w, "mcmutants_guard_jobs_poisoned_total %d\n", jobsPoisoned)
	bi := buildinfo.Get()
	head("mcmutants_build_info", "Build identity of this server; the value is always 1.", "gauge")
	fmt.Fprintf(w, "mcmutants_build_info{version=%q,revision=%q,goversion=%q} 1\n",
		bi.Version, bi.Revision, bi.GoVersion)
}
