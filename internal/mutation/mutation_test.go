package mutation

import (
	"strings"
	"testing"

	"repro/internal/litmus"
	"repro/internal/mm"
)

func suite(t testing.TB) *Suite {
	t.Helper()
	s, err := Generate()
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestTable2Counts asserts the exact totals of Table 2 of the paper.
func TestTable2Counts(t *testing.T) {
	s := suite(t)
	want := map[Mutator][2]int{
		ReversingPoLoc: {8, 8},
		WeakeningPoLoc: {6, 6},
		WeakeningSW:    {6, 18},
	}
	got := s.Counts()
	for m, w := range want {
		if got[m] != w {
			t.Errorf("%v: got conf=%d mut=%d, want conf=%d mut=%d",
				m, got[m][0], got[m][1], w[0], w[1])
		}
	}
	if len(s.Conformance) != 20 {
		t.Errorf("total conformance tests = %d, want 20", len(s.Conformance))
	}
	if len(s.Mutants) != 32 {
		t.Errorf("total mutants = %d, want 32", len(s.Mutants))
	}
}

func TestAllTestsValidate(t *testing.T) {
	for _, tc := range suite(t).All() {
		if err := tc.Validate(); err != nil {
			t.Errorf("%s: %v", tc.Name, err)
		}
	}
}

func TestNamesUniqueAndResolvable(t *testing.T) {
	s := suite(t)
	names := s.Names()
	if len(names) != 52 {
		t.Fatalf("len(Names()) = %d, want 52", len(names))
	}
	seen := map[string]bool{}
	for _, n := range names {
		if seen[n] {
			t.Errorf("duplicate name %q", n)
		}
		seen[n] = true
		if _, ok := s.ByName(n); !ok {
			t.Errorf("ByName(%q) failed", n)
		}
	}
	if _, ok := s.ByName("no-such-test"); ok {
		t.Error("ByName resolved a nonexistent test")
	}
}

// TestConformanceTargetsDisallowed re-verifies every conformance target
// against its model, independently of Generate's internal check.
func TestConformanceTargetsDisallowed(t *testing.T) {
	for _, tc := range suite(t).Conformance {
		x, err := tc.TargetExecution()
		if err != nil {
			t.Fatalf("%s: %v", tc.Name, err)
		}
		v := x.Check(tc.Model)
		if v.Allowed {
			t.Errorf("%s: conformance target %s allowed under %v", tc.Name, tc.Target, tc.Model)
			continue
		}
		if len(v.Cycle) == 0 {
			// A disallowed execution with no single-co cycle arises
			// only when observation pins contradict co directly.
			continue
		}
		if x.ExplainCycle(v.Cycle) == "" {
			t.Errorf("%s: empty cycle explanation", tc.Name)
		}
	}
}

// TestMutantTargetsAllowed re-verifies every mutant target is allowed.
func TestMutantTargetsAllowed(t *testing.T) {
	for _, tc := range suite(t).Mutants {
		x, err := tc.TargetExecution()
		if err != nil {
			t.Fatalf("%s: %v", tc.Name, err)
		}
		if v := x.Check(tc.Model); !v.Allowed {
			t.Errorf("%s: mutant target %s disallowed under %v", tc.Name, tc.Target, tc.Model)
		}
	}
}

// TestReversingPoLocMutantsAreSC: Sec 3.1 notes the reversed behavior is
// allowed even under sequential consistency (execution order b, c, a).
func TestReversingPoLocMutantsAreSC(t *testing.T) {
	s := suite(t)
	_, mutants := s.OfMutator(ReversingPoLoc)
	if len(mutants) != 8 {
		t.Fatalf("got %d reversing po-loc mutants", len(mutants))
	}
	for _, tc := range mutants {
		x, err := tc.TargetExecution()
		if err != nil {
			t.Fatalf("%s: %v", tc.Name, err)
		}
		if v := x.Check(mm.SC); !v.Allowed {
			t.Errorf("%s: target should be allowed under SC", tc.Name)
		}
	}
}

// TestWeakeningMutantsNotSC: mutants of mutators 2 and 3 are weak
// behaviors — allowed by the relaxed model, forbidden under SC.
func TestWeakeningMutantsNotSC(t *testing.T) {
	s := suite(t)
	for _, mutator := range []Mutator{WeakeningPoLoc, WeakeningSW} {
		_, mutants := s.OfMutator(mutator)
		for _, tc := range mutants {
			x, err := tc.TargetExecution()
			if err != nil {
				t.Fatalf("%s: %v", tc.Name, err)
			}
			if v := x.Check(mm.SC); v.Allowed {
				t.Errorf("%s (%v): weak target allowed under SC", tc.Name, mutator)
			}
		}
	}
}

// TestMutantBasesExist checks every mutant points at a real conformance
// test of the same mutator family.
func TestMutantBasesExist(t *testing.T) {
	s := suite(t)
	for _, mt := range s.Mutants {
		base, ok := s.ByName(mt.Base)
		if !ok {
			t.Errorf("%s: base %q missing", mt.Name, mt.Base)
			continue
		}
		if base.IsMutant {
			t.Errorf("%s: base %q is itself a mutant", mt.Name, mt.Base)
		}
		if base.Mutator != mt.Mutator {
			t.Errorf("%s: base mutator %q != mutant mutator %q", mt.Name, base.Mutator, mt.Mutator)
		}
	}
}

func TestMutantsOf(t *testing.T) {
	s := suite(t)
	if got := s.MutantsOf("MP-relacq"); len(got) != 3 {
		t.Fatalf("MP-relacq has %d mutants, want 3", len(got))
	}
	if got := s.MutantsOf("CoRR"); len(got) != 1 || got[0].Name != "CoRR-mutant" {
		t.Fatalf("MutantsOf(CoRR) = %v", got)
	}
	if got := s.MutantsOf("nonexistent"); got != nil {
		t.Fatalf("MutantsOf(nonexistent) = %v", got)
	}
}

// TestReversingDisruptorSwapsSyntax: each reversing po-loc mutant must
// be its base with thread 0's two instructions swapped.
func TestReversingDisruptorSwapsSyntax(t *testing.T) {
	s := suite(t)
	conf, _ := s.OfMutator(ReversingPoLoc)
	for _, base := range conf {
		muts := s.MutantsOf(base.Name)
		if len(muts) != 1 {
			t.Fatalf("%s: %d mutants, want 1", base.Name, len(muts))
		}
		mt := muts[0]
		b0, m0 := base.Threads[0].Instrs, mt.Threads[0].Instrs
		if len(b0) != 2 || len(m0) != 2 {
			t.Fatalf("%s: thread 0 length %d/%d", base.Name, len(b0), len(m0))
		}
		if b0[0].Label != m0[1].Label || b0[1].Label != m0[0].Label {
			t.Errorf("%s: mutant thread 0 is not the base swapped", base.Name)
		}
		if b0[0].Op != m0[1].Op || b0[1].Op != m0[0].Op {
			t.Errorf("%s: opcodes not preserved by swap", base.Name)
		}
	}
}

// TestWeakeningPoLocDisruptorMovesLocation: mutants of mutator 2 use
// two locations where their base used one.
func TestWeakeningPoLocDisruptorMovesLocation(t *testing.T) {
	s := suite(t)
	conf, mutants := s.OfMutator(WeakeningPoLoc)
	for _, base := range conf {
		if base.NumLocs != 1 {
			t.Errorf("%s: conformance test uses %d locations, want 1", base.Name, base.NumLocs)
		}
	}
	for _, mt := range mutants {
		if mt.NumLocs != 2 {
			t.Errorf("%s: mutant uses %d locations, want 2", mt.Name, mt.NumLocs)
		}
		// b (thread 0, slot 1) and c (thread 1, slot 0) moved to y.
		if mt.Threads[0].Instrs[1].Loc != 1 || mt.Threads[1].Instrs[0].Loc != 1 {
			t.Errorf("%s: disruptor did not move b and c to y", mt.Name)
		}
		if mt.Threads[0].Instrs[0].Loc != 0 || mt.Threads[1].Instrs[1].Loc != 0 {
			t.Errorf("%s: a and d should remain on x", mt.Name)
		}
	}
}

// TestWeakeningSWDisruptorRemovesFences: each sw conformance test has 2
// fences; its mutants have 1, 1 and 0.
func TestWeakeningSWDisruptorRemovesFences(t *testing.T) {
	s := suite(t)
	conf, _ := s.OfMutator(WeakeningSW)
	countFences := func(tc *litmus.Test) int {
		n := 0
		for _, th := range tc.Threads {
			for _, in := range th.Instrs {
				if in.Op == litmus.OpFence {
					n++
				}
			}
		}
		return n
	}
	for _, base := range conf {
		if got := countFences(base); got != 2 {
			t.Errorf("%s: %d fences, want 2", base.Name, got)
		}
		muts := s.MutantsOf(base.Name)
		if len(muts) != 3 {
			t.Fatalf("%s: %d mutants, want 3", base.Name, len(muts))
		}
		fenceCounts := map[int]int{}
		for _, mt := range muts {
			n := countFences(mt)
			fenceCounts[n]++
			if mt.FencesRemoved != 2-n {
				t.Errorf("%s: FencesRemoved=%d but has %d fences", mt.Name, mt.FencesRemoved, n)
			}
		}
		if fenceCounts[0] != 1 || fenceCounts[1] != 2 {
			t.Errorf("%s: fence counts across mutants = %v, want {0:1, 1:2}", base.Name, fenceCounts)
		}
	}
}

// TestSWMutantTargetMatchesBase: Mutator 3 preserves the value pattern;
// only fences are removed.
func TestSWMutantTargetMatchesBase(t *testing.T) {
	s := suite(t)
	for _, base := range s.Conformance {
		if base.Mutator != WeakeningSW.String() {
			continue
		}
		for _, mt := range s.MutantsOf(base.Name) {
			if base.Target.String() != mt.Target.String() {
				t.Errorf("%s: target %q != base target %q",
					mt.Name, mt.Target, base.Target)
			}
		}
	}
}

// TestObserverThreadsOnlyWhereNeeded: observers appear exactly on the
// all-write conformance tests that final state cannot pin.
func TestObserverThreadsOnlyWhereNeeded(t *testing.T) {
	s := suite(t)
	wantObserver := map[string]bool{
		"CoWW": true, "CoWW-mutant": true, // swapped writes still need a witness
		"S-CO": true, "R-CO": true, "2+2W-CO": true,
	}
	for _, tc := range s.All() {
		has := false
		for _, th := range tc.Threads {
			if th.Observer {
				has = true
			}
		}
		if has != wantObserver[tc.Name] {
			t.Errorf("%s: observer=%v, want %v", tc.Name, has, wantObserver[tc.Name])
		}
	}
}

// TestFamousTestsPresent: the tests named in the paper's narrative must
// exist with the right roles.
func TestFamousTestsPresent(t *testing.T) {
	s := suite(t)
	cases := []struct {
		name     string
		isMutant bool
		mutator  Mutator
	}{
		{"CoRR", false, ReversingPoLoc},          // Fig. 1a, Intel bug
		{"MP-relacq", false, WeakeningSW},        // Fig. 1b, AMD bug
		{"MP-CO", false, WeakeningPoLoc},         // Sec. 5.4, Kepler bug
		{"MP", true, WeakeningPoLoc},             // classic weak test as mutant
		{"CoRR-mutant", true, ReversingPoLoc},    // fine-grained interleaving probe
		{"MP-relacq-nofence", true, WeakeningSW}, // both fences dropped
	}
	for _, c := range cases {
		tc, ok := s.ByName(c.name)
		if !ok {
			t.Errorf("missing test %q", c.name)
			continue
		}
		if tc.IsMutant != c.isMutant {
			t.Errorf("%s: IsMutant=%v, want %v", c.name, tc.IsMutant, c.isMutant)
		}
		if tc.Mutator != c.mutator.String() {
			t.Errorf("%s: mutator %q, want %q", c.name, tc.Mutator, c.mutator)
		}
	}
}

func TestMutatorNamesRoundTrip(t *testing.T) {
	for _, m := range Mutators() {
		got, ok := MutatorByName(m.String())
		if !ok || got != m {
			t.Errorf("MutatorByName(%q) = %v, %v", m.String(), got, ok)
		}
	}
	if _, ok := MutatorByName("bogus"); ok {
		t.Error("MutatorByName accepted a bogus name")
	}
}

// TestRMWVariantRules checks Sec 3.1's RMW substitution constraints on
// the generated reversing po-loc RMW variants.
func TestRMWVariantRules(t *testing.T) {
	s := suite(t)
	// CoRR-rmw: a stays a read (a trailing RMW write would intrude
	// between a and b).
	tc, _ := s.ByName("CoRR-rmw")
	if tc.Threads[0].Instrs[0].Op != litmus.OpLoad {
		t.Error("CoRR-rmw: event a must remain a plain load")
	}
	if tc.Threads[0].Instrs[1].Op != litmus.OpExchange {
		t.Error("CoRR-rmw: event b must be an RMW")
	}
	if tc.Threads[1].Instrs[0].Op != litmus.OpExchange {
		t.Error("CoRR-rmw: event c must be an RMW")
	}
	// CoRW-rmw: b stays a write (a leading RMW read would intrude).
	tc, _ = s.ByName("CoRW-rmw")
	if tc.Threads[0].Instrs[1].Op != litmus.OpStore {
		t.Error("CoRW-rmw: event b must remain a plain store")
	}
	// CoWR-rmw: all three become RMWs.
	tc, _ = s.ByName("CoWR-rmw")
	for ti, th := range tc.Threads {
		for ii, in := range th.Instrs {
			if in.Op != litmus.OpExchange {
				t.Errorf("CoWR-rmw: t%d i%d is %v, want RMW", ti, ii, in.Op)
			}
		}
	}
	// CoWW-rmw: b stays a write.
	tc, _ = s.ByName("CoWW-rmw")
	if tc.Threads[0].Instrs[1].Op != litmus.OpStore {
		t.Error("CoWW-rmw: event b must remain a plain store")
	}
}

// TestSWConformanceSatisfiesSWPattern: every sw-mutator conformance test
// must have a write after thread 0's fence and a read before thread 1's
// fence (the structural requirement for synchronizes-with).
func TestSWConformanceSatisfiesSWPattern(t *testing.T) {
	s := suite(t)
	conf, _ := s.OfMutator(WeakeningSW)
	for _, tc := range conf {
		t0, t1 := tc.Threads[0].Instrs, tc.Threads[1].Instrs
		if len(t0) != 3 || t0[1].Op != litmus.OpFence {
			t.Errorf("%s: thread 0 shape wrong", tc.Name)
			continue
		}
		if len(t1) != 3 || t1[1].Op != litmus.OpFence {
			t.Errorf("%s: thread 1 shape wrong", tc.Name)
			continue
		}
		if !t0[2].Writes() {
			t.Errorf("%s: event after release fence must write", tc.Name)
		}
		if !t1[0].Reads() {
			t.Errorf("%s: event before acquire fence must read", tc.Name)
		}
	}
}

func TestMutatorStringUnknown(t *testing.T) {
	if got := Mutator(99).String(); !strings.Contains(got, "99") {
		t.Errorf("unknown mutator String() = %q", got)
	}
}

func TestAllOrderIsStable(t *testing.T) {
	a := suite(t)
	b := suite(t)
	an, bn := a.All(), b.All()
	if len(an) != len(bn) {
		t.Fatal("suites differ in size")
	}
	for i := range an {
		if an[i].Name != bn[i].Name {
			t.Fatalf("generation order unstable at %d: %s vs %s", i, an[i].Name, bn[i].Name)
		}
	}
}

func BenchmarkGenerate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Generate(); err != nil {
			b.Fatal(err)
		}
	}
}

// TestPruneForTSO reproduces Sec. 3.4's example: on a TSO-strength
// implementation only the reversing po-loc mutants (allowed even under
// SC) and the store-buffering shape remain observable.
func TestPruneForTSO(t *testing.T) {
	s := suite(t)
	pruned, removed, err := Prune(s, mm.TSO)
	if err != nil {
		t.Fatal(err)
	}
	if len(pruned.Conformance) != 20 {
		t.Fatalf("pruning touched conformance tests: %d", len(pruned.Conformance))
	}
	if len(pruned.Mutants)+len(removed) != 32 {
		t.Fatalf("mutant accounting broken: %d + %d", len(pruned.Mutants), len(removed))
	}
	// All 8 reversing po-loc mutants survive (they are SC-allowed).
	_, rev := pruned.OfMutator(ReversingPoLoc)
	if len(rev) != 8 {
		t.Errorf("reversing po-loc mutants pruned: %d/8 left", len(rev))
	}
	// Of the weakening po-loc mutants, exactly SB and R survive TSO:
	// their cycles are broken by removing write-to-read program order
	// (SB has two such pairs, R one); MP, LB, S and 2+2W have none.
	_, weak := pruned.OfMutator(WeakeningPoLoc)
	names := make([]string, 0, len(weak))
	for _, m := range weak {
		names = append(names, m.Name)
	}
	if len(weak) != 2 || names[0] != "SB" || names[1] != "R" {
		t.Errorf("weakening po-loc survivors = %v, want [SB R]", names)
	}
	// Lookup works on the pruned suite.
	if _, ok := pruned.ByName("SB"); !ok {
		t.Error("pruned suite lost SB")
	}
	if _, ok := pruned.ByName("MP"); ok {
		t.Error("pruned suite still resolves MP")
	}
	t.Logf("TSO pruning keeps %d/32 mutants; removed: %v", len(pruned.Mutants), removed)
}

// TestPruneIdentityUnderOwnModel: pruning with each test's own
// (specification) model removes nothing, since every mutant target is
// allowed by construction.
func TestPruneIdentityUnderOwnModel(t *testing.T) {
	s := suite(t)
	pruned, removed, err := Prune(s, mm.RelAcqSCPerLocation)
	if err != nil {
		t.Fatal(err)
	}
	// Mutants of mutators 1 and 2 are classified under SC-per-location,
	// which rel-acq only strengthens with fence rules; the fence-free
	// mutants have no sw edges, so nothing is removed.
	if len(removed) != 0 {
		t.Fatalf("rel-acq pruning removed %v", removed)
	}
	if len(pruned.Mutants) != 32 {
		t.Fatalf("%d mutants left", len(pruned.Mutants))
	}
}

// TestPruneUnderSC keeps exactly the reversing po-loc mutants: they are
// the only mutants whose targets are sequentially consistent.
func TestPruneUnderSC(t *testing.T) {
	s := suite(t)
	pruned, removed, err := Prune(s, mm.SC)
	if err != nil {
		t.Fatal(err)
	}
	if len(pruned.Mutants) != 8 {
		t.Fatalf("SC pruning kept %d mutants, want 8", len(pruned.Mutants))
	}
	for _, m := range pruned.Mutants {
		if m.Mutator != ReversingPoLoc.String() {
			t.Errorf("SC survivor %s from %s", m.Name, m.Mutator)
		}
	}
	if len(removed) != 24 {
		t.Fatalf("removed %d, want 24", len(removed))
	}
}

// TestSuiteWideModelInclusions extends the catalog inclusion property
// to all 52 generated tests: SC ⊆ TSO ⊆ SC-per-location, and the
// rel-acq model is a subset of plain coherence.
func TestSuiteWideModelInclusions(t *testing.T) {
	for _, tc := range suite(t).All() {
		sc := tc.AllowedOutcomes(mm.SC)
		tso := tc.AllowedOutcomes(mm.TSO)
		coh := tc.AllowedOutcomes(mm.SCPerLocation)
		ra := tc.AllowedOutcomes(mm.RelAcqSCPerLocation)
		for k := range sc {
			if !tso[k] {
				t.Errorf("%s: %s SC-allowed but TSO-forbidden", tc.Name, k)
			}
		}
		for k := range tso {
			if !coh[k] {
				t.Errorf("%s: %s TSO-allowed but coherence-forbidden", tc.Name, k)
			}
		}
		for k := range ra {
			if !coh[k] {
				t.Errorf("%s: %s rel-acq-allowed but coherence-forbidden", tc.Name, k)
			}
		}
	}
}

// TestSuiteFormatsRoundTrip: every generated test survives the textual
// litmus format.
func TestSuiteFormatsRoundTrip(t *testing.T) {
	for _, tc := range suite(t).All() {
		back, err := litmus.ParseString(litmus.Format(tc))
		if err != nil {
			t.Fatalf("%s: %v", tc.Name, err)
		}
		if back.Name != tc.Name || back.Target.String() != tc.Target.String() ||
			back.Instructions() != tc.Instructions() || back.IsMutant != tc.IsMutant ||
			back.Base != tc.Base || back.Mutator != tc.Mutator {
			t.Errorf("%s: round trip changed the test", tc.Name)
		}
	}
}

// TestSuiteWideOracleEquivalence cross-validates the axiomatic checker
// against the operational oracles over every generated test: the
// interleaving machine for SC and the store-buffer machine for TSO
// must reach exactly the axiomatically allowed outcome sets.
func TestSuiteWideOracleEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("oracle equivalence over 52 tests is slow")
	}
	for _, tc := range suite(t).All() {
		op := tc.SCOutcomes()
		ax := tc.AllowedOutcomes(mm.SC)
		for k := range op {
			if !ax[k] {
				t.Errorf("%s: SC machine reached %s, axiomatically forbidden", tc.Name, k)
			}
		}
		for k := range ax {
			if !op[k] {
				t.Errorf("%s: axiomatically SC-allowed %s unreachable on the machine", tc.Name, k)
			}
		}
		opT := tc.TSOOutcomes()
		axT := tc.AllowedOutcomes(mm.TSO)
		for k := range opT {
			if !axT[k] {
				t.Errorf("%s: TSO machine reached %s, axiomatically forbidden", tc.Name, k)
			}
		}
		for k := range axT {
			if !opT[k] {
				t.Errorf("%s: axiomatically TSO-allowed %s unreachable on the machine", tc.Name, k)
			}
		}
	}
}
