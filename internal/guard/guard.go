// Package guard is the campaign service's supervision and resource
// governance layer: per-job execution budgets, a progress-stall
// watchdog, and a memory-watermark watcher driving overload brownout.
//
// The package holds pure policy machinery — no goroutines of its own
// beyond what callers choose to run, no HTTP, no storage. The serve
// subsystem wires it into the job lifecycle: budgets are validated at
// admission and enforced through the existing context hierarchy, the
// watchdog observes the serialized per-job Progress snapshot stream,
// and the memory watcher's levels gate queue drain and submission.
//
// Every decision is a function of an injected Clock (or an injected
// memory reader), so tests reproduce each transition deterministically
// with FakeClock — no wall-clock sleeps anywhere.
package guard

import (
	"sync"
	"time"
)

// Clock abstracts time for watchdog decisions. Production uses
// SystemClock; tests drive transitions with FakeClock.
type Clock interface {
	Now() time.Time
}

// SystemClock is the real wall clock.
type SystemClock struct{}

// Now returns time.Now.
func (SystemClock) Now() time.Time { return time.Now() }

// FakeClock is a manually-advanced Clock for deterministic tests.
type FakeClock struct {
	mu sync.Mutex
	t  time.Time
}

// NewFakeClock starts a fake clock at the given instant.
func NewFakeClock(start time.Time) *FakeClock {
	return &FakeClock{t: start}
}

// Now returns the current fake instant.
func (c *FakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

// Advance moves the fake clock forward by d.
func (c *FakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}
