// Chaos demonstrates graceful degradation on a faulty device fleet:
// every device runs under a deterministic fault-injection model
// (launch failures, hangs, result corruption), the harness discards
// corrupted iterations instead of misclassifying them as memory-model
// violations, and the scheduler's per-device circuit breaker
// quarantines a device that fails repeatedly so the campaign finishes
// on the survivors. Every dropped cell is recorded — nothing is
// silently skipped — and the whole run is byte-identical at any worker
// count.
//
//	go run ./examples/chaos
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/gpu"
	"repro/internal/harness"
	"repro/internal/sched"
)

func main() {
	study, err := core.NewStudy()
	if err != nil {
		log.Fatal(err)
	}
	env := harness.PTEBaseline(16, 32)

	// A three-device fleet: Intel and NVIDIA are mildly flaky (2%
	// per-launch fault rate), while the AMD device is seriously
	// unhealthy — a 20% fault rate that trips the circuit breaker —
	// and dies for good after twelve injected faults, exercising the
	// permanent-loss path.
	flaky := gpu.UniformFaults(7, 0.02)
	dying := gpu.UniformFaults(7, 0.20)
	dying.LossAfter = 12
	platforms := []core.Platform{
		{Device: "AMD", Faults: dying},
		{Device: "Intel", Faults: flaky},
		{Device: "NVIDIA", Faults: flaky},
	}

	opts := core.CampaignOptions{
		Workers: 4,
		Retries: 1, // one retry per cell: transient faults get a second chance
		Collect: true,
		Breaker: &sched.BreakerOptions{Threshold: 3, Cooldown: 2},
	}
	reports, err := study.CheckFleetConformance(platforms, env, 8, 7, opts)
	if err != nil {
		log.Fatal(err)
	}

	totalFailed, totalQuarantined := 0, 0
	for _, rep := range reports {
		failed := rep.Failed()
		fmt.Printf("=== %s: %d/%d conformance cells produced data ===\n",
			rep.Platform.Device, len(rep.Findings)-len(failed), len(rep.Findings))
		for _, f := range failed {
			tag := "failed"
			if f.Quarantined {
				tag = "quarantined"
			}
			fmt.Printf("  %-22s %s: %s\n", f.Test, tag, f.Error)
			totalFailed++
			if f.Quarantined {
				totalQuarantined++
			}
		}
		for _, b := range rep.Buggy() {
			fmt.Printf("  %-22s VIOLATED (%d/%d) — should not happen on a conformant fleet\n",
				b.Test, b.Violations, b.Instances)
		}
		for _, h := range rep.Health {
			state := "closed"
			if h.Open {
				state = "open"
			}
			fmt.Printf("  breaker %s: %d cells, %d failed, %d quarantined, %d retries\n",
				state, h.Cells, h.Failed, h.Quarantined, h.Retries)
		}
		fmt.Println()
	}
	fmt.Printf("fleet summary: %d cell(s) produced no data, %d of them quarantined\n",
		totalFailed, totalQuarantined)
	fmt.Println("every dropped cell above is recorded — the campaign degraded gracefully instead of aborting")
}
