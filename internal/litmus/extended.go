package litmus

import "repro/internal/mm"

// Extended catalog: classic litmus tests beyond the paper's two-thread
// suite. The paper's methodology generalizes to arbitrary thread
// counts (its PTE permutation composes per role); these shapes — the
// standard three- and four-thread causality tests — exercise that
// generality and are useful when exploring scopes and models beyond
// the WebGPU subset.

// WRC is write-to-read causality: thread 0 writes the data, thread 1
// observes it and raises a flag, thread 2 observes the flag but misses
// the data. Allowed under SC-per-location (no per-location cycle),
// forbidden under SC.
func WRC() *Test {
	return NewBuilder("WRC", mm.SCPerLocation).
		Thread().StoreL(0, 1, "a").
		Thread().LoadL(0, "b").StoreL(1, 1, "c").
		Thread().LoadL(1, "d").LoadL(0, "e").
		Target(Condition{Regs: map[int]mm.Val{0: 1, 1: 1, 2: 0}}).
		Build()
}

// ISA2 chains causality across three locations: data, then two hops of
// flags; the final reader sees the last flag but stale data.
func ISA2() *Test {
	return NewBuilder("ISA2", mm.SCPerLocation).
		Thread().StoreL(0, 1, "a").StoreL(1, 1, "b").
		Thread().LoadL(1, "c").StoreL(2, 1, "d").
		Thread().LoadL(2, "e").LoadL(0, "f").
		Target(Condition{Regs: map[int]mm.Val{0: 1, 1: 1, 2: 0}}).
		Build()
}

// IRIW is independent reads of independent writes: two writers to
// different locations, two readers observing them in opposite orders.
// The weak outcome is the classic non-multi-copy-atomicity test; under
// plain relaxed atomics it is also reachable by read-read reordering,
// so SC-per-location allows it while SC does not.
func IRIW() *Test {
	return NewBuilder("IRIW", mm.SCPerLocation).
		Thread().StoreL(0, 1, "a").
		Thread().StoreL(1, 1, "b").
		Thread().LoadL(0, "c").LoadL(1, "d").
		Thread().LoadL(1, "e").LoadL(0, "f").
		Target(Condition{Regs: map[int]mm.Val{0: 1, 1: 0, 2: 1, 3: 0}}).
		Build()
}

// RWC is read-to-write causality: a reader observes the data then
// misses a flag whose writer already overtook the data in its own
// view.
func RWC() *Test {
	return NewBuilder("RWC", mm.SCPerLocation).
		Thread().StoreL(0, 1, "a").
		Thread().LoadL(0, "b").LoadL(1, "c").
		Thread().StoreL(1, 1, "d").LoadL(0, "e").
		Target(Condition{Regs: map[int]mm.Val{0: 1, 1: 0, 2: 0}}).
		Build()
}

// ExtendedCatalog returns the multi-thread classics.
func ExtendedCatalog() []*Test {
	return []*Test{WRC(), ISA2(), IRIW(), RWC()}
}
