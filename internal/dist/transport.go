package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
)

// Transport is a worker's view of one campaign's coordinator — the
// seam chaos tests inject faults through, mirroring diskio.FS. The
// real implementation is HTTPTransport; Hub.LocalTransport serves
// in-process workers and tests.
type Transport interface {
	Info(ctx context.Context) (*WorkInfo, error)
	Acquire(ctx context.Context, req AcquireRequest) (*AcquireResponse, error)
	Renew(ctx context.Context, req RenewRequest) (*RenewResponse, error)
	Deliver(ctx context.Context, req DeliverRequest) (*DeliverResponse, error)
}

// RPCError is a coordinator-side rejection (non-2xx HTTP status or a
// hub-level lookup failure).
type RPCError struct {
	Status int
	Msg    string
}

func (e *RPCError) Error() string {
	return fmt.Sprintf("dist: rpc failed: status %d: %s", e.Status, e.Msg)
}

// localTransport resolves the coordinator through the hub on every
// call, so a worker outlives register/unregister cycles the same way
// an HTTP client would (it just starts seeing errors).
type localTransport struct {
	hub  *Hub
	name string
}

// LocalTransport returns an in-process Transport for the named
// campaign on this hub.
func (h *Hub) LocalTransport(name string) Transport {
	return &localTransport{hub: h, name: name}
}

func (t *localTransport) coord() (*Coordinator, error) {
	c, ok := t.hub.Get(t.name)
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownCampaign, t.name)
	}
	return c, nil
}

func (t *localTransport) Info(ctx context.Context) (*WorkInfo, error) {
	c, err := t.coord()
	if err != nil {
		return nil, err
	}
	return c.Info(), nil
}

func (t *localTransport) Acquire(ctx context.Context, req AcquireRequest) (*AcquireResponse, error) {
	c, err := t.coord()
	if err != nil {
		return nil, err
	}
	return c.Acquire(req), nil
}

func (t *localTransport) Renew(ctx context.Context, req RenewRequest) (*RenewResponse, error) {
	c, err := t.coord()
	if err != nil {
		return nil, err
	}
	return c.Renew(req), nil
}

func (t *localTransport) Deliver(ctx context.Context, req DeliverRequest) (*DeliverResponse, error) {
	c, err := t.coord()
	if err != nil {
		return nil, err
	}
	return c.Deliver(req), nil
}

// HTTPTransport talks to a coordinator hub over HTTP.
type HTTPTransport struct {
	// BaseURL is the hub root, e.g. "http://host:port".
	BaseURL string
	// Campaign is the hub registration name.
	Campaign string
	// Client is the HTTP client; nil means http.DefaultClient.
	Client *http.Client
}

func (t *HTTPTransport) client() *http.Client {
	if t.Client != nil {
		return t.Client
	}
	return http.DefaultClient
}

func (t *HTTPTransport) url(parts ...string) string {
	base := strings.TrimSuffix(t.BaseURL, "/")
	return base + "/dist/v1/campaigns/" + t.Campaign + strings.Join(parts, "")
}

// doJSON performs one request and decodes the response into out.
func doJSON(ctx context.Context, client *http.Client, method, url string, in, out any) error {
	var body io.Reader
	if in != nil {
		data, err := json.Marshal(in)
		if err != nil {
			return err
		}
		body = bytes.NewReader(data)
	}
	req, err := http.NewRequestWithContext(ctx, method, url, body)
	if err != nil {
		return err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		return &RPCError{Status: resp.StatusCode, Msg: strings.TrimSpace(string(data))}
	}
	return json.Unmarshal(data, out)
}

func (t *HTTPTransport) Info(ctx context.Context) (*WorkInfo, error) {
	var out WorkInfo
	if err := doJSON(ctx, t.client(), http.MethodGet, t.url(), nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

func (t *HTTPTransport) Acquire(ctx context.Context, req AcquireRequest) (*AcquireResponse, error) {
	var out AcquireResponse
	if err := doJSON(ctx, t.client(), http.MethodPost, t.url("/acquire"), req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

func (t *HTTPTransport) Renew(ctx context.Context, req RenewRequest) (*RenewResponse, error) {
	var out RenewResponse
	if err := doJSON(ctx, t.client(), http.MethodPost, t.url("/renew"), req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

func (t *HTTPTransport) Deliver(ctx context.Context, req DeliverRequest) (*DeliverResponse, error) {
	var out DeliverResponse
	if err := doJSON(ctx, t.client(), http.MethodPost, t.url("/deliver"), req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// ListCampaigns fetches the hub's campaign directory — what the
// `mcmutants work` verb polls to find work.
func ListCampaigns(ctx context.Context, baseURL string, client *http.Client) ([]WorkInfo, error) {
	if client == nil {
		client = http.DefaultClient
	}
	var out []WorkInfo
	url := strings.TrimSuffix(baseURL, "/") + "/dist/v1/campaigns"
	if err := doJSON(ctx, client, http.MethodGet, url, nil, &out); err != nil {
		return nil, err
	}
	return out, nil
}
