package sched

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
)

// Manifest returns a stable hex digest of the campaign spec: its name,
// seed and ordered cell identities. Two specs share a manifest exactly
// when a checkpoint written by one is a valid resume point for the
// other — same cells, same order, same seed, so every cell's RNG
// stream and therefore its result is the same.
func (s *Spec) Manifest() string {
	h := sha256.New()
	var seed [8]byte
	binary.LittleEndian.PutUint64(seed[:], s.Seed)
	writeField(h, s.Name)
	h.Write(seed[:])
	var n [8]byte
	binary.LittleEndian.PutUint64(n[:], uint64(len(s.Cells)))
	h.Write(n[:])
	for _, c := range s.Cells {
		writeField(h, c.Key)
		writeField(h, c.Device)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// cellDigestTag versions the cell-digest preimage layout. Bump it when
// the encoding below changes so stale cache entries keyed under the old
// layout can never alias new ones.
const cellDigestTag = "mcmutants-cell/v1"

// CellDigest returns the content address of one cell's result: a hex
// SHA-256 over the digest layout tag, a caller-supplied salt capturing
// every workload parameter outside the spec (iteration counts, fault
// model, retry policy — whatever the exec closure bakes in), and the
// spec fields the cell's RNG stream derives from (name, seed, cell key,
// device). Two cells share a digest exactly when executing them must
// produce the same value, which is what makes the digest a safe key for
// the cross-campaign result cache. The encoding is the same
// length-prefixed scheme Manifest uses, so field boundaries cannot
// alias.
func (s *Spec) CellDigest(salt string, c Cell) string {
	h := sha256.New()
	writeField(h, cellDigestTag)
	writeField(h, salt)
	writeField(h, s.Name)
	var seed [8]byte
	binary.LittleEndian.PutUint64(seed[:], s.Seed)
	h.Write(seed[:])
	writeField(h, c.Key)
	writeField(h, c.Device)
	return hex.EncodeToString(h.Sum(nil))
}

// writeField writes a length-prefixed string so field boundaries cannot
// alias ("ab","c" vs "a","bc").
func writeField(h interface{ Write([]byte) (int, error) }, s string) {
	var n [8]byte
	binary.LittleEndian.PutUint64(n[:], uint64(len(s)))
	h.Write(n[:])
	h.Write([]byte(s))
}
