package mutation

import "repro/internal/mm"

// Mutator 1: reversing po-loc on three events (Sec. 3.1, Fig. 3a).
//
// The template has two same-location accesses a, b in thread 0 (related
// by po-loc) and one access c in thread 1, with communication edges
// closing a happens-before cycle that SC-per-location forbids. The
// template is instantiated for the four read/write combinations of
// (a, b) with c a write, then once more per combination with the
// maximum legal number of RMWs substituted:
//
//   - a may become an RMW only when it is a write (a read's trailing
//     RMW write would intrude between a and b);
//   - b may become an RMW only when it is a read (a write's leading
//     RMW read would intrude between a and b);
//   - c may always become an RMW.
//
// The edge disruptor swaps a and b in program order, which removes the
// cycle: each mutant's target behavior is allowed even under SC, via
// the interleaving b, c, a, so killing these mutants measures a testing
// environment's ability to expose fine-grained interleavings.
func reversingPoLocSpecs() []tspec {
	const x = 0
	type shape struct {
		name string
		// t0 builds thread 0's two events in conformance order (a, b);
		// t1 is the single event c. Observers witness coherence chains
		// for the all-write case; finals pin coherence-last writes.
		t0       []espec
		t1       []espec
		observer []mm.Val
		finals   map[int]mm.Val
	}
	shapes := []shape{
		{
			// CoRR: a and b read; seeing the new value then the old one
			// reverses coherence (Fig. 1a / Fig. 2a).
			name: "CoRR",
			t0:   []espec{ereadV(x, 1, "a"), ereadV(x, 0, "b")},
			t1:   []espec{ewrite(x, 1, "c")},
		},
		{
			// CoRW: a reads c's value yet c lands coherence-last.
			name:   "CoRW",
			t0:     []espec{ereadV(x, 2, "a"), ewrite(x, 1, "b")},
			t1:     []espec{ewrite(x, 2, "c")},
			finals: map[int]mm.Val{x: 2},
		},
		{
			// CoWR: b reads c's value yet a lands coherence-last.
			name:   "CoWR",
			t0:     []espec{ewrite(x, 1, "a"), ereadV(x, 2, "b")},
			t1:     []espec{ewrite(x, 2, "c")},
			finals: map[int]mm.Val{x: 1},
		},
		{
			// CoWW: all writes; the observer witnesses the coherence
			// chain b, c, a, which contradicts a-before-b program order.
			name:     "CoWW",
			t0:       []espec{ewrite(x, 1, "a"), ewrite(x, 2, "b")},
			t1:       []espec{ewrite(x, 3, "c")},
			observer: []mm.Val{2, 3, 1},
		},
		{
			// CoRR-rmw: b and c become RMWs; c reads b's write, pinning
			// b coherence-before c while a still sees c and b sees the
			// initial state.
			name: "CoRR-rmw",
			t0:   []espec{ereadV(x, 2, "a"), ermwV(x, 1, 0, "b")},
			t1:   []espec{ermwV(x, 2, 1, "c")},
		},
		{
			// CoRW-rmw: c becomes an RMW reading b's value.
			name: "CoRW-rmw",
			t0:   []espec{ereadV(x, 2, "a"), ewrite(x, 1, "b")},
			t1:   []espec{ermwV(x, 2, 1, "c")},
		},
		{
			// CoWR-rmw: all three become RMWs; the read chain
			// c(0) -> b(c's value) -> a(b's value) witnesses the
			// coherence order c, b, a, which contradicts program order.
			name:   "CoWR-rmw",
			t0:     []espec{ermwV(x, 1, 2, "a"), ermwV(x, 2, 3, "b")},
			t1:     []espec{ermwV(x, 3, 0, "c")},
			finals: map[int]mm.Val{x: 1},
		},
		{
			// CoWW-rmw: a and c become RMWs whose reads witness the
			// chain b, c, a without an observer thread.
			name:   "CoWW-rmw",
			t0:     []espec{ermwV(x, 1, 3, "a"), ewrite(x, 2, "b")},
			t1:     []espec{ermwV(x, 3, 2, "c")},
			finals: map[int]mm.Val{x: 1},
		},
	}
	var specs []tspec
	for _, sh := range shapes {
		conf := tspec{
			name:     sh.name,
			mutator:  ReversingPoLoc,
			model:    mm.SCPerLocation,
			threads:  [][]espec{sh.t0, sh.t1},
			observer: sh.observer,
			obsLoc:   x,
			finals:   sh.finals,
		}
		specs = append(specs, conf)
		// The disruptor: swap a and b in program order. Labels, values
		// and the target value pattern are preserved; only syntax moves.
		swapped := []espec{sh.t0[1], sh.t0[0]}
		mut := conf
		mut.name = sh.name + "-mutant"
		mut.isMutant = true
		mut.base = sh.name
		mut.threads = [][]espec{swapped, sh.t1}
		specs = append(specs, mut)
	}
	return specs
}
