package gpu

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"repro/internal/xrand"
)

// Golden byte-identity fingerprints for the executor.
//
// The data-oriented executor rewrite must keep every observable byte
// identical to the original pointer-chasing interpreter: the same RNG
// draw sequence, the same trace events, the same stats, the same final
// registers and memory. These tests pin that contract. The committed
// testdata/device_golden.json was generated from the pre-rewrite
// implementation (regenerate with UPDATE_GOLDEN=1), so any divergence
// — a reordered candidate scan, an extra or missing RNG draw, a
// changed completion order — fails here with the scenario name.
//
// The scenario battery deliberately covers every executor path: all
// five profiles, each injected bug, fault injection (launch failures,
// watchdog hangs, corruption, device loss), tracing, workgroup wave
// admission, deep MaxOutstanding pipelines, single-line contention,
// and fence/barrier-heavy control flow — warm (device reuse) as well
// as fresh.

// goldenHasher accumulates a deterministic fingerprint.
type goldenHasher struct {
	h   [32]byte
	buf []byte
}

func (g *goldenHasher) u64(v uint64) {
	g.buf = binary.LittleEndian.AppendUint64(g.buf, v)
}

func (g *goldenHasher) u32(v uint32) {
	g.buf = binary.LittleEndian.AppendUint32(g.buf, v)
}

func (g *goldenHasher) str(s string) {
	g.u64(uint64(len(s)))
	g.buf = append(g.buf, s...)
}

// mix folds the accumulated buffer into the running digest.
func (g *goldenHasher) mix() {
	h := sha256.New()
	h.Write(g.h[:])
	h.Write(g.buf)
	h.Sum(g.h[:0])
	g.buf = g.buf[:0]
}

func (g *goldenHasher) sum() string { return hex.EncodeToString(g.h[:]) }

// hashResult folds every observable field of a RunResult, including
// the bit pattern of SimSeconds, so "almost equal" floats fail too.
func (g *goldenHasher) hashResult(res *RunResult) {
	g.u64(uint64(len(res.Registers)))
	for _, regs := range res.Registers {
		g.u64(uint64(len(regs)))
		for _, v := range regs {
			g.u32(v)
		}
	}
	g.u64(uint64(len(res.Memory)))
	for _, v := range res.Memory {
		g.u32(v)
	}
	g.u64(math.Float64bits(res.SimSeconds))
	s := res.Stats
	g.u64(uint64(s.Instructions))
	g.u64(uint64(s.MemOps))
	g.u64(uint64(s.Ticks))
	g.u64(uint64(s.StaleReads))
	g.u64(uint64(s.RelaxedRR))
	g.u64(uint64(s.DroppedFences))
	g.u64(uint64(s.PressureStalls))
	g.u64(uint64(s.CorruptedValues))
	g.u64(uint64(s.MaxGlobalInFlight))
	g.mix()
}

func (g *goldenHasher) hashTrace(trace []TraceEvent) {
	g.u64(uint64(len(trace)))
	for _, ev := range trace {
		g.u64(uint64(ev.Tick))
		g.u32(uint32(ev.Thread))
		g.u32(uint32(ev.Index))
		g.buf = append(g.buf, byte(ev.Kind), byte(ev.Op))
		g.u32(ev.Addr)
		g.u32(ev.Value)
	}
	g.mix()
}

// hashRNG folds the post-run RNG position, pinning the exact number of
// draws the executor consumed — one draw too many or too few changes
// the fingerprint even if this run's result happens to match.
func (g *goldenHasher) hashRNG(rng *xrand.Rand) {
	g.u64(rng.Uint64())
	g.mix()
}

// --- scenario specs -------------------------------------------------

// mpPairProgs returns the classic message-passing writer/reader pair.
func mpPairProgs(base uint32, fenced bool) (Program, Program) {
	w := Program{
		{Op: OpStore, Addr: base, Imm: 1},
		{Op: OpStore, Addr: base + 1, Imm: 1},
	}
	r := Program{
		{Op: OpLoad, Addr: base + 1, Reg: 0},
		{Op: OpLoad, Addr: base, Reg: 1},
	}
	if fenced {
		w = Program{w[0], {Op: OpFence}, w[1]}
		r = Program{r[0], {Op: OpFence}, r[1]}
	}
	return w, r
}

// mixedSpec exercises every op kind: MP pairs, exchanges, fences,
// barriers, stress traffic and a few empty programs, spread over
// enough workgroups that several CUs hold more than one.
func mixedSpec(wgs, wgSize int) LaunchSpec {
	memWords := 64
	progs := make([]Program, wgs*wgSize)
	for wg := 0; wg < wgs; wg++ {
		for lane := 0; lane < wgSize; lane++ {
			tid := wg*wgSize + lane
			base := uint32((wg * 4) % 48)
			switch wg % 4 {
			case 0: // MP pairs, alternating fenced
				w, r := mpPairProgs(base, wg%8 == 0)
				if lane%2 == 0 {
					progs[tid] = w
				} else {
					progs[tid] = r
				}
			case 1: // barrier phase: store, rendezvous, load the peer's slot
				peer := uint32(wg*wgSize+(lane+1)%wgSize) % 60
				progs[tid] = Program{
					{Op: OpStore, Addr: uint32(tid) % 60, Imm: uint32(tid + 1)},
					{Op: OpBarrier},
					{Op: OpLoad, Addr: peer, Reg: 0},
				}
			case 2: // atomic contention on one word plus stress traffic
				progs[tid] = Program{
					{Op: OpExchange, Addr: 62, Imm: uint32(tid + 1), Reg: 0},
					{Op: OpStressStore, Addr: 63, Imm: uint32(tid)},
					{Op: OpStressLoad, Addr: 63, Reg: 1},
					{Op: OpExchange, Addr: 62, Imm: uint32(tid + 100), Reg: 2},
				}
			default: // sparse: some threads idle (empty program)
				if lane%3 == 0 {
					progs[tid] = nil
				} else {
					progs[tid] = Program{
						{Op: OpStore, Addr: base + 2, Imm: uint32(tid)},
						{Op: OpFence},
						{Op: OpLoad, Addr: base + 3, Reg: 0},
						{Op: OpLoad, Addr: base + 3, Reg: 1},
					}
				}
			}
		}
	}
	return LaunchSpec{WorkgroupSize: wgSize, Workgroups: wgs, MemWords: memWords, Programs: progs}
}

// deepPipelineSpec keeps every thread MaxOutstanding-bound: long runs
// of independent loads/stores to distinct addresses.
func deepPipelineSpec(threads int) LaunchSpec {
	progs := make([]Program, threads)
	for t := 0; t < threads; t++ {
		p := make(Program, 0, 16)
		for i := 0; i < 8; i++ {
			addr := uint32((t*8 + i) % 96)
			p = append(p,
				Instr{Op: OpStore, Addr: addr, Imm: uint32(t<<8 | i)},
				Instr{Op: OpLoad, Addr: (addr + 32) % 96, Reg: uint16(i % 4)})
		}
		progs[t] = p
	}
	return LaunchSpec{WorkgroupSize: 1, Workgroups: threads, MemWords: 96, Programs: progs}
}

// contentionSpec hammers a single cache line from every thread so line
// pressure, global pressure and coherence-bug paths all fire.
func contentionSpec(threads int) LaunchSpec {
	progs := make([]Program, threads)
	for t := 0; t < threads; t++ {
		progs[t] = Program{
			{Op: OpStore, Addr: 0, Imm: uint32(t + 1)},
			{Op: OpLoad, Addr: 0, Reg: 0},
			{Op: OpLoad, Addr: 0, Reg: 1},
			{Op: OpExchange, Addr: 1, Imm: uint32(t + 1000), Reg: 2},
			{Op: OpLoad, Addr: 0, Reg: 3},
		}
	}
	return LaunchSpec{WorkgroupSize: 1, Workgroups: threads, MemWords: 4, Programs: progs}
}

// fenceBarrierSpec is control-flow heavy: multiple barrier phases with
// fences between memory ops in each phase.
func fenceBarrierSpec(wgs, wgSize int) LaunchSpec {
	progs := make([]Program, wgs*wgSize)
	for tid := range progs {
		progs[tid] = Program{
			{Op: OpStore, Addr: uint32(tid % 30), Imm: uint32(tid)},
			{Op: OpFence},
			{Op: OpBarrier},
			{Op: OpLoad, Addr: uint32((tid + 1) % 30), Reg: 0},
			{Op: OpFence},
			{Op: OpBarrier},
			{Op: OpStore, Addr: 31, Imm: uint32(tid)},
			{Op: OpLoad, Addr: 31, Reg: 1},
		}
	}
	return LaunchSpec{WorkgroupSize: wgSize, Workgroups: wgs, MemWords: 32, Programs: progs}
}

// wavesSpec launches far more workgroups than the device can hold so
// retirement-driven admission waves execute; scattered threads are
// empty to cover the immediate-retire path.
func wavesSpec(wgs, wgSize int) LaunchSpec {
	progs := make([]Program, wgs*wgSize)
	for tid := range progs {
		if tid%7 == 3 {
			continue // empty program: retires at admission
		}
		progs[tid] = Program{
			{Op: OpStore, Addr: uint32(tid % 16), Imm: uint32(tid + 1)},
			{Op: OpLoad, Addr: uint32((tid + 5) % 16), Reg: 0},
		}
	}
	return LaunchSpec{WorkgroupSize: wgSize, Workgroups: wgs, MemWords: 16, Programs: progs}
}

// --- the battery ----------------------------------------------------

type goldenScenario struct {
	name    string
	profile string
	bugs    Bugs
	faults  FaultModel
	seed    uint64
	runs    int // sequential runs on ONE device (covers warm reuse)
	traced  bool
	spec    LaunchSpec
}

func goldenScenarios() []goldenScenario {
	var out []goldenScenario
	// Every profile over the mixed battery, 3 warm runs each.
	for _, name := range []string{"NVIDIA", "AMD", "Intel", "M1", "Kepler"} {
		out = append(out, goldenScenario{
			name:    "mixed-" + name,
			profile: name,
			seed:    1000 + uint64(len(name)),
			runs:    3,
			spec:    mixedSpec(12, 8),
		})
	}
	// Each injected bug, plus all three at once.
	out = append(out,
		goldenScenario{name: "bug-coherence-rr", profile: "Intel",
			bugs: Bugs{CoherenceRR: true, CoherenceRRProb: 0.3}, seed: 21, runs: 2,
			spec: contentionSpec(24)},
		goldenScenario{name: "bug-stale-cache", profile: "Kepler",
			bugs: Bugs{StaleCache: true}, seed: 22, runs: 2,
			spec: mixedSpec(8, 4)},
		goldenScenario{name: "bug-drop-fences", profile: "AMD",
			bugs: Bugs{DropFences: true}, seed: 23, runs: 2,
			spec: fenceBarrierSpec(6, 8)},
		goldenScenario{name: "bug-all", profile: "NVIDIA",
			bugs: Bugs{CoherenceRR: true, CoherenceRRProb: 0.2, StaleCache: true, DropFences: true},
			seed: 24, runs: 2, spec: mixedSpec(10, 8)},
	)
	// Structural extremes.
	out = append(out,
		goldenScenario{name: "deep-pipeline", profile: "AMD", seed: 31, runs: 2,
			spec: deepPipelineSpec(48)},
		goldenScenario{name: "contention", profile: "M1", seed: 32, runs: 2,
			spec: contentionSpec(64)},
		goldenScenario{name: "fence-barrier", profile: "Intel", seed: 33, runs: 2,
			spec: fenceBarrierSpec(12, 16)},
		goldenScenario{name: "waves", profile: "Kepler", seed: 34, runs: 2,
			spec: wavesSpec(200, 2)},
		goldenScenario{name: "two-thread-mp", profile: "AMD", seed: 35, runs: 4,
			spec: func() LaunchSpec {
				w, r := mpPairProgs(0, false)
				return LaunchSpec{WorkgroupSize: 1, Workgroups: 2, MemWords: 2, Programs: []Program{w, r}}
			}()},
	)
	// Traced variants: the event stream itself is part of the contract.
	out = append(out,
		goldenScenario{name: "traced-mixed", profile: "Intel", seed: 41, runs: 2, traced: true,
			spec: mixedSpec(6, 8)},
		goldenScenario{name: "traced-bugs", profile: "AMD", seed: 42, runs: 2, traced: true,
			bugs: Bugs{CoherenceRR: true, CoherenceRRProb: 0.25, DropFences: true},
			spec: contentionSpec(16)},
	)
	// Fault injection: the per-run fault draws precede execution, so
	// the error/result sequence pins the fault RNG stream too.
	out = append(out,
		goldenScenario{name: "faults-uniform", profile: "AMD", seed: 51, runs: 40,
			faults: UniformFaults(7, 0.25), spec: mixedSpec(4, 4)},
		goldenScenario{name: "faults-loss", profile: "Intel", seed: 52, runs: 30,
			faults: FaultModel{Seed: 9, LaunchFailProb: 0.2, HangProb: 0.1,
				CorruptProb: 0.2, LossAfter: 25, WatchdogTicks: 50},
			spec: mixedSpec(4, 4)},
	)
	return out
}

// runGoldenScenario executes one scenario and returns its fingerprint.
func runGoldenScenario(t *testing.T, sc goldenScenario) string {
	t.Helper()
	prof, ok := ProfileByName(sc.profile)
	if !ok {
		t.Fatalf("profile %q missing", sc.profile)
	}
	d, err := NewDevice(prof, sc.bugs)
	if err != nil {
		t.Fatal(err)
	}
	if sc.faults.Enabled() {
		if err := d.SetFaults(sc.faults); err != nil {
			t.Fatal(err)
		}
	}
	rng := xrand.New(sc.seed)
	var g goldenHasher
	for i := 0; i < sc.runs; i++ {
		if sc.traced {
			res, trace, err := d.RunTraced(sc.spec, rng)
			if err != nil {
				t.Fatalf("run %d: %v", i, err)
			}
			// Injected bugs intentionally produce traces the checker
			// rejects (that is their point); verify clean devices only.
			if !sc.bugs.Any() {
				if err := VerifyTrace(sc.spec, trace); err != nil {
					t.Fatalf("run %d: trace does not verify: %v", i, err)
				}
			}
			g.hashTrace(trace)
			g.hashResult(res)
		} else {
			res, err := d.Run(sc.spec, rng)
			if err != nil {
				// Fault scenarios legitimately error; the error text
				// (kind, transience) is part of the observable record.
				g.str("err:" + err.Error())
				g.mix()
			} else {
				g.hashResult(res)
			}
		}
	}
	g.hashRNG(rng)
	return g.sum()
}

const deviceGoldenPath = "testdata/device_golden.json"

// TestGoldenDeviceFingerprints locks the executor's observable
// behavior to the committed pre-rewrite fingerprints.
func TestGoldenDeviceFingerprints(t *testing.T) {
	scenarios := goldenScenarios()
	got := make(map[string]string, len(scenarios))
	for _, sc := range scenarios {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			got[sc.name] = runGoldenScenario(t, sc)
		})
	}
	if os.Getenv("UPDATE_GOLDEN") != "" {
		writeGoldenFile(t, deviceGoldenPath, got)
		return
	}
	want := readGoldenFile(t, deviceGoldenPath)
	for _, sc := range scenarios {
		if want[sc.name] == "" {
			t.Errorf("%s: no golden entry (run with UPDATE_GOLDEN=1 to capture)", sc.name)
			continue
		}
		if got[sc.name] != want[sc.name] {
			t.Errorf("%s: fingerprint %s != golden %s — executor behavior diverged from pre-rewrite baseline",
				sc.name, got[sc.name], want[sc.name])
		}
	}
}

func writeGoldenFile(t *testing.T, path string, entries map[string]string) {
	t.Helper()
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	names := make([]string, 0, len(entries))
	for n := range entries {
		names = append(names, n)
	}
	sort.Strings(names)
	var buf []byte
	buf = append(buf, "{\n"...)
	for i, n := range names {
		comma := ","
		if i == len(names)-1 {
			comma = ""
		}
		buf = append(buf, fmt.Sprintf("  %q: %q%s\n", n, entries[n], comma)...)
	}
	buf = append(buf, "}\n"...)
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %d golden entries to %s", len(entries), path)
}

func readGoldenFile(t *testing.T, path string) map[string]string {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("golden file missing (run with UPDATE_GOLDEN=1 to capture): %v", err)
	}
	var m map[string]string
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatalf("golden file %s corrupt: %v", path, err)
	}
	return m
}
