package core

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/diskio"
	"repro/internal/gpu"
	"repro/internal/harness"
	"repro/internal/litmus"
	"repro/internal/sched"
	"repro/internal/xrand"
)

// CampaignOptions configures the scheduler behind the core workflows:
// parallelism, retry policy, checkpointing and progress streams. The
// zero value is a serial, checkpoint-free run. Every worker count
// yields identical scores and findings — cell RNG streams derive from
// the campaign seed and cell identity alone.
type CampaignOptions struct {
	// Workers bounds the scheduler's pool; < 1 means serial.
	Workers int
	// Retries and Backoff configure transient-failure handling per cell.
	Retries int
	Backoff time.Duration
	// CellTimeout bounds each cell attempt; expiry is an ordinary
	// permanent cell failure (retried, reported, breaker-visible), not a
	// campaign interruption. Zero means no per-cell bound.
	CellTimeout time.Duration
	// CheckpointPath, when non-empty, records completed cells as JSONL
	// so an interrupted campaign can resume.
	CheckpointPath string
	// Resume replays cells already in the checkpoint instead of
	// re-running them. Requires CheckpointPath.
	Resume bool
	// FsyncEvery tunes the checkpoint's bounded-loss durability policy:
	// the file is fsynced after every N recorded cells. 0 means
	// sched.DefaultFsyncEvery; negative syncs only at drain and close.
	FsyncEvery int
	// FS is the filesystem the checkpoint goes through; nil means the
	// real filesystem. Tests inject a fault model (diskio.FaultFS).
	FS diskio.FS
	// Collect switches the scheduler from fail-fast to collect: every
	// cell runs, and failed cells surface in the result (EnvScore
	// failures, error-carrying findings) instead of aborting the
	// campaign.
	Collect bool
	// Breaker, when non-nil, enables the per-device circuit breaker:
	// a device failing Threshold cells in a row is quarantined for
	// Cooldown cells and the campaign continues on the surviving fleet.
	// Implies Collect.
	Breaker *sched.BreakerOptions
	// Progress, when non-nil, receives one line as each cell starts.
	Progress func(string)
	// OnProgress, when non-nil, receives cumulative structured campaign
	// snapshots — one every ProgressEvery plus a final settled one
	// before the campaign returns (see sched.Progress). The serve
	// subsystem's SSE hub and metrics feed from this hook.
	OnProgress func(sched.Progress)
	// ProgressEvery is the OnProgress cadence; zero means
	// sched.DefaultProgressEvery.
	ProgressEvery time.Duration
	// Report, when non-nil, receives throughput lines (cells/sec,
	// instances/sec, per-device utilization) at most every ReportEvery
	// (default 2s).
	Report      func(string)
	ReportEvery time.Duration
	// Dist, when non-nil, runs the campaign distributed: no cell
	// executes in this process. A coordinator is registered on the hub,
	// worker processes lease cell ranges and deliver result segments,
	// and the merged report is byte-identical to a local run — split-
	// seed cell RNG makes results a pure function of (seed, cell key,
	// attempt), independent of which process executed the cell.
	// Distributed campaigns always run collect-style (there is no
	// fail-fast abort across workers); Workers, Retries, Backoff and
	// CellTimeout apply on the worker side via the descriptor, not
	// here.
	Dist *DistOptions
	// Cache, when non-nil, is the persistent result cache consulted
	// before each cell executes and published to after a cell succeeds.
	// CacheSalt must encode every workload parameter that lives outside
	// the spec — iterations, environments, fault model, retry policy;
	// in practice the canonical WorkSpec descriptor JSON (see
	// WorkSpec.CacheSalt) — so a key can never serve a result computed
	// under different parameters. Cache hits change nothing but time:
	// scores, findings and artifacts stay byte-identical to a cold run.
	// In distributed mode the cache is consulted on the worker side
	// (dist.SchedRunnerOptions), not here.
	Cache     sched.ResultCache
	CacheSalt string
}

// applyCampaignOptions populates the scheduler options from o. The
// returned closer must run once the campaign finishes; it closes the
// checkpoint, if any.
func applyCampaignOptions[R any](o CampaignOptions, spec sched.Spec, opts *sched.Options[R]) (func(), error) {
	opts.Workers = o.Workers
	opts.MaxRetries = o.Retries
	opts.Backoff = o.Backoff
	opts.CellTimeout = o.CellTimeout
	opts.Collect = o.Collect
	opts.Breaker = o.Breaker
	opts.OnProgress = o.OnProgress
	opts.ProgressEvery = o.ProgressEvery
	opts.Cache = o.Cache
	opts.CacheSalt = o.CacheSalt
	if o.Progress != nil {
		progress := o.Progress
		opts.OnCellStart = func(c sched.Cell) {
			progress(fmt.Sprintf("%s on %s", c.Key, c.Device))
		}
	}
	if o.Report != nil {
		every := o.ReportEvery
		if every <= 0 {
			every = 2 * time.Second
		}
		opts.Reporter = sched.NewReporter(o.Report, every)
	}
	closer := func() {}
	if o.Resume && o.CheckpointPath == "" {
		return closer, fmt.Errorf("core: Resume requires CheckpointPath")
	}
	if o.CheckpointPath != "" {
		ck, err := sched.OpenCheckpointOpts(o.CheckpointPath, spec, o.Resume,
			sched.CheckpointOptions{FS: o.FS, FsyncEvery: o.FsyncEvery})
		if err != nil {
			return closer, err
		}
		opts.Checkpoint = ck
		closer = func() { ck.Close() }
	}
	return closer, nil
}

// CellFailure records one campaign cell that produced no usable data: a
// permanent device failure, or a cell the device circuit breaker
// quarantined. Failed cells are always reported, never dropped.
type CellFailure struct {
	// Key is the campaign cell key.
	Key string
	// Device is the cell's device short name.
	Device string
	// Err is the failure rendered as text.
	Err string
	// Quarantined marks breaker-skipped cells.
	Quarantined bool
	// Attempts counts executions, 0 when the cell never ran.
	Attempts int
}

// cellFailures extracts a report's failed cells in spec order.
// Interrupted cells are pending, not failed, and are excluded.
func cellFailures[R any](rep *sched.Report[R]) []CellFailure {
	var out []CellFailure
	for _, r := range rep.Results {
		if r.Err != nil && !r.Interrupted {
			out = append(out, CellFailure{
				Key:         r.Cell.Key,
				Device:      r.Cell.Device,
				Err:         r.Err.Error(),
				Quarantined: r.Quarantined,
				Attempts:    r.Attempts,
			})
		}
	}
	return out
}

// evalCell is one evaluation campaign cell's work order.
type evalCell struct {
	env    harness.Params
	mutant *litmus.Test
}

// evaluateCampaign expands (environments × mutants) into the scheduler
// spec and per-key work map of an evaluation campaign. Cell order is
// env-major: result i belongs to mutant i mod len(mutants).
func (st *Study) evaluateCampaign(p Platform, envs []harness.Params, seed uint64) (sched.Spec, map[string]evalCell, error) {
	if len(envs) == 0 {
		return sched.Spec{}, nil, fmt.Errorf("core: no environments")
	}
	if _, ok := gpu.ProfileByName(p.Device); !ok {
		return sched.Spec{}, nil, fmt.Errorf("core: unknown device %q", p.Device)
	}
	spec := sched.Spec{Name: "evaluate", Seed: seed}
	work := map[string]evalCell{}
	for ei, env := range envs {
		for _, mt := range st.Suite.Mutants {
			key := fmt.Sprintf("env-%02d/%s", ei, mt.Name)
			spec.Cells = append(spec.Cells, sched.Cell{Key: key, Device: p.Device})
			work[key] = evalCell{env: env, mutant: mt}
		}
	}
	return spec, work, nil
}

// EvaluateSpec returns the scheduler spec EvaluateEnvironments runs for
// the platform with numEnvs environments, without executing anything.
// Its Manifest() identifies the campaign's cell grid — the serve
// subsystem derives idempotent job IDs from it, and it is the manifest
// a checkpoint written by the run will carry.
func (st *Study) EvaluateSpec(p Platform, numEnvs int, seed uint64) (sched.Spec, error) {
	if numEnvs <= 0 {
		return sched.Spec{}, fmt.Errorf("core: no environments")
	}
	spec, _, err := st.evaluateCampaign(p, make([]harness.Params, numEnvs), seed)
	return spec, err
}

// evaluateExec returns the cell executor of an evaluation campaign —
// shared verbatim between local runs and distributed workers, so a
// leased cell computes exactly what a local scheduler would.
func (st *Study) evaluateExec(p Platform, work map[string]evalCell, iterations int) sched.Exec[*harness.Result] {
	return func(ctx context.Context, c sched.Cell, rng *xrand.Rand) (*harness.Result, error) {
		w := work[c.Key]
		r, err := p.runner(w.env)
		if err != nil {
			return nil, err
		}
		return r.RunCtx(ctx, w.mutant, iterations, rng)
	}
}

// EvaluateEnvironments runs every mutant in every environment on the
// platform as one campaign and scores the ensemble: per-mutant results
// are merged across environments (a mutant counts as killed when any
// environment kills it), the multi-environment generalization of the
// paper's single-environment mutation score. It is
// EvaluateEnvironmentsCtx under context.Background().
func (st *Study) EvaluateEnvironments(p Platform, envs []harness.Params, iterations int, seed uint64, opts CampaignOptions) (*EnvScore, error) {
	return st.EvaluateEnvironmentsCtx(context.Background(), p, envs, iterations, seed, opts)
}

// EvaluateEnvironmentsCtx is EvaluateEnvironments under a context.
// Cancellation drains the campaign: in-flight cells finish or are
// abandoned, completed cells are checkpointed, and the partial score is
// returned with Interrupted set alongside an error wrapping
// sched.ErrInterrupted.
func (st *Study) EvaluateEnvironmentsCtx(ctx context.Context, p Platform, envs []harness.Params, iterations int, seed uint64, opts CampaignOptions) (*EnvScore, error) {
	spec, work, err := st.evaluateCampaign(p, envs, seed)
	if err != nil {
		return nil, err
	}
	schedOpts := sched.Options[*harness.Result]{
		Instances: func(r *harness.Result) int { return r.Instances },
	}
	rep, err := runCampaign(ctx, spec, st.evaluateExec(p, work, iterations), opts, schedOpts)
	interrupted := errors.Is(err, sched.ErrInterrupted)
	if err != nil && !interrupted {
		return nil, err
	}
	// Fold each mutant's per-environment results into one, in suite
	// order; cells are env-major so result i belongs to mutant i mod N.
	// Failed cells (possible under Collect or a breaker) contribute
	// nothing to the merge but are reported in Failures; interrupted
	// cells contribute nothing anywhere — they are pending, not failed.
	nm := len(st.Suite.Mutants)
	merged := make([]*harness.Result, nm)
	for mi, mt := range st.Suite.Mutants {
		merged[mi] = &harness.Result{
			TestName: mt.Name, IsMutant: mt.IsMutant, Mutator: mt.Mutator,
		}
	}
	for i, cr := range rep.Results {
		if cr.Err != nil {
			continue
		}
		if err := merged[i%nm].Merge(cr.Value); err != nil {
			return nil, err
		}
	}
	score := &EnvScore{
		PerMutant: merged, Total: nm,
		Failures: cellFailures(rep), Health: rep.Health,
		Interrupted:     interrupted,
		StorageDegraded: rep.StorageDegraded,
		StorageErr:      rep.StorageErr,
	}
	rates := 0.0
	for _, res := range merged {
		if res.TargetCount > 0 {
			score.Killed++
		}
		rates += res.TargetRate()
	}
	score.AvgDeathRate = rates / float64(nm)
	if interrupted {
		return score, fmt.Errorf("core: evaluation interrupted: %w", sched.ErrInterrupted)
	}
	return score, nil
}

// confCell is one conformance campaign cell's work order.
type confCell struct {
	platform Platform
	test     *litmus.Test
}

// fleetConformanceCampaign expands (platforms × conformance tests)
// into the scheduler spec and per-key work map of a fleet conformance
// campaign.
func (st *Study) fleetConformanceCampaign(platforms []Platform, seed uint64) (sched.Spec, map[string]confCell, error) {
	if len(platforms) == 0 {
		return sched.Spec{}, nil, fmt.Errorf("core: no platforms")
	}
	spec := sched.Spec{Name: "conformance", Seed: seed}
	work := map[string]confCell{}
	for pi, p := range platforms {
		if _, ok := gpu.ProfileByName(p.Device); !ok {
			return sched.Spec{}, nil, fmt.Errorf("core: unknown device %q", p.Device)
		}
		for _, test := range st.Suite.Conformance {
			key := fmt.Sprintf("fleet-%02d-%s/%s", pi, p.Device, test.Name)
			spec.Cells = append(spec.Cells, sched.Cell{Key: key, Device: p.Device})
			work[key] = confCell{platform: p, test: test}
		}
	}
	return spec, work, nil
}

// FleetConformanceSpec returns the scheduler spec CheckFleetConformance
// runs for the platforms, without executing anything. Its Manifest()
// identifies the campaign's cell grid — the serve subsystem derives
// idempotent job IDs from it, and it is the manifest a checkpoint
// written by the run will carry.
func (st *Study) FleetConformanceSpec(platforms []Platform, seed uint64) (sched.Spec, error) {
	spec, _, err := st.fleetConformanceCampaign(platforms, seed)
	return spec, err
}

// conformanceExec returns the cell executor of a fleet conformance
// campaign — shared verbatim between local runs and distributed
// workers, so a leased cell computes exactly what a local scheduler
// would.
func (st *Study) conformanceExec(env harness.Params, work map[string]confCell, iterations int) sched.Exec[Finding] {
	return func(ctx context.Context, c sched.Cell, rng *xrand.Rand) (Finding, error) {
		w := work[c.Key]
		r, err := w.platform.runner(env)
		if err != nil {
			return Finding{}, err
		}
		res, err := r.RunCtx(ctx, w.test, iterations, rng)
		if err != nil {
			return Finding{}, err
		}
		f := Finding{
			Test:          w.test.Name,
			Mutator:       w.test.Mutator,
			Instances:     res.Instances,
			Violations:    res.Violations,
			ViolationRate: res.ViolationRate(),
		}
		if res.FirstViolation != nil {
			f.Outcome = res.FirstViolation.Key()
			f.Explanation = explainViolation(w.test, *res.FirstViolation)
		}
		return f, nil
	}
}

// CheckFleetConformance runs the conformance suite on every platform
// as one campaign and returns one report per platform, in input order.
// This is the fleet-wide version of CheckConformance: all
// (platform, test) cells share the scheduler's pool, so a slow device
// does not serialize the rest of the fleet. It is
// CheckFleetConformanceCtx under context.Background().
func (st *Study) CheckFleetConformance(platforms []Platform, env harness.Params, iterations int, seed uint64, opts CampaignOptions) ([]*ConformanceReport, error) {
	return st.CheckFleetConformanceCtx(context.Background(), platforms, env, iterations, seed, opts)
}

// CheckFleetConformanceCtx is CheckFleetConformance under a context.
// Cancellation drains the campaign and returns the partial reports —
// interrupted findings marked pending, report Interrupted set — with an
// error wrapping sched.ErrInterrupted.
func (st *Study) CheckFleetConformanceCtx(ctx context.Context, platforms []Platform, env harness.Params, iterations int, seed uint64, opts CampaignOptions) ([]*ConformanceReport, error) {
	spec, work, err := st.fleetConformanceCampaign(platforms, seed)
	if err != nil {
		return nil, err
	}
	schedOpts := sched.Options[Finding]{
		Instances: func(f Finding) int { return f.Instances },
	}
	rep, err := runCampaign(ctx, spec, st.conformanceExec(env, work, iterations), opts, schedOpts)
	interrupted := errors.Is(err, sched.ErrInterrupted)
	if err != nil && !interrupted {
		return nil, err
	}
	// Assemble per-platform reports from the per-cell results. A failed
	// cell (possible under Collect or a breaker) becomes an
	// error-carrying finding — recorded, never dropped. An interrupted
	// cell becomes a pending finding: marked Interrupted, excluded from
	// Failed(), re-run on resume.
	nc := len(st.Suite.Conformance)
	reports := make([]*ConformanceReport, len(platforms))
	for pi := range platforms {
		r := &ConformanceReport{
			Platform: platforms[pi], Interrupted: interrupted,
			StorageDegraded: rep.StorageDegraded, StorageErr: rep.StorageErr,
		}
		for ti := 0; ti < nc; ti++ {
			cr := rep.Results[pi*nc+ti]
			f := cr.Value
			if cr.Err != nil {
				test := st.Suite.Conformance[ti]
				f = Finding{
					Test: test.Name, Mutator: test.Mutator,
					Error: cr.Err.Error(), Quarantined: cr.Quarantined,
					Interrupted: cr.Interrupted,
				}
			}
			r.Findings = append(r.Findings, f)
		}
		for _, h := range rep.Health {
			if h.Device == platforms[pi].Device {
				r.Health = append(r.Health, h)
			}
		}
		reports[pi] = r
	}
	if interrupted {
		return reports, fmt.Errorf("core: conformance check interrupted: %w", sched.ErrInterrupted)
	}
	return reports, nil
}
