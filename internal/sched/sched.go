// Package sched is the campaign scheduler of the simulated device
// fleet: it turns any campaign — an ordered set of cells, typically
// (test × device × environment × iteration-budget) — into a job list
// executed by a bounded worker pool.
//
// The scheduler guarantees three properties the serial loops it
// replaces could not offer together:
//
//   - Determinism under parallelism. Each cell derives its own RNG
//     stream from the campaign seed via xrand.DeriveSeed, a pure
//     function of (seed, cell key): no cell's randomness depends on
//     which worker runs it or in what order, so workers=1 and
//     workers=16 produce bit-identical aggregate results.
//
//   - Robustness. Every cell attempt runs under panic recovery; errors
//     marked Transient are retried with exponential backoff up to a
//     bound; the campaign-level error policy is either fail-fast
//     (default: cancel outstanding work on the first permanent
//     failure) or collect (run everything, report all failures).
//
//   - Resumability and observability. Completed cells are checkpointed
//     as JSONL records under a manifest hash of the campaign spec, so
//     an interrupted campaign resumes by replaying done cells instead
//     of re-running them, and a progress reporter streams cells/sec,
//     instances/sec and per-device utilization.
//
// Campaigns are cancellable: RunContext threads a context through the
// pool, workers check it between cells, retry backoff waits on it, and
// cancellation (or deadline expiry) drains the campaign — in-flight
// cells finish or are abandoned as incomplete, the checkpoint is
// synced, and the partial report counts the abandoned cells in
// Report.Interrupted. Abandoned cells are never checkpointed, so a
// resumed campaign re-runs them from their deterministic per-cell
// streams and ends byte-identical to an uninterrupted run.
package sched

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/xrand"
)

// Cell is one schedulable unit of a campaign. Key is the cell's stable
// identity: the RNG derivation path, the checkpoint record key, and the
// handle exec uses to look up its work. Device, when set, labels the
// simulated device the cell occupies, feeding per-device utilization.
type Cell struct {
	Key    string
	Device string
}

// Spec describes a campaign: a name, the root seed all cell streams
// derive from, and the ordered cell list. The order fixes the order of
// Report.Results and is part of the checkpoint manifest.
type Spec struct {
	Name  string
	Seed  uint64
	Cells []Cell
}

// Validate checks the spec is runnable: it has a name, at least one
// cell, and no duplicate cell keys.
func (s *Spec) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("sched: campaign has no name")
	}
	if len(s.Cells) == 0 {
		return fmt.Errorf("sched: campaign %q has no cells", s.Name)
	}
	seen := make(map[string]bool, len(s.Cells))
	for _, c := range s.Cells {
		if c.Key == "" {
			return fmt.Errorf("sched: campaign %q has a cell with an empty key", s.Name)
		}
		if seen[c.Key] {
			return fmt.Errorf("sched: campaign %q has duplicate cell key %q", s.Name, c.Key)
		}
		seen[c.Key] = true
	}
	return nil
}

// CellRand returns the RNG for one attempt of one cell. It is a pure
// function of (seed, campaign name, cell key, attempt): retries draw
// fresh randomness, but nothing depends on scheduling order.
func (s *Spec) CellRand(key string, attempt int) *xrand.Rand {
	return xrand.NewFromPath(s.Seed, s.Name, key, fmt.Sprintf("attempt-%d", attempt))
}

// RetryBackoff returns the wait before retrying a cell after failed
// attempt (0-based): the base backoff doubled per attempt, scaled by a
// jitter factor in [0.5, 1.5) drawn from the cell's split-seed RNG. The
// jitter decorrelates retry timing across cells — no synchronized retry
// stampede when many workers hit a transient condition at once — while
// staying a pure function of (seed, name, key, attempt), so retry
// schedules are reproducible run to run.
func (s *Spec) RetryBackoff(key string, attempt int, base time.Duration) time.Duration {
	if base <= 0 {
		return 0
	}
	shift := attempt
	if shift > 32 {
		shift = 32 // doubling saturates; beyond this the jitter still varies
	}
	d := base << uint(shift)
	jitter := 0.5 + xrand.NewFromPath(s.Seed, s.Name, key, fmt.Sprintf("backoff-%d", attempt)).Float64()
	return time.Duration(float64(d) * jitter)
}

// Exec runs one cell attempt. The ctx is the campaign's (or, with
// Options.CellTimeout, the cell's deadline-bounded child); executors
// doing unbounded work should poll it. The rng is the cell's private
// stream; the returned value must round-trip through JSON when
// checkpointing is enabled. Exec is called from multiple goroutines and
// must not mutate shared state.
type Exec[R any] func(ctx context.Context, cell Cell, rng *xrand.Rand) (R, error)

// Options configures one campaign run.
type Options[R any] struct {
	// Workers bounds the pool; values < 1 mean 1.
	Workers int
	// MaxRetries is how many times a transiently-failing cell is
	// retried after its first attempt.
	MaxRetries int
	// Backoff is the base wait before the first retry; it doubles per
	// retry and is jittered ±50% from the cell's split-seed RNG (see
	// Spec.RetryBackoff). Zero means retry immediately (tests).
	Backoff time.Duration
	// CellTimeout, when positive, bounds each cell's wall-clock time:
	// the cell's exec runs under a deadline-bounded child context and an
	// overrun fails that one cell (it is not an interruption — the
	// campaign continues under its error policy).
	CellTimeout time.Duration
	// Collect switches the error policy from fail-fast (default) to
	// collect: every cell runs, failures accumulate in the report.
	Collect bool
	// Breaker, when non-nil, enables the per-device circuit breaker:
	// a device failing Threshold cells in a row is quarantined and the
	// campaign continues on the surviving fleet (see BreakerOptions).
	// A breaker implies the collect error policy — device failures
	// feed the breaker instead of aborting the campaign.
	Breaker *BreakerOptions
	// Sleep replaces the backoff wait. Tests inject a fake clock here so
	// backoff paths run in microseconds; it receives the jittered
	// duration. Nil means an interruptible timer wait on the context.
	Sleep func(time.Duration)
	// Checkpoint, when non-nil, records completed cells and replays
	// cells already done in a previous run.
	Checkpoint *Checkpoint
	// Cache, when non-nil, is the cross-campaign result cache: each
	// cell is consulted under its CellDigest before executing, and
	// successfully-validated results are published back. The cache is
	// an optimization, never a dependency — a missing, corrupt or
	// failing cache only costs recomputation (see ResultCache).
	Cache ResultCache
	// CacheSalt folds the workload parameters the exec closure bakes in
	// (iteration counts, fault model, retry policy) into the cell
	// digests, so two campaigns share cache entries only when executing
	// a cell must produce the same value. Required whenever Cache is
	// set and the exec is not a pure function of (spec, cell, rng).
	CacheSalt string
	// Reporter, when non-nil, receives completion events and streams
	// throughput lines.
	Reporter *Reporter
	// OnCellStart, when non-nil, is called as each cell begins
	// executing (not for replayed cells). Calls are serialized, so the
	// callback may mutate shared state without its own locking.
	OnCellStart func(Cell)
	// OnProgress, when non-nil, receives cumulative campaign snapshots:
	// one every ProgressEvery while the campaign runs, plus exactly one
	// final snapshot (Progress.Final) carrying the settled verdicts,
	// delivered before RunContext returns. Calls are serialized and
	// Progress.Done never decreases from one snapshot to the next, so
	// streaming consumers (the serve SSE hub) may drop intermediate
	// snapshots and still converge on the truth.
	OnProgress func(Progress)
	// ProgressEvery is the OnProgress snapshot cadence; zero or
	// negative means DefaultProgressEvery. The final snapshot is
	// emitted regardless.
	ProgressEvery time.Duration
	// Instances extracts a cell result's instance count for the
	// reporter's instances/sec stream. Optional.
	Instances func(R) int
	// NewWorkerExec, when non-nil, builds a private Exec per worker
	// goroutine, letting executors carry reusable scratch (warm devices,
	// runners, iteration plans) without any cross-worker sharing. The
	// factory is called once per worker at pool start; the Exec it
	// returns is only ever invoked from that worker's goroutine, so it
	// may freely mutate its own state. Cell randomness still derives
	// purely from (seed, cell key, attempt), so campaigns remain
	// bit-identical at every worker count.
	NewWorkerExec func() Exec[R]
}

// CellResult is one cell's outcome in the report.
type CellResult[R any] struct {
	Cell  Cell
	Value R
	// Err is non-nil when the cell permanently failed (or was aborted
	// by fail-fast before running).
	Err error
	// Attempts counts executions, 0 for replayed or aborted cells.
	Attempts int
	// Replayed marks cells restored from the checkpoint.
	Replayed bool
	// CacheHit marks cells served from the result cache instead of
	// executing; Attempts is 0 and WallSeconds ~0 for them.
	CacheHit bool
	// Quarantined marks cells skipped (or discarded) because their
	// device's circuit breaker was open; Err is ErrQuarantined.
	Quarantined bool
	// Interrupted marks cells abandoned because the campaign context
	// was cancelled before they completed; Err wraps ErrInterrupted.
	// Interrupted cells are pending, not failed: they were never
	// checkpointed, so a resume re-runs them.
	Interrupted bool
	// WallSeconds is host time spent executing the cell.
	WallSeconds float64
}

// Report is a completed campaign: per-cell results in spec order plus
// aggregate counters.
type Report[R any] struct {
	Spec     Spec
	Results  []CellResult[R]
	Executed int
	Replayed int
	Failed   int
	Aborted  int
	// Quarantined counts cells skipped by the device circuit breaker.
	Quarantined int
	// Interrupted counts cells abandoned by campaign cancellation —
	// still pending, resumable from the checkpoint.
	Interrupted int
	// Retried counts extra attempts beyond the first across surviving
	// cells.
	Retried int
	// StorageDegraded is true when the checkpoint hit a persistent
	// storage failure (ENOSPC, EIO) mid-campaign and degraded to
	// in-memory operation: results are complete and correct, but cells
	// completed after the failure are not durably checkpointed and
	// would re-run on resume.
	StorageDegraded bool
	// StorageErr is the degradation cause rendered as text.
	StorageErr string
	// CacheHits, CacheMisses and CacheCorrupt count result-cache
	// consultations: verified entries served, absent entries, and
	// entries that failed verification (quarantined and recomputed).
	// They are observability only — no campaign artifact encodes them,
	// which is what keeps warm and cold runs byte-identical.
	CacheHits   int
	CacheMisses int
	CacheCorrupt int
	// CacheDegraded is true when the result cache hit a persistent
	// storage failure and switched to pass-through: results are
	// complete and correct, the run just stopped reusing or publishing
	// entries. Unlike StorageDegraded it never degrades the exit
	// status — the cache is an optimization, not a dependency.
	CacheDegraded bool
	// CacheErr is the cache degradation cause rendered as text.
	CacheErr string
	// Health summarizes per-device fleet health; populated when the
	// breaker is enabled, sorted by device name.
	Health []DeviceHealth
	// WallSeconds is the campaign's host duration end to end.
	WallSeconds float64
}

// Values returns the result values in spec order; it panics if any cell
// failed, so callers check Run's error (fail-fast) or Failed first.
func (r *Report[R]) Values() []R {
	out := make([]R, len(r.Results))
	for i, c := range r.Results {
		if c.Err != nil {
			panic(fmt.Sprintf("sched: Values on failed campaign: cell %s: %v", c.Cell.Key, c.Err))
		}
		out[i] = c.Value
	}
	return out
}

// FirstErr returns the first failed cell's error in spec order, or nil.
func (r *Report[R]) FirstErr() error {
	for _, c := range r.Results {
		if c.Err != nil {
			return fmt.Errorf("sched: cell %s: %w", c.Cell.Key, c.Err)
		}
	}
	return nil
}

// ErrAborted marks cells that never ran because fail-fast cancelled the
// campaign.
var ErrAborted = fmt.Errorf("sched: campaign aborted")

// Run executes the campaign under context.Background(); see RunContext.
func Run[R any](spec Spec, exec Exec[R], opts Options[R]) (*Report[R], error) {
	return RunContext(context.Background(), spec, exec, opts)
}

// RunContext executes the campaign. Results are returned in spec order
// regardless of completion order, so any aggregation over them is
// deterministic under parallelism. Under the fail-fast policy the
// first permanent cell failure is returned as the error (the partial
// report is still returned); under collect, the error is nil and the
// caller inspects Report.Failed / FirstErr.
//
// Cancelling ctx (or letting its deadline expire) drains the campaign:
// queued cells are abandoned without running, in-flight cells are
// abandoned as soon as they observe the cancellation, the checkpoint —
// which holds only fully-completed cells — is synced, and RunContext
// returns the partial report with an error wrapping ErrInterrupted.
// Abandoned cells carry ErrInterrupted and count in Report.Interrupted;
// they are pending, not failed, and a resumed run completes them with
// results identical to an uninterrupted campaign.
func RunContext[R any](ctx context.Context, spec Spec, exec Exec[R], opts Options[R]) (*Report[R], error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	workers := opts.Workers
	if workers < 1 {
		workers = 1
	}
	if workers > len(spec.Cells) {
		workers = len(spec.Cells)
	}
	rep := &Report[R]{Spec: spec, Results: make([]CellResult[R], len(spec.Cells))}
	start := time.Now()
	if opts.Reporter != nil {
		opts.Reporter.begin(ctx, spec.Name, len(spec.Cells))
		// finish() also stops the heartbeat; the defer covers the early
		// error returns below so the ticker goroutine can never leak.
		defer opts.Reporter.stop()
	}
	var prog *progressTracker
	if opts.OnProgress != nil {
		every := opts.ProgressEvery
		if every <= 0 {
			every = DefaultProgressEvery
		}
		prog = newProgressTracker(opts.OnProgress, spec.Name, len(spec.Cells), every)
		// finish() emits the final snapshot on the ordinary return path;
		// the defer only guarantees the ticker goroutine cannot outlive
		// an early error return.
		defer func() {
			if prog.stopTick != nil {
				prog.stopTick()
				<-prog.tickDone
			}
		}()
	}
	// A breaker implies collect: device failures feed the breaker
	// instead of aborting the campaign.
	collect := opts.Collect || opts.Breaker != nil
	var breaker *fleetBreaker
	if opts.Breaker != nil {
		breaker = newFleetBreaker(&spec, *opts.Breaker)
	}

	// Replay checkpointed cells and queue the rest.
	var mu sync.Mutex // guards rep counters and checkpoint appends
	pending := make([]int, 0, len(spec.Cells))
	for i, cell := range spec.Cells {
		rep.Results[i].Cell = cell
		if opts.Checkpoint != nil {
			if raw, done := opts.Checkpoint.Done(cell.Key); done {
				var v R
				if err := json.Unmarshal(raw, &v); err != nil {
					return nil, fmt.Errorf("sched: checkpoint replay of %s: %w", cell.Key, err)
				}
				rep.Results[i].Value = v
				rep.Results[i].Replayed = true
				rep.Replayed++
				breaker.resolve(cell.Device, i, true)
				if opts.Reporter != nil {
					opts.Reporter.replayed(cell)
				}
				if prog != nil {
					prog.cellReplayed()
				}
				continue
			}
		}
		pending = append(pending, i)
	}

	jobs := make(chan int)
	var abort bool       // fail-fast tripped; guarded by mu
	var abortCause error // the failure that tripped it; guarded by mu
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			wexec := exec
			if opts.NewWorkerExec != nil {
				wexec = opts.NewWorkerExec()
			}
			for i := range jobs {
				cell := spec.Cells[i]
				// Cancellation check between cells: once the campaign ctx
				// is dead, remaining cells are abandoned as incomplete —
				// never recorded as failures, never checkpointed — so the
				// drain leaves a cleanly resumable state.
				if ctx.Err() != nil {
					rep.Results[i].Err = ErrInterrupted
					rep.Results[i].Interrupted = true
					mu.Lock()
					rep.Interrupted++
					mu.Unlock()
					if opts.Reporter != nil {
						opts.Reporter.interrupted(cell)
					}
					if prog != nil {
						prog.cellInterrupted()
					}
					continue
				}
				mu.Lock()
				aborted := abort
				mu.Unlock()
				if aborted {
					rep.Results[i].Err = ErrAborted
					mu.Lock()
					rep.Aborted++
					mu.Unlock()
					continue
				}
				if breaker.shouldSkip(cell.Device, i) {
					rep.Results[i].Err = ErrQuarantined
					rep.Results[i].Quarantined = true
					mu.Lock()
					rep.Quarantined++
					mu.Unlock()
					if opts.Reporter != nil {
						opts.Reporter.quarantined(cell)
					}
					if prog != nil {
						prog.cellQuarantined()
					}
					continue
				}
				// Consult the result cache before executing. A verified hit
				// resolves the cell without touching the simulator; it still
				// feeds the breaker (as the success it recorded) and the
				// checkpoint (resume must not depend on the cache retaining
				// the entry). A corrupt or undecodable entry — already
				// quarantined by the cache — just recomputes.
				var cacheDigest string
				if opts.Cache != nil {
					cacheDigest = spec.CellDigest(opts.CacheSalt, cell)
					payload, hit, corrupt := opts.Cache.Get(cacheDigest)
					if hit {
						var v R
						if uerr := json.Unmarshal(payload, &v); uerr != nil {
							// The envelope verified but the value no longer
							// decodes as R: the result type moved underneath
							// the cache. Same remedy as corruption.
							hit, corrupt = false, true
						} else {
							rep.Results[i].Value = v
							rep.Results[i].CacheHit = true
							mu.Lock()
							rep.CacheHits++
							var cerr error
							if opts.Checkpoint != nil {
								cerr = opts.Checkpoint.record(cell.Key, v)
							}
							if cerr != nil {
								rep.Results[i].Err = cerr
								rep.Results[i].CacheHit = false
								rep.CacheHits--
								rep.Failed++
								if !collect && !abort {
									abort = true
									abortCause = cerr
								}
							}
							mu.Unlock()
							breaker.resolve(cell.Device, i, rep.Results[i].Err == nil)
							if rep.Results[i].Err == nil {
								if opts.Reporter != nil {
									opts.Reporter.cacheHit(cell)
								}
								if prog != nil {
									prog.cellCacheHit()
								}
							}
							continue
						}
					}
					mu.Lock()
					if corrupt {
						rep.CacheCorrupt++
					} else {
						rep.CacheMisses++
					}
					mu.Unlock()
					if prog != nil {
						prog.cellCacheMiss(corrupt)
					}
				}
				if opts.OnCellStart != nil {
					mu.Lock()
					opts.OnCellStart(cell)
					mu.Unlock()
				}
				cellCtx, cancelCell := ctx, context.CancelFunc(nil)
				if opts.CellTimeout > 0 {
					cellCtx, cancelCell = context.WithTimeout(ctx, opts.CellTimeout)
				}
				cellStart := time.Now()
				value, attempts, err := runCell(cellCtx, &spec, cell, wexec, &opts)
				if cancelCell != nil {
					cancelCell()
				}
				wall := time.Since(cellStart)
				if err != nil && ctx.Err() != nil && isContextErr(err) {
					// The campaign ctx died while this cell was in flight and
					// the cell's failure is that cancellation surfacing — an
					// abandoned cell, not a failed one. (A cell-timeout
					// overrun with the campaign ctx alive takes the ordinary
					// failure path below instead.)
					rep.Results[i].Err = ErrInterrupted
					rep.Results[i].Interrupted = true
					rep.Results[i].Attempts = attempts
					mu.Lock()
					rep.Interrupted++
					mu.Unlock()
					if opts.Reporter != nil {
						opts.Reporter.interrupted(cell)
					}
					if prog != nil {
						prog.cellInterrupted()
					}
					continue
				}
				rep.Results[i].Value = value
				rep.Results[i].Err = err
				rep.Results[i].Attempts = attempts
				rep.Results[i].WallSeconds = wall.Seconds()
				instances := 0
				if err == nil && opts.Instances != nil {
					instances = opts.Instances(value)
				}
				mu.Lock()
				rep.Executed++
				rep.Retried += attempts - 1
				if err != nil {
					rep.Failed++
					if !collect && !abort {
						abort = true
						abortCause = fmt.Errorf("sched: cell %s: %w", cell.Key, err)
					}
				} else if opts.Checkpoint != nil {
					if cerr := opts.Checkpoint.record(cell.Key, value); cerr != nil {
						rep.Results[i].Err = cerr
						rep.Failed++
						if !abort {
							abort = true
							abortCause = cerr
						}
					}
				}
				mu.Unlock()
				// Publish after validation: only a cell that completed
				// cleanly — executed without error and, when checkpointing,
				// durably recorded — enters the cache. Failed, faulted,
				// interrupted and aborted cells never do.
				if opts.Cache != nil && rep.Results[i].Err == nil {
					if data, merr := json.Marshal(value); merr == nil {
						opts.Cache.Put(cacheDigest, data)
					}
				}
				breaker.resolve(cell.Device, i, rep.Results[i].Err == nil)
				if opts.Reporter != nil {
					opts.Reporter.cellDone(cell, wall, instances, rep.Results[i].Err == nil, attempts-1)
				}
				if prog != nil {
					prog.cellDone(cell, wall, instances, rep.Results[i].Err == nil, attempts-1)
				}
			}
		}()
	}
	for _, i := range pending {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	if opts.Breaker != nil {
		// Settle quarantine verdicts in spec order: speculative results
		// of quarantined cells are discarded, counters recomputed, and
		// per-device health summarized — all worker-count-independent.
		applyBreaker(rep, *opts.Breaker)
	}
	rep.WallSeconds = time.Since(start).Seconds()
	var syncErr error
	if opts.Checkpoint != nil {
		// Flush recorded cells to stable storage before handing control
		// back: a drain followed by an immediate process exit must not
		// lose completed work to the page cache.
		syncErr = opts.Checkpoint.Sync()
		if derr := opts.Checkpoint.Degraded(); derr != nil {
			// The disk filled or failed mid-campaign and the checkpoint
			// went in-memory; the results are whole, their durability is
			// not. Callers surface this as a degraded completion (CLI
			// exit 2), never a crash.
			rep.StorageDegraded = true
			rep.StorageErr = derr.Error()
		}
	}
	if opts.Cache != nil {
		if derr := opts.Cache.Degraded(); derr != nil {
			// The cache disk filled or failed; the campaign recomputed
			// whatever it could not reuse. Reported, never fatal — and
			// never part of the exit status.
			rep.CacheDegraded = true
			rep.CacheErr = derr.Error()
		}
	}
	counters := reportCounters{
		executed: rep.Executed, replayed: rep.Replayed,
		failed: rep.Failed, quarantined: rep.Quarantined,
		interrupted: rep.Interrupted, retried: rep.Retried,
		health:          rep.Health,
		storageDegraded: rep.StorageDegraded,
		cacheHits:       rep.CacheHits,
		cacheMisses:     rep.CacheMisses,
		cacheCorrupt:    rep.CacheCorrupt,
		cacheDegraded:   rep.CacheDegraded,
	}
	if opts.Reporter != nil {
		opts.Reporter.finish(counters)
	}
	if prog != nil {
		prog.finish(counters)
	}
	if !collect && abortCause != nil {
		return rep, abortCause
	}
	if rep.Interrupted > 0 {
		return rep, fmt.Errorf("sched: campaign %q interrupted: %d of %d cells not completed: %w (%v)",
			spec.Name, rep.Interrupted, len(spec.Cells), ErrInterrupted, ctx.Err())
	}
	if syncErr != nil {
		return rep, syncErr
	}
	return rep, nil
}

// isContextErr reports whether err carries a context cancellation or
// deadline expiry anywhere in its chain.
func isContextErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// runCell executes one cell's attempt/retry loop under panic recovery.
// Retry waits are jittered (Spec.RetryBackoff) and interruptible: a
// context cancellation during the wait abandons the cell immediately
// with an error wrapping the context's.
func runCell[R any](ctx context.Context, spec *Spec, cell Cell, exec Exec[R], opts *Options[R]) (value R, attempts int, err error) {
	for attempt := 0; ; attempt++ {
		attempts++
		value, err = attemptCell(ctx, spec, cell, attempt, exec)
		if err == nil {
			return value, attempts, nil
		}
		if !IsTransient(err) || attempt >= opts.MaxRetries {
			return value, attempts, err
		}
		if wait := spec.RetryBackoff(cell.Key, attempt, opts.Backoff); wait > 0 {
			if !sleepInterruptible(ctx, wait, opts.Sleep) {
				return value, attempts, fmt.Errorf("sched: cell %s: retry wait interrupted: %w", cell.Key, ctx.Err())
			}
		}
	}
}

// sleepInterruptible waits for d or until ctx is cancelled, reporting
// whether the full wait elapsed. A non-nil sleep (the injected test
// clock) replaces the timer; cancellation is still honored around it.
func sleepInterruptible(ctx context.Context, d time.Duration, sleep func(time.Duration)) bool {
	if sleep != nil {
		sleep(d)
		return ctx.Err() == nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}

// attemptCell runs a single attempt, converting panics into errors so
// one bad cell cannot take down the whole fleet run.
func attemptCell[R any](ctx context.Context, spec *Spec, cell Cell, attempt int, exec Exec[R]) (value R, err error) {
	defer func() {
		if r := recover(); r != nil {
			buf := make([]byte, 4096)
			buf = buf[:runtime.Stack(buf, false)]
			err = fmt.Errorf("sched: cell %s panicked: %v\n%s", cell.Key, r, buf)
		}
	}()
	return exec(ctx, cell, spec.CellRand(cell.Key, attempt))
}
