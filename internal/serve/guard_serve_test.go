package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/diskio"
	"repro/internal/guard"
)

// waitForState polls the store until the job reaches want (or any
// terminal state, so a wrong outcome fails fast instead of timing out).
func waitForState(t *testing.T, s *Server, id string, want JobState) *Job {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		j, ok := s.store.get(id)
		if ok && j.State == want {
			return j
		}
		if ok && j.State.Terminal() && j.State != want {
			t.Fatalf("job %s reached %s (error %q), want %s", id, j.State, j.Error, want)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s, want %s", id, j.State, want)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// waitWatched polls until the watchdog supervises n jobs — the signal
// that runJob has passed its start transition and armed the budgets.
func waitWatched(t *testing.T, s *Server, n int) {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for s.watchdog.Watched() < n {
		if time.Now().After(deadline) {
			t.Fatalf("watchdog watches %d jobs, want %d", s.watchdog.Watched(), n)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestPoisonQuarantineAfterCrashLoop is the crash-loop regression: a
// job found running at boot used to be re-queued unconditionally, so a
// job that kills the process on every attempt produced an infinite
// boot loop. With a poison cap of N the job gets N resume chances and
// is quarantined on boot N+1 — listed, inspectable, resubmittable, and
// never fed back into the loop. Boots are simulated by re-opening the
// state directory (through a FaultFS, like the disk-crash recovery
// test) with the record forced back to running in between, which is
// exactly the disk state a kill -9 mid-campaign leaves behind.
func TestPoisonQuarantineAfterCrashLoop(t *testing.T) {
	dir := t.TempDir()
	ffs := diskio.NewFaultFS(diskio.OS{}, 7)
	const cap = 2
	cfg := Config{StateDir: dir, FS: ffs, PoisonBoots: cap, Logf: t.Logf}

	// Submit through the real API so the record carries a genuine spec
	// and ID, then force it to running — the post-kill-9 disk state.
	s0, c0, _ := queuedServer(t, cfg)
	js := smallConformance()
	ctx := context.Background()
	sub, err := c0.Submit(ctx, js)
	if err != nil {
		t.Fatal(err)
	}
	id := sub.Job.ID
	markRunning := func(st *store) {
		t.Helper()
		if _, err := st.update(id, func(j *Job) {
			j.State = StateRunning
			now := time.Now().UTC()
			j.StartedAt = &now
		}); err != nil {
			t.Fatal(err)
		}
	}
	markRunning(s0.store)

	// Each New over the surviving bytes is one boot. The first cap
	// boots re-queue with the incarnation count advancing; the next
	// boot quarantines.
	for boot := 1; boot <= cap; boot++ {
		sb, err := New(cfg)
		if err != nil {
			t.Fatalf("boot %d: %v", boot, err)
		}
		j, ok := sb.store.get(id)
		if !ok {
			t.Fatalf("boot %d: job lost", boot)
		}
		if j.State != StateQueued || j.BootIncarnations != boot {
			t.Fatalf("boot %d: state %s incarnations %d, want queued/%d", boot, j.State, j.BootIncarnations, boot)
		}
		markRunning(sb.store)
	}
	sp, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	j, _ := sp.store.get(id)
	if j.State != StatePoisoned {
		t.Fatalf("boot %d: state %s, want poisoned", cap+1, j.State)
	}
	if !strings.Contains(j.Error, "quarantined") || !j.State.Terminal() {
		t.Fatalf("poisoned job not a dead letter: state %s error %q", j.State, j.Error)
	}

	// A fresh server over the same state is healthy: the dead letter
	// stays parked (recovery must not resurrect it), readiness is green
	// and other jobs run normally.
	s, c := startServer(t, Config{StateDir: dir, PoisonBoots: cap, Runners: 1, JobWorkers: 4})
	if j, _ := s.store.get(id); j.State != StatePoisoned {
		t.Fatalf("recovery changed poisoned job to %s", j.State)
	}
	resp, err := http.Get(c.BaseURL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/readyz = %d with a quarantined job, want 200", resp.StatusCode)
	}
	mresp, err := http.Get(c.BaseURL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var mbuf bytes.Buffer
	mbuf.ReadFrom(mresp.Body)
	mresp.Body.Close()
	if !strings.Contains(mbuf.String(), `mcmutants_jobs{state="poisoned"} 1`) {
		t.Error("metrics do not expose the poisoned job")
	}

	other := smallConformance()
	other.Seed = 11
	osub, err := c.Submit(ctx, other)
	if err != nil {
		t.Fatal(err)
	}
	if oj, err := c.Wait(ctx, osub.Job.ID, 5*time.Millisecond); err != nil || oj.State != StateDone {
		t.Fatalf("fresh job on recovered server: %v / %+v", err, oj)
	}

	// Resubmitting the quarantined spec is the explicit human override:
	// the job re-queues with a fresh incarnation budget and completes
	// byte-identically to the CLI artifact.
	rsub, err := c.Submit(ctx, js)
	if err != nil {
		t.Fatal(err)
	}
	if !rsub.Existing || !rsub.Requeued {
		t.Fatalf("resubmission = %+v, want existing+requeued", rsub)
	}
	if rsub.Job.BootIncarnations != 0 {
		t.Fatalf("resubmission kept %d boot incarnations, want 0", rsub.Job.BootIncarnations)
	}
	rj, err := c.Wait(ctx, id, 5*time.Millisecond)
	if err != nil || rj.State != StateDone {
		t.Fatalf("resubmitted job: %v / %+v", err, rj)
	}
	got, err := c.Report(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	if want := localConformanceArtifact(t, rj.Spec); !bytes.Equal(got, want) {
		t.Fatal("resubmitted dead letter's report differs from the CLI artifact")
	}
}

// TestWatchdogDeadlineAndStallFakeClock drives both budget expiries
// through the injected clock, with zero wall-clock sleeps deciding the
// outcome: two distributed jobs with no workers connected are a
// genuine wedge (the coordinator waits forever, progress counters
// frozen), and the fake clock decides exactly which budget fires at
// which tick. Expiry must drain each job to its typed terminal state
// without killing the other job, the server, or any goroutine's
// cleanup path.
func TestWatchdogDeadlineAndStallFakeClock(t *testing.T) {
	fc := guard.NewFakeClock(time.Unix(1_700_000_000, 0))
	s, c := startServer(t, Config{
		Runners: 2, JobWorkers: 2, EnableDist: true,
		Clock: fc, GuardEvery: time.Hour, // ticks are driven manually
	})
	ctx := context.Background()

	// Warm the server up (runner pool, accept loop, guard ticker all
	// spawned) before taking the goroutine baseline, so the settlement
	// check below measures only the expired jobs' cleanup.
	warm := smallConformance()
	warm.Seed = 9
	wsub, err := c.Submit(ctx, warm)
	if err != nil {
		t.Fatal(err)
	}
	if wj, err := c.Wait(ctx, wsub.Job.ID, 5*time.Millisecond); err != nil || wj.State != StateDone {
		t.Fatalf("warmup job: %v / %+v", err, wj)
	}
	baseline := runtime.NumGoroutine()

	jsWall := smallConformance()
	jsWall.Distributed = true
	jsWall.WallDeadline = Duration(time.Hour)
	jsStall := smallConformance()
	jsStall.Distributed = true
	jsStall.Seed = 8
	jsStall.StallTimeout = Duration(30 * time.Minute)

	subWall, err := c.Submit(ctx, jsWall)
	if err != nil {
		t.Fatal(err)
	}
	subStall, err := c.Submit(ctx, jsStall)
	if err != nil {
		t.Fatal(err)
	}
	waitWatched(t, s, 2)

	// 31 minutes in: the stall budget is blown, the wall budget is not.
	fc.Advance(31 * time.Minute)
	s.guardTick()
	jStall := waitForState(t, s, subStall.Job.ID, StateStalled)
	if !strings.Contains(jStall.Error, "no progress") {
		t.Fatalf("stalled job error %q does not explain the stall", jStall.Error)
	}
	if j, _ := s.store.get(subWall.Job.ID); j.State != StateRunning {
		t.Fatalf("stall expiry hit the wrong job: deadline job is %s", j.State)
	}

	// 61 minutes in: the wall deadline fires.
	fc.Advance(30 * time.Minute)
	s.guardTick()
	jWall := waitForState(t, s, subWall.Job.ID, StateDeadlineExceeded)
	if !strings.Contains(jWall.Error, "deadline exceeded") {
		t.Fatalf("deadline job error %q does not explain the expiry", jWall.Error)
	}

	// Both drains were graceful: every goroutine unwound and the server
	// still runs jobs.
	settledGoroutines(t, baseline)
	quick := smallConformance()
	quick.Seed = 10
	qsub, err := c.Submit(ctx, quick)
	if err != nil {
		t.Fatal(err)
	}
	if qj, err := c.Wait(ctx, qsub.Job.ID, 5*time.Millisecond); err != nil || qj.State != StateDone {
		t.Fatalf("server unhealthy after expiries: %v / %+v", err, qj)
	}
}

// TestBrownoutShedsAndRecovers scripts a memory-pressure trajectory
// through the injected sampler: soft pauses drain and refuses
// submissions with 429+Retry-After, hard cancels the newest running
// job into the (non-terminal) shed state, and recovery re-queues it.
func TestBrownoutShedsAndRecovers(t *testing.T) {
	var heap atomic.Uint64
	s, c := startServer(t, Config{
		Runners: 1, JobWorkers: 2, EnableDist: true,
		MemSoftBytes: 1 << 20, MemHardBytes: 2 << 20,
		ReadMem: heap.Load, GuardEvery: time.Hour,
	})
	ctx := context.Background()

	js := smallConformance()
	js.Distributed = true // no workers: runs until shed, completes nothing
	sub, err := c.Submit(ctx, js)
	if err != nil {
		t.Fatal(err)
	}
	id := sub.Job.ID
	waitForState(t, s, id, StateRunning)

	// Soft watermark: drain pauses, submissions shed. The raw request
	// matters — serve.Client transparently retries 429.
	heap.Store(1<<20 + 1)
	s.guardTick()
	fresh := smallConformance()
	fresh.Seed = 99
	body, _ := json.Marshal(fresh)
	resp, err := http.Post(c.BaseURL+"/api/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var rbuf bytes.Buffer
	rbuf.ReadFrom(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("submission under soft watermark = %d (%s), want 429", resp.StatusCode, rbuf.String())
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 carries no Retry-After hint")
	}
	if !strings.Contains(rbuf.String(), "soft") {
		t.Errorf("shed response %q does not name the watermark", rbuf.String())
	}
	hresp, err := http.Get(c.BaseURL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health map[string]any
	json.NewDecoder(hresp.Body).Decode(&health)
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz = %d during brownout, want 200 (non-gating)", hresp.StatusCode)
	}
	if health["brownout"] != "soft" {
		t.Errorf("healthz brownout = %v, want soft", health["brownout"])
	}

	// Hard watermark: the newest running job is cancelled into shed —
	// parked, not terminal, no runner.
	heap.Store(2<<20 + 1)
	s.guardTick()
	sj := waitForState(t, s, id, StateShed)
	if sj.State.Terminal() {
		t.Fatal("shed must not be terminal")
	}
	if sj.StartedAt != nil {
		t.Error("shed job still claims a start time")
	}
	mresp, err := http.Get(c.BaseURL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var mbuf bytes.Buffer
	mbuf.ReadFrom(mresp.Body)
	mresp.Body.Close()
	for _, want := range []string{
		"mcmutants_guard_brownout_level 2",
		"mcmutants_guard_submissions_shed_total 1",
		"mcmutants_guard_jobs_shed_total 1",
	} {
		if !strings.Contains(mbuf.String(), want) {
			t.Errorf("metrics missing %q", want)
		}
	}

	// Pressure clears: the shed job re-queues and runs again.
	heap.Store(0)
	s.guardTick()
	rj := waitForState(t, s, id, StateRunning)
	if rj.Resumes == 0 {
		t.Error("re-queued shed job counts no resume")
	}
	if _, err := c.Cancel(ctx, id); err != nil {
		t.Fatal(err)
	}
	if j, err := c.Wait(ctx, id, 5*time.Millisecond); err != nil || j.State != StateCancelled {
		t.Fatalf("cancel after recovery: %v / %+v", err, j)
	}
}

// TestBudgetPolicyAndJobIDStability: caps reject at admission with
// 400, and server-side budget defaults must not leak into job
// identity — the same budget-free spec hashes to the same ID on a
// server with defaults and a server without.
func TestBudgetPolicyAndJobIDStability(t *testing.T) {
	ctx := context.Background()
	_, capped, _ := queuedServer(t, Config{Budgets: guard.Limits{MaxWallDeadline: 30 * time.Minute}})
	over := smallConformance()
	over.WallDeadline = Duration(time.Hour)
	if _, err := capped.Submit(ctx, over); err == nil {
		t.Fatal("over-cap wall deadline admitted")
	} else {
		var ae *APIError
		if !errors.As(err, &ae) || ae.StatusCode != http.StatusBadRequest {
			t.Fatalf("over-cap rejection = %v, want 400", err)
		}
	}
	neg := smallConformance()
	neg.StallTimeout = Duration(-time.Second)
	if _, err := capped.Submit(ctx, neg); err == nil {
		t.Fatal("negative stall budget admitted")
	}

	_, plain, _ := queuedServer(t, Config{})
	_, defaulted, _ := queuedServer(t, Config{Budgets: guard.Limits{
		DefaultWallDeadline: time.Hour,
		DefaultCellTimeout:  time.Minute,
		DefaultStallTimeout: time.Hour,
	}})
	js := smallConformance()
	a, err := plain.Submit(ctx, js)
	if err != nil {
		t.Fatal(err)
	}
	b, err := defaulted.Submit(ctx, js)
	if err != nil {
		t.Fatal(err)
	}
	if a.Job.ID != b.Job.ID {
		t.Fatalf("server defaults changed job identity: %s vs %s", a.Job.ID, b.Job.ID)
	}
}

// TestGuardedRunByteIdentity is the no-op guarantee: a job running
// under generous budgets that never fire must produce an artifact
// byte-identical to the unguarded CLI run of the same spec.
func TestGuardedRunByteIdentity(t *testing.T) {
	_, c := startServer(t, Config{Runners: 1, JobWorkers: 3, Budgets: guard.Limits{
		DefaultWallDeadline: time.Hour,
		DefaultStallTimeout: time.Hour,
	}})
	ctx := context.Background()
	js := smallConformance()
	js.WallDeadline = Duration(2 * time.Hour)
	js.CellTimeout = Duration(30 * time.Second)
	js.StallTimeout = Duration(time.Hour)
	sub, err := c.Submit(ctx, js)
	if err != nil {
		t.Fatal(err)
	}
	j, err := c.Wait(ctx, sub.Job.ID, 5*time.Millisecond)
	if err != nil || j.State != StateDone {
		t.Fatalf("guarded job: %v / %+v", err, j)
	}
	got, err := c.Report(ctx, j.ID)
	if err != nil {
		t.Fatal(err)
	}
	if want := localConformanceArtifact(t, j.Spec); !bytes.Equal(got, want) {
		t.Fatal("guarded run differs from unguarded CLI artifact")
	}
}

// TestBuildInfoSurfaces: the build identity shows up in /healthz and
// as the mcmutants_build_info metric.
func TestBuildInfoSurfaces(t *testing.T) {
	_, c, hs := queuedServer(t, Config{})
	resp, err := http.Get(hs.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health map[string]any
	json.NewDecoder(resp.Body).Decode(&health)
	resp.Body.Close()
	if v, _ := health["version"].(string); v == "" {
		t.Errorf("healthz version missing: %v", health)
	}
	if g, _ := health["go"].(string); g == "" {
		t.Errorf("healthz go version missing: %v", health)
	}
	mresp, err := http.Get(c.BaseURL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	buf.ReadFrom(mresp.Body)
	mresp.Body.Close()
	if !strings.Contains(buf.String(), "mcmutants_build_info{version=") {
		t.Error("metrics missing mcmutants_build_info")
	}
}
