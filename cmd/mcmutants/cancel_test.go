package main

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// exit130 asserts err carries the interrupted-run exit code.
func exit130(t *testing.T, err error) {
	t.Helper()
	if err == nil {
		t.Fatal("interrupted run returned no error")
	}
	var ec interface{ ExitCode() int }
	if !errors.As(err, &ec) {
		t.Fatalf("interrupted run error carries no exit code: %v", err)
	}
	if ec.ExitCode() != 130 {
		t.Fatalf("interrupted run exit code = %d, want 130: %v", ec.ExitCode(), err)
	}
}

// TestTuneDeadlineInterruptsAndResumes: an expired -deadline drains the
// tune campaign — exit 130, resume hint printed, checkpoint and partial
// dataset on disk — and resuming without the deadline produces a
// dataset byte-identical to a run that was never interrupted.
func TestTuneDeadlineInterruptsAndResumes(t *testing.T) {
	dir := t.TempDir()
	base := []string{"tune", "-envs", "1", "-site-iters", "2", "-pte-iters", "1",
		"-devices", "AMD", "-quiet"}

	cleanPath := filepath.Join(dir, "clean.json")
	if _, err := capture(t, func() error {
		return run(append(base, "-out", cleanPath))
	}); err != nil {
		t.Fatal(err)
	}
	clean, err := os.ReadFile(cleanPath)
	if err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(dir, "tuning.json")
	out, runErr := capture(t, func() error {
		return run(append(base, "-out", path, "-resume", "-deadline", "1ns"))
	})
	exit130(t, runErr)
	if !strings.Contains(runErr.Error(), "-resume") {
		t.Errorf("interrupted tune error lacks a resume hint: %v", runErr)
	}
	if !strings.Contains(out, "interrupted") {
		t.Errorf("interrupted tune output does not say so:\n%s", out)
	}
	if _, err := os.Stat(path + ".ckpt"); err != nil {
		t.Fatalf("interrupted tune left no checkpoint: %v", err)
	}
	partial, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("interrupted tune left no partial dataset: %v", err)
	}
	if !strings.Contains(string(partial), `"interrupted": true`) {
		t.Error("partial dataset not marked interrupted")
	}

	if _, err := capture(t, func() error {
		return run(append(base, "-out", path, "-resume"))
	}); err != nil {
		t.Fatal(err)
	}
	resumed, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(resumed) != string(clean) {
		t.Fatal("resumed dataset is not byte-identical to the uninterrupted run")
	}
}

// TestCampaignDeadlineInterrupts: both campaign kinds follow the same
// drain path under an expired -deadline.
func TestCampaignDeadlineInterrupts(t *testing.T) {
	out, err := capture(t, func() error {
		return run([]string{"campaign", "-kind", "conformance", "-devices", "AMD",
			"-iters", "4", "-parallel", "2", "-deadline", "1ns", "-quiet"})
	})
	exit130(t, err)
	if !strings.Contains(out, "interrupted") {
		t.Errorf("interrupted conformance output does not say so:\n%s", out)
	}

	out, err = capture(t, func() error {
		return run([]string{"campaign", "-kind", "evaluate", "-devices", "AMD",
			"-envs", "pte", "-iters", "2", "-parallel", "2", "-deadline", "1ns", "-quiet"})
	})
	exit130(t, err)
	if !strings.Contains(out, "interrupted") {
		t.Errorf("interrupted evaluate output does not say so:\n%s", out)
	}
}

// TestCampaignDeadlineResumesByteIdentical: a conformance campaign
// interrupted by -deadline resumes from its checkpoint and reports
// exactly what an uninterrupted campaign reports.
func TestCampaignDeadlineResumesByteIdentical(t *testing.T) {
	dir := t.TempDir()
	args := func(extra ...string) []string {
		return append([]string{"campaign", "-kind", "conformance", "-devices", "AMD,Intel",
			"-iters", "4", "-parallel", "4", "-quiet"}, extra...)
	}
	clean, err := capture(t, func() error { return run(args()) })
	if err != nil {
		t.Fatal(err)
	}

	ckpt := filepath.Join(dir, "conf.ckpt")
	_, runErr := capture(t, func() error {
		return run(args("-checkpoint", ckpt, "-deadline", "1ns"))
	})
	exit130(t, runErr)

	resumed, err := capture(t, func() error {
		return run(args("-checkpoint", ckpt, "-resume"))
	})
	if err != nil {
		t.Fatal(err)
	}
	if resumed != clean {
		t.Fatalf("resumed campaign output differs:\n%s\nvs\n%s", resumed, clean)
	}
}

// TestCellTimeoutFlagAccepted: a generous -cell-timeout changes nothing
// about a healthy run.
func TestCellTimeoutFlagAccepted(t *testing.T) {
	out, err := capture(t, func() error {
		return run([]string{"campaign", "-kind", "conformance", "-devices", "AMD",
			"-iters", "4", "-parallel", "2", "-cell-timeout", "1h", "-quiet"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "fleet conforms") {
		t.Errorf("bounded healthy campaign did not conform:\n%s", out)
	}
}
