package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// captureStderr redirects stderr around fn; the cache summary is
// stderr-only observability, so these tests read it there.
func captureStderr(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	old := os.Stderr
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stderr = w
	runErr := fn()
	w.Close()
	os.Stderr = old
	out, err := readAll(r)
	if err != nil {
		t.Fatal(err)
	}
	return out, runErr
}

// TestCacheFlagValidationFailsFast: an unusable -cache-dir (or a
// nonsensical budget) is a configuration error rejected with exit 1
// before any campaign work begins — the same policy -out and the
// profile paths get — and never a silent fall-through to uncached
// execution.
func TestCacheFlagValidationFailsFast(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "report.json")
	inTheWay := filepath.Join(dir, "not-a-dir")
	if err := os.WriteFile(inTheWay, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	cases := [][]string{
		{"campaign", "-cache-dir", inTheWay, "-iters", "1000000", "-out", out, "-quiet"},
		{"campaign", "-cache-dir", dir, "-cache-max-mb", "-1", "-iters", "1000000", "-out", out, "-quiet"},
		{"tune", "-cache-dir", inTheWay, "-site-iters", "1000000", "-out", out, "-quiet"},
		{"work", "-coordinator", "http://127.0.0.1:1", "-cache-dir", inTheWay, "-quiet"},
	}
	for _, args := range cases {
		start := time.Now()
		err := run(args)
		if err == nil {
			t.Errorf("%v: accepted", args)
			continue
		}
		if code := exitCode(err); code != 1 {
			t.Errorf("%v: exit %d (%v), want 1", args, code, err)
		}
		if el := time.Since(start); el > 5*time.Second {
			t.Errorf("%v: rejected only after %v — validation ran after campaign work started", args, el)
		}
		if _, statErr := os.Stat(out); !os.IsNotExist(statErr) {
			t.Errorf("%v: artifact written despite fatal flag error", args)
		}
	}
}

// TestCampaignCacheWarmRerunByteIdentical is the CLI acceptance check:
// the same campaign run cold, warm, and with caching off produces
// byte-identical report artifacts; the warm run reuses every cell and
// says so on stderr.
func TestCampaignCacheWarmRerunByteIdentical(t *testing.T) {
	dir := t.TempDir()
	cacheDir := filepath.Join(dir, "cache")
	base := []string{"campaign", "-kind", "conformance", "-devices", "AMD",
		"-iters", "2", "-quiet"}
	report := func(name string, extra ...string) string {
		t.Helper()
		path := filepath.Join(dir, name)
		args := append(append([]string(nil), base...), "-out", path)
		args = append(args, extra...)
		stderr, err := captureStderr(t, func() error {
			_, runErr := capture(t, func() error { return run(args) })
			return runErr
		})
		if err != nil {
			t.Fatalf("%v: %v", args, err)
		}
		t.Logf("%s stderr: %s", name, strings.TrimSpace(stderr))
		if name == "warm.json" && !strings.Contains(stderr, "cache:") {
			t.Fatalf("warm run printed no cache summary:\n%s", stderr)
		}
		if name == "warm.json" && strings.Contains(stderr, "cache: 0 hit(s)") {
			t.Fatalf("warm run had zero cache hits:\n%s", stderr)
		}
		raw, rerr := os.ReadFile(path)
		if rerr != nil {
			t.Fatal(rerr)
		}
		return string(raw)
	}

	off := report("off.json")
	cold := report("cold.json", "-cache-dir", cacheDir)
	warm := report("warm.json", "-cache-dir", cacheDir)
	if cold != off {
		t.Fatal("cold cached artifact differs from the cache-off artifact")
	}
	if warm != off {
		t.Fatal("warm cached artifact differs from the cache-off artifact")
	}
	noTmpResidue(t, filepath.Join(cacheDir, "objects"))
}

// TestTuneCacheWarmRerunByteIdentical: the tuning pipeline shares the
// cache seam; a warm re-run reuses the simulated environments and the
// dataset bytes never change.
func TestTuneCacheWarmRerunByteIdentical(t *testing.T) {
	dir := t.TempDir()
	cacheDir := filepath.Join(dir, "cache")
	base := []string{"tune", "-envs", "1", "-site-iters", "2", "-pte-iters", "1",
		"-devices", "AMD", "-quiet"}
	runOnce := func(name string, extra ...string) (string, string) {
		t.Helper()
		path := filepath.Join(dir, name)
		args := append(append([]string(nil), base...), "-out", path)
		args = append(args, extra...)
		stderr, err := captureStderr(t, func() error {
			_, runErr := capture(t, func() error { return run(args) })
			return runErr
		})
		if err != nil {
			t.Fatalf("%v: %v", args, err)
		}
		raw, rerr := os.ReadFile(path)
		if rerr != nil {
			t.Fatal(rerr)
		}
		return string(raw), stderr
	}

	off, _ := runOnce("off.json")
	cold, _ := runOnce("cold.json", "-cache-dir", cacheDir)
	warm, stderr := runOnce("warm.json", "-cache-dir", cacheDir)
	if cold != off || warm != off {
		t.Fatal("cached tune dataset differs from the cache-off dataset")
	}
	if strings.Contains(stderr, "cache: 0 hit(s)") || !strings.Contains(stderr, "cache:") {
		t.Fatalf("warm tune run did not reuse cached cells:\n%s", stderr)
	}
}
