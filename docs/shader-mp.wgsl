// MP — generated litmus shader (mutant of MP-CO, weakening po-loc)
struct TestLocations { value: array<atomic<u32>> }
struct ReadResults { value: array<u32> }
struct TestParams { num_instances: u32, perm_p: u32, perm_q: u32, stride: u32, loc_offset: u32 }

@group(0) @binding(0) var<storage, read_write> test_locations : TestLocations;
@group(0) @binding(1) var<storage, read_write> read_results : ReadResults;
@group(0) @binding(2) var<uniform> params : TestParams;

fn permute(v : u32) -> u32 {
  // co-prime modular permutation: no divergence, no simple v+1 pattern
  return (v * params.perm_p + params.perm_q) % params.num_instances;
}

@compute @workgroup_size(256)
fn main(@builtin(global_invocation_id) gid : vec3<u32>) {
  var inst = gid.x;
  // thread 0
  atomicStore(&test_locations.value[inst * params.stride], 1u);
  atomicStore(&test_locations.value[params.num_instances * params.stride + permute(inst) * params.stride + params.loc_offset], 2u);
  // thread 1
  inst = permute(inst);
  read_results.value[0] = atomicLoad(&test_locations.value[params.num_instances * params.stride + permute(inst) * params.stride + params.loc_offset]);
  read_results.value[1] = atomicLoad(&test_locations.value[inst * params.stride]);
}
