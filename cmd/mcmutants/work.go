package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/gpu"
)

// distFlags is the campaign subcommand's distributed-coordination flag
// group. With -workers-addr set, the campaign process becomes a
// coordinator: it serves the cell grid as leased ranges over HTTP and
// merges worker deliveries instead of executing cells itself.
type distFlags struct {
	addr       *string
	leaseTTL   *time.Duration
	rangeCells *int
	stall      *time.Duration
}

// addDistFlags registers the coordinator flags on fs.
func addDistFlags(fs *flag.FlagSet) *distFlags {
	return &distFlags{
		addr: fs.String("workers-addr", "",
			"coordinate remote `mcmutants work` processes on this listen address instead of executing locally (port 0 picks a free port, printed on stdout)"),
		leaseTTL: fs.Duration("lease-ttl", 10*time.Second,
			"worker lease deadline; a worker that misses renewal forfeits its range (with -workers-addr)"),
		rangeCells: fs.Int("range-cells", 8, "cells per leased range (with -workers-addr)"),
		stall: fs.Duration("stall-timeout", 0,
			"complete degraded when no worker makes progress for this long (0: wait for workers forever; with -workers-addr)"),
	}
}

// validate rejects nonsensical coordination parameters at flag-check
// time, before any campaign work begins.
func (df *distFlags) validate() error {
	if *df.addr == "" {
		return nil
	}
	if *df.leaseTTL <= 0 {
		return fmt.Errorf("-lease-ttl must be positive")
	}
	if *df.rangeCells <= 0 {
		return fmt.Errorf("-range-cells must be positive")
	}
	if *df.stall < 0 {
		return fmt.Errorf("-stall-timeout must be non-negative")
	}
	return nil
}

// serveHub starts the coordination HTTP server. The bound address goes
// to stdout (like serve) so scripts using port 0 learn the port. The
// returned stop function must be deferred.
func (df *distFlags) serveHub() (*dist.Hub, func(), error) {
	hub := dist.NewHub()
	ln, err := net.Listen("tcp", *df.addr)
	if err != nil {
		return nil, nil, err
	}
	srv := &http.Server{Handler: hub}
	go srv.Serve(ln)
	fmt.Printf("coordinating workers on http://%s\n", ln.Addr())
	return hub, func() { srv.Close() }, nil
}

// options builds the per-campaign coordinator options.
func (df *distFlags) options(hub *dist.Hub, name string, desc json.RawMessage, logf func(string, ...any)) *core.DistOptions {
	return &core.DistOptions{
		Hub:          hub,
		Name:         name,
		Descriptor:   desc,
		LeaseTTL:     *df.leaseTTL,
		RangeCells:   *df.rangeCells,
		StallTimeout: *df.stall,
		Logf:         logf,
	}
}

// campaignWorkSpec assembles the wire descriptor advertised to workers:
// everything a worker needs to rebuild the submitting side's exact cell
// grid and retry policy (the byte-identity contract).
func campaignWorkSpec(kind string, devices, envs []string, iters int, seed uint64, fenceBug bool, fm gpu.FaultModel, retries int, cellTimeout time.Duration) core.WorkSpec {
	ws := core.WorkSpec{
		Kind:          kind,
		Devices:       devices,
		Envs:          envs,
		Iters:         iters,
		Seed:          seed,
		FenceBug:      fenceBug,
		Retries:       retries,
		CellTimeoutMS: cellTimeout.Milliseconds(),
	}
	if fm.Enabled() || fm.WatchdogTicks > 0 {
		ws.Faults = &fm
	}
	return ws
}

// cmdWork runs the worker side of a distributed campaign: it polls the
// coordinator's campaign directory, rebuilds each advertised campaign
// locally from its wire descriptor, verifies the spec manifest matches
// (a version- or flag-skewed worker refuses work rather than corrupting
// the merge), then executes leased cell ranges until the campaign
// completes. Results are delivered as checkpoint-shaped segments; the
// coordinator merges them first-wins by cell identity, so worker
// crashes, restarts and duplicated deliveries never change the report.
func cmdWork(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("work", flag.ContinueOnError)
	coordinator := fs.String("coordinator", "", "coordinator base URL, e.g. http://host:8345 (required)")
	parallel := fs.Int("parallel", 4, "scheduler workers per leased range (any count yields identical results)")
	id := fs.String("id", "", "worker identity reported to the coordinator (default host-pid)")
	poll := fs.Duration("poll", 2*time.Second, "campaign directory poll interval")
	once := fs.Bool("once", false, "exit once work is drained and the coordinator has no more campaigns (or goes away)")
	quiet := fs.Bool("quiet", false, "suppress progress output")
	pf := addProfileFlags(fs)
	chf := addCacheFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *coordinator == "" {
		return fmt.Errorf("-coordinator is required")
	}
	if *parallel <= 0 {
		return fmt.Errorf("-parallel must be positive")
	}
	if *poll <= 0 {
		return fmt.Errorf("-poll must be positive")
	}
	if err := probeOutputPaths(*pf.cpu, *pf.mem); err != nil {
		return err
	}
	// The worker's local result cache: leased cells already computed
	// under identical parameters (any worker, any campaign run) are
	// served from disk and delivered tagged as hits.
	cache, err := chf.open()
	if err != nil {
		return err
	}
	defer cacheSummary(os.Stderr, cache)
	// Workers are the hot processes of a distributed campaign, so they
	// get the same profiling story as campaign|tune. stop runs on every
	// exit path — drain, coordinator loss, and interrupt included.
	stopProf, err := pf.start()
	if err != nil {
		return err
	}
	defer stopProf()
	if *id == "" {
		host, err := os.Hostname()
		if err != nil || host == "" {
			host = "worker"
		}
		*id = fmt.Sprintf("%s-%d", host, os.Getpid())
	}
	logf := func(string, ...any) {}
	if !*quiet {
		logf = func(format string, a ...any) {
			fmt.Fprintf(os.Stderr, "mcmutants: work: "+format+"\n", a...)
		}
	}
	client := &http.Client{Timeout: 30 * time.Second}

	wait := func() error {
		select {
		case <-ctx.Done():
			return &interruptedRun{"work: interrupted"}
		case <-time.After(*poll):
			return nil
		}
	}

	// units caches locally-rebuilt campaigns by manifest: rebuilding
	// regenerates the whole mutant suite, which need not happen on
	// every directory poll.
	units := map[string]core.WorkUnit{}
	unitFor := func(info dist.WorkInfo) (core.WorkUnit, error) {
		if u, ok := units[info.Manifest]; ok {
			return u, nil
		}
		var ws core.WorkSpec
		if err := json.Unmarshal(info.Descriptor, &ws); err != nil {
			return core.WorkUnit{}, fmt.Errorf("bad descriptor: %w", err)
		}
		wo := core.DistWorkOptions{Parallel: *parallel}
		if cache != nil {
			wo.Cache = cache
		}
		planned, err := core.DistWorkOpts(ws, wo)
		if err != nil {
			return core.WorkUnit{}, err
		}
		for _, u := range planned {
			units[u.Spec.Manifest()] = u
		}
		u, ok := units[info.Manifest]
		if !ok {
			return core.WorkUnit{}, fmt.Errorf("no local work unit matches manifest %.12s (version skew?)", info.Manifest)
		}
		return u, nil
	}

	seenHub := false
	drainedAny := false
	drained := map[string]bool{} // name+manifest → completed or refused
	for {
		infos, err := dist.ListCampaigns(ctx, *coordinator, client)
		if err != nil {
			if ctx.Err() != nil {
				return &interruptedRun{"work: interrupted"}
			}
			if *once && seenHub {
				// The coordinator went away after we reached it: the
				// campaign process has exited, so the work is over.
				logf("coordinator gone (%v), exiting", err)
				return nil
			}
			logf("coordinator unreachable: %v", err)
			if werr := wait(); werr != nil {
				return werr
			}
			continue
		}
		seenHub = true
		pending := 0
		for _, info := range infos {
			key := info.Name + "/" + info.Manifest
			if info.Done || drained[key] {
				continue
			}
			pending++
			unit, err := unitFor(info)
			if err != nil {
				// A campaign this worker cannot rebuild (skewed version,
				// unknown kind) is refused permanently; others may still
				// be serviceable.
				logf("refusing campaign %s: %v", info.Name, err)
				drained[key] = true
				continue
			}
			logf("joining campaign %s (%d cells, worker %s)", info.Name, info.Cells, *id)
			w := dist.NewWorker(&dist.HTTPTransport{BaseURL: *coordinator, Campaign: info.Name, Client: client},
				unit.Spec, unit.Run, dist.WorkerOptions{ID: *id, Logf: logf})
			if err := w.Run(ctx); err != nil {
				if ctx.Err() != nil {
					return &interruptedRun{"work: interrupted"}
				}
				// The coordinator unregistering mid-RPC (campaign finished
				// without us) looks like an error; re-poll rather than die.
				logf("campaign %s: %v", info.Name, err)
				continue
			}
			logf("campaign %s drained", info.Name)
			drained[key] = true
			drainedAny = true
		}
		if *once && drainedAny && pending == 0 {
			return nil
		}
		if werr := wait(); werr != nil {
			return werr
		}
	}
}
