package gpu

import (
	"context"
	"fmt"

	"repro/internal/xrand"
)

// Device is a simulated GPU: a profile plus a (possibly empty) set of
// injected defects and an optional fault model. The device owns a
// reusable executor scratch, so sequential runs on one device allocate
// (almost) nothing after the first; the flip side is that a Device must
// never be used from multiple goroutines at once, and the RunResult a
// run returns aliases that scratch — it is valid only until the next
// Run/RunTraced call on the same device (copy out anything that must
// outlive it). A device with a loss-escalating fault model also
// accumulates an injected-fault count across runs (the path to
// ErrDeviceLost).
type Device struct {
	prof   Profile
	bugs   Bugs
	faults FaultModel
	// faultCount tallies injected faults across this device's runs,
	// driving FaultModel.LossAfter escalation.
	faultCount int
	// scratch is the reusable executor, created on first Run and reset
	// in place for every subsequent launch.
	scratch *exec
}

// NewDevice builds a device from a profile and defect set.
func NewDevice(p Profile, bugs Bugs) (*Device, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &Device{prof: p, bugs: bugs}, nil
}

// MustDevice is NewDevice panicking on error, for the fixed profiles.
func MustDevice(p Profile, bugs Bugs) *Device {
	d, err := NewDevice(p, bugs)
	if err != nil {
		panic(err)
	}
	return d
}

// Profile returns the device's profile.
func (d *Device) Profile() Profile { return d.prof }

// Bugs returns the device's injected defects.
func (d *Device) Bugs() Bugs { return d.bugs }

// SetFaults installs a fault model (see FaultModel). The zero model
// restores fault-free operation and consumes no launch randomness.
func (d *Device) SetFaults(f FaultModel) error {
	if err := f.Validate(); err != nil {
		return err
	}
	d.faults = f
	d.faultCount = 0
	return nil
}

// Faults returns the device's fault model.
func (d *Device) Faults() FaultModel { return d.faults }

// maxSimTicks bounds one kernel's simulated duration; exceeding it
// indicates a scheduling bug, not a slow kernel.
const maxSimTicks = int64(1) << 34

// watchdogDeadline is the tick past which a still-running kernel is
// declared hung.
func (d *Device) watchdogDeadline() int64 {
	if d.faults.WatchdogTicks > 0 {
		return d.faults.WatchdogTicks
	}
	return maxSimTicks
}

// Run executes one kernel dispatch to completion. Identical (spec,
// rng-state) pairs produce identical results.
//
// The returned RunResult aliases the device's executor scratch and is
// valid only until the next Run/RunTraced on this device.
//
// When a fault model is installed, one extra draw of rng seeds the
// launch's private fault stream; the launch may then fail with a typed
// *DeviceError (ErrLaunchFailed, ErrDeviceHang, ErrDeviceLost) or —
// worse — succeed with silently corrupted results, which callers
// detect by validating outcomes against their expected value domain.
func (d *Device) Run(spec LaunchSpec, rng *xrand.Rand) (*RunResult, error) {
	return d.RunCtx(context.Background(), spec, rng)
}

// RunCtx is Run with cooperative cancellation: the executor polls
// ctx.Done() on a coarse step budget (every cancelCheckSteps scheduler
// steps, plus once on entry), so a pathological kernel stops well below
// the watchdog deadline while the allocation-free hot path pays only a
// decrement and branch per step. A cancelled launch fails with an error
// wrapping ctx.Err() and leaves the executor scratch reusable — the
// next run resets it as usual.
func (d *Device) RunCtx(ctx context.Context, spec LaunchSpec, rng *xrand.Rand) (*RunResult, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	var frng *xrand.Rand
	corrupt := false
	if d.faults.Enabled() {
		frng = xrand.NewFromPath(rng.Uint64()^d.faults.Seed, d.prof.ShortName)
		if d.faults.LossAfter > 0 && d.faultCount >= d.faults.LossAfter {
			return nil, &DeviceError{Kind: FaultLost, Device: d.prof.ShortName, Injected: true}
		}
		if frng.Bool(d.faults.LaunchFailProb) {
			d.faultCount++
			return nil, &DeviceError{Kind: FaultLaunch, Device: d.prof.ShortName, Injected: true}
		}
		if frng.Bool(d.faults.HangProb) {
			// The kernel would never finish; the watchdog reclaims the
			// device at its deadline without simulating the dead time.
			d.faultCount++
			return nil, &DeviceError{Kind: FaultHang, Device: d.prof.ShortName,
				Tick: d.watchdogDeadline(), Injected: true}
		}
		corrupt = frng.Bool(d.faults.CorruptProb)
	}
	e := d.getExec(spec, rng)
	e.ctx = ctx
	err := e.run()
	e.ctx = nil
	if err != nil {
		return nil, err
	}
	res := e.result()
	if corrupt {
		d.faultCount++
		corruptResult(res, frng)
	}
	return res, nil
}

// ---- executor ----

// completionEvent is one memory operation finishing.
type completionEvent struct {
	time int64
	seq  int64 // tie-break: issue order
	tid  int32
	idx  int32
}

// locAssign remembers the latest assigned completion time per address a
// thread has touched, for program-order-per-location enforcement.
type locAssign struct {
	addr   uint32
	isLoad bool
	time   int64
}

type threadState struct {
	id          int
	wg          int
	prog        Program
	pc          int
	regs        []uint32
	outstanding int
	locs        []locAssign
	atBarrier   bool
	done        bool
}

func (t *threadState) loc(addr uint32) *locAssign {
	for i := range t.locs {
		if t.locs[i].addr == addr {
			return &t.locs[i]
		}
	}
	return nil
}

type warpState struct {
	threads []*threadState
}

// anyRunnable reports whether some thread could plausibly issue.
func (w *warpState) anyRunnable() bool {
	for _, t := range w.threads {
		if !t.done && !t.atBarrier && t.pc < len(t.prog) {
			return true
		}
	}
	return false
}

type wgState struct {
	id      int
	cu      int
	active  int // threads not yet retired
	arrived int // threads waiting at the current barrier
	threads []*threadState
}

type cuState struct {
	id        int
	warps     []*warpState
	freeSlots int
	cache     map[uint32][]uint32
	cacheFIFO []uint32
}

type exec struct {
	d    *Device
	rng  *xrand.Rand
	spec LaunchSpec

	// ctx, when non-nil, is the launch's cancellation context; run()
	// polls it on a coarse step budget. It is set around run() by RunCtx
	// and cleared afterward so the scratch never retains a caller's ctx.
	ctx context.Context

	mem     []uint32
	threads []*threadState
	wgs     []*wgState
	cus     []*cuState

	// regArena is the flat backing store for every thread's register
	// file; reset carves per-thread windows out of it instead of a
	// per-thread make.
	regArena []uint32

	pendingWGs []int // workgroups awaiting a CU slot

	heap []completionEvent
	seq  int64
	now  int64

	inFlight     int
	lineInFlight map[uint32]int

	retired int
	stats   RunStats

	candBuf []*warpState // scratch for scheduler candidates

	// warpPool holds every warp object this executor has ever handed
	// out; warpUsed is the prefix in use by the current run. Reset just
	// rewinds warpUsed, so steady-state admission allocates nothing.
	warpPool []*warpState
	warpUsed int

	// lineBufs is a free list of cache-line staging buffers, refilled
	// on eviction and reset so fillLine stops allocating per line.
	lineBufs [][]uint32

	// regsOut and res are the result scratch returned to the caller;
	// both are overwritten by the next run.
	regsOut [][]uint32
	res     RunResult

	// tracing gates event recording. Call sites guard emit with it so
	// the tracing-off hot path pays one branch and never constructs
	// (or heap-allocates for) the event value.
	tracing bool
	trace   []TraceEvent
}

// emit records a trace event. Callers must check e.tracing first; emit
// itself appends unconditionally.
func (e *exec) emit(ev TraceEvent) {
	e.trace = append(e.trace, ev)
}

// getExec returns the device's reusable executor, reset for this
// launch. The executor — including the RunResult it produces — is
// scratch owned by the device and is clobbered by the next run.
func (d *Device) getExec(spec LaunchSpec, rng *xrand.Rand) *exec {
	e := d.scratch
	if e == nil {
		e = &exec{d: d, lineInFlight: map[uint32]int{}}
		// CU count and defect set are fixed per device, so the CU
		// objects (and their buggy caches) are allocated exactly once.
		e.cus = make([]*cuState, d.prof.CUs)
		for i := range e.cus {
			e.cus[i] = &cuState{id: i}
			if d.bugs.StaleCache {
				e.cus[i].cache = map[uint32][]uint32{}
			}
		}
		d.scratch = e
	}
	e.reset(spec, rng)
	return e
}

// growPtr re-slices s to length n, allocating element objects only for
// slots that have never been used before; previously allocated elements
// (including those beyond the old length, up to capacity) are retained
// for reuse.
func growPtr[T any](s []*T, n int) []*T {
	if cap(s) < n {
		grown := make([]*T, n)
		copy(grown, s[:cap(s)])
		s = grown
	}
	s = s[:n]
	for i, p := range s {
		if p == nil {
			s[i] = new(T)
		}
	}
	return s
}

// reset prepares the executor for one launch, reusing every allocation
// left over from prior runs: thread and workgroup objects are recycled
// in place, register files are carved from one flat arena, and the
// event heap, scheduler candidate buffer, pending queue, and cache
// staging buffers all keep their capacity. Resetting consumes no
// randomness and zeroes everything a fresh executor would zero, so a
// warm executor is draw-for-draw and bit-for-bit identical to a cold
// one.
func (e *exec) reset(spec LaunchSpec, rng *xrand.Rand) {
	e.rng = rng
	e.spec = spec

	if cap(e.mem) < spec.MemWords {
		e.mem = make([]uint32, spec.MemWords)
	} else {
		e.mem = e.mem[:spec.MemWords]
		clear(e.mem)
	}

	nThreads := spec.Threads()
	e.threads = growPtr(e.threads, nThreads)
	e.wgs = growPtr(e.wgs, spec.Workgroups)

	total := 0
	for _, p := range spec.Programs {
		total += p.NumRegs()
	}
	if cap(e.regArena) < total {
		e.regArena = make([]uint32, total)
	} else {
		e.regArena = e.regArena[:total]
		clear(e.regArena)
	}

	e.retired = 0
	regOff := 0
	wgSize := spec.WorkgroupSize
	for wg := 0; wg < spec.Workgroups; wg++ {
		ws := e.wgs[wg]
		// Thread IDs are contiguous per workgroup, so the workgroup's
		// thread list is a window into the executor's thread slice.
		*ws = wgState{id: wg, cu: -1, threads: e.threads[wg*wgSize : (wg+1)*wgSize]}
		for l := 0; l < wgSize; l++ {
			tid := wg*wgSize + l
			t := e.threads[tid]
			locs := t.locs[:0]
			*t = threadState{id: tid, wg: wg, prog: spec.Programs[tid], locs: locs}
			if n := t.prog.NumRegs(); n > 0 {
				t.regs = e.regArena[regOff : regOff+n : regOff+n]
				regOff += n
			}
			if len(t.prog) == 0 {
				t.done = true
				e.retired++
			} else {
				ws.active++
			}
		}
	}

	for _, c := range e.cus {
		c.warps = c.warps[:0]
		c.freeSlots = e.d.prof.MaxWGPerCU
		if c.cache != nil {
			for _, vals := range c.cache {
				e.lineBufs = append(e.lineBufs, vals)
			}
			clear(c.cache)
			c.cacheFIFO = c.cacheFIFO[:0]
		}
	}
	e.warpUsed = 0
	e.pendingWGs = e.pendingWGs[:0]
	e.heap = e.heap[:0]
	e.seq = 0
	e.now = 0
	e.inFlight = 0
	clear(e.lineInFlight)
	e.stats = RunStats{}

	// Admit workgroups round-robin until CUs are full; queue the rest.
	cu := 0
	for wg := 0; wg < spec.Workgroups; wg++ {
		placed := false
		for probe := 0; probe < len(e.cus); probe++ {
			c := e.cus[(cu+probe)%len(e.cus)]
			if c.freeSlots > 0 {
				e.admit(e.wgs[wg], c)
				cu = (cu + probe + 1) % len(e.cus)
				placed = true
				break
			}
		}
		if !placed {
			e.pendingWGs = append(e.pendingWGs, wg)
		}
	}
}

// result assembles the run's outcome into the executor-owned scratch.
func (e *exec) result() *RunResult {
	if cap(e.regsOut) < len(e.threads) {
		e.regsOut = make([][]uint32, len(e.threads))
	}
	e.regsOut = e.regsOut[:len(e.threads)]
	for i, t := range e.threads {
		e.regsOut[i] = t.regs
	}
	e.stats.Ticks = e.now
	e.res = RunResult{
		Registers:  e.regsOut,
		Memory:     e.mem,
		SimSeconds: float64(e.now+e.d.prof.LaunchOverheadTicks) / e.d.prof.ClockHz,
		Stats:      e.stats,
	}
	return &e.res
}

// allocWarp hands out a recycled warp object, growing the pool only the
// first time a new high-water warp count is reached.
func (e *exec) allocWarp() *warpState {
	if e.warpUsed == len(e.warpPool) {
		e.warpPool = append(e.warpPool, &warpState{})
	}
	w := e.warpPool[e.warpUsed]
	e.warpUsed++
	return w
}

// admit places a workgroup's threads on a CU as warps.
func (e *exec) admit(wg *wgState, c *cuState) {
	wg.cu = c.id
	c.freeSlots--
	size := e.d.prof.WarpSize
	for i := 0; i < len(wg.threads); i += size {
		end := i + size
		if end > len(wg.threads) {
			end = len(wg.threads)
		}
		w := e.allocWarp()
		w.threads = wg.threads[i:end]
		c.warps = append(c.warps, w)
	}
}

// cancelCheckSteps is the executor's cancellation poll granularity:
// one non-blocking ctx check per this many scheduler steps. Coarse on
// purpose — a per-step check would put a channel select on the hottest
// loop in the simulator — yet a hung-but-below-watchdog kernel still
// stops within thousands of steps (microseconds of host time) of a
// cancel, far below the watchdog's tick deadline.
const cancelCheckSteps = 4096

func (e *exec) run() error {
	total := len(e.threads)
	deadline := e.d.watchdogDeadline()
	var cancelled <-chan struct{}
	if e.ctx != nil {
		cancelled = e.ctx.Done() // nil for context.Background(); the select then never fires
	}
	check := 1 // check on the first step so a pre-cancelled ctx fails fast
	for e.retired < total {
		if check--; check <= 0 {
			check = cancelCheckSteps
			select {
			case <-cancelled:
				return fmt.Errorf("gpu: kernel cancelled at tick %d on %s: %w",
					e.now, e.d.prof.ShortName, e.ctx.Err())
			default:
			}
		}
		if e.now > deadline {
			// The watchdog converts a hung kernel into a typed, retryable
			// failure instead of spinning toward the simulation bound.
			return &DeviceError{Kind: FaultHang, Device: e.d.prof.ShortName, Tick: e.now}
		}
		for len(e.heap) > 0 && e.heap[0].time <= e.now {
			ev := e.popEvent()
			e.complete(ev)
		}
		issued := false
		for _, c := range e.cus {
			e.candBuf = e.candBuf[:0]
			for _, w := range c.warps {
				if w.anyRunnable() {
					e.candBuf = append(e.candBuf, w)
				}
			}
			if len(e.candBuf) == 0 {
				continue
			}
			w := e.candBuf[e.rng.Intn(len(e.candBuf))]
			for _, t := range w.threads {
				if e.tryIssue(t, c) {
					issued = true
				}
			}
		}
		if issued {
			e.now++
			continue
		}
		if len(e.heap) > 0 {
			e.now = e.heap[0].time
			continue
		}
		if e.retired < total {
			return fmt.Errorf("gpu: deadlock at tick %d: %d/%d threads retired",
				e.now, e.retired, total)
		}
	}
	// Drain any straggler events (threads retire only when their ops
	// complete, so the heap is empty here by construction).
	return nil
}

// tryIssue attempts to issue thread t's next instruction; it returns
// whether an instruction (or fence/barrier step) was processed.
func (e *exec) tryIssue(t *threadState, c *cuState) bool {
	if t.done || t.atBarrier || t.pc >= len(t.prog) {
		return false
	}
	in := t.prog[t.pc]
	prof := &e.d.prof
	switch in.Op {
	case OpFence:
		if e.d.bugs.DropFences {
			// The buggy compiler erased the fence's memory semantics;
			// it costs an issue slot but orders nothing.
			t.pc++
			e.stats.DroppedFences++
			e.stats.Instructions++
			e.maybeRetire(t)
			return true
		}
		if t.outstanding > 0 {
			return false // fence waits for all prior ops to complete
		}
		if e.tracing {
			e.emit(TraceEvent{Tick: e.now, Thread: int32(t.id), Index: int32(t.pc), Kind: TraceIssue, Op: OpFence})
		}
		t.pc++
		e.stats.Instructions++
		e.maybeRetire(t)
		return true
	case OpBarrier:
		if t.outstanding > 0 {
			return false // barrier implies fence ordering
		}
		if e.tracing {
			e.emit(TraceEvent{Tick: e.now, Thread: int32(t.id), Index: int32(t.pc), Kind: TraceIssue, Op: OpBarrier})
		}
		t.pc++
		e.stats.Instructions++
		wg := e.wgs[t.wg]
		t.atBarrier = true
		wg.arrived++
		e.releaseBarrierIfReady(wg)
		return true
	}
	// Memory operation.
	if t.outstanding >= prof.MaxOutstanding {
		return false
	}
	line := in.Addr / uint32(prof.LineWords)
	lat, pstall := e.latency(in.Op, line)
	e.stats.PressureStalls += pstall
	ct := e.now + int64(lat)
	if ct <= e.now {
		ct = e.now + 1
	}
	isLoad := in.Op == OpLoad || in.Op == OpStressLoad
	if prev := t.loc(in.Addr); prev != nil {
		if ct <= prev.time {
			if isLoad && prev.isLoad && e.coherenceRRFires(line) {
				// Injected defect: the second load completes before the
				// first, violating program order per location.
				e.stats.RelaxedRR++
			} else {
				ct = prev.time + 1
			}
		}
		if ct > prev.time {
			prev.time = ct
		}
		prev.isLoad = isLoad
	} else {
		t.locs = append(t.locs, locAssign{addr: in.Addr, isLoad: isLoad, time: ct})
	}
	e.seq++
	e.pushEvent(completionEvent{time: ct, seq: e.seq, tid: int32(t.id), idx: int32(t.pc)})
	if e.tracing {
		e.emit(TraceEvent{Tick: e.now, Thread: int32(t.id), Index: int32(t.pc), Kind: TraceIssue, Op: in.Op, Addr: in.Addr})
	}
	t.pc++
	t.outstanding++
	e.inFlight++
	if e.inFlight > e.stats.MaxGlobalInFlight {
		e.stats.MaxGlobalInFlight = e.inFlight
	}
	e.lineInFlight[line]++
	e.stats.Instructions++
	return true
}

// coherenceRRFires decides whether the load-load reordering defect
// triggers for an access to the given line.
func (e *exec) coherenceRRFires(line uint32) bool {
	b := &e.d.bugs
	if !b.CoherenceRR {
		return false
	}
	if e.lineInFlight[line] < b.CoherenceRRPressure {
		return false
	}
	return e.rng.Bool(b.CoherenceRRProb)
}

// latency samples an operation's completion latency, including
// contention-dependent inflation.
func (e *exec) latency(op Op, line uint32) (int, int64) {
	prof := &e.d.prof
	var base int
	switch op {
	case OpLoad, OpStressLoad:
		base = prof.LatLoad
	case OpStore, OpStressStore:
		base = prof.LatStore
	case OpExchange:
		base = prof.LatRMW
	default:
		base = 1
	}
	lat := base
	if prof.JitterBase > 0 {
		lat += e.rng.Intn(prof.JitterBase + 1)
	}
	pressure := 0.0
	if g := e.inFlight - prof.GlobalPressureThresh; g > 0 {
		pressure += prof.GlobalPressureWeight * float64(g)
	}
	if l := e.lineInFlight[line] - prof.LinePressureThresh; l > 0 {
		pressure += prof.LinePressureWeight * float64(l)
	}
	if pressure <= 0 {
		return lat, 0
	}
	extra := int(e.rng.Float64() * pressure)
	if extra > prof.MaxPressureLat {
		extra = prof.MaxPressureLat
	}
	return lat + extra, int64(extra)
}

// complete applies one finished memory operation.
func (e *exec) complete(ev completionEvent) {
	t := e.threads[ev.tid]
	in := t.prog[ev.idx]
	c := e.cus[e.wgs[t.wg].cu]
	prof := &e.d.prof
	var traced uint32
	switch in.Op {
	case OpLoad, OpStressLoad:
		v := e.loadValue(c, in.Addr)
		if in.Op == OpLoad {
			t.regs[in.Reg] = v
		}
		traced = v
	case OpStore, OpStressStore:
		e.mem[in.Addr] = in.Imm
		e.storeToCache(c, in.Addr, in.Imm)
		traced = in.Imm
	case OpExchange:
		// Atomics bypass the per-CU cache and act on memory directly,
		// as on real parts where RMWs resolve at a shared cache level.
		old := e.mem[in.Addr]
		e.mem[in.Addr] = in.Imm
		t.regs[in.Reg] = old
		e.storeToCache(c, in.Addr, in.Imm)
		traced = old
	}
	if e.tracing {
		e.emit(TraceEvent{Tick: e.now, Thread: ev.tid, Index: ev.idx, Kind: TraceComplete, Op: in.Op, Addr: in.Addr, Value: traced})
	}
	t.outstanding--
	e.inFlight--
	line := in.Addr / uint32(prof.LineWords)
	if n := e.lineInFlight[line]; n <= 1 {
		delete(e.lineInFlight, line)
	} else {
		e.lineInFlight[line] = n - 1
	}
	e.stats.MemOps++
	e.maybeRetire(t)
}

// loadValue resolves a load's value, via the (buggy) per-CU cache when
// the stale-cache defect is enabled.
func (e *exec) loadValue(c *cuState, addr uint32) uint32 {
	if c.cache == nil {
		return e.mem[addr]
	}
	prof := &e.d.prof
	line := addr / uint32(prof.LineWords)
	off := addr % uint32(prof.LineWords)
	if vals, ok := c.cache[line]; ok {
		if e.rng.Bool(prof.StaleHitProb) {
			v := vals[off]
			if v != e.mem[addr] {
				e.stats.StaleReads++
			}
			return v
		}
		// A bypassing read: the value comes from memory but the resident
		// line is not refreshed — on the buggy device nothing ever
		// re-validates it.
		return e.mem[addr]
	}
	e.fillLine(c, line)
	return e.mem[addr]
}

// fillLine snapshots a line into the CU cache, evicting FIFO. Staging
// buffers cycle through the executor's free list: evicted lines donate
// their buffer back, so steady-state fills allocate nothing. The FIFO
// compacts in place rather than re-slicing forward, which would migrate
// the slice base and force append to reallocate.
func (e *exec) fillLine(c *cuState, line uint32) {
	prof := &e.d.prof
	if _, ok := c.cache[line]; !ok {
		if len(c.cacheFIFO) >= prof.CacheLines && len(c.cacheFIFO) > 0 {
			victim := c.cacheFIFO[0]
			copy(c.cacheFIFO, c.cacheFIFO[1:])
			c.cacheFIFO = c.cacheFIFO[:len(c.cacheFIFO)-1]
			if vals, ok := c.cache[victim]; ok {
				e.lineBufs = append(e.lineBufs, vals)
			}
			delete(c.cache, victim)
		}
		c.cacheFIFO = append(c.cacheFIFO, line)
	}
	base := line * uint32(prof.LineWords)
	var vals []uint32
	if n := len(e.lineBufs); n > 0 {
		vals = e.lineBufs[n-1][:prof.LineWords]
		e.lineBufs = e.lineBufs[:n-1]
	} else {
		vals = make([]uint32, prof.LineWords)
	}
	for i := range vals {
		if int(base)+i < len(e.mem) {
			vals[i] = e.mem[int(base)+i]
		} else {
			vals[i] = 0
		}
	}
	c.cache[line] = vals
}

// storeToCache updates the storing CU's own copy of the line. A
// conformant device would also invalidate every other CU's copy; the
// stale-cache defect is precisely the absence of that invalidation, and
// caches only exist when the defect is enabled.
func (e *exec) storeToCache(c *cuState, addr, val uint32) {
	if c.cache == nil {
		return
	}
	prof := &e.d.prof
	line := addr / uint32(prof.LineWords)
	if vals, ok := c.cache[line]; ok {
		vals[addr%uint32(prof.LineWords)] = val
	}
}

// maybeRetire retires a thread whose program and outstanding ops are
// exhausted, releasing barriers and CU slots as workgroups drain.
func (e *exec) maybeRetire(t *threadState) {
	if t.done || t.pc < len(t.prog) || t.outstanding > 0 {
		return
	}
	t.done = true
	e.retired++
	wg := e.wgs[t.wg]
	wg.active--
	e.releaseBarrierIfReady(wg)
	if wg.active == 0 {
		e.finishWorkgroup(wg)
	}
}

// releaseBarrierIfReady releases a workgroup barrier once every still
// active thread has arrived.
func (e *exec) releaseBarrierIfReady(wg *wgState) {
	if wg.arrived == 0 || wg.arrived < wg.active {
		return
	}
	wg.arrived = 0
	for _, t := range wg.threads {
		t.atBarrier = false
	}
}

// finishWorkgroup frees the CU slot and admits a pending workgroup.
func (e *exec) finishWorkgroup(wg *wgState) {
	c := e.cus[wg.cu]
	// Drop the workgroup's warps from the CU's resident list.
	keep := c.warps[:0]
	for _, w := range c.warps {
		if len(w.threads) > 0 && w.threads[0].wg != wg.id {
			keep = append(keep, w)
		}
	}
	c.warps = keep
	c.freeSlots++
	if len(e.pendingWGs) > 0 {
		next := e.pendingWGs[0]
		// Compact in place (cf. fillLine's FIFO) so the queue's backing
		// array survives reset and re-admission never reallocates.
		copy(e.pendingWGs, e.pendingWGs[1:])
		e.pendingWGs = e.pendingWGs[:len(e.pendingWGs)-1]
		e.admit(e.wgs[next], c)
	}
}

// ---- completion-event min-heap (time, then issue sequence) ----

func (e *exec) pushEvent(ev completionEvent) {
	e.heap = append(e.heap, ev)
	i := len(e.heap) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !eventLess(e.heap[i], e.heap[parent]) {
			break
		}
		e.heap[i], e.heap[parent] = e.heap[parent], e.heap[i]
		i = parent
	}
}

func (e *exec) popEvent() completionEvent {
	top := e.heap[0]
	last := len(e.heap) - 1
	e.heap[0] = e.heap[last]
	e.heap = e.heap[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < last && eventLess(e.heap[l], e.heap[smallest]) {
			smallest = l
		}
		if r < last && eventLess(e.heap[r], e.heap[smallest]) {
			smallest = r
		}
		if smallest == i {
			break
		}
		e.heap[i], e.heap[smallest] = e.heap[smallest], e.heap[i]
		i = smallest
	}
	return top
}

func eventLess(a, b completionEvent) bool {
	if a.time != b.time {
		return a.time < b.time
	}
	return a.seq < b.seq
}
