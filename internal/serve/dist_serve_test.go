package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dist"
)

// pollWorker drives `mcmutants work` semantics in-process against the
// server's /dist/v1/ API: poll the campaign list, rebuild the work
// unit from the advertised descriptor, and execute leased ranges until
// ctx ends.
func pollWorker(ctx context.Context, t *testing.T, baseURL, id string) {
	t.Helper()
	client := &http.Client{Timeout: 10 * time.Second}
	for ctx.Err() == nil {
		infos, err := dist.ListCampaigns(ctx, baseURL, client)
		if err != nil {
			time.Sleep(10 * time.Millisecond)
			continue
		}
		idle := true
		for _, info := range infos {
			if info.Done {
				continue
			}
			var ws core.WorkSpec
			if err := json.Unmarshal(info.Descriptor, &ws); err != nil {
				t.Errorf("worker %s: descriptor: %v", id, err)
				return
			}
			units, err := core.DistWork(ws, 2, nil)
			if err != nil {
				t.Errorf("worker %s: plan: %v", id, err)
				return
			}
			for _, u := range units {
				if u.Spec.Manifest() != info.Manifest {
					continue
				}
				idle = false
				w := dist.NewWorker(&dist.HTTPTransport{BaseURL: baseURL, Campaign: info.Name, Client: client},
					u.Spec, u.Run, dist.WorkerOptions{ID: id})
				// Unregistration races at campaign end are expected;
				// the next poll settles it.
				w.Run(ctx)
			}
		}
		if idle {
			time.Sleep(10 * time.Millisecond)
		}
	}
}

// A distributed job — cells leased to remote workers over HTTP —
// produces a report byte-identical to the same spec run on the
// server's own runner.
func TestDistributedJobByteIdenticalToLocal(t *testing.T) {
	_, c := startServer(t, Config{Runners: 2, JobWorkers: 4, EnableDist: true, DistLeaseTTL: 30 * time.Second})
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()

	spec := JobSpec{Kind: "conformance", Devices: []string{"AMD", "Intel"}, Envs: []string{"pte"}, Iters: 2, Seed: 11}

	local, err := c.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	lj, err := c.Wait(ctx, local.Job.ID, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if lj.State != StateDone {
		t.Fatalf("local job state = %s (%s)", lj.State, lj.Error)
	}

	distSpec := spec
	distSpec.Distributed = true
	remote, err := c.Submit(ctx, distSpec)
	if err != nil {
		t.Fatal(err)
	}
	if remote.Job.ID == local.Job.ID {
		t.Fatal("distributed spec mapped to the local job ID")
	}
	wctx, wcancel := context.WithCancel(ctx)
	defer wcancel()
	for i := 0; i < 2; i++ {
		go pollWorker(wctx, t, c.BaseURL, "w"+string(rune('0'+i)))
	}
	rj, err := c.Wait(ctx, remote.Job.ID, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	wcancel()
	if rj.State != StateDone {
		t.Fatalf("distributed job state = %s (%s)", rj.State, rj.Error)
	}

	want, err := c.Report(ctx, lj.ID)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Report(ctx, rj.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("distributed report differs from local: %d vs %d bytes", len(got), len(want))
	}
}

// Distributed jobs are rejected up front when the server has no
// /dist/v1/ hub, and tune can never run distributed.
func TestDistributedJobValidation(t *testing.T) {
	_, c, _ := queuedServer(t, Config{})
	ctx := context.Background()
	spec := smallConformance()
	spec.Distributed = true
	_, err := c.Submit(ctx, spec)
	var ae *APIError
	if !errors.As(err, &ae) || ae.StatusCode != http.StatusBadRequest {
		t.Fatalf("distributed submit without -dist: %v, want 400", err)
	}

	_, cd, _ := queuedServer(t, Config{EnableDist: true})
	if _, err := cd.Submit(ctx, spec); err != nil {
		t.Fatalf("distributed submit with -dist enabled: %v", err)
	}
	_, err = cd.Submit(ctx, JobSpec{Kind: "tune", Distributed: true, TuneEnvs: 2, SiteIters: 2, PTEIters: 2})
	if !errors.As(err, &ae) || ae.StatusCode != http.StatusBadRequest {
		t.Fatalf("distributed tune submit: %v, want 400", err)
	}
}
