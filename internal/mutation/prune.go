package mutation

import (
	"fmt"

	"repro/internal/litmus"
	"repro/internal/mm"
)

// Prune implements Sec. 3.4 of the paper: when the implementation under
// test is expected to be stronger than the specification (the paper's
// example is C++ on x86), mutants whose target behavior the
// implementation can never exhibit contribute nothing to the mutation
// score and should be removed.
//
// Each mutant's target execution is checked against the given model of
// the implementation's expected behavior; mutants whose targets the
// model disallows are pruned. The conformance tests are kept untouched
// — they test the specification, not the implementation's strength.
//
// The returned suite shares test values with the original. The second
// result lists the pruned mutant names in suite order.
func Prune(s *Suite, implementation mm.MCS) (*Suite, []string, error) {
	out := &Suite{byName: map[string]*litmus.Test{}}
	var pruned []string
	for _, t := range s.Conformance {
		out.Conformance = append(out.Conformance, t)
		out.byName[t.Name] = t
	}
	for _, mt := range s.Mutants {
		x, err := mt.TargetExecution()
		if err != nil {
			return nil, nil, fmt.Errorf("mutation: prune %s: %w", mt.Name, err)
		}
		if v := x.Check(implementation); !v.Allowed {
			pruned = append(pruned, mt.Name)
			continue
		}
		out.Mutants = append(out.Mutants, mt)
		out.byName[mt.Name] = mt
	}
	return out, pruned, nil
}
