// Package repro is a from-scratch Go reproduction of "MC Mutants:
// Evaluating and Improving Testing for Memory Consistency
// Specifications" (Levine et al., ASPLOS 2023).
//
// The library generates the paper's litmus-test suite (20 conformance
// tests and 32 mutants via three mutators over happens-before cycles),
// executes it in single-instance (SITE) and parallel (PTE) testing
// environments on a simulated multi-vendor GPU fleet, classifies every
// outcome with an axiomatic memory-model checker, and implements the
// MCS Test Confidence machinery (reproducibility scores and
// Algorithm 1) used to curate conformance test suites.
//
// Layout:
//
//	internal/mm         memory consistency formalism and checker
//	internal/litmus     litmus tests, outcomes, histograms
//	internal/mutation   the three mutators; suite generation (Table 2)
//	internal/gpu        simulated GPU devices (Table 3) + injected bugs
//	internal/wgsl       WGSL shader emission and backend lowering
//	internal/harness    SITE/PTE testing environments (Fig. 4)
//	internal/confidence reproducibility scores, Algorithm 1 (Fig. 6)
//	internal/stats      Pearson correlation, t-test (Table 4)
//	internal/tuning     tuning studies and the correlation study (Fig. 5)
//	internal/report     text rendering of every table and figure
//	internal/core       high-level API: evaluate, check, curate
//	cmd/mcmutants       the CLI workbench
//	examples/...        runnable scenarios
//
// The benchmarks in bench_test.go regenerate each table and figure at
// a simulation-friendly scale; see EXPERIMENTS.md for paper-vs-measured
// comparisons.
package repro
