// Package wgsl models the WebGPU shading-language toolchain the paper
// tests through: litmus tests are rendered as WGSL compute shaders and
// lowered through platform backends (Metal, Vulkan/SPIR-V, HLSL) before
// they reach a device.
//
// Two facilities are provided:
//
//   - Shader source generation: EmitTestShader renders a litmus test as
//     the parallel testing shader of Sec. 4.1 — storage buffers, the
//     co-prime permutation id math, and the per-role atomic operations —
//     mirroring the shaders the paper's artifact generates.
//   - A lowering toolchain: Toolchain applies backend passes to kernel
//     programs. The Vulkan backend models SPIR-V memory semantics on
//     barriers; the defective driver version zeroes those semantics in
//     an intermediate representation, eliding the fences — the compiler
//     bug behind the MP-relacq discovery (Fig. 1b), which led to an AMD
//     driver fix and a WebGPU specification change.
package wgsl

import (
	"fmt"
	"strings"

	"repro/internal/gpu"
	"repro/internal/litmus"
)

// DriverVersion distinguishes conformant from defective drivers.
type DriverVersion int

const (
	// DriverConformant lowers fences faithfully.
	DriverConformant DriverVersion = iota
	// DriverFenceDropping reproduces the AMD Vulkan compiler defect:
	// release/acquire semantics are lost in an intermediate
	// representation, so barriers no longer order memory accesses.
	DriverFenceDropping
)

// String names the driver version.
func (v DriverVersion) String() string {
	if v == DriverFenceDropping {
		return "fence-dropping"
	}
	return "conformant"
}

// Toolchain lowers kernel programs for one backend and driver.
type Toolchain struct {
	Backend gpu.Backend
	Driver  DriverVersion
}

// NewToolchain builds the toolchain for a device profile with the given
// driver version.
func NewToolchain(p gpu.Profile, v DriverVersion) *Toolchain {
	return &Toolchain{Backend: p.Backend, Driver: v}
}

// Pass is one lowering stage over a kernel program.
type Pass interface {
	// Name identifies the pass in lowering logs.
	Name() string
	// Apply transforms the program. Implementations must not mutate
	// the input slice.
	Apply(gpu.Program) gpu.Program
}

// Passes returns the backend's lowering pipeline in application order.
func (tc *Toolchain) Passes() []Pass {
	switch tc.Backend {
	case gpu.Vulkan:
		return []Pass{
			annotateBarrierSemantics{},
			spirvMemorySemantics{drop: tc.Driver == DriverFenceDropping},
			encodeFences{},
			foldRedundantFences{},
		}
	case gpu.Metal:
		return []Pass{
			mslThreadgroupLowering{},
			foldRedundantFences{},
		}
	default: // HLSL
		return []Pass{
			hlslDeviceMemoryBarrier{},
			foldRedundantFences{},
		}
	}
}

// Lower runs the pipeline over a program and returns the result plus
// the pass names applied (for diagnostics).
func (tc *Toolchain) Lower(p gpu.Program) (gpu.Program, []string) {
	names := make([]string, 0, 4)
	out := p
	for _, pass := range tc.Passes() {
		out = pass.Apply(out)
		names = append(names, pass.Name())
	}
	return out, names
}

// LowerFunc adapts the toolchain to the harness's program hook.
func (tc *Toolchain) LowerFunc() func(gpu.Program) gpu.Program {
	return func(p gpu.Program) gpu.Program {
		out, _ := tc.Lower(p)
		return out
	}
}

// ---- intermediate fence encoding ----
//
// Backends stage fences through an annotated form: the Imm field of a
// fence instruction carries memory-semantics flags during lowering
// (mirroring SPIR-V's OpControlBarrier semantics operand). encodeFences
// turns annotated fences back into plain fences, dropping any whose
// semantics were erased.

const (
	semAcquireRelease = 0x8
	semStorageBuffer  = 0x40
)

// annotateBarrierSemantics tags each fence with the release/acquire +
// storage-class semantics WGSL's inter-workgroup model requires.
type annotateBarrierSemantics struct{}

func (annotateBarrierSemantics) Name() string { return "annotate-barrier-semantics" }

func (annotateBarrierSemantics) Apply(p gpu.Program) gpu.Program {
	out := make(gpu.Program, len(p))
	copy(out, p)
	for i := range out {
		if out[i].Op == gpu.OpFence {
			out[i].Imm = semAcquireRelease | semStorageBuffer
		}
	}
	return out
}

// spirvMemorySemantics models the SPIR-V consumer; the defective
// driver build zeroes the semantics operand while restructuring
// barriers in its intermediate representation.
type spirvMemorySemantics struct{ drop bool }

func (s spirvMemorySemantics) Name() string {
	if s.drop {
		return "spirv-memory-semantics(defective)"
	}
	return "spirv-memory-semantics"
}

func (s spirvMemorySemantics) Apply(p gpu.Program) gpu.Program {
	out := make(gpu.Program, len(p))
	copy(out, p)
	if !s.drop {
		return out
	}
	for i := range out {
		if out[i].Op == gpu.OpFence {
			out[i].Imm = 0 // semantics lost in the IR round-trip
		}
	}
	return out
}

// encodeFences materializes annotated fences: a fence without
// release/acquire semantics orders nothing and is removed.
type encodeFences struct{}

func (encodeFences) Name() string { return "encode-fences" }

func (encodeFences) Apply(p gpu.Program) gpu.Program {
	out := make(gpu.Program, 0, len(p))
	for _, in := range p {
		if in.Op == gpu.OpFence {
			if in.Imm&semAcquireRelease == 0 {
				continue // elided: no ordering semantics survived
			}
			in.Imm = 0
		}
		out = append(out, in)
	}
	return out
}

// mslThreadgroupLowering is the Metal path: fences map directly onto
// threadgroup/device memory fences and survive unchanged.
type mslThreadgroupLowering struct{}

func (mslThreadgroupLowering) Name() string { return "msl-threadgroup-lowering" }

func (mslThreadgroupLowering) Apply(p gpu.Program) gpu.Program {
	out := make(gpu.Program, len(p))
	copy(out, p)
	return out
}

// hlslDeviceMemoryBarrier is the Direct3D path: fences map onto
// DeviceMemoryBarrier and survive unchanged.
type hlslDeviceMemoryBarrier struct{}

func (hlslDeviceMemoryBarrier) Name() string { return "hlsl-device-memory-barrier" }

func (hlslDeviceMemoryBarrier) Apply(p gpu.Program) gpu.Program {
	out := make(gpu.Program, len(p))
	copy(out, p)
	return out
}

// foldRedundantFences removes immediately repeated fences, a standard
// legal cleanup every backend performs.
type foldRedundantFences struct{}

func (foldRedundantFences) Name() string { return "fold-redundant-fences" }

func (foldRedundantFences) Apply(p gpu.Program) gpu.Program {
	out := make(gpu.Program, 0, len(p))
	for _, in := range p {
		if in.Op == gpu.OpFence && len(out) > 0 && out[len(out)-1].Op == gpu.OpFence {
			continue
		}
		out = append(out, in)
	}
	return out
}

// ---- WGSL source emission ----

// SourceOptions controls shader rendering.
type SourceOptions struct {
	// Parallel renders the PTE shader (permutation id math); otherwise
	// the single-instance shader is rendered.
	Parallel bool
	// WorkgroupSize is the @workgroup_size attribute value.
	WorkgroupSize int
}

// EmitTestShader renders the litmus test as a WGSL compute shader in
// the style of the paper's artifact. The output is for documentation
// and inspection; execution goes through the kernel IR.
func EmitTestShader(t *litmus.Test, opts SourceOptions) string {
	if opts.WorkgroupSize <= 0 {
		opts.WorkgroupSize = 256
	}
	var b strings.Builder
	fmt.Fprintf(&b, "// %s — generated litmus shader", t.Name)
	if t.IsMutant {
		fmt.Fprintf(&b, " (mutant of %s, %s)", t.Base, t.Mutator)
	}
	b.WriteString("\n")
	b.WriteString("struct TestLocations { value: array<atomic<u32>> }\n")
	b.WriteString("struct ReadResults { value: array<u32> }\n")
	b.WriteString("struct TestParams { num_instances: u32, perm_p: u32, perm_q: u32, stride: u32, loc_offset: u32 }\n\n")
	b.WriteString("@group(0) @binding(0) var<storage, read_write> test_locations : TestLocations;\n")
	b.WriteString("@group(0) @binding(1) var<storage, read_write> read_results : ReadResults;\n")
	b.WriteString("@group(0) @binding(2) var<uniform> params : TestParams;\n\n")
	b.WriteString("fn permute(v : u32) -> u32 {\n")
	b.WriteString("  // co-prime modular permutation: no divergence, no simple v+1 pattern\n")
	b.WriteString("  return (v * params.perm_p + params.perm_q) % params.num_instances;\n}\n\n")
	fmt.Fprintf(&b, "@compute @workgroup_size(%d)\n", opts.WorkgroupSize)
	b.WriteString("fn main(@builtin(global_invocation_id) gid : vec3<u32>) {\n")
	if opts.Parallel {
		b.WriteString("  var inst = gid.x;\n")
	} else {
		b.WriteString("  let inst = 0u;\n  if (gid.x >= 1u) { return; }\n")
	}
	reg := 0
	for ti, th := range t.Threads {
		role := "thread"
		if th.Observer {
			role = "observer"
		}
		fmt.Fprintf(&b, "  // %s %d\n", role, ti)
		if opts.Parallel && ti > 0 {
			b.WriteString("  inst = permute(inst);\n")
		}
		for _, in := range th.Instrs {
			idx := func(loc int) string {
				if loc == 0 {
					return "inst * params.stride"
				}
				return fmt.Sprintf("params.num_instances * params.stride + permute(inst) * params.stride + params.loc_offset")
			}
			switch in.Op {
			case litmus.OpLoad:
				fmt.Fprintf(&b, "  read_results.value[%d] = atomicLoad(&test_locations.value[%s]);\n", reg, idx(in.Loc))
				reg++
			case litmus.OpStore:
				fmt.Fprintf(&b, "  atomicStore(&test_locations.value[%s], %du);\n", idx(in.Loc), in.Val)
			case litmus.OpExchange:
				fmt.Fprintf(&b, "  read_results.value[%d] = atomicExchange(&test_locations.value[%s], %du);\n", reg, idx(in.Loc), in.Val)
				reg++
			case litmus.OpFence:
				b.WriteString("  storageBarrier(); // release/acquire fence\n")
			}
		}
	}
	b.WriteString("}\n")
	return b.String()
}
