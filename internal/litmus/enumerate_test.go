package litmus

import (
	"testing"

	"repro/internal/mm"
)

func TestEnumerateCoRR(t *testing.T) {
	tc := CoRR()
	table := tc.EnumerateOutcomes(mm.SCPerLocation)
	// Two reads over {0, 1} and one final over {1}: 4 outcomes.
	if len(table) != 4 {
		t.Fatalf("%d outcomes, want 4", len(table))
	}
	allowed := 0
	for _, oc := range table {
		if oc.Allowed {
			allowed++
		} else if !tc.Target.Matches(oc.Outcome) {
			t.Errorf("disallowed outcome %s is not the target", oc.Outcome.Key())
		}
	}
	if allowed != 3 {
		t.Fatalf("%d allowed outcomes, want 3 (only r0=1,r1=0 is forbidden)", allowed)
	}
}

func TestEnumerateMP(t *testing.T) {
	tc := MP()
	coh := tc.AllowedOutcomes(mm.SCPerLocation)
	sc := tc.AllowedOutcomes(mm.SC)
	// Under coherence all 4 read combinations are allowed; under SC the
	// weak one is not.
	if len(coh) != 4 {
		t.Fatalf("coherence allows %d outcomes, want 4", len(coh))
	}
	if len(sc) != 3 {
		t.Fatalf("SC allows %d outcomes, want 3", len(sc))
	}
	weak := Outcome{Regs: []mm.Val{1, 0}, Final: []mm.Val{1, 1}}
	if !coh[weak.Key()] || sc[weak.Key()] {
		t.Fatal("weak MP outcome misclassified")
	}
}

// TestModelInclusions is the central soundness property across the
// whole catalog: the outcomes a stronger model allows are a subset of
// what weaker models allow — SC ⊆ TSO ⊆ SC-per-location, and
// rel-acq-SC-per-location ⊆ SC-per-location.
func TestModelInclusions(t *testing.T) {
	for _, tc := range Catalog() {
		sc := tc.AllowedOutcomes(mm.SC)
		tso := tc.AllowedOutcomes(mm.TSO)
		coh := tc.AllowedOutcomes(mm.SCPerLocation)
		ra := tc.AllowedOutcomes(mm.RelAcqSCPerLocation)
		for k := range sc {
			if !tso[k] {
				t.Errorf("%s: %s allowed under SC but not TSO", tc.Name, k)
			}
		}
		for k := range tso {
			if !coh[k] {
				t.Errorf("%s: %s allowed under TSO but not coherence", tc.Name, k)
			}
		}
		for k := range ra {
			if !coh[k] {
				t.Errorf("%s: %s allowed under rel-acq but not plain coherence", tc.Name, k)
			}
		}
	}
}

// TestEnumerationAgreesWithTarget: for catalog tests, the target
// outcome's membership in the allowed set must match the test's role
// (weak classics allowed, coherence/fenced shapes forbidden).
func TestEnumerationAgreesWithTarget(t *testing.T) {
	forbidden := map[string]bool{
		"CoRR": true, "CoWW": true, "CoWR": true, "CoRW": true,
		"MP-relacq": true, "LB-relacq": true, "S-relacq": true,
	}
	for _, tc := range Catalog() {
		table := tc.EnumerateOutcomes(tc.Model)
		foundTarget := false
		for _, oc := range table {
			if !tc.Target.Matches(oc.Outcome) {
				continue
			}
			foundTarget = true
			if forbidden[tc.Name] && oc.Allowed {
				t.Errorf("%s: target outcome %s allowed", tc.Name, oc.Outcome.Key())
			}
			if !forbidden[tc.Name] && !oc.Allowed {
				t.Errorf("%s: target outcome %s forbidden", tc.Name, oc.Outcome.Key())
			}
		}
		if !foundTarget {
			t.Errorf("%s: enumeration never produced a target-matching outcome", tc.Name)
		}
	}
}

// TestEnumerationCoversSequentialExecutions: the outcome of running
// threads one after another in any order must always be in the allowed
// set under every model (SC refines them all).
func TestEnumerationCoversSequentialExecutions(t *testing.T) {
	tc := SB()
	// T0 then T1: a=Wx1, b=Ry0, c=Wy2, d=Rx1.
	seq := Outcome{Regs: []mm.Val{0, 1}, Final: []mm.Val{1, 2}}
	for _, model := range []mm.MCS{mm.SC, mm.TSO, mm.SCPerLocation, mm.RelAcqSCPerLocation} {
		if !tc.AllowedOutcomes(model)[seq.Key()] {
			t.Errorf("sequential SB outcome forbidden under %v", model)
		}
	}
}

func TestEnumerationDeterministic(t *testing.T) {
	tc := MPRelAcq()
	a := tc.EnumerateOutcomes(tc.Model)
	b := tc.EnumerateOutcomes(tc.Model)
	if len(a) != len(b) {
		t.Fatal("nondeterministic size")
	}
	for i := range a {
		if a[i].Outcome.Key() != b[i].Outcome.Key() || a[i].Allowed != b[i].Allowed {
			t.Fatal("nondeterministic enumeration")
		}
	}
}

func BenchmarkEnumerateMPRelAcq(b *testing.B) {
	tc := MPRelAcq()
	for i := 0; i < b.N; i++ {
		tc.EnumerateOutcomes(tc.Model)
	}
}
