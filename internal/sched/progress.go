package sched

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Reporter streams campaign throughput: cells/sec, instances/sec, and
// each device's share of the fleet's busy time. It is safe for use
// from every worker goroutine.
//
// With a positive interval the reporter also runs a heartbeat ticker
// that emits a line every interval even when no cell completes, so
// long cells keep streaming liveness. The heartbeat goroutine is tied
// to the campaign context — cancelling the campaign tears it down with
// everything else — and finish/stop additionally wait for it to exit,
// so an interrupted campaign never leaks the ticker goroutine.
type Reporter struct {
	out      func(string)
	interval time.Duration

	mu           sync.Mutex
	name         string
	total        int
	done         int
	nReplayed    int
	failed       int
	nQuarantined int
	nInterrupted int
	retries      int
	instances    int
	cacheHits    int
	cacheMisses  int
	cacheCorrupt int
	cacheDegrade bool
	deviceBusy   map[string]time.Duration
	start        time.Time
	lastEmit     time.Time
	now          func() time.Time // test hook

	stopHB func()        // cancels the heartbeat ctx; nil when none running
	hbDone chan struct{} // closed when the heartbeat goroutine exits
}

// NewReporter builds a reporter that emits a line via out at most once
// per interval (plus a final summary). A zero interval emits on every
// completed cell and runs no heartbeat.
func NewReporter(out func(string), interval time.Duration) *Reporter {
	return &Reporter{out: out, interval: interval, now: time.Now}
}

func (p *Reporter) begin(ctx context.Context, name string, total int) {
	p.mu.Lock()
	p.name = name
	p.total = total
	p.done, p.nReplayed, p.failed, p.instances = 0, 0, 0, 0
	p.nQuarantined, p.nInterrupted, p.retries = 0, 0, 0
	p.cacheHits, p.cacheMisses, p.cacheCorrupt, p.cacheDegrade = 0, 0, 0, false
	p.deviceBusy = map[string]time.Duration{}
	p.start = p.now()
	p.lastEmit = time.Time{}
	var hbCtx context.Context
	if p.out != nil && p.interval > 0 {
		// Derive the heartbeat's lifetime from the campaign ctx so an
		// interrupted campaign cancels it even before finish runs.
		hbCtx, p.stopHB = context.WithCancel(ctx)
		p.hbDone = make(chan struct{})
	}
	done := p.hbDone
	p.mu.Unlock()
	if hbCtx != nil {
		go p.heartbeat(hbCtx, done)
	}
}

// heartbeat emits a progress line every interval until its context — a
// child of the campaign context — is cancelled.
func (p *Reporter) heartbeat(ctx context.Context, done chan struct{}) {
	defer close(done)
	tick := time.NewTicker(p.interval)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
			p.mu.Lock()
			line := p.line()
			p.lastEmit = p.now()
			p.mu.Unlock()
			p.out(line)
		}
	}
}

// stop shuts the heartbeat down and waits for its goroutine to exit.
// It is idempotent and safe when no heartbeat was started.
func (p *Reporter) stop() {
	p.mu.Lock()
	cancel, done := p.stopHB, p.hbDone
	p.stopHB, p.hbDone = nil, nil
	p.mu.Unlock()
	if cancel != nil {
		cancel()
		<-done
	}
}

func (p *Reporter) replayed(Cell) {
	p.mu.Lock()
	p.nReplayed++
	p.done++
	p.mu.Unlock()
}

// cacheHit records a cell served from the result cache: done without
// executing. Misses and corruptions surface on the final line via the
// settled report counters — a miss just means the cell executes.
func (p *Reporter) cacheHit(Cell) {
	p.mu.Lock()
	p.cacheHits++
	p.done++
	p.mu.Unlock()
}

// quarantined records a cell skipped by an open circuit breaker.
func (p *Reporter) quarantined(Cell) {
	p.mu.Lock()
	p.done++
	p.nQuarantined++
	p.mu.Unlock()
}

// interrupted records a cell abandoned by campaign cancellation. The
// cell is pending, not done: it will run again on resume.
func (p *Reporter) interrupted(Cell) {
	p.mu.Lock()
	p.nInterrupted++
	p.mu.Unlock()
}

func (p *Reporter) cellDone(c Cell, wall time.Duration, instances int, ok bool, retries int) {
	p.mu.Lock()
	p.done++
	p.instances += instances
	p.retries += retries
	if !ok {
		p.failed++
	}
	if c.Device != "" {
		p.deviceBusy[c.Device] += wall
	}
	emit := p.lastEmit.IsZero() || p.now().Sub(p.lastEmit) >= p.interval
	var line string
	if emit {
		p.lastEmit = p.now()
		line = p.line()
	}
	p.mu.Unlock()
	if emit && p.out != nil {
		p.out(line)
	}
}

// finish stops the heartbeat and renders the final summary line. The
// authoritative counters come from the settled report — under a circuit
// breaker, live counts can differ from the deterministic post-pass
// verdicts (a cell may have executed speculatively and been quarantined
// after the fact).
func (p *Reporter) finish(rep reportCounters) {
	p.stop()
	p.mu.Lock()
	p.failed, p.nQuarantined, p.retries = rep.failed, rep.quarantined, rep.retried
	p.nInterrupted = rep.interrupted
	p.cacheHits, p.cacheMisses, p.cacheCorrupt = rep.cacheHits, rep.cacheMisses, rep.cacheCorrupt
	p.cacheDegrade = rep.cacheDegraded
	line := p.line()
	if rep.interrupted > 0 {
		line += " interrupted"
	} else {
		line += " done"
	}
	p.mu.Unlock()
	if p.out != nil {
		p.out(line)
	}
}

// line renders one progress line; the caller holds p.mu.
func (p *Reporter) line() string {
	elapsed := p.now().Sub(p.start).Seconds()
	executed := p.done - p.nReplayed - p.cacheHits
	cellsPerSec := Rate(executed, elapsed)
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %d/%d cells", p.name, p.done, p.total)
	if p.nReplayed > 0 {
		fmt.Fprintf(&b, " (%d replayed)", p.nReplayed)
	}
	if p.retries > 0 {
		fmt.Fprintf(&b, " %d retried", p.retries)
	}
	if p.nQuarantined > 0 {
		fmt.Fprintf(&b, " %d quarantined", p.nQuarantined)
	}
	if p.nInterrupted > 0 {
		fmt.Fprintf(&b, " %d interrupted", p.nInterrupted)
	}
	if p.failed > 0 {
		fmt.Fprintf(&b, " %d FAILED", p.failed)
	}
	fmt.Fprintf(&b, " | %.1f cells/s", cellsPerSec)
	if p.instances > 0 {
		fmt.Fprintf(&b, ", %.0f instances/s", Rate(p.instances, elapsed))
	}
	if p.cacheHits > 0 || p.cacheMisses > 0 || p.cacheCorrupt > 0 {
		fmt.Fprintf(&b, " | cache %d hit %d miss", p.cacheHits, p.cacheMisses)
		if p.cacheCorrupt > 0 {
			fmt.Fprintf(&b, " %d corrupt", p.cacheCorrupt)
		}
	}
	if p.cacheDegrade {
		b.WriteString(" | cache degraded")
	}
	if util := p.utilization(); util != "" {
		fmt.Fprintf(&b, " | %s", util)
	}
	return b.String()
}

// utilization renders each device's share of total busy time; the
// caller holds p.mu.
func (p *Reporter) utilization() string {
	if len(p.deviceBusy) == 0 {
		return ""
	}
	var total time.Duration
	for _, d := range p.deviceBusy {
		total += d
	}
	if total <= 0 {
		return ""
	}
	devs := make([]string, 0, len(p.deviceBusy))
	for d := range p.deviceBusy {
		devs = append(devs, d)
	}
	sort.Strings(devs)
	parts := make([]string, 0, len(devs))
	for _, d := range devs {
		parts = append(parts, fmt.Sprintf("%s %.0f%%", d, 100*float64(p.deviceBusy[d])/float64(total)))
	}
	return "util " + strings.Join(parts, " ")
}
