package sched

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"

	"repro/internal/diskio"
)

// Checkpoint persists completed cells as JSONL so an interrupted
// campaign resumes by replaying them. The file layout is:
//
//	{"campaign":"<name>","manifest":"<hex>"}                  // header, line 1
//	{"key":"<cell key>","value":<result JSON>,"crc":"<hex>"}  // one line per cell
//
// The manifest is Spec.Manifest(); resuming against a checkpoint whose
// manifest differs (different cells, order or seed) is an error, since
// its recorded results would not match what a clean run produces.
//
// Each record carries a Castagnoli CRC-32 of its value bytes, verified
// on resume. Only the final line of the file may be malformed — the
// torn tail of a run killed mid-write — and is then discarded. A
// malformed line with data after it, or any record failing its
// checksum, is mid-file corruption and resuming fails with
// ErrCheckpointCorrupt instead of silently resuming over bad data.
// Records written before checksumming (no "crc" field) still load.
//
// Durability: the header is published atomically (write temp → fsync →
// rename → fsync dir), so a file at the checkpoint path always begins
// with a valid header — a crash during creation leaves no file at all,
// never a headerless one. Records are fsynced every FsyncEvery cells
// (bounded loss; lost cells re-run on resume), and on resume the
// replayed cells are compacted into a fresh sealed segment, so a
// repeatedly-crashed-and-resumed campaign's checkpoint does not grow
// without bound and legacy or torn bytes do not accumulate.
//
// A persistently failing disk (ENOSPC, EIO) degrades the checkpoint to
// in-memory operation instead of killing the campaign: recording
// continues into the done map, Degraded reports the cause, and the
// scheduler surfaces it as Report.StorageDegraded.
type Checkpoint struct {
	mu         sync.Mutex
	fs         diskio.FS
	f          diskio.File
	path       string
	manifest   string
	done       map[string]json.RawMessage
	fsyncEvery int
	sinceSync  int
	degraded   error
}

// DefaultFsyncEvery is the bounded-loss fsync policy: at most this many
// completed cells can be lost to the page cache by an ungraceful death.
const DefaultFsyncEvery = 32

// maxRecordBytes caps one checkpoint line (record plus newline). The
// limit is enforced symmetrically: record refuses to append a line a
// later resume could not scan, and load reports an oversized line as
// corruption instead of a bare bufio.ErrTooLong. A var so tests can
// shrink it.
var maxRecordBytes = 1 << 26 // 64 MiB, the historical scanner cap

// CheckpointOptions tunes a checkpoint's storage behavior. The zero
// value is the real filesystem with the default fsync policy.
type CheckpointOptions struct {
	// FS is the filesystem the checkpoint reads and writes through; nil
	// means the real OS filesystem. Tests substitute a fault-injecting
	// diskio.FaultFS.
	FS diskio.FS
	// FsyncEvery bounds completed-work loss on an ungraceful death
	// (kill -9, power cut): the file is fsynced after every N recorded
	// cells. 0 means DefaultFsyncEvery; negative syncs only at drain and
	// close (fastest, loss bounded only by the page cache). Lost cells
	// are simply re-run on resume — the policy bounds wasted work, never
	// correctness.
	FsyncEvery int
}

// fsyncPolicy resolves the configured policy to records-per-fsync:
// positive N, or 0 for "only at drain/close".
func (o CheckpointOptions) fsyncPolicy() int {
	switch {
	case o.FsyncEvery > 0:
		return o.FsyncEvery
	case o.FsyncEvery < 0:
		return 0
	default:
		return DefaultFsyncEvery
	}
}

// checkpointHeader is line 1 of the file.
type checkpointHeader struct {
	Campaign string `json:"campaign"`
	Manifest string `json:"manifest"`
}

// crcTable is the Castagnoli polynomial table used for record checksums.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// crcHex renders the checksum of a record's value bytes.
func crcHex(value []byte) string {
	return fmt.Sprintf("%08x", crc32.Checksum(value, crcTable))
}

// checkpointRecord is one completed cell.
type checkpointRecord struct {
	Key   string          `json:"key"`
	Value json.RawMessage `json:"value"`
	// CRC is the Castagnoli CRC-32 of Value, hex-encoded. Optional on
	// load for backward compatibility with pre-checksum files; always
	// written, and verified when present.
	CRC string `json:"crc,omitempty"`
}

// OpenCheckpoint opens (or creates) a checkpoint for the spec on the
// real filesystem with default options; see OpenCheckpointOpts.
func OpenCheckpoint(path string, spec Spec, resume bool) (*Checkpoint, error) {
	return OpenCheckpointOpts(path, spec, resume, CheckpointOptions{})
}

// OpenCheckpointOpts opens (or creates) a checkpoint for the spec. With
// resume false a fresh header is published atomically (replacing any
// existing file); with resume true an existing file is validated
// against the spec's manifest, its completed cells become replayable
// via Done, and the file is compacted into a fresh sealed segment
// before new records append.
func OpenCheckpointOpts(path string, spec Spec, resume bool, opts CheckpointOptions) (*Checkpoint, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	fsys := opts.FS
	if fsys == nil {
		fsys = diskio.OS{}
	}
	c := &Checkpoint{
		fs:         fsys,
		path:       path,
		manifest:   spec.Manifest(),
		done:       map[string]json.RawMessage{},
		fsyncEvery: opts.fsyncPolicy(),
	}
	if resume {
		order, found, err := c.load(spec.Name)
		if err != nil {
			return nil, err
		}
		if found {
			if err := c.rotate(spec.Name, order); err != nil {
				return nil, err
			}
			return c, nil
		}
		// No existing file: fall through and start fresh.
	}
	hdr, _ := json.Marshal(checkpointHeader{Campaign: spec.Name, Manifest: c.manifest})
	if err := diskio.WriteFileAtomic(fsys, path, append(hdr, '\n')); err != nil {
		return nil, fmt.Errorf("sched: create checkpoint: %w", err)
	}
	return c, c.openAppend()
}

// openAppend opens the sealed file at c.path for record appends.
func (c *Checkpoint) openAppend() error {
	f, err := c.fs.OpenFile(c.path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("sched: open checkpoint for append: %w", err)
	}
	c.f = f
	return nil
}

// load reads and validates an existing checkpoint file, collecting the
// done map and the on-disk key order for compaction. It reports found
// false when no file exists. The file is not kept open; rotation
// republishes it and reopens for appending.
func (c *Checkpoint) load(campaign string) (order []string, found bool, err error) {
	f, err := diskio.Open(c.fs, c.path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, false, nil
		}
		return nil, false, fmt.Errorf("sched: open checkpoint: %w", err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 4096), maxRecordBytes)
	if !sc.Scan() {
		if serr := scanErr(c.path, sc, 1); serr != nil {
			return nil, false, serr
		}
		// The atomic header publication makes an empty checkpoint
		// impossible to produce by crashing this program; treat one as
		// damage rather than silently discarding the resume intent.
		return nil, false, fmt.Errorf("sched: checkpoint %s exists but has no header: %w; delete the file or rerun without -resume",
			c.path, ErrCheckpointCorrupt)
	}
	var hdr checkpointHeader
	if err := json.Unmarshal(sc.Bytes(), &hdr); err != nil {
		return nil, false, fmt.Errorf("sched: checkpoint %s: malformed header: %w", c.path, err)
	}
	if hdr.Manifest != c.manifest {
		return nil, false, fmt.Errorf("sched: checkpoint %s was written by a different campaign spec (manifest %.12s, want %.12s); rerun without -resume or delete it",
			c.path, hdr.Manifest, c.manifest)
	}
	lineNo := 1
	torn := 0 // line number of a malformed line; only the final line may be torn
	for sc.Scan() {
		lineNo++
		line := sc.Bytes()
		if torn > 0 {
			// A malformed line with data after it cannot be a torn tail:
			// the file is corrupt in the middle.
			return nil, false, fmt.Errorf("sched: checkpoint %s: malformed record at line %d with records after it: %w; delete the file or rerun without -resume",
				c.path, torn, ErrCheckpointCorrupt)
		}
		var rec checkpointRecord
		if err := json.Unmarshal(line, &rec); err != nil || rec.Key == "" {
			torn = lineNo // torn tail if the scan ends here, corruption otherwise
			continue
		}
		if rec.CRC != "" && crcHex(rec.Value) != rec.CRC {
			return nil, false, fmt.Errorf("sched: checkpoint %s: record %q (line %d) fails its checksum: %w; delete the file or rerun without -resume",
				c.path, rec.Key, lineNo, ErrCheckpointCorrupt)
		}
		if _, seen := c.done[rec.Key]; !seen {
			order = append(order, rec.Key)
		}
		c.done[rec.Key] = append(json.RawMessage(nil), rec.Value...)
	}
	if serr := scanErr(c.path, sc, lineNo+1); serr != nil {
		return nil, false, serr
	}
	return order, true, nil
}

// scanErr converts a scanner failure into a caller-facing error; an
// oversized line is reported as corruption naming the line rather than
// a bare bufio.ErrTooLong.
func scanErr(path string, sc *bufio.Scanner, line int) error {
	err := sc.Err()
	if err == nil {
		return nil
	}
	if errors.Is(err, bufio.ErrTooLong) {
		return fmt.Errorf("sched: checkpoint %s: record at line %d exceeds the %d-byte record limit: %w; delete the file or rerun without -resume",
			path, line, maxRecordBytes, ErrCheckpointCorrupt)
	}
	return fmt.Errorf("sched: read checkpoint: %w", err)
}

// rotate compacts the loaded records into a fresh sealed segment —
// header plus one checksummed line per done cell, in on-disk order —
// published atomically over the old file, then reopens it for
// appending. Rotation drops torn tails, duplicate keys and legacy
// un-checksummed encodings, so resuming many times cannot grow the
// checkpoint beyond its live contents; a crash mid-rotation leaves the
// previous file intact.
func (c *Checkpoint) rotate(campaign string, order []string) error {
	err := diskio.WriteAtomic(c.fs, c.path, func(w io.Writer) error {
		bw := bufio.NewWriter(w)
		hdr, _ := json.Marshal(checkpointHeader{Campaign: campaign, Manifest: c.manifest})
		bw.Write(hdr)
		bw.WriteByte('\n')
		for _, key := range order {
			line, err := json.Marshal(checkpointRecord{Key: key, Value: c.done[key], CRC: crcHex(c.done[key])})
			if err != nil {
				return fmt.Errorf("compact %s: %w", key, err)
			}
			bw.Write(line)
			bw.WriteByte('\n')
		}
		return bw.Flush()
	})
	if err != nil {
		return fmt.Errorf("sched: rotate checkpoint %s: %w", c.path, err)
	}
	return c.openAppend()
}

// Done returns the recorded result for a cell key, if present.
func (c *Checkpoint) Done(key string) (json.RawMessage, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	raw, ok := c.done[key]
	return raw, ok
}

// Completed returns how many cells the checkpoint holds.
func (c *Checkpoint) Completed() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.done)
}

// Degraded returns the storage failure that switched the checkpoint to
// in-memory operation, or nil while it is still writing through. A
// degraded checkpoint keeps recording into its done map — the campaign
// finishes with correct results — but cells recorded after the failure
// are not durable.
func (c *Checkpoint) Degraded() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.degraded
}

// record appends one completed cell — with its value checksum — so a
// kill at any point loses at most the in-flight record plus the cells
// of the current fsync window. An oversized record is rejected before
// touching the file; an ENOSPC/EIO write failure degrades the
// checkpoint instead of failing the cell.
func (c *Checkpoint) record(key string, value any) error {
	raw, err := json.Marshal(value)
	if err != nil {
		return fmt.Errorf("sched: checkpoint %s: %w", key, err)
	}
	return c.RecordRaw(key, raw)
}

// RecordRaw is record for values that are already encoded: the raw
// JSON is written verbatim, so a record that round-tripped through
// another process (a distributed worker's segment) checkpoints
// byte-identically to one produced locally. The distributed
// coordinator uses it to persist incoming segments.
func (c *Checkpoint) RecordRaw(key string, raw json.RawMessage) error {
	line, err := json.Marshal(checkpointRecord{Key: key, Value: raw, CRC: crcHex(raw)})
	if err != nil {
		return fmt.Errorf("sched: checkpoint %s: %w", key, err)
	}
	if len(line)+1 > maxRecordBytes {
		return fmt.Errorf("sched: checkpoint %s: record is %d bytes, exceeding the %d-byte limit a resume can load; it was not written",
			key, len(line)+1, maxRecordBytes)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.f == nil {
		return fmt.Errorf("sched: checkpoint closed")
	}
	c.done[key] = raw
	if c.degraded != nil {
		return nil // in-memory only; the degradation is already reported
	}
	if _, err := c.f.Write(append(line, '\n')); err != nil {
		return c.storageFail("append", err)
	}
	c.sinceSync++
	if c.fsyncEvery > 0 && c.sinceSync >= c.fsyncEvery {
		if err := c.f.Sync(); err != nil {
			return c.storageFail("sync", err)
		}
		c.sinceSync = 0
	}
	return nil
}

// storageFail classifies a failed checkpoint write: exhausted or
// failing media (ENOSPC, EIO) degrades the checkpoint to in-memory
// operation and the campaign continues; anything else — including a
// simulated crash — is a hard error. The caller holds c.mu.
func (c *Checkpoint) storageFail(stage string, err error) error {
	if diskio.IsStorageErr(err) {
		c.degraded = fmt.Errorf("sched: checkpoint %s degraded to in-memory (%s failed): %w", c.path, stage, err)
		return nil
	}
	return fmt.Errorf("sched: %s checkpoint: %w", stage, err)
}

// Sync flushes the checkpoint to stable storage (fsync). The scheduler
// calls it when a campaign finishes or drains, so a process exit right
// after an interrupt cannot lose recorded cells to the page cache. It
// runs regardless of the fsync policy; a degraded checkpoint is a
// no-op.
func (c *Checkpoint) Sync() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.syncLocked()
}

// syncLocked is Sync under a held c.mu.
func (c *Checkpoint) syncLocked() error {
	if c.f == nil || c.degraded != nil {
		return nil
	}
	if err := c.f.Sync(); err != nil {
		return c.storageFail("sync", err)
	}
	c.sinceSync = 0
	return nil
}

// Close syncs and closes the file.
func (c *Checkpoint) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.f == nil {
		return nil
	}
	err := c.syncLocked()
	cerr := c.f.Close()
	if err == nil && c.degraded == nil {
		err = cerr
	}
	c.f = nil
	return err
}
