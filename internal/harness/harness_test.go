package harness

import (
	"testing"

	"repro/internal/gpu"
	"repro/internal/litmus"
	"repro/internal/mutation"
	"repro/internal/xrand"
)

func device(t testing.TB, name string, bugs gpu.Bugs) *gpu.Device {
	t.Helper()
	p, ok := gpu.ProfileByName(name)
	if !ok {
		t.Fatalf("no profile %q", name)
	}
	d, err := gpu.NewDevice(p, bugs)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// smallPTE is a scaled-down parallel environment for unit tests.
func smallPTE() Params {
	p := PTEBaseline(8, 16) // 128 instances
	return p
}

// stressedPTE adds stress to the small PTE.
func stressedPTE() Params {
	p := smallPTE()
	p.MaxWorkgroups = p.TestingWorkgroups + 4
	p.MemStressPct = 100
	p.MemStressIters = 8
	p.MemStressPattern = StoreLoad
	p.PreStressPct = 80
	p.PreStressIters = 2
	p.MemStride = 2
	p.MemLocOffset = 1
	return p
}

// stressedSITE is a single-instance environment with stress.
func stressedSITE() Params {
	p := SITEBaseline()
	p.MaxWorkgroups = 12
	p.MemStressPct = 100
	p.MemStressIters = 12
	p.PreStressPct = 100
	p.PreStressIters = 3
	p.MemStride = 2
	p.MemLocOffset = 1
	return p
}

func TestParamsValidate(t *testing.T) {
	good := stressedPTE()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name   string
		mutate func(*Params)
	}{
		{"no testing wgs", func(p *Params) { p.TestingWorkgroups = 0 }},
		{"max < testing", func(p *Params) { p.MaxWorkgroups = p.TestingWorkgroups - 1 }},
		{"zero wg size", func(p *Params) { p.WorkgroupSize = 0 }},
		{"zero stride", func(p *Params) { p.MemStride = 0 }},
		{"offset >= stride", func(p *Params) { p.MemLocOffset = p.MemStride }},
		{"zero scratch", func(p *Params) { p.ScratchMemWords = 0 }},
		{"zero line", func(p *Params) { p.StressLineSize = 0 }},
		{"too many lines", func(p *Params) { p.StressTargetLines = p.ScratchMemWords }},
		{"bad pct", func(p *Params) { p.ShufflePct = 101 }},
		{"negative iters", func(p *Params) { p.MemStressIters = -1 }},
	}
	for _, c := range cases {
		p := good
		c.mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestPresetsValidate(t *testing.T) {
	for _, p := range []Params{SITEBaseline(), PTEBaseline(16, 32), smallPTE(), stressedPTE(), stressedSITE()} {
		if err := p.Validate(); err != nil {
			t.Errorf("preset invalid: %v", err)
		}
	}
}

func TestRandomParamsAlwaysValid(t *testing.T) {
	rng := xrand.New(123)
	for i := 0; i < 500; i++ {
		p := Random(rng, i%2 == 0, DefaultScale())
		if err := p.Validate(); err != nil {
			t.Fatalf("draw %d invalid: %v\n%+v", i, err, p)
		}
	}
}

func TestAffinePermIsBijection(t *testing.T) {
	rng := xrand.New(5)
	for _, n := range []int{1, 2, 7, 128, 300} {
		perm := newAffinePerm(n, rng)
		seen := make([]bool, n)
		for v := 0; v < n; v++ {
			w := perm.apply(v)
			if w < 0 || w >= n || seen[w] {
				t.Fatalf("n=%d: not a bijection at %d", n, v)
			}
			seen[w] = true
		}
		// Composition stays a bijection.
		seen2 := make([]bool, n)
		for v := 0; v < n; v++ {
			w := perm.applyN(v, 2)
			if seen2[w] {
				t.Fatalf("n=%d: squared permutation collides", n)
			}
			seen2[w] = true
		}
	}
}

// TestPlanCoversAllInstances: every instance's every register must be
// written by exactly one thread's program, and every role must appear.
func TestPlanCoversAllInstances(t *testing.T) {
	suite := mutation.MustGenerate()
	rng := xrand.New(9)
	p := stressedPTE()
	for _, name := range []string{"CoRR", "MP", "MP-relacq", "2+2W-CO", "CoWW-mutant", "SB-relacq-rmw"} {
		test, ok := suite.ByName(name)
		if !ok {
			t.Fatalf("missing %s", name)
		}
		plan, err := buildIteration(test, &p, rng)
		if err != nil {
			t.Fatal(err)
		}
		if plan.instances != p.TestingWorkgroups*p.WorkgroupSize {
			t.Fatalf("%s: %d instances, want %d", name, plan.instances, p.TestingWorkgroups*p.WorkgroupSize)
		}
		// Count role instructions per instance via address usage.
		memOps := map[uint32]int{}
		for _, prog := range plan.spec.Programs {
			for _, in := range prog {
				if in.Op == gpu.OpLoad || in.Op == gpu.OpStore || in.Op == gpu.OpExchange {
					memOps[in.Addr]++
				}
			}
		}
		for i := 0; i < plan.instances; i++ {
			want := map[uint32]int{}
			for _, th := range test.Threads {
				for _, li := range th.Instrs {
					if li.Op != litmus.OpFence {
						want[plan.locAddr[i][li.Loc]]++
					}
				}
			}
			for addr, n := range want {
				if memOps[addr] != n {
					t.Fatalf("%s instance %d: addr %d has %d test ops, want %d",
						name, i, addr, memOps[addr], n)
				}
			}
		}
	}
}

// TestInstanceAddressesDisjoint: no two instances may share a location
// address, and x/y regions must not overlap.
func TestInstanceAddressesDisjoint(t *testing.T) {
	suite := mutation.MustGenerate()
	test, _ := suite.ByName("MP")
	rng := xrand.New(11)
	for trial := 0; trial < 20; trial++ {
		p := Random(rng, true, DefaultScale())
		plan, err := buildIteration(test, &p, rng)
		if err != nil {
			t.Fatal(err)
		}
		seen := map[uint32]bool{}
		for i := 0; i < plan.instances; i++ {
			for _, a := range plan.locAddr[i] {
				if seen[a] {
					t.Fatalf("trial %d: address %d assigned twice", trial, a)
				}
				seen[a] = true
			}
		}
	}
}

// TestSITEPlacesRolesInDistinctWorkgroups checks the inter-workgroup
// scope requirement.
func TestSITEPlacesRolesInDistinctWorkgroups(t *testing.T) {
	suite := mutation.MustGenerate()
	test, _ := suite.ByName("MP-relacq")
	p := stressedSITE()
	rng := xrand.New(13)
	plan, err := buildIteration(test, &p, rng)
	if err != nil {
		t.Fatal(err)
	}
	// Exactly len(test.Threads) programs contain test (non-stress) ops,
	// each in a different workgroup.
	wgs := map[int]bool{}
	count := 0
	for tid, prog := range plan.spec.Programs {
		hasTest := false
		for _, in := range prog {
			if in.Op == gpu.OpLoad || in.Op == gpu.OpStore || in.Op == gpu.OpExchange || in.Op == gpu.OpFence {
				hasTest = true
			}
		}
		if hasTest {
			count++
			wgs[tid/p.WorkgroupSize] = true
		}
	}
	if count != len(test.Threads) {
		t.Fatalf("%d testing threads, want %d", count, len(test.Threads))
	}
	if len(wgs) != len(test.Threads) {
		t.Fatalf("testing threads share workgroups: %v", wgs)
	}
}

func TestRunnerDeterministic(t *testing.T) {
	suite := mutation.MustGenerate()
	test, _ := suite.ByName("MP")
	d := device(t, "AMD", gpu.Bugs{})
	r, err := NewRunner(d, stressedPTE())
	if err != nil {
		t.Fatal(err)
	}
	a, err := r.Run(test, 3, xrand.New(99))
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.Run(test, 3, xrand.New(99))
	if err != nil {
		t.Fatal(err)
	}
	if a.TargetCount != b.TargetCount || a.Violations != b.Violations ||
		a.SimSeconds != b.SimSeconds || a.Instances != b.Instances {
		t.Fatalf("same seed, different results: %+v vs %+v", a, b)
	}
}

// TestConformanceCleanOnConformantDevices: conformance tests must show
// zero violations on bug-free devices, in both environment families.
func TestConformanceCleanOnConformantDevices(t *testing.T) {
	suite := mutation.MustGenerate()
	d := device(t, "AMD", gpu.Bugs{})
	for _, envName := range []string{"PTE", "SITE"} {
		env := stressedPTE()
		iters := 3
		if envName == "SITE" {
			env = stressedSITE()
			iters = 10
		}
		r, err := NewRunner(d, env)
		if err != nil {
			t.Fatal(err)
		}
		rng := xrand.New(7)
		for _, test := range suite.Conformance {
			res, err := r.Run(test, iters, rng)
			if err != nil {
				t.Fatalf("%s/%s: %v", envName, test.Name, err)
			}
			if res.Violations > 0 {
				t.Errorf("%s/%s: %d violations on a conformant device\n%s",
					envName, test.Name, res.Violations, res.Hist)
			}
		}
	}
}

// TestPTEKillsWeakMutants: the parallel environment must kill the
// classic weak-memory mutants on the AMD profile.
func TestPTEKillsWeakMutants(t *testing.T) {
	suite := mutation.MustGenerate()
	d := device(t, "AMD", gpu.Bugs{})
	r, err := NewRunner(d, stressedPTE())
	if err != nil {
		t.Fatal(err)
	}
	rng := xrand.New(21)
	for _, name := range []string{"MP", "SB", "CoRR-mutant"} {
		test, _ := suite.ByName(name)
		res, err := r.Run(test, 10, rng)
		if err != nil {
			t.Fatal(err)
		}
		if res.TargetCount == 0 {
			t.Errorf("%s: PTE never killed the mutant in %d instances\n%s",
				name, res.Instances, res.Hist)
		}
		if res.TargetRate() <= 0 {
			t.Errorf("%s: zero target rate", name)
		}
	}
}

// TestFenceDropBugFoundByPTE: the MP-relacq conformance test must fail
// on the AMD device with the fence-dropping compiler bug — the paper's
// headline discovery.
func TestFenceDropBugFoundByPTE(t *testing.T) {
	suite := mutation.MustGenerate()
	test, _ := suite.ByName("MP-relacq")
	buggy := device(t, "AMD", gpu.Bugs{DropFences: true})
	r, err := NewRunner(buggy, stressedPTE())
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.Run(test, 12, xrand.New(31))
	if err != nil {
		t.Fatal(err)
	}
	if res.Violations == 0 {
		t.Fatalf("fence-drop bug not detected in %d instances\n%s", res.Instances, res.Hist)
	}
	if res.TargetCount == 0 {
		t.Fatalf("target MP-relacq behavior not observed\n%s", res.Hist)
	}
}

// TestCoherenceBugFoundOnIntel: the CoRR conformance test must fail on
// the Intel device with the load-load defect under stress.
func TestCoherenceBugFoundOnIntel(t *testing.T) {
	suite := mutation.MustGenerate()
	test, _ := suite.ByName("CoRR")
	buggy := device(t, "Intel", gpu.Bugs{
		CoherenceRR: true, CoherenceRRProb: 0.4, CoherenceRRPressure: 2,
	})
	env := stressedPTE()
	r, err := NewRunner(buggy, env)
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.Run(test, 12, xrand.New(41))
	if err != nil {
		t.Fatal(err)
	}
	if res.Violations == 0 {
		t.Fatalf("CoRR bug not detected in %d instances\n%s", res.Instances, res.Hist)
	}
}

func TestRunRejectsBadInput(t *testing.T) {
	suite := mutation.MustGenerate()
	test, _ := suite.ByName("MP")
	d := device(t, "AMD", gpu.Bugs{})
	r, err := NewRunner(d, smallPTE())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Run(test, 0, xrand.New(1)); err == nil {
		t.Error("accepted zero iterations")
	}
	bad := smallPTE()
	bad.MemStride = 0
	if _, err := NewRunner(d, bad); err == nil {
		t.Error("NewRunner accepted invalid params")
	}
}

func TestResultRates(t *testing.T) {
	r := &Result{TargetCount: 10, Violations: 5, SimSeconds: 2}
	if r.TargetRate() != 5 || r.ViolationRate() != 2.5 {
		t.Fatalf("rates wrong: %v %v", r.TargetRate(), r.ViolationRate())
	}
	empty := &Result{}
	if empty.TargetRate() != 0 || empty.ViolationRate() != 0 {
		t.Fatal("zero-time rates must be 0")
	}
}

func TestStressPatternStrings(t *testing.T) {
	for p, want := range map[StressPattern]string{
		StoreStore: "store-store", StoreLoad: "store-load",
		LoadStore: "load-store", LoadLoad: "load-load",
	} {
		if p.String() != want {
			t.Errorf("%d: %q", p, p.String())
		}
	}
	if RoundRobin.String() != "round-robin" || Chunked.String() != "chunked" {
		t.Error("strategy names wrong")
	}
}

// TestObserverTestRunsUnderPTE: three-role tests (with observers) must
// be schedulable in the parallel environment.
func TestObserverTestRunsUnderPTE(t *testing.T) {
	suite := mutation.MustGenerate()
	test, _ := suite.ByName("2+2W-CO") // 2 workers + observer
	d := device(t, "NVIDIA", gpu.Bugs{})
	r, err := NewRunner(d, smallPTE())
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.Run(test, 2, xrand.New(51))
	if err != nil {
		t.Fatal(err)
	}
	if res.Instances != 2*128 {
		t.Fatalf("instances = %d", res.Instances)
	}
	if res.Violations > 0 {
		t.Fatalf("violations on conformant device:\n%s", res.Hist)
	}
}

func BenchmarkPTEIterationMP(b *testing.B) {
	suite := mutation.MustGenerate()
	test, _ := suite.ByName("MP")
	d, _ := gpu.NewDevice(gpu.Profiles()[1], gpu.Bugs{}) // AMD
	r, err := NewRunner(d, stressedPTE())
	if err != nil {
		b.Fatal(err)
	}
	rng := xrand.New(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := r.Run(test, 1, rng); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- scope extension and pairing ablation ----

// TestIntraWorkgroupScopeSITE: under the intra-workgroup scope, SITE
// places all roles in workgroup 0.
func TestIntraWorkgroupScopeSITE(t *testing.T) {
	suite := mutation.MustGenerate()
	test, _ := suite.ByName("MP")
	p := stressedSITE()
	p.Scope = IntraWorkgroup
	p.WorkgroupSize = 4
	rng := xrand.New(3)
	plan, err := buildIteration(test, &p, rng)
	if err != nil {
		t.Fatal(err)
	}
	for tid, prog := range plan.spec.Programs {
		hasTest := false
		for _, in := range prog {
			if in.Op == gpu.OpLoad || in.Op == gpu.OpStore || in.Op == gpu.OpExchange {
				hasTest = true
			}
		}
		if hasTest && tid/p.WorkgroupSize != 0 {
			t.Fatalf("test thread %d outside workgroup 0", tid)
		}
	}
}

// TestIntraWorkgroupScopePTE: each instance's roles stay within one
// workgroup, and the runner produces sane results.
func TestIntraWorkgroupScopePTE(t *testing.T) {
	suite := mutation.MustGenerate()
	test, _ := suite.ByName("MP")
	p := stressedPTE()
	p.Scope = IntraWorkgroup
	rng := xrand.New(5)
	plan, err := buildIteration(test, &p, rng)
	if err != nil {
		t.Fatal(err)
	}
	// Locate each instance's roles by register ownership and by the
	// address usage of stores; both threads of an instance must share a
	// workgroup.
	for i := 0; i < plan.instances; i++ {
		wg := -1
		for _, ref := range plan.regOf[i] {
			if wg == -1 {
				wg = ref.tid / p.WorkgroupSize
			} else if ref.tid/p.WorkgroupSize != wg {
				t.Fatalf("instance %d roles span workgroups", i)
			}
		}
	}
	d := device(t, "AMD", gpu.Bugs{})
	r, err := NewRunner(d, p)
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.Run(test, 5, xrand.New(5))
	if err != nil {
		t.Fatal(err)
	}
	if res.Violations > 0 {
		t.Fatalf("intra-workgroup violations on conformant device:\n%s", res.Hist)
	}
}

func TestIntraScopeRequiresWideWorkgroups(t *testing.T) {
	suite := mutation.MustGenerate()
	test, _ := suite.ByName("MP")
	p := stressedSITE()
	p.Scope = IntraWorkgroup
	p.WorkgroupSize = 1
	if _, err := buildIteration(test, &p, xrand.New(1)); err == nil {
		t.Fatal("narrow workgroup accepted for intra scope")
	}
}

func TestScopeString(t *testing.T) {
	if InterWorkgroup.String() != "inter-workgroup" || IntraWorkgroup.String() != "intra-workgroup" {
		t.Fatal("scope names wrong")
	}
}

// TestNaivePairingStillCoversInstances: the ablation's successor
// mapping is a valid (if ineffective) pairing — every role of every
// instance still runs exactly once.
func TestNaivePairingStillCoversInstances(t *testing.T) {
	suite := mutation.MustGenerate()
	test, _ := suite.ByName("MP")
	p := stressedPTE()
	p.NaivePairing = true
	plan, err := buildIteration(test, &p, xrand.New(9))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < plan.instances; i++ {
		for r, ref := range plan.regOf[i] {
			if ref.tid < 0 || ref.tid >= len(plan.spec.Programs) {
				t.Fatalf("instance %d register %d unassigned", i, r)
			}
		}
	}
	// Under naive pairing, thread v's second role belongs to instance
	// v+1 mod n: the reader of instance i is thread i-1.
	d := device(t, "AMD", gpu.Bugs{})
	runner, err := NewRunner(d, p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := runner.Run(test, 2, xrand.New(9)); err != nil {
		t.Fatal(err)
	}
}

// TestObservationsWithinEnumeratedAllowedSet is the end-to-end audit:
// every outcome a conformant device produces must appear in the
// litmus-style enumerated allowed-outcomes table of the test's model.
func TestObservationsWithinEnumeratedAllowedSet(t *testing.T) {
	suite := mutation.MustGenerate()
	d := device(t, "Intel", gpu.Bugs{}) // jittery device, diverse outcomes
	r, err := NewRunner(d, stressedPTE())
	if err != nil {
		t.Fatal(err)
	}
	rng := xrand.New(4)
	for _, name := range []string{"CoRR", "MP", "SB", "MP-relacq", "CoWW", "2+2W", "SB-relacq-rmw"} {
		test, ok := suite.ByName(name)
		if !ok {
			t.Fatalf("missing %s", name)
		}
		allowed := test.AllowedOutcomes(test.Model)
		res, err := r.Run(test, 4, rng)
		if err != nil {
			t.Fatal(err)
		}
		// Audit the histogram keys against the allowed table.
		for _, oc := range test.EnumerateOutcomes(test.Model) {
			key := oc.Outcome.Key()
			if res.Hist.Count(key) > 0 && !allowed[key] {
				t.Errorf("%s: observed forbidden outcome %s on a conformant device", name, key)
			}
		}
		// Every distinct observed outcome must be in the enumeration's
		// universe at all (no out-of-universe values).
		universe := map[string]bool{}
		for _, oc := range test.EnumerateOutcomes(test.Model) {
			universe[oc.Outcome.Key()] = true
		}
		if got, want := res.Hist.Distinct(), len(universe); got > want {
			t.Errorf("%s: %d distinct outcomes exceeds the %d-outcome universe", name, got, want)
		}
	}
}

// TestExtendedCatalogUnderPTE: the four-role IRIW test schedules under
// the generalized permutation pairing, stays clean on a conformant
// device, and its weak behavior is observable on the jittery profile.
func TestExtendedCatalogUnderPTE(t *testing.T) {
	d := device(t, "Intel", gpu.Bugs{})
	env := stressedPTE()
	r, err := NewRunner(d, env)
	if err != nil {
		t.Fatal(err)
	}
	rng := xrand.New(41)
	totalKills := 0
	for _, test := range litmus.ExtendedCatalog() {
		res, err := r.Run(test, 10, rng)
		if err != nil {
			t.Fatalf("%s: %v", test.Name, err)
		}
		if res.Violations > 0 {
			t.Errorf("%s: violations on conformant device:\n%s", test.Name, res.Hist)
		}
		totalKills += res.TargetCount
		t.Logf("%-5s kills=%d/%d", test.Name, res.TargetCount, res.Instances)
	}
	if totalKills == 0 {
		t.Error("no extended weak behavior observed at all")
	}
}

func TestBuildKernelExported(t *testing.T) {
	suite := mutation.MustGenerate()
	test, _ := suite.ByName("CoRR")
	env := SITEBaseline()
	spec, err := BuildKernel(test, &env, xrand.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := SITEBaseline()
	bad.MemStride = 0
	if _, err := BuildKernel(test, &bad, xrand.New(1)); err == nil {
		t.Fatal("invalid params accepted")
	}
}
