package sched

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/xrand"
)

// cellValue is a JSON-round-trippable result carrying an RNG draw, so
// replay mismatches are detectable.
type cellValue struct {
	Key  string `json:"key"`
	Draw uint64 `json:"draw"`
}

func drawValue(_ context.Context, c Cell, rng *xrand.Rand) (cellValue, error) {
	return cellValue{Key: c.Key, Draw: rng.Uint64()}, nil
}

func TestCheckpointResumeSkipsDoneCells(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "c.ckpt")
	spec := testSpec(16)

	// Clean reference run, no checkpoint.
	clean, err := Run(spec, drawValue, Options[cellValue]{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}

	// First run is killed "mid-way": cell-009 fails permanently under
	// fail-fast, so only part of the campaign lands in the checkpoint.
	ck, err := OpenCheckpoint(path, spec, false)
	if err != nil {
		t.Fatal(err)
	}
	_, err = Run(spec, func(ctx context.Context, c Cell, rng *xrand.Rand) (cellValue, error) {
		if c.Key == "cell-009" {
			return cellValue{}, fmt.Errorf("killed")
		}
		return drawValue(ctx, c, rng)
	}, Options[cellValue]{Workers: 1, Checkpoint: ck})
	if err == nil {
		t.Fatal("interrupted run reported success")
	}
	ck.Close()

	// Resume: done cells replay, the rest execute, and the aggregate
	// matches the clean run exactly.
	ck2, err := OpenCheckpoint(path, spec, true)
	if err != nil {
		t.Fatal(err)
	}
	defer ck2.Close()
	if ck2.Completed() != 9 { // cells 0..8 completed before the failure
		t.Fatalf("checkpoint holds %d cells, want 9", ck2.Completed())
	}
	var executed atomic.Int32
	rep, err := Run(spec, func(ctx context.Context, c Cell, rng *xrand.Rand) (cellValue, error) {
		executed.Add(1)
		return drawValue(ctx, c, rng)
	}, Options[cellValue]{Workers: 4, Checkpoint: ck2})
	if err != nil {
		t.Fatal(err)
	}
	if got := executed.Load(); got != 7 {
		t.Fatalf("resume executed %d cells, want 7", got)
	}
	if rep.Replayed != 9 || rep.Executed != 7 {
		t.Fatalf("counters: replayed=%d executed=%d", rep.Replayed, rep.Executed)
	}
	got, want := rep.Values(), clean.Values()
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("cell %d: resumed %+v != clean %+v", i, got[i], want[i])
		}
	}
}

func TestCheckpointRejectsDifferentSpec(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "c.ckpt")
	spec := testSpec(4)
	ck, err := OpenCheckpoint(path, spec, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(spec, drawValue, Options[cellValue]{Checkpoint: ck}); err != nil {
		t.Fatal(err)
	}
	ck.Close()

	other := testSpec(4)
	other.Seed = 43 // different seed → different results → invalid resume
	if _, err := OpenCheckpoint(path, other, true); err == nil {
		t.Fatal("resume accepted a checkpoint from a different spec")
	} else if !strings.Contains(err.Error(), "different campaign spec") {
		t.Fatalf("unhelpful error: %v", err)
	}
}

func TestCheckpointTornTailDiscarded(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "c.ckpt")
	spec := testSpec(6)
	ck, err := OpenCheckpoint(path, spec, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(spec, drawValue, Options[cellValue]{Checkpoint: ck}); err != nil {
		t.Fatal(err)
	}
	ck.Close()

	// Simulate a kill mid-write: append half a record.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"key":"cell-9`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	ck2, err := OpenCheckpoint(path, spec, true)
	if err != nil {
		t.Fatalf("torn tail rejected: %v", err)
	}
	defer ck2.Close()
	if ck2.Completed() != 6 {
		t.Fatalf("Completed = %d, want 6", ck2.Completed())
	}
	// The torn bytes are gone: a fresh record appends cleanly and the
	// file reloads.
	rep, err := Run(spec, drawValue, Options[cellValue]{Checkpoint: ck2})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Replayed != 6 {
		t.Fatalf("Replayed = %d, want 6", rep.Replayed)
	}
	ck3, err := OpenCheckpoint(path, spec, true)
	if err != nil {
		t.Fatalf("checkpoint unreadable after torn-tail recovery: %v", err)
	}
	ck3.Close()
}

// TestCheckpointFlippedByteDetected: a single bit of mid-file
// corruption — a flipped byte inside a record's value — fails that
// record's CRC and the resume is refused with ErrCheckpointCorrupt,
// instead of silently replaying a poisoned result.
func TestCheckpointFlippedByteDetected(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "c.ckpt")
	spec := testSpec(6)
	ck, err := OpenCheckpoint(path, spec, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(spec, drawValue, Options[cellValue]{Checkpoint: ck}); err != nil {
		t.Fatal(err)
	}
	ck.Close()

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one digit inside a Draw value in the middle of the file. The
	// line stays valid JSON, so only the checksum can catch it.
	idx := strings.Index(string(raw), `"draw":`)
	if idx < 0 {
		t.Fatal("no draw field in checkpoint")
	}
	pos := idx + len(`"draw":`)
	if raw[pos] >= '5' {
		raw[pos] = '1'
	} else {
		raw[pos] = '7'
	}
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	_, err = OpenCheckpoint(path, spec, true)
	if err == nil {
		t.Fatal("flipped byte accepted")
	}
	if !errors.Is(err, ErrCheckpointCorrupt) {
		t.Fatalf("error is not ErrCheckpointCorrupt: %v", err)
	}
	if !strings.Contains(err.Error(), "checksum") {
		t.Fatalf("unhelpful error: %v", err)
	}
}

// TestCheckpointMidFileTruncationDetected: only the final record may be
// torn. A malformed line with records after it means mid-file damage,
// not a crash mid-append, and the resume is refused.
func TestCheckpointMidFileTruncationDetected(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "c.ckpt")
	spec := testSpec(6)
	ck, err := OpenCheckpoint(path, spec, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(spec, drawValue, Options[cellValue]{Checkpoint: ck}); err != nil {
		t.Fatal(err)
	}
	ck.Close()

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(string(raw), "\n")
	// Truncate the third record (header + two records kept intact).
	lines[3] = lines[3][:len(lines[3])/2]
	if err := os.WriteFile(path, []byte(strings.Join(lines, "")), 0o644); err != nil {
		t.Fatal(err)
	}

	_, err = OpenCheckpoint(path, spec, true)
	if err == nil {
		t.Fatal("mid-file truncation accepted")
	}
	if !errors.Is(err, ErrCheckpointCorrupt) {
		t.Fatalf("error is not ErrCheckpointCorrupt: %v", err)
	}
}

// TestCheckpointLegacyRecordsWithoutCRC: records written before the
// per-record checksum existed (no "crc" field) still load, so old
// checkpoints remain resumable.
func TestCheckpointLegacyRecordsWithoutCRC(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "c.ckpt")
	spec := testSpec(4)
	ck, err := OpenCheckpoint(path, spec, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(spec, drawValue, Options[cellValue]{Checkpoint: ck}); err != nil {
		t.Fatal(err)
	}
	ck.Close()

	// Strip every crc field, simulating a checkpoint from the previous
	// format.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var kept []string
	for _, line := range strings.Split(string(raw), "\n") {
		if i := strings.Index(line, `,"crc":"`); i >= 0 {
			line = line[:i] + "}"
		}
		kept = append(kept, line)
	}
	if err := os.WriteFile(path, []byte(strings.Join(kept, "\n")), 0o644); err != nil {
		t.Fatal(err)
	}

	ck2, err := OpenCheckpoint(path, spec, true)
	if err != nil {
		t.Fatalf("legacy checkpoint rejected: %v", err)
	}
	defer ck2.Close()
	if ck2.Completed() != 4 {
		t.Fatalf("Completed = %d, want 4", ck2.Completed())
	}
	rep, err := Run(spec, drawValue, Options[cellValue]{Checkpoint: ck2})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Replayed != 4 {
		t.Fatalf("Replayed = %d, want 4", rep.Replayed)
	}
}

func TestCheckpointResumeWithoutFileStartsFresh(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "missing.ckpt")
	spec := testSpec(2)
	ck, err := OpenCheckpoint(path, spec, true)
	if err != nil {
		t.Fatal(err)
	}
	defer ck.Close()
	if ck.Completed() != 0 {
		t.Fatal("fresh checkpoint not empty")
	}
	if _, err := Run(spec, drawValue, Options[cellValue]{Checkpoint: ck}); err != nil {
		t.Fatal(err)
	}
}

func TestManifestSensitivity(t *testing.T) {
	base := testSpec(3)
	m := base.Manifest()
	seed := base
	seed.Seed++
	reorder := testSpec(3)
	reorder.Cells[0], reorder.Cells[1] = reorder.Cells[1], reorder.Cells[0]
	fewer := testSpec(2)
	renamed := base
	renamed.Name = "other"
	for name, s := range map[string]Spec{
		"seed": seed, "order": reorder, "count": fewer, "name": renamed,
	} {
		if s.Manifest() == m {
			t.Errorf("manifest insensitive to %s", name)
		}
	}
	if base.Manifest() != m {
		t.Error("manifest not stable")
	}
}
