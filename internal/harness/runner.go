package harness

import (
	"fmt"
	"time"

	"repro/internal/gpu"
	"repro/internal/litmus"
	"repro/internal/mm"
	"repro/internal/xrand"
)

// Runner executes litmus tests in one environment on one device.
type Runner struct {
	Device *gpu.Device
	Params Params
	// Lower, when set, post-processes every generated thread program —
	// the hook through which the wgsl toolchain's backend lowering
	// (including defective driver builds) is applied.
	Lower func(gpu.Program) gpu.Program
}

// NewRunner validates the environment against the device and returns a
// runner.
func NewRunner(d *gpu.Device, p Params) (*Runner, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &Runner{Device: d, Params: p}, nil
}

// Result summarizes running one test for some iterations in one
// environment on one device.
type Result struct {
	// TestName identifies the litmus test.
	TestName string
	// IsMutant mirrors the test's role.
	IsMutant bool
	// Mutator is the generating mutator family, if any.
	Mutator string
	// Iterations is the number of kernel launches.
	Iterations int
	// Instances is the total number of test instances executed.
	Instances int
	// TargetCount is how many instances exhibited the target behavior;
	// for a mutant this is the number of kills, for a conformance test
	// the number of observed bugs.
	TargetCount int
	// Violations counts instances whose outcome the model disallows
	// (conformance failures, however they manifest).
	Violations int
	// SimSeconds is total simulated device time, the paper's time base
	// for rates and budgets.
	SimSeconds float64
	// WallSeconds is host time spent, for reporting only.
	WallSeconds float64
	// Hist is the outcome histogram.
	Hist *litmus.Histogram
	// FirstViolation is the first outcome classified disallowed, when
	// any; bug reports explain it via the axiomatic checker.
	FirstViolation *litmus.Outcome
}

// TargetRate returns target behaviors per simulated second (the mutant
// death rate when the test is a mutant).
func (r *Result) TargetRate() float64 {
	if r.SimSeconds <= 0 {
		return 0
	}
	return float64(r.TargetCount) / r.SimSeconds
}

// ViolationRate returns model violations per simulated second.
func (r *Result) ViolationRate() float64 {
	if r.SimSeconds <= 0 {
		return 0
	}
	return float64(r.Violations) / r.SimSeconds
}

// outcomeClass caches the classification of one outcome key.
type outcomeClass struct {
	target    bool
	violation bool
}

// Run executes the test for the given number of iterations, classifying
// every instance outcome. The rng drives all nondeterminism; equal
// seeds reproduce results exactly.
func (r *Runner) Run(test *litmus.Test, iterations int, rng *xrand.Rand) (*Result, error) {
	if iterations <= 0 {
		return nil, fmt.Errorf("harness: iterations=%d", iterations)
	}
	if err := test.Validate(); err != nil {
		return nil, err
	}
	start := time.Now()
	res := &Result{
		TestName: test.Name,
		IsMutant: test.IsMutant,
		Mutator:  test.Mutator,
		Hist:     litmus.NewHistogram(),
	}
	cache := map[string]outcomeClass{}
	for iter := 0; iter < iterations; iter++ {
		plan, err := buildIteration(test, &r.Params, rng)
		if err != nil {
			return nil, err
		}
		if r.Lower != nil {
			for i, prog := range plan.spec.Programs {
				plan.spec.Programs[i] = r.Lower(prog)
			}
		}
		run, err := r.Device.Run(plan.spec, rng)
		if err != nil {
			return nil, err
		}
		res.Iterations++
		res.Instances += plan.instances
		res.SimSeconds += run.SimSeconds
		for i := 0; i < plan.instances; i++ {
			o := extractOutcome(test, plan, run, i)
			key := o.Key()
			cls, ok := cache[key]
			if !ok {
				verdict, err := test.Classify(o)
				if err != nil {
					return nil, fmt.Errorf("harness: classify %s: %w", test.Name, err)
				}
				cls = outcomeClass{
					target:    test.Target.Matches(o),
					violation: !verdict.Allowed,
				}
				cache[key] = cls
			}
			if cls.violation && res.FirstViolation == nil {
				saved := o
				res.FirstViolation = &saved
			}
			res.Hist.Add(o, cls.target, cls.violation)
		}
	}
	res.TargetCount = res.Hist.TargetCount()
	res.Violations = res.Hist.Violations()
	res.WallSeconds = time.Since(start).Seconds()
	return res, nil
}

// extractOutcome reads instance i's registers and final memory out of a
// device run.
func extractOutcome(test *litmus.Test, plan *iterationPlan, run *gpu.RunResult, i int) litmus.Outcome {
	o := litmus.Outcome{
		Regs:  make([]mm.Val, test.NumRegs),
		Final: make([]mm.Val, test.NumLocs),
	}
	for r := 0; r < test.NumRegs; r++ {
		ref := plan.regOf[i][r]
		o.Regs[r] = mm.Val(run.Registers[ref.tid][ref.reg])
	}
	for l := 0; l < test.NumLocs; l++ {
		o.Final[l] = mm.Val(run.Memory[plan.locAddr[i][l]])
	}
	return o
}
