package resultcache

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"syscall"
	"testing"
	"time"

	"repro/internal/diskio"
)

// key returns a realistic cache key: hex SHA-256, like sched.CellDigest.
func key(s string) string {
	sum := sha256.Sum256([]byte(s))
	return hex.EncodeToString(sum[:])
}

func mustOpen(t *testing.T, dir string, opts Options) *Cache {
	t.Helper()
	c, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	return c
}

func TestRoundTrip(t *testing.T) {
	c := mustOpen(t, t.TempDir(), Options{})
	k := key("cell-1")
	payload := []byte(`{"instances":100,"violations":3}`)

	if _, hit, corrupt := c.Get(k); hit || corrupt {
		t.Fatalf("Get on empty cache: hit=%v corrupt=%v", hit, corrupt)
	}
	c.Put(k, payload)
	got, hit, corrupt := c.Get(k)
	if !hit || corrupt {
		t.Fatalf("Get after Put: hit=%v corrupt=%v", hit, corrupt)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("payload mismatch: got %s want %s", got, payload)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Puts != 1 || st.Corrupt != 0 || st.Degraded {
		t.Fatalf("stats: %+v", st)
	}
}

func TestPayloadCanonicalized(t *testing.T) {
	// Whitespace variants of the same JSON document must store — and
	// serve — identical canonical bytes, or a warm run could differ from
	// a cold one by formatting alone.
	dir := t.TempDir()
	c := mustOpen(t, dir, Options{})
	k := key("cell-ws")
	c.Put(k, []byte(" {\n  \"a\": 1 }\n"))
	got, hit, _ := c.Get(k)
	if !hit || string(got) != `{"a":1}` {
		t.Fatalf("canonical payload: hit=%v got=%q", hit, got)
	}
}

// TestCorruptEveryOffset is the verify-on-read property: a single bit
// flipped at ANY byte offset of a published entry must be detected,
// quarantined into corrupt/, and reported as a recompute — never served
// as a hit, never surfaced as an error.
func TestCorruptEveryOffset(t *testing.T) {
	dir := t.TempDir()
	c := mustOpen(t, dir, Options{})
	k := key("cell-corrupt")
	c.Put(k, []byte(`{"result":"paper-figure-4","count":42}`))
	objPath := filepath.Join(dir, "objects", k)
	pristine, err := os.ReadFile(objPath)
	if err != nil {
		t.Fatal(err)
	}
	for off := 0; off < len(pristine); off++ {
		mutated := append([]byte(nil), pristine...)
		mutated[off] ^= 0x40
		if bytes.Equal(mutated, pristine) {
			continue
		}
		if err := os.WriteFile(objPath, mutated, 0o644); err != nil {
			t.Fatal(err)
		}
		payload, hit, corrupt := c.Get(k)
		if hit || payload != nil {
			t.Fatalf("offset %d: flipped entry served as a hit (payload %q)", off, payload)
		}
		if !corrupt {
			t.Fatalf("offset %d: flipped entry not reported corrupt", off)
		}
		if _, err := os.Stat(objPath); !os.IsNotExist(err) {
			t.Fatalf("offset %d: corrupted entry still in objects/ (err=%v)", off, err)
		}
		qPath := filepath.Join(dir, "corrupt", k)
		if _, err := os.Stat(qPath); err != nil {
			t.Fatalf("offset %d: no quarantined copy: %v", off, err)
		}
		os.Remove(qPath)
		if err := os.WriteFile(objPath, pristine, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	// The pristine entry still verifies after all that.
	if _, hit, corrupt := c.Get(k); !hit || corrupt {
		t.Fatalf("pristine entry after corruption sweep: hit=%v corrupt=%v", hit, corrupt)
	}
}

func TestVersionSkewQuarantined(t *testing.T) {
	dir := t.TempDir()
	c := mustOpen(t, dir, Options{})
	k := key("cell-future")
	// A well-formed envelope from a future format version: digest and
	// key check out, but the version does not — readers must refuse it.
	payload := []byte(`{"x":1}`)
	sum := sha256.Sum256(payload)
	data, err := json.Marshal(map[string]any{
		"format":         FormatVersion + 1,
		"key":            k,
		"payload":        json.RawMessage(payload),
		"payload_sha256": hex.EncodeToString(sum[:]),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "objects", k), data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, hit, corrupt := c.Get(k); hit || !corrupt {
		t.Fatalf("future-format entry: hit=%v corrupt=%v", hit, corrupt)
	}
}

func TestWrongKeyQuarantined(t *testing.T) {
	// An entry copied (or hard-linked) to the wrong name must not serve:
	// the embedded key is part of the verification.
	dir := t.TempDir()
	c := mustOpen(t, dir, Options{})
	k1, k2 := key("cell-a"), key("cell-b")
	c.Put(k1, []byte(`{"a":1}`))
	data, err := os.ReadFile(filepath.Join(dir, "objects", k1))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "objects", k2), data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, hit, corrupt := c.Get(k2); hit || !corrupt {
		t.Fatalf("misfiled entry: hit=%v corrupt=%v", hit, corrupt)
	}
	if _, hit, _ := c.Get(k1); !hit {
		t.Fatal("original entry lost")
	}
}

// TestConcurrentSameKeyWriters races many writers and readers of the
// same key (run under -race). The key is a content address of the
// cell's inputs, so every writer carries identical bytes; exactly one
// publication must win and every read must verify.
func TestConcurrentSameKeyWriters(t *testing.T) {
	c := mustOpen(t, t.TempDir(), Options{})
	k := key("cell-race")
	payload := []byte(`{"v":"identical-by-construction"}`)
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				c.Put(k, payload)
				if got, hit, corrupt := c.Get(k); hit {
					if corrupt || !bytes.Equal(got, payload) {
						t.Errorf("racing Get: corrupt=%v payload=%q", corrupt, got)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	if st := c.Stats(); st.Puts != 1 {
		t.Fatalf("want exactly one winning publication, got %d", st.Puts)
	}
	if _, hit, corrupt := c.Get(k); !hit || corrupt {
		t.Fatalf("final Get: hit=%v corrupt=%v", hit, corrupt)
	}
}

// TestCompactionDeterministic pins the LRU pass: with a fake clock
// assigning each entry a distinct recency, reopening under a byte
// budget evicts exactly the oldest entries, in a fixed order.
func TestCompactionDeterministic(t *testing.T) {
	dir := t.TempDir()
	clock := time.Unix(1_700_000_000, 0)
	now := func() time.Time { return clock }
	c := mustOpen(t, dir, Options{Now: now})
	keys := make([]string, 5)
	var entrySize int64
	for i := range keys {
		keys[i] = key(fmt.Sprintf("cell-%d", i))
		clock = clock.Add(time.Minute)
		c.Put(keys[i], []byte(fmt.Sprintf(`{"i":%d}`, i)))
		info, err := os.Stat(filepath.Join(dir, "objects", keys[i]))
		if err != nil {
			t.Fatal(err)
		}
		entrySize = info.Size()
	}
	// A Get refreshes recency: touch the oldest entry so it survives a
	// pass that would otherwise evict it first.
	clock = clock.Add(time.Hour)
	if _, hit, _ := c.Get(keys[0]); !hit {
		t.Fatal("warm Get missed")
	}

	// Budget for two entries: survivors must be the touched keys[0] and
	// the most recently published keys[4].
	c2 := mustOpen(t, dir, Options{Now: now, MaxBytes: 2 * entrySize})
	if st := c2.Stats(); st.Evicted != 3 {
		t.Fatalf("evicted %d entries, want 3", st.Evicted)
	}
	for i, k := range keys {
		_, hit, _ := c2.Get(k)
		want := i == 0 || i == 4
		if hit != want {
			t.Fatalf("entry %d survival: hit=%v want=%v", i, hit, want)
		}
	}

	// Determinism: rebuilding the same directory state and compacting
	// again evicts the same population.
	dir2 := t.TempDir()
	clock2 := time.Unix(1_700_000_000, 0)
	c3 := mustOpen(t, dir2, Options{Now: func() time.Time { return clock2 }})
	for i, k := range keys {
		clock2 = clock2.Add(time.Minute)
		c3.Put(k, []byte(fmt.Sprintf(`{"i":%d}`, i)))
	}
	clock2 = clock2.Add(time.Hour)
	c3.Get(keys[0])
	c4 := mustOpen(t, dir2, Options{MaxBytes: 2 * entrySize})
	for i, k := range keys {
		_, hit, _ := c4.Get(k)
		want := i == 0 || i == 4
		if hit != want {
			t.Fatalf("replayed compaction, entry %d: hit=%v want=%v", i, hit, want)
		}
	}
}

func TestTmpLeftoversRemovedAtOpen(t *testing.T) {
	dir := t.TempDir()
	mustOpen(t, dir, Options{})
	// A writer that died mid-publication leaves key.tmp behind.
	tmp := filepath.Join(dir, "objects", key("cell-dead")+".tmp")
	if err := os.WriteFile(tmp, []byte("torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	mustOpen(t, dir, Options{})
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Fatalf("temp leftover survived reopen: %v", err)
	}
}

func TestOpenFailsFastOnMisconfiguration(t *testing.T) {
	dir := t.TempDir()
	file := filepath.Join(dir, "not-a-dir")
	if err := os.WriteFile(file, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(file, Options{}); err == nil {
		t.Fatal("Open over a plain file: want error, got nil")
	}
}

func TestStorageErrorDegradesNotFails(t *testing.T) {
	// ENOSPC at every boundary: open-time and steady-state failures must
	// both resolve to a usable pass-through cache, never an error.
	t.Run("at open", func(t *testing.T) {
		ffs := diskio.NewFaultFS(diskio.OS{}, 3)
		ffs.FailFrom(1, syscall.ENOSPC)
		c, err := Open(t.TempDir(), Options{FS: ffs})
		if err != nil {
			t.Fatalf("full disk at open must degrade, got error: %v", err)
		}
		if c.Degraded() == nil {
			t.Fatal("cache not degraded")
		}
		c.Put(key("k"), []byte(`{}`))
		if _, hit, corrupt := c.Get(key("k")); hit || corrupt {
			t.Fatalf("degraded cache must pass through: hit=%v corrupt=%v", hit, corrupt)
		}
	})
	t.Run("mid run", func(t *testing.T) {
		ffs := diskio.NewFaultFS(diskio.OS{}, 3)
		c, err := Open(t.TempDir(), Options{FS: ffs})
		if err != nil {
			t.Fatal(err)
		}
		k := key("cell-enospc")
		c.Put(k, []byte(`{"ok":true}`))
		if _, hit, _ := c.Get(k); !hit {
			t.Fatal("warm Get before the fault missed")
		}
		ffs.FailFrom(ffs.Ops()+1, syscall.ENOSPC)
		// The next touch or publication trips the sticky degradation...
		c.Get(k)
		c.Put(key("cell-other"), []byte(`{}`))
		if c.Degraded() == nil {
			t.Fatal("persistent ENOSPC did not degrade the cache")
		}
		// ...and from then on everything is a silent pass-through.
		if _, hit, corrupt := c.Get(k); hit || corrupt {
			t.Fatalf("degraded Get: hit=%v corrupt=%v", hit, corrupt)
		}
		st := c.Stats()
		if !st.Degraded || st.Err == "" {
			t.Fatalf("stats must report degradation: %+v", st)
		}
	})
}

func TestCrashedFSIsNotDegradation(t *testing.T) {
	// A frozen (crash-simulated) filesystem is not a storage error: ops
	// just miss or drop, and the cache does NOT flip its sticky
	// degradation — a restarted process gets a healthy cache over the
	// surviving bytes.
	ffs := diskio.NewFaultFS(diskio.OS{}, 3)
	c, err := Open(t.TempDir(), Options{FS: ffs})
	if err != nil {
		t.Fatal(err)
	}
	k := key("cell-crash")
	c.Put(k, []byte(`{"ok":true}`))
	ffs.CrashAfter(ffs.Ops() + 1)
	c.Put(key("other"), []byte(`{}`)) // consumes the crash point
	if _, hit, corrupt := c.Get(k); hit || corrupt {
		t.Fatalf("frozen-FS Get: hit=%v corrupt=%v", hit, corrupt)
	}
	if c.Degraded() != nil {
		t.Fatalf("crash must not degrade: %v", c.Degraded())
	}
}

func TestOversizedPayloadRefused(t *testing.T) {
	c := mustOpen(t, t.TempDir(), Options{})
	big := bytes.Repeat([]byte("a"), 1<<25)
	payload := append(append([]byte(`{"blob":"`), big...), []byte(`"}`)...)
	c.Put(key("cell-huge"), payload)
	if st := c.Stats(); st.Puts != 0 {
		t.Fatalf("oversized payload published: %+v", st)
	}
}

func TestNonJSONPayloadRefused(t *testing.T) {
	c := mustOpen(t, t.TempDir(), Options{})
	c.Put(key("cell-garbage"), []byte("not json"))
	if st := c.Stats(); st.Puts != 0 {
		t.Fatalf("non-JSON payload published: %+v", st)
	}
}
