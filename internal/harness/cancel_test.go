package harness

import (
	"context"
	"errors"
	"testing"

	"repro/internal/gpu"
	"repro/internal/mutation"
	"repro/internal/xrand"
)

// TestRunCtxCancelledBetweenIterations: a cancelled context stops the
// iteration loop before the next launch and the error carries the
// context cause plus how far the run got.
func TestRunCtxCancelledBetweenIterations(t *testing.T) {
	suite := mutation.MustGenerate()
	test, _ := suite.ByName("MP")
	r, err := NewRunner(device(t, "AMD", gpu.Bugs{}), stressedPTE())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err = r.RunCtx(ctx, test, 5, xrand.New(3))
	if err == nil {
		t.Fatal("cancelled run returned a result")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error does not wrap context.Canceled: %v", err)
	}
}

// TestRunnerReusableAfterCancel: an interrupted RunInto leaves the
// runner's scratch coherent — the next run with the same seed matches a
// fresh runner exactly.
func TestRunnerReusableAfterCancel(t *testing.T) {
	suite := mutation.MustGenerate()
	test, _ := suite.ByName("MP")
	warm, err := NewRunner(device(t, "AMD", gpu.Bugs{}), stressedPTE())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var res Result
	if err := warm.RunInto(ctx, &res, test, 3, xrand.New(9)); err == nil {
		t.Fatal("cancelled RunInto succeeded")
	}
	got, err := warm.Run(test, 3, xrand.New(21))
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := NewRunner(device(t, "AMD", gpu.Bugs{}), stressedPTE())
	if err != nil {
		t.Fatal(err)
	}
	want, err := fresh.Run(test, 3, xrand.New(21))
	if err != nil {
		t.Fatal(err)
	}
	if got.Iterations != want.Iterations || got.Instances != want.Instances ||
		got.TargetCount != want.TargetCount || got.SimSeconds != want.SimSeconds {
		t.Fatalf("warm runner diverged after cancel:\n got %+v\nwant %+v", got, want)
	}
}
