package diskio

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"syscall"
	"testing"
)

func TestWriteAtomicPublishesComplete(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.json")
	if err := WriteFileAtomic(OS{}, path, []byte("hello world\n")); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "hello world\n" {
		t.Fatalf("content %q", got)
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Fatal("temp file left behind")
	}
}

func TestWriteAtomicReplacesExisting(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.json")
	if err := WriteFileAtomic(OS{}, path, []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if err := WriteFileAtomic(OS{}, path, []byte("v2")); err != nil {
		t.Fatal(err)
	}
	got, _ := os.ReadFile(path)
	if string(got) != "v2" {
		t.Fatalf("content %q, want v2", got)
	}
}

func TestWriteAtomicWriteErrorLeavesTargetUntouched(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.json")
	if err := WriteFileAtomic(OS{}, path, []byte("v1")); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("boom")
	err := WriteAtomic(OS{}, path, func(w io.Writer) error { return boom })
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	got, _ := os.ReadFile(path)
	if string(got) != "v1" {
		t.Fatalf("target changed to %q", got)
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Fatal("temp file left behind")
	}
}

// TestWriteAtomicNeverPartiallyVisible: crash the publication at every
// I/O boundary; at each one the target either keeps its previous
// complete content or holds the new complete content — never a prefix.
func TestWriteAtomicNeverPartiallyVisible(t *testing.T) {
	const oldContent, newContent = "old complete artifact\n", "new complete artifact, longer\n"
	// Profile a clean publication to count its boundaries.
	probeDir := t.TempDir()
	probe := NewFaultFS(OS{}, 7)
	if err := WriteFileAtomic(probe, filepath.Join(probeDir, "a"), []byte(newContent)); err != nil {
		t.Fatal(err)
	}
	total := probe.Ops()
	if total < 4 { // create, write, sync, rename (+ dir sync)
		t.Fatalf("publication used %d ops, expected at least 4", total)
	}
	for n := 1; n <= total; n++ {
		dir := t.TempDir()
		path := filepath.Join(dir, "a")
		if err := os.WriteFile(path, []byte(oldContent), 0o644); err != nil {
			t.Fatal(err)
		}
		ffs := NewFaultFS(OS{}, 7)
		ffs.CrashAfter(n)
		err := WriteFileAtomic(ffs, path, []byte(newContent))
		if n < total && err == nil {
			t.Fatalf("crash at op %d/%d: publication claimed success", n, total)
		}
		got, rerr := os.ReadFile(path)
		if rerr != nil {
			t.Fatalf("crash at op %d: target unreadable: %v", n, rerr)
		}
		if s := string(got); s != oldContent && s != newContent {
			t.Fatalf("crash at op %d: partial artifact visible: %q", n, s)
		}
	}
}

func TestFaultFSFailOpInjectsENOSPC(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS(OS{}, 1)
	f, err := Create(ffs, filepath.Join(dir, "x"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	ffs.FailOp(2, syscall.ENOSPC) // op 1 was the create
	_, err = f.Write([]byte("0123456789"))
	if !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("err = %v, want ENOSPC", err)
	}
	if !IsStorageErr(err) {
		t.Fatal("ENOSPC not classified as a storage error")
	}
	// The filesystem stays alive after a non-crash fault.
	if _, err := f.Write([]byte("after")); err != nil {
		t.Fatalf("write after injected fault: %v", err)
	}
}

func TestFaultFSFailFromIsPersistent(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS(OS{}, 1)
	f, err := Create(ffs, filepath.Join(dir, "x"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	ffs.FailFrom(2, syscall.EIO)
	for i := 0; i < 3; i++ {
		if _, err := f.Write([]byte("data")); !errors.Is(err, syscall.EIO) {
			t.Fatalf("write %d: err = %v, want persistent EIO", i, err)
		}
	}
	if err := f.Sync(); !errors.Is(err, syscall.EIO) {
		t.Fatalf("sync: err = %v, want EIO", err)
	}
}

func TestFaultFSCrashFreezesEverything(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS(OS{}, 1)
	f, err := Create(ffs, filepath.Join(dir, "x"))
	if err != nil {
		t.Fatal(err)
	}
	ffs.CrashAfter(2)
	if _, err := f.Write([]byte("abc")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("crashing write: %v", err)
	}
	if !ffs.Crashed() {
		t.Fatal("Crashed() false after crash point")
	}
	if _, err := f.Write([]byte("more")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash write: %v", err)
	}
	if err := f.Sync(); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash sync: %v", err)
	}
	if err := ffs.Rename(filepath.Join(dir, "x"), filepath.Join(dir, "y")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash rename: %v", err)
	}
	if _, err := Open(ffs, filepath.Join(dir, "x")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash open: %v", err)
	}
	if IsStorageErr(ErrCrashed) {
		t.Fatal("a crash must not classify as a degradable storage error")
	}
	f.Close()
}

// TestFaultFSTearDeterministic: the torn prefix of a crashing write is
// a pure function of (seed, op ordinal) — two identically-configured
// runs leave byte-identical wreckage.
func TestFaultFSTearDeterministic(t *testing.T) {
	payload := []byte("0123456789abcdefghijklmnopqrstuvwxyz")
	run := func(seed uint64) []byte {
		dir := t.TempDir()
		ffs := NewFaultFS(OS{}, seed)
		f, err := Create(ffs, filepath.Join(dir, "x"))
		if err != nil {
			t.Fatal(err)
		}
		ffs.CrashAfter(2)
		f.Write(payload)
		f.Close()
		got, err := os.ReadFile(filepath.Join(dir, "x"))
		if err != nil {
			t.Fatal(err)
		}
		return got
	}
	a, b := run(42), run(42)
	if string(a) != string(b) {
		t.Fatalf("same seed, different wreckage: %q vs %q", a, b)
	}
	if len(a) >= len(payload) {
		t.Fatalf("crashing write not torn: %d bytes survived", len(a))
	}
	// A different seed should (for this payload/seed pair) tear
	// elsewhere; equality would suggest the offset ignores the seed.
	if c := run(43); string(c) == string(a) && len(a) > 0 {
		t.Logf("note: seeds 42 and 43 tore at the same offset (possible, but worth a look)")
	}
}

func TestFaultFSOpsCountsMutations(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS(OS{}, 1)
	f, err := Create(ffs, filepath.Join(dir, "x")) // op 1
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte("a")) // op 2
	f.Sync()             // op 3
	f.Close()            // not a mutation
	if _, err := Open(ffs, filepath.Join(dir, "x")); err != nil { // not a mutation
		t.Fatal(err)
	}
	ffs.SyncDir(dir) // op 4
	if got := ffs.Ops(); got != 4 {
		t.Fatalf("Ops() = %d, want 4", got)
	}
}
