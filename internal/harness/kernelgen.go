package harness

import (
	"fmt"

	"repro/internal/gpu"
	"repro/internal/litmus"
	"repro/internal/xrand"
)

// regRef locates one litmus register in the kernel's result space.
type regRef struct {
	tid int
	reg uint16
}

// iterationPlan is one iteration's kernel plus the bookkeeping needed
// to recover per-instance outcomes from the device result.
type iterationPlan struct {
	spec      gpu.LaunchSpec
	instances int
	// regOf[i][r] locates litmus register r of instance i.
	regOf [][]regRef
	// locAddr[i][l] is the memory address of instance i's location l.
	locAddr [][]uint32
}

// affinePerm is the PTE pairing function of Sec. 4.1: v -> (v*p + q)
// mod n with p co-prime to n. It is a bijection on [0, n), has no
// divergent control flow on a real device (a multiply, add and modulo),
// and avoids the simple v -> v+1 patterns prior work found ineffective.
type affinePerm struct {
	n, p, q uint64
}

func newAffinePerm(n int, rng *xrand.Rand) affinePerm {
	if n <= 1 {
		return affinePerm{n: uint64(max(n, 1)), p: 1, q: 0}
	}
	return affinePerm{
		n: uint64(n),
		p: rng.Coprime(uint64(n)),
		q: rng.Uint64n(uint64(n)),
	}
}

func (a affinePerm) apply(v int) int {
	return int((uint64(v)*a.p + a.q) % a.n)
}

// applyN composes the permutation k times.
func (a affinePerm) applyN(v, k int) int {
	for i := 0; i < k; i++ {
		v = a.apply(v)
	}
	return v
}

// buildIteration constructs one iteration's kernel for the test under
// the environment. Each iteration redraws permutations, stress-line
// placement and per-thread stress participation.
func buildIteration(test *litmus.Test, p *Params, rng *xrand.Rand) (*iterationPlan, error) {
	roles := len(test.Threads)
	if p.Scope == IntraWorkgroup && p.WorkgroupSize < roles {
		return nil, fmt.Errorf("harness: intra-workgroup scope needs workgroup size >= %d roles, have %d",
			roles, p.WorkgroupSize)
	}
	testingWGs := p.TestingWorkgroups
	totalWGs := p.MaxWorkgroups
	if !p.Parallel {
		// SITE: one test thread per workgroup, one workgroup per role.
		if testingWGs < roles {
			testingWGs = roles
		}
		if totalWGs < testingWGs {
			totalWGs = testingWGs
		}
	}
	instances := 1
	if p.Parallel {
		instances = testingWGs * p.WorkgroupSize
	}
	if instances < 1 {
		return nil, fmt.Errorf("harness: zero test instances")
	}

	// Memory layout: one region per test location, then scratch.
	regionWords := instances * p.MemStride
	scratchBase := test.NumLocs * regionWords
	memWords := scratchBase + p.ScratchMemWords
	locPerms := make([]affinePerm, test.NumLocs)
	for l := range locPerms {
		if l == 0 || !p.Parallel {
			locPerms[l] = affinePerm{n: uint64(instances), p: 1, q: 0}
		} else {
			locPerms[l] = newAffinePerm(instances, rng)
		}
	}
	locAddr := make([][]uint32, instances)
	for i := 0; i < instances; i++ {
		locAddr[i] = make([]uint32, test.NumLocs)
		for l := 0; l < test.NumLocs; l++ {
			slot := locPerms[l].apply(i)
			off := 0
			if l > 0 {
				off = p.MemLocOffset
			}
			locAddr[i][l] = uint32(l*regionWords + slot*p.MemStride + off)
		}
	}

	// Stress lines within scratch.
	linesAvail := p.ScratchMemWords / p.StressLineSize
	nLines := p.StressTargetLines
	if nLines > linesAvail {
		nLines = linesAvail
	}
	lineStarts := make([]uint32, 0, nLines)
	for _, li := range rng.Perm(linesAvail)[:nLines] {
		lineStarts = append(lineStarts, uint32(scratchBase+li*p.StressLineSize))
	}
	stressAddr := func(k int) uint32 {
		line := lineStarts[k%len(lineStarts)]
		return line + uint32(rng.Intn(p.StressLineSize))
	}

	// Role pairing permutation (PTE). Under the intra-workgroup scope
	// the permutation acts within each workgroup's lane space so all of
	// an instance's roles stay in one workgroup.
	pairSpace := instances
	if p.Scope == IntraWorkgroup && p.Parallel {
		pairSpace = p.WorkgroupSize
	}
	var pairing affinePerm
	if p.NaivePairing {
		// The simple successor mapping prior work found ineffective;
		// kept for the ablation study.
		pairing = affinePerm{n: uint64(pairSpace), p: 1, q: 1 % uint64(pairSpace)}
	} else {
		pairing = newAffinePerm(pairSpace, rng)
	}

	// Per-iteration draws.
	barrier := rng.Intn(100) < p.BarrierPct
	shuffle := make([]int, instances)
	for i := range shuffle {
		shuffle[i] = i
	}
	if p.Parallel && rng.Intn(100) < p.ShufflePct {
		rng.Shuffle(len(shuffle), func(i, j int) { shuffle[i], shuffle[j] = shuffle[j], shuffle[i] })
	}

	nThreads := totalWGs * p.WorkgroupSize
	programs := make([]gpu.Program, nThreads)
	regOf := make([][]regRef, instances)
	for i := range regOf {
		regOf[i] = make([]regRef, test.NumRegs)
	}

	emitStress := func(prog gpu.Program, pattern StressPattern, iters int, base int) gpu.Program {
		for k := 0; k < iters; k++ {
			a1 := stressAddr(base + 2*k)
			a2 := stressAddr(base + 2*k + 1)
			switch pattern {
			case StoreStore:
				prog = append(prog,
					gpu.Instr{Op: gpu.OpStressStore, Addr: a1, Imm: 1},
					gpu.Instr{Op: gpu.OpStressStore, Addr: a2, Imm: 1})
			case StoreLoad:
				prog = append(prog,
					gpu.Instr{Op: gpu.OpStressStore, Addr: a1, Imm: 1},
					gpu.Instr{Op: gpu.OpStressLoad, Addr: a2})
			case LoadStore:
				prog = append(prog,
					gpu.Instr{Op: gpu.OpStressLoad, Addr: a1},
					gpu.Instr{Op: gpu.OpStressStore, Addr: a2, Imm: 1})
			case LoadLoad:
				prog = append(prog,
					gpu.Instr{Op: gpu.OpStressLoad, Addr: a1},
					gpu.Instr{Op: gpu.OpStressLoad, Addr: a2})
			}
		}
		return prog
	}

	// emitRole appends one litmus thread's instructions, bound to an
	// instance's addresses, and records register locations.
	emitRole := func(prog gpu.Program, tid, instance, role int, nextReg *uint16) gpu.Program {
		for _, in := range test.Threads[role].Instrs {
			switch in.Op {
			case litmus.OpLoad:
				prog = append(prog, gpu.Instr{
					Op: gpu.OpLoad, Addr: locAddr[instance][in.Loc], Reg: *nextReg,
				})
				regOf[instance][in.Reg] = regRef{tid: tid, reg: *nextReg}
				*nextReg++
			case litmus.OpStore:
				prog = append(prog, gpu.Instr{
					Op: gpu.OpStore, Addr: locAddr[instance][in.Loc], Imm: uint32(in.Val),
				})
			case litmus.OpExchange:
				prog = append(prog, gpu.Instr{
					Op: gpu.OpExchange, Addr: locAddr[instance][in.Loc],
					Imm: uint32(in.Val), Reg: *nextReg,
				})
				regOf[instance][in.Reg] = regRef{tid: tid, reg: *nextReg}
				*nextReg++
			case litmus.OpFence:
				prog = append(prog, gpu.Instr{Op: gpu.OpFence})
			}
		}
		return prog
	}

	if p.Parallel {
		// Every thread of every testing workgroup runs all roles, each
		// for a different instance, paired by the permutation: thread v
		// runs role 0 of instance v, role 1 of instance perm(v), role 2
		// of instance perm(perm(v)), ... Under the intra-workgroup
		// scope the permutation acts on lanes, keeping each instance's
		// roles inside one workgroup.
		for wg := 0; wg < testingWGs; wg++ {
			for lane := 0; lane < p.WorkgroupSize; lane++ {
				tid := wg*p.WorkgroupSize + lane
				var prog gpu.Program
				if barrier {
					prog = append(prog, gpu.Instr{Op: gpu.OpBarrier})
				}
				if p.PreStressIters > 0 && rng.Intn(100) < p.PreStressPct {
					prog = emitStress(prog, p.PreStressPattern, p.PreStressIters, tid)
				}
				var nextReg uint16
				for r := 0; r < roles; r++ {
					var inst int
					if p.Scope == IntraWorkgroup {
						inst = wg*p.WorkgroupSize + pairing.applyN(lane, r)
					} else {
						inst = pairing.applyN(shuffle[tid], r)
					}
					prog = emitRole(prog, tid, inst, r, &nextReg)
				}
				programs[tid] = prog
			}
		}
	} else if p.Scope == IntraWorkgroup {
		// SITE, intra-workgroup: role r runs on lane r of workgroup 0.
		for r := 0; r < roles; r++ {
			tid := r
			var prog gpu.Program
			if barrier {
				prog = append(prog, gpu.Instr{Op: gpu.OpBarrier})
			}
			if p.PreStressIters > 0 && rng.Intn(100) < p.PreStressPct {
				prog = emitStress(prog, p.PreStressPattern, p.PreStressIters, tid)
			}
			var nextReg uint16
			prog = emitRole(prog, tid, 0, r, &nextReg)
			programs[tid] = prog
		}
	} else {
		// SITE: role r runs on thread 0 of workgroup r.
		for r := 0; r < roles; r++ {
			tid := r * p.WorkgroupSize
			var prog gpu.Program
			if barrier {
				prog = append(prog, gpu.Instr{Op: gpu.OpBarrier})
			}
			if p.PreStressIters > 0 && rng.Intn(100) < p.PreStressPct {
				prog = emitStress(prog, p.PreStressPattern, p.PreStressIters, tid)
			}
			var nextReg uint16
			prog = emitRole(prog, tid, 0, r, &nextReg)
			programs[tid] = prog
		}
	}

	// Stress workgroups.
	for wg := testingWGs; wg < totalWGs; wg++ {
		if p.MemStressIters == 0 || rng.Intn(100) >= p.MemStressPct {
			continue
		}
		for lane := 0; lane < p.WorkgroupSize; lane++ {
			tid := wg*p.WorkgroupSize + lane
			if p.StressStrategy == Chunked {
				// Pin the thread to a single line for all its accesses.
				line := lineStarts[tid%len(lineStarts)]
				var prog gpu.Program
				for k := 0; k < p.MemStressIters; k++ {
					a1 := line + uint32(rng.Intn(p.StressLineSize))
					a2 := line + uint32(rng.Intn(p.StressLineSize))
					prog = appendPattern(prog, p.MemStressPattern, a1, a2)
				}
				programs[tid] = prog
				continue
			}
			programs[tid] = emitStress(nil, p.MemStressPattern, p.MemStressIters, tid)
		}
	}

	return &iterationPlan{
		spec: gpu.LaunchSpec{
			WorkgroupSize: p.WorkgroupSize,
			Workgroups:    totalWGs,
			MemWords:      memWords,
			Programs:      programs,
		},
		instances: instances,
		regOf:     regOf,
		locAddr:   locAddr,
	}, nil
}

func appendPattern(prog gpu.Program, pattern StressPattern, a1, a2 uint32) gpu.Program {
	switch pattern {
	case StoreStore:
		return append(prog,
			gpu.Instr{Op: gpu.OpStressStore, Addr: a1, Imm: 1},
			gpu.Instr{Op: gpu.OpStressStore, Addr: a2, Imm: 1})
	case StoreLoad:
		return append(prog,
			gpu.Instr{Op: gpu.OpStressStore, Addr: a1, Imm: 1},
			gpu.Instr{Op: gpu.OpStressLoad, Addr: a2})
	case LoadStore:
		return append(prog,
			gpu.Instr{Op: gpu.OpStressLoad, Addr: a1},
			gpu.Instr{Op: gpu.OpStressStore, Addr: a2, Imm: 1})
	default:
		return append(prog,
			gpu.Instr{Op: gpu.OpStressLoad, Addr: a1},
			gpu.Instr{Op: gpu.OpStressLoad, Addr: a2})
	}
}

// BuildKernel exposes one iteration's kernel construction for external
// tooling (e.g. tracing a single instance): it validates the
// environment, builds the iteration plan, and returns the launch spec.
func BuildKernel(test *litmus.Test, p *Params, rng *xrand.Rand) (*gpu.LaunchSpec, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	plan, err := buildIteration(test, p, rng)
	if err != nil {
		return nil, err
	}
	return &plan.spec, nil
}
