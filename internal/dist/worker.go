package dist

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/sched"
)

// RunRange executes a slice of campaign cells and returns their
// resolved segments. onCellStart, when non-nil, is invoked as each
// cell starts (serialized) — the worker hooks lease renewal there, so
// heartbeats happen at deterministic points instead of on a wall-
// clock goroutine. A drained (context-cancelled) range returns the
// segments it did resolve with a nil error; the coordinator re-issues
// the rest.
type RunRange func(ctx context.Context, cells []sched.Cell, onCellStart func()) ([]sched.Segment, error)

// SchedRunnerOptions configures the scheduler behind SchedRunner.
// Retries/Backoff/CellTimeout must match the submitting side's
// campaign options — they are part of the byte-identity contract
// (attempt counts and timeout failures appear in reports) — so the
// descriptor carries them and cmd/mcmutants plumbs them through.
type SchedRunnerOptions struct {
	Parallel    int
	Retries     int
	Backoff     time.Duration
	CellTimeout time.Duration
	// Sleep overrides retry waiting (tests inject fake clocks).
	Sleep func(time.Duration)
	// Cache, when non-nil, is the worker's local result cache; CacheSalt
	// must be derived from the campaign descriptor so every worker (and
	// the submitting side) addresses the same entries. Hits are tagged
	// on the delivered segments for fleet-wide aggregation.
	Cache     sched.ResultCache
	CacheSalt string
}

// SchedRunner adapts a campaign's exec function into a RunRange: the
// leased cells become a sub-spec sharing the full campaign's name and
// seed, so every cell's split-seed RNG stream — and therefore its
// result — is identical to a single-process run.
func SchedRunner[R any](spec sched.Spec, exec sched.Exec[R], opts SchedRunnerOptions) RunRange {
	return func(ctx context.Context, cells []sched.Cell, onCellStart func()) ([]sched.Segment, error) {
		sub := sched.Spec{Name: spec.Name, Seed: spec.Seed, Cells: cells}
		sopts := sched.Options[R]{
			Workers:     opts.Parallel,
			MaxRetries:  opts.Retries,
			Backoff:     opts.Backoff,
			CellTimeout: opts.CellTimeout,
			Collect:     true,
			Sleep:       opts.Sleep,
			Cache:       opts.Cache,
			CacheSalt:   opts.CacheSalt,
		}
		if onCellStart != nil {
			sopts.OnCellStart = func(sched.Cell) { onCellStart() }
		}
		rep, err := sched.RunContext(ctx, sub, exec, sopts)
		if err != nil && !errors.Is(err, sched.ErrInterrupted) {
			return nil, err
		}
		return sched.ExportSegments(rep)
	}
}

// WorkerOptions configures a worker's identity and its RPC
// resilience policy.
type WorkerOptions struct {
	// ID names the worker to the coordinator (lease ownership,
	// quarantine). Required.
	ID string
	// MaxRPCAttempts bounds retries of one RPC before the worker
	// gives up on the coordinator. < 1 means 8.
	MaxRPCAttempts int
	// RPCBackoff is the base retry backoff, doubled per attempt with
	// split-seed jitter (sched.Spec.RetryBackoff). <= 0 means 100ms.
	RPCBackoff time.Duration
	// AcquireWait is the fallback poll interval when the coordinator
	// says wait without a hint. <= 0 means 250ms.
	AcquireWait time.Duration
	// Sleep overrides waiting; Now overrides the renewal clock. Tests
	// inject fakes; nil means real time.
	Sleep func(time.Duration)
	Now   func() time.Time
	// Logf, when non-nil, receives worker events.
	Logf func(format string, args ...any)
}

func (o WorkerOptions) maxRPCAttempts() int {
	if o.MaxRPCAttempts < 1 {
		return 8
	}
	return o.MaxRPCAttempts
}

func (o WorkerOptions) rpcBackoff() time.Duration {
	if o.RPCBackoff <= 0 {
		return 100 * time.Millisecond
	}
	return o.RPCBackoff
}

func (o WorkerOptions) acquireWait() time.Duration {
	if o.AcquireWait <= 0 {
		return 250 * time.Millisecond
	}
	return o.AcquireWait
}

func (o WorkerOptions) now() time.Time {
	if o.Now != nil {
		return o.Now()
	}
	return time.Now()
}

// Worker drains one campaign: acquire a leased range, execute it
// (renewing the lease at cell boundaries), deliver the segments,
// repeat until the coordinator reports done.
type Worker struct {
	transport Transport
	spec      sched.Spec
	run       RunRange
	opts      WorkerOptions
}

// NewWorker builds a worker. spec must be the full campaign spec
// rebuilt locally (its manifest is verified against the
// coordinator's); run executes leased cells.
func NewWorker(t Transport, spec sched.Spec, run RunRange, opts WorkerOptions) *Worker {
	return &Worker{transport: t, spec: spec, run: run, opts: opts}
}

// rpc runs one RPC with bounded, jittered retries. Crash simulation
// and context cancellation are terminal; everything else (network
// faults, 5xx, hub lookup races) retries up to MaxRPCAttempts.
func (w *Worker) rpc(ctx context.Context, purpose string, f func() error) error {
	max := w.opts.maxRPCAttempts()
	var lastErr error
	for attempt := 0; attempt < max; attempt++ {
		err := f()
		if err == nil || errors.Is(err, ErrWorkerCrashed) {
			return err
		}
		if ctx.Err() != nil {
			return fmt.Errorf("dist: worker %s: %s interrupted: %w", w.opts.ID, purpose, ctx.Err())
		}
		lastErr = err
		if attempt+1 < max {
			wait := w.spec.RetryBackoff(fmt.Sprintf("dist-rpc/%s/%s", w.opts.ID, purpose), attempt, w.opts.rpcBackoff())
			w.sleep(ctx, wait)
		}
	}
	return fmt.Errorf("dist: worker %s: %s failed after %d attempts: %w", w.opts.ID, purpose, max, lastErr)
}

func (w *Worker) sleep(ctx context.Context, d time.Duration) {
	if w.opts.Sleep != nil {
		w.opts.Sleep(d)
		return
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
	case <-t.C:
	}
}

func (w *Worker) logf(format string, args ...any) {
	if w.opts.Logf != nil {
		w.opts.Logf(format, args...)
	}
}

// Run drains the campaign. It returns nil when the coordinator
// reports done, ErrWorkerCrashed under crash simulation, a
// ctx-wrapping error when interrupted, and other errors when the
// coordinator is unreachable past the retry budget or the advertised
// manifest does not match the locally-rebuilt spec.
func (w *Worker) Run(ctx context.Context) error {
	if w.opts.ID == "" {
		return fmt.Errorf("dist: worker needs an ID")
	}
	var info *WorkInfo
	err := w.rpc(ctx, "info", func() error {
		i, err := w.transport.Info(ctx)
		if err == nil {
			info = i
		}
		return err
	})
	if err != nil {
		return err
	}
	if m := w.spec.Manifest(); info.Manifest != m {
		return fmt.Errorf("dist: campaign %s manifest mismatch: coordinator %.12s, local %.12s — worker and coordinator disagree on the cell grid (version or flag skew)",
			info.Name, info.Manifest, m)
	}
	ttl := time.Duration(info.LeaseTTLMS) * time.Millisecond
	waitSeq := 0
	for {
		if ctx.Err() != nil {
			return fmt.Errorf("dist: worker %s interrupted: %w", w.opts.ID, ctx.Err())
		}
		var resp *AcquireResponse
		err := w.rpc(ctx, "acquire", func() error {
			r, err := w.transport.Acquire(ctx, AcquireRequest{Worker: w.opts.ID})
			if err == nil {
				resp = r
			}
			return err
		})
		if err != nil {
			return err
		}
		switch resp.State {
		case StateDone:
			return nil
		case StateWait:
			wait := time.Duration(resp.RetryAfterMS) * time.Millisecond
			if wait <= 0 {
				wait = w.opts.acquireWait()
			}
			waitSeq++
			// Jitter the poll so a fleet of waiting workers does not
			// stampede the coordinator in lockstep.
			wait = w.spec.RetryBackoff(fmt.Sprintf("dist-wait/%s/%d", w.opts.ID, waitSeq), 0, wait)
			w.sleep(ctx, wait)
		case StateLease:
			if err := w.runLease(ctx, ttl, resp.Lease); err != nil {
				return err
			}
		default:
			return fmt.Errorf("dist: worker %s: coordinator sent unknown acquire state %q", w.opts.ID, resp.State)
		}
	}
}

// runLease executes one leased range and delivers its segments.
func (w *Worker) runLease(ctx context.Context, ttl time.Duration, l *Lease) error {
	cells := make([]sched.Cell, 0, len(l.Cells))
	for _, i := range l.Cells {
		if i < 0 || i >= len(w.spec.Cells) {
			return fmt.Errorf("dist: worker %s: lease %s cell index %d outside the campaign", w.opts.ID, l.ID, i)
		}
		cells = append(cells, w.spec.Cells[i])
	}
	w.logf("dist: worker %s leased %d cells (%s)", w.opts.ID, len(cells), l.ID)

	// Renewal happens at cell boundaries: deterministic points, no
	// wall-clock goroutine. The threshold is a split-seed jittered
	// fraction of the TTL so a worker fleet's renewals decorrelate;
	// losing the lease (or the coordinator) cancels the range so the
	// scheduler drains and the rest is re-issued.
	rctx, cancel := context.WithCancel(ctx)
	defer cancel()
	lastRenew := w.opts.now()
	renewSeq := 0
	onCellStart := func() {
		if ttl <= 0 || rctx.Err() != nil {
			return
		}
		threshold := w.spec.RetryBackoff(fmt.Sprintf("dist-renew/%s/%d", l.ID, renewSeq), 0, ttl/3)
		if w.opts.now().Sub(lastRenew) < threshold {
			return
		}
		renewSeq++
		var resp *RenewResponse
		err := w.rpc(rctx, "renew", func() error {
			r, err := w.transport.Renew(rctx, RenewRequest{Worker: w.opts.ID, Lease: l.ID})
			if err == nil {
				resp = r
			}
			return err
		})
		lastRenew = w.opts.now()
		if err != nil || !resp.OK {
			w.logf("dist: worker %s lost lease %s; draining", w.opts.ID, l.ID)
			cancel()
		}
	}
	segs, err := w.run(rctx, cells, onCellStart)
	if err != nil {
		return fmt.Errorf("dist: worker %s: lease %s execution: %w", w.opts.ID, l.ID, err)
	}
	if len(segs) > 0 {
		// Deliver even a partial or orphaned range: duplicates are
		// discarded by identity, and completed work shouldn't re-run
		// just because the lease died. An interrupted worker delivers
		// on a short detached deadline — best-effort, like a drain.
		dctx := ctx
		if ctx.Err() != nil {
			var dcancel context.CancelFunc
			dctx, dcancel = context.WithTimeout(context.Background(), 5*time.Second)
			defer dcancel()
		}
		derr := w.rpc(dctx, "deliver", func() error {
			_, err := w.transport.Deliver(dctx, DeliverRequest{Worker: w.opts.ID, Lease: l.ID, Segments: segs})
			return err
		})
		if derr != nil {
			if errors.Is(derr, ErrWorkerCrashed) || ctx.Err() == nil {
				return derr
			}
			// Interrupted and the best-effort delivery failed: the
			// coordinator will re-issue; nothing is lost but time.
			w.logf("dist: worker %s: drain delivery failed: %v", w.opts.ID, derr)
		}
	}
	if ctx.Err() != nil {
		return fmt.Errorf("dist: worker %s interrupted: %w", w.opts.ID, ctx.Err())
	}
	return nil
}
