package dist

import (
	"fmt"
	"testing"
	"time"
)

// chaosKind builds one FaultPlan per fault family, keyed by the RPC
// ordinal the fault fires at.
type chaosKind struct {
	name string
	plan func(n int, clock *fakeClock) FaultPlan
}

func chaosKinds() []chaosKind {
	return []chaosKind{
		{"drop", func(n int, _ *fakeClock) FaultPlan {
			return FaultPlan{DropAt: map[int]bool{n: true}}
		}},
		{"lose-reply", func(n int, _ *fakeClock) FaultPlan {
			return FaultPlan{LoseReplyAt: map[int]bool{n: true}}
		}},
		{"duplicate", func(n int, _ *fakeClock) FaultPlan {
			return FaultPlan{DuplicateAt: map[int]bool{n: true}}
		}},
		{"delay", func(n int, clock *fakeClock) FaultPlan {
			// The RPC succeeds but the worker stalls long past the
			// lease TTL before seeing the response — the coordinator
			// re-issues work the stalled worker still holds.
			return FaultPlan{DelayAt: map[int]bool{n: true}, Delay: func() { clock.Advance(5 * time.Second) }}
		}},
		{"crash", func(n int, _ *fakeClock) FaultPlan {
			return FaultPlan{CrashAt: n}
		}},
		{"partition", func(n int, _ *fakeClock) FaultPlan {
			return FaultPlan{PartitionFrom: n}
		}},
	}
}

// TestChaosFaultAtEveryRPCBoundary is the acceptance property: for
// shard counts 1, 2 and 4 (healthy workers, plus one chaos worker
// subjected to the fault), inject every fault family at every RPC
// ordinal the chaos worker reaches, and require the merged report to
// be identical to the uninterrupted single-process oracle every
// single time.
func TestChaosFaultAtEveryRPCBoundary(t *testing.T) {
	spec := distSpec(15)
	want := baselineReport(t, spec)

	for _, shards := range []int{1, 2, 4} {
		// Learn how many RPCs the chaos worker makes on a clean run,
		// to bound the boundary enumeration.
		var probe *FaultTransport
		got, _ := distRun{
			spec:    spec,
			workers: shards + 1,
			// Waiting workers advance the shared fake clock, so a busy
			// worker's lease can expire many times while the goroutine
			// scheduler starves it; a generous re-issue budget keeps the
			// byte-identity property about merging, not about lost-cell
			// policy (covered deterministically in lease_test.go).
			maxReissues: 10_000,
			mkTransport: func(i int, inner Transport) Transport {
				if i != 0 {
					return inner
				}
				probe = NewFaultTransport(inner, FaultPlan{})
				return probe
			},
		}.run(t)
		requireSameReport(t, fmt.Sprintf("shards=%d clean", shards), want, got)
		maxOps := probe.Ops() + 2

		for _, kind := range chaosKinds() {
			for n := 1; n <= maxOps; n++ {
				label := fmt.Sprintf("shards=%d fault=%s rpc=%d", shards, kind.name, n)
				var clock *fakeClock
				run := distRun{
					spec:        spec,
					workers:     shards + 1,
					maxReissues: 10_000,
					mkTransport: func(i int, inner Transport) Transport {
						if i != 0 {
							return inner
						}
						return NewFaultTransport(inner, kind.plan(n, clock))
					},
				}
				// The fault plan may need the run's clock; distRun owns
				// it, so thread it through a hook.
				got, st := run.runWithClock(t, func(c *fakeClock) { clock = c })
				requireSameReport(t, label, want, got)
				if !st.Complete {
					t.Fatalf("%s: campaign did not complete: %+v", label, st)
				}
			}
		}
	}
}
