package tuning

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"syscall"
	"testing"

	"repro/internal/diskio"
)

// countTuningOps runs the campaign to completion through a fault-free
// FaultFS and returns the checkpoint's mutating-I/O op count — the
// crash-boundary space at the tuning level.
func countTuningOps(t *testing.T) int {
	t.Helper()
	cfg, tests := campaignConfig()
	dir := t.TempDir()
	ffs := diskio.NewFaultFS(diskio.OS{}, 11)
	_, err := RunCampaign(cfg, tests, RunOptions{
		Workers: 1, CheckpointPath: filepath.Join(dir, "t.ckpt"),
		FsyncEvery: 1, FS: ffs,
	})
	if err != nil {
		t.Fatal(err)
	}
	return ffs.Ops()
}

// TestTuningDatasetSurvivesCrashes: kill the tuning campaign's process
// at a spread of I/O boundaries; after resuming on a healthy disk the
// final dataset is byte-identical to an uninterrupted run's. The
// exhaustive every-boundary sweep lives at the sched level
// (TestCampaignSurvivesCrashAtEveryIOBoundary); this samples the space
// end to end through the tuning layer, including first and last ops.
func TestTuningDatasetSurvivesCrashes(t *testing.T) {
	cfg, tests := campaignConfig()
	clean, err := RunCampaign(cfg, tests, RunOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	total := countTuningOps(t)
	if total < 10 {
		t.Fatalf("only %d checkpoint ops; implausibly small", total)
	}
	boundaries := []int{1, 2, 3, total - 1, total}
	for n := total / 4; n < total-1; n += total / 4 {
		boundaries = append(boundaries, n)
	}
	for _, n := range boundaries {
		dir := t.TempDir()
		path := filepath.Join(dir, "t.ckpt")
		ffs := diskio.NewFaultFS(diskio.OS{}, 11)
		ffs.CrashAfter(n)
		// The run fails with ErrCrashed — except when the crash lands on
		// the deferred close's sync, after the campaign already drained;
		// then it legitimately succeeds with every record durable.
		_, err := RunCampaign(cfg, tests, RunOptions{
			Workers: 1, CheckpointPath: path, FsyncEvery: 1, FS: ffs,
		})
		if err != nil && !errors.Is(err, diskio.ErrCrashed) {
			t.Fatalf("n=%d: non-crash error: %v", n, err)
		}
		if !ffs.Crashed() {
			t.Fatalf("n=%d: crash never fired", n)
		}
		resumed, err := RunCampaign(cfg, tests, RunOptions{
			Workers: 1, CheckpointPath: path, Resume: true,
		})
		if err != nil {
			t.Fatalf("n=%d: resume failed: %v", n, err)
		}
		datasetsIdentical(t, clean, resumed, "clean vs crash-resumed")
	}
}

// TestTuningStorageDegradation: disk-full mid-campaign yields a
// complete, correct dataset flagged StorageDegraded instead of a dead
// run.
func TestTuningStorageDegradation(t *testing.T) {
	cfg, tests := campaignConfig()
	clean, err := RunCampaign(cfg, tests, RunOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	ffs := diskio.NewFaultFS(diskio.OS{}, 11)
	ffs.FailFrom(8, syscall.ENOSPC)
	ds, err := RunCampaign(cfg, tests, RunOptions{
		Workers: 1, CheckpointPath: filepath.Join(dir, "t.ckpt"),
		FsyncEvery: 1, FS: ffs,
	})
	if err != nil {
		t.Fatalf("ENOSPC killed the tuning run: %v", err)
	}
	if !ds.StorageDegraded || ds.StorageErr == "" {
		t.Fatalf("dataset not marked degraded: %v %q", ds.StorageDegraded, ds.StorageErr)
	}
	// The degradation affects durability metadata only — the science is
	// identical.
	ds.StorageDegraded, ds.StorageErr = false, ""
	datasetsIdentical(t, clean, ds, "clean vs storage-degraded")
}

// TestDatasetSaveAtomic: SaveAtomic publishes all-or-nothing — the
// bytes equal a plain Save, an existing file is replaced, and no .tmp
// residue is left behind.
func TestDatasetSaveAtomic(t *testing.T) {
	cfg, tests := campaignConfig()
	ds, err := RunCampaign(cfg, tests, RunOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "out.json")
	if err := os.WriteFile(path, []byte("stale previous artifact"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := ds.SaveAtomic(nil, path); err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if err := ds.Save(&want); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want.Bytes()) {
		t.Fatal("SaveAtomic bytes differ from Save")
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("directory has %d entries, want just the artifact: %v", len(entries), entries)
	}

	// The published artifact round-trips.
	if _, err := Load(bytes.NewReader(got)); err != nil {
		t.Fatal(err)
	}

	// A crash at any publication boundary leaves either the stale or the
	// new complete artifact.
	for n := 1; ; n++ {
		dir := t.TempDir()
		path := filepath.Join(dir, "out.json")
		stale := []byte(`{"records":null}`)
		if err := os.WriteFile(path, stale, 0o644); err != nil {
			t.Fatal(err)
		}
		ffs := diskio.NewFaultFS(diskio.OS{}, 11)
		ffs.CrashAfter(n)
		err := ds.SaveAtomic(ffs, path)
		if !ffs.Crashed() {
			if err != nil {
				t.Fatalf("n=%d: fault-free save failed: %v", n, err)
			}
			break // past the last op: publication completed
		}
		if err == nil {
			t.Fatalf("n=%d: crashed save reported success", n)
		}
		after, rerr := os.ReadFile(path)
		if rerr != nil {
			t.Fatalf("n=%d: artifact vanished: %v", n, rerr)
		}
		if !bytes.Equal(after, stale) && !bytes.Equal(after, want.Bytes()) {
			t.Fatalf("n=%d: artifact is neither the old nor the new version (%d bytes)", n, len(after))
		}
	}
}

// TestTuningFsyncEveryPlumbing: the flag value reaches the checkpoint —
// a negative policy (sync only at drain/close) still produces a
// resumable checkpoint, via context for coverage of the non-default
// paths.
func TestTuningFsyncEveryPlumbing(t *testing.T) {
	cfg, tests := campaignConfig()
	dir := t.TempDir()
	path := filepath.Join(dir, "t.ckpt")
	clean, err := RunCampaign(cfg, tests, RunOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunCampaignCtx(context.Background(), cfg, tests, RunOptions{
		Workers: 1, CheckpointPath: path, FsyncEvery: -1,
	}); err != nil {
		t.Fatal(err)
	}
	resumed, err := RunCampaign(cfg, tests, RunOptions{
		Workers: 1, CheckpointPath: path, Resume: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	datasetsIdentical(t, clean, resumed, "clean vs fsync-never resumed")
}
