package tuning

import (
	"context"
	"fmt"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	"repro/internal/gpu"
	"repro/internal/sched"
	"repro/internal/xrand"
)

// TestChaosCampaignDeterministicAcrossWorkers is the acceptance
// scenario for graceful degradation: a faulty fleet with the breaker
// enabled completes the campaign, drops cells into Dataset.Dropped,
// and serializes byte-identically at every worker count.
func TestChaosCampaignDeterministicAcrossWorkers(t *testing.T) {
	cfg, tests := campaignConfig()
	fm := gpu.UniformFaults(cfg.Seed, 0.3)
	cfg.Faults = &fm
	opts := func(workers int) RunOptions {
		return RunOptions{Workers: workers, Breaker: &sched.BreakerOptions{}}
	}
	serial, err := RunCampaign(cfg, tests, opts(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(serial.Dropped) == 0 {
		t.Fatal("test vacuous: 30% fault rate dropped no cells")
	}
	if len(serial.Records) == 0 {
		t.Fatal("faulty fleet produced no surviving records")
	}
	quarantined := 0
	for _, d := range serial.Dropped {
		if d.Quarantined {
			quarantined++
		}
	}
	if quarantined == 0 {
		t.Fatal("test vacuous: breaker quarantined no cells")
	}
	for _, workers := range []int{4, 8} {
		parallel, err := RunCampaign(cfg, tests, opts(workers))
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		datasetsIdentical(t, serial, parallel, fmt.Sprintf("workers=1 vs workers=%d", workers))
		if len(parallel.Dropped) != len(serial.Dropped) {
			t.Fatalf("workers=%d: %d dropped vs %d", workers, len(parallel.Dropped), len(serial.Dropped))
		}
		for i := range serial.Dropped {
			if parallel.Dropped[i] != serial.Dropped[i] {
				t.Fatalf("workers=%d: dropped[%d] = %+v, want %+v",
					workers, i, parallel.Dropped[i], serial.Dropped[i])
			}
		}
	}
}

// TestChaosCampaignResumeMatchesCleanRun kills a faulty campaign
// mid-way and resumes it: replayed cells, freshly executed cells, and
// dropped cells must all settle into the same dataset as an
// uninterrupted chaotic run.
func TestChaosCampaignResumeMatchesCleanRun(t *testing.T) {
	cfg, tests := campaignConfig()
	fm := gpu.UniformFaults(cfg.Seed+7, 0.3)
	cfg.Faults = &fm
	breaker := &sched.BreakerOptions{}
	clean, err := RunCampaign(cfg, tests, RunOptions{Workers: 4, Breaker: breaker})
	if err != nil {
		t.Fatal(err)
	}
	if len(clean.Dropped) == 0 {
		t.Fatal("test vacuous: chaotic reference run dropped nothing")
	}

	ckpt := filepath.Join(t.TempDir(), "chaos.ckpt")
	spec, work, err := buildCampaign(&cfg, tests)
	if err != nil {
		t.Fatal(err)
	}
	ck, err := sched.OpenCheckpoint(ckpt, spec, false)
	if err != nil {
		t.Fatal(err)
	}
	// The interrupted run executes the first third of the campaign with
	// faults live — so the checkpoint holds only cells that survived
	// their own injected faults — then dies.
	killAfter := len(spec.Cells) / 3
	ran := 0
	_, err = sched.Run(spec, func(ctx context.Context, c sched.Cell, rng *xrand.Rand) (Record, error) {
		if ran++; ran > killAfter {
			return Record{}, fmt.Errorf("simulated kill")
		}
		return runCell(ctx, work[c.Key], cfg.Faults, rng)
	}, sched.Options[Record]{Workers: 1, Checkpoint: ck})
	if err == nil {
		t.Fatal("interrupted run succeeded")
	}
	ck.Close()

	resumed, err := RunCampaign(cfg, tests, RunOptions{
		Workers:        4,
		CheckpointPath: ckpt,
		Resume:         true,
		Breaker:        breaker,
	})
	if err != nil {
		t.Fatal(err)
	}
	datasetsIdentical(t, clean, resumed, "chaotic clean vs resumed")
	if len(resumed.Dropped) != len(clean.Dropped) {
		t.Fatalf("resume dropped %d cells, clean dropped %d", len(resumed.Dropped), len(clean.Dropped))
	}
}

// TestCancelChaosResumeByteIdentical is the end-to-end drain contract
// at the tuning level: cancel a parallel campaign at a randomized (but
// seed-derived, so reproducible) cell index through the real
// cancellation path, then resume from the checkpoint and require the
// final dataset byte-identical to a never-interrupted baseline. The
// reporter heartbeat runs throughout, and goroutine counts are checked
// after the drains so an interrupted campaign can never leak it.
func TestCancelChaosResumeByteIdentical(t *testing.T) {
	cfg, tests := campaignConfig()
	clean, err := RunCampaign(cfg, tests, RunOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}

	spec, _, err := buildCampaign(&cfg, tests)
	if err != nil {
		t.Fatal(err)
	}
	nCells := len(spec.Cells)
	picker := xrand.New(cfg.Seed ^ 0x63616e63) // "canc"
	before := runtime.NumGoroutine()
	for round := 0; round < 3; round++ {
		// Cancel somewhere strictly inside the campaign so the drain has
		// both completed and pending cells to deal with.
		cancelAt := 1 + int(picker.Uint64()%uint64(nCells-2))
		ckpt := filepath.Join(t.TempDir(), fmt.Sprintf("cancel-%d.ckpt", round))

		ctx, cancel := context.WithCancel(context.Background())
		started := 0
		partial, err := RunCampaignCtx(ctx, cfg, tests, RunOptions{
			Workers:        2,
			CheckpointPath: ckpt,
			Report:         func(string) {},
			ReportEvery:    time.Millisecond,
			Progress: func(string) {
				if started++; started == cancelAt {
					cancel()
				}
			},
		})
		cancel()
		if err != nil {
			t.Fatalf("round %d: drain returned error: %v", round, err)
		}
		if !partial.Interrupted {
			t.Fatalf("round %d (cancel at %d): dataset not marked interrupted", round, cancelAt)
		}
		if len(partial.Records) >= nCells {
			t.Fatalf("round %d: interrupted run completed everything", round)
		}
		if len(partial.Dropped) != 0 {
			t.Fatalf("round %d: interruption recorded drops: %+v", round, partial.Dropped)
		}

		resumed, err := RunCampaignCtx(context.Background(), cfg, tests, RunOptions{
			Workers:        4,
			CheckpointPath: ckpt,
			Resume:         true,
		})
		if err != nil {
			t.Fatalf("round %d: resume: %v", round, err)
		}
		if resumed.Interrupted {
			t.Fatalf("round %d: resumed run still marked interrupted", round)
		}
		datasetsIdentical(t, clean, resumed, fmt.Sprintf("round %d (cancel at %d)", round, cancelAt))
	}
	// The heartbeat goroutines are joined before RunCampaignCtx returns;
	// give unrelated runtime goroutines a moment to settle.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines: %d before, %d after interrupted campaigns", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestCampaignCtxPreCancelled: a dead context yields an all-pending
// dataset — no records, no drops, Interrupted set — and no error.
func TestCampaignCtxPreCancelled(t *testing.T) {
	cfg, tests := campaignConfig()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ds, err := RunCampaignCtx(ctx, cfg, tests, RunOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !ds.Interrupted || len(ds.Records) != 0 || len(ds.Dropped) != 0 {
		t.Fatalf("pre-cancelled campaign: interrupted=%v records=%d dropped=%d",
			ds.Interrupted, len(ds.Records), len(ds.Dropped))
	}
}

// TestCampaignCellTimeoutDoesNotInterrupt: a generous per-cell budget
// leaves a healthy campaign untouched — same dataset, not interrupted.
func TestCampaignCellTimeoutDoesNotInterrupt(t *testing.T) {
	cfg, tests := campaignConfig()
	clean, err := RunCampaign(cfg, tests, RunOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	bounded, err := RunCampaign(cfg, tests, RunOptions{Workers: 2, CellTimeout: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	if bounded.Interrupted {
		t.Fatal("cell timeout marked the campaign interrupted")
	}
	datasetsIdentical(t, clean, bounded, "clean vs cell-timeout")
}
