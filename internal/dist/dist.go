// Package dist shards a campaign across worker processes without
// giving up the repository's core invariant: the merged report is
// byte-identical to a single-process run.
//
// A Coordinator owns one campaign. It hands out leased ranges of the
// spec's cell grid; workers (the `mcmutants work` verb, or any
// in-process Transport client) execute their range with the same
// split-seed RNG streams a local run would use and deliver the
// resolved cells back as checkpoint-shaped segments
// (sched.Segment). Because every cell's result is a pure function of
// (seed, campaign, cell key, attempt), re-executing a cell after its
// lease expired — or receiving it twice from a zombie worker — cannot
// change the merged report: duplicate deliveries are discarded by
// cell identity, first-wins, and both copies are identical anyway.
//
// Robustness model:
//
//   - Leases carry deadlines. Workers renew at cell boundaries with
//     split-seed jittered thresholds (sched.Spec.RetryBackoff); a
//     worker that dies or partitions stops renewing, its lease
//     expires, and the unresolved cells are re-issued to the next
//     Acquire.
//   - A cell re-issued more than MaxReissues times is marked lost: a
//     synthetic error segment completes it so the campaign degrades
//     (exit 2, failure recorded per cell) instead of hanging.
//   - Workers whose leases repeatedly expire or fail are quarantined
//     by a per-worker sched.Breaker — the device-breaker taxonomy
//     lifted to whole workers.
//   - With StallTimeout set, a coordinator that hears from no worker
//     at all for that long marks every unresolved cell lost and
//     completes degraded rather than waiting forever.
//
// The Transport seam mirrors internal/diskio.FaultFS: HTTPTransport
// is the real implementation, Hub.LocalTransport the in-process one,
// and FaultTransport injects deterministic faults (dropped calls,
// lost replies, duplicated deliveries, crash-at-Nth-RPC, persistent
// partition) keyed by RPC ordinal so chaos tests can kill every RPC
// boundary and assert byte-identical reports.
package dist

import (
	"encoding/json"
	"errors"

	"repro/internal/sched"
)

// Acquire response states.
const (
	// StateLease: the response carries a leased cell range.
	StateLease = "lease"
	// StateWait: no range is available right now (all leased, or the
	// worker is quarantined); retry after RetryAfterMS.
	StateWait = "wait"
	// StateDone: the campaign is complete; the worker can move on.
	StateDone = "done"
)

// Deliver response states.
const (
	// DeliverOK: the delivery resolved a live lease.
	DeliverOK = "ok"
	// DeliverLost: the lease had already expired (or was never this
	// worker's); any novel segments were still merged idempotently.
	DeliverLost = "lost"
)

// ErrWorkerCrashed is the terminal error a fault-injecting transport
// returns when the simulated worker process has died: no RPC — not
// even a best-effort final delivery — reaches the coordinator again.
var ErrWorkerCrashed = errors.New("dist: worker crashed (simulated)")

// ErrUnknownCampaign is returned by hub lookups and transports when
// the named campaign is not (or no longer) registered.
var ErrUnknownCampaign = errors.New("dist: unknown campaign")

// WorkInfo describes a registered campaign to prospective workers.
type WorkInfo struct {
	// Name is the hub registration name (URL path component).
	Name string `json:"name"`
	// Campaign and Seed echo the spec, Manifest its cell-grid hash:
	// workers verify their locally-rebuilt spec manifest matches
	// before accepting leases, so a version- or flag-skewed worker
	// refuses work instead of corrupting the merge.
	Campaign string `json:"campaign"`
	Seed     uint64 `json:"seed"`
	Manifest string `json:"manifest"`
	// Cells is the total cell count.
	Cells int `json:"cells"`
	// LeaseTTLMS is the lease deadline workers must renew within.
	LeaseTTLMS int64 `json:"lease_ttl_ms"`
	// Descriptor is the opaque work description the submitting side
	// registered (core.WorkSpec JSON): everything a worker needs to
	// rebuild the spec and executor locally.
	Descriptor json.RawMessage `json:"descriptor,omitempty"`
	// Done reports campaign completion.
	Done bool `json:"done"`
}

// Lease is a leased range: spec indexes into the campaign's cell
// list, valid until the deadline unless renewed.
type Lease struct {
	ID    string `json:"id"`
	Cells []int  `json:"cells"`
	TTLMS int64  `json:"ttl_ms"`
}

// AcquireRequest asks for a range on behalf of a worker.
type AcquireRequest struct {
	Worker string `json:"worker"`
}

// AcquireResponse carries a lease, a wait hint, or completion.
type AcquireResponse struct {
	State        string `json:"state"`
	Lease        *Lease `json:"lease,omitempty"`
	RetryAfterMS int64  `json:"retry_after_ms,omitempty"`
}

// RenewRequest extends a lease's deadline.
type RenewRequest struct {
	Worker string `json:"worker"`
	Lease  string `json:"lease"`
}

// RenewResponse reports whether the lease is still this worker's. A
// false OK means the lease expired and was (or will be) re-issued:
// the worker must stop executing the range.
type RenewResponse struct {
	OK bool `json:"ok"`
}

// DeliverRequest returns a range's resolved cells.
type DeliverRequest struct {
	Worker   string          `json:"worker"`
	Lease    string          `json:"lease"`
	Segments []sched.Segment `json:"segments"`
}

// DeliverResponse acknowledges a delivery. Accepted counts segments
// merged for the first time, Duplicates those discarded by cell
// identity — a zombie worker's entire delivery lands as duplicates.
type DeliverResponse struct {
	State      string `json:"state"`
	Accepted   int    `json:"accepted"`
	Duplicates int    `json:"duplicates"`
}

// Status is a coordinator progress snapshot.
type Status struct {
	// Name is the hub registration name.
	Name string
	// Total and Done count cells; Done includes replayed seeds and
	// lost (synthesized-failure) cells — every cell no longer owed.
	Total int
	Done  int
	// Replayed counts cells seeded from a resumed checkpoint.
	Replayed int
	// CacheHits counts accepted segments the workers served from their
	// local result caches — the fleet-wide warm-cache savings.
	CacheHits int
	// Lost counts cells completed by synthetic failure after re-issue
	// exhaustion or a stall.
	Lost int
	// Duplicates counts segment deliveries discarded by cell identity.
	Duplicates int
	// Reissues counts lease-expiry re-queues of individual cells.
	Reissues int
	// ActiveLeases and Workers describe the live fleet; Quarantined
	// counts workers whose breaker is currently open.
	ActiveLeases int
	Workers      int
	Quarantined  int
	// Stalled reports that the stall timeout fired.
	Stalled bool
	// Complete reports that every cell is resolved.
	Complete bool
}
