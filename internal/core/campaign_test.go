package core

import (
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/gpu"
	"repro/internal/harness"
	"repro/internal/wgsl"
)

func fleet() []Platform {
	return []Platform{
		{Device: "AMD", Driver: wgsl.DriverFenceDropping},
		{Device: "Intel", Bugs: gpu.Bugs{CoherenceRR: true, CoherenceRRProb: 0.4, CoherenceRRPressure: 2}},
		{Device: "NVIDIA"},
	}
}

// TestFleetConformanceAcrossPlatforms runs one campaign over a mixed
// fleet: each platform's defects must surface in its own report and
// nowhere else.
func TestFleetConformanceAcrossPlatforms(t *testing.T) {
	s := study(t)
	reports, err := s.CheckFleetConformance(fleet(), testEnv(), 10, 11, CampaignOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 3 {
		t.Fatalf("%d reports, want 3", len(reports))
	}
	for i, rep := range reports {
		if rep.Platform.Device != fleet()[i].Device {
			t.Fatalf("report %d is for %s", i, rep.Platform.Device)
		}
		if len(rep.Findings) != 20 {
			t.Fatalf("%s: %d findings, want 20", rep.Platform.Device, len(rep.Findings))
		}
	}
	wantBug := func(rep *ConformanceReport, test string) {
		t.Helper()
		for _, f := range rep.Buggy() {
			if f.Test == test {
				if f.Explanation == "" {
					t.Errorf("%s: %s finding lacks explanation", rep.Platform.Device, test)
				}
				return
			}
		}
		t.Errorf("%s: %s not among violations", rep.Platform.Device, test)
	}
	wantBug(reports[0], "MP-relacq")
	wantBug(reports[1], "CoRR")
	if buggy := reports[2].Buggy(); len(buggy) != 0 {
		t.Errorf("clean NVIDIA platform reported bugs: %+v", buggy)
	}
}

// TestFleetConformanceDeterministic asserts worker count cannot change
// what the fleet campaign finds.
func TestFleetConformanceDeterministic(t *testing.T) {
	s := study(t)
	serial, err := s.CheckFleetConformance(fleet(), testEnv(), 4, 23, CampaignOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := s.CheckFleetConformance(fleet(), testEnv(), 4, 23, CampaignOptions{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	for pi := range serial {
		for fi := range serial[pi].Findings {
			if serial[pi].Findings[fi] != parallel[pi].Findings[fi] {
				t.Fatalf("%s finding %d differs:\n%+v\n%+v", serial[pi].Platform.Device, fi,
					serial[pi].Findings[fi], parallel[pi].Findings[fi])
			}
		}
	}
}

// TestEvaluateEnvironmentsMergesAcrossEnvs checks the multi-environment
// mutation score: per-mutant results are merged with Result.Merge, so
// the ensemble's counts are the sums and a kill anywhere counts.
func TestEvaluateEnvironmentsMergesAcrossEnvs(t *testing.T) {
	s := study(t)
	weak := harness.SITEBaseline()
	envs := []harness.Params{weak, testEnv()}
	single, err := s.EvaluateEnvironment(Platform{Device: "AMD"}, testEnv(), 3, 42)
	if err != nil {
		t.Fatal(err)
	}
	multi, err := s.EvaluateEnvironments(Platform{Device: "AMD"}, envs, 3, 42, CampaignOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if multi.Total != 32 || len(multi.PerMutant) != 32 {
		t.Fatalf("Total=%d PerMutant=%d", multi.Total, len(multi.PerMutant))
	}
	// The ensemble includes testEnv's cells under the same campaign
	// seed... not the same RNG streams as the single-env run, so compare
	// structurally: merged iteration counts double the single run's.
	for i, res := range multi.PerMutant {
		if res.Iterations != 6 {
			t.Fatalf("mutant %d: %d iterations after merging 2 envs of 3", i, res.Iterations)
		}
		if res.Hist == nil || res.Hist.Total() != res.Instances {
			t.Fatalf("mutant %d: histogram out of sync with instances", i)
		}
		if res.TargetCount != res.Hist.TargetCount() {
			t.Fatalf("mutant %d: TargetCount diverged from histogram", i)
		}
	}
	// Adding environments can only help: the ensemble kills at least as
	// many mutants as a single equally-seeded environment would find on
	// its own is not directly comparable, but the stressed env alone
	// guarantees kills, so the ensemble must kill something too.
	if single.Killed == 0 || multi.Killed == 0 {
		t.Fatalf("killed: single=%d multi=%d", single.Killed, multi.Killed)
	}
	if multi.AvgDeathRate <= 0 {
		t.Fatal("zero ensemble death rate")
	}
}

// TestEvaluateEnvironmentsDeterministic: same campaign, different
// worker counts, identical merged scores.
func TestEvaluateEnvironmentsDeterministic(t *testing.T) {
	s := study(t)
	envs := []harness.Params{harness.SITEBaseline(), testEnv()}
	a, err := s.EvaluateEnvironments(Platform{Device: "Intel"}, envs, 2, 9, CampaignOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.EvaluateEnvironments(Platform{Device: "Intel"}, envs, 2, 9, CampaignOptions{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if a.Killed != b.Killed || a.Total != b.Total || a.AvgDeathRate != b.AvgDeathRate {
		t.Fatalf("scores differ: %+v vs %+v", a, b)
	}
	for i := range a.PerMutant {
		ra, rb := a.PerMutant[i], b.PerMutant[i]
		if ra.TestName != rb.TestName || ra.TargetCount != rb.TargetCount ||
			ra.Violations != rb.Violations || ra.SimSeconds != rb.SimSeconds {
			t.Fatalf("mutant %d diverged: %+v vs %+v", i, ra, rb)
		}
	}
}

// TestFleetConformanceCheckpointResume interrupts a fleet campaign and
// resumes it; the reports must match an uninterrupted run.
func TestFleetConformanceCheckpointResume(t *testing.T) {
	s := study(t)
	platforms := fleet()[:2]
	clean, err := s.CheckFleetConformance(platforms, testEnv(), 3, 5, CampaignOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	ckpt := filepath.Join(t.TempDir(), "fleet.ckpt")
	// First pass writes the checkpoint to completion; second pass must
	// replay every cell without executing any.
	if _, err := s.CheckFleetConformance(platforms, testEnv(), 3, 5, CampaignOptions{Workers: 2, CheckpointPath: ckpt}); err != nil {
		t.Fatal(err)
	}
	executed := 0
	resumed, err := s.CheckFleetConformance(platforms, testEnv(), 3, 5, CampaignOptions{
		Workers: 2, CheckpointPath: ckpt, Resume: true,
		Progress: func(string) { executed++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	if executed != 0 {
		t.Fatalf("resume re-executed %d cells", executed)
	}
	for pi := range clean {
		for fi := range clean[pi].Findings {
			if clean[pi].Findings[fi] != resumed[pi].Findings[fi] {
				t.Fatalf("replayed finding differs: %+v vs %+v",
					clean[pi].Findings[fi], resumed[pi].Findings[fi])
			}
		}
	}
	// A different seed must refuse the stale checkpoint.
	_, err = s.CheckFleetConformance(platforms, testEnv(), 3, 6, CampaignOptions{CheckpointPath: ckpt, Resume: true})
	if err == nil || !strings.Contains(err.Error(), "different campaign spec") {
		t.Fatalf("stale checkpoint accepted: %v", err)
	}
}
