package harness

import (
	"testing"

	"repro/internal/gpu"
	"repro/internal/mutation"
	"repro/internal/xrand"
)

// TestCalibrationProbe is a diagnostic: it prints kill counts for key
// mutants across devices and environment families. Run with -v to see
// the table. It asserts only the paper's coarsest shape: PTE kills at
// least as many distinct mutants as SITE in aggregate.
func TestCalibrationProbe(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration probe is slow")
	}
	suite := mutation.MustGenerate()
	mutants := []string{"CoRR-mutant", "CoWR-mutant", "MP", "SB", "LB", "S", "2+2W", "MP-relacq-nofence", "LB-relacq-norel"}
	envs := []struct {
		name  string
		p     Params
		iters int
	}{
		{"SITE-base", SITEBaseline(), 30},
		{"SITE-stress", stressedSITE(), 30},
		{"PTE-base", smallPTE(), 3},
		{"PTE-stress", stressedPTE(), 3},
	}
	totalKilled := map[string]int{}
	for _, devName := range []string{"NVIDIA", "AMD", "Intel", "M1"} {
		d := device(t, devName, gpu.Bugs{})
		for _, env := range envs {
			r, err := NewRunner(d, env.p)
			if err != nil {
				t.Fatal(err)
			}
			rng := xrand.New(77)
			killed := 0
			for _, name := range mutants {
				test, ok := suite.ByName(name)
				if !ok {
					t.Fatalf("missing %s", name)
				}
				res, err := r.Run(test, env.iters, rng)
				if err != nil {
					t.Fatal(err)
				}
				mark := " "
				if res.TargetCount > 0 {
					killed++
					mark = "*"
				}
				t.Logf("%-7s %-12s %-18s kills=%-6d rate=%10.1f/s inst=%d",
					devName, env.name, name+mark, res.TargetCount, res.TargetRate(), res.Instances)
			}
			totalKilled[env.name] += killed
			t.Logf("%-7s %-12s TOTAL killed %d/%d", devName, env.name, killed, len(mutants))
		}
	}
	if totalKilled["PTE-stress"] < totalKilled["SITE-stress"] {
		t.Errorf("PTE killed fewer mutants than SITE in aggregate: %v", totalKilled)
	}
}
